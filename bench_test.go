package rlcint

// One benchmark per table/figure of the paper. Each benchmark regenerates
// the corresponding result (or its representative unit of work); the full
// CSV regeneration lives in cmd/figures. Figures 9-12 are transient circuit
// simulations and use a reduced-resolution configuration so a -bench=. run
// stays tractable; cmd/figures runs them at full resolution.

import (
	"context"
	"testing"

	"rlcint/internal/num"
	"rlcint/internal/pade"
)

// benchSweepLs is a compact version of the paper's 0-5 nH/mm range.
var benchSweepLs = []float64{0.5e-6, 2e-6, 4.5e-6}

// BenchmarkTable1 regenerates Table 1's derived columns: the closed-form RC
// optimum for both nodes and the inverse device extraction.
func BenchmarkTable1(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for _, t := range Technologies() {
			rc, err := OptimizeRC(t)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := ExtractDevice(LineOf(t, 0), rc.H, rc.K, rc.Tau); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkFig2 samples the three canonical second-order step responses.
func BenchmarkFig2(b *testing.B) {
	b.ReportAllocs()
	ts := num.Linspace(0, 12, 601)
	models := make([]pade.Model, 0, 3)
	for _, zeta := range []float64{2, 1, 0.3} {
		m, err := pade.New(2*zeta, 1)
		if err != nil {
			b.Fatal(err)
		}
		models = append(models, m)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, m := range models {
			for _, t := range ts {
				_ = m.Step(t)
			}
		}
	}
}

// benchSweep runs the shared Figures 4-8 sweep for both nodes through the
// batched engine with warm-start continuation — the production path of
// cmd/figures.
func benchSweep(b *testing.B) [][]SweepPoint {
	b.Helper()
	rows, err := SweepNodes(context.Background(), SweepOptions{Warm: true}, Technologies(), benchSweepLs, 0.5)
	if err != nil {
		b.Fatal(err)
	}
	out := make([][]SweepPoint, len(rows))
	for i, r := range rows {
		out[i] = r.Points
	}
	return out
}

// BenchmarkFig4 regenerates the critical-inductance-at-optimum series.
func BenchmarkFig4(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for _, pts := range benchSweep(b) {
			for _, p := range pts {
				if p.LCrit <= 0 {
					b.Fatal("non-positive lcrit")
				}
			}
		}
	}
}

// BenchmarkFig5 regenerates the h_optRLC/h_optRC series.
func BenchmarkFig5(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for _, pts := range benchSweep(b) {
			for _, p := range pts {
				if p.HRatio <= 0 {
					b.Fatal("bad ratio")
				}
			}
		}
	}
}

// BenchmarkFig6 regenerates the k_optRLC/k_optRC series.
func BenchmarkFig6(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for _, pts := range benchSweep(b) {
			for _, p := range pts {
				if p.KRatio <= 0 || p.KRatio > 1.2 {
					b.Fatal("bad ratio")
				}
			}
		}
	}
}

// BenchmarkFig7 regenerates the optimized-delay-ratio series (including the
// εr-swap control).
func BenchmarkFig7(b *testing.B) {
	b.ReportAllocs()
	techs := []Technology{Tech250(), Tech100(), Tech100Eps250()}
	for i := 0; i < b.N; i++ {
		rows, err := SweepNodes(context.Background(), SweepOptions{Warm: true}, techs, benchSweepLs, 0.5)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			for _, p := range r.Points {
				if p.DelayRatio < 1 {
					b.Fatal("ratio below 1")
				}
			}
		}
	}
}

// BenchmarkFig8 regenerates the fixed-RC-sizing penalty series.
func BenchmarkFig8(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for _, pts := range benchSweep(b) {
			for _, p := range pts {
				if p.Penalty < 1-1e-9 {
					b.Fatal("penalty below 1")
				}
			}
		}
	}
}

// fastRing is the reduced-resolution transient configuration for benches:
// fewer ladder sections, a six-period window, and 200 fixed steps per
// period — enough for the half-VDD crossing, over/undershoot, and current
// density measurements the benchmarks assert on, at a fraction of the
// default 10×2500 grid cmd/figures uses.
func fastRing(l float64) RingConfig {
	return RingConfig{Node: Tech100(), LineL: l, Sections: 8, Cycles: 6, PointsPerCycle: 200}
}

// warmRing runs one untimed transient so the one-time reduced-order model
// build (projection + accuracy gate) lands outside the measured region —
// the timed iterations then report the steady-state cost a long sweep sees,
// and a -benchtime=1x CI smoke stays comparable to a full run.
func warmRing(b *testing.B, cfg RingConfig) {
	b.Helper()
	if _, _, err := RunRing(cfg); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
}

// BenchmarkFig9 runs the ring-oscillator transient at l = 1.8 nH/mm and
// extracts the Figure 9 waveform metrics.
func BenchmarkFig9(b *testing.B) {
	b.ReportAllocs()
	warmRing(b, fastRing(1.8e-6))
	for i := 0; i < b.N; i++ {
		_, met, err := RunRing(fastRing(1.8e-6))
		if err != nil {
			b.Fatal(err)
		}
		if met.Period <= 0 {
			b.Fatal("no oscillation")
		}
	}
}

// BenchmarkFig10 runs the transient at l = 2.2 nH/mm (the paper's second
// waveform operating point).
func BenchmarkFig10(b *testing.B) {
	b.ReportAllocs()
	warmRing(b, fastRing(2.2e-6))
	for i := 0; i < b.N; i++ {
		_, met, err := RunRing(fastRing(2.2e-6))
		if err != nil {
			b.Fatal(err)
		}
		if met.Undershoot <= 0 {
			b.Fatal("expected undershoot")
		}
	}
}

// BenchmarkFig11 regenerates a compact period-vs-inductance sweep spanning
// the false-switching onset. The sweep keeps a finer step than the other
// figure benches: period collapse rides on the line ringing, which
// under-resolved trapezoidal steps artificially damp below the
// false-switching threshold.
func BenchmarkFig11(b *testing.B) {
	b.ReportAllocs()
	ls := []float64{1.8e-6, 3.0e-6}
	cfg := fastRing(0)
	cfg.PointsPerCycle = 800
	wcfg := cfg
	wcfg.LineL = ls[0]
	warmRing(b, wcfg)
	wcfg.LineL = ls[1]
	if _, _, err := RunRing(wcfg); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pts, err := SweepRingPeriod(cfg, ls)
		if err != nil {
			b.Fatal(err)
		}
		if !pts[1].Collapsed {
			b.Fatal("expected collapse at 3 nH/mm")
		}
	}
}

// BenchmarkFig12 measures the wire current densities and reliability screen.
func BenchmarkFig12(b *testing.B) {
	b.ReportAllocs()
	warmRing(b, fastRing(2.2e-6))
	for i := 0; i < b.N; i++ {
		_, met, err := RunRing(fastRing(2.2e-6))
		if err != nil {
			b.Fatal(err)
		}
		rep, err := CheckWire(met.PeakJ, met.RMSJ)
		if err != nil {
			b.Fatal(err)
		}
		if rep.RMSOver {
			b.Fatal("unexpected EM violation")
		}
	}
}

// BenchmarkDelaySolve measures the Eq. (3) numerical delay solve — the
// kernel the paper reports as converging in <4 Newton iterations.
func BenchmarkDelaySolve(b *testing.B) {
	b.ReportAllocs()
	st := StageOf(Tech100(), 2e-6, 11.1*MM, 528)
	m, err := TwoPoleOf(st)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Delay(0.5); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOptimize measures one full repeater-insertion optimization — the
// paper's headline "extremely efficient" claim.
func BenchmarkOptimize(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Optimize(Tech100(), 2e-6, 0.5); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSweepCold measures the batched engine's cold path on one node —
// bit-identical to the serial reference sweep, every point a full ladder.
func BenchmarkSweepCold(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := SweepBatch(context.Background(), SweepOptions{}, Tech100(), benchSweepLs, 0.5); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSweepWarm measures the same sweep with warm-start continuation —
// the per-point speedup the figure benches inherit.
func BenchmarkSweepWarm(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := SweepBatch(context.Background(), SweepOptions{Warm: true}, Tech100(), benchSweepLs, 0.5); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExtractBEM measures the 2-D BEM capacitance extraction of the
// Table 1 cross-section.
func BenchmarkExtractBEM(b *testing.B) {
	b.ReportAllocs()
	n := Tech100()
	for i := 0; i < b.N; i++ {
		if _, err := ExtractCapacitance(n.Width, n.Height, n.Pitch, n.TIns, n.EpsR); err != nil {
			b.Fatal(err)
		}
	}
}
