package rlcint_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"rlcint"
)

// TestOptimizeCtxHonoursCancellation pins the facade's run-control contract:
// a pre-cancelled context stops the optimizer ladder with the exported
// ErrCancelled sentinel, matchable through both errors.Is and IsRunStop.
func TestOptimizeCtxHonoursCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := rlcint.OptimizeCtx(ctx, rlcint.Tech100(), 2*rlcint.NHPerMM, 0.5, rlcint.RunLimits{})
	if !errors.Is(err, rlcint.ErrCancelled) {
		t.Fatalf("want ErrCancelled, got %v", err)
	}
	if !rlcint.IsRunStop(err) {
		t.Error("IsRunStop(cancelled) = false")
	}
	var se *rlcint.SolverError
	if !errors.As(err, &se) {
		t.Fatalf("stop is not a *SolverError: %T", err)
	}
}

func TestOptimizeCtxIterationBudget(t *testing.T) {
	_, err := rlcint.OptimizeCtx(context.Background(), rlcint.Tech100(), 2*rlcint.NHPerMM, 0.5,
		rlcint.RunLimits{MaxIters: 3})
	if !errors.Is(err, rlcint.ErrBudget) {
		t.Fatalf("want ErrBudget, got %v", err)
	}
}

func TestOptimizeCtxCompletesUnderGenerousLimits(t *testing.T) {
	opt, err := rlcint.OptimizeCtx(context.Background(), rlcint.Tech100(), 2*rlcint.NHPerMM, 0.5,
		rlcint.RunLimits{Timeout: time.Minute, MaxIters: 1 << 30})
	if err != nil {
		t.Fatalf("generous limits must not alter a converging solve: %v", err)
	}
	ref, err := rlcint.Optimize(rlcint.Tech100(), 2*rlcint.NHPerMM, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if opt.H != ref.H || opt.K != ref.K {
		t.Errorf("limited solve diverged from unlimited: (%g,%g) vs (%g,%g)", opt.H, opt.K, ref.H, ref.K)
	}
}

func TestSweepCtxReturnsCompletedPrefix(t *testing.T) {
	ls := []float64{0, 0.5 * rlcint.NHPerMM, 1 * rlcint.NHPerMM, 2 * rlcint.NHPerMM}
	pts, err := rlcint.SweepCtx(context.Background(), rlcint.Tech100(), ls, 0.5,
		rlcint.RunLimits{MaxIters: 2})
	if !errors.Is(err, rlcint.ErrBudget) {
		t.Fatalf("want ErrBudget, got %v", err)
	}
	if len(pts) != 2 {
		t.Fatalf("stopped sweep kept %d points, want the 2 completed ones", len(pts))
	}
}

func TestMCFacadeParallelDeterminism(t *testing.T) {
	d := rlcint.UniformDist{Lo: 0, Hi: 8e-7}
	serial, err := rlcint.DelayUnderUncertaintyCtx(context.Background(), rlcint.Tech100(), 1e-3, 150, d, 32, 9,
		rlcint.UncertaintyOpts{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := rlcint.DelayUnderUncertaintyCtx(context.Background(), rlcint.Tech100(), 1e-3, 150, d, 32, 9,
		rlcint.UncertaintyOpts{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if serial != parallel {
		t.Fatalf("parallel MC diverged from serial:\n  %+v\n  %+v", serial, parallel)
	}
}
