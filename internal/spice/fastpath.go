package spice

// The sparse-kernel fast path. Three cooperating layers make the transient
// hot loop cheap without changing what it computes:
//
//  1. Symbolic caching (internal/sparse): the first Newton iteration of each
//     solve runs a full Factorize (symbolic DFS + threshold pivoting); every
//     later iteration replays the stored pattern and pivot sequence with a
//     numeric-only Refactorize, falling back to a full factorization when
//     the pivot-health guard trips. The symbolic analysis is refreshed at
//     the start of every solve so a checkpoint resume — which rebuilds the
//     solver state from scratch at a grid boundary — reproduces the
//     uninterrupted run bit-exactly.
//
//  2. Partitioned stamping: elements are classified once per analysis into
//     linear (R, C, L, K, independent sources — constant stamps for a fixed
//     timestep configuration) and nonlinear (inverter cores, MOSFETs). Each
//     solve pre-stamps the linear partition once — Jacobian values into
//     linX, the affine residual-at-zero into linRes — and each Newton
//     iteration/damping trial rebuilds the system as
//     X = linX + nonlinear stamps, res = linRes + A_lin·x + nonlinear terms,
//     touching only the handful of nonlinear devices.
//
//  3. Linear-circuit bypass: with no nonlinear devices the Jacobian is
//     independent of the iterate, so each unique (dt, method, dc, gmin)
//     configuration is factored exactly once per run and reused across all
//     steps; iterations re-evaluate only the residual (loader with nil jac).
//     Because the bypass runs the same Newton loop, the same residual
//     assembly arithmetic, and factors numerically identical to what the
//     legacy path would compute, its waveforms are bit-exact with the
//     legacy path.
//
// TranOpts.NoFastPath disables all three layers and restores the legacy
// per-iteration full-restamp/full-factorize behaviour (the differential
// test suite runs both and compares).

import (
	"errors"
	"fmt"

	"rlcint/internal/diag"
	"rlcint/internal/sparse"
)

// fastPivTol is the relaxed threshold-pivoting tolerance used by the fast
// path's full factorizations: MNA diagonals are almost always acceptable
// pivots, and preferring them preserves sparsity and keeps the pivot
// sequence stable across refactorizations (the relaxation lu.go's own
// documentation recommends for MNA systems).
const fastPivTol = 1e-3

// maxCachedFactors bounds the linear-bypass factorization cache. A fixed
// grid run needs a handful of entries (base dt in BE and TR flavours plus
// halved recovery steps); the adaptive stepper generates unbounded dt
// values, so on overflow the cache is dropped and rebuilt with whatever
// configurations are now in play.
const maxCachedFactors = 12

// luKey identifies a timestep configuration with an x-independent Jacobian:
// for a linear circuit the assembled matrix depends on exactly these four
// values (source ramp and time scale only the right-hand side).
type luKey struct {
	dt, gmin float64
	trap, dc bool
}

// fastAssembly is the per-analysis state of the fast path, owned by
// newtonState.
type fastAssembly struct {
	ready      bool   // pattern frozen, buffers sized
	linearOnly bool   // no nonlinear devices: the bypass applies
	starts     []int  // per-element start index in the stamp sequence
	isNL       []bool // per-element nonlinearity flag
	nlIdx      []int  // indices of nonlinear elements
	csc        *sparse.CSC
	linX       []float64            // linear-partition Jacobian values, len nnz
	linRes     []float64            // linear-partition residual at x = 0
	zero       []float64            // all-zero iterate for the linear pre-stamp
	factors    map[luKey]*sparse.LU // linear-bypass factorization cache
}

// classify partitions the circuit's elements for the fast path; called once
// from newNewtonState.
func (f *fastAssembly) classify(c *Circuit) {
	f.starts = make([]int, len(c.elems))
	f.isNL = make([]bool, len(c.elems))
	for i, e := range c.elems {
		if _, ok := e.(nonlinearDevice); ok {
			f.isNL[i] = true
			f.nlIdx = append(f.nlIdx, i)
		}
	}
	f.linearOnly = len(f.nlIdx) == 0
}

// prepareFast readies the fast path for one solve: on first use it records
// the stamping pattern (via a throwaway full assembly) and sizes the
// buffers, then it pre-stamps the linear partition for the solve's timestep
// configuration — Jacobian values into linX, the residual evaluated at
// x = 0 (sources, companion-model history, xPrev terms) into linRes. Both
// stay valid for every Newton iteration and damping trial of the solve
// because linear stamps depend only on (dt, method, gmin, srcRamp, t,
// xPrev, element history), all fixed within it.
func (ns *newtonState) prepareFast(ld *loader) {
	f := &ns.fast
	if !f.ready {
		if !ns.trip.Frozen() {
			ns.assemble(ld) // records per-element stamp ranges as a side effect
		}
		f.csc = ns.trip.Compile()
		f.linX = make([]float64, f.csc.NNZ())
		f.linRes = make([]float64, ns.n)
		f.zero = make([]float64, ns.n)
		f.ready = true
	}
	ns.trip.Reset()
	for i := range f.linRes {
		f.linRes[i] = 0
	}
	ld.nNodes = ns.nNodes
	ld.jac = ns.trip
	ld.res = f.linRes
	ld.x = f.zero
	for i, e := range ns.c.elems {
		if !f.isNL[i] {
			ns.trip.Seek(f.starts[i])
			e.load(ld)
		}
	}
	copy(f.linX, f.csc.X)
	ld.x = ns.x
	ld.res = ns.res
}

// assembleFast rebuilds the Jacobian and residual for the iterate in ld.x
// from the cached linear partition: copy linX into the matrix values, start
// the residual from linRes plus the linear matvec A_lin·x, then restamp
// only the nonlinear devices. For a segmented RLC ladder with a handful of
// repeaters this replaces a walk over every element with a memcpy, a sparse
// matvec, and a few device evaluations; it allocates nothing.
func (ns *newtonState) assembleFast(ld *loader) {
	f := &ns.fast
	copy(f.csc.X, f.linX)
	copy(ns.res, f.linRes)
	f.csc.GaxpyWith(f.linX, ld.x, ns.res)
	ld.nNodes = ns.nNodes
	ld.jac = ns.trip
	ld.res = ns.res
	for _, k := range f.nlIdx {
		ns.trip.Seek(f.starts[k])
		ns.c.elems[k].load(ld)
	}
}

// assembleRes evaluates only the residual at ld.x, walking every element
// with a nil Jacobian target. The arithmetic (element order, accumulation
// order) is identical to a full assembly, so the resulting residual is
// bit-identical to what the legacy path computes — the property the
// linear-circuit bypass's exactness rests on.
func (ns *newtonState) assembleRes(ld *loader) {
	for i := range ns.res {
		ns.res[i] = 0
	}
	ld.nNodes = ns.nNodes
	ld.jac = nil
	ld.res = ns.res
	for _, e := range ns.c.elems {
		e.load(ld)
	}
}

// linearFactor returns the cached factorization for the solve's timestep
// configuration, assembling and factoring it on first use. The returned
// flag reports whether a full assembly ran (its residual is already valid
// for the current iterate). Factorization uses strict partial pivoting on
// values that are independent of the iterate, so the factors — and hence
// every solve using them — are numerically identical to the legacy path's
// per-iteration factorizations.
func (ns *newtonState) linearFactor(ld *loader) (lu *sparse.LU, assembled bool, err error) {
	f := &ns.fast
	key := luKey{dt: ld.dt, gmin: ld.gmin, trap: ld.trap, dc: ld.dc}
	if lu, ok := f.factors[key]; ok {
		return lu, false, nil
	}
	ns.assemble(ld)
	csc := ns.trip.Compile()
	lu = sparse.Workspace(ns.n)
	if ferr := lu.Factorize(csc, 1); ferr != nil {
		return nil, true, ferr
	}
	if f.factors == nil {
		f.factors = make(map[luKey]*sparse.LU)
	}
	if len(f.factors) >= maxCachedFactors {
		clear(f.factors)
	}
	f.factors[key] = lu
	return lu, true, nil
}

// factorizeFast produces factors for the current fast-path Jacobian: a full
// symbolic+pivotal factorization on a fixed refresh schedule, numeric-only
// refactorization everywhere else, with a transparent fallback to a full
// factorization when the pivot-health guard — or an injected
// "spice.refactorize/<rung>" fault — reports the reused pivot sequence
// degraded.
//
// The refresh schedule is what keeps checkpoint resumes bit-exact. A resumed
// run starts from a fresh solver at grid step cp.Step+1, so its first solve
// necessarily runs a full factorization; checkpoints land only on steps
// divisible by CheckpointEvery (or the final step, from which no resume
// marches). Refreshing the symbolic analysis at the first solve of every
// grid step s with (s−1) mod CheckpointEvery == 0 therefore puts the
// uninterrupted run's full factorizations at exactly the solves where any
// resumed run performs its own — from identical state, with identical
// inputs — and every solve in between refactorizes identically in both.
func (ns *newtonState) factorizeFast(ld *loader, opts TranOpts, csc *sparse.CSC, iter int) error {
	if !ns.lu.Symbolic() || (iter == 1 && ld.step != ns.symStep && (ld.step-1)%opts.CheckpointEvery == 0) {
		if err := ns.lu.Factorize(csc, fastPivTol); err != nil {
			return err
		}
		ns.symStep = ld.step
		return nil
	}
	var rerr error
	if opts.Injector != nil {
		rerr = opts.Injector.At(diag.Site{Op: "spice.refactorize/" + ld.op,
			Time: ld.t, Step: ld.step, Iteration: iter, Gmin: ld.gmin})
	}
	if rerr == nil {
		rerr = ns.lu.Refactorize(csc)
		if rerr == nil {
			return nil
		}
		if !errors.Is(rerr, sparse.ErrRefactorUnhealthy) {
			return rerr
		}
	}
	opts.Report.Record("newton-fast", "refactor-fallback", diag.OutcomeOK,
		fmt.Sprintf("t=%g iter=%d", ld.t, iter), rerr)
	return ns.lu.Factorize(csc, fastPivTol)
}
