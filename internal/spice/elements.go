package spice

import (
	"fmt"
	"math"
	"sort"
)

// --- Resistor ---

type resistor struct {
	a, b NodeID
	g    float64 // conductance
}

// AddR adds a resistor of r ohms between a and b.
func (c *Circuit) AddR(a, b NodeID, r float64) error {
	if r <= 0 || math.IsInf(r, 0) || math.IsNaN(r) {
		return fmt.Errorf("spice: AddR: non-physical resistance %g", r)
	}
	c.addElem(&resistor{a: a, b: b, g: 1 / r})
	return nil
}

func (e *resistor) load(ld *loader) {
	i := e.g * (ld.v(e.a) - ld.v(e.b))
	ld.addRes(e.a, i)
	ld.addRes(e.b, -i)
	ld.addJ(e.a, e.a, e.g)
	ld.addJ(e.a, e.b, -e.g)
	ld.addJ(e.b, e.a, -e.g)
	ld.addJ(e.b, e.b, e.g)
}

func (e *resistor) accept(ld *loader) {}

// --- Capacitor ---

type capacitor struct {
	a, b  NodeID
	c     float64
	iPrev float64 // trapezoidal state: capacitor current at the last accepted step
}

// AddC adds a capacitor of cap farads between a and b.
func (c *Circuit) AddC(a, b NodeID, cap float64) error {
	if cap <= 0 || math.IsInf(cap, 0) || math.IsNaN(cap) {
		return fmt.Errorf("spice: AddC: non-physical capacitance %g", cap)
	}
	c.addElem(&capacitor{a: a, b: b, c: cap})
	return nil
}

// current returns the capacitor current and its dI/dV for the active
// integration method.
func (e *capacitor) current(ld *loader) (i, didv float64) {
	if ld.dc {
		return 0, 0
	}
	dv := (ld.v(e.a) - ld.v(e.b)) - (ld.vPrev(e.a) - ld.vPrev(e.b))
	if ld.trap {
		g := 2 * e.c / ld.dt
		return g*dv - e.iPrev, g
	}
	g := e.c / ld.dt
	return g * dv, g
}

func (e *capacitor) load(ld *loader) {
	i, g := e.current(ld)
	ld.addRes(e.a, i)
	ld.addRes(e.b, -i)
	if g != 0 {
		ld.addJ(e.a, e.a, g)
		ld.addJ(e.a, e.b, -g)
		ld.addJ(e.b, e.a, -g)
		ld.addJ(e.b, e.b, g)
	} else {
		// DC: keep the matrix structurally non-singular for floating nodes.
		ld.addJ(e.a, e.a, ld.gmin)
		ld.addJ(e.b, e.b, ld.gmin)
	}
}

func (e *capacitor) accept(ld *loader) {
	i, _ := e.current(ld)
	e.iPrev = i
}

// --- Inductor ---

// Inductor is the handle returned by AddL; its branch current can be probed.
type Inductor struct {
	a, b NodeID
	l    float64
	bidx int
}

// AddL adds an inductor of l henries between a and b and returns a handle
// for probing its branch current.
func (c *Circuit) AddL(a, b NodeID, l float64) (*Inductor, error) {
	if l <= 0 || math.IsInf(l, 0) || math.IsNaN(l) {
		return nil, fmt.Errorf("spice: AddL: non-physical inductance %g", l)
	}
	e := &Inductor{a: a, b: b, l: l}
	c.addElem(e)
	return e, nil
}

func (e *Inductor) setBranchBase(b int) { e.bidx = b }
func (e *Inductor) numBranches() int    { return 1 }

func (e *Inductor) load(ld *loader) {
	i := ld.branch(e.bidx)
	// KCL: current flows a -> b through the inductor.
	ld.addRes(e.a, i)
	ld.addRes(e.b, -i)
	ld.addJNodeBranch(e.a, e.bidx, 1)
	ld.addJNodeBranch(e.b, e.bidx, -1)
	// Branch equation.
	v := ld.v(e.a) - ld.v(e.b)
	switch {
	case ld.dc:
		// Short: v = 0.
		ld.addResRow(ld.branchRow(e.bidx), v)
		ld.addJBranchNode(e.bidx, e.a, 1)
		ld.addJBranchNode(e.bidx, e.b, -1)
		// Tiny diagonal keeps loops of shorts solvable.
		ld.addJBranchBranch(e.bidx, e.bidx, ld.gmin)
	case ld.trap:
		iPrev := ld.branchPrev(e.bidx)
		vPrev := ld.vPrev(e.a) - ld.vPrev(e.b)
		r := 2 * e.l / ld.dt
		ld.addResRow(ld.branchRow(e.bidx), v+vPrev-r*(i-iPrev))
		ld.addJBranchNode(e.bidx, e.a, 1)
		ld.addJBranchNode(e.bidx, e.b, -1)
		ld.addJBranchBranch(e.bidx, e.bidx, -r)
	default: // backward Euler
		iPrev := ld.branchPrev(e.bidx)
		r := e.l / ld.dt
		ld.addResRow(ld.branchRow(e.bidx), v-r*(i-iPrev))
		ld.addJBranchNode(e.bidx, e.a, 1)
		ld.addJBranchNode(e.bidx, e.b, -1)
		ld.addJBranchBranch(e.bidx, e.bidx, -r)
	}
}

func (e *Inductor) accept(ld *loader) {}

// --- Waveforms ---

// Waveform is a time-dependent source value.
type Waveform interface {
	At(t float64) float64
}

// DC is a constant source value.
type DC float64

// At implements Waveform.
func (d DC) At(float64) float64 { return float64(d) }

// Pulse is the SPICE PULSE source: V0→V1 after Delay with linear Rise, hold
// Width, linear Fall, repeating with Period when Period > 0.
type Pulse struct {
	V0, V1                   float64
	Delay, Rise, Width, Fall float64
	Period                   float64
}

// At implements Waveform.
func (p Pulse) At(t float64) float64 {
	t -= p.Delay
	if t < 0 {
		return p.V0
	}
	if p.Period > 0 {
		t = math.Mod(t, p.Period)
	}
	switch {
	case t < p.Rise:
		if p.Rise == 0 {
			return p.V1
		}
		return p.V0 + (p.V1-p.V0)*t/p.Rise
	case t < p.Rise+p.Width:
		return p.V1
	case t < p.Rise+p.Width+p.Fall:
		if p.Fall == 0 {
			return p.V0
		}
		return p.V1 + (p.V0-p.V1)*(t-p.Rise-p.Width)/p.Fall
	default:
		return p.V0
	}
}

// PWL is a piecewise-linear waveform through (T[i], V[i]) points; constant
// before the first and after the last point. Times must be increasing.
type PWL struct {
	T, V []float64
}

// At implements Waveform.
func (w PWL) At(t float64) float64 {
	n := len(w.T)
	if n == 0 {
		return 0
	}
	if t <= w.T[0] {
		return w.V[0]
	}
	if t >= w.T[n-1] {
		return w.V[n-1]
	}
	i := sort.SearchFloat64s(w.T, t)
	t0, t1 := w.T[i-1], w.T[i]
	v0, v1 := w.V[i-1], w.V[i]
	return v0 + (v1-v0)*(t-t0)/(t1-t0)
}

// Sine is offset + amp·sin(2π·freq·(t−delay)) for t ≥ delay.
type Sine struct {
	Offset, Amp, Freq, Delay float64
}

// At implements Waveform.
func (s Sine) At(t float64) float64 {
	if t < s.Delay {
		return s.Offset
	}
	return s.Offset + s.Amp*math.Sin(2*math.Pi*s.Freq*(t-s.Delay))
}

// --- Voltage source ---

// VSource is the handle returned by AddV; its branch current can be probed.
type VSource struct {
	a, b NodeID
	w    Waveform
	bidx int
}

// AddV adds an independent voltage source v(a) − v(b) = w(t) and returns a
// handle for probing its branch current (positive current flows from a to b
// through the source, i.e. out of the + terminal into the circuit is
// negative by this convention).
func (c *Circuit) AddV(a, b NodeID, w Waveform) (*VSource, error) {
	if w == nil {
		return nil, fmt.Errorf("spice: AddV: nil waveform")
	}
	e := &VSource{a: a, b: b, w: w}
	c.addElem(e)
	return e, nil
}

func (e *VSource) setBranchBase(b int) { e.bidx = b }
func (e *VSource) numBranches() int    { return 1 }

func (e *VSource) load(ld *loader) {
	i := ld.branch(e.bidx)
	ld.addRes(e.a, i)
	ld.addRes(e.b, -i)
	ld.addJNodeBranch(e.a, e.bidx, 1)
	ld.addJNodeBranch(e.b, e.bidx, -1)
	t := ld.t
	if ld.dc {
		t = 0
	}
	ld.addResRow(ld.branchRow(e.bidx), ld.v(e.a)-ld.v(e.b)-ld.srcScale()*e.w.At(t))
	ld.addJBranchNode(e.bidx, e.a, 1)
	ld.addJBranchNode(e.bidx, e.b, -1)
}

func (e *VSource) accept(ld *loader) {}

// --- Current source ---

type isource struct {
	a, b NodeID
	w    Waveform
}

// AddI adds an independent current source driving w(t) amperes from a to b
// through the source (leaving node a).
func (c *Circuit) AddI(a, b NodeID, w Waveform) error {
	if w == nil {
		return fmt.Errorf("spice: AddI: nil waveform")
	}
	c.addElem(&isource{a: a, b: b, w: w})
	return nil
}

func (e *isource) load(ld *loader) {
	t := ld.t
	if ld.dc {
		t = 0
	}
	i := ld.srcScale() * e.w.At(t)
	ld.addRes(e.a, i)
	ld.addRes(e.b, -i)
	// Structural gmin so a current source into an otherwise floating node
	// still yields a solvable (if stiff) system during DC.
	if ld.dc {
		ld.addJ(e.a, e.a, ld.gmin)
		ld.addJ(e.b, e.b, ld.gmin)
	}
}

func (e *isource) accept(ld *loader) {}
