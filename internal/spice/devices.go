package spice

import (
	"fmt"
	"math"
)

// InverterParams describe the calibrated inverter macro-model that realizes
// the paper's repeater abstraction: a linear output resistance Rs/k switched
// between the rails by a smooth threshold on the input, with lumped input
// and output capacitances. A size-k instance of a technology's minimum
// device uses ROut = rs/k, CIn = c0·k, COut = cp·k.
type InverterParams struct {
	VDD  float64 // supply, V
	ROut float64 // effective output resistance, Ω
	CIn  float64 // input capacitance to ground, F
	COut float64 // output parasitic capacitance to ground, F
	// Gain is the small-signal voltage gain magnitude at the switching
	// threshold; it sets how sharp the inverter's transfer characteristic
	// is. Values of 10–30 are CMOS-like. Defaults to 20.
	Gain float64
	// VM is the switching threshold; defaults to VDD/2.
	VM float64
}

func (p InverterParams) withDefaults() (InverterParams, error) {
	if p.VDD <= 0 || p.ROut <= 0 || p.CIn < 0 || p.COut < 0 {
		return p, fmt.Errorf("spice: invalid inverter parameters %+v", p)
	}
	if p.Gain == 0 {
		p.Gain = 20
	}
	if p.Gain < 1 {
		return p, fmt.Errorf("spice: inverter gain %g must be >= 1", p.Gain)
	}
	if p.VM == 0 {
		p.VM = p.VDD / 2
	}
	return p, nil
}

// inverterCore is the nonlinear output stage: a current source
// i_out = (V_target(v_in) − v_out)/ROut driving the output node, where
// V_target swings smoothly from VDD to 0 as v_in crosses VM.
type inverterCore struct {
	in, out NodeID
	p       InverterParams
}

// Inverter is the handle returned by AddInverter.
type Inverter struct {
	In, Out NodeID
	Params  InverterParams
}

// AddInverter adds a calibrated inverter macro-model between in and out,
// including its input and output capacitances (when nonzero).
func (c *Circuit) AddInverter(in, out NodeID, p InverterParams) (*Inverter, error) {
	p, err := p.withDefaults()
	if err != nil {
		return nil, err
	}
	c.addElem(&inverterCore{in: in, out: out, p: p})
	if p.CIn > 0 {
		if err := c.AddC(in, Ground, p.CIn); err != nil {
			return nil, err
		}
	}
	if p.COut > 0 {
		if err := c.AddC(out, Ground, p.COut); err != nil {
			return nil, err
		}
	}
	return &Inverter{In: in, Out: out, Params: p}, nil
}

// target returns V_target(vin) and its derivative. The transfer curve is
// V_target = VDD·σ(2·Gain·(VM−vin)/VDD) with σ the logistic function, whose
// slope at vin = VM is exactly −Gain·... (σ' = 1/4 at 0, so the gain at VM
// is Gain/2; the factor keeps the curve inside the rails with CMOS-like
// sharpness).
func (e *inverterCore) target(vin float64) (vt, dvt float64) {
	p := e.p
	x := 2 * p.Gain * (p.VM - vin) / p.VDD
	// Logistic with overflow guards.
	var sig, dsig float64
	switch {
	case x > 40:
		sig, dsig = 1, 0
	case x < -40:
		sig, dsig = 0, 0
	default:
		ex := math.Exp(-x)
		sig = 1 / (1 + ex)
		dsig = sig * (1 - sig)
	}
	vt = p.VDD * sig
	dvt = p.VDD * dsig * (-2 * p.Gain / p.VDD)
	return
}

func (e *inverterCore) load(ld *loader) {
	g := 1 / e.p.ROut
	vt, dvt := e.target(ld.v(e.in))
	// Current leaving the output node into the driver: g·(vout − vt).
	i := g * (ld.v(e.out) - vt)
	ld.addRes(e.out, i)
	ld.addJ(e.out, e.out, g)
	ld.addJ(e.out, e.in, -g*dvt)
}

func (e *inverterCore) accept(ld *loader) {}

// nonlinear marks the inverter core for the partitioned-assembly fast path.
func (e *inverterCore) nonlinear() {}

// MOSFETParams parameterize the alpha-power-law MOSFET (Sakurai–Newton).
type MOSFETParams struct {
	PMOS  bool
	VT    float64 // threshold voltage magnitude, V (positive for both types)
	Alpha float64 // velocity-saturation index, 1 (fully saturated) .. 2 (long channel)
	KSat  float64 // saturation current factor: Idsat = KSat·(Vgs−VT)^Alpha, A/V^α
	KV    float64 // saturation voltage factor: Vdsat = KV·(Vgs−VT)^(Alpha/2), V^(1−α/2)
	GLeak float64 // off-state leak conductance for Newton robustness; default 1e-12 S
}

func (p MOSFETParams) withDefaults() (MOSFETParams, error) {
	if p.VT <= 0 || p.Alpha < 1 || p.Alpha > 2 || p.KSat <= 0 || p.KV <= 0 {
		return p, fmt.Errorf("spice: invalid MOSFET parameters %+v", p)
	}
	if p.GLeak == 0 {
		p.GLeak = 1e-12
	}
	return p, nil
}

type mosfet struct {
	d, g, s NodeID
	p       MOSFETParams
}

// AddMOSFET adds an alpha-power-law transistor with drain d, gate g,
// source s (bulk tied to source).
func (c *Circuit) AddMOSFET(d, g, s NodeID, p MOSFETParams) error {
	p, err := p.withDefaults()
	if err != nil {
		return err
	}
	c.addElem(&mosfet{d: d, g: g, s: s, p: p})
	return nil
}

// ids returns the drain current (flowing d→s for NMOS conventions) and its
// partial derivatives w.r.t. vgs and vds, for vds ≥ 0. Callers handle
// polarity and reverse mode.
func (p MOSFETParams) ids(vgs, vds float64) (id, dIdVgs, dIdVds float64) {
	vov := vgs - p.VT
	if vov <= 0 {
		return p.GLeak * vds, 0, p.GLeak
	}
	idsat := p.KSat * math.Pow(vov, p.Alpha)
	vdsat := p.KV * math.Pow(vov, p.Alpha/2)
	dIdsat := p.KSat * p.Alpha * math.Pow(vov, p.Alpha-1)
	dVdsat := p.KV * (p.Alpha / 2) * math.Pow(vov, p.Alpha/2-1)
	if vds >= vdsat {
		// Saturation.
		return idsat + p.GLeak*vds, dIdsat, p.GLeak
	}
	// Triode: Id = Idsat·(2 − vds/vdsat)·(vds/vdsat).
	u := vds / vdsat
	id = idsat*(2-u)*u + p.GLeak*vds
	dIdVds = idsat*(2-2*u)/vdsat + p.GLeak
	// du/dvgs = −vds/vdsat²·dVdsat
	dudg := -vds / (vdsat * vdsat) * dVdsat
	dIdVgs = dIdsat*(2-u)*u + idsat*(2-2*u)*dudg
	return
}

func (e *mosfet) load(ld *loader) {
	// Work in negated coordinates for PMOS (w = sp·v); the device is then an
	// NMOS. With f = current leaving the working drain, the current leaving
	// the ORIGINAL drain is sp·f, and the chain rule ∂(sp·f)/∂v = sp·(∂f/∂w)·sp
	// leaves the Jacobian entries unchanged.
	sp := 1.0
	if e.p.PMOS {
		sp = -1
	}
	wd, wg, ws := sp*ld.v(e.d), sp*ld.v(e.g), sp*ld.v(e.s)
	var f, jd, jg, js float64
	if wd >= ws {
		id, dg, dd := e.p.ids(wg-ws, wd-ws)
		f, jd, jg, js = id, dd, dg, -dd-dg
	} else {
		// Source/drain reversed (symmetric device): current flows working
		// source -> working drain.
		id, dg, dd := e.p.ids(wg-wd, ws-wd)
		f, js, jg, jd = -id, -dd, -dg, dd+dg
	}
	i := sp * f
	ld.addRes(e.d, i)
	ld.addRes(e.s, -i)
	ld.addJ(e.d, e.d, jd)
	ld.addJ(e.d, e.g, jg)
	ld.addJ(e.d, e.s, js)
	ld.addJ(e.s, e.d, -jd)
	ld.addJ(e.s, e.g, -jg)
	ld.addJ(e.s, e.s, -js)
}

func (e *mosfet) accept(ld *loader) {}

// nonlinear marks the MOSFET for the partitioned-assembly fast path.
func (e *mosfet) nonlinear() {}
