package spice

import (
	"math"
	"testing"
)

func rcCircuit() (*Circuit, NodeID) {
	c := New()
	in, out := c.Node("in"), c.Node("out")
	c.AddV(in, Ground, DC(1))
	c.AddR(in, out, 1)
	c.AddC(out, Ground, 1)
	c.SetIC(out, 0)
	return c, out
}

func TestAdaptiveRCAccuracy(t *testing.T) {
	c, _ := rcCircuit()
	res, err := c.TransientAdaptive(AdaptiveOpts{TStop: 5, UseICs: true, LTETol: 1e-5},
		c.ProbeNode("out"))
	if err != nil {
		t.Fatal(err)
	}
	v, _ := res.Signal("out")
	if len(res.T) < 10 {
		t.Fatalf("only %d samples", len(res.T))
	}
	for i, tt := range res.T {
		want := 1 - math.Exp(-tt)
		if math.Abs(v[i]-want) > 5e-4 {
			t.Fatalf("t=%v: v=%v, want %v", tt, v[i], want)
		}
	}
	// Time axis strictly increasing and ends at TStop.
	for i := 1; i < len(res.T); i++ {
		if res.T[i] <= res.T[i-1] {
			t.Fatalf("non-monotone time axis at %d", i)
		}
	}
	if math.Abs(res.T[len(res.T)-1]-5) > 1e-9 {
		t.Errorf("final time %v, want 5", res.T[len(res.T)-1])
	}
}

func TestAdaptiveUsesFewerStepsThanFixed(t *testing.T) {
	// For a settling exponential, the controller must stretch the step as
	// the solution flattens: far fewer points than a fixed grid of equal
	// worst-case accuracy.
	c, _ := rcCircuit()
	res, err := c.TransientAdaptive(AdaptiveOpts{TStop: 20, UseICs: true, LTETol: 1e-5},
		c.ProbeNode("out"))
	if err != nil {
		t.Fatal(err)
	}
	// Fixed grid achieving ~5e-4 needs dt ≈ 0.02 → 1000 steps over [0,20].
	if len(res.T) > 600 {
		t.Errorf("adaptive run used %d steps; expected well under a fixed grid's 1000", len(res.T))
	}
	// Steps near the end must be much larger than the early ones.
	early := res.T[3] - res.T[2]
	n := len(res.T)
	late := res.T[n-2] - res.T[n-3]
	if late < 3*early {
		t.Errorf("controller did not stretch: early dt %v, late dt %v", early, late)
	}
}

func TestAdaptiveOscillatorTracksRinging(t *testing.T) {
	// Underdamped series RLC: the adaptive run must track the ringing
	// (accuracy against the closed form) while still varying its step.
	c := New()
	in, mid, out := c.Node("in"), c.Node("mid"), c.Node("out")
	c.AddV(in, Ground, DC(1))
	c.AddR(in, mid, 0.5)
	c.AddL(mid, out, 1)
	c.AddC(out, Ground, 1)
	c.SetIC(out, 0)
	res, err := c.TransientAdaptive(AdaptiveOpts{TStop: 12, UseICs: true, LTETol: 3e-5},
		c.ProbeNode("out"))
	if err != nil {
		t.Fatal(err)
	}
	v, _ := res.Signal("out")
	alpha, beta := 0.25, math.Sqrt(1-0.0625)
	for i, tt := range res.T {
		want := 1 - math.Exp(-alpha*tt)*(math.Cos(beta*tt)+alpha/beta*math.Sin(beta*tt))
		if math.Abs(v[i]-want) > 5e-3 {
			t.Fatalf("t=%v: v=%v, want %v", tt, v[i], want)
		}
	}
}

func TestAdaptiveValidation(t *testing.T) {
	c, _ := rcCircuit()
	if _, err := c.TransientAdaptive(AdaptiveOpts{TStop: -1}); err == nil {
		t.Error("negative TStop must fail")
	}
	if _, err := New().TransientAdaptive(AdaptiveOpts{TStop: 1}); err == nil {
		t.Error("empty circuit must fail")
	}
}
