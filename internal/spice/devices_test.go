package spice

import (
	"math"
	"testing"
	"testing/quick"
)

func nparams() MOSFETParams {
	p, _ := MOSFETParams{VT: 0.3, Alpha: 1.3, KSat: 5e-4, KV: 0.8}.withDefaults()
	return p
}

func TestMOSFETIdsOffBelowThreshold(t *testing.T) {
	p := nparams()
	id, dg, dd := p.ids(0.2, 0.6) // vgs < VT
	if math.Abs(id-p.GLeak*0.6) > 1e-18 || dg != 0 || dd != p.GLeak {
		t.Errorf("subthreshold: id=%v dg=%v dd=%v", id, dg, dd)
	}
}

func TestMOSFETIdsContinuousAtVdsat(t *testing.T) {
	// Current and its vds-derivative match across the triode/saturation
	// boundary.
	p := nparams()
	vgs := 0.9
	vdsat := p.KV * math.Pow(vgs-p.VT, p.Alpha/2)
	below, _, dBelow := p.ids(vgs, vdsat*(1-1e-9))
	above, _, dAbove := p.ids(vgs, vdsat*(1+1e-9))
	if math.Abs(below-above) > 1e-9*above {
		t.Errorf("current discontinuous at vdsat: %v vs %v", below, above)
	}
	// dId/dVds drops to GLeak at the boundary from the triode side:
	// idsat·(2-2u)/vdsat -> 0 as u -> 1, so the two sides agree.
	if math.Abs(dBelow-dAbove) > 1e-6*p.KSat {
		t.Errorf("conductance discontinuous at vdsat: %v vs %v", dBelow, dAbove)
	}
}

func TestMOSFETIdsDerivativesMatchFD(t *testing.T) {
	p := nparams()
	cases := [][2]float64{{0.9, 0.1}, {0.9, 0.5}, {1.2, 1.0}, {0.7, 0.05}}
	for _, c := range cases {
		vgs, vds := c[0], c[1]
		_, dg, dd := p.ids(vgs, vds)
		h := 1e-7
		ip, _, _ := p.ids(vgs+h, vds)
		im, _, _ := p.ids(vgs-h, vds)
		fdG := (ip - im) / (2 * h)
		ip, _, _ = p.ids(vgs, vds+h)
		im, _, _ = p.ids(vgs, vds-h)
		fdD := (ip - im) / (2 * h)
		if math.Abs(dg-fdG) > 1e-4*math.Abs(fdG)+1e-12 {
			t.Errorf("vgs=%v vds=%v: dIdVgs %v vs FD %v", vgs, vds, dg, fdG)
		}
		if math.Abs(dd-fdD) > 1e-4*math.Abs(fdD)+1e-12 {
			t.Errorf("vgs=%v vds=%v: dIdVds %v vs FD %v", vgs, vds, dd, fdD)
		}
	}
}

func TestMOSFETIdsMonotoneProperty(t *testing.T) {
	// Property: drain current is non-decreasing in both vgs and vds.
	p := nparams()
	prop := func(a, b, da, db float64) bool {
		u := func(x float64) float64 {
			m := math.Mod(x, 1.5)
			if math.IsNaN(m) {
				return 0.5
			}
			return math.Abs(m)
		}
		vgs, vds := u(a), u(b)
		dg, dd := u(da)/10, u(db)/10
		i0, _, _ := p.ids(vgs, vds)
		i1, _, _ := p.ids(vgs+dg, vds)
		i2, _, _ := p.ids(vgs, vds+dd)
		return i1 >= i0-1e-15 && i2 >= i0-1e-15
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestMOSFETElementSourceDrainAntisymmetry(t *testing.T) {
	// A symmetric device: swapping the drain and source voltages reverses
	// the terminal current. Probe through the assembled residual.
	c := New()
	d, g, s := c.Node("d"), c.Node("g"), c.Node("s")
	if err := c.AddMOSFET(d, g, s, MOSFETParams{VT: 0.3, Alpha: 1.3, KSat: 5e-4, KV: 0.8}); err != nil {
		t.Fatal(err)
	}
	resAt := func(vd, vg, vs float64) float64 {
		ns := newNewtonState(c)
		ns.x[d], ns.x[g], ns.x[s] = vd, vg, vs
		ld := &loader{t: 0, dt: 1, gmin: 1e-12}
		ld.x = ns.x
		ld.xPrev = ns.xPrev
		ns.assemble(ld)
		return ns.res[d] // current leaving the drain node
	}
	fwd := resAt(1.0, 1.2, 0.0)
	rev := resAt(0.0, 1.2, 1.0)
	if math.Abs(fwd+rev) > 1e-12*math.Abs(fwd) {
		t.Errorf("S/D swap not antisymmetric: %v vs %v", fwd, rev)
	}
	if fwd <= 0 {
		t.Errorf("forward current %v, want positive (leaving drain into channel)", fwd)
	}
}

func TestPMOSMirrorsNMOS(t *testing.T) {
	// A PMOS with all voltages negated carries the negated current of the
	// equivalent NMOS.
	build := func(pmos bool, vd, vg, vs float64) float64 {
		c := New()
		d, g, s := c.Node("d"), c.Node("g"), c.Node("s")
		if err := c.AddMOSFET(d, g, s, MOSFETParams{
			PMOS: pmos, VT: 0.3, Alpha: 1.3, KSat: 5e-4, KV: 0.8,
		}); err != nil {
			t.Fatal(err)
		}
		ns := newNewtonState(c)
		ns.x[d], ns.x[g], ns.x[s] = vd, vg, vs
		ld := &loader{t: 0, dt: 1, gmin: 1e-12}
		ld.x = ns.x
		ld.xPrev = ns.xPrev
		ns.assemble(ld)
		return ns.res[d]
	}
	nI := build(false, 0.8, 1.1, 0)
	pI := build(true, -0.8, -1.1, 0)
	if math.Abs(nI+pI) > 1e-15*math.Abs(nI) {
		t.Errorf("PMOS mirror broken: NMOS %v, PMOS %v", nI, pI)
	}
}

func TestCMOSRingOscillatorWithPhysicalDevices(t *testing.T) {
	// A 3-stage ring of alpha-power CMOS inverters with load caps: the
	// full nonlinear device path must sustain oscillation.
	if testing.Short() {
		t.Skip("transient simulation")
	}
	vdd := 1.2
	c := New()
	vddN := c.Node("vdd")
	c.AddV(vddN, Ground, DC(vdd))
	nodes := []NodeID{c.Node("a"), c.Node("b"), c.Node("cc")}
	par := MOSFETParams{VT: 0.3, Alpha: 1.3, KSat: 2e-3, KV: 0.8}
	for i := range nodes {
		in, out := nodes[i], nodes[(i+1)%3]
		if err := c.AddMOSFET(out, in, Ground, par); err != nil {
			t.Fatal(err)
		}
		pp := par
		pp.PMOS = true
		if err := c.AddMOSFET(out, in, vddN, pp); err != nil {
			t.Fatal(err)
		}
		c.AddC(out, Ground, 20e-15)
	}
	c.SetIC(nodes[0], vdd)
	c.SetIC(nodes[1], 0)
	c.SetIC(nodes[2], vdd)
	res, err := c.Transient(TranOpts{TStop: 3e-10, DT: 5e-14, UseICs: true}, c.ProbeNode("a"))
	if err != nil {
		t.Fatal(err)
	}
	v, _ := res.Signal("a")
	crossings := 0
	for i := 1; i < len(v); i++ {
		if (v[i-1]-vdd/2)*(v[i]-vdd/2) < 0 {
			crossings++
		}
	}
	if crossings < 4 {
		t.Errorf("CMOS ring: only %d crossings", crossings)
	}
}
