package spice

// The Krylov reduced-order-model fast path. For transient workloads whose
// runtime is dominated by time-stepping a large, mostly linear MNA system
// (the paper's Fig9–12 ring oscillators and buffered lines: a few nonlinear
// repeaters driving hundreds of linear RLC unknowns for tens of thousands of
// steps), the full sparse solve per step is overkill: the linear partition's
// response lives in a low-dimensional Krylov subspace.
//
// This file bridges the circuit representation to internal/mor:
//
//  1. classifyReduction picks the retained "port" rows — nonlinear device
//     terminals, source rows, probe rows — and refuses circuits containing
//     element or probe types it does not know how to classify.
//  2. extractSystem recovers (G, C) of the linear partition from the
//     element stamps themselves, with no per-element knowledge: stamping
//     the linear elements at two timesteps gives A(dt) = G + C/dt at
//     dt = 1 and dt = ½, so C = A(½) − A(1) and G = 2·A(1) − A(½). The
//     nonlinear devices' Jacobian at the initial state (stamped into the
//     same frozen pattern) yields the gate's closed linearized system, and
//     branch rows are sign-flipped into the passivity-friendly orientation
//     (making C symmetric positive semidefinite and G + Gᵀ PSD, which is
//     what keeps the projected reduced system stable).
//  3. mor.Reduce builds and gate-validates the projection; for circuits
//     with nonlinear devices a confirmation gate then compares a window of
//     REAL full-solver steps against the reduced nonlinear run, because the
//     linearized accuracy gate cannot see large-signal behaviour.
//  4. Validated models are cached under a content fingerprint (pattern,
//     values, ports, initial state, run shape, sampled source waveforms) so
//     repeated runs of the same circuit — benchmark iterations, parameter
//     sweeps revisiting a configuration — skip the build entirely.
//     Rejections are cached too.
//  5. reducedLoop replaces transientLoop: it marches the reduced system at
//     the gate-validated internal stride, solves the p-dimensional Newton
//     port system per step (p = a few dozen ≪ N), resamples onto the output
//     grid, and bails out to the full solver from t = 0 on any error.
//
// TranOpts.NoReduction (and AdaptiveOpts.NoReduction) disable the whole
// path; runs with NoFastPath set skip it too, since that flag promises the
// legacy solver's bit-exact arithmetic.

import (
	"fmt"
	"math"
	"sync"

	"rlcint/internal/diag"
	"rlcint/internal/mor"
	"rlcint/internal/runctl"
	"rlcint/internal/sparse"
)

// reduceMinUnknowns and reduceMinSteps gate when the reduction is even
// attempted: small systems or short windows cannot amortize the build.
const (
	reduceMinUnknowns = 24
	reduceMinSteps    = 64
)

// reduceTol is the relative RMS waveform tolerance of the linearized
// accuracy gate; the large-signal confirmation gate for nonlinear circuits
// allows confirmFactor times as much (real full-vs-reduced comparisons
// include Newton tolerance noise and, for oscillators, phase drift).
const (
	reduceTol     = 1e-4
	confirmFactor = 10
	confirmWindow = 1500
)

// classification is the port/row analysis of a circuit for reduction.
type classification struct {
	ports   []int // sorted retained global rows
	portIdx []int // global row → port index, -1 elsewhere
	nlIdx   []int // indices of nonlinear elements
	srcIdx  []int // indices of independent sources (u support)
	probePI []int // per probe: port index, or -1 for ground probes
}

// classifyReduction maps the circuit onto the reduction's port structure, or
// explains why it cannot (unknown element or probe types, ports covering the
// whole system).
func classifyReduction(c *Circuit, probes []Probe) (*classification, error) {
	nNodes := c.NumNodes()
	n := c.NumUnknowns()
	portSet := make(map[int]bool)
	addNode := func(id NodeID) {
		if id != Ground {
			portSet[int(id)] = true
		}
	}
	cl := &classification{}
	for i, e := range c.elems {
		switch el := e.(type) {
		case *resistor, *capacitor, *Inductor, *mutual:
			// Linear, stateless rows: fully internal.
		case *VSource:
			cl.srcIdx = append(cl.srcIdx, i)
			portSet[nNodes+el.bidx] = true
		case *isource:
			cl.srcIdx = append(cl.srcIdx, i)
			addNode(el.a)
			addNode(el.b)
		case *inverterCore:
			cl.nlIdx = append(cl.nlIdx, i)
			addNode(el.in)
			addNode(el.out)
		case *mosfet:
			cl.nlIdx = append(cl.nlIdx, i)
			addNode(el.d)
			addNode(el.g)
			addNode(el.s)
		default:
			return nil, diag.Domainf("spice.reduce", "element type %T has no reduction classification", e)
		}
	}
	for _, p := range probes {
		switch pr := p.(type) {
		case NodeProbe:
			addNode(pr.ID)
		case BranchProbe:
			portSet[nNodes+pr.L.bidx] = true
		case SourceCurrentProbe:
			portSet[nNodes+pr.V.bidx] = true
		default:
			return nil, diag.Domainf("spice.reduce", "probe type %T has no reduction classification", p)
		}
	}
	cl.portIdx = make([]int, n)
	for i := range cl.portIdx {
		cl.portIdx[i] = -1
	}
	for row := 0; row < n; row++ {
		if portSet[row] {
			cl.ports = append(cl.ports, row)
		}
	}
	for pi, row := range cl.ports {
		cl.portIdx[row] = pi
	}
	for _, p := range probes {
		pi := -1
		switch pr := p.(type) {
		case NodeProbe:
			if pr.ID != Ground {
				pi = cl.portIdx[int(pr.ID)]
			}
		case BranchProbe:
			pi = cl.portIdx[nNodes+pr.L.bidx]
		case SourceCurrentProbe:
			pi = cl.portIdx[nNodes+pr.V.bidx]
		}
		cl.probePI = append(cl.probePI, pi)
	}
	if len(cl.ports) == 0 || len(cl.ports) >= n-reduceMinUnknowns/3 {
		return nil, diag.Domainf("spice.reduce", "%d ports leave no internal rows worth reducing (n=%d)", len(cl.ports), n)
	}
	return cl, nil
}

// extracted bundles the mor system with the scratch the per-run source
// evaluation and port Newton callbacks need.
type extracted struct {
	sys    *mor.System
	cl     *classification
	nNodes int
}

// extractSystem recovers the linear partition (and the nonlinear Jacobian at
// x0 for the gate) from the element stamps via the two-timestep identity
// A(dt) = G + C/dt. It never mutates element state: load() only reads, and
// the zero-state source evaluation uses a residual-only loader.
func extractSystem(c *Circuit, cl *classification, x0 []float64, gmin float64) (*extracted, error) {
	n := c.NumUnknowns()
	nNodes := c.NumNodes()
	isNL := make([]bool, len(c.elems))
	for _, i := range cl.nlIdx {
		isNL[i] = true
	}

	trip := sparse.NewTriplet(n)
	res := make([]float64, n)
	starts := make([]int, len(c.elems))
	ld := &loader{nNodes: nNodes, x: x0, xPrev: x0, jac: trip, res: res, t: 0, dt: 1, gmin: gmin, op: "reduce"}
	for i, e := range c.elems {
		starts[i] = trip.Mark()
		e.load(ld)
	}
	csc := trip.Compile()
	nnz := csc.NNZ()

	replay := func(dt float64, nlOnly bool) []float64 {
		trip.Reset()
		for i := range res {
			res[i] = 0
		}
		ld.dt = dt
		for i, e := range c.elems {
			if isNL[i] == nlOnly {
				trip.Seek(starts[i])
				e.load(ld)
			}
		}
		return append([]float64(nil), csc.X...)
	}
	a1 := replay(1, false)
	a2 := replay(0.5, false)
	jnl := replay(1, true)
	inl0 := append([]float64(nil), res...) // nonlinear residual at x0

	g := make([]float64, nnz)
	cv := make([]float64, nnz)
	ggate := make([]float64, nnz)
	for i := range g {
		g[i] = 2*a1[i] - a2[i]
		cv[i] = a2[i] - a1[i]
		ggate[i] = g[i] + jnl[i]
	}
	// Flip branch rows into the passive orientation (see package comment).
	for j := 0; j < n; j++ {
		for p := csc.P[j]; p < csc.P[j+1]; p++ {
			if csc.I[p] >= nNodes {
				g[p] = -g[p]
				cv[p] = -cv[p]
				ggate[p] = -ggate[p]
			}
		}
	}
	hasNL := len(cl.nlIdx) > 0
	if !hasNL {
		ggate = nil
	}

	// U0 = J_nl·x0 − i_nl(x0): the affine offset of the gate's linearization.
	var u0 []float64
	if hasNL {
		jx0 := make([]float64, n)
		csc.GaxpyWith(jnl, x0, jx0)
		u0 = make([]float64, len(cl.ports))
		for pi, row := range cl.ports {
			v := jx0[row] - inl0[row]
			if row >= nNodes {
				v = -v
			}
			u0[pi] = v
		}
	}

	ex := &extracted{cl: cl, nNodes: nNodes}
	ex.sys = &mor.System{
		N:       n,
		Pattern: csc,
		G:       g,
		C:       cv,
		GGate:   ggate,
		Ports:   append([]int(nil), cl.ports...),
		X0:      append([]float64(nil), x0...),
		U:       ex.sourceEval(c),
		U0:      u0,
	}
	return ex, nil
}

// sourceEval returns the port-local source closure u(t): the negated
// zero-state residual of the independent sources, with branch rows flipped
// to match the extracted orientation. Allocation-free after construction.
func (ex *extracted) sourceEval(c *Circuit) func(t float64, up []float64) {
	n := c.NumUnknowns()
	zeroX := make([]float64, n)
	resU := make([]float64, n)
	srcElems := make([]element, 0, len(ex.cl.srcIdx))
	for _, i := range ex.cl.srcIdx {
		srcElems = append(srcElems, c.elems[i])
	}
	ports := ex.cl.ports
	nNodes := ex.nNodes
	ldU := &loader{nNodes: nNodes, x: zeroX, xPrev: zeroX, jac: nil, res: resU, dt: 1, op: "reduce-u"}
	return func(t float64, up []float64) {
		for _, row := range ports {
			resU[row] = 0
		}
		ldU.t = t
		for _, e := range srcElems {
			e.load(ldU)
		}
		for pi, row := range ports {
			if row >= nNodes {
				up[pi] = resU[row] // flipped branch row
			} else {
				up[pi] = -resU[row]
			}
		}
	}
}

// nlPortEval adapts the circuit's nonlinear devices to mor.PortEval: residual
// and Jacobian contributions on the port rows, stamped through a private
// frozen triplet whose (tiny) pattern is mapped onto the dense p×p Jacobian
// once at construction.
type nlPortEval struct {
	elems  []element
	starts []int
	trip   *sparse.Triplet
	csc    *sparse.CSC
	x, res []float64
	ports  []int
	// jmap[k] = dense p×p index of the k-th pattern entry, or -1 when the
	// entry falls off the port block (never in practice: nonlinear devices
	// stamp only their own terminals, which are all ports).
	jmap   []int
	nNodes int
	ld     loader
}

func newNLPortEval(c *Circuit, cl *classification, n int) (*nlPortEval, error) {
	pe := &nlPortEval{
		trip:   sparse.NewTriplet(n),
		x:      make([]float64, n),
		res:    make([]float64, n),
		ports:  cl.ports,
		nNodes: c.NumNodes(),
	}
	pe.ld = loader{nNodes: pe.nNodes, dt: 1, op: "reduce-nl"}
	pe.ld.jac = pe.trip
	pe.ld.res = pe.res
	pe.ld.x = pe.x
	pe.ld.xPrev = pe.x
	for _, i := range cl.nlIdx {
		pe.elems = append(pe.elems, c.elems[i])
		pe.starts = append(pe.starts, pe.trip.Mark())
		c.elems[i].load(&pe.ld)
	}
	pe.csc = pe.trip.Compile()
	p := len(cl.ports)
	for j := 0; j < n; j++ {
		for k := pe.csc.P[j]; k < pe.csc.P[j+1]; k++ {
			ri, ci := cl.portIdx[pe.csc.I[k]], cl.portIdx[j]
			if ri < 0 || ci < 0 {
				return nil, diag.Domainf("spice.reduce", "nonlinear stamp at (%d,%d) escapes the port set", pe.csc.I[k], j)
			}
			pe.jmap = append(pe.jmap, ri*p+ci)
		}
	}
	return pe, nil
}

// Eval implements mor.PortEval.
func (pe *nlPortEval) Eval(v, res, jac []float64) {
	for pi, row := range pe.ports {
		pe.x[row] = v[pi]
		pe.res[row] = 0
	}
	pe.trip.Reset()
	for k, e := range pe.elems {
		pe.trip.Seek(pe.starts[k])
		e.load(&pe.ld)
	}
	for pi, row := range pe.ports {
		res[pi] += pe.res[row]
	}
	for k, di := range pe.jmap {
		jac[di] += pe.csc.X[k]
	}
}

// --- model cache ---

type morCacheEntry struct {
	model *mor.Model // nil: the reduction was rejected for this fingerprint
}

var morCache struct {
	mu sync.Mutex
	m  map[uint64]*morCacheEntry
}

const morCacheMax = 16

func morCacheGet(fp uint64) (*morCacheEntry, bool) {
	morCache.mu.Lock()
	defer morCache.mu.Unlock()
	e, ok := morCache.m[fp]
	return e, ok
}

func morCachePut(fp uint64, e *morCacheEntry) {
	morCache.mu.Lock()
	defer morCache.mu.Unlock()
	if morCache.m == nil {
		morCache.m = make(map[uint64]*morCacheEntry)
	}
	if len(morCache.m) >= morCacheMax {
		clear(morCache.m)
	}
	morCache.m[fp] = e
}

// fnv1a64 accumulates FNV-64a over raw uint64 words.
type fnv1a64 uint64

func newFNV() fnv1a64 { return 0xcbf29ce484222325 }

func (h *fnv1a64) word(w uint64) {
	x := uint64(*h)
	for i := 0; i < 8; i++ {
		x ^= w & 0xff
		x *= 0x100000001b3
		w >>= 8
	}
	*h = fnv1a64(x)
}

func (h *fnv1a64) float(f float64) { h.word(math.Float64bits(f)) }

func (h *fnv1a64) ints(v []int) {
	for _, x := range v {
		h.word(uint64(x))
	}
}

func (h *fnv1a64) floats(v []float64) {
	for _, x := range v {
		h.float(x)
	}
}

// fingerprint identifies a (system, run shape) pair for the model cache.
// Source waveforms cannot be hashed structurally, so they are sampled on a
// coarse grid over the window — two runs that differ only in source content
// the sampling misses would share a model, which the gate has not validated
// against; 64 samples across the window makes that practically impossible
// for physical drive waveforms.
func (ex *extracted) fingerprint(opts mor.Options, tstop float64) uint64 {
	h := newFNV()
	sys := ex.sys
	h.word(uint64(sys.N))
	h.ints(sys.Pattern.P)
	h.ints(sys.Pattern.I)
	h.floats(sys.G)
	h.floats(sys.C)
	if sys.GGate != nil {
		h.floats(sys.GGate)
	}
	h.ints(sys.Ports)
	h.floats(sys.X0)
	if sys.U0 != nil {
		h.floats(sys.U0)
	}
	h.float(opts.DT)
	h.word(uint64(opts.NSteps))
	if opts.TR {
		h.word(1)
	}
	h.word(uint64(opts.BESteps))
	if opts.ForceStride1 {
		h.word(1 << 8)
	}
	h.float(opts.Tol)
	up := make([]float64, len(sys.Ports))
	for s := 0; s <= 64; s++ {
		sys.U(tstop*float64(s)/64, up)
		h.floats(up)
	}
	return uint64(h)
}

// --- reduced transient run ---

// reducedRun is everything the reduced fixed-grid loop needs.
type reducedRun struct {
	model  *mor.Model
	ex     *extracted
	pe     *nlPortEval // nil for linear circuits
	newton mor.NewtonOpts
	fp     uint64
}

// tryReduce attempts to build (or fetch) a validated reduced model for a
// fixed-grid run starting from x0. A nil return with nil error means "not
// applicable" — the caller proceeds with the full solver. Element state is
// left untouched. beSteps is the run's initial BE-startup count (the
// schedule the model is validated against).
func (c *Circuit) tryReduce(opts TranOpts, x0 []float64, probes []Probe, nSteps, beSteps int) (*reducedRun, error) {
	if opts.NoReduction || opts.NoFastPath {
		return nil, nil
	}
	if nSteps < reduceMinSteps || c.NumUnknowns() < reduceMinUnknowns {
		return nil, nil
	}
	tr := opts.Method == Trapezoidal
	if tr && beSteps < 1 {
		return nil, nil // the reduced TR recursion needs a BE seed step
	}
	cl, err := classifyReduction(c, probes)
	if err != nil {
		morStatRejected.Add(1)
		opts.Report.Record("mor", "classify", diag.OutcomeSkipped, err.Error(), nil)
		return nil, nil
	}
	ex, err := extractSystem(c, cl, x0, opts.Gmin)
	if err != nil {
		morStatRejected.Add(1)
		opts.Report.Record("mor", "extract", diag.OutcomeSkipped, err.Error(), nil)
		return nil, nil
	}
	mopts := mor.Options{
		DT:           opts.DT,
		NSteps:       nSteps,
		TR:           tr,
		BESteps:      beSteps,
		Tol:          reduceTol,
		ForceStride1: opts.CheckpointPath != "" || opts.resumeStride1,
		Injector:     opts.Injector,
		Report:       opts.Report,
	}
	fp := ex.fingerprint(mopts, opts.TStop)
	if e, ok := morCacheGet(fp); ok {
		if e.model == nil {
			return nil, nil
		}
		rr := c.finishReduce(e.model, ex, fp, opts)
		if rr != nil {
			morStatEngaged.Add(1)
			morStatCacheHits.Add(1)
			opts.Report.Record("mor", "accept", diag.OutcomeOK, acceptDetail(e.model, true), nil)
		}
		return rr, nil
	}
	model, rerr := mor.Reduce(ex.sys, mopts)
	if rerr != nil {
		morStatRejected.Add(1)
		opts.Report.Record("mor", "reduce", diag.OutcomeSkipped, rerr.Error(), nil)
		if !runctl.IsStop(rerr) {
			morCachePut(fp, &morCacheEntry{})
		}
		return nil, nil
	}
	rr := c.finishReduce(model, ex, fp, opts)
	if rr == nil {
		return nil, nil
	}
	// Large-signal confirmation for nonlinear circuits: the linearized gate
	// cannot see rail-to-rail behaviour.
	if rr.pe != nil {
		cerr, err := c.confirmReduced(rr, opts, nSteps, beSteps)
		if err != nil {
			if runctl.IsStop(err) {
				return nil, err
			}
			morStatRejected.Add(1)
			opts.Report.Record("mor", "confirm", diag.OutcomeSkipped, err.Error(), nil)
			morCachePut(fp, &morCacheEntry{})
			return nil, nil
		}
		if cerr > confirmFactor*reduceTol {
			morStatRejected.Add(1)
			opts.Report.Record("mor", "confirm", diag.OutcomeFailed,
				fmt.Sprintf("large-signal relerr=%.3g above %g", cerr, confirmFactor*reduceTol), nil)
			morCachePut(fp, &morCacheEntry{})
			return nil, nil
		}
		opts.Report.Record("mor", "confirm", diag.OutcomeOK, fmt.Sprintf("relerr=%.3g", cerr), nil)
	}
	morCachePut(fp, &morCacheEntry{model: model})
	morStatEngaged.Add(1)
	opts.Report.Record("mor", "accept", diag.OutcomeOK, acceptDetail(model, false), nil)
	return rr, nil
}

// acceptDetail summarizes an accepted reduced model for the diag report.
func acceptDetail(m *mor.Model, cached bool) string {
	s := fmt.Sprintf("order=%d comps=%v ports=%d stride=%d gate=%.3g",
		m.TotalOrder(), m.ComponentDims(), m.NumPorts(), m.Stride, m.GateErr)
	if cached {
		s += " (cached)"
	}
	return s
}

// finishReduce assembles the per-run pieces around a validated model; a nil
// return means the port-device adapter could not be built and the caller
// must fall back.
func (c *Circuit) finishReduce(model *mor.Model, ex *extracted, fp uint64, opts TranOpts) *reducedRun {
	rr := &reducedRun{
		model: model,
		ex:    ex,
		fp:    fp,
		newton: mor.NewtonOpts{
			MaxNewton: opts.MaxNewton,
			ITol:      opts.ITol,
			RelTol:    opts.RelTol,
			VNTol:     opts.VNTol,
			MaxStep:   opts.MaxStep,
		},
	}
	if len(ex.cl.nlIdx) > 0 {
		pe, err := newNLPortEval(c, ex.cl, c.NumUnknowns())
		if err != nil {
			opts.Report.Record("mor", "porteval", diag.OutcomeSkipped, err.Error(), nil)
			return nil
		}
		rr.pe = pe
	}
	return rr
}

// confirmReduced steps a window of the run with BOTH the real full solver
// and the reduced model and returns the worst per-port relative RMS error.
// Full-solver element state (capacitor histories) is restored afterwards, so
// the production run starts clean either way.
func (c *Circuit) confirmReduced(rr *reducedRun, opts TranOpts, nSteps, beSteps int) (float64, error) {
	w := nSteps
	if w > confirmWindow {
		w = confirmWindow
	}
	stride := rr.model.Stride
	if ni := w / stride; ni < 8 {
		w = 8 * stride
		if w > nSteps {
			w = nSteps
			stride = 1
		}
	}
	ni := w / stride
	w = ni * stride
	ports := rr.ex.cl.ports
	p := len(ports)

	// Full-solver reference. A dedicated newtonState keeps the production
	// solver untouched; capacitor companion histories are snapshotted.
	savedCaps := c.capStates()
	defer func() {
		_ = c.restoreCapStates(savedCaps)
	}()
	ns := newNewtonState(c)
	copy(ns.x, rr.ex.sys.X0)
	copy(ns.xPrev, ns.x)
	ref := make([][]float64, p)
	for pi := range ref {
		ref[pi] = make([]float64, w+1)
		ref[pi][0] = ns.x[ports[pi]]
	}
	be := beSteps
	for s := 1; s <= w; s++ {
		trap := opts.Method == Trapezoidal && be <= 0
		ld := &ns.ld
		*ld = loader{t: float64(s) * opts.DT, dt: opts.DT, trap: trap, gmin: opts.Gmin, op: "mor-confirm", step: s}
		copy(ns.xPrev, ns.x)
		if _, err := ns.solveNewton(ld, opts); err != nil {
			return 0, err
		}
		ld.x = ns.x
		ld.xPrev = ns.xPrev
		for _, e := range c.elems {
			e.accept(ld)
		}
		if be > 0 {
			be--
		}
		for pi := range ref {
			ref[pi][s] = ns.x[ports[pi]]
		}
	}

	// Reduced run over the same window.
	run := rr.model.NewRun()
	dtInt := float64(stride) * opts.DT
	stBE, err := rr.model.PrepStepper(dtInt, false)
	if err != nil {
		return 0, err
	}
	var stTR *mor.Stepper
	if opts.Method == Trapezoidal {
		if stTR, err = rr.model.PrepStepper(dtInt, true); err != nil {
			return 0, err
		}
	}
	u := make([]float64, p)
	uPrev := make([]float64, p)
	rr.ex.sys.U(0, uPrev)
	ts := make([]float64, ni+1)
	vals := make([][]float64, p)
	for pi := range vals {
		vals[pi] = make([]float64, ni+1)
		vals[pi][0] = run.PortValues()[pi]
	}
	for j := 1; j <= ni; j++ {
		t := float64(j*stride) * opts.DT
		st := stBE
		if rr.model.StepIsTR(j) {
			st = stTR
		}
		rr.ex.sys.U(t, u)
		if _, err := run.Advance(st, t, u, uPrev, rr.portEval(), rr.newton); err != nil {
			return 0, err
		}
		u, uPrev = uPrev, u
		ts[j] = t
		for pi := range vals {
			vals[pi][j] = run.PortValues()[pi]
		}
	}

	// Worst per-port relative RMS, with the same small-signal floor the
	// linearized gate uses.
	out := make([]float64, w+1)
	rms := make([]float64, p)
	scale := make([]float64, p)
	maxScale := 0.0
	for pi := 0; pi < p; pi++ {
		if stride == 1 {
			copy(out, vals[pi])
		} else {
			mor.ResampleHermite(ts, vals[pi], opts.DT, out)
		}
		var se, sr float64
		for s := 0; s <= w; s++ {
			d := ref[pi][s] - out[s]
			se += d * d
			sr += ref[pi][s] * ref[pi][s]
		}
		rms[pi] = math.Sqrt(se / float64(w+1))
		scale[pi] = math.Sqrt(sr / float64(w+1))
		if scale[pi] > maxScale {
			maxScale = scale[pi]
		}
	}
	worst := 0.0
	for pi := 0; pi < p; pi++ {
		den := scale[pi]
		if floor := 1e-6 * maxScale; den < floor {
			den = floor
		}
		if den == 0 {
			den = 1
		}
		e := rms[pi] / den
		if math.IsNaN(e) {
			return math.Inf(1), nil
		}
		if e > worst {
			worst = e
		}
	}
	return worst, nil
}

// portEval returns the nonlinear port adapter as the mor interface, with a
// true nil for linear circuits (a nil *nlPortEval boxed into the interface
// would defeat mor's pe == nil linear bypass).
func (rr *reducedRun) portEval() mor.PortEval {
	if rr.pe == nil {
		return nil
	}
	return rr.pe
}

// prepPair returns the BE (and, for trapezoidal runs, TR) steppers at dt.
func (rr *reducedRun) prepPair(opts TranOpts, dt float64) (stBE, stTR *mor.Stepper, err error) {
	if stBE, err = rr.model.PrepStepper(dt, false); err != nil {
		return nil, nil, err
	}
	if opts.Method == Trapezoidal {
		if stTR, err = rr.model.PrepStepper(dt, true); err != nil {
			return nil, nil, err
		}
	}
	return stBE, stTR, nil
}

// record appends one output grid sample from the reduced run's port values,
// using the same T formula as the full solver's loop.
func (rr *reducedRun) record(run *mor.Run, res *Result, opts TranOpts) {
	res.T = append(res.T, float64(len(res.T))*opts.DT)
	pv := run.PortValues()
	for i, pi := range rr.ex.cl.probePI {
		v := 0.0
		if pi >= 0 {
			v = pv[pi]
		}
		res.Signals[i] = append(res.Signals[i], v)
	}
}

// reducedLoopRun marches the reduced model from output step startStep
// through the end of the window. It returns (result, nil, false) on success,
// (nil, nil, true) when the run must bail out to the full solver (the caller
// reruns from scratch — element state is untouched, so that is always
// legal), and a non-nil error only for terminal run-control stops or
// checkpoint I/O failures, with the partial-result contract honoured.
func (c *Circuit) reducedLoopRun(opts TranOpts, rr *reducedRun, run *mor.Run, res *Result, probes []Probe, nSteps, startStep, beSteps int) (*Result, error, bool) {
	if rr.model.Stride == 1 {
		return c.reducedLoopDirect(opts, rr, run, res, probes, nSteps, startStep, beSteps)
	}
	return c.reducedLoopStrided(opts, rr, run, res, probes, nSteps)
}

// reducedLoopDirect is the stride-1 mode: every internal step lands on an
// output grid point, recorded directly — which makes checkpointing and
// resume possible, and keeps the partial-result contract sample-exact.
func (c *Circuit) reducedLoopDirect(opts TranOpts, rr *reducedRun, run *mor.Run, res *Result, probes []Probe, nSteps, startStep, beSteps int) (*Result, error, bool) {
	p := rr.model.NumPorts()
	stBE, stTR, err := rr.prepPair(opts, opts.DT)
	if err != nil {
		return nil, nil, true
	}
	u := make([]float64, p)
	uPrev := make([]float64, p)
	rr.ex.sys.U(float64(startStep-1)*opts.DT, uPrev)

	checkpointing := opts.CheckpointPath != ""
	var xFull, xFullPrev []float64
	if checkpointing {
		xFull = make([]float64, rr.model.N)
		xFullPrev = make([]float64, rr.model.N)
		run.ExpandInto(xFullPrev)
	}
	for j := startStep; j <= nSteps; j++ {
		if err := opts.ctl.Tick("spice.mor"); err != nil {
			res.Partial = true
			res.PartialT = float64(j-1) * opts.DT
			return res, err, false
		}
		if opts.Injector != nil {
			if ierr := opts.Injector.At(diag.Site{Op: "spice.mor/step", Time: float64(j) * opts.DT, Step: j}); ierr != nil {
				opts.Report.Record("mor", "bailout", diag.OutcomeFailed, "injected reduced-step fault", ierr)
				return nil, nil, true
			}
		}
		t := float64(j) * opts.DT
		st := stBE
		if rr.model.StepIsTR(j) {
			st = stTR
		}
		rr.ex.sys.U(t, u)
		if _, aerr := run.Advance(st, t, u, uPrev, rr.portEval(), rr.newton); aerr != nil {
			opts.Report.Record("mor", "bailout", diag.OutcomeFailed,
				fmt.Sprintf("reduced step failed at t=%g", t), aerr)
			return nil, nil, true
		}
		u, uPrev = uPrev, u
		rr.record(run, res, opts)
		if checkpointing {
			run.ExpandInto(xFull)
			if j%opts.CheckpointEvery == 0 || j == nSteps {
				if werr := c.writeReducedCheckpoint(opts, j, remainingBE(beSteps, j), rr, run, xFull, xFullPrev, res); werr != nil {
					return res, werr, false
				}
			}
			xFull, xFullPrev = xFullPrev, xFull
		}
	}
	return res, nil, false
}

// remainingBE is the BE-startup counter after j completed output steps —
// the value the full solver's loop would carry at that boundary.
func remainingBE(beSteps, j int) int {
	if j >= beSteps {
		return 0
	}
	return beSteps - j
}

// reducedLoopStrided is the stride-k mode: the model advances on the coarse
// internal grid the gate validated, coarse port samples are resampled onto
// the output grid with cubic Hermite interpolation, and the remainder steps
// (output window not divisible by the stride) run at the output dt.
func (c *Circuit) reducedLoopStrided(opts TranOpts, rr *reducedRun, run *mor.Run, res *Result, probes []Probe, nSteps int) (*Result, error, bool) {
	model := rr.model
	k := model.Stride
	ni := nSteps / k
	rem := nSteps - ni*k
	p := model.NumPorts()
	stBE, stTR, err := rr.prepPair(opts, float64(k)*opts.DT)
	if err != nil {
		return nil, nil, true
	}

	u := make([]float64, p)
	uPrev := make([]float64, p)
	rr.ex.sys.U(0, uPrev)
	ts := make([]float64, ni+1)
	vals := make([][]float64, len(probes))
	pv := run.PortValues()
	for i := range vals {
		vals[i] = make([]float64, ni+1)
		if pi := rr.ex.cl.probePI[i]; pi >= 0 {
			vals[i][0] = pv[pi]
		}
	}

	// resampleInto flushes the coarse samples of internal steps 1..j onto
	// the output grid, appending to res.
	resampleInto := func(j int) {
		if j < 1 {
			return
		}
		wOut := j * k
		out := make([]float64, wOut+1)
		for i := range probes {
			mor.ResampleHermite(ts[:j+1], vals[i][:j+1], opts.DT, out)
			res.Signals[i] = append(res.Signals[i], out[1:]...)
		}
		for s := 1; s <= wOut; s++ {
			res.T = append(res.T, float64(len(res.T))*opts.DT)
		}
	}

	for j := 1; j <= ni; j++ {
		if err := opts.ctl.Tick("spice.mor"); err != nil {
			resampleInto(j - 1)
			res.Partial = true
			res.PartialT = float64((j-1)*k) * opts.DT
			return res, err, false
		}
		if opts.Injector != nil {
			if ierr := opts.Injector.At(diag.Site{Op: "spice.mor/step", Time: float64(j*k) * opts.DT, Step: j}); ierr != nil {
				opts.Report.Record("mor", "bailout", diag.OutcomeFailed, "injected reduced-step fault", ierr)
				return nil, nil, true
			}
		}
		t := float64(j*k) * opts.DT
		st := stBE
		if model.StepIsTR(j) {
			st = stTR
		}
		rr.ex.sys.U(t, u)
		if _, aerr := run.Advance(st, t, u, uPrev, rr.portEval(), rr.newton); aerr != nil {
			opts.Report.Record("mor", "bailout", diag.OutcomeFailed,
				fmt.Sprintf("reduced step failed at t=%g", t), aerr)
			return nil, nil, true
		}
		u, uPrev = uPrev, u
		ts[j] = t
		pv = run.PortValues()
		for i := range vals {
			if pi := rr.ex.cl.probePI[i]; pi >= 0 {
				vals[i][j] = pv[pi]
			}
		}
	}
	resampleInto(ni)

	if rem > 0 {
		stBE1, stTR1, err := rr.prepPair(opts, opts.DT)
		if err != nil {
			// The coarse window is already recorded, but a half-recorded
			// result cannot be handed to the full-solver rerun: bail out
			// and let the caller reset the result.
			return nil, nil, true
		}
		rr.ex.sys.U(float64(ni*k)*opts.DT, uPrev)
		for s := 1; s <= rem; s++ {
			if err := opts.ctl.Tick("spice.mor"); err != nil {
				res.Partial = true
				res.PartialT = float64(ni*k+s-1) * opts.DT
				return res, err, false
			}
			j := ni + s
			t := float64(ni*k+s) * opts.DT
			st := stBE1
			if model.StepIsTR(j) {
				st = stTR1
			}
			rr.ex.sys.U(t, u)
			if _, aerr := run.Advance(st, t, u, uPrev, rr.portEval(), rr.newton); aerr != nil {
				opts.Report.Record("mor", "bailout", diag.OutcomeFailed,
					fmt.Sprintf("reduced remainder step failed at t=%g", t), aerr)
				return nil, nil, true
			}
			u, uPrev = uPrev, u
			rr.record(run, res, opts)
		}
	}
	return res, nil, false
}

// writeReducedCheckpoint snapshots a reduced stride-1 run at an output grid
// boundary. X carries the expanded full-space state; CapI carries
// backward-Euler estimates of the capacitor companion currents from the last
// step's expanded states (informative — a resume of a reduced checkpoint
// always restores the reduced coordinates from the MOR blob, never CapI).
func (c *Circuit) writeReducedCheckpoint(opts TranOpts, step, beSteps int, rr *reducedRun, run *mor.Run, xFull, xFullPrev []float64, res *Result) error {
	nodeV := func(x []float64, id NodeID) float64 {
		if id == Ground {
			return 0
		}
		return x[id]
	}
	var capi []float64
	for _, e := range c.elems {
		if cp, ok := e.(*capacitor); ok {
			dv := (nodeV(xFull, cp.a) - nodeV(xFull, cp.b)) -
				(nodeV(xFullPrev, cp.a) - nodeV(xFullPrev, cp.b))
			capi = append(capi, cp.c*dv/opts.DT)
		}
	}
	st := run.CaptureState()
	cp := &Checkpoint{
		Version:   checkpointVersion,
		TStop:     opts.TStop,
		DT:        opts.DT,
		Method:    int(opts.Method),
		NUnknowns: rr.model.N,
		NCaps:     len(capi),
		Step:      step,
		BESteps:   beSteps,
		X:         xFull,
		CapI:      capi,
		T:         res.T,
		Labels:    res.Labels,
		Signals:   res.Signals,
		MOR: &MORCheckpoint{
			Fingerprint: rr.fp,
			T:           st.T,
			V:           st.V,
			Z:           st.Z,
		},
	}
	return cp.WriteFile(opts.CheckpointPath)
}

// --- adaptive reduced run ---

// tryReduceAdaptive builds (or fetches) a reduced model for an adaptive
// trapezoidal run. Only fully linear circuits take the adaptive reduced
// path — the interplay of reduced Newton retreats with LTE step control is
// not worth the risk for the handful of nonlinear adaptive workloads. A nil
// return means "use the full solver".
func (c *Circuit) tryReduceAdaptive(opts AdaptiveOpts, tran TranOpts, x0 []float64, probes []Probe) *reducedRun {
	if opts.NoReduction || opts.NoFastPath {
		return nil
	}
	if c.NumUnknowns() < reduceMinUnknowns || opts.TStop/opts.DTInit < reduceMinSteps {
		return nil
	}
	cl, err := classifyReduction(c, probes)
	if err != nil {
		morStatRejected.Add(1)
		tran.Report.Record("mor", "classify", diag.OutcomeSkipped, err.Error(), nil)
		return nil
	}
	if len(cl.nlIdx) > 0 {
		morStatRejected.Add(1)
		tran.Report.Record("mor", "classify", diag.OutcomeSkipped,
			"nonlinear circuit: adaptive runs reduce linear circuits only", nil)
		return nil
	}
	ex, err := extractSystem(c, cl, x0, tran.Gmin)
	if err != nil {
		morStatRejected.Add(1)
		tran.Report.Record("mor", "extract", diag.OutcomeSkipped, err.Error(), nil)
		return nil
	}
	// The gate validates the projection subspace on the DTInit grid with the
	// run's TR/BE-start schedule; the subspace itself (a Krylov space of G
	// and C) is dt-independent, and the per-dt LTE controller governs
	// accuracy as the adaptive grid stretches toward DTMax.
	mopts := mor.Options{
		DT:           opts.DTInit,
		NSteps:       int(opts.TStop / opts.DTInit),
		TR:           true,
		BESteps:      2,
		Tol:          reduceTol,
		ForceStride1: true,
	}
	fp := ex.fingerprint(mopts, opts.TStop)
	if e, ok := morCacheGet(fp); ok {
		if e.model == nil {
			return nil
		}
		rr := c.finishReduce(e.model, ex, fp, tran)
		if rr != nil {
			morStatEngaged.Add(1)
			morStatCacheHits.Add(1)
			tran.Report.Record("mor", "accept", diag.OutcomeOK, acceptDetail(e.model, true), nil)
		}
		return rr
	}
	model, rerr := mor.Reduce(ex.sys, mopts)
	if rerr != nil {
		morStatRejected.Add(1)
		tran.Report.Record("mor", "reduce", diag.OutcomeSkipped, rerr.Error(), nil)
		if !runctl.IsStop(rerr) {
			morCachePut(fp, &morCacheEntry{})
		}
		return nil
	}
	morCachePut(fp, &morCacheEntry{model: model})
	rr := c.finishReduce(model, ex, fp, tran)
	if rr != nil {
		morStatEngaged.Add(1)
		tran.Report.Record("mor", "accept", diag.OutcomeOK, acceptDetail(model, false), nil)
	}
	return rr
}

// reducedAdaptiveLoop mirrors the full adaptive loop in the reduced space:
// per-dt prepared steppers, the same quadratic-predictor LTE estimate
// evaluated on the node-voltage ports, the same resize rule. Returns
// bailed=true when the caller must rerun with the full solver.
func (c *Circuit) reducedAdaptiveLoop(opts AdaptiveOpts, tran TranOpts, rr *reducedRun, res *Result, probes []Probe) (*Result, error, bool) {
	model := rr.model
	run := model.NewRun()
	p := model.NumPorts()
	var nodePorts []int // LTE is defined on node voltages, as in the full loop
	for pi, row := range rr.ex.cl.ports {
		if row < rr.ex.nNodes {
			nodePorts = append(nodePorts, pi)
		}
	}
	u := make([]float64, p)
	uPrev := make([]float64, p)
	h1 := make([]float64, p)
	h2 := make([]float64, p)
	prevV := make([]float64, p)
	var t1, t2 float64
	havePts := 0

	record := func(t float64) {
		res.T = append(res.T, t)
		pv := run.PortValues()
		for i, pi := range rr.ex.cl.probePI {
			v := 0.0
			if pi >= 0 {
				v = pv[pi]
			}
			res.Signals[i] = append(res.Signals[i], v)
		}
	}

	t := 0.0
	dt := opts.DTInit
	beSteps := 2
	fails := 0
	for t < opts.TStop*(1-1e-12) {
		if err := tran.ctl.Tick("spice.mor"); err != nil {
			res.Partial = true
			res.PartialT = t
			return res, err, false
		}
		if t+dt > opts.TStop {
			dt = opts.TStop - t
		}
		trap := beSteps <= 0
		st, perr := model.PrepStepper(dt, trap)
		if perr != nil {
			return nil, nil, true
		}
		tn := t + dt
		rr.ex.sys.U(t, uPrev)
		rr.ex.sys.U(tn, u)
		copy(prevV, run.PortValues())
		snap := run.CaptureState()
		if _, aerr := run.Advance(st, tn, u, uPrev, nil, rr.newton); aerr != nil {
			fails++
			if fails > 30 {
				return nil, nil, true
			}
			dt /= 2
			if dt < opts.DTMin {
				return nil, nil, true
			}
			continue
		}
		fails = 0
		if havePts >= 2 && trap {
			l2 := (tn - t1) * (tn - t) / ((t2 - t1) * (t2 - t))
			l1 := (tn - t2) * (tn - t) / ((t1 - t2) * (t1 - t))
			l0 := (tn - t2) * (tn - t1) / ((t - t2) * (t - t1))
			errMax := 0.0
			pv := run.PortValues()
			for _, pi := range nodePorts {
				pred := l2*h2[pi] + l1*h1[pi] + l0*prevV[pi]
				if e := math.Abs(pv[pi] - pred); e > errMax {
					errMax = e
				}
			}
			if errMax > 8*opts.LTETol && dt > opts.DTMin {
				if rerr := run.RestoreState(snap); rerr != nil {
					return nil, nil, true
				}
				dt = math.Max(dt/2, opts.DTMin)
				continue
			}
			ratio := math.Pow(opts.LTETol/math.Max(errMax, 1e-300), 1.0/3)
			ratio = math.Min(math.Max(ratio, 0.3), 2)
			dt = math.Min(math.Max(dt*ratio, opts.DTMin), opts.DTMax)
		}
		t2, t1 = t1, t
		copy(h2, h1)
		copy(h1, prevV)
		if havePts < 2 {
			havePts++
		}
		t = tn
		if beSteps > 0 {
			beSteps--
		}
		record(t)
	}
	return res, nil, false
}
