package spice

import (
	"context"
	"errors"
	"fmt"
	"math"

	"rlcint/internal/diag"
	"rlcint/internal/runctl"
	"rlcint/internal/sparse"
)

// Method selects the integration scheme.
type Method int

const (
	// Trapezoidal is second-order accurate; the first two steps of any run
	// use backward Euler to damp inconsistent initial conditions (the
	// standard "TR with BE start").
	Trapezoidal Method = iota
	// BackwardEuler is first-order and strongly damping.
	BackwardEuler
)

// TranOpts configure a transient run.
type TranOpts struct {
	TStop  float64 // end time, s
	DT     float64 // output/base timestep, s
	Method Method
	// UseICs starts from Circuit.SetIC values (inductor currents zero)
	// instead of a DC operating point — required for circuits with no
	// stable DC point, like ring oscillators.
	UseICs    bool
	MaxNewton int     // per-step Newton budget (default 50)
	ITol      float64 // residual tolerance (default 1e-9; A for KCL rows, V for branch rows)
	RelTol    float64 // relative solution-update tolerance (default 1e-6)
	VNTol     float64 // absolute solution-update tolerance (default 1e-9)
	Gmin      float64 // structural minimum conductance (default 1e-12 S)
	// MaxHalvings bounds internal step subdivision when Newton fails
	// (default 8 → the base step may shrink 256×).
	MaxHalvings int
	// MaxStep clamps each component of a Newton update (default 5; volts
	// for node rows, amperes for branch rows). This is the classic remedy
	// for the flat Jacobian of a saturated transistor, where a raw Newton
	// step can jump by kilovolts.
	MaxStep float64
	// NoBEStart disables the two backward-Euler startup steps; use only
	// when the initial conditions are exactly consistent.
	NoBEStart bool
	// NoFastPath disables the sparse-kernel fast path (symbolic-cache
	// refactorization, partitioned linear/nonlinear stamping, and the
	// linear-circuit factorization bypass — see fastpath.go) and restores
	// the legacy full-restamp/full-factorize Newton iteration. The fast
	// path produces bit-identical waveforms for linear circuits and agrees
	// to solver tolerance for nonlinear ones; this switch exists for the
	// differential test suite and as an escape hatch.
	NoFastPath bool
	// NoReduction disables the Krylov reduced-order transient fast path
	// (see reduce.go): the full per-step sparse solver runs regardless of
	// circuit structure. Reduced and full runs agree to the reduction
	// tolerance (1e-4 relative RMS waveform error), not bit-exactly — this
	// switch exists for differential testing, for resuming checkpoints
	// written by full-solver runs, and as an escape hatch.
	NoReduction bool
	// Injector injects solver faults for testing (nil in production).
	Injector *diag.Injector
	// Report, when non-nil, collects the recovery-ladder attempts of the
	// run (gmin rungs, TR→BE fallbacks, step halvings).
	Report *diag.Report
	// Limits bound the run in wall-clock time and total Newton iterations;
	// combined with the context passed to TransientCtx they make the run
	// cancellable at every iteration boundary. The zero value imposes no
	// bounds.
	Limits runctl.Limits
	// CheckpointPath, when non-empty, makes the run write a resumable
	// snapshot of the solver state (time, step, node voltages, element
	// history, recorded waveform) to this file — atomically, via temp file
	// and rename — every CheckpointEvery output grid steps, so a killed run
	// can be restarted bit-exactly with TransientResume.
	CheckpointPath string
	// CheckpointEvery is the checkpoint cadence in output grid steps
	// (default 64 when CheckpointPath is set).
	CheckpointEvery int
	// ResultBuf, when non-nil, is reset and used as the run's Result so its
	// backing waveform arrays are recycled — the returned *Result is
	// ResultBuf itself. Sweeps that only keep scalar metrics per run (e.g.
	// the Figure 11 period sweep) pass the same buffer to every run to
	// avoid re-allocating the waveform storage. The previous run's samples
	// are invalid once the buffer is passed back in.
	ResultBuf *Result

	// ctl is the per-run controller built by TransientCtx from the caller's
	// context and Limits; it flows to every nested solve of the run.
	ctl *runctl.Controller
	// resumeStride1 marks a reduced-checkpoint resume: the model must be
	// rebuilt stride-1 (as the checkpointing run built it) even though the
	// resume options may not set CheckpointPath, or the content fingerprint
	// would not match the snapshot.
	resumeStride1 bool
}

// Validate rejects option sets whose tolerances or budgets are negative or
// non-finite — values a plain `== 0` default check would let through and
// silently corrupt the convergence tests. Zero fields still mean "default".
func (o TranOpts) Validate() error {
	if err := diag.CheckFinite("spice.TranOpts",
		[]string{"TStop", "DT", "ITol", "RelTol", "VNTol", "Gmin", "MaxStep"},
		[]float64{o.TStop, o.DT, o.ITol, o.RelTol, o.VNTol, o.Gmin, o.MaxStep}); err != nil {
		return err
	}
	names := []string{"ITol", "RelTol", "VNTol", "Gmin", "MaxStep"}
	vals := []float64{o.ITol, o.RelTol, o.VNTol, o.Gmin, o.MaxStep}
	for i, v := range vals {
		if v < 0 {
			return diag.Domainf("spice.TranOpts", "%s=%g must be non-negative", names[i], v)
		}
	}
	if o.MaxNewton < 0 || o.MaxHalvings < 0 {
		return diag.Domainf("spice.TranOpts", "negative budget MaxNewton=%d MaxHalvings=%d", o.MaxNewton, o.MaxHalvings)
	}
	if o.Limits.Timeout < 0 || o.Limits.MaxIters < 0 {
		return diag.Domainf("spice.TranOpts", "negative run limits Timeout=%v MaxIters=%d", o.Limits.Timeout, o.Limits.MaxIters)
	}
	if o.CheckpointEvery < 0 {
		return diag.Domainf("spice.TranOpts", "negative CheckpointEvery=%d", o.CheckpointEvery)
	}
	return nil
}

func (o TranOpts) withDefaults() (TranOpts, error) {
	if err := o.Validate(); err != nil {
		return o, err
	}
	if o.TStop <= 0 || o.DT <= 0 || o.DT > o.TStop {
		return o, diag.Domainf("spice.Transient", "invalid transient window tstop=%g dt=%g", o.TStop, o.DT)
	}
	if o.MaxNewton == 0 {
		o.MaxNewton = 50
	}
	if o.ITol == 0 {
		o.ITol = 1e-9
	}
	if o.RelTol == 0 {
		o.RelTol = 1e-6
	}
	if o.VNTol == 0 {
		o.VNTol = 1e-9
	}
	if o.Gmin == 0 {
		o.Gmin = 1e-12
	}
	if o.MaxHalvings == 0 {
		o.MaxHalvings = 8
	}
	if o.MaxStep == 0 {
		o.MaxStep = 5
	}
	if o.CheckpointEvery == 0 {
		o.CheckpointEvery = 64
	}
	return o, nil
}

// Probe selects a signal to record during a transient run.
type Probe interface {
	Label() string
	sample(x []float64, nNodes int) float64
}

// NodeProbe records a node voltage.
type NodeProbe struct {
	Name string
	ID   NodeID
}

// Label implements Probe.
func (p NodeProbe) Label() string { return p.Name }

func (p NodeProbe) sample(x []float64, nNodes int) float64 {
	if p.ID == Ground {
		return 0
	}
	return x[p.ID]
}

// ProbeNode builds a NodeProbe for a named node.
func (c *Circuit) ProbeNode(name string) NodeProbe {
	return NodeProbe{Name: name, ID: c.Node(name)}
}

// BranchProbe records an inductor's branch current.
type BranchProbe struct {
	Name string
	L    *Inductor
}

// Label implements Probe.
func (p BranchProbe) Label() string { return p.Name }

func (p BranchProbe) sample(x []float64, nNodes int) float64 {
	return x[nNodes+p.L.bidx]
}

// SourceCurrentProbe records a voltage source's branch current (positive
// from the + terminal through the source to the − terminal).
type SourceCurrentProbe struct {
	Name string
	V    *VSource
}

// Label implements Probe.
func (p SourceCurrentProbe) Label() string { return p.Name }

func (p SourceCurrentProbe) sample(x []float64, nNodes int) float64 {
	return x[nNodes+p.V.bidx]
}

// Result holds sampled transient waveforms on the uniform output grid.
//
// Partial-result contract: when Transient aborts mid-run (timestep
// collapse, cancellation, deadline, or budget exhaustion), it returns the
// Result it has built so far ALONGSIDE the typed error — T and Signals
// preserve every sample recorded up to the last completed output grid
// point, Partial is true, and PartialT is the simulation time the solver
// reached before giving up.
type Result struct {
	T       []float64
	Signals [][]float64 // Signals[i][j] = probe i at T[j]
	Labels  []string
	// Partial marks a run that aborted before TStop; the samples up to the
	// abort point are valid.
	Partial bool
	// PartialT is the simulation time reached when a partial run aborted
	// (0 for complete runs).
	PartialT float64
	// Factor is the shape of the full solver's last LU factorization (zero
	// when the run never factored — e.g. a purely reduced-order run). It is
	// what spicesim -diag prints.
	Factor sparse.FactorStats
}

// Signal returns the waveform of the probe with the given label.
func (r *Result) Signal(label string) ([]float64, error) {
	for i, l := range r.Labels {
		if l == label {
			return r.Signals[i], nil
		}
	}
	return nil, fmt.Errorf("spice: no probe labelled %q", label)
}

// newtonState bundles the assembly/solve machinery shared by DC and
// transient analyses.
type newtonState struct {
	c      *Circuit
	n      int // total unknowns
	nNodes int
	trip   *sparse.Triplet
	lu     *sparse.LU
	res    []float64
	x      []float64
	xPrev  []float64
	dx     []float64
	xTry   []float64
	fast   fastAssembly
	// symStep is the grid step whose first solve last refreshed the symbolic
	// factorization (see factorizeFast's refresh schedule); -1 before any.
	symStep int
	// ld is the reusable per-sub-step loader of the transient loop; keeping
	// it here (rather than allocating one per sub-step) makes steady-state
	// transient steps allocation-free.
	ld loader
}

func newNewtonState(c *Circuit) *newtonState {
	n := c.NumUnknowns()
	ns := &newtonState{
		c:       c,
		n:       n,
		nNodes:  c.NumNodes(),
		trip:    sparse.NewTriplet(n),
		lu:      sparse.Workspace(n),
		res:     make([]float64, n),
		x:       make([]float64, n),
		xPrev:   make([]float64, n),
		dx:      make([]float64, n),
		xTry:    make([]float64, n),
		symStep: -1,
	}
	ns.fast.classify(c)
	return ns
}

// factorStats reports the shape of the run's LU factorization: the shared
// Newton workspace when it factored, else one of the linear bypass's cached
// per-configuration factors (they all share the circuit's pattern). Zero
// when nothing factored — a purely reduced-order run.
func (ns *newtonState) factorStats() sparse.FactorStats {
	if st := ns.lu.Stats(); st.N > 0 {
		return st
	}
	for _, lu := range ns.fast.factors {
		return lu.Stats()
	}
	return sparse.FactorStats{}
}

// assemble loads all elements for iterate x into the Jacobian and residual.
// While the stamping pattern is still unfrozen (the first assembly of the
// analysis) it records each element's start position in the stamp sequence,
// which the fast path later uses to restamp elements selectively.
func (ns *newtonState) assemble(ld *loader) {
	ns.trip.Reset()
	for i := range ns.res {
		ns.res[i] = 0
	}
	ld.nNodes = ns.nNodes
	ld.jac = ns.trip
	ld.res = ns.res
	if !ns.trip.Frozen() {
		for i, e := range ns.c.elems {
			ns.fast.starts[i] = ns.trip.Mark()
			e.load(ld)
		}
		return
	}
	for _, e := range ns.c.elems {
		e.load(ld)
	}
}

func infNorm(v []float64) float64 {
	m := 0.0
	for _, x := range v {
		if a := math.Abs(x); a > m {
			m = a
		}
	}
	return m
}

// Assembly strategies of solveNewton. The fast modes are selected
// automatically unless TranOpts.NoFastPath holds; both preserve the legacy
// mode's iteration structure, run-control ticks, and fault-injection sites
// exactly — they change how the system is (re)built and factored, not what
// the Newton loop does with it.
const (
	asmLegacy int = iota // full restamp + strict full factorization per iteration
	asmFast              // partitioned restamp + symbolic-cache refactorization
	asmLinear            // residual-only restamp + per-config cached factors
)

// newtonFail builds the typed diagnostic for a failed Newton solve.
func newtonFail(kind error, ld *loader, iter int, rnorm float64, cause error, detail string) *diag.Error {
	de := diag.New(kind, "spice.solveNewton")
	de.Time = ld.t
	de.Step = ld.step
	de.Iteration = iter
	de.Residual = rnorm
	de.Gmin = ld.gmin
	de.Detail = detail
	de.Err = cause
	return de
}

// reassemble rebuilds the system for the iterate in ld.x under the selected
// assembly strategy (the per-damping-trial hot call).
func (ns *newtonState) reassemble(ld *loader, mode int) {
	switch mode {
	case asmFast:
		ns.assembleFast(ld)
	case asmLinear:
		ns.assembleRes(ld)
	default:
		ns.assemble(ld)
	}
}

// solveNewton iterates the residual Newton loop for the configured loader
// until converged, returning the iteration count.
func (ns *newtonState) solveNewton(ld *loader, opts TranOpts) (int, error) {
	ld.x = ns.x
	ld.xPrev = ns.xPrev
	mode := asmLegacy
	if !opts.NoFastPath {
		if ns.fast.linearOnly {
			mode = asmLinear
		} else {
			mode = asmFast
		}
	}
	var csc *sparse.CSC
	var cachedLU *sparse.LU
	var cachedFerr error
	switch mode {
	case asmFast:
		ns.prepareFast(ld)
		csc = ns.fast.csc
		ns.assembleFast(ld)
	case asmLinear:
		var assembled bool
		cachedLU, assembled, cachedFerr = ns.linearFactor(ld)
		if !assembled {
			ns.assembleRes(ld)
		}
	default:
		ns.assemble(ld)
		csc = ns.trip.Compile()
	}
	rnorm := infNorm(ns.res)
	for iter := 1; iter <= opts.MaxNewton; iter++ {
		// Run control: every Newton iteration is a cancellation point and
		// consumes one unit of the iteration budget, so a cancelled or
		// over-budget solve unwinds within one iteration. Free when the run
		// is uncontrolled (nil controller).
		if err := opts.ctl.Tick("spice.newton"); err != nil {
			return iter, err
		}
		// Fault-injection sites: "spice.newton/<rung>" simulates a Newton
		// stall or residual blow-up; "spice.factorize/<rung>" a singular
		// system; "spice.refactorize/<rung>" (fast mode, consulted in
		// factorizeFast) a degraded refactorization that must fall back to a
		// full factorization. The nil-injector production path skips even the
		// site construction — the op-string concatenations would otherwise be
		// the only allocations in a steady-state iteration.
		var ferr error
		if opts.Injector != nil {
			site := diag.Site{Op: "spice.newton/" + ld.op, Time: ld.t, Step: ld.step, Iteration: iter, Gmin: ld.gmin}
			if err := opts.Injector.At(site); err != nil {
				return iter, newtonFail(diag.ErrNonConvergence, ld, iter, rnorm, err, "injected Newton fault")
			}
			site.Op = "spice.factorize/" + ld.op
			ferr = opts.Injector.At(site)
		}
		if ferr == nil {
			switch mode {
			case asmFast:
				ferr = ns.factorizeFast(ld, opts, csc, iter)
			case asmLinear:
				ferr = cachedFerr
			default:
				ferr = ns.lu.Factorize(csc, 1)
			}
		}
		if ferr != nil {
			return iter, newtonFail(diag.ErrSingularJacobian, ld, iter, rnorm, ferr, ld.op)
		}
		lu := ns.lu
		if mode == asmLinear {
			lu = cachedLU
		}
		lu.SolveInto(ns.dx, ns.res)
		// Per-component step limiting (the saturated-transistor guard).
		for i := range ns.dx {
			if ns.dx[i] > opts.MaxStep {
				ns.dx[i] = opts.MaxStep
			} else if ns.dx[i] < -opts.MaxStep {
				ns.dx[i] = -opts.MaxStep
			}
		}
		// Damped update: prefer a candidate whose residual does not blow up
		// (strict decrease is too strong for non-smooth devices); if every
		// damping level fails, take the most-damped step anyway — limiting
		// plus MaxNewton bound the damage, and refusing to move guarantees
		// a stall.
		lambda := 1.0
		var newNorm float64
		for h := 0; ; h++ {
			for i := range ns.x {
				ns.xTry[i] = ns.x[i] - lambda*ns.dx[i]
			}
			save := ns.x
			ns.x = ns.xTry
			ns.xTry = save
			ld.x = ns.x
			ns.reassemble(ld, mode)
			newNorm = infNorm(ns.res)
			if newNorm <= rnorm*1.01 || newNorm < opts.ITol || h >= 8 {
				break
			}
			ns.x, ns.xTry = ns.xTry, ns.x
			ld.x = ns.x
			lambda /= 2
		}
		// Convergence: small residual and small last update.
		dxn := lambda * infNorm(ns.dx)
		xn := infNorm(ns.x)
		if newNorm < opts.ITol && dxn < opts.VNTol+opts.RelTol*xn {
			return iter, nil
		}
		rnorm = newNorm
	}
	return opts.MaxNewton, newtonFail(diag.ErrNonConvergence, ld, opts.MaxNewton, rnorm, nil, "Newton budget exhausted")
}

// DCOpts configure DCOperatingPointWith: an optional fault injector, a
// recovery-ladder report collector, and run-control limits.
type DCOpts struct {
	Injector *diag.Injector
	Report   *diag.Report
	// Limits bound the solve in wall-clock time and Newton iterations.
	Limits runctl.Limits
	// NoFastPath disables the sparse-kernel fast path (see TranOpts).
	NoFastPath bool
}

// DCOperatingPoint solves the DC operating point (capacitors open,
// inductors shorted) with a two-rung recovery ladder: gmin stepping first,
// then source (supply) ramping when the gmin ladder cannot converge. Node
// initial conditions set via SetIC seed the Newton iteration.
func (c *Circuit) DCOperatingPoint() ([]float64, error) {
	return c.DCOperatingPointWith(DCOpts{})
}

// DCOperatingPointWith is DCOperatingPoint with explicit diagnostics
// plumbing. Terminal failures carry diag.ErrNonConvergence (or the more
// specific kind of the last rung's failure cause) and o.Report records
// every ladder rung tried.
func (c *Circuit) DCOperatingPointWith(o DCOpts) ([]float64, error) {
	return c.DCOperatingPointCtx(context.Background(), o)
}

// DCOperatingPointCtx is DCOperatingPointWith with cooperative
// cancellation: the solve checks ctx (and o.Limits) at every Newton
// iteration and returns a diag.ErrCancelled / ErrDeadline / ErrBudget
// failure when stopped. Panics in device evals surface as typed
// diag.ErrPanic errors.
func (c *Circuit) DCOperatingPointCtx(ctx context.Context, o DCOpts) (x []float64, err error) {
	defer diag.RecoverTo(&err, "spice.DCOperatingPoint")
	return c.dcOperatingPoint(runctl.New(ctx, o.Limits), o)
}

func (c *Circuit) dcOperatingPoint(ctl *runctl.Controller, o DCOpts) ([]float64, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	opts, _ := TranOpts{TStop: 1, DT: 1}.withDefaults()
	opts.Injector = o.Injector
	opts.Report = o.Report
	opts.NoFastPath = o.NoFastPath
	opts.ctl = ctl
	ns := newNewtonState(c)
	seedICs := func() {
		for i := range ns.x {
			ns.x[i] = 0
		}
		for id, v := range c.ics {
			ns.x[id] = v
		}
	}
	seedICs()
	x, gminErr := c.dcGminLadder(ns, opts, o.Report)
	if gminErr == nil {
		return x, nil
	}
	// A run-control stop is terminal — retrying the ladder cannot help and
	// would ignore the caller's cancellation.
	if runctl.IsStop(gminErr) {
		return nil, gminErr
	}
	// Rung 2: source ramping. Restart from the IC seed — the all-sources-off
	// system is trivially solvable, and continuation walks the solution to
	// full supply strength.
	seedICs()
	x, rampErr := c.dcSourceRamp(ns, opts, o.Report)
	if rampErr == nil {
		return x, nil
	}
	de := diag.New(diag.ErrNonConvergence, "spice.DCOperatingPoint")
	de.Time = 0
	de.Detail = fmt.Sprintf("gmin ladder failed (%v); source ramp failed", gminErr)
	de.Err = rampErr
	return nil, de
}

// dcGminLadder walks gmin from 1e-3 down to the target 1e-12. A rung that
// fails after an earlier rung converged restores the last converged iterate
// and skips to the next gmin instead of aborting the whole solve; the
// ladder succeeds only when the final (target) rung converges.
func (c *Circuit) dcGminLadder(ns *newtonState, opts TranOpts, rep *diag.Report) ([]float64, error) {
	gmins := []float64{1e-3, 1e-5, 1e-7, 1e-9, 1e-12}
	conv := make([]float64, ns.n) // last converged iterate
	solvedAny := false
	finalOK := false
	var lastErr error
	for i, g := range gmins {
		rung := fmt.Sprintf("gmin=%g", g)
		ld := &loader{dc: true, gmin: g, t: 0, dt: 1, op: "dc-gmin", step: i}
		if _, err := ns.solveNewton(ld, opts); err != nil {
			if runctl.IsStop(err) {
				return nil, err
			}
			lastErr = err
			if solvedAny {
				// A mid-ladder stumble must not discard converged progress:
				// restore the last converged solution and try the next rung
				// from there.
				copy(ns.x, conv)
				rep.Record("dc-gmin", rung, diag.OutcomeSkipped, "restored last converged iterate", err)
			} else {
				rep.Record("dc-gmin", rung, diag.OutcomeFailed, "", err)
			}
			continue
		}
		solvedAny = true
		finalOK = i == len(gmins)-1
		copy(conv, ns.x)
		rep.Record("dc-gmin", rung, diag.OutcomeOK, "", nil)
	}
	if !finalOK {
		if lastErr == nil {
			lastErr = fmt.Errorf("spice: gmin ladder did not reach target gmin")
		}
		return nil, lastErr
	}
	out := make([]float64, ns.n)
	copy(out, ns.x)
	return out, nil
}

// dcSourceRamp performs source stepping: independent sources are attenuated
// to zero (a trivially solvable system), then ramped back to full strength
// in continuation steps, finishing with a full-strength polish at the
// target gmin.
func (c *Circuit) dcSourceRamp(ns *newtonState, opts TranOpts, rep *diag.Report) ([]float64, error) {
	ramps := []float64{1, 0.75, 0.5, 0.25, 0.1, 0}
	for i, ramp := range ramps {
		rung := fmt.Sprintf("scale=%g", 1-ramp)
		ld := &loader{dc: true, gmin: 1e-9, srcRamp: ramp, t: 0, dt: 1, op: "dc-ramp", step: i}
		if _, err := ns.solveNewton(ld, opts); err != nil {
			if !runctl.IsStop(err) {
				rep.Record("dc-ramp", rung, diag.OutcomeFailed, "", err)
			}
			return nil, err
		}
		rep.Record("dc-ramp", rung, diag.OutcomeOK, "", nil)
	}
	// Full sources converged at the stabilizing gmin; polish at the target.
	ld := &loader{dc: true, gmin: 1e-12, t: 0, dt: 1, op: "dc-ramp", step: len(ramps)}
	if _, err := ns.solveNewton(ld, opts); err != nil {
		rep.Record("dc-ramp", "polish", diag.OutcomeFailed, "", err)
		return nil, err
	}
	rep.Record("dc-ramp", "polish", diag.OutcomeOK, "", nil)
	out := make([]float64, ns.n)
	copy(out, ns.x)
	return out, nil
}

// Transient runs a fixed-grid transient analysis and records the probes.
func (c *Circuit) Transient(opts TranOpts, probes ...Probe) (*Result, error) {
	return c.TransientCtx(context.Background(), opts, probes...)
}

// TransientCtx is Transient with cooperative run control: the solve checks
// ctx (and opts.Limits) at every Newton iteration, so cancellation, an
// expired deadline, or an exhausted iteration budget returns within one
// integration step with the partial waveform recorded so far and a typed
// diag.ErrCancelled / ErrDeadline / ErrBudget failure carrying elapsed
// time and step context. Panics anywhere below (device evals included)
// surface as typed diag.ErrPanic errors, not process crashes.
func (c *Circuit) TransientCtx(ctx context.Context, opts TranOpts, probes ...Probe) (res *Result, err error) {
	defer diag.RecoverTo(&err, "spice.Transient")
	if err := c.Validate(); err != nil {
		return nil, err
	}
	opts, err = opts.withDefaults()
	if err != nil {
		return nil, err
	}
	opts.ctl = runctl.New(ctx, opts.Limits)
	ns := newNewtonState(c)

	// Initial state.
	if opts.UseICs {
		for id, v := range c.ics {
			ns.x[id] = v
		}
	} else {
		x0, err := c.dcOperatingPoint(opts.ctl, DCOpts{Injector: opts.Injector, Report: opts.Report, NoFastPath: opts.NoFastPath})
		if err != nil {
			return nil, fmt.Errorf("spice: Transient initial point: %w", err)
		}
		copy(ns.x, x0)
	}
	copy(ns.xPrev, ns.x)

	nSteps := int(math.Ceil(opts.TStop/opts.DT + 1e-9))
	res = opts.ResultBuf
	if res == nil {
		res = &Result{}
	}
	res.Partial, res.PartialT = false, 0
	res.T = growCapF(res.T, nSteps+1)
	if len(res.Signals) != len(probes) {
		res.Signals = make([][]float64, len(probes))
	}
	if len(res.Labels) != len(probes) {
		res.Labels = make([]string, len(probes))
	}
	for i, p := range probes {
		res.Labels[i] = p.Label()
		res.Signals[i] = growCapF(res.Signals[i], nSteps+1)
	}
	res.T = append(res.T, 0) // t = 0
	for i, p := range probes {
		res.Signals[i] = append(res.Signals[i], p.sample(ns.x, ns.nNodes))
	}

	beSteps := 2 // BE start for trapezoidal
	if opts.NoBEStart {
		beSteps = 0
	}

	// Krylov reduced-order fast path: when the circuit's linear partition
	// admits a gate-validated projection, march the reduced system instead
	// of the full one and fall back here on any reduced-step failure (the
	// reduced run touches no element state, so a full rerun from t=0 is
	// always legal).
	if rr, rerr := c.tryReduce(opts, ns.x, probes, nSteps, beSteps); rerr != nil {
		res.Partial = true
		return res, rerr
	} else if rr != nil {
		out, lerr, bailed := c.reducedLoopRun(opts, rr, rr.model.NewRun(), res, probes, nSteps, 1, beSteps)
		if !bailed {
			return out, lerr
		}
		morStatFallback.Add(1)
		opts.Report.Record("mor", "fallback", diag.OutcomeSkipped,
			"reduced run bailed out; rerunning with the full solver", nil)
		res.T = res.T[:1]
		for i := range res.Signals {
			res.Signals[i] = res.Signals[i][:1]
		}
	}
	return c.transientLoop(opts, ns, res, probes, 1, beSteps)
}

// growCapF returns b emptied, with capacity for at least n samples.
func growCapF(b []float64, n int) []float64 {
	if cap(b) < n {
		return make([]float64, 0, n)
	}
	return b[:0]
}

// transientLoop marches the output grid from startStep through the end of
// the window. It is shared by fresh runs (startStep 1) and checkpoint
// resumes (startStep = checkpoint step + 1 with ns, res, and element state
// restored); because every per-grid-step controller variable (sub-step
// size, halving count, BE-fallback count) resets at each grid boundary, a
// resume from a boundary reproduces the uninterrupted run bit-exactly.
func (c *Circuit) transientLoop(opts TranOpts, ns *newtonState, res *Result, probes []Probe, startStep, beSteps int) (*Result, error) {
	// Record the factor shape on every exit path (partial runs included) so
	// -diag output always reflects what the solver actually built.
	defer func() { res.Factor = ns.factorStats() }()
	nSteps := int(math.Ceil(opts.TStop/opts.DT + 1e-9))
	record := func() {
		res.T = append(res.T, float64(len(res.T))*opts.DT)
		for i, p := range probes {
			res.Signals[i] = append(res.Signals[i], p.sample(ns.x, ns.nNodes))
		}
	}
	t := float64(startStep-1) * opts.DT
	for step := startStep; step <= nSteps; step++ {
		tTarget := float64(step) * opts.DT
		// March to the grid point, recovering from Newton failures with a
		// two-rung ladder: (1) retry the failing sub-interval with the
		// strongly damping backward-Euler scheme, then (2) halve the step,
		// until MaxHalvings is exhausted and the step declares collapse.
		dt := tTarget - t
		halvings := 0
		forceBE := 0
		for t < tTarget-1e-15*opts.TStop {
			if dt > tTarget-t {
				dt = tTarget - t
			}
			trap := opts.Method == Trapezoidal && beSteps <= 0 && forceBE == 0
			op := "tran-be"
			if trap {
				op = "tran-tr"
			}
			ld := &ns.ld
			*ld = loader{t: t + dt, dt: dt, trap: trap, gmin: opts.Gmin, op: op, step: step}
			copy(ns.xPrev, ns.x)
			if _, err := ns.solveNewton(ld, opts); err != nil {
				// Back out the failed attempt.
				copy(ns.x, ns.xPrev)
				// A run-control stop is not a convergence failure: skip the
				// recovery ladder, keep the waveform recorded so far, and
				// unwind with the typed stop carrying step context.
				if runctl.IsStop(err) {
					res.Partial = true
					res.PartialT = t
					var de *diag.Error
					if errors.As(err, &de) {
						de.Time = t
						de.Step = step
					}
					return res, err
				}
				if trap {
					// Rung 1: auto-switch TR→BE for this sub-interval before
					// shrinking the step; BE's damping often absorbs the
					// transient that defeated the trapezoidal solve.
					forceBE = 2
					opts.Report.Record("tran-step", "be-fallback", diag.OutcomeOK,
						fmt.Sprintf("t=%g dt=%g", t+dt, dt), err)
					continue
				}
				// Rung 2: halve the step.
				halvings++
				if halvings > opts.MaxHalvings {
					res.Partial = true
					res.PartialT = t
					de := diag.New(diag.ErrTimestepCollapse, "spice.Transient")
					de.Time = t
					de.Step = step
					de.Detail = fmt.Sprintf("dt=%g after %d halvings", dt, halvings-1)
					de.Err = err
					opts.Report.Record("tran-step", "collapse", diag.OutcomeFailed,
						fmt.Sprintf("t=%g", t), de)
					return res, de
				}
				opts.Report.Record("tran-step", "halve", diag.OutcomeOK,
					fmt.Sprintf("t=%g dt=%g", t+dt, dt/2), err)
				dt /= 2
				continue
			}
			// Commit element state. The loader is reused as-is: solveNewton
			// leaves ld.x on the converged iterate and ld.xPrev on the
			// previous step's solution, exactly what accept needs.
			ld.x = ns.x
			ld.xPrev = ns.xPrev
			for _, e := range c.elems {
				e.accept(ld)
			}
			t += dt
			if beSteps > 0 {
				beSteps--
			}
			if forceBE > 0 {
				forceBE--
			}
			// Gently re-expand after successful sub-steps.
			if halvings > 0 {
				dt *= 2
				halvings--
			}
		}
		t = tTarget
		record()
		if opts.CheckpointPath != "" && (step%opts.CheckpointEvery == 0 || step == nSteps) {
			if err := c.writeCheckpoint(opts, step, beSteps, ns, res); err != nil {
				return res, err
			}
		}
	}
	return res, nil
}
