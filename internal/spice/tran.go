package spice

import (
	"fmt"
	"math"

	"rlcint/internal/sparse"
)

// Method selects the integration scheme.
type Method int

const (
	// Trapezoidal is second-order accurate; the first two steps of any run
	// use backward Euler to damp inconsistent initial conditions (the
	// standard "TR with BE start").
	Trapezoidal Method = iota
	// BackwardEuler is first-order and strongly damping.
	BackwardEuler
)

// TranOpts configure a transient run.
type TranOpts struct {
	TStop  float64 // end time, s
	DT     float64 // output/base timestep, s
	Method Method
	// UseICs starts from Circuit.SetIC values (inductor currents zero)
	// instead of a DC operating point — required for circuits with no
	// stable DC point, like ring oscillators.
	UseICs    bool
	MaxNewton int     // per-step Newton budget (default 50)
	ITol      float64 // residual tolerance (default 1e-9; A for KCL rows, V for branch rows)
	RelTol    float64 // relative solution-update tolerance (default 1e-6)
	VNTol     float64 // absolute solution-update tolerance (default 1e-9)
	Gmin      float64 // structural minimum conductance (default 1e-12 S)
	// MaxHalvings bounds internal step subdivision when Newton fails
	// (default 8 → the base step may shrink 256×).
	MaxHalvings int
	// MaxStep clamps each component of a Newton update (default 5; volts
	// for node rows, amperes for branch rows). This is the classic remedy
	// for the flat Jacobian of a saturated transistor, where a raw Newton
	// step can jump by kilovolts.
	MaxStep float64
	// NoBEStart disables the two backward-Euler startup steps; use only
	// when the initial conditions are exactly consistent.
	NoBEStart bool
}

func (o TranOpts) withDefaults() (TranOpts, error) {
	if o.TStop <= 0 || o.DT <= 0 || o.DT > o.TStop {
		return o, fmt.Errorf("spice: invalid transient window tstop=%g dt=%g", o.TStop, o.DT)
	}
	if o.MaxNewton == 0 {
		o.MaxNewton = 50
	}
	if o.ITol == 0 {
		o.ITol = 1e-9
	}
	if o.RelTol == 0 {
		o.RelTol = 1e-6
	}
	if o.VNTol == 0 {
		o.VNTol = 1e-9
	}
	if o.Gmin == 0 {
		o.Gmin = 1e-12
	}
	if o.MaxHalvings == 0 {
		o.MaxHalvings = 8
	}
	if o.MaxStep == 0 {
		o.MaxStep = 5
	}
	return o, nil
}

// Probe selects a signal to record during a transient run.
type Probe interface {
	Label() string
	sample(x []float64, nNodes int) float64
}

// NodeProbe records a node voltage.
type NodeProbe struct {
	Name string
	ID   NodeID
}

// Label implements Probe.
func (p NodeProbe) Label() string { return p.Name }

func (p NodeProbe) sample(x []float64, nNodes int) float64 {
	if p.ID == Ground {
		return 0
	}
	return x[p.ID]
}

// ProbeNode builds a NodeProbe for a named node.
func (c *Circuit) ProbeNode(name string) NodeProbe {
	return NodeProbe{Name: name, ID: c.Node(name)}
}

// BranchProbe records an inductor's branch current.
type BranchProbe struct {
	Name string
	L    *Inductor
}

// Label implements Probe.
func (p BranchProbe) Label() string { return p.Name }

func (p BranchProbe) sample(x []float64, nNodes int) float64 {
	return x[nNodes+p.L.bidx]
}

// SourceCurrentProbe records a voltage source's branch current (positive
// from the + terminal through the source to the − terminal).
type SourceCurrentProbe struct {
	Name string
	V    *VSource
}

// Label implements Probe.
func (p SourceCurrentProbe) Label() string { return p.Name }

func (p SourceCurrentProbe) sample(x []float64, nNodes int) float64 {
	return x[nNodes+p.V.bidx]
}

// Result holds sampled transient waveforms on the uniform output grid.
type Result struct {
	T       []float64
	Signals [][]float64 // Signals[i][j] = probe i at T[j]
	Labels  []string
}

// Signal returns the waveform of the probe with the given label.
func (r *Result) Signal(label string) ([]float64, error) {
	for i, l := range r.Labels {
		if l == label {
			return r.Signals[i], nil
		}
	}
	return nil, fmt.Errorf("spice: no probe labelled %q", label)
}

// newtonState bundles the assembly/solve machinery shared by DC and
// transient analyses.
type newtonState struct {
	c      *Circuit
	n      int // total unknowns
	nNodes int
	trip   *sparse.Triplet
	lu     *sparse.LU
	res    []float64
	x      []float64
	xPrev  []float64
	dx     []float64
	xTry   []float64
}

func newNewtonState(c *Circuit) *newtonState {
	n := c.NumUnknowns()
	return &newtonState{
		c:      c,
		n:      n,
		nNodes: c.NumNodes(),
		trip:   sparse.NewTriplet(n),
		lu:     sparse.Workspace(n),
		res:    make([]float64, n),
		x:      make([]float64, n),
		xPrev:  make([]float64, n),
		dx:     make([]float64, n),
		xTry:   make([]float64, n),
	}
}

// assemble loads all elements for iterate x into the Jacobian and residual.
func (ns *newtonState) assemble(ld *loader) {
	ns.trip.Reset()
	for i := range ns.res {
		ns.res[i] = 0
	}
	ld.nNodes = ns.nNodes
	ld.jac = ns.trip
	ld.res = ns.res
	for _, e := range ns.c.elems {
		e.load(ld)
	}
}

func infNorm(v []float64) float64 {
	m := 0.0
	for _, x := range v {
		if a := math.Abs(x); a > m {
			m = a
		}
	}
	return m
}

// solveNewton iterates the residual Newton loop for the configured loader
// until converged, returning the iteration count.
func (ns *newtonState) solveNewton(ld *loader, opts TranOpts) (int, error) {
	ld.x = ns.x
	ld.xPrev = ns.xPrev
	ns.assemble(ld)
	csc := ns.trip.Compile()
	rnorm := infNorm(ns.res)
	for iter := 1; iter <= opts.MaxNewton; iter++ {
		if err := ns.lu.Factorize(csc, 1); err != nil {
			return iter, fmt.Errorf("spice: Jacobian singular at t=%g: %w", ld.t, err)
		}
		ns.lu.SolveInto(ns.dx, ns.res)
		// Per-component step limiting (the saturated-transistor guard).
		for i := range ns.dx {
			if ns.dx[i] > opts.MaxStep {
				ns.dx[i] = opts.MaxStep
			} else if ns.dx[i] < -opts.MaxStep {
				ns.dx[i] = -opts.MaxStep
			}
		}
		// Damped update: prefer a candidate whose residual does not blow up
		// (strict decrease is too strong for non-smooth devices); if every
		// damping level fails, take the most-damped step anyway — limiting
		// plus MaxNewton bound the damage, and refusing to move guarantees
		// a stall.
		lambda := 1.0
		var newNorm float64
		for h := 0; ; h++ {
			for i := range ns.x {
				ns.xTry[i] = ns.x[i] - lambda*ns.dx[i]
			}
			save := ns.x
			ns.x = ns.xTry
			ns.xTry = save
			ld.x = ns.x
			ns.assemble(ld)
			newNorm = infNorm(ns.res)
			if newNorm <= rnorm*1.01 || newNorm < opts.ITol || h >= 8 {
				break
			}
			ns.x, ns.xTry = ns.xTry, ns.x
			ld.x = ns.x
			lambda /= 2
		}
		// Convergence: small residual and small last update.
		dxn := lambda * infNorm(ns.dx)
		xn := infNorm(ns.x)
		if newNorm < opts.ITol && dxn < opts.VNTol+opts.RelTol*xn {
			return iter, nil
		}
		rnorm = newNorm
	}
	return opts.MaxNewton, fmt.Errorf("spice: Newton did not converge at t=%g (residual %g)", ld.t, rnorm)
}

// DCOperatingPoint solves the DC operating point (capacitors open,
// inductors shorted) with gmin stepping for robustness. Node initial
// conditions set via SetIC seed the Newton iteration.
func (c *Circuit) DCOperatingPoint() ([]float64, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	opts, _ := TranOpts{TStop: 1, DT: 1}.withDefaults()
	ns := newNewtonState(c)
	for id, v := range c.ics {
		ns.x[id] = v
	}
	gmins := []float64{1e-3, 1e-5, 1e-7, 1e-9, 1e-12}
	var lastErr error
	solvedAny := false
	for _, g := range gmins {
		ld := &loader{dc: true, gmin: g, t: 0, dt: 1}
		if _, err := ns.solveNewton(ld, opts); err != nil {
			if !solvedAny {
				// Retry the ladder from scratch only if nothing worked yet.
				lastErr = err
				continue
			}
			return nil, fmt.Errorf("spice: gmin stepping failed at gmin=%g: %w", g, err)
		}
		solvedAny = true
	}
	if !solvedAny {
		return nil, fmt.Errorf("spice: DC operating point failed: %w", lastErr)
	}
	out := make([]float64, ns.n)
	copy(out, ns.x)
	return out, nil
}

// Transient runs a fixed-grid transient analysis and records the probes.
func (c *Circuit) Transient(opts TranOpts, probes ...Probe) (*Result, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	opts, err := opts.withDefaults()
	if err != nil {
		return nil, err
	}
	ns := newNewtonState(c)

	// Initial state.
	if opts.UseICs {
		for id, v := range c.ics {
			ns.x[id] = v
		}
	} else {
		x0, err := c.DCOperatingPoint()
		if err != nil {
			return nil, fmt.Errorf("spice: Transient initial point: %w", err)
		}
		copy(ns.x, x0)
	}
	copy(ns.xPrev, ns.x)

	nSteps := int(math.Ceil(opts.TStop/opts.DT + 1e-9))
	res := &Result{
		T:       make([]float64, 0, nSteps+1),
		Signals: make([][]float64, len(probes)),
		Labels:  make([]string, len(probes)),
	}
	for i, p := range probes {
		res.Labels[i] = p.Label()
		res.Signals[i] = make([]float64, 0, nSteps+1)
	}
	record := func() {
		res.T = append(res.T, float64(len(res.T))*opts.DT)
		for i, p := range probes {
			res.Signals[i] = append(res.Signals[i], p.sample(ns.x, ns.nNodes))
		}
	}
	record() // t = 0

	beSteps := 2 // BE start for trapezoidal
	if opts.NoBEStart {
		beSteps = 0
	}
	t := 0.0
	for step := 1; step <= nSteps; step++ {
		tTarget := float64(step) * opts.DT
		// March to the grid point, subdividing on Newton failure.
		dt := tTarget - t
		halvings := 0
		for t < tTarget-1e-15*opts.TStop {
			if dt > tTarget-t {
				dt = tTarget - t
			}
			trap := opts.Method == Trapezoidal && beSteps <= 0
			ld := &loader{t: t + dt, dt: dt, trap: trap, gmin: opts.Gmin}
			copy(ns.xPrev, ns.x)
			if _, err := ns.solveNewton(ld, opts); err != nil {
				// Back out and halve.
				copy(ns.x, ns.xPrev)
				halvings++
				if halvings > opts.MaxHalvings {
					return res, fmt.Errorf("spice: timestep collapsed at t=%g: %w", t, err)
				}
				dt /= 2
				continue
			}
			// Commit element state.
			ldAcc := *ld
			ldAcc.x = ns.x
			ldAcc.xPrev = ns.xPrev
			for _, e := range c.elems {
				e.accept(&ldAcc)
			}
			t += dt
			if beSteps > 0 {
				beSteps--
			}
			// Gently re-expand after successful sub-steps.
			if halvings > 0 {
				dt *= 2
				halvings--
			}
		}
		t = tTarget
		record()
	}
	return res, nil
}
