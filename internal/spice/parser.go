package spice

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ParseResult is a parsed netlist: the circuit plus handles to its named
// sources and inductors for probing, and any analysis directives found.
type ParseResult struct {
	Circuit   *Circuit
	VSources  map[string]*VSource
	Inductors map[string]*Inductor
	// Tran holds the ".tran <dt> <tstop>" directive when present.
	Tran *TranSpec
}

// TranSpec is a parsed ".tran" directive.
type TranSpec struct {
	DT, TStop float64
}

// ParseNetlist reads a SPICE-style deck: one element per line, `*` comments,
// a leading title line, and `.end`. Supported elements are R, C, L, V and I
// with DC / PULSE / PWL / SIN source specifications; values accept the
// standard SPICE magnitude suffixes (f, p, n, u, m, k, meg, g, t) with
// optional trailing unit letters. Node `0` (or `gnd`) is ground.
func ParseNetlist(r io.Reader) (*ParseResult, error) {
	sc := bufio.NewScanner(r)
	res := &ParseResult{
		Circuit:   New(),
		VSources:  make(map[string]*VSource),
		Inductors: make(map[string]*Inductor),
	}
	c := res.Circuit
	// Gather the deck (title stripped, stopping at .end), then flatten
	// subcircuit hierarchy before element parsing.
	var raw []string
	first := true
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if first {
			first = false
			// The first line of a SPICE deck is a title, unless it is
			// already an element or directive.
			if line != "" && !strings.HasPrefix(line, ".") && !isElementLine(line) {
				continue
			}
		}
		if strings.HasPrefix(strings.ToLower(line), ".end") &&
			!strings.HasPrefix(strings.ToLower(line), ".ends") {
			break
		}
		raw = append(raw, line)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("spice: ParseNetlist: %w", err)
	}
	flat, err := flattenNetlist(raw)
	if err != nil {
		return nil, fmt.Errorf("spice: ParseNetlist: %w", err)
	}
	for lineNo, line := range flat {
		lineNo++
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "*") {
			continue
		}
		lower := strings.ToLower(line)
		if strings.HasPrefix(lower, ".tran") {
			fs := strings.Fields(line)
			if len(fs) < 3 {
				return nil, fmt.Errorf("spice: line %d: .tran needs <dt> <tstop>", lineNo)
			}
			dt, err := ParseValue(fs[1])
			if err != nil {
				return nil, fmt.Errorf("spice: line %d: %w", lineNo, err)
			}
			tstop, err := ParseValue(fs[2])
			if err != nil {
				return nil, fmt.Errorf("spice: line %d: %w", lineNo, err)
			}
			res.Tran = &TranSpec{DT: dt, TStop: tstop}
			continue
		}
		if strings.HasPrefix(lower, ".") {
			continue // ignore other directives (.options, .ic, ...)
		}
		if err := parseElement(c, res, line); err != nil {
			return nil, fmt.Errorf("spice: line %d: %w", lineNo, err)
		}
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return res, nil
}

func isElementLine(line string) bool {
	if line == "" {
		return false
	}
	switch line[0] {
	case 'r', 'R', 'c', 'C', 'l', 'L', 'v', 'V', 'i', 'I':
		return len(strings.Fields(line)) >= 3
	}
	return false
}

func parseElement(c *Circuit, res *ParseResult, line string) error {
	fields := splitFieldsKeepParens(line)
	if len(fields) < 4 {
		return fmt.Errorf("too few fields in %q", line)
	}
	name := fields[0]
	// K elements reference inductor names, not nodes.
	if strings.EqualFold(name[:1], "K") {
		l1, ok1 := res.Inductors[fields[1]]
		l2, ok2 := res.Inductors[fields[2]]
		if !ok1 || !ok2 {
			return fmt.Errorf("coupling %q references unknown inductors %q, %q", name, fields[1], fields[2])
		}
		k, err := ParseValue(fields[3])
		if err != nil {
			return err
		}
		_, err = c.AddMutual(l1, l2, k)
		return err
	}
	a := parseNode(c, fields[1])
	b := parseNode(c, fields[2])
	switch strings.ToUpper(name[:1]) {
	case "R":
		v, err := ParseValue(fields[3])
		if err != nil {
			return err
		}
		return c.AddR(a, b, v)
	case "C":
		v, err := ParseValue(fields[3])
		if err != nil {
			return err
		}
		return c.AddC(a, b, v)
	case "L":
		v, err := ParseValue(fields[3])
		if err != nil {
			return err
		}
		l, err := c.AddL(a, b, v)
		if err != nil {
			return err
		}
		res.Inductors[name] = l
		return nil
	case "V":
		w, err := parseSource(fields[3:])
		if err != nil {
			return err
		}
		vs, err := c.AddV(a, b, w)
		if err != nil {
			return err
		}
		res.VSources[name] = vs
		return nil
	case "I":
		w, err := parseSource(fields[3:])
		if err != nil {
			return err
		}
		return c.AddI(a, b, w)
	}
	return fmt.Errorf("unsupported element %q", name)
}

func parseNode(c *Circuit, s string) NodeID {
	if s == "0" || strings.EqualFold(s, "gnd") {
		return Ground
	}
	return c.Node(s)
}

// splitFieldsKeepParens splits on whitespace but keeps a parenthesized
// argument list (which may contain spaces) as a single field glued to its
// keyword, e.g. "PULSE(0 1 0 1n 1n 5n 10n)".
func splitFieldsKeepParens(line string) []string {
	var out []string
	depth := 0
	cur := strings.Builder{}
	for _, r := range line {
		switch {
		case r == '(':
			depth++
			cur.WriteRune(r)
		case r == ')':
			depth--
			cur.WriteRune(r)
		case (r == ' ' || r == '\t') && depth == 0:
			if cur.Len() > 0 {
				out = append(out, cur.String())
				cur.Reset()
			}
		default:
			cur.WriteRune(r)
		}
	}
	if cur.Len() > 0 {
		out = append(out, cur.String())
	}
	return out
}

func parseSource(fields []string) (Waveform, error) {
	if len(fields) == 0 {
		return nil, fmt.Errorf("missing source specification")
	}
	head := strings.ToUpper(fields[0])
	switch {
	case head == "DC":
		if len(fields) < 2 {
			return nil, fmt.Errorf("DC needs a value")
		}
		v, err := ParseValue(fields[1])
		if err != nil {
			return nil, err
		}
		return DC(v), nil
	case strings.HasPrefix(head, "PULSE"):
		args, err := parenArgs(fields[0])
		if err != nil {
			return nil, err
		}
		if len(args) < 7 {
			return nil, fmt.Errorf("PULSE needs 7 arguments, got %d", len(args))
		}
		return Pulse{V0: args[0], V1: args[1], Delay: args[2], Rise: args[3],
			Fall: args[4], Width: args[5], Period: args[6]}, nil
	case strings.HasPrefix(head, "PWL"):
		args, err := parenArgs(fields[0])
		if err != nil {
			return nil, err
		}
		if len(args)%2 != 0 || len(args) == 0 {
			return nil, fmt.Errorf("PWL needs time/value pairs")
		}
		w := PWL{}
		for i := 0; i < len(args); i += 2 {
			w.T = append(w.T, args[i])
			w.V = append(w.V, args[i+1])
		}
		return w, nil
	case strings.HasPrefix(head, "SIN"):
		args, err := parenArgs(fields[0])
		if err != nil {
			return nil, err
		}
		if len(args) < 3 {
			return nil, fmt.Errorf("SIN needs at least 3 arguments")
		}
		s := Sine{Offset: args[0], Amp: args[1], Freq: args[2]}
		if len(args) > 3 {
			s.Delay = args[3]
		}
		return s, nil
	default:
		// Bare number = DC.
		v, err := ParseValue(fields[0])
		if err != nil {
			return nil, fmt.Errorf("unrecognized source %q", fields[0])
		}
		return DC(v), nil
	}
}

func parenArgs(field string) ([]float64, error) {
	open := strings.IndexByte(field, '(')
	close := strings.LastIndexByte(field, ')')
	if open < 0 || close < open {
		return nil, fmt.Errorf("malformed argument list %q", field)
	}
	parts := strings.Fields(strings.ReplaceAll(field[open+1:close], ",", " "))
	out := make([]float64, 0, len(parts))
	for _, p := range parts {
		v, err := ParseValue(p)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

// spiceSuffixes in match order (longest first for "meg" vs "m").
var spiceSuffixes = []struct {
	s string
	m float64
}{
	{"meg", 1e6}, {"mil", 25.4e-6},
	{"t", 1e12}, {"g", 1e9}, {"k", 1e3},
	{"m", 1e-3}, {"u", 1e-6}, {"n", 1e-9}, {"p", 1e-12}, {"f", 1e-15},
}

// ParseValue parses a SPICE number: a float with an optional magnitude
// suffix and optional trailing unit letters ("10pF", "4.7k", "2meg").
func ParseValue(s string) (float64, error) {
	ls := strings.ToLower(strings.TrimSpace(s))
	if ls == "" {
		return 0, fmt.Errorf("empty value")
	}
	// Longest numeric prefix.
	end := 0
	for end < len(ls) {
		ch := ls[end]
		if ch >= '0' && ch <= '9' || ch == '.' || ch == '+' || ch == '-' {
			end++
			continue
		}
		// Exponent part.
		if ch == 'e' && end+1 < len(ls) {
			next := ls[end+1]
			if next >= '0' && next <= '9' || next == '+' || next == '-' {
				end += 2
				continue
			}
		}
		break
	}
	if end == 0 {
		return 0, fmt.Errorf("not a number: %q", s)
	}
	base, err := strconv.ParseFloat(ls[:end], 64)
	if err != nil {
		return 0, fmt.Errorf("not a number: %q", s)
	}
	rest := ls[end:]
	for _, suf := range spiceSuffixes {
		if strings.HasPrefix(rest, suf.s) {
			return base * suf.m, nil
		}
	}
	return base, nil
}
