package spice

import (
	"math"
	"testing"
)

// buildTwoSourceRC returns an RC network driven by two sources whose
// amplitudes are configurable — used to verify superposition.
func buildTwoSourceRC(a1, a2 float64) (*Circuit, NodeID) {
	c := New()
	n1, n2, out := c.Node("n1"), c.Node("n2"), c.Node("out")
	c.AddV(n1, Ground, Pulse{V0: 0, V1: a1, Rise: 0.05, Width: 10, Fall: 0.05})
	c.AddV(n2, Ground, Sine{Offset: 0, Amp: a2, Freq: 0.8})
	c.AddR(n1, out, 2)
	c.AddR(n2, out, 3)
	c.AddC(out, Ground, 0.5)
	c.AddR(out, Ground, 10)
	return c, out
}

func TestSuperpositionOfLinearCircuit(t *testing.T) {
	// Response to both sources = sum of responses to each alone. This is a
	// deep consistency check of the MNA assembly, companion models and
	// integrator: any stamping asymmetry breaks it.
	run := func(a1, a2 float64) []float64 {
		c, _ := buildTwoSourceRC(a1, a2)
		res, err := c.Transient(TranOpts{TStop: 4, DT: 0.004, UseICs: true}, c.ProbeNode("out"))
		if err != nil {
			t.Fatal(err)
		}
		v, _ := res.Signal("out")
		return v
	}
	both := run(1.5, 0.8)
	only1 := run(1.5, 0)
	only2 := run(0, 0.8)
	for i := range both {
		if d := math.Abs(both[i] - only1[i] - only2[i]); d > 1e-6 {
			t.Fatalf("superposition violated at sample %d: %v", i, d)
		}
	}
}

func TestChargeConservationOnIsolatedIsland(t *testing.T) {
	// Two capacitors joined by a resistor with no path to any source: the
	// weighted charge (C1·V1 + C2·V2) must be conserved as the voltages
	// equalize from their ICs.
	c := New()
	a, b := c.Node("a"), c.Node("b")
	c.AddC(a, Ground, 2)
	c.AddC(b, Ground, 1)
	c.AddR(a, b, 5)
	c.SetIC(a, 3)
	c.SetIC(b, 0)
	res, err := c.Transient(TranOpts{TStop: 60, DT: 0.02, UseICs: true},
		c.ProbeNode("a"), c.ProbeNode("b"))
	if err != nil {
		t.Fatal(err)
	}
	va, _ := res.Signal("a")
	vb, _ := res.Signal("b")
	q0 := 2*va[0] + 1*vb[0]
	for i := range va {
		if d := math.Abs(2*va[i] + vb[i] - q0); d > 1e-3*q0 {
			t.Fatalf("charge drifted by %v at sample %d", d, i)
		}
	}
	// Final voltages equalized at q0/(C1+C2) = 2.
	last := len(va) - 1
	if math.Abs(va[last]-2) > 1e-3 || math.Abs(vb[last]-2) > 1e-3 {
		t.Errorf("final voltages %v, %v; want 2, 2", va[last], vb[last])
	}
}

func TestTimeReversalSymmetryOfLC(t *testing.T) {
	// A lossless LC tank started with energy in the capacitor must conserve
	// total energy under trapezoidal integration (trap is symplectic-like
	// for LC: no numerical damping).
	c := New()
	top := c.Node("top")
	l, err := c.AddL(top, Ground, 1)
	if err != nil {
		t.Fatal(err)
	}
	c.AddC(top, Ground, 1)
	c.SetIC(top, 1)
	res, err := c.Transient(TranOpts{TStop: 50, DT: 0.01, UseICs: true, NoBEStart: true},
		c.ProbeNode("top"), BranchProbe{Name: "il", L: l})
	if err != nil {
		t.Fatal(err)
	}
	v, _ := res.Signal("top")
	i, _ := res.Signal("il")
	e0 := 0.5 * (v[0]*v[0] + i[0]*i[0])
	for j := range v {
		e := 0.5 * (v[j]*v[j] + i[j]*i[j])
		if math.Abs(e-e0) > 2e-3*e0 {
			t.Fatalf("energy drift %v at sample %d (trap should not damp LC)", e-e0, j)
		}
	}
	// And it actually oscillates at ω = 1.
	crossed := 0
	for j := 1; j < len(v); j++ {
		if v[j-1] > 0 && v[j] <= 0 {
			crossed++
		}
	}
	if crossed < 6 {
		t.Errorf("LC tank barely oscillates: %d downward zero crossings", crossed)
	}
}
