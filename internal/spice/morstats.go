package spice

import "sync/atomic"

// Process-wide counters for the Krylov reduced-order transient fast path.
// Serving tiers surface them (rlcd's /metrics and /statusz), so operators can
// see whether their transient-backed traffic actually rides the reduction —
// and how often it falls back to the full solver — without scraping diag
// reports per request.
var (
	morStatEngaged   atomic.Uint64 // runs that marched a validated reduced model
	morStatCacheHits atomic.Uint64 // engagements served by the model cache
	morStatFallback  atomic.Uint64 // reduced runs that bailed out to the full solver
	morStatRejected  atomic.Uint64 // reduction attempts rejected by a gate (classify/extract/reduce/confirm)
)

// MORStats is a snapshot of the reduced-order fast path's counters since
// process start (or the last ResetReductionStats).
type MORStats struct {
	Engaged   uint64 `json:"engaged"`
	CacheHits uint64 `json:"cache_hits"`
	Fallbacks uint64 `json:"fallbacks"`
	Rejected  uint64 `json:"rejected"`
}

// ReductionStats returns the current reduced-order fast-path counters.
func ReductionStats() MORStats {
	return MORStats{
		Engaged:   morStatEngaged.Load(),
		CacheHits: morStatCacheHits.Load(),
		Fallbacks: morStatFallback.Load(),
		Rejected:  morStatRejected.Load(),
	}
}

// ResetReductionStats zeroes the counters (tests and benchmarks).
func ResetReductionStats() {
	morStatEngaged.Store(0)
	morStatCacheHits.Store(0)
	morStatFallback.Store(0)
	morStatRejected.Store(0)
}
