package spice

import (
	"math"
	"testing"
)

func TestRCChargingMatchesAnalytic(t *testing.T) {
	// 1Ω, 1F driven by a 1V step: v(t) = 1 − e^{−t}.
	c := New()
	in, out := c.Node("in"), c.Node("out")
	if _, err := c.AddV(in, Ground, DC(1)); err != nil {
		t.Fatal(err)
	}
	if err := c.AddR(in, out, 1); err != nil {
		t.Fatal(err)
	}
	if err := c.AddC(out, Ground, 1); err != nil {
		t.Fatal(err)
	}
	c.SetIC(out, 0)
	res, err := c.Transient(TranOpts{TStop: 5, DT: 0.01, UseICs: true}, c.ProbeNode("out"))
	if err != nil {
		t.Fatal(err)
	}
	v, _ := res.Signal("out")
	for i, tt := range res.T {
		want := 1 - math.Exp(-tt)
		if math.Abs(v[i]-want) > 2e-4 {
			t.Fatalf("t=%v: v=%v, want %v", tt, v[i], want)
		}
	}
}

func TestTrapBeatsBackwardEuler(t *testing.T) {
	// Same RC circuit with a coarse step: trapezoidal must be more accurate.
	run := func(m Method) float64 {
		c := New()
		in, out := c.Node("in"), c.Node("out")
		c.AddV(in, Ground, DC(1))
		c.AddR(in, out, 1)
		c.AddC(out, Ground, 1)
		c.SetIC(out, 0)
		res, err := c.Transient(TranOpts{TStop: 3, DT: 0.1, UseICs: true, Method: m}, c.ProbeNode("out"))
		if err != nil {
			t.Fatal(err)
		}
		v, _ := res.Signal("out")
		maxErr := 0.0
		// Compare once the start-up transient of the integrator has decayed
		// through the circuit's own time constant.
		for i, tt := range res.T {
			if tt < 1.5 {
				continue
			}
			if e := math.Abs(v[i] - (1 - math.Exp(-tt))); e > maxErr {
				maxErr = e
			}
		}
		return maxErr
	}
	trapErr := run(Trapezoidal)
	beErr := run(BackwardEuler)
	if trapErr >= beErr {
		t.Errorf("trap error %v not better than BE %v", trapErr, beErr)
	}
	if trapErr > 3e-3 {
		t.Errorf("trap error %v too large", trapErr)
	}
}

func TestSeriesRLCMatchesTwoPoleAnalytic(t *testing.T) {
	// R-L-C lumped series circuit: H(s) = 1/(1 + RC s + LC s²) — exactly the
	// two-pole model. Underdamped case R=0.5, L=1, C=1 (ζ=0.25).
	c := New()
	in, mid, out := c.Node("in"), c.Node("mid"), c.Node("out")
	c.AddV(in, Ground, DC(1))
	c.AddR(in, mid, 0.5)
	if _, err := c.AddL(mid, out, 1); err != nil {
		t.Fatal(err)
	}
	c.AddC(out, Ground, 1)
	c.SetIC(out, 0)
	res, err := c.Transient(TranOpts{TStop: 12, DT: 0.002, UseICs: true}, c.ProbeNode("out"))
	if err != nil {
		t.Fatal(err)
	}
	v, _ := res.Signal("out")
	alpha, beta := 0.25, math.Sqrt(1-0.0625)
	for i, tt := range res.T {
		want := 1 - math.Exp(-alpha*tt)*(math.Cos(beta*tt)+alpha/beta*math.Sin(beta*tt))
		if math.Abs(v[i]-want) > 5e-3 {
			t.Fatalf("t=%v: v=%v, want %v", tt, v[i], want)
		}
	}
	// The simulated response must overshoot (underdamped).
	peak := 0.0
	for _, vi := range v {
		if vi > peak {
			peak = vi
		}
	}
	if peak < 1.05 {
		t.Errorf("peak %v: expected visible overshoot", peak)
	}
}

func TestInductorBranchCurrentProbe(t *testing.T) {
	// Series RL driven by a step: i(t) = (V/R)(1 − e^{−Rt/L}).
	c := New()
	in, mid := c.Node("in"), c.Node("mid")
	c.AddV(in, Ground, DC(2))
	c.AddR(in, mid, 4)
	l, err := c.AddL(mid, Ground, 2)
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Transient(TranOpts{TStop: 5, DT: 0.005, UseICs: true},
		BranchProbe{Name: "iL", L: l})
	if err != nil {
		t.Fatal(err)
	}
	i, _ := res.Signal("iL")
	for j, tt := range res.T {
		want := 0.5 * (1 - math.Exp(-2*tt))
		if math.Abs(i[j]-want) > 2e-3 {
			t.Fatalf("t=%v: i=%v, want %v", tt, i[j], want)
		}
	}
}

func TestDCOperatingPointDivider(t *testing.T) {
	c := New()
	top, mid := c.Node("top"), c.Node("mid")
	c.AddV(top, Ground, DC(3))
	c.AddR(top, mid, 1000)
	c.AddR(mid, Ground, 2000)
	x, err := c.DCOperatingPoint()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[mid]-2) > 1e-6 {
		t.Errorf("divider mid = %v, want 2", x[mid])
	}
}

func TestDCOperatingPointInductorShort(t *testing.T) {
	c := New()
	top, mid := c.Node("top"), c.Node("mid")
	c.AddV(top, Ground, DC(5))
	c.AddR(top, mid, 100)
	l, err := c.AddL(mid, Ground, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	_ = l
	x, err := c.DCOperatingPoint()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[mid]) > 1e-4 {
		t.Errorf("node above shorted inductor = %v, want ≈0", x[mid])
	}
	// Branch current = 5V/100Ω.
	if i := x[c.NumNodes()+l.bidx]; math.Abs(i-0.05) > 1e-6 {
		t.Errorf("inductor DC current = %v, want 0.05", i)
	}
}

func TestCurrentSource(t *testing.T) {
	// 1A into a 5Ω resistor (through the source b-terminal).
	c := New()
	n := c.Node("n")
	c.AddI(Ground, n, DC(1)) // current flows ground -> n through the source
	c.AddR(n, Ground, 5)
	x, err := c.DCOperatingPoint()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[n]-5) > 1e-6 {
		t.Errorf("v = %v, want 5", x[n])
	}
}

func TestWaveforms(t *testing.T) {
	p := Pulse{V0: 0, V1: 1, Delay: 1, Rise: 0.5, Width: 2, Fall: 0.5, Period: 5}
	cases := []struct{ t, want float64 }{
		{0, 0}, {1, 0}, {1.25, 0.5}, {1.5, 1}, {3, 1}, {3.75, 0.5}, {4.5, 0},
		{6, 0}, {6.5, 1}, // second period
	}
	for _, tc := range cases {
		if got := p.At(tc.t); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("Pulse.At(%v) = %v, want %v", tc.t, got, tc.want)
		}
	}
	w := PWL{T: []float64{0, 1, 3}, V: []float64{0, 2, -2}}
	if w.At(-1) != 0 || w.At(0.5) != 1 || w.At(2) != 0 || w.At(9) != -2 {
		t.Error("PWL interpolation wrong")
	}
	s := Sine{Offset: 1, Amp: 2, Freq: 0.25, Delay: 1}
	if s.At(0) != 1 {
		t.Error("Sine before delay")
	}
	if got := s.At(2); math.Abs(got-3) > 1e-12 { // sin(2π·0.25·1) = 1
		t.Errorf("Sine.At(2) = %v", got)
	}
	if (DC(3)).At(99) != 3 {
		t.Error("DC wrong")
	}
}

func TestInverterDCTransfer(t *testing.T) {
	// Sweep the input of a single inverter via DC op at several input
	// levels; the transfer curve must be high for low in, low for high in,
	// and monotone decreasing.
	vdd := 1.2
	sweep := []float64{0, 0.3, 0.55, 0.65, 0.9, 1.2}
	var prev float64 = math.Inf(1)
	for _, vin := range sweep {
		c := New()
		in, out := c.Node("in"), c.Node("out")
		c.AddV(in, Ground, DC(vin))
		if _, err := c.AddInverter(in, out, InverterParams{
			VDD: vdd, ROut: 14.3, CIn: 4e-13, COut: 1.9e-12,
		}); err != nil {
			t.Fatal(err)
		}
		x, err := c.DCOperatingPoint()
		if err != nil {
			t.Fatalf("vin=%v: %v", vin, err)
		}
		vout := x[out]
		if vout > prev+1e-9 {
			t.Errorf("vin=%v: transfer not monotone (%v > %v)", vin, vout, prev)
		}
		prev = vout
		if vin == 0 && math.Abs(vout-vdd) > 0.01 {
			t.Errorf("vin=0: out=%v, want ≈VDD", vout)
		}
		if vin == vdd && math.Abs(vout) > 0.01 {
			t.Errorf("vin=VDD: out=%v, want ≈0", vout)
		}
	}
}

func TestThreeStageRingOscillatorOscillates(t *testing.T) {
	// Three macro-model inverters in a loop with small caps: must oscillate.
	c := New()
	nodes := []NodeID{c.Node("a"), c.Node("b"), c.Node("c")}
	vdd := 1.2
	for i := range nodes {
		if _, err := c.AddInverter(nodes[i], nodes[(i+1)%3], InverterParams{
			VDD: vdd, ROut: 100, CIn: 1e-13, COut: 1e-13,
		}); err != nil {
			t.Fatal(err)
		}
	}
	c.SetIC(nodes[0], vdd)
	c.SetIC(nodes[1], 0)
	c.SetIC(nodes[2], vdd)
	res, err := c.Transient(TranOpts{TStop: 2e-9, DT: 1e-12, UseICs: true}, c.ProbeNode("a"))
	if err != nil {
		t.Fatal(err)
	}
	v, _ := res.Signal("a")
	// Count rail-to-rail transitions through VDD/2.
	crossings := 0
	for i := 1; i < len(v); i++ {
		if (v[i-1]-vdd/2)*(v[i]-vdd/2) < 0 {
			crossings++
		}
	}
	if crossings < 4 {
		t.Errorf("ring oscillator: only %d threshold crossings in window", crossings)
	}
}

func TestMOSFETInverterTransfer(t *testing.T) {
	// CMOS pair from alpha-power devices: output high at vin=0, low at VDD.
	vdd := 1.2
	eval := func(vin float64) float64 {
		c := New()
		in, out, vddN := c.Node("in"), c.Node("out"), c.Node("vdd")
		c.AddV(vddN, Ground, DC(vdd))
		c.AddV(in, Ground, DC(vin))
		// NMOS pulls down, PMOS pulls up.
		if err := c.AddMOSFET(out, in, Ground, MOSFETParams{
			VT: 0.3, Alpha: 1.3, KSat: 5e-4, KV: 0.8,
		}); err != nil {
			t.Fatal(err)
		}
		if err := c.AddMOSFET(out, in, vddN, MOSFETParams{
			PMOS: true, VT: 0.3, Alpha: 1.3, KSat: 5e-4, KV: 0.8,
		}); err != nil {
			t.Fatal(err)
		}
		c.AddR(out, Ground, 1e9) // leak to define the node when both are off
		x, err := c.DCOperatingPoint()
		if err != nil {
			t.Fatalf("vin=%v: %v", vin, err)
		}
		return x[out]
	}
	if v := eval(0); math.Abs(v-vdd) > 0.05 {
		t.Errorf("vin=0: out=%v, want ≈%v", v, vdd)
	}
	if v := eval(vdd); math.Abs(v) > 0.05 {
		t.Errorf("vin=VDD: out=%v, want ≈0", v)
	}
	lo, hi := eval(0.45), eval(0.75)
	if lo <= hi {
		t.Errorf("transfer not decreasing: f(0.45)=%v <= f(0.75)=%v", lo, hi)
	}
}

func TestValidationErrors(t *testing.T) {
	c := New()
	if err := c.Validate(); err == nil {
		t.Error("empty circuit must fail validation")
	}
	n := c.Node("n")
	if err := c.AddR(n, Ground, -5); err == nil {
		t.Error("negative R must fail")
	}
	if err := c.AddC(n, Ground, 0); err == nil {
		t.Error("zero C must fail")
	}
	if _, err := c.AddL(n, Ground, math.NaN()); err == nil {
		t.Error("NaN L must fail")
	}
	if _, err := c.AddV(n, Ground, nil); err == nil {
		t.Error("nil waveform must fail")
	}
	if err := c.AddI(n, Ground, nil); err == nil {
		t.Error("nil waveform must fail")
	}
	if _, err := c.AddInverter(n, n, InverterParams{}); err == nil {
		t.Error("zero inverter params must fail")
	}
	if err := c.AddMOSFET(n, n, Ground, MOSFETParams{}); err == nil {
		t.Error("zero MOSFET params must fail")
	}
	c.AddR(n, Ground, 1)
	c.AddV(n, Ground, DC(1))
	if _, err := c.Transient(TranOpts{TStop: -1, DT: 1}); err == nil {
		t.Error("negative tstop must fail")
	}
	res, err := c.Transient(TranOpts{TStop: 1e-9, DT: 1e-10}, c.ProbeNode("n"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := res.Signal("nope"); err == nil {
		t.Error("unknown probe label must fail")
	}
}

func TestNodeNamesAndReuse(t *testing.T) {
	c := New()
	a := c.Node("x")
	b := c.Node("x")
	if a != b {
		t.Error("Node must return the same ID for the same name")
	}
	if c.NodeName(a) != "x" || c.NodeName(Ground) != "0" {
		t.Error("NodeName wrong")
	}
}
