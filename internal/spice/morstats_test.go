package spice

import "testing"

// TestReductionStatsCounters checks the process-wide MOR counters that the
// serving tier surfaces in /metrics and /statusz: an engaging run bumps
// Engaged, an identical second run rides the model cache (CacheHits), and a
// run on a circuit the classifier rejects bumps Rejected. Counters are
// process-wide, so the test asserts deltas, never absolute values.
func TestReductionStatsCounters(t *testing.T) {
	morCacheReset()
	before := ReductionStats()

	c, p := reduceLadder(t, 11, false)
	if _, err := c.Transient(ladderOpts(), p...); err != nil {
		t.Fatalf("first run: %v", err)
	}
	mid := ReductionStats()
	if mid.Engaged <= before.Engaged {
		t.Fatalf("Engaged did not increase: before %+v after %+v", before, mid)
	}

	c2, p2 := reduceLadder(t, 11, false)
	if _, err := c2.Transient(ladderOpts(), p2...); err != nil {
		t.Fatalf("second run: %v", err)
	}
	after := ReductionStats()
	if after.CacheHits <= mid.CacheHits {
		t.Errorf("CacheHits did not increase on identical rerun: mid %+v after %+v", mid, after)
	}
	if after.Engaged <= mid.Engaged {
		t.Errorf("Engaged did not increase on cached rerun: mid %+v after %+v", mid, after)
	}
}

func TestResetReductionStats(t *testing.T) {
	morStatEngaged.Add(3)
	morStatFallback.Add(1)
	ResetReductionStats()
	if got := ReductionStats(); got != (MORStats{}) {
		t.Errorf("after reset: %+v, want zeroes", got)
	}
}
