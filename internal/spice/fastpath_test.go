package spice

import (
	"fmt"
	"math"
	"math/rand"
	"path/filepath"
	"strings"
	"testing"

	"rlcint/internal/diag"
	"rlcint/internal/runctl"
)

// randLadder builds a randomized driven RLC ladder: a pulse source feeding
// sections of series R–L with shunt C, mutual coupling between neighbouring
// inductors, and (optionally) inverter repeaters every third section. The
// same seed always builds the identical netlist, so the differential tests
// construct one circuit per simulation run (element state mutates during a
// run) and still compare like against like. The topology is driven, not
// autonomous: free-running oscillators amplify last-bit differences
// chaotically, which would make even correct refactorization look broken.
func randLadder(t *testing.T, seed int64, withInverters bool) (*Circuit, []Probe) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	c := New()
	in := c.Node("in")
	if _, err := c.AddV(in, Ground, Pulse{V0: 0, V1: 1, Delay: 20e-12, Rise: 30e-12, Width: 350e-12, Fall: 30e-12}); err != nil {
		t.Fatal(err)
	}
	prev := in
	var prevL *Inductor
	sections := 6 + rng.Intn(4)
	for i := 0; i < sections; i++ {
		mid := c.Node(fmt.Sprintf("m%d", i))
		out := c.Node(fmt.Sprintf("n%d", i))
		if err := c.AddR(prev, mid, 5+20*rng.Float64()); err != nil {
			t.Fatal(err)
		}
		l, err := c.AddL(mid, out, (0.5+rng.Float64())*1e-10)
		if err != nil {
			t.Fatal(err)
		}
		if err := c.AddC(out, Ground, (0.5+rng.Float64())*1e-14); err != nil {
			t.Fatal(err)
		}
		if prevL != nil {
			if _, err := c.AddMutual(prevL, l, 0.15+0.1*rng.Float64()); err != nil {
				t.Fatal(err)
			}
		}
		prevL = l
		prev = out
		if withInverters && i%3 == 2 {
			buf := c.Node(fmt.Sprintf("b%d", i))
			if _, err := c.AddInverter(prev, buf, InverterParams{
				VDD: 1, ROut: 200 + 100*rng.Float64(), CIn: 2e-15, COut: 2e-15,
			}); err != nil {
				t.Fatal(err)
			}
			// Decouple repeaters so the chain keeps a stable DC point.
			prev = buf
			prevL = nil
		}
	}
	probes := []Probe{c.ProbeNode("n0"), c.ProbeNode(c.NodeName(NodeID(prev)))}
	return c, probes
}

func ladderOpts() TranOpts {
	// Tight solver tolerances so fast/legacy Newton iterates for nonlinear
	// circuits agree far below the 1e-9 comparison threshold.
	return TranOpts{
		TStop: 1e-9, DT: 5e-12,
		ITol: 1e-12, RelTol: 1e-9, VNTol: 1e-12,
	}
}

func maxSignalDiff(t *testing.T, a, b *Result) float64 {
	t.Helper()
	if len(a.T) != len(b.T) || len(a.Signals) != len(b.Signals) {
		t.Fatalf("result shapes differ: %d/%d samples, %d/%d signals",
			len(a.T), len(b.T), len(a.Signals), len(b.Signals))
	}
	m := 0.0
	for i := range a.Signals {
		for j := range a.Signals[i] {
			if d := math.Abs(a.Signals[i][j] - b.Signals[i][j]); d > m {
				m = d
			}
		}
	}
	return m
}

// TestFastPathLinearBitExact checks the linear-circuit bypass against the
// legacy path on randomized RLC ladders: every recorded sample must be
// bit-for-bit equal, because the bypass runs the same Newton loop on the
// same residuals with numerically identical factors.
func TestFastPathLinearBitExact(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		cFast, pFast := randLadder(t, seed, false)
		cSlow, pSlow := randLadder(t, seed, false)
		// This test pins the sparse-kernel fast path against the legacy
		// assembly; the Krylov reduction (which is accurate to its gate
		// tolerance, not bit-exact) is exercised by reduce_test.go.
		fastOpts := ladderOpts()
		fastOpts.NoReduction = true
		fast, err := cFast.Transient(fastOpts, pFast...)
		if err != nil {
			t.Fatalf("seed %d fast: %v", seed, err)
		}
		slowOpts := ladderOpts()
		slowOpts.NoFastPath = true
		slow, err := cSlow.Transient(slowOpts, pSlow...)
		if err != nil {
			t.Fatalf("seed %d legacy: %v", seed, err)
		}
		if d := maxSignalDiff(t, fast, slow); d != 0 {
			t.Errorf("seed %d: linear bypass deviates from legacy path by %g (want bit-exact)", seed, d)
		}
	}
}

// TestFastPathNonlinearAgrees checks the partitioned-stamping +
// refactorization path against the legacy path on ladders with inverter
// repeaters. Both paths converge each step to the same tight tolerances, so
// the waveforms must agree to well below 1e-9.
func TestFastPathNonlinearAgrees(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		cFast, pFast := randLadder(t, seed, true)
		cSlow, pSlow := randLadder(t, seed, true)
		fast, err := cFast.Transient(ladderOpts(), pFast...)
		if err != nil {
			t.Fatalf("seed %d fast: %v", seed, err)
		}
		slowOpts := ladderOpts()
		slowOpts.NoFastPath = true
		slow, err := cSlow.Transient(slowOpts, pSlow...)
		if err != nil {
			t.Fatalf("seed %d legacy: %v", seed, err)
		}
		if d := maxSignalDiff(t, fast, slow); d > 1e-9 {
			t.Errorf("seed %d: fast path deviates from legacy path by %g (want <= 1e-9)", seed, d)
		}
	}
}

// TestFastPathDCAgrees compares DC operating points: bit-exact for linear
// circuits, Newton-tolerance agreement with nonlinear repeaters.
func TestFastPathDCAgrees(t *testing.T) {
	for _, nl := range []bool{false, true} {
		cFast, _ := randLadder(t, 7, nl)
		cSlow, _ := randLadder(t, 7, nl)
		xf, err := cFast.DCOperatingPointWith(DCOpts{})
		if err != nil {
			t.Fatalf("nl=%v fast: %v", nl, err)
		}
		xs, err := cSlow.DCOperatingPointWith(DCOpts{NoFastPath: true})
		if err != nil {
			t.Fatalf("nl=%v legacy: %v", nl, err)
		}
		m := 0.0
		for i := range xf {
			if d := math.Abs(xf[i] - xs[i]); d > m {
				m = d
			}
		}
		if !nl && m != 0 {
			t.Errorf("linear DC point deviates by %g (want bit-exact)", m)
		}
		if nl && m > 1e-5 {
			t.Errorf("nonlinear DC point deviates by %g (want <= 1e-5)", m)
		}
	}
}

// TestFastPathRefactorFallbackRecovers forces the pivot-health guard's
// fallback on every refactorization attempt via the
// "spice.refactorize/<rung>" injection site: the run must complete by
// falling back to full factorizations, record the fallbacks, and still
// match the legacy waveform.
func TestFastPathRefactorFallbackRecovers(t *testing.T) {
	cFast, pFast := randLadder(t, 11, true)
	cSlow, pSlow := randLadder(t, 11, true)
	rep := &diag.Report{}
	opts := ladderOpts()
	opts.Report = rep
	opts.Injector = &diag.Injector{Fault: func(s diag.Site) error {
		if strings.HasPrefix(s.Op, "spice.refactorize/") {
			return fmt.Errorf("injected refactorization fault")
		}
		return nil
	}}
	fast, err := cFast.Transient(opts, pFast...)
	if err != nil {
		t.Fatalf("fast run with forced fallbacks: %v", err)
	}
	if rep.Tried("newton-fast") == 0 {
		t.Fatalf("no refactor-fallback attempts recorded; injector never reached the refactorization site")
	}
	slowOpts := ladderOpts()
	slowOpts.NoFastPath = true
	slow, err := cSlow.Transient(slowOpts, pSlow...)
	if err != nil {
		t.Fatalf("legacy: %v", err)
	}
	if d := maxSignalDiff(t, fast, slow); d > 1e-9 {
		t.Errorf("fallback waveform deviates from legacy by %g (want <= 1e-9)", d)
	}
}

// TestFastPathRestartBitExact interrupts a nonlinear fast-path run
// mid-window via an iteration budget, restarts it from the snapshot on a
// freshly built circuit, and requires the restarted waveform to equal the
// uninterrupted run's bit-for-bit — the property the fast path's symbolic
// refresh schedule (full factorization at snapshot-boundary steps) exists
// to preserve.
func TestFastPathRestartBitExact(t *testing.T) {
	cpPath := filepath.Join(t.TempDir(), "ladder.ckpt")

	cFull, pFull := randLadder(t, 13, true)
	full, err := cFull.Transient(ladderOpts(), pFull...)
	if err != nil {
		t.Fatalf("uninterrupted: %v", err)
	}

	cHalf, pHalf := randLadder(t, 13, true)
	halfOpts := ladderOpts()
	halfOpts.CheckpointPath = cpPath
	halfOpts.CheckpointEvery = 25
	halfOpts.Limits = runctl.Limits{MaxIters: 250}
	if _, err := cHalf.Transient(halfOpts, pHalf...); err == nil {
		t.Fatal("interrupted run unexpectedly completed; raise the window or lower MaxIters")
	}

	cp, err := LoadCheckpoint(cpPath)
	if err != nil {
		t.Fatalf("load snapshot: %v", err)
	}
	nSteps := int(ladderOpts().TStop/ladderOpts().DT + 0.5)
	if cp.Step < 1 || cp.Step >= nSteps {
		t.Fatalf("snapshot at step %d does not interrupt the %d-step window", cp.Step, nSteps)
	}

	cRes, pRes := randLadder(t, 13, true)
	resOpts := ladderOpts()
	resOpts.CheckpointEvery = 25
	resumed, err := cRes.TransientResume(cp, resOpts, pRes...)
	if err != nil {
		t.Fatalf("restart: %v", err)
	}
	if d := maxSignalDiff(t, full, resumed); d != 0 {
		t.Errorf("restarted run deviates from uninterrupted run by %g (want bit-exact)", d)
	}
}

// TestFastPathAdaptiveLinearBitExact runs the adaptive stepper on a linear
// ladder both ways: the bypass must reproduce the legacy run bit-exactly,
// step-size decisions included, even though the adaptive dt churn overflows
// the bounded factorization cache.
func TestFastPathAdaptiveLinearBitExact(t *testing.T) {
	cFast, pFast := randLadder(t, 17, false)
	cSlow, pSlow := randLadder(t, 17, false)
	// Pin NoReduction: this test checks the sparse-kernel bypass bit-for-bit
	// against legacy assembly; the Krylov reduction is tolerance-accurate,
	// not bit-exact, and has its own tests in reduce_test.go.
	aOpts := AdaptiveOpts{TStop: 1e-9, ITol: 1e-12, NoReduction: true}
	fast, err := cFast.TransientAdaptive(aOpts, pFast...)
	if err != nil {
		t.Fatalf("fast: %v", err)
	}
	aOpts.NoFastPath = true
	slow, err := cSlow.TransientAdaptive(aOpts, pSlow...)
	if err != nil {
		t.Fatalf("legacy: %v", err)
	}
	if d := maxSignalDiff(t, fast, slow); d != 0 {
		t.Errorf("adaptive bypass deviates from legacy by %g (want bit-exact)", d)
	}
}

// TestTransientStepAllocFree drives a warmed-up nonlinear solver through
// steady-state sub-steps and requires them to allocate nothing: the fast
// path's point is that the per-step hot loop touches only preallocated
// state.
func TestTransientStepAllocFree(t *testing.T) {
	c, _ := randLadder(t, 19, true)
	opts, err := TranOpts{TStop: 1e-9, DT: 5e-12}.withDefaults()
	if err != nil {
		t.Fatal(err)
	}
	ns := newNewtonState(c)
	x0, err := c.DCOperatingPointWith(DCOpts{})
	if err != nil {
		t.Fatal(err)
	}
	copy(ns.x, x0)
	copy(ns.xPrev, ns.x)
	step := 1
	tNow := 0.0
	runStep := func() {
		ld := &ns.ld
		*ld = loader{t: tNow + opts.DT, dt: opts.DT, trap: true, gmin: opts.Gmin, op: "tran-tr", step: step}
		copy(ns.xPrev, ns.x)
		if _, err := ns.solveNewton(ld, opts); err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		ld.x = ns.x
		ld.xPrev = ns.xPrev
		for _, e := range c.elems {
			e.accept(ld)
		}
		tNow += opts.DT
		step++
	}
	for i := 0; i < 8; i++ { // warm-up: freeze pattern, size every buffer
		runStep()
	}
	if allocs := testing.AllocsPerRun(20, runStep); allocs != 0 {
		t.Errorf("steady-state transient step allocates %.0f objects/op, want 0", allocs)
	}
}
