package spice

import (
	"fmt"
	"strings"
)

// subcktDef is a parsed .subckt block: ordered port names and raw body
// lines, expanded textually at instantiation (the classic SPICE flattening
// model).
type subcktDef struct {
	name  string
	ports []string
	body  []string
}

// maxSubcktDepth bounds nested instantiation (and catches recursion).
const maxSubcktDepth = 16

// flattenNetlist expands .subckt definitions and X-instance lines into a
// flat element list. Internal subcircuit nodes are renamed
// "<instance>.<node>"; port nodes map to the instance's connection nodes.
// Definitions may be nested and may instantiate other subcircuits.
func flattenNetlist(lines []string) ([]string, error) {
	defs := map[string]*subcktDef{}
	var top []string
	// First pass: strip definitions (non-nested textual blocks; a
	// definition inside a definition body is collected when the body is
	// expanded — standard SPICE treats all .subckt as global, which we
	// emulate by recursively extracting).
	if err := extractDefs(lines, defs, &top); err != nil {
		return nil, err
	}
	var out []string
	for _, line := range top {
		expanded, err := expandLine(line, defs, 0)
		if err != nil {
			return nil, err
		}
		out = append(out, expanded...)
	}
	return out, nil
}

// cardIs reports whether the line's first whitespace-delimited field is the
// named dot-card. Prefix matching is wrong here: ".ends0" is an unknown card,
// not an ".ends" terminator.
func cardIs(line, name string) bool {
	fs := strings.Fields(line)
	return len(fs) > 0 && strings.ToLower(fs[0]) == name
}

// extractDefs walks lines, collecting .subckt blocks into defs and all
// remaining lines into rest. Nested definitions are hoisted to the global
// scope (SPICE semantics).
func extractDefs(lines []string, defs map[string]*subcktDef, rest *[]string) error {
	i := 0
	for i < len(lines) {
		line := strings.TrimSpace(lines[i])
		if cardIs(line, ".ends") {
			return fmt.Errorf("stray .ends without matching .subckt: %q", line)
		}
		if !cardIs(line, ".subckt") {
			*rest = append(*rest, lines[i])
			i++
			continue
		}
		fs := strings.Fields(line)
		if len(fs) < 3 {
			return fmt.Errorf(".subckt needs a name and at least one port: %q", line)
		}
		def := &subcktDef{name: strings.ToLower(fs[1]), ports: fs[2:]}
		depth := 1
		i++
		var body []string
		for i < len(lines) {
			l := strings.TrimSpace(lines[i])
			if cardIs(l, ".subckt") {
				depth++
			}
			if cardIs(l, ".ends") {
				depth--
				if depth == 0 {
					break
				}
			}
			body = append(body, lines[i])
			i++
		}
		if depth != 0 {
			return fmt.Errorf("unterminated .subckt %s", def.name)
		}
		i++ // skip .ends
		// Hoist nested definitions out of the body.
		var flatBody []string
		if err := extractDefs(body, defs, &flatBody); err != nil {
			return err
		}
		def.body = flatBody
		if _, dup := defs[def.name]; dup {
			return fmt.Errorf("duplicate .subckt %s", def.name)
		}
		defs[def.name] = def
	}
	return nil
}

// expandLine expands an X-instance line (recursively) or returns the line
// unchanged.
func expandLine(line string, defs map[string]*subcktDef, depth int) ([]string, error) {
	trimmed := strings.TrimSpace(line)
	if trimmed == "" || trimmed[0] != 'X' && trimmed[0] != 'x' {
		return []string{line}, nil
	}
	if depth >= maxSubcktDepth {
		return nil, fmt.Errorf("subcircuit nesting deeper than %d (recursive definition?)", maxSubcktDepth)
	}
	fs := strings.Fields(trimmed)
	if len(fs) < 3 {
		return nil, fmt.Errorf("malformed subcircuit instance %q", line)
	}
	inst := fs[0]
	defName := strings.ToLower(fs[len(fs)-1])
	conns := fs[1 : len(fs)-1]
	def, ok := defs[defName]
	if !ok {
		return nil, fmt.Errorf("instance %s references unknown subcircuit %q", inst, defName)
	}
	if len(conns) != len(def.ports) {
		return nil, fmt.Errorf("instance %s: %d connections for %d ports of %s",
			inst, len(conns), len(def.ports), def.name)
	}
	portMap := map[string]string{"0": "0", "gnd": "0"}
	for i, p := range def.ports {
		portMap[strings.ToLower(p)] = conns[i]
	}
	rename := func(node string) string {
		if mapped, ok := portMap[strings.ToLower(node)]; ok {
			return mapped
		}
		return inst + "." + node
	}
	var out []string
	for _, bl := range def.body {
		bt := strings.TrimSpace(bl)
		if bt == "" || strings.HasPrefix(bt, "*") || strings.HasPrefix(bt, ".") {
			continue
		}
		bf := splitFieldsKeepParens(bt)
		if len(bf) < 3 {
			return nil, fmt.Errorf("instance %s: malformed body line %q", inst, bl)
		}
		switch strings.ToUpper(bf[0][:1]) {
		case "R", "C", "L", "V", "I":
			bf[0] = bf[0] + "." + inst // unique element name
			bf[1] = rename(bf[1])
			bf[2] = rename(bf[2])
		case "K":
			bf[0] = bf[0] + "." + inst
			bf[1] = bf[1] + "." + inst // inductor names are local
			bf[2] = bf[2] + "." + inst
		case "X":
			// Nested instance: rename its connections, keep the def name,
			// and prefix the instance path.
			bf[0] = inst + "." + bf[0]
			for i := 1; i < len(bf)-1; i++ {
				bf[i] = rename(bf[i])
			}
			sub, err := expandLine(strings.Join(bf, " "), defs, depth+1)
			if err != nil {
				return nil, err
			}
			out = append(out, sub...)
			continue
		default:
			return nil, fmt.Errorf("instance %s: unsupported element %q in subcircuit", inst, bf[0])
		}
		out = append(out, strings.Join(bf, " "))
	}
	return out, nil
}
