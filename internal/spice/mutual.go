package spice

import (
	"fmt"
	"math"
)

// mutual couples two inductor branches with mutual inductance M (the SPICE
// K element). With the trapezoidal companion the two branch equations
// become
//
//	(v1+v1ᵖ)/2 = L1·Δi1/dt + M·Δi2/dt
//	(v2+v2ᵖ)/2 = L2·Δi2/dt + M·Δi1/dt
//
// so the element adds the cross terms −(2M/dt)·Δi_other to each inductor's
// existing branch residual (−(M/dt) for backward Euler, nothing at DC).
type mutual struct {
	l1, l2 *Inductor
	m      float64
}

// AddMutual couples two previously added inductors with coupling
// coefficient k ∈ (−1, 1): M = k·√(L1·L2). It returns the mutual
// inductance used.
func (c *Circuit) AddMutual(l1, l2 *Inductor, k float64) (float64, error) {
	if l1 == nil || l2 == nil || l1 == l2 {
		return 0, fmt.Errorf("spice: AddMutual needs two distinct inductors")
	}
	if math.Abs(k) >= 1 || math.IsNaN(k) {
		return 0, fmt.Errorf("spice: coupling coefficient %g outside (-1,1)", k)
	}
	m := k * math.Sqrt(l1.l*l2.l)
	c.addElem(&mutual{l1: l1, l2: l2, m: m})
	return m, nil
}

func (e *mutual) load(ld *loader) {
	if ld.dc {
		// Inductors are shorts at DC; the coupling carries no information.
		return
	}
	r := e.m / ld.dt
	if ld.trap {
		r *= 2
	}
	d1 := ld.branch(e.l1.bidx) - ld.branchPrev(e.l1.bidx)
	d2 := ld.branch(e.l2.bidx) - ld.branchPrev(e.l2.bidx)
	// Row of branch 1 gets −r·Δi2; row of branch 2 gets −r·Δi1.
	ld.addResRow(ld.branchRow(e.l1.bidx), -r*d2)
	ld.addJBranchBranch(e.l1.bidx, e.l2.bidx, -r)
	ld.addResRow(ld.branchRow(e.l2.bidx), -r*d1)
	ld.addJBranchBranch(e.l2.bidx, e.l1.bidx, -r)
}

func (e *mutual) accept(ld *loader) {}

func (e *mutual) acLoad(ld *acLoader, s complex128) {
	sm := s * complex(e.m, 0)
	ld.addARC(ld.branchRow(e.l1.bidx), ld.branchRow(e.l2.bidx), -sm)
	ld.addARC(ld.branchRow(e.l2.bidx), ld.branchRow(e.l1.bidx), -sm)
}
