package spice

import (
	"math"
	"math/cmplx"
	"testing"
)

func TestACAtOPInverterGainAtThreshold(t *testing.T) {
	// An inverter biased exactly at its switching threshold has small-signal
	// gain Gain/2 (the slope of VDD·σ(2·Gain·(VM−v)/VDD) at v=VM).
	vdd := 1.2
	c := New()
	in, out := c.Node("in"), c.Node("out")
	src, _ := c.AddV(in, Ground, DC(vdd/2))
	if _, err := c.AddInverter(in, out, InverterParams{
		VDD: vdd, ROut: 14.3, CIn: 4e-13, COut: 1.9e-12, Gain: 20,
	}); err != nil {
		t.Fatal(err)
	}
	g, err := c.LowFrequencyGain(src, out)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(g-10) > 0.01 {
		t.Errorf("threshold gain %v, want Gain/2 = 10", g)
	}
	// Biased at the rail, the gain collapses.
	c2 := New()
	in2, out2 := c2.Node("in"), c2.Node("out")
	src2, _ := c2.AddV(in2, Ground, DC(0))
	if _, err := c2.AddInverter(in2, out2, InverterParams{
		VDD: vdd, ROut: 14.3, CIn: 4e-13, COut: 1.9e-12, Gain: 20,
	}); err != nil {
		t.Fatal(err)
	}
	g2, err := c2.LowFrequencyGain(src2, out2)
	if err != nil {
		t.Fatal(err)
	}
	if g2 > 0.01 {
		t.Errorf("rail-biased gain %v, want ≈0", g2)
	}
}

func TestACAtOPInverterBandwidth(t *testing.T) {
	// The threshold-biased inverter with its output capacitance is a
	// single-pole amplifier: f3dB = 1/(2π·ROut·COut) (CIn loads the ideal
	// source, not the output).
	vdd := 1.2
	c := New()
	in, out := c.Node("in"), c.Node("out")
	src, _ := c.AddV(in, Ground, DC(vdd/2))
	p := InverterParams{VDD: vdd, ROut: 100, CIn: 1e-13, COut: 1e-12, Gain: 20}
	if _, err := c.AddInverter(in, out, p); err != nil {
		t.Fatal(err)
	}
	f3 := 1 / (2 * math.Pi * p.ROut * p.COut)
	res, _, err := c.ACAnalysisAtOP(src, out, []complex128{complex(0, 2*math.Pi*f3)})
	if err != nil {
		t.Fatal(err)
	}
	want := 10 / math.Sqrt2 // |H| at the pole = DC gain/√2
	if got := cmplx.Abs(res.H[0]); math.Abs(got-want) > 0.02*want {
		t.Errorf("|H(f3dB)| = %v, want %v", got, want)
	}
}

func TestACAtOPCMOSInverterGainNegativeSlopeRegion(t *testing.T) {
	// Alpha-power CMOS inverter biased mid-transfer: small-signal gain
	// well above 1 (it is an amplifier there).
	vdd := 1.2
	c := New()
	in, out, vddN := c.Node("in"), c.Node("out"), c.Node("vdd")
	c.AddV(vddN, Ground, DC(vdd))
	src, _ := c.AddV(in, Ground, DC(0.6))
	par := MOSFETParams{VT: 0.3, Alpha: 1.3, KSat: 5e-4, KV: 0.8}
	if err := c.AddMOSFET(out, in, Ground, par); err != nil {
		t.Fatal(err)
	}
	pp := par
	pp.PMOS = true
	if err := c.AddMOSFET(out, in, vddN, pp); err != nil {
		t.Fatal(err)
	}
	c.AddR(out, Ground, 1e6) // output load defining the gain
	g, err := c.LowFrequencyGain(src, out)
	if err != nil {
		t.Fatal(err)
	}
	if g < 2 {
		t.Errorf("mid-transfer CMOS gain %v, want amplifier-like (>2)", g)
	}
}

func TestACAtOPMatchesLinearACForLinearCircuit(t *testing.T) {
	// On a purely linear circuit the two AC paths must agree exactly.
	build := func() (*Circuit, *VSource, NodeID) {
		c := New()
		in, out := c.Node("in"), c.Node("out")
		src, _ := c.AddV(in, Ground, DC(0))
		c.AddR(in, out, 1000)
		c.AddC(out, Ground, 1e-9)
		return c, src, out
	}
	s := complex(0, 2*math.Pi*1e5)
	c1, src1, out1 := build()
	a, err := c1.ACAnalysis(src1, out1, []complex128{s})
	if err != nil {
		t.Fatal(err)
	}
	c2, src2, out2 := build()
	b, _, err := c2.ACAnalysisAtOP(src2, out2, []complex128{s})
	if err != nil {
		t.Fatal(err)
	}
	if cmplx.Abs(a.H[0]-b.H[0]) > 1e-12 {
		t.Errorf("linear AC mismatch: %v vs %v", a.H[0], b.H[0])
	}
}

func TestACAtOPValidation(t *testing.T) {
	c := New()
	in := c.Node("in")
	src, _ := c.AddV(in, Ground, DC(1))
	c.AddR(in, Ground, 1)
	if _, _, err := c.ACAnalysisAtOP(nil, in, []complex128{1i}); err == nil {
		t.Error("nil source must fail")
	}
	if _, _, err := c.ACAnalysisAtOP(src, Ground, []complex128{1i}); err == nil {
		t.Error("ground output must fail")
	}
}
