package spice

import (
	"context"
	"fmt"
	"math/cmplx"

	"rlcint/internal/diag"
	"rlcint/internal/lina"
	"rlcint/internal/runctl"
)

// acStamper is implemented by elements that participate in small-signal AC
// analysis. Elements without an AC stamp cause ACAnalysis to fail loudly
// (the nonlinear macro-models here have no meaningful small-signal form
// without an operating point, and the AC path is used to validate the
// passive ladder against the exact transfer function).
type acStamper interface {
	acLoad(ld *acLoader, s complex128)
}

// acLoader assembles the complex MNA system A(s)·x = b.
type acLoader struct {
	nNodes int
	a      *lina.ZDense
	b      []complex128
	// acSource designates which voltage source drives with unit amplitude;
	// all other independent sources are zeroed (standard AC analysis).
	acSource *VSource
}

func (ld *acLoader) addA(row, col NodeID, v complex128) {
	if row != Ground && col != Ground {
		ld.a.Add(int(row), int(col), v)
	}
}

func (ld *acLoader) addARC(row, col int, v complex128) { ld.a.Add(row, col, v) }

func (ld *acLoader) branchRow(b int) int { return ld.nNodes + b }

func (e *resistor) acLoad(ld *acLoader, s complex128) {
	g := complex(e.g, 0)
	ld.addA(e.a, e.a, g)
	ld.addA(e.a, e.b, -g)
	ld.addA(e.b, e.a, -g)
	ld.addA(e.b, e.b, g)
}

func (e *capacitor) acLoad(ld *acLoader, s complex128) {
	y := s * complex(e.c, 0)
	ld.addA(e.a, e.a, y)
	ld.addA(e.a, e.b, -y)
	ld.addA(e.b, e.a, -y)
	ld.addA(e.b, e.b, y)
}

func (e *Inductor) acLoad(ld *acLoader, s complex128) {
	br := ld.branchRow(e.bidx)
	if e.a != Ground {
		ld.addARC(int(e.a), br, 1)
		ld.addARC(br, int(e.a), 1)
	}
	if e.b != Ground {
		ld.addARC(int(e.b), br, -1)
		ld.addARC(br, int(e.b), -1)
	}
	ld.addARC(br, br, -s*complex(e.l, 0))
}

func (e *VSource) acLoad(ld *acLoader, s complex128) {
	br := ld.branchRow(e.bidx)
	if e.a != Ground {
		ld.addARC(int(e.a), br, 1)
		ld.addARC(br, int(e.a), 1)
	}
	if e.b != Ground {
		ld.addARC(int(e.b), br, -1)
		ld.addARC(br, int(e.b), -1)
	}
	if e == ld.acSource {
		ld.b[br] = 1
	}
}

func (e *isource) acLoad(ld *acLoader, s complex128) {
	// Independent current sources are open (zeroed) in AC analysis.
}

// ACResult holds a frequency sweep of one node's transfer from the AC
// source.
type ACResult struct {
	S []complex128 // evaluation points (usually jω)
	H []complex128 // V(node)/V(source)
}

// ACAnalysis computes the small-signal transfer function from src (driven at
// unit amplitude, all other sources zeroed) to the voltage of node out, at
// each complex frequency in ss. The circuit must be linear (R, C, L,
// sources); nonlinear elements cause an error.
func (c *Circuit) ACAnalysis(src *VSource, out NodeID, ss []complex128) (*ACResult, error) {
	return c.ACAnalysisCtx(context.Background(), runctl.Limits{}, src, out, ss)
}

// ACAnalysisCtx is ACAnalysis under run control: cancellation and limits are
// checked before each frequency point (MaxIters counts points). On a stop
// the result computed so far is returned alongside the typed error, with H
// truncated to the completed prefix.
func (c *Circuit) ACAnalysisCtx(ctx context.Context, lim runctl.Limits, src *VSource, out NodeID, ss []complex128) (res *ACResult, err error) {
	defer diag.RecoverTo(&err, "spice.ACAnalysis")
	if err := c.Validate(); err != nil {
		return nil, err
	}
	if src == nil {
		return nil, fmt.Errorf("spice: ACAnalysis requires a source")
	}
	if out == Ground {
		return nil, fmt.Errorf("spice: ACAnalysis output is ground")
	}
	stampers := make([]acStamper, len(c.elems))
	for i, e := range c.elems {
		st, ok := e.(acStamper)
		if !ok {
			return nil, fmt.Errorf("spice: ACAnalysis: element %T has no small-signal model", e)
		}
		stampers[i] = st
	}
	n := c.NumUnknowns()
	ctl := runctl.New(ctx, lim)
	res = &ACResult{S: append([]complex128(nil), ss...), H: make([]complex128, len(ss))}
	for i, s := range ss {
		if err := ctl.Tick("spice.ACAnalysis"); err != nil {
			res.S = res.S[:i]
			res.H = res.H[:i]
			return res, err
		}
		ld := &acLoader{
			nNodes:   c.NumNodes(),
			a:        lina.NewZDense(n, n),
			b:        make([]complex128, n),
			acSource: src,
		}
		for _, st := range stampers {
			st.acLoad(ld, s)
		}
		x, err := lina.ZSolve(ld.a, ld.b)
		if err != nil {
			return nil, fmt.Errorf("spice: ACAnalysis singular at s=%v: %w", s, err)
		}
		res.H[i] = x[out]
	}
	return res, nil
}

// Magnitude returns |H| at sweep index i.
func (r *ACResult) Magnitude(i int) float64 { return cmplx.Abs(r.H[i]) }
