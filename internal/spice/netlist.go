package spice

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// NetlistOpts configures WriteNetlist.
type NetlistOpts struct {
	Title string
	// Strict makes export fail on elements with no standard SPICE
	// representation (the behavioral inverter macro-model and the
	// alpha-power MOSFET); otherwise those are emitted as comments.
	Strict bool
}

// WriteNetlist exports the circuit as a SPICE-compatible deck. Linear
// elements and independent sources map one-to-one; behavioral devices are
// emitted as comment blocks (or rejected under Strict). The export enables
// cross-checking this library's transient results against an external SPICE.
func (c *Circuit) WriteNetlist(w io.Writer, opts NetlistOpts) error {
	if err := c.Validate(); err != nil {
		return err
	}
	title := opts.Title
	if title == "" {
		title = "rlcint export"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "* %s\n", title)
	counts := map[string]int{}
	name := func(prefix string) string {
		counts[prefix]++
		return fmt.Sprintf("%s%d", prefix, counts[prefix])
	}
	lNames := map[*Inductor]string{}
	node := func(n NodeID) string {
		if n == Ground {
			return "0"
		}
		return sanitize(c.nodeNames[n])
	}
	for _, e := range c.elems {
		switch el := e.(type) {
		case *resistor:
			fmt.Fprintf(&b, "%s %s %s %.9g\n", name("R"), node(el.a), node(el.b), 1/el.g)
		case *capacitor:
			fmt.Fprintf(&b, "%s %s %s %.9g\n", name("C"), node(el.a), node(el.b), el.c)
		case *Inductor:
			ln := name("L")
			lNames[el] = ln
			fmt.Fprintf(&b, "%s %s %s %.9g\n", ln, node(el.a), node(el.b), el.l)
		case *mutual:
			n1, ok1 := lNames[el.l1]
			n2, ok2 := lNames[el.l2]
			if !ok1 || !ok2 {
				return fmt.Errorf("spice: WriteNetlist: mutual references an inductor added after it")
			}
			k := el.m / math.Sqrt(el.l1.l*el.l2.l)
			fmt.Fprintf(&b, "%s %s %s %.9g\n", name("K"), n1, n2, k)
		case *VSource:
			fmt.Fprintf(&b, "%s %s %s %s\n", name("V"), node(el.a), node(el.b), sourceSpec(el.w))
		case *isource:
			fmt.Fprintf(&b, "%s %s %s %s\n", name("I"), node(el.a), node(el.b), sourceSpec(el.w))
		case *inverterCore:
			if opts.Strict {
				return fmt.Errorf("spice: WriteNetlist: inverter macro-model has no standard SPICE form (in=%s out=%s)", node(el.in), node(el.out))
			}
			fmt.Fprintf(&b, "* inverter macro-model: in=%s out=%s VDD=%g ROut=%g gain=%g VM=%g\n",
				node(el.in), node(el.out), el.p.VDD, el.p.ROut, el.p.Gain, el.p.VM)
		case *mosfet:
			if opts.Strict {
				return fmt.Errorf("spice: WriteNetlist: alpha-power MOSFET has no standard SPICE form (d=%s g=%s s=%s)", node(el.d), node(el.g), node(el.s))
			}
			kind := "nmos"
			if el.p.PMOS {
				kind = "pmos"
			}
			fmt.Fprintf(&b, "* alpha-power %s: d=%s g=%s s=%s VT=%g alpha=%g Ksat=%g Kv=%g\n",
				kind, node(el.d), node(el.g), node(el.s), el.p.VT, el.p.Alpha, el.p.KSat, el.p.KV)
		default:
			return fmt.Errorf("spice: WriteNetlist: unknown element %T", e)
		}
	}
	b.WriteString(".end\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// sanitize maps internal node names to SPICE-safe identifiers.
func sanitize(s string) string {
	var b strings.Builder
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	if b.Len() == 0 {
		return "_"
	}
	return b.String()
}

// sourceSpec renders a Waveform as a SPICE source specification.
func sourceSpec(w Waveform) string {
	switch s := w.(type) {
	case DC:
		return fmt.Sprintf("DC %.9g", float64(s))
	case Pulse:
		return fmt.Sprintf("PULSE(%.9g %.9g %.9g %.9g %.9g %.9g %.9g)",
			s.V0, s.V1, s.Delay, s.Rise, s.Fall, s.Width, s.Period)
	case PWL:
		var b strings.Builder
		b.WriteString("PWL(")
		for i := range s.T {
			if i > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "%.9g %.9g", s.T[i], s.V[i])
		}
		b.WriteByte(')')
		return b.String()
	case Sine:
		return fmt.Sprintf("SIN(%.9g %.9g %.9g %.9g)", s.Offset, s.Amp, s.Freq, s.Delay)
	default:
		return fmt.Sprintf("* unsupported waveform %T", w)
	}
}
