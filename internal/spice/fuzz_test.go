package spice

import (
	"strings"
	"testing"
)

// fuzzSeeds are netlists drawn from the parser and subckt test decks plus a
// few shapes known to stress the tokenizer (continuations, comments, bad
// suffixes, nested subcircuits).
var fuzzSeeds = []string{
	"title\nR1 a GND 1k\nV1 a gnd DC 1\n.end\n",
	`simple RLC deck
* a comment
V1 in 0 PULSE(0 1.2 0 10p 10p 1n 2n)
R1 in mid 50
L1 mid out 2n
C1 out 0 1p
I1 0 out DC 1m
.end
`,
	`divider test
.subckt div in out
R1 in out 1k
R2 out 0 1k
.ends
V1 a 0 DC 4
Xu a m div
Xd m 0 div
.end
`,
	`nested
.subckt inner a b
R1 a b 1k
.ends
.subckt outer in out
X1 in mid inner
X2 mid out inner
.ends
X0 p 0 outer
V1 p 0 DC 1
.end
`,
	"continuation\nR1 a b\n+ 1k\nV1 a 0 DC 1\n.end\n",
	"bad\nR1 a b notanumber\n.end\n",
	"V1 only\nV1 a 0 SIN(0 1 1k)\n.end\n",
	".subckt loop a b\nXo a b loop\n.ends\nXtop n1 n2 loop\n.end\n",
	"",
	".end",
	"* nothing but a comment",
}

// FuzzParseNetlist asserts the parser never panics and upholds its
// error-or-valid-circuit contract on arbitrary input.
func FuzzParseNetlist(f *testing.F) {
	for _, s := range fuzzSeeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, deck string) {
		if len(deck) > 1<<14 {
			t.Skip("oversized input")
		}
		res, err := ParseNetlist(strings.NewReader(deck))
		if err != nil {
			return
		}
		if res == nil || res.Circuit == nil {
			t.Fatal("nil result without error")
		}
		// A parse that succeeds must hand back a circuit the solver would
		// accept structurally (Validate is what every analysis calls first).
		if verr := res.Circuit.Validate(); verr != nil {
			t.Fatalf("parsed circuit fails validation: %v", verr)
		}
	})
}

// FuzzFlattenNetlist targets subcircuit expansion directly: definition
// parsing, instantiation, recursion detection, and node renaming must never
// panic or loop forever.
func FuzzFlattenNetlist(f *testing.F) {
	for _, s := range fuzzSeeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, deck string) {
		if len(deck) > 1<<14 {
			t.Skip("oversized input")
		}
		lines := strings.Split(deck, "\n")
		flat, err := flattenNetlist(lines)
		if err != nil {
			return
		}
		// Expansion must eliminate every subckt construct it accepted.
		for _, ln := range flat {
			fs := strings.Fields(ln)
			if len(fs) == 0 {
				continue
			}
			if card := strings.ToLower(fs[0]); card == ".subckt" || card == ".ends" {
				t.Fatalf("unexpanded subckt line survived: %q", ln)
			}
		}
	})
}

// FuzzParseValue exercises the SPICE number/suffix scanner.
func FuzzParseValue(f *testing.F) {
	for _, s := range []string{"1", "4.7k", "2meg", "1.5f", "1e-9", "-3.3", "100nH", "k10", "", "1e", "1e999", "0x10"} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		_, _ = ParseValue(s)
	})
}
