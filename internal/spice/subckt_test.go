package spice

import (
	"math"
	"strings"
	"testing"
)

func TestSubcktBasicInstantiation(t *testing.T) {
	// A voltage divider subcircuit instantiated twice with different loads.
	deck := `divider test
.subckt div in out
R1 in out 1k
R2 out 0 1k
.ends
V1 a 0 DC 4
Xu a m div
Xd m 0 div
.end
`
	res, err := ParseNetlist(strings.NewReader(deck))
	if err != nil {
		t.Fatal(err)
	}
	x, err := res.Circuit.DCOperatingPoint()
	if err != nil {
		t.Fatal(err)
	}
	// Circuit: a -(1k)- m' ... full network: Xu: a-1k-m, m-1k-0; Xd: m-1k-0 (out=0? Xd maps in=m out=0):
	// Xd: R1 m 0 1k, R2 0 0 1k (degenerate, both ends ground — zero current).
	// Node m: from a through 1k, to ground through 1k (Xu.R2) and 1k (Xd.R1):
	// v(m) = 4·(500/1500) = 4/3.
	vm := x[res.Circuit.Node("m")]
	if math.Abs(vm-4.0/3) > 1e-9 {
		t.Errorf("v(m) = %v, want 4/3", vm)
	}
}

func TestSubcktInternalNodesAreIsolated(t *testing.T) {
	// Two instances of a subcircuit with an internal node must not share it.
	deck := `isolation
.subckt rc in out
R1 in mid 1k
R2 mid out 1k
.ends
V1 a 0 DC 2
X1 a b rc
X2 b 0 rc
.end
`
	res, err := ParseNetlist(strings.NewReader(deck))
	if err != nil {
		t.Fatal(err)
	}
	c := res.Circuit
	// Expect distinct nodes X1.mid and X2.mid.
	names := map[string]bool{}
	for i := 0; i < c.NumNodes(); i++ {
		names[c.NodeName(NodeID(i))] = true
	}
	if !names["X1.mid"] || !names["X2.mid"] {
		t.Fatalf("internal nodes not namespaced: %v", names)
	}
	x, err := c.DCOperatingPoint()
	if err != nil {
		t.Fatal(err)
	}
	// Series chain of 4×1k from 2V to ground: v(b) = 1, v(X1.mid) = 1.5.
	if math.Abs(x[c.Node("b")]-1) > 1e-9 {
		t.Errorf("v(b) = %v, want 1", x[c.Node("b")])
	}
	if math.Abs(x[c.Node("X1.mid")]-1.5) > 1e-9 {
		t.Errorf("v(X1.mid) = %v, want 1.5", x[c.Node("X1.mid")])
	}
}

func TestSubcktNestedInstances(t *testing.T) {
	// A subcircuit that instantiates another.
	deck := `nested
.subckt unit in out
R1 in out 2k
.ends
.subckt pair in out
Xa in mid unit
Xb mid out unit
.ends
V1 top 0 DC 1
Xp top 0 pair
.end
`
	res, err := ParseNetlist(strings.NewReader(deck))
	if err != nil {
		t.Fatal(err)
	}
	x, err := res.Circuit.DCOperatingPoint()
	if err != nil {
		t.Fatal(err)
	}
	// 1V across 4k: check the midpoint inside the pair.
	mid := res.Circuit.Node("Xp.mid")
	if math.Abs(x[mid]-0.5) > 1e-9 {
		t.Errorf("v(Xp.mid) = %v, want 0.5", x[mid])
	}
}

func TestSubcktNestedDefinitionHoisted(t *testing.T) {
	// A .subckt defined inside another is hoisted to global scope (SPICE
	// semantics) and usable from the top level.
	deck := `hoist
.subckt outer in out
.subckt inner a b
R1 a b 1k
.ends
Xi in out inner
.ends
V1 t 0 DC 1
X1 t m outer
Xdirect m 0 inner
.end
`
	res, err := ParseNetlist(strings.NewReader(deck))
	if err != nil {
		t.Fatal(err)
	}
	x, err := res.Circuit.DCOperatingPoint()
	if err != nil {
		t.Fatal(err)
	}
	if vm := x[res.Circuit.Node("m")]; math.Abs(vm-0.5) > 1e-9 {
		t.Errorf("v(m) = %v, want 0.5", vm)
	}
}

func TestSubcktWithMutualInductors(t *testing.T) {
	deck := `coupled subckt
.subckt xfmr p s
L1 p 0 1u
L2 s 0 1u
K1 L1 L2 0.5
.ends
V1 in 0 DC 0
X1 in sec xfmr
R1 sec 0 50
.end
`
	res, err := ParseNetlist(strings.NewReader(deck))
	if err != nil {
		t.Fatal(err)
	}
	// Both inductors present under namespaced names.
	if res.Inductors["L1.X1"] == nil || res.Inductors["L2.X1"] == nil {
		t.Fatalf("namespaced inductors missing: %v", res.Inductors)
	}
}

func TestSubcktErrors(t *testing.T) {
	bad := []struct {
		name, deck string
	}{
		{"unknown def", "t\nV1 a 0 DC 1\nX1 a 0 nosuch\nR1 a 0 1\n.end\n"},
		{"port mismatch", "t\n.subckt d in out\nR1 in out 1\n.ends\nV1 a 0 DC 1\nX1 a d\n.end\n"},
		{"unterminated", "t\n.subckt d in out\nR1 in out 1\nV1 a 0 DC 1\n.end\n"},
		{"duplicate", "t\n.subckt d a b\nR1 a b 1\n.ends\n.subckt d a b\nR1 a b 1\n.ends\nV1 x 0 DC 1\nR9 x 0 1\n.end\n"},
		{"recursive", "t\n.subckt d a b\nXq a b d\n.ends\nV1 x 0 DC 1\nX1 x 0 d\n.end\n"},
	}
	for _, tc := range bad {
		if _, err := ParseNetlist(strings.NewReader(tc.deck)); err == nil {
			t.Errorf("%s: expected error", tc.name)
		}
	}
}
