package spice

import (
	"math"
	"math/cmplx"
	"testing"

	"rlcint/internal/tech"
	"rlcint/internal/tline"
)

func TestACRCLowpass(t *testing.T) {
	// Single-pole RC: H = 1/(1+sRC).
	c := New()
	in, out := c.Node("in"), c.Node("out")
	src, err := c.AddV(in, Ground, DC(0))
	if err != nil {
		t.Fatal(err)
	}
	c.AddR(in, out, 1000)
	c.AddC(out, Ground, 1e-9) // RC = 1µs
	for _, f := range []float64{1e3, 159.155e3, 1e6} {
		s := complex(0, 2*math.Pi*f)
		res, err := c.ACAnalysis(src, out, []complex128{s})
		if err != nil {
			t.Fatal(err)
		}
		want := 1 / (1 + s*complex(1e-6, 0))
		if cmplx.Abs(res.H[0]-want) > 1e-9 {
			t.Errorf("f=%v: H=%v, want %v", f, res.H[0], want)
		}
	}
}

func TestACSeriesRLCResonance(t *testing.T) {
	// Series RLC to ground measured at the capacitor: |H| peaks near the
	// resonant frequency for low damping.
	c := New()
	in, mid, out := c.Node("in"), c.Node("mid"), c.Node("out")
	src, _ := c.AddV(in, Ground, DC(0))
	c.AddR(in, mid, 0.2) // ζ = 0.1: resonant peak |H(jω0)| = 1/(2ζ) = 5
	if _, err := c.AddL(mid, out, 100e-9); err != nil {
		t.Fatal(err)
	}
	c.AddC(out, Ground, 100e-9)
	f0 := 1 / (2 * math.Pi * math.Sqrt(100e-9*100e-9))
	var ss []complex128
	for _, f := range []float64{f0 / 10, f0, f0 * 10} {
		ss = append(ss, complex(0, 2*math.Pi*f))
	}
	res, err := c.ACAnalysis(src, out, ss)
	if err != nil {
		t.Fatal(err)
	}
	if !(res.Magnitude(1) > res.Magnitude(0) && res.Magnitude(1) > res.Magnitude(2)) {
		t.Errorf("no resonance peak: %v %v %v", res.Magnitude(0), res.Magnitude(1), res.Magnitude(2))
	}
	// Exact: H = 1/(1 + sRC + s²LC).
	s := ss[1]
	want := 1 / (1 + s*complex(0.2*100e-9, 0) + s*s*complex(100e-9*100e-9, 0))
	if cmplx.Abs(res.H[1]-want)/cmplx.Abs(want) > 1e-9 {
		t.Errorf("at f0: H=%v, want %v", res.H[1], want)
	}
}

func TestACLadderMatchesExactTransferFunction(t *testing.T) {
	// The strongest cross-validation in the package: a 60-section ladder of
	// the paper's driver-line-load stage must match the exact Eq. (1)
	// transfer function over the frequencies that matter for delay.
	node := tech.Node100()
	k := 528.0
	st := tline.Stage{
		Line: tline.Line{R: node.R, L: 2e-6, C: node.C},
		H:    11.1e-3,
		RS:   node.Rs / k,
		CP:   node.Cp * k,
		CL:   node.C0 * k,
	}
	ckt := New()
	in, drv := ckt.Node("in"), ckt.Node("drv")
	src, _ := ckt.AddV(in, Ground, DC(0))
	ckt.AddR(in, drv, st.RS)
	ckt.AddC(drv, Ground, st.CP)
	nSec := 60
	segs := st.Line.Ladder(st.H, nSec)
	prev := drv
	var outN NodeID
	for i, sg := range segs {
		mid := ckt.Node(nodeName("m", i))
		next := ckt.Node(nodeName("n", i))
		ckt.AddR(prev, mid, sg.R)
		if _, err := ckt.AddL(mid, next, sg.L); err != nil {
			t.Fatal(err)
		}
		ckt.AddC(next, Ground, sg.C)
		prev = next
		outN = next
	}
	ckt.AddC(outN, Ground, st.CL)

	// Sample up to ~2× the stage's natural frequency.
	for _, f := range []float64{1e8, 5e8, 1e9, 2e9, 4e9} {
		s := complex(0, 2*math.Pi*f)
		res, err := ckt.ACAnalysis(src, outN, []complex128{s})
		if err != nil {
			t.Fatal(err)
		}
		want := st.TransferExact(s)
		rel := cmplx.Abs(res.H[0]-want) / cmplx.Abs(want)
		// Discretization error grows with frequency; 60 sections hold a few
		// percent through 2 GHz.
		tol := 0.03
		if f >= 4e9 {
			tol = 0.10
		}
		if rel > tol {
			t.Errorf("f=%g: ladder H=%v exact %v (rel %v)", f, res.H[0], want, rel)
		}
	}
}

func nodeName(p string, i int) string {
	return p + string(rune('a'+i%26)) + string(rune('a'+(i/26)%26))
}

func TestACErrorsOnNonlinear(t *testing.T) {
	c := New()
	in, out := c.Node("in"), c.Node("out")
	src, _ := c.AddV(in, Ground, DC(0))
	if _, err := c.AddInverter(in, out, InverterParams{VDD: 1, ROut: 10}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.ACAnalysis(src, out, []complex128{complex(0, 1e9)}); err == nil {
		t.Error("nonlinear element must be rejected in AC analysis")
	}
}

func TestACValidation(t *testing.T) {
	c := New()
	in := c.Node("in")
	src, _ := c.AddV(in, Ground, DC(0))
	c.AddR(in, Ground, 1)
	if _, err := c.ACAnalysis(nil, in, []complex128{1i}); err == nil {
		t.Error("nil source must fail")
	}
	if _, err := c.ACAnalysis(src, Ground, []complex128{1i}); err == nil {
		t.Error("ground output must fail")
	}
}
