package spice

import (
	"math"
	"strings"
	"testing"
)

func TestParseValueSuffixes(t *testing.T) {
	cases := []struct {
		in   string
		want float64
	}{
		{"1", 1}, {"4.7k", 4700}, {"2meg", 2e6}, {"3g", 3e9},
		{"1m", 1e-3}, {"10u", 1e-5}, {"2n", 2e-9}, {"10pF", 1e-11},
		{"1.5f", 1.5e-15}, {"1e-9", 1e-9}, {"2.5e3", 2500},
		{"-3.3", -3.3}, {"100nH", 1e-7}, {"1T", 1e12},
	}
	for _, c := range cases {
		got, err := ParseValue(c.in)
		if err != nil {
			t.Errorf("ParseValue(%q): %v", c.in, err)
			continue
		}
		if math.Abs(got-c.want) > 1e-12*math.Abs(c.want) {
			t.Errorf("ParseValue(%q) = %v, want %v", c.in, got, c.want)
		}
	}
	for _, bad := range []string{"", "abc", "k10"} {
		if _, err := ParseValue(bad); err == nil {
			t.Errorf("ParseValue(%q) should fail", bad)
		}
	}
}

func TestParseNetlistBasic(t *testing.T) {
	deck := `simple RLC deck
* a comment
V1 in 0 PULSE(0 1.2 0 10p 10p 1n 2n)
R1 in mid 50
L1 mid out 2n
C1 out 0 1p
I1 0 out DC 1m
.end
this line is after .end and ignored
`
	res, err := ParseNetlist(strings.NewReader(deck))
	if err != nil {
		t.Fatal(err)
	}
	c := res.Circuit
	if c.NumNodes() != 3 {
		t.Errorf("nodes = %d, want 3 (in, mid, out)", c.NumNodes())
	}
	if len(res.VSources) != 1 || res.VSources["V1"] == nil {
		t.Error("V1 not captured")
	}
	if len(res.Inductors) != 1 || res.Inductors["L1"] == nil {
		t.Error("L1 not captured")
	}
	// Pulse decoded correctly.
	w := res.VSources["V1"].w.(Pulse)
	if w.V1 != 1.2 || w.Rise != 1e-11 || w.Width != 1e-9 || w.Period != 2e-9 {
		t.Errorf("pulse decoded wrong: %+v", w)
	}
}

func TestParseNetlistRoundTrip(t *testing.T) {
	// Build, export, re-parse, and check both circuits produce the same
	// transient response.
	build := func() (*Circuit, *VSource, NodeID) {
		c := New()
		in, mid, out := c.Node("in"), c.Node("mid"), c.Node("out")
		src, _ := c.AddV(in, Ground, Pulse{V0: 0, V1: 1, Rise: 1e-11, Fall: 1e-11, Width: 1e-9, Period: 2e-9})
		c.AddR(in, mid, 25)
		c.AddL(mid, out, 3e-9)
		c.AddC(out, Ground, 2e-12)
		return c, src, out
	}
	orig, _, _ := build()
	var sb strings.Builder
	if err := orig.WriteNetlist(&sb, NetlistOpts{Title: "roundtrip", Strict: true}); err != nil {
		t.Fatal(err)
	}
	parsed, err := ParseNetlist(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatalf("parse of own export failed: %v\n%s", err, sb.String())
	}
	opts := TranOpts{TStop: 2e-9, DT: 2e-12, UseICs: true}
	r1, err := orig.Transient(opts, orig.ProbeNode("out"))
	if err != nil {
		t.Fatal(err)
	}
	r2, err := parsed.Circuit.Transient(opts, parsed.Circuit.ProbeNode("out"))
	if err != nil {
		t.Fatal(err)
	}
	v1, _ := r1.Signal("out")
	v2, _ := r2.Signal("out")
	for i := range v1 {
		if math.Abs(v1[i]-v2[i]) > 1e-9 {
			t.Fatalf("round-trip divergence at sample %d: %v vs %v", i, v1[i], v2[i])
		}
	}
}

func TestParseNetlistSinAndBareDC(t *testing.T) {
	deck := `title
V1 a 0 SIN(0.5 1 1e9 2n)
V2 b 0 3.3
R1 a b 1k
.end
`
	res, err := ParseNetlist(strings.NewReader(deck))
	if err != nil {
		t.Fatal(err)
	}
	s := res.VSources["V1"].w.(Sine)
	if s.Offset != 0.5 || s.Amp != 1 || s.Freq != 1e9 || s.Delay != 2e-9 {
		t.Errorf("sine decoded wrong: %+v", s)
	}
	if dc := res.VSources["V2"].w.(DC); float64(dc) != 3.3 {
		t.Errorf("bare DC decoded wrong: %v", dc)
	}
}

func TestParseNetlistPWL(t *testing.T) {
	deck := `title
V1 a 0 PWL(0 0 1n 1 2n 0.5)
R1 a 0 1
.end
`
	res, err := ParseNetlist(strings.NewReader(deck))
	if err != nil {
		t.Fatal(err)
	}
	w := res.VSources["V1"].w.(PWL)
	if len(w.T) != 3 || w.V[2] != 0.5 {
		t.Errorf("PWL decoded wrong: %+v", w)
	}
}

func TestParseNetlistErrors(t *testing.T) {
	bad := []string{
		"title\nR1 a 0\n.end\n",             // too few fields
		"title\nX1 a 0 model\n.end\n",       // unsupported element (and too few... add field)
		"title\nR1 a 0 -5\n.end\n",          // negative resistance rejected by AddR
		"title\nV1 a 0 PULSE(0 1)\n.end\n",  // short PULSE
		"title\nV1 a 0 PWL(0 0 1n)\n.end\n", // odd PWL
		"title\n.end\n",                     // empty circuit
	}
	for _, deck := range bad {
		if _, err := ParseNetlist(strings.NewReader(deck)); err == nil {
			t.Errorf("deck should fail:\n%s", deck)
		}
	}
}

func TestParseNetlistGndAlias(t *testing.T) {
	deck := "title\nR1 a GND 1k\nV1 a gnd DC 1\n.end\n"
	res, err := ParseNetlist(strings.NewReader(deck))
	if err != nil {
		t.Fatal(err)
	}
	if res.Circuit.NumNodes() != 1 {
		t.Errorf("gnd alias created a node: %d nodes", res.Circuit.NumNodes())
	}
	x, err := res.Circuit.DCOperatingPoint()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[res.Circuit.Node("a")]-1) > 1e-9 {
		t.Errorf("v(a) = %v", x[0])
	}
}

func TestParseNetlistTranDirective(t *testing.T) {
	deck := "title\nV1 a 0 DC 1\nR1 a 0 1k\n.tran 10p 5n\n.end\n"
	res, err := ParseNetlist(strings.NewReader(deck))
	if err != nil {
		t.Fatal(err)
	}
	if res.Tran == nil {
		t.Fatal(".tran not captured")
	}
	if res.Tran.DT != 1e-11 || res.Tran.TStop != 5e-9 {
		t.Errorf(".tran = %+v", res.Tran)
	}
	bad := "title\nR1 a 0 1\n.tran 10p\n.end\n"
	if _, err := ParseNetlist(strings.NewReader(bad)); err == nil {
		t.Error("short .tran must fail")
	}
}

func TestParseNetlistElementFirstLine(t *testing.T) {
	// A deck whose first line is already an element (no title).
	deck := "V1 a 0 DC 2\nR1 a 0 1k\n.end\n"
	res, err := ParseNetlist(strings.NewReader(deck))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.VSources) != 1 {
		t.Error("first-line element lost")
	}
}
