package spice

import (
	"errors"
	"math"
	"strings"
	"testing"

	"rlcint/internal/diag"
)

// dividerCircuit builds a resistive divider with a well-defined DC point:
// v(mid) = 0.5 V.
func dividerCircuit(t *testing.T) *Circuit {
	t.Helper()
	c := New()
	in, mid := c.Node("in"), c.Node("mid")
	if _, err := c.AddV(in, Ground, DC(1)); err != nil {
		t.Fatal(err)
	}
	if err := c.AddR(in, mid, 1e3); err != nil {
		t.Fatal(err)
	}
	if err := c.AddR(mid, Ground, 1e3); err != nil {
		t.Fatal(err)
	}
	if err := c.AddC(mid, Ground, 1e-12); err != nil {
		t.Fatal(err)
	}
	return c
}

// rcCircuit builds the 1 Ω / 1 F step-response circuit whose analytic
// solution is v(t) = 1 − e^{−t}.
func resRCCircuit(t *testing.T) *Circuit {
	t.Helper()
	c := New()
	in, out := c.Node("in"), c.Node("out")
	if _, err := c.AddV(in, Ground, DC(1)); err != nil {
		t.Fatal(err)
	}
	if err := c.AddR(in, out, 1); err != nil {
		t.Fatal(err)
	}
	if err := c.AddC(out, Ground, 1); err != nil {
		t.Fatal(err)
	}
	c.SetIC(out, 0)
	return c
}

func TestDCGminLadderSkipsFaultedRung(t *testing.T) {
	// A singular factorization injected at the gmin=1e-7 rung (after earlier
	// rungs converged) must be skipped — restoring the last converged iterate
	// — rather than aborting the whole ladder.
	c := dividerCircuit(t)
	inj := &diag.Injector{Fault: func(s diag.Site) error {
		if s.Op == "spice.factorize/dc-gmin" && s.Gmin == 1e-7 {
			return errors.New("injected pivot failure")
		}
		return nil
	}}
	rep := &diag.Report{}
	x, err := c.DCOperatingPointWith(DCOpts{Injector: inj, Report: rep})
	if err != nil {
		t.Fatalf("DC with mid-ladder fault: %v", err)
	}
	if vm := x[c.Node("mid")]; math.Abs(vm-0.5) > 1e-9 {
		t.Errorf("v(mid) = %v, want 0.5", vm)
	}
	skipped := false
	for _, a := range rep.Attempts {
		if a.Ladder == "dc-gmin" && a.Rung == "gmin=1e-07" {
			if a.Outcome != diag.OutcomeSkipped {
				t.Errorf("faulted rung outcome = %s, want skipped", a.Outcome)
			}
			if !errors.Is(a.Err, diag.ErrSingularJacobian) {
				t.Errorf("faulted rung error %v does not match ErrSingularJacobian", a.Err)
			}
			skipped = true
		}
	}
	if !skipped {
		t.Errorf("report has no dc-gmin gmin=1e-07 attempt:\n%s", rep)
	}
}

func TestDCSourceRampRescuesGminFailure(t *testing.T) {
	// When every gmin rung faults, the source-ramping rung must still find
	// the operating point, and it must agree with the unfaulted solve.
	c := dividerCircuit(t)
	want, err := c.DCOperatingPoint()
	if err != nil {
		t.Fatal(err)
	}
	inj := &diag.Injector{Fault: func(s diag.Site) error {
		if strings.HasSuffix(s.Op, "/dc-gmin") {
			return errors.New("injected gmin-ladder failure")
		}
		return nil
	}}
	rep := &diag.Report{}
	x, err := c.DCOperatingPointWith(DCOpts{Injector: inj, Report: rep})
	if err != nil {
		t.Fatalf("DC with gmin ladder disabled: %v\n%s", err, rep)
	}
	for i := range want {
		if math.Abs(x[i]-want[i]) > 1e-9 {
			t.Errorf("x[%d] = %v, want %v", i, x[i], want[i])
		}
	}
	if rep.Tried("dc-ramp") == 0 {
		t.Errorf("source ramp left no report trace:\n%s", rep)
	}
	if last, ok := rep.Last("dc-ramp"); !ok || last.Rung != "polish" || last.Outcome != diag.OutcomeOK {
		t.Errorf("last dc-ramp attempt = %+v, want successful polish", last)
	}
}

func TestDCTerminalFailureIsTyped(t *testing.T) {
	// Faulting both ladders must surface a diag.ErrNonConvergence carrying
	// the DC operating point op, with the injected cause still reachable.
	c := dividerCircuit(t)
	inj := &diag.Injector{Fault: func(s diag.Site) error {
		if strings.HasPrefix(s.Op, "spice.newton/dc-") {
			return errors.New("injected DC failure")
		}
		return nil
	}}
	rep := &diag.Report{}
	_, err := c.DCOperatingPointWith(DCOpts{Injector: inj, Report: rep})
	if err == nil {
		t.Fatal("DC solve succeeded despite both ladders faulted")
	}
	if !errors.Is(err, diag.ErrNonConvergence) {
		t.Errorf("error %v does not match diag.ErrNonConvergence", err)
	}
	var de *diag.Error
	if !errors.As(err, &de) {
		t.Fatalf("error %T is not a *diag.Error", err)
	}
	if de.Op != "spice.DCOperatingPoint" {
		t.Errorf("Op = %q, want spice.DCOperatingPoint", de.Op)
	}
	if rep.Tried("dc-gmin") == 0 || rep.Tried("dc-ramp") == 0 {
		t.Errorf("report missing ladder attempts:\n%s", rep)
	}
}

func TestTransientBEFallbackOnTRStall(t *testing.T) {
	// Every trapezoidal Newton solve is faulted; the TR→BE rung must carry
	// the whole run to completion without halving the grid away.
	c := resRCCircuit(t)
	inj := diag.FaultAt("spice.newton/tran-tr", 0, errors.New("injected TR stall"))
	rep := &diag.Report{}
	res, err := c.Transient(TranOpts{
		TStop: 3, DT: 0.05, UseICs: true, Method: Trapezoidal,
		Injector: inj, Report: rep,
	}, c.ProbeNode("out"))
	if err != nil {
		t.Fatalf("transient with TR faulted: %v\n%s", err, rep)
	}
	if res.Partial {
		t.Error("completed run marked partial")
	}
	v, _ := res.Signal("out")
	for i, tt := range res.T {
		// Backward Euler accuracy only: first-order in dt.
		if want := 1 - math.Exp(-tt); math.Abs(v[i]-want) > 0.05 {
			t.Fatalf("t=%v: v=%v, want %v (BE tolerance)", tt, v[i], want)
		}
	}
	fallbacks := 0
	for _, a := range rep.Attempts {
		if a.Ladder == "tran-step" && a.Rung == "be-fallback" {
			fallbacks++
			if !errors.Is(a.Err, diag.ErrNonConvergence) {
				t.Errorf("fallback cause %v does not match ErrNonConvergence", a.Err)
			}
		}
		if a.Ladder == "tran-step" && a.Rung == "halve" {
			t.Errorf("BE fallback should have absorbed the stall without halving: %+v", a)
		}
	}
	if fallbacks == 0 {
		t.Errorf("no be-fallback attempts recorded:\n%s", rep)
	}
}

func TestTransientTimestepCollapsePartialResult(t *testing.T) {
	// From grid step 5 onward both integration schemes are faulted: the step
	// ladder (BE fallback, then halvings) must exhaust itself and return the
	// partial result alongside a typed collapse error.
	const failFrom = 5
	c := resRCCircuit(t)
	inj := &diag.Injector{Fault: func(s diag.Site) error {
		if strings.HasPrefix(s.Op, "spice.newton/tran-") && s.Step >= failFrom {
			return errors.New("injected persistent stall")
		}
		return nil
	}}
	rep := &diag.Report{}
	const dt = 0.01
	res, err := c.Transient(TranOpts{
		TStop: 1, DT: dt, UseICs: true, Method: Trapezoidal,
		Injector: inj, Report: rep,
	}, c.ProbeNode("out"))
	if err == nil {
		t.Fatal("transient succeeded despite persistent stall")
	}
	if !errors.Is(err, diag.ErrTimestepCollapse) {
		t.Errorf("error %v does not match diag.ErrTimestepCollapse", err)
	}
	var de *diag.Error
	if !errors.As(err, &de) {
		t.Fatalf("error %T is not a *diag.Error", err)
	}
	if de.Step != failFrom {
		t.Errorf("collapse Step = %d, want %d", de.Step, failFrom)
	}
	if want := (failFrom - 1) * dt; math.Abs(de.Time-want) > 1e-12 {
		t.Errorf("collapse Time = %v, want %v", de.Time, want)
	}
	if res == nil {
		t.Fatal("no partial result returned")
	}
	if !res.Partial {
		t.Error("Partial not set on collapsed run")
	}
	if want := (failFrom - 1) * dt; math.Abs(res.PartialT-want) > 1e-12 {
		t.Errorf("PartialT = %v, want %v", res.PartialT, want)
	}
	// Samples for t = 0 .. (failFrom-1)·dt must be preserved.
	if len(res.T) != failFrom {
		t.Fatalf("len(T) = %d, want %d", len(res.T), failFrom)
	}
	v, verr := res.Signal("out")
	if verr != nil {
		t.Fatal(verr)
	}
	if len(v) != len(res.T) {
		t.Fatalf("signal length %d != time length %d", len(v), len(res.T))
	}
	for i, tt := range res.T {
		if want := 1 - math.Exp(-tt); math.Abs(v[i]-want) > 1e-3 {
			t.Errorf("preserved sample t=%v: v=%v, want %v", tt, v[i], want)
		}
	}
	if last, ok := rep.Last("tran-step"); !ok || last.Rung != "collapse" || last.Outcome != diag.OutcomeFailed {
		t.Errorf("last tran-step attempt = %+v, want failed collapse", last)
	}
}

func TestTransientMaxHalvingsBoundary(t *testing.T) {
	// MaxHalvings=1 with backward Euler (no TR rung available) must collapse
	// after exactly one halving attempt and keep only the t=0 sample.
	c := resRCCircuit(t)
	inj := diag.FaultAt("spice.newton/tran-be", 0, errors.New("injected BE stall"))
	rep := &diag.Report{}
	res, err := c.Transient(TranOpts{
		TStop: 1, DT: 0.1, UseICs: true, Method: BackwardEuler,
		MaxHalvings: 1, Injector: inj, Report: rep,
	}, c.ProbeNode("out"))
	if !errors.Is(err, diag.ErrTimestepCollapse) {
		t.Fatalf("error %v does not match diag.ErrTimestepCollapse", err)
	}
	if res == nil || !res.Partial {
		t.Fatal("collapsed run must return a partial result")
	}
	if res.PartialT != 0 {
		t.Errorf("PartialT = %v, want 0 (no step completed)", res.PartialT)
	}
	if len(res.T) != 1 || res.T[0] != 0 {
		t.Errorf("T = %v, want just the initial sample", res.T)
	}
	halves := 0
	for _, a := range rep.Attempts {
		if a.Ladder == "tran-step" && a.Rung == "halve" {
			halves++
		}
	}
	if halves != 1 {
		t.Errorf("halve attempts = %d, want exactly 1 (MaxHalvings boundary)\n%s", halves, rep)
	}
}

func TestTransientNoBEStartFallsBackImmediately(t *testing.T) {
	// With NoBEStart the very first step runs trapezoidal; a fault on that
	// step alone must engage the BE fallback and then complete normally.
	c := resRCCircuit(t)
	inj := &diag.Injector{Fault: func(s diag.Site) error {
		if s.Op == "spice.newton/tran-tr" && s.Step == 1 {
			return errors.New("injected first-step stall")
		}
		return nil
	}}
	rep := &diag.Report{}
	res, err := c.Transient(TranOpts{
		TStop: 1, DT: 0.01, UseICs: true, Method: Trapezoidal, NoBEStart: true,
		Injector: inj, Report: rep,
	}, c.ProbeNode("out"))
	if err != nil {
		t.Fatalf("transient: %v\n%s", err, rep)
	}
	if res.Partial {
		t.Error("completed run marked partial")
	}
	if n := rep.Tried("tran-step"); n == 0 {
		t.Errorf("first-step fault left no tran-step trace:\n%s", rep)
	}
}

func TestTranOptsValidateRejectsBadValues(t *testing.T) {
	nan := math.NaN()
	cases := []struct {
		name string
		opts TranOpts
	}{
		{"negative ITol", TranOpts{TStop: 1, DT: 0.1, ITol: -1e-9}},
		{"NaN RelTol", TranOpts{TStop: 1, DT: 0.1, RelTol: nan}},
		{"Inf TStop", TranOpts{TStop: math.Inf(1), DT: 0.1}},
		{"NaN TStop", TranOpts{TStop: nan, DT: 0.1}},
		{"negative Gmin", TranOpts{TStop: 1, DT: 0.1, Gmin: -1e-12}},
		{"negative MaxStep", TranOpts{TStop: 1, DT: 0.1, MaxStep: -5}},
		{"negative MaxNewton", TranOpts{TStop: 1, DT: 0.1, MaxNewton: -1}},
		{"negative MaxHalvings", TranOpts{TStop: 1, DT: 0.1, MaxHalvings: -1}},
		{"negative VNTol", TranOpts{TStop: 1, DT: 0.1, VNTol: -1}},
	}
	for _, cse := range cases {
		t.Run(cse.name, func(t *testing.T) {
			if err := cse.opts.Validate(); !errors.Is(err, diag.ErrDomain) {
				t.Errorf("Validate() = %v, want ErrDomain match", err)
			}
			c := resRCCircuit(t)
			if _, err := c.Transient(cse.opts, c.ProbeNode("out")); !errors.Is(err, diag.ErrDomain) {
				t.Errorf("Transient() = %v, want ErrDomain match", err)
			}
		})
	}
	// Zero values still mean "use defaults", not a domain violation.
	if err := (TranOpts{TStop: 1, DT: 0.1}).Validate(); err != nil {
		t.Errorf("zero-valued options rejected: %v", err)
	}
	// A bad window is a domain error too.
	c := resRCCircuit(t)
	if _, err := c.Transient(TranOpts{TStop: 1, DT: 2}, c.ProbeNode("out")); !errors.Is(err, diag.ErrDomain) {
		t.Errorf("DT > TStop accepted: %v", err)
	}
}
