package spice

import (
	"math"
	"math/cmplx"
	"strings"
	"testing"
)

// transformer builds two LC loops coupled by k for transfer tests.
func transformer(k float64) (*Circuit, *VSource, NodeID) {
	c := New()
	in, sec := c.Node("in"), c.Node("sec")
	src, _ := c.AddV(in, Ground, DC(0))
	l1, _ := c.AddL(in, Ground, 1e-6)
	l2, _ := c.AddL(sec, Ground, 1e-6)
	c.AddR(sec, Ground, 50)
	if _, err := c.AddMutual(l1, l2, k); err != nil {
		panic(err)
	}
	return c, src, sec
}

func TestMutualACTransformer(t *testing.T) {
	// Loosely coupled transformer: the AC transfer to the secondary grows
	// with k and vanishes at k=0.
	var prev float64 = -1
	for _, k := range []float64{0, 0.3, 0.9} {
		c, src, sec := transformer(k)
		res, err := c.ACAnalysis(src, sec, []complex128{complex(0, 2*math.Pi*1e6)})
		if err != nil {
			t.Fatalf("k=%v: %v", k, err)
		}
		mag := cmplx.Abs(res.H[0])
		if k == 0 && mag > 1e-12 {
			t.Errorf("k=0: secondary sees %v", mag)
		}
		if mag < prev {
			t.Errorf("k=%v: transfer %v did not grow", k, mag)
		}
		prev = mag
	}
}

func TestMutualACExactTwoLoop(t *testing.T) {
	// Closed form for the coupled two-loop circuit:
	// i1 loop: V = sL1 i1 + sM i2;  sec loop: 0 = sM i1 + (sL2 + R) i2;
	// V(sec) = R·(−i2)... with our branch current convention the secondary
	// node voltage is v_sec = −i2·R where i2 flows sec→gnd through L2.
	k := 0.5
	l1v, l2v, rv := 1e-6, 1e-6, 50.0
	m := k * math.Sqrt(l1v*l2v)
	s := complex(0, 2*math.Pi*5e6)
	c, src, sec := transformer(k)
	res, err := c.ACAnalysis(src, sec, []complex128{s})
	if err != nil {
		t.Fatal(err)
	}
	// Solve the 2x2 loop system analytically.
	sl1 := s * complex(l1v, 0)
	sl2 := s * complex(l2v, 0)
	sm := s * complex(m, 0)
	// [sl1 sm; sm sl2+R][i1;i2] = [1;0]  (i2 defined flowing INTO sec node
	// through L2, so v_sec = -R·i2... careful: our L2 is from sec to gnd,
	// current positive sec->gnd; KCL at sec: i_L2 = i_R(gnd->sec)=−v/R →
	// v_sec = −R·i_L2 only if no other current: actually the resistor
	// carries v/R out of sec and the inductor carries i_L2 out of sec:
	// i_L2 + v/R = 0 → v = −R·i_L2.)
	det := sl1*(sl2+complex(rv, 0)) - sm*sm
	i2 := -sm / det // from Cramer on [1;0]
	want := -complex(rv, 0) * i2
	if cmplx.Abs(res.H[0]-want)/cmplx.Abs(want) > 1e-9 {
		t.Errorf("H = %v, want %v", res.H[0], want)
	}
}

func TestMutualTransientFluxTransfer(t *testing.T) {
	// Step-driven primary induces a secondary voltage pulse whose polarity
	// follows the coupling sign, and the response must match AC-derived
	// intuition: larger k → larger induced peak.
	peak := func(k float64) float64 {
		c := New()
		in, drv, sec := c.Node("in"), c.Node("drv"), c.Node("sec")
		c.AddV(in, Ground, Pulse{V0: 0, V1: 1, Rise: 1e-8, Width: 1e-5, Fall: 1e-8})
		c.AddR(in, drv, 10)
		l1, _ := c.AddL(drv, Ground, 1e-6)
		l2, _ := c.AddL(sec, Ground, 1e-6)
		c.AddR(sec, Ground, 50)
		if _, err := c.AddMutual(l1, l2, k); err != nil {
			t.Fatal(err)
		}
		res, err := c.Transient(TranOpts{TStop: 1e-6, DT: 1e-9, UseICs: true}, c.ProbeNode("sec"))
		if err != nil {
			t.Fatal(err)
		}
		v, _ := res.Signal("sec")
		m := 0.0
		for _, x := range v {
			if math.Abs(x) > m {
				m = math.Abs(x)
			}
		}
		return m
	}
	p3, p8 := peak(0.3), peak(0.8)
	if p3 <= 1e-6 {
		t.Fatalf("no induced voltage at k=0.3 (peak %v)", p3)
	}
	if p8 <= p3 {
		t.Errorf("induced peak did not grow with k: %v vs %v", p8, p3)
	}
}

func TestMutualValidation(t *testing.T) {
	c := New()
	l1, _ := c.AddL(c.Node("a"), Ground, 1e-6)
	l2, _ := c.AddL(c.Node("b"), Ground, 1e-6)
	if _, err := c.AddMutual(l1, l1, 0.5); err == nil {
		t.Error("self-coupling must fail")
	}
	if _, err := c.AddMutual(l1, l2, 1.0); err == nil {
		t.Error("|k| >= 1 must fail")
	}
	if _, err := c.AddMutual(nil, l2, 0.5); err == nil {
		t.Error("nil inductor must fail")
	}
	m, err := c.AddMutual(l1, l2, 0.5)
	if err != nil || math.Abs(m-0.5e-6) > 1e-18 {
		t.Errorf("M = %v, %v", m, err)
	}
}

func TestMutualNetlistRoundTrip(t *testing.T) {
	c := New()
	in, sec := c.Node("in"), c.Node("sec")
	c.AddV(in, Ground, DC(1))
	l1, _ := c.AddL(in, Ground, 1e-6)
	l2, _ := c.AddL(sec, Ground, 2e-6)
	c.AddR(sec, Ground, 50)
	if _, err := c.AddMutual(l1, l2, 0.4); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := c.WriteNetlist(&sb, NetlistOpts{Strict: true}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "K1 L1 L2 0.4") {
		t.Fatalf("K line missing:\n%s", sb.String())
	}
	parsed, err := ParseNetlist(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatalf("re-parse: %v\n%s", err, sb.String())
	}
	if parsed.Circuit.NumUnknowns() != c.NumUnknowns() {
		t.Errorf("round-trip changed system size: %d vs %d",
			parsed.Circuit.NumUnknowns(), c.NumUnknowns())
	}
}

func TestParseNetlistKUnknownInductor(t *testing.T) {
	deck := "title\nL1 a 0 1u\nK1 L1 L9 0.5\nR1 a 0 1\n.end\n"
	if _, err := ParseNetlist(strings.NewReader(deck)); err == nil {
		t.Error("K with unknown inductor must fail")
	}
}
