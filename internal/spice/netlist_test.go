package spice

import (
	"strings"
	"testing"
)

func TestWriteNetlistLinear(t *testing.T) {
	c := New()
	in, out := c.Node("in"), c.Node("out")
	c.AddV(in, Ground, Pulse{V0: 0, V1: 1.2, Rise: 1e-11, Fall: 1e-11, Width: 1e-9, Period: 2e-9})
	c.AddR(in, out, 50)
	if _, err := c.AddL(out, Ground, 2e-9); err != nil {
		t.Fatal(err)
	}
	c.AddC(out, Ground, 1e-12)
	c.AddI(Ground, out, DC(1e-3))
	var sb strings.Builder
	if err := c.WriteNetlist(&sb, NetlistOpts{Title: "test deck", Strict: true}); err != nil {
		t.Fatal(err)
	}
	deck := sb.String()
	for _, want := range []string{
		"* test deck",
		"V1 in 0 PULSE(0 1.2 0 1e-11 1e-11 1e-09 2e-09)",
		"R1 in out 50",
		"L1 out 0 2e-09",
		"C1 out 0 1e-12",
		"I1 0 out DC 0.001",
		".end",
	} {
		if !strings.Contains(deck, want) {
			t.Errorf("deck missing %q:\n%s", want, deck)
		}
	}
}

func TestWriteNetlistStrictRejectsBehavioral(t *testing.T) {
	c := New()
	in, out := c.Node("in"), c.Node("out")
	if _, err := c.AddInverter(in, out, InverterParams{VDD: 1.2, ROut: 14}); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := c.WriteNetlist(&sb, NetlistOpts{Strict: true}); err == nil {
		t.Error("strict export must reject the inverter macro-model")
	}
	sb.Reset()
	if err := c.WriteNetlist(&sb, NetlistOpts{}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "* inverter macro-model: in=in out=out") {
		t.Errorf("lenient export missing inverter comment:\n%s", sb.String())
	}
}

func TestWriteNetlistSanitizesNames(t *testing.T) {
	c := New()
	weird := c.Node("a.b:c")
	c.AddR(weird, Ground, 1)
	var sb strings.Builder
	if err := c.WriteNetlist(&sb, NetlistOpts{}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "R1 a_b_c 0 1") {
		t.Errorf("sanitization wrong:\n%s", sb.String())
	}
}

func TestWriteNetlistSourceSpecs(t *testing.T) {
	if got := sourceSpec(PWL{T: []float64{0, 1e-9}, V: []float64{0, 1}}); got != "PWL(0 0 1e-09 1)" {
		t.Errorf("PWL spec %q", got)
	}
	if got := sourceSpec(Sine{Offset: 1, Amp: 2, Freq: 1e9, Delay: 0}); got != "SIN(1 2 1e+09 0)" {
		t.Errorf("SIN spec %q", got)
	}
}

func TestWriteNetlistEmptyCircuit(t *testing.T) {
	var sb strings.Builder
	if err := New().WriteNetlist(&sb, NetlistOpts{}); err == nil {
		t.Error("empty circuit must fail")
	}
}
