package spice

import (
	"fmt"
	"math/cmplx"

	"rlcint/internal/lina"
)

// acStamperAt is implemented by nonlinear elements that can contribute a
// small-signal model linearized at a given operating point.
type acStamperAt interface {
	acLoadAt(ld *acLoader, s complex128, x []float64)
}

func (e *inverterCore) acLoadAt(ld *acLoader, s complex128, x []float64) {
	g := 1 / e.p.ROut
	vin := 0.0
	if e.in != Ground {
		vin = x[e.in]
	}
	_, dvt := e.target(vin)
	// i_out = g·(v_out − vt(v_in)):  ∂i/∂v_out = g, ∂i/∂v_in = −g·vt'.
	ld.addA(e.out, e.out, complex(g, 0))
	ld.addA(e.out, e.in, complex(-g*dvt, 0))
}

func (e *mosfet) acLoadAt(ld *acLoader, s complex128, x []float64) {
	// Reuse the transient linearization: assemble the element's Jacobian at
	// x via a scratch loader and copy the conductances (the MOSFET is
	// memoryless, so its small-signal model is exactly its DC Jacobian).
	sp := 1.0
	if e.p.PMOS {
		sp = -1
	}
	v := func(n NodeID) float64 {
		if n == Ground {
			return 0
		}
		return x[n]
	}
	wd, wg, ws := sp*v(e.d), sp*v(e.g), sp*v(e.s)
	var jd, jg, js float64
	if wd >= ws {
		_, dg, dd := e.p.ids(wg-ws, wd-ws)
		jd, jg, js = dd, dg, -dd-dg
	} else {
		_, dg, dd := e.p.ids(wg-wd, ws-wd)
		js, jg, jd = -dd, -dg, dd+dg
	}
	ld.addA(e.d, e.d, complex(jd, 0))
	ld.addA(e.d, e.g, complex(jg, 0))
	ld.addA(e.d, e.s, complex(js, 0))
	ld.addA(e.s, e.d, complex(-jd, 0))
	ld.addA(e.s, e.g, complex(-jg, 0))
	ld.addA(e.s, e.s, complex(-js, 0))
}

// ACAnalysisAtOP computes the small-signal transfer function of a circuit
// that may contain nonlinear devices: the devices are linearized at the DC
// operating point (computed here via DCOperatingPoint), and the resulting
// linear network is solved at each complex frequency. Use this for loop
// gains and small-signal bandwidths of inverter chains.
func (c *Circuit) ACAnalysisAtOP(src *VSource, out NodeID, ss []complex128) (*ACResult, []float64, error) {
	if err := c.Validate(); err != nil {
		return nil, nil, err
	}
	if src == nil {
		return nil, nil, fmt.Errorf("spice: ACAnalysisAtOP requires a source")
	}
	if out == Ground {
		return nil, nil, fmt.Errorf("spice: ACAnalysisAtOP output is ground")
	}
	op, err := c.DCOperatingPoint()
	if err != nil {
		return nil, nil, fmt.Errorf("spice: ACAnalysisAtOP operating point: %w", err)
	}
	n := c.NumUnknowns()
	res := &ACResult{S: append([]complex128(nil), ss...), H: make([]complex128, len(ss))}
	for i, s := range ss {
		ld := &acLoader{
			nNodes:   c.NumNodes(),
			a:        lina.NewZDense(n, n),
			b:        make([]complex128, n),
			acSource: src,
		}
		for _, e := range c.elems {
			switch st := e.(type) {
			case acStamper:
				st.acLoad(ld, s)
			case acStamperAt:
				st.acLoadAt(ld, s, op)
			default:
				return nil, nil, fmt.Errorf("spice: ACAnalysisAtOP: element %T has no small-signal model", e)
			}
		}
		x, err := lina.ZSolve(ld.a, ld.b)
		if err != nil {
			return nil, nil, fmt.Errorf("spice: ACAnalysisAtOP singular at s=%v: %w", s, err)
		}
		res.H[i] = x[out]
	}
	return res, op, nil
}

// LowFrequencyGain returns |H| at a frequency far below the circuit's poles
// (1 Hz), a convenience for DC small-signal gain measurements.
func (c *Circuit) LowFrequencyGain(src *VSource, out NodeID) (float64, error) {
	res, _, err := c.ACAnalysisAtOP(src, out, []complex128{complex(0, 2*3.14159265358979)})
	if err != nil {
		return 0, err
	}
	return cmplx.Abs(res.H[0]), nil
}
