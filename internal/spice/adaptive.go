package spice

import (
	"context"
	"errors"
	"fmt"
	"math"

	"rlcint/internal/diag"
	"rlcint/internal/runctl"
)

// AdaptiveOpts configure TransientAdaptive.
type AdaptiveOpts struct {
	TStop float64
	// DTInit is the starting step (default TStop/1000); DTMin and DTMax
	// bound the controller (defaults TStop/1e7 and TStop/50).
	DTInit, DTMin, DTMax float64
	// LTETol is the per-step local-truncation-error target on node voltages
	// (default 1e-4, in the solution's own units).
	LTETol float64
	UseICs bool
	// Newton settings are shared with TranOpts defaults.
	MaxNewton int
	ITol      float64
	Gmin      float64
	// Limits bound the run; see runctl.Limits. MaxIters counts Newton
	// iterations, the inner unit of work.
	Limits runctl.Limits
	// NoFastPath disables the sparse-kernel fast path (see TranOpts).
	NoFastPath bool
	// NoReduction disables the Krylov reduced-order fast path (see
	// TranOpts.NoReduction). Adaptive runs only take the reduced path for
	// fully linear circuits; with NoReduction set the run is bit-identical
	// to the pre-reduction adaptive solver.
	NoReduction bool
	// Report, when non-nil, collects recovery-ladder attempts and
	// reduced-path decisions for this run (see TranOpts.Report).
	Report *diag.Report
}

func (o AdaptiveOpts) withDefaults() (AdaptiveOpts, error) {
	if o.TStop <= 0 {
		return o, fmt.Errorf("spice: adaptive transient needs TStop > 0")
	}
	if o.DTInit == 0 {
		o.DTInit = o.TStop / 1000
	}
	if o.DTMin == 0 {
		o.DTMin = o.TStop / 1e7
	}
	if o.DTMax == 0 {
		o.DTMax = o.TStop / 50
	}
	if o.DTInit > o.DTMax {
		o.DTInit = o.DTMax
	}
	if o.LTETol == 0 {
		o.LTETol = 1e-4
	}
	if o.MaxNewton == 0 {
		o.MaxNewton = 50
	}
	if o.ITol == 0 {
		o.ITol = 1e-9
	}
	if o.Gmin == 0 {
		o.Gmin = 1e-12
	}
	return o, nil
}

// TransientAdaptive runs a trapezoidal transient with local-truncation-error
// step control: each step's LTE is estimated from the deviation of the new
// solution from a quadratic (divided-difference) predictor through the last
// three accepted points, and the step is resized toward the target error
// with the standard third-order rule. The returned Result has a non-uniform
// time axis.
func (c *Circuit) TransientAdaptive(opts AdaptiveOpts, probes ...Probe) (*Result, error) {
	return c.TransientAdaptiveCtx(context.Background(), opts, probes...)
}

// TransientAdaptiveCtx is TransientAdaptive under run control: ctx
// cancellation and opts.Limits are checked at every Newton iteration, and a
// stopped run returns the waveform accumulated so far with Partial set
// alongside the typed stop error.
func (c *Circuit) TransientAdaptiveCtx(ctx context.Context, opts AdaptiveOpts, probes ...Probe) (res *Result, err error) {
	defer diag.RecoverTo(&err, "spice.TransientAdaptive")
	if err := c.Validate(); err != nil {
		return nil, err
	}
	opts, err = opts.withDefaults()
	if err != nil {
		return nil, err
	}
	ctl := runctl.New(ctx, opts.Limits)
	tran := TranOpts{
		TStop: opts.TStop, DT: opts.DTInit, MaxNewton: opts.MaxNewton,
		ITol: opts.ITol, Gmin: opts.Gmin, NoFastPath: opts.NoFastPath,
		Report: opts.Report,
	}
	tran, _ = tran.withDefaults()
	tran.ctl = ctl

	ns := newNewtonState(c)
	if opts.UseICs {
		for id, v := range c.ics {
			ns.x[id] = v
		}
	} else {
		x0, err := c.dcOperatingPoint(ctl, DCOpts{NoFastPath: opts.NoFastPath})
		if err != nil {
			if runctl.IsStop(err) {
				return nil, err
			}
			return nil, fmt.Errorf("spice: adaptive initial point: %w", err)
		}
		copy(ns.x, x0)
	}
	copy(ns.xPrev, ns.x)

	res = &Result{Signals: make([][]float64, len(probes)), Labels: make([]string, len(probes))}
	for i, p := range probes {
		res.Labels[i] = p.Label()
	}
	record := func(t float64) {
		res.T = append(res.T, t)
		for i, p := range probes {
			res.Signals[i] = append(res.Signals[i], p.sample(ns.x, ns.nNodes))
		}
	}
	record(0)

	// Krylov reduced-order fast path: linear circuits step a dense q-by-q
	// recursion under the same LTE controller. A bail-out reruns the full
	// loop from t=0 (the reduced attempt leaves only the t=0 sample behind).
	if rr := c.tryReduceAdaptive(opts, tran, ns.x, probes); rr != nil {
		out, lerr, bailed := c.reducedAdaptiveLoop(opts, tran, rr, res, probes)
		if !bailed {
			return out, lerr
		}
		morStatFallback.Add(1)
		res.T = res.T[:1]
		for i := range res.Signals {
			res.Signals[i] = res.Signals[i][:1]
		}
	}

	// History for the quadratic predictor: last two accepted solutions and
	// their times (the current xPrev is the third point).
	hist1 := make([]float64, ns.n) // x(t_{k-1})
	hist2 := make([]float64, ns.n) // x(t_{k-2})
	var t1, t2 float64
	havePts := 0
	pred := make([]float64, ns.n)

	t := 0.0
	dt := opts.DTInit
	beSteps := 2
	fails := 0
	for t < opts.TStop*(1-1e-12) {
		if t+dt > opts.TStop {
			dt = opts.TStop - t
		}
		trap := beSteps <= 0
		ld := &loader{t: t + dt, dt: dt, trap: trap, gmin: tran.Gmin}
		copy(ns.xPrev, ns.x)
		if _, err := ns.solveNewton(ld, tran); err != nil {
			copy(ns.x, ns.xPrev)
			if runctl.IsStop(err) {
				// A run-control stop is terminal, not a convergence failure:
				// never retry it with a smaller step.
				res.Partial = true
				res.PartialT = t
				var de *diag.Error
				if errors.As(err, &de) {
					de.Time = t
				}
				return res, err
			}
			fails++
			if fails > 30 {
				return res, fmt.Errorf("spice: adaptive step collapsed at t=%g: %w", t, err)
			}
			dt /= 2
			if dt < opts.DTMin {
				return res, fmt.Errorf("spice: adaptive step below DTMin at t=%g: %w", t, err)
			}
			continue
		}
		fails = 0
		// LTE estimate once enough history exists.
		accepted := true
		if havePts >= 2 && trap {
			// Quadratic extrapolation through (t2,hist2), (t1,hist1),
			// (t,xPrev) evaluated at t+dt.
			tn := t + dt
			l2 := (tn - t1) * (tn - t) / ((t2 - t1) * (t2 - t))
			l1 := (tn - t2) * (tn - t) / ((t1 - t2) * (t1 - t))
			l0 := (tn - t2) * (tn - t1) / ((t - t2) * (t - t1))
			errMax := 0.0
			for i := 0; i < ns.nNodes; i++ {
				pred[i] = l2*hist2[i] + l1*hist1[i] + l0*ns.xPrev[i]
				if e := math.Abs(ns.x[i] - pred[i]); e > errMax {
					errMax = e
				}
			}
			// Resize toward the target; reject wild steps.
			if errMax > 8*opts.LTETol && dt > opts.DTMin {
				copy(ns.x, ns.xPrev)
				dt = math.Max(dt/2, opts.DTMin)
				continue
			}
			ratio := math.Pow(opts.LTETol/math.Max(errMax, 1e-300), 1.0/3)
			ratio = math.Min(math.Max(ratio, 0.3), 2)
			dt = math.Min(math.Max(dt*ratio, opts.DTMin), opts.DTMax)
		}
		if accepted {
			ldAcc := *ld
			ldAcc.x = ns.x
			ldAcc.xPrev = ns.xPrev
			for _, e := range c.elems {
				e.accept(&ldAcc)
			}
			// Shift history.
			t2, t1 = t1, t
			copy(hist2, hist1)
			copy(hist1, ns.xPrev)
			if havePts < 2 {
				havePts++
			}
			t = ld.t
			if beSteps > 0 {
				beSteps--
			}
			record(t)
		}
	}
	return res, nil
}
