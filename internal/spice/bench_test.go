package spice

import (
	"fmt"
	"testing"
)

// benchLadder is a 24-section RLC ladder with inverter repeaters every
// fourth section — MNA-wise comparable to the paper's buffered-line
// experiments.
func benchLadder(b *testing.B) *Circuit {
	b.Helper()
	c := New()
	in := c.Node("in")
	if _, err := c.AddV(in, Ground, Pulse{V0: 0, V1: 1, Delay: 20e-12, Rise: 30e-12, Width: 350e-12, Fall: 30e-12, Period: 800e-12}); err != nil {
		b.Fatal(err)
	}
	prev := in
	for i := 0; i < 24; i++ {
		mid := c.Node(fmt.Sprintf("m%d", i))
		out := c.Node(fmt.Sprintf("n%d", i))
		if err := c.AddR(prev, mid, 12); err != nil {
			b.Fatal(err)
		}
		if _, err := c.AddL(mid, out, 8e-11); err != nil {
			b.Fatal(err)
		}
		if err := c.AddC(out, Ground, 6e-15); err != nil {
			b.Fatal(err)
		}
		prev = out
		if i%4 == 3 {
			buf := c.Node(fmt.Sprintf("b%d", i))
			if _, err := c.AddInverter(prev, buf, InverterParams{VDD: 1, ROut: 250, CIn: 2e-15, COut: 2e-15}); err != nil {
				b.Fatal(err)
			}
			prev = buf
		}
	}
	return c
}

// BenchmarkTransientStep measures one steady-state transient sub-step
// (Newton solve + element accepts) of a warmed-up nonlinear solver — the
// unit of work the sparse-kernel fast path optimizes. Steady-state steps
// must report 0 B/op (pinned by TestTransientStepAllocFree).
func BenchmarkTransientStep(b *testing.B) {
	b.ReportAllocs()
	c := benchLadder(b)
	opts, err := TranOpts{TStop: 1e-9, DT: 5e-12}.withDefaults()
	if err != nil {
		b.Fatal(err)
	}
	ns := newNewtonState(c)
	x0, err := c.DCOperatingPointWith(DCOpts{})
	if err != nil {
		b.Fatal(err)
	}
	copy(ns.x, x0)
	copy(ns.xPrev, ns.x)
	step := 1
	tNow := 0.0
	runStep := func() {
		ld := &ns.ld
		*ld = loader{t: tNow + opts.DT, dt: opts.DT, trap: true, gmin: opts.Gmin, op: "tran-tr", step: step}
		copy(ns.xPrev, ns.x)
		if _, err := ns.solveNewton(ld, opts); err != nil {
			b.Fatalf("step %d: %v", step, err)
		}
		ld.x = ns.x
		ld.xPrev = ns.xPrev
		for _, e := range c.elems {
			e.accept(ld)
		}
		tNow += opts.DT
		step++
	}
	for i := 0; i < 8; i++ {
		runStep()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runStep()
	}
}

// BenchmarkTransientStepLegacy is BenchmarkTransientStep with the fast path
// disabled, so the pair quantifies the per-step speedup directly.
func BenchmarkTransientStepLegacy(b *testing.B) {
	b.ReportAllocs()
	c := benchLadder(b)
	opts, err := TranOpts{TStop: 1e-9, DT: 5e-12, NoFastPath: true}.withDefaults()
	if err != nil {
		b.Fatal(err)
	}
	ns := newNewtonState(c)
	x0, err := c.DCOperatingPointWith(DCOpts{NoFastPath: true})
	if err != nil {
		b.Fatal(err)
	}
	copy(ns.x, x0)
	copy(ns.xPrev, ns.x)
	step := 1
	tNow := 0.0
	runStep := func() {
		ld := &ns.ld
		*ld = loader{t: tNow + opts.DT, dt: opts.DT, trap: true, gmin: opts.Gmin, op: "tran-tr", step: step}
		copy(ns.xPrev, ns.x)
		if _, err := ns.solveNewton(ld, opts); err != nil {
			b.Fatalf("step %d: %v", step, err)
		}
		ld.x = ns.x
		ld.xPrev = ns.xPrev
		for _, e := range c.elems {
			e.accept(ld)
		}
		tNow += opts.DT
		step++
	}
	for i := 0; i < 8; i++ {
		runStep()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runStep()
	}
}
