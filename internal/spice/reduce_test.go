package spice

// Tests for the Krylov reduced-order fast path (reduce.go): differential
// accuracy against the full solver, gate-reject and fault-injection
// fallbacks, checkpoint/resume bit-exactness, and model-cache behaviour.

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"path/filepath"
	"sync"
	"testing"

	"rlcint/internal/diag"
	"rlcint/internal/runctl"
)

// morCacheReset empties the global projection cache so each test observes
// its own build/reject decisions instead of a neighbour's cached ones.
func morCacheReset() {
	morCache.mu.Lock()
	defer morCache.mu.Unlock()
	morCache.m = nil
}

// reduceLadder builds a coupled RLC ladder with enough sections to clear
// the reduction size floor (reduceMinUnknowns); randLadder's 6–9 sections
// sit right at it. Structure matches randLadder otherwise.
func reduceLadder(t *testing.T, seed int64, withInverters bool) (*Circuit, []Probe) {
	t.Helper()
	c, probes, err := buildReduceLadder(seed, withInverters)
	if err != nil {
		t.Fatal(err)
	}
	return c, probes
}

func buildReduceLadder(seed int64, withInverters bool) (*Circuit, []Probe, error) {
	rng := rand.New(rand.NewSource(seed))
	c := New()
	in := c.Node("in")
	if _, err := c.AddV(in, Ground, Pulse{V0: 0, V1: 1, Delay: 20e-12, Rise: 30e-12, Width: 350e-12, Fall: 30e-12}); err != nil {
		return nil, nil, err
	}
	prev := in
	var prevL *Inductor
	for i := 0; i < 12; i++ {
		mid := c.Node(fmt.Sprintf("m%d", i))
		out := c.Node(fmt.Sprintf("n%d", i))
		if err := c.AddR(prev, mid, 5+20*rng.Float64()); err != nil {
			return nil, nil, err
		}
		l, err := c.AddL(mid, out, (0.5+rng.Float64())*1e-10)
		if err != nil {
			return nil, nil, err
		}
		if err := c.AddC(out, Ground, (0.5+rng.Float64())*1e-14); err != nil {
			return nil, nil, err
		}
		if prevL != nil {
			if _, err := c.AddMutual(prevL, l, 0.15+0.1*rng.Float64()); err != nil {
				return nil, nil, err
			}
		}
		prevL = l
		prev = out
		if withInverters && i%4 == 3 {
			buf := c.Node(fmt.Sprintf("b%d", i))
			if _, err := c.AddInverter(prev, buf, InverterParams{
				VDD: 1, ROut: 200 + 100*rng.Float64(), CIn: 2e-15, COut: 2e-15,
			}); err != nil {
				return nil, nil, err
			}
			prev = buf
			prevL = nil
		}
	}
	probes := []Probe{c.ProbeNode("n0"), c.ProbeNode(c.NodeName(NodeID(prev)))}
	return c, probes, nil
}

func reportHas(rep *diag.Report, ladder, rung string) bool {
	for _, a := range rep.Attempts {
		if a.Ladder == ladder && a.Rung == rung {
			return true
		}
	}
	return false
}

// TestReducedLinearAgrees runs big linear ladders through the reduced path
// (asserting via the diag report that it actually engaged) and checks the
// waveforms against the full solver within the accuracy-gate budget.
func TestReducedLinearAgrees(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		morCacheReset()
		cRed, pRed := reduceLadder(t, seed, false)
		rep := &diag.Report{}
		redOpts := ladderOpts()
		redOpts.Report = rep
		red, err := cRed.Transient(redOpts, pRed...)
		if err != nil {
			t.Fatalf("seed %d reduced: %v", seed, err)
		}
		if !reportHas(rep, "mor", "accept") {
			t.Fatalf("seed %d: reduction did not engage:\n%s", seed, rep)
		}
		cFull, pFull := reduceLadder(t, seed, false)
		fullOpts := ladderOpts()
		fullOpts.NoReduction = true
		full, err := cFull.Transient(fullOpts, pFull...)
		if err != nil {
			t.Fatalf("seed %d full: %v", seed, err)
		}
		if d := maxSignalDiff(t, red, full); d > 5e-3 || math.IsNaN(d) {
			t.Errorf("seed %d: reduced run deviates from full solver by %g (want <= 5e-3)", seed, d)
		}
	}
}

// TestReducedNonlinearConfirmGuard runs ladders with inverter repeaters.
// The large-signal confirmation window either accepts the reduced model (in
// which case the waveform agrees within the confirm budget) or rejects it
// (full solver, exact by construction); both outcomes must stay close to
// the NoReduction reference, and the decision must be on the report.
func TestReducedNonlinearConfirmGuard(t *testing.T) {
	for seed := int64(1); seed <= 2; seed++ {
		morCacheReset()
		cRed, pRed := reduceLadder(t, seed, true)
		rep := &diag.Report{}
		redOpts := ladderOpts()
		redOpts.Report = rep
		red, err := cRed.Transient(redOpts, pRed...)
		if err != nil {
			t.Fatalf("seed %d reduced: %v", seed, err)
		}
		if rep.Tried("mor") == 0 {
			t.Fatalf("seed %d: no reduced-path decision on the report", seed)
		}
		cFull, pFull := reduceLadder(t, seed, true)
		fullOpts := ladderOpts()
		fullOpts.NoReduction = true
		full, err := cFull.Transient(fullOpts, pFull...)
		if err != nil {
			t.Fatalf("seed %d full: %v", seed, err)
		}
		if d := maxSignalDiff(t, red, full); d > 2e-2 || math.IsNaN(d) {
			t.Errorf("seed %d: nonlinear run deviates from full solver by %g (want <= 2e-2)", seed, d)
		}
	}
}

// TestReducedBuildFaultFallsBack injects a fault into the Arnoldi build and
// requires a bit-exact full-solver run plus a reject entry on the report.
func TestReducedBuildFaultFallsBack(t *testing.T) {
	for _, site := range []string{"mor.arnoldi", "mor.build", "mor.gate"} {
		morCacheReset()
		cRed, pRed := reduceLadder(t, 4, false)
		rep := &diag.Report{}
		redOpts := ladderOpts()
		redOpts.Report = rep
		redOpts.Injector = diag.FaultAt(site, 0, errors.New("injected build fault"))
		red, err := cRed.Transient(redOpts, pRed...)
		if err != nil {
			t.Fatalf("%s: run failed instead of falling back: %v", site, err)
		}
		if !reportHas(rep, "mor", "reduce") {
			t.Errorf("%s: no reduce-reject entry on the report:\n%s", site, rep)
		}
		if reportHas(rep, "mor", "accept") {
			t.Errorf("%s: model accepted despite injected build fault", site)
		}
		cFull, pFull := reduceLadder(t, 4, false)
		fullOpts := ladderOpts()
		fullOpts.NoReduction = true
		full, err := cFull.Transient(fullOpts, pFull...)
		if err != nil {
			t.Fatalf("full: %v", err)
		}
		if d := maxSignalDiff(t, red, full); d != 0 {
			t.Errorf("%s: build-fault fallback deviates from NoReduction by %g (want bit-exact)", site, d)
		}
	}
}

// TestReducedStepFaultBailsBitExact injects a fault into the reduced
// stepping loop mid-run; the transient must restart on the full solver and
// end bit-identical to a NoReduction run, with bailout+fallback recorded.
func TestReducedStepFaultBailsBitExact(t *testing.T) {
	morCacheReset()
	cRed, pRed := reduceLadder(t, 6, false)
	rep := &diag.Report{}
	redOpts := ladderOpts()
	redOpts.Report = rep
	redOpts.Injector = diag.FaultAt("spice.mor/step", 10, errors.New("injected step fault"))
	red, err := cRed.Transient(redOpts, pRed...)
	if err != nil {
		t.Fatalf("reduced: run failed instead of bailing out: %v", err)
	}
	if !reportHas(rep, "mor", "accept") {
		t.Fatalf("reduction did not engage:\n%s", rep)
	}
	if !reportHas(rep, "mor", "bailout") || !reportHas(rep, "mor", "fallback") {
		t.Errorf("bailout/fallback not recorded:\n%s", rep)
	}
	cFull, pFull := reduceLadder(t, 6, false)
	fullOpts := ladderOpts()
	fullOpts.NoReduction = true
	full, err := cFull.Transient(fullOpts, pFull...)
	if err != nil {
		t.Fatalf("full: %v", err)
	}
	if d := maxSignalDiff(t, red, full); d != 0 {
		t.Errorf("step-fault fallback deviates from NoReduction by %g (want bit-exact)", d)
	}
}

// TestReducedCheckpointResumeBitExact interrupts a reduced checkpointing
// run, resumes from the snapshot, and requires the stitched waveform to be
// bit-identical to an uninterrupted reduced run. It then checks the two
// refusal paths: a reduced snapshot cannot resume under NoReduction or
// NoFastPath.
func TestReducedCheckpointResumeBitExact(t *testing.T) {
	dir := t.TempDir()
	morCacheReset()

	cFull, pFull := reduceLadder(t, 5, false)
	rep := &diag.Report{}
	fullOpts := ladderOpts()
	fullOpts.Report = rep
	fullOpts.CheckpointPath = filepath.Join(dir, "whole.ckpt")
	fullOpts.CheckpointEvery = 50
	full, err := cFull.Transient(fullOpts, pFull...)
	if err != nil {
		t.Fatalf("uninterrupted: %v", err)
	}
	if !reportHas(rep, "mor", "accept") {
		t.Fatalf("reduction did not engage:\n%s", rep)
	}

	cpPath := filepath.Join(dir, "interrupted.ckpt")
	cHalf, pHalf := reduceLadder(t, 5, false)
	halfOpts := ladderOpts()
	halfOpts.CheckpointPath = cpPath
	halfOpts.CheckpointEvery = 50
	halfOpts.Limits = runctl.Limits{MaxIters: 120}
	if _, err := cHalf.Transient(halfOpts, pHalf...); err == nil {
		t.Fatal("interrupted run unexpectedly completed; lower MaxIters")
	}
	cp, err := LoadCheckpoint(cpPath)
	if err != nil {
		t.Fatalf("load snapshot: %v", err)
	}
	if cp.MOR == nil {
		t.Fatal("checkpoint from a reduced run is missing the reduced-state blob")
	}

	cRes, pRes := reduceLadder(t, 5, false)
	resOpts := ladderOpts()
	resOpts.CheckpointEvery = 50
	resumed, err := cRes.TransientResume(cp, resOpts, pRes...)
	if err != nil {
		t.Fatalf("resume: %v", err)
	}
	if d := maxSignalDiff(t, full, resumed); d != 0 {
		t.Errorf("resumed run deviates from uninterrupted run by %g (want bit-exact)", d)
	}

	cNR, pNR := reduceLadder(t, 5, false)
	nrOpts := ladderOpts()
	nrOpts.NoReduction = true
	if _, err := cNR.TransientResume(cp, nrOpts, pNR...); !errors.Is(err, diag.ErrDomain) {
		t.Errorf("NoReduction resume of a reduced snapshot: got %v, want domain error", err)
	}
	cNF, pNF := reduceLadder(t, 5, false)
	nfOpts := ladderOpts()
	nfOpts.NoFastPath = true
	if _, err := cNF.TransientResume(cp, nfOpts, pNF...); !errors.Is(err, diag.ErrDomain) {
		t.Errorf("NoFastPath resume of a reduced snapshot: got %v, want domain error", err)
	}
}

// TestReducedAdaptiveEngages checks that adaptive runs on linear circuits
// take the reduced path and stay consistent with the full adaptive solver.
// The two runs choose their own (different) step sequences, so the check
// compares the exactly-aligned endpoints and interpolated interior values.
func TestReducedAdaptiveEngages(t *testing.T) {
	morCacheReset()
	cRed, pRed := reduceLadder(t, 7, false)
	rep := &diag.Report{}
	red, err := cRed.TransientAdaptive(AdaptiveOpts{TStop: 1e-9, ITol: 1e-12, Report: rep}, pRed...)
	if err != nil {
		t.Fatalf("reduced adaptive: %v", err)
	}
	if !reportHas(rep, "mor", "accept") {
		t.Fatalf("adaptive reduction did not engage:\n%s", rep)
	}
	cFull, pFull := reduceLadder(t, 7, false)
	full, err := cFull.TransientAdaptive(AdaptiveOpts{TStop: 1e-9, ITol: 1e-12, NoReduction: true}, pFull...)
	if err != nil {
		t.Fatalf("full adaptive: %v", err)
	}
	if len(red.T) < 10 {
		t.Fatalf("reduced adaptive run recorded only %d samples", len(red.T))
	}
	for i := range red.Signals {
		last := len(red.T) - 1
		if d := math.Abs(red.Signals[i][last] - full.Signals[i][len(full.T)-1]); d > 5e-3 {
			t.Errorf("signal %d: endpoint differs by %g (want <= 5e-3)", i, d)
		}
		for j, tj := range red.T {
			want, ok := interpResult(full, i, tj)
			if !ok {
				continue
			}
			// Loose bound: both controllers hold LTE to ~1e-4, but the
			// interpolation between coarse adaptive samples dominates.
			if d := math.Abs(red.Signals[i][j] - want); d > 5e-2 {
				t.Errorf("signal %d at t=%g: reduced %g vs full %g", i, tj, red.Signals[i][j], want)
			}
		}
	}
}

// interpResult linearly interpolates signal i of res at time tq.
func interpResult(res *Result, i int, tq float64) (float64, bool) {
	ts := res.T
	if len(ts) == 0 || tq < ts[0] || tq > ts[len(ts)-1] {
		return 0, false
	}
	for k := 1; k < len(ts); k++ {
		if tq <= ts[k] {
			t0, t1 := ts[k-1], ts[k]
			if t1 == t0 {
				return res.Signals[i][k], true
			}
			a := (tq - t0) / (t1 - t0)
			return (1-a)*res.Signals[i][k-1] + a*res.Signals[i][k], true
		}
	}
	return res.Signals[i][len(ts)-1], true
}

// TestReducedCacheConcurrent hammers the shared projection cache from
// several goroutines running identical circuits; mainly a -race exercise.
func TestReducedCacheConcurrent(t *testing.T) {
	morCacheReset()
	const workers = 4
	type job struct {
		c *Circuit
		p []Probe
	}
	jobs := make([]job, workers)
	for g := range jobs {
		c, p := reduceLadder(t, 9, false)
		jobs[g] = job{c, p}
	}
	errs := make(chan error, workers)
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(j job) {
			defer wg.Done()
			if _, err := j.c.Transient(ladderOpts(), j.p...); err != nil {
				errs <- err
			}
		}(jobs[g])
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Errorf("concurrent reduced run: %v", err)
	}
}
