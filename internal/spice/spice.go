// Package spice is the library's transient circuit simulator — the
// substitute for the commercial SPICE runs in the paper's Section 3 (ring
// oscillators, buffered lines, current-density probes). It implements
// modified nodal analysis with a residual-form Newton solve per timestep,
// trapezoidal or backward-Euler integration, sparse LU (internal/sparse),
// linear elements (R, C, L, independent sources), a calibrated inverter
// macro-model realizing the paper's linear-(r_s, c_p) repeater assumption,
// and an alpha-power-law MOSFET for physically flavoured experiments.
//
// Sign conventions: node voltages are relative to ground (node index -1);
// KCL residuals sum currents LEAVING each node; a branch element's positive
// current flows from its first node to its second through the element.
package spice

import (
	"fmt"

	"rlcint/internal/sparse"
)

// NodeID identifies a circuit node; Ground is the reference.
type NodeID int

// Ground is the reference node.
const Ground NodeID = -1

// Circuit is a netlist under construction.
type Circuit struct {
	nodeNames []string
	nodeIdx   map[string]NodeID
	elems     []element
	nBranches int
	ics       map[NodeID]float64
}

// New returns an empty circuit.
func New() *Circuit {
	return &Circuit{nodeIdx: make(map[string]NodeID), ics: make(map[NodeID]float64)}
}

// Node returns the node with the given name, creating it on first use.
func (c *Circuit) Node(name string) NodeID {
	if id, ok := c.nodeIdx[name]; ok {
		return id
	}
	id := NodeID(len(c.nodeNames))
	c.nodeNames = append(c.nodeNames, name)
	c.nodeIdx[name] = id
	return id
}

// NodeName returns the name of a node (for diagnostics).
func (c *Circuit) NodeName(id NodeID) string {
	if id == Ground {
		return "0"
	}
	return c.nodeNames[id]
}

// NumNodes returns the number of non-ground nodes.
func (c *Circuit) NumNodes() int { return len(c.nodeNames) }

// NumUnknowns returns the MNA system size (nodes + branch currents).
func (c *Circuit) NumUnknowns() int { return len(c.nodeNames) + c.nBranches }

// SetIC sets an initial node voltage used by Transient when
// TranOpts.UseICs is true (capacitor states start consistent with it).
func (c *Circuit) SetIC(n NodeID, v float64) {
	if n != Ground {
		c.ics[n] = v
	}
}

// element is the internal device interface. load accumulates the element's
// contribution to the Newton residual and Jacobian for the current iterate;
// accept commits per-step state after a timestep converges.
type element interface {
	load(ld *loader)
	accept(ld *loader)
}

// branched is implemented by elements owning MNA branch-current unknowns.
type branched interface {
	setBranchBase(int)
	numBranches() int
}

// nonlinearDevice marks elements whose Jacobian stamps depend on the Newton
// iterate. Everything else (R, C, L, K, independent sources) has constant
// stamps for a fixed timestep configuration, which the transient fast path
// exploits by pre-stamping the linear partition once per step and
// restamping only nonlinear devices per Newton iteration.
type nonlinearDevice interface {
	nonlinear()
}

func (c *Circuit) addElem(e element) {
	if b, ok := e.(branched); ok {
		b.setBranchBase(len(c.nodeNames)*0 + c.nBranches) // branch offset, bases resolved in loader
		c.nBranches += b.numBranches()
	}
	c.elems = append(c.elems, e)
}

// loader carries the per-iteration assembly context.
type loader struct {
	nNodes int
	x      []float64 // current Newton iterate [v; ibranch]
	xPrev  []float64 // converged solution of the previous timestep
	jac    *sparse.Triplet
	res    []float64
	t      float64 // time at the END of the current step
	dt     float64
	trap   bool // trapezoidal if true, else backward Euler
	dc     bool // DC operating point assembly
	gmin   float64
	// srcRamp attenuates independent sources for the DC source-stepping
	// ladder: the effective source value is (1−srcRamp)·w(t), so the zero
	// value keeps sources at full strength.
	srcRamp float64
	// op names the ladder rung driving this assembly ("dc-gmin", "dc-ramp",
	// "tran-tr", "tran-be") for diagnostics and fault-injection sites; step
	// is the rung or grid-step index.
	op   string
	step int
}

// srcScale is the factor applied to independent source values under the
// active ramp level.
func (ld *loader) srcScale() float64 { return 1 - ld.srcRamp }

// v returns the voltage of node n in the current iterate.
func (ld *loader) v(n NodeID) float64 {
	if n == Ground {
		return 0
	}
	return ld.x[n]
}

// vPrev returns the node voltage at the previous timestep.
func (ld *loader) vPrev(n NodeID) float64 {
	if n == Ground {
		return 0
	}
	return ld.xPrev[n]
}

// branch returns the current of branch unknown b (offset into the branch
// region of x).
func (ld *loader) branch(b int) float64 { return ld.x[ld.nNodes+b] }

func (ld *loader) branchPrev(b int) float64 { return ld.xPrev[ld.nNodes+b] }

// branchRow returns the global row/column index of branch b.
func (ld *loader) branchRow(b int) int { return ld.nNodes + b }

// addRes accumulates into the residual of node row n (ground discarded).
func (ld *loader) addRes(n NodeID, v float64) {
	if n != Ground {
		ld.res[n] += v
	}
}

// addResRow accumulates into an arbitrary residual row.
func (ld *loader) addResRow(row int, v float64) { ld.res[row] += v }

// addJ accumulates into the Jacobian at (row=node, col=node). A nil jac
// selects residual-only assembly (the linear-circuit bypass re-evaluates
// the residual each Newton iteration but never restamps the constant
// Jacobian), so every Jacobian helper is a no-op then.
func (ld *loader) addJ(row, col NodeID, v float64) {
	if ld.jac != nil && row != Ground && col != Ground {
		ld.jac.Add(int(row), int(col), v)
	}
}

// addJRC accumulates into the Jacobian at raw (row, col) indices.
func (ld *loader) addJRC(row, col int, v float64) {
	if ld.jac != nil {
		ld.jac.Add(row, col, v)
	}
}

// addJNodeBranch accumulates ∂F_node/∂i_branch.
func (ld *loader) addJNodeBranch(row NodeID, b int, v float64) {
	if ld.jac != nil && row != Ground {
		ld.jac.Add(int(row), ld.branchRow(b), v)
	}
}

// addJBranchNode accumulates ∂F_branch/∂v_node.
func (ld *loader) addJBranchNode(b int, col NodeID, v float64) {
	if col != Ground && ld.jac != nil {
		ld.jac.Add(ld.branchRow(b), int(col), v)
	}
}

// addJBranchBranch accumulates ∂F_branch/∂i_branch.
func (ld *loader) addJBranchBranch(b, b2 int, v float64) {
	if ld.jac != nil {
		ld.jac.Add(ld.branchRow(b), ld.branchRow(b2), v)
	}
}

// Validate performs basic sanity checks on the netlist.
func (c *Circuit) Validate() error {
	if len(c.nodeNames) == 0 {
		return fmt.Errorf("spice: empty circuit")
	}
	if len(c.elems) == 0 {
		return fmt.Errorf("spice: circuit has nodes but no elements")
	}
	return nil
}
