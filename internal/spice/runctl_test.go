package spice

import (
	"context"
	"errors"
	"path/filepath"
	"testing"
	"time"

	"rlcint/internal/diag"
	"rlcint/internal/runctl"
	"rlcint/internal/testutil"
)

// rlcStepCircuit builds a pulse-driven RLC ladder segment with both
// capacitor and inductor state, so checkpoint/resume exercises every kind
// of carried solver history.
func rlcStepCircuit(t *testing.T) *Circuit {
	t.Helper()
	c := New()
	in, mid, out := c.Node("in"), c.Node("mid"), c.Node("out")
	if _, err := c.AddV(in, Ground, Pulse{V0: 0, V1: 1, Delay: 1e-10, Rise: 5e-11}); err != nil {
		t.Fatal(err)
	}
	if err := c.AddR(in, mid, 50); err != nil {
		t.Fatal(err)
	}
	if _, err := c.AddL(mid, out, 2e-9); err != nil {
		t.Fatal(err)
	}
	if err := c.AddC(mid, Ground, 1e-13); err != nil {
		t.Fatal(err)
	}
	if err := c.AddC(out, Ground, 2e-13); err != nil {
		t.Fatal(err)
	}
	return c
}

var rlcWindow = TranOpts{TStop: 4e-9, DT: 1e-11}

func TestTransientCancellationReturnsPartial(t *testing.T) {
	testutil.CheckGoroutines(t)
	c := rlcStepCircuit(t)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	// Cancel from inside the solver at grid step 50, deterministically; the
	// next Newton iteration must observe it.
	opts := rlcWindow
	opts.Injector = &diag.Injector{Fault: func(s diag.Site) error {
		if s.Step >= 50 {
			cancel()
		}
		return nil
	}}
	res, err := c.TransientCtx(ctx, opts, c.ProbeNode("out"))
	if !errors.Is(err, diag.ErrCancelled) {
		t.Fatalf("want ErrCancelled, got %v", err)
	}
	if res == nil || !res.Partial {
		t.Fatal("cancelled run did not return a partial result")
	}
	if len(res.T) < 50 {
		t.Errorf("partial waveform has %d samples, want >= 50", len(res.T))
	}
	var de *diag.Error
	if !errors.As(err, &de) {
		t.Fatalf("want *diag.Error, got %T", err)
	}
	// The run must stop within one integration step of the cancellation.
	if de.Step < 50 || de.Step > 51 {
		t.Errorf("stopped at step %d, want 50 or 51", de.Step)
	}
	if !errors.Is(err, context.Canceled) {
		t.Error("context cause not wrapped")
	}
}

func TestTransientIterationBudgetStopsTyped(t *testing.T) {
	testutil.CheckGoroutines(t)
	c := rlcStepCircuit(t)
	opts := rlcWindow
	opts.Limits = runctl.Limits{MaxIters: 40}
	res, err := c.Transient(opts, c.ProbeNode("out"))
	if !errors.Is(err, diag.ErrBudget) {
		t.Fatalf("want ErrBudget, got %v", err)
	}
	if res == nil || !res.Partial || len(res.T) < 2 {
		t.Fatal("budget stop lost the partial waveform")
	}
}

func TestTransientDeadlineCarriesElapsed(t *testing.T) {
	testutil.CheckGoroutines(t)
	c := rlcStepCircuit(t)
	opts := rlcWindow
	opts.Limits = runctl.Limits{Timeout: time.Nanosecond} // expires before the first iteration
	_, err := c.Transient(opts, c.ProbeNode("out"))
	if !errors.Is(err, diag.ErrDeadline) {
		t.Fatalf("want ErrDeadline, got %v", err)
	}
	var de *diag.Error
	if !errors.As(err, &de) || de.Elapsed <= 0 {
		t.Fatalf("deadline error carries no elapsed time: %v", err)
	}
}

func TestCheckpointResumeBitExact(t *testing.T) {
	testutil.CheckGoroutines(t)
	probe := func(c *Circuit) []Probe { return []Probe{c.ProbeNode("out"), c.ProbeNode("mid")} }

	// Reference: the uninterrupted run.
	cRef := rlcStepCircuit(t)
	ref, err := cRef.Transient(rlcWindow, probe(cRef)...)
	if err != nil {
		t.Fatal(err)
	}

	// Interrupted run: checkpoints every 8 grid steps, killed by an
	// iteration budget partway through the window.
	cp := filepath.Join(t.TempDir(), "tran.ckpt")
	cKilled := rlcStepCircuit(t)
	opts := rlcWindow
	opts.CheckpointPath = cp
	opts.CheckpointEvery = 8
	opts.Limits = runctl.Limits{MaxIters: 120}
	if _, err := cKilled.Transient(opts, probe(cKilled)...); !errors.Is(err, diag.ErrBudget) {
		t.Fatalf("interrupted run: want ErrBudget, got %v", err)
	}

	loaded, err := LoadCheckpoint(cp)
	if err != nil {
		t.Fatal(err)
	}
	nSteps := int(rlcWindow.TStop/rlcWindow.DT + 0.5)
	if loaded.Step < 8 || loaded.Step >= nSteps {
		t.Fatalf("checkpoint at step %d, want mid-run", loaded.Step)
	}

	// Resume on a fresh circuit and march to completion.
	cRes := rlcStepCircuit(t)
	resOpts := rlcWindow
	resOpts.CheckpointPath = cp
	resOpts.CheckpointEvery = 8
	resumed, err := cRes.TransientResume(loaded, resOpts, probe(cRes)...)
	if err != nil {
		t.Fatal(err)
	}

	if len(resumed.T) != len(ref.T) {
		t.Fatalf("resumed run has %d samples, reference %d", len(resumed.T), len(ref.T))
	}
	for i := range ref.T {
		if resumed.T[i] != ref.T[i] {
			t.Fatalf("time axis diverges at %d: %v != %v", i, resumed.T[i], ref.T[i])
		}
		for s := range ref.Signals {
			if resumed.Signals[s][i] != ref.Signals[s][i] {
				t.Fatalf("signal %q diverges at sample %d: %v != %v (bit-exact resume broken)",
					ref.Labels[s], i, resumed.Signals[s][i], ref.Signals[s][i])
			}
		}
	}
}

func TestCheckpointResumeAlreadyComplete(t *testing.T) {
	c := rlcStepCircuit(t)
	cp := filepath.Join(t.TempDir(), "done.ckpt")
	opts := rlcWindow
	opts.CheckpointPath = cp
	full, err := c.Transient(opts, c.ProbeNode("out"))
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadCheckpoint(cp)
	if err != nil {
		t.Fatal(err)
	}
	c2 := rlcStepCircuit(t)
	res, err := c2.TransientResume(loaded, rlcWindow, c2.ProbeNode("out"))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.T) != len(full.T) {
		t.Fatalf("complete-checkpoint resume has %d samples, want %d", len(res.T), len(full.T))
	}
}

func TestResumeRejectsMismatches(t *testing.T) {
	c := rlcStepCircuit(t)
	cp := filepath.Join(t.TempDir(), "m.ckpt")
	opts := rlcWindow
	opts.CheckpointPath = cp
	opts.CheckpointEvery = 8
	opts.Limits = runctl.Limits{MaxIters: 120}
	c.Transient(opts, c.ProbeNode("out"))
	loaded, err := LoadCheckpoint(cp)
	if err != nil {
		t.Fatal(err)
	}

	c2 := rlcStepCircuit(t)
	badWindow := rlcWindow
	badWindow.DT = 2e-11
	if _, err := c2.TransientResume(loaded, badWindow, c2.ProbeNode("out")); !errors.Is(err, diag.ErrDomain) {
		t.Errorf("window mismatch not rejected: %v", err)
	}
	if _, err := c2.TransientResume(loaded, rlcWindow, c2.ProbeNode("mid")); !errors.Is(err, diag.ErrDomain) {
		t.Errorf("probe mismatch not rejected: %v", err)
	}
	if _, err := c2.TransientResume(nil, rlcWindow, c2.ProbeNode("out")); !errors.Is(err, diag.ErrDomain) {
		t.Errorf("nil checkpoint not rejected: %v", err)
	}
}

func TestPanicInDeviceEvalSurfacesTyped(t *testing.T) {
	testutil.CheckGoroutines(t)
	c := rlcStepCircuit(t)
	opts := rlcWindow
	opts.Injector = diag.PanicAt("spice.newton/tran-tr", 30, "poisoned stamp")
	res, err := c.Transient(opts, c.ProbeNode("out"))
	if !errors.Is(err, diag.ErrPanic) {
		t.Fatalf("want ErrPanic, got %v", err)
	}
	var de *diag.Error
	if !errors.As(err, &de) {
		t.Fatalf("want *diag.Error, got %T", err)
	}
	if de.Op != "spice.Transient" {
		t.Errorf("panic recovered at %q, want the public boundary", de.Op)
	}
	if len(de.Stack) == 0 {
		t.Error("panic error carries no stack")
	}
	if de.Detail != "poisoned stamp" {
		t.Errorf("detail = %q", de.Detail)
	}
	// The recover boundary is above the marching loop, so the partial
	// result is lost by design — but the process must not crash and res
	// must be nil, not garbage.
	if res != nil && !res.Partial && len(res.T) > 0 {
		t.Log("panic path returned a result; acceptable but unexpected")
	}
}

func TestAdaptiveTransientCancellation(t *testing.T) {
	testutil.CheckGoroutines(t)
	c := rlcStepCircuit(t)
	opts := AdaptiveOpts{TStop: 4e-9, Limits: runctl.Limits{MaxIters: 60}}
	res, err := c.TransientAdaptiveCtx(context.Background(), opts, c.ProbeNode("out"))
	if !errors.Is(err, diag.ErrBudget) {
		t.Fatalf("want ErrBudget, got %v", err)
	}
	if res == nil || !res.Partial {
		t.Fatal("adaptive budget stop lost the partial result")
	}
}

func TestACAnalysisCancellationKeepsPrefix(t *testing.T) {
	testutil.CheckGoroutines(t)
	c := New()
	in, out := c.Node("in"), c.Node("out")
	src, err := c.AddV(in, Ground, DC(0))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.AddR(in, out, 1e3); err != nil {
		t.Fatal(err)
	}
	if err := c.AddC(out, Ground, 1e-12); err != nil {
		t.Fatal(err)
	}
	ss := make([]complex128, 100)
	for i := range ss {
		ss[i] = complex(0, 1e6*float64(i+1))
	}
	res, err := c.ACAnalysisCtx(context.Background(), runctl.Limits{MaxIters: 10}, src, out, ss)
	if !errors.Is(err, diag.ErrBudget) {
		t.Fatalf("want ErrBudget, got %v", err)
	}
	if len(res.H) != 10 || len(res.S) != 10 {
		t.Fatalf("prefix has %d points, want 10", len(res.H))
	}
}
