package spice

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"

	"rlcint/internal/diag"
	"rlcint/internal/mor"
	"rlcint/internal/runctl"
)

// checkpointVersion is bumped whenever the serialized layout changes;
// LoadCheckpoint rejects mismatches with a typed domain error instead of
// silently resuming from an incompatible state.
const checkpointVersion = 1

// Checkpoint is a resumable snapshot of a fixed-grid transient run taken at
// an output grid boundary. It captures everything the solver needs to
// continue bit-exactly: the window and method (to verify the resume
// matches), the last completed grid step, the MNA solution vector, the
// per-capacitor companion-model history, the backward-Euler startup
// counter, and the waveform recorded so far.
//
// Floating-point fields survive the JSON round trip exactly: Go marshals
// float64 with the shortest representation that parses back to the same
// bits.
type Checkpoint struct {
	Version   int     `json:"version"`
	TStop     float64 `json:"tstop"`
	DT        float64 `json:"dt"`
	Method    int     `json:"method"`
	NUnknowns int     `json:"n_unknowns"`
	NCaps     int     `json:"n_caps"`

	Step    int       `json:"step"`     // last completed output grid step; t = Step·DT
	BESteps int       `json:"be_steps"` // remaining backward-Euler startup steps
	X       []float64 `json:"x"`        // MNA solution at the boundary [v; ibranch]
	CapI    []float64 `json:"cap_i"`    // capacitor companion currents, element order

	T       []float64   `json:"t"`
	Labels  []string    `json:"labels"`
	Signals [][]float64 `json:"signals"`

	// MOR, when non-nil, marks a checkpoint written by the reduced-order
	// fast path (reduce.go). X still carries the expanded full-space state,
	// but bit-exact continuation requires restoring the reduced recursion:
	// resume rebuilds the model (deterministic), verifies Fingerprint, and
	// restores (T, V, Z). Resuming such a checkpoint with NoReduction or
	// NoFastPath set is refused — it could not reproduce the original run.
	MOR *MORCheckpoint `json:"mor,omitempty"`
}

// MORCheckpoint is the reduced-order solver state inside a Checkpoint: the
// model-content fingerprint and the reduced coordinates (port values V and
// per-component Krylov coordinates Z) at the boundary.
type MORCheckpoint struct {
	Fingerprint uint64      `json:"fingerprint"`
	T           float64     `json:"t"`
	V           []float64   `json:"v"`
	Z           [][]float64 `json:"z"`
}

// capStates collects the trapezoidal companion history of every capacitor
// in element order — the only element-internal state a transient run
// mutates (inductors and sources keep their history in the branch rows of
// X).
func (c *Circuit) capStates() []float64 {
	var out []float64
	for _, e := range c.elems {
		if cap, ok := e.(*capacitor); ok {
			out = append(out, cap.iPrev)
		}
	}
	return out
}

func (c *Circuit) restoreCapStates(v []float64) error {
	i := 0
	for _, e := range c.elems {
		if cap, ok := e.(*capacitor); ok {
			if i >= len(v) {
				return diag.Domainf("spice.TransientResume", "checkpoint has %d capacitor states, circuit needs more", len(v))
			}
			cap.iPrev = v[i]
			i++
		}
	}
	if i != len(v) {
		return diag.Domainf("spice.TransientResume", "checkpoint has %d capacitor states, circuit has %d capacitors", len(v), i)
	}
	return nil
}

// writeCheckpoint snapshots the run at the current grid boundary and writes
// it atomically (temp file in the same directory, fsync, rename) so a kill
// mid-write leaves the previous checkpoint intact.
func (c *Circuit) writeCheckpoint(opts TranOpts, step, beSteps int, ns *newtonState, res *Result) error {
	cp := &Checkpoint{
		Version:   checkpointVersion,
		TStop:     opts.TStop,
		DT:        opts.DT,
		Method:    int(opts.Method),
		NUnknowns: ns.n,
		NCaps:     len(c.capStates()),
		Step:      step,
		BESteps:   beSteps,
		X:         ns.x,
		CapI:      c.capStates(),
		T:         res.T,
		Labels:    res.Labels,
		Signals:   res.Signals,
	}
	return cp.WriteFile(opts.CheckpointPath)
}

// WriteFile serializes the checkpoint atomically to path.
func (cp *Checkpoint) WriteFile(path string) error {
	data, err := json.Marshal(cp)
	if err != nil {
		return fmt.Errorf("spice: checkpoint encode: %w", err)
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".checkpoint-*")
	if err != nil {
		return fmt.Errorf("spice: checkpoint write: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("spice: checkpoint write: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("spice: checkpoint sync: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("spice: checkpoint close: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("spice: checkpoint rename: %w", err)
	}
	return nil
}

// LoadCheckpoint reads and validates a checkpoint file written by a
// transient run with TranOpts.CheckpointPath set.
func LoadCheckpoint(path string) (*Checkpoint, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("spice: checkpoint read: %w", err)
	}
	cp := &Checkpoint{}
	if err := json.Unmarshal(data, cp); err != nil {
		return nil, fmt.Errorf("spice: checkpoint decode: %w", err)
	}
	if cp.Version != checkpointVersion {
		return nil, diag.Domainf("spice.LoadCheckpoint", "checkpoint version %d, this build reads version %d", cp.Version, checkpointVersion)
	}
	if len(cp.X) != cp.NUnknowns || len(cp.CapI) != cp.NCaps || len(cp.Signals) != len(cp.Labels) {
		return nil, diag.Domainf("spice.LoadCheckpoint", "inconsistent checkpoint: |X|=%d n=%d |CapI|=%d caps=%d", len(cp.X), cp.NUnknowns, len(cp.CapI), cp.NCaps)
	}
	return cp, nil
}

// TransientResume continues a transient run from a checkpoint.
func (c *Circuit) TransientResume(cp *Checkpoint, opts TranOpts, probes ...Probe) (*Result, error) {
	return c.TransientResumeCtx(context.Background(), cp, opts, probes...)
}

// TransientResumeCtx restarts a checkpointed transient run on the same
// circuit, window, and probes, and marches it to completion; the final
// Result is bit-identical to the uninterrupted run's. The checkpoint must
// match the circuit (unknown and capacitor counts), the window (TStop, DT,
// Method), and the probe labels; mismatches fail with typed domain errors
// rather than resuming into garbage. The resumed run honours ctx,
// opts.Limits, and opts.CheckpointPath like a fresh TransientCtx run.
func (c *Circuit) TransientResumeCtx(ctx context.Context, cp *Checkpoint, opts TranOpts, probes ...Probe) (res *Result, err error) {
	defer diag.RecoverTo(&err, "spice.TransientResume")
	if cp == nil {
		return nil, diag.Domainf("spice.TransientResume", "nil checkpoint")
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	opts, err = opts.withDefaults()
	if err != nil {
		return nil, err
	}
	if cp.TStop != opts.TStop || cp.DT != opts.DT || cp.Method != int(opts.Method) {
		return nil, diag.Domainf("spice.TransientResume",
			"checkpoint window (tstop=%g dt=%g method=%d) does not match options (tstop=%g dt=%g method=%d)",
			cp.TStop, cp.DT, cp.Method, opts.TStop, opts.DT, int(opts.Method))
	}
	if cp.NUnknowns != c.NumUnknowns() {
		return nil, diag.Domainf("spice.TransientResume", "checkpoint has %d unknowns, circuit has %d", cp.NUnknowns, c.NumUnknowns())
	}
	if len(cp.Labels) != len(probes) {
		return nil, diag.Domainf("spice.TransientResume", "checkpoint has %d probes, resume requests %d", len(cp.Labels), len(probes))
	}
	for i, p := range probes {
		if p.Label() != cp.Labels[i] {
			return nil, diag.Domainf("spice.TransientResume", "probe %d is %q, checkpoint recorded %q", i, p.Label(), cp.Labels[i])
		}
	}
	if cp.Step < 1 || len(cp.T) != cp.Step+1 {
		return nil, diag.Domainf("spice.TransientResume", "checkpoint at step %d carries %d samples", cp.Step, len(cp.T))
	}

	ns := newNewtonState(c)
	copy(ns.x, cp.X)
	copy(ns.xPrev, cp.X)
	if err := c.restoreCapStates(cp.CapI); err != nil {
		return nil, err
	}

	// Rebuild the Result from the checkpoint, copying so the caller's
	// Checkpoint stays immutable while the run appends.
	nSteps := int(math.Ceil(opts.TStop/opts.DT + 1e-9))
	res = &Result{
		T:       append(make([]float64, 0, nSteps+1), cp.T...),
		Signals: make([][]float64, len(cp.Signals)),
		Labels:  append([]string(nil), cp.Labels...),
	}
	for i, s := range cp.Signals {
		res.Signals[i] = append(make([]float64, 0, nSteps+1), s...)
	}
	if cp.Step >= nSteps {
		return res, nil // the checkpoint already covers the full window
	}
	opts.ctl = runctl.New(ctx, opts.Limits)

	if cp.MOR != nil {
		if opts.NoReduction || opts.NoFastPath {
			return nil, diag.Domainf("spice.TransientResume",
				"checkpoint was written by the reduced-order fast path; resuming with NoReduction/NoFastPath cannot reproduce the run")
		}
		out, rerr, resumed := c.resumeReduced(opts, cp, res, probes, nSteps)
		if resumed {
			return out, rerr
		}
		// The model could not be rebuilt or the reduced continuation bailed
		// out: continue with the full solver from the expanded state. The
		// waveform stays within the reduction tolerance but is no longer
		// bit-identical to the uninterrupted run.
		opts.Report.Record("mor", "resume-fallback", diag.OutcomeSkipped,
			"continuing a reduced checkpoint with the full solver", nil)
	}
	return c.transientLoop(opts, ns, res, probes, cp.Step+1, cp.BESteps)
}

// resumeReduced rebuilds the reduced model for a MOR checkpoint, verifies
// the content fingerprint, restores the reduced state, and continues the
// stride-1 reduced loop. resumed=false means the caller should fall back to
// the full solver.
func (c *Circuit) resumeReduced(opts TranOpts, cp *Checkpoint, res *Result, probes []Probe, nSteps int) (*Result, error, bool) {
	// The model was built from the run's INITIAL state, not the checkpoint
	// state — reconstruct it exactly as TransientCtx did (both paths are
	// deterministic, so the rebuilt model matches the original bit for bit).
	x0 := make([]float64, c.NumUnknowns())
	if opts.UseICs {
		for id, v := range c.ics {
			x0[id] = v
		}
	} else {
		x, err := c.dcOperatingPoint(opts.ctl, DCOpts{Injector: opts.Injector, Report: opts.Report, NoFastPath: opts.NoFastPath})
		if err != nil {
			return nil, nil, false
		}
		copy(x0, x)
	}
	beSteps := 2
	if opts.NoBEStart {
		beSteps = 0
	}
	opts.resumeStride1 = true
	rr, rerr := c.tryReduce(opts, x0, probes, nSteps, beSteps)
	if rerr != nil {
		res.Partial = true
		return res, rerr, true
	}
	if rr == nil {
		return nil, nil, false
	}
	if rr.fp != cp.MOR.Fingerprint {
		return nil, diag.Domainf("spice.TransientResume",
			"checkpoint fingerprint %x does not match the rebuilt reduced model %x — circuit or options changed",
			cp.MOR.Fingerprint, rr.fp), true
	}
	run := rr.model.NewRun()
	if err := run.RestoreState(mor.RunState{T: cp.MOR.T, V: cp.MOR.V, Z: cp.MOR.Z}); err != nil {
		return nil, nil, false
	}
	out, lerr, bailed := c.reducedLoopRun(opts, rr, run, res, probes, nSteps, cp.Step+1, beSteps)
	if bailed {
		morStatFallback.Add(1)
		// Drop any samples the reduced continuation recorded before bailing
		// so the full-solver fallback appends from the boundary.
		res.T = res.T[:cp.Step+1]
		for i := range res.Signals {
			res.Signals[i] = res.Signals[i][:cp.Step+1]
		}
		return nil, nil, false
	}
	return out, lerr, true
}
