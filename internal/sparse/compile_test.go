package sparse

import (
	"math"
	"math/rand"
	"testing"
)

// refCompile is the independent reference for compileCSC: accumulate into a
// map, then emit column-major with sorted rows.
func refCompile(n int, rows, cols []int, vals []float64) map[[2]int]float64 {
	ref := make(map[[2]int]float64)
	for i := range vals {
		ref[[2]int{rows[i], cols[i]}] += vals[i]
	}
	return ref
}

// checkAgainstRef verifies the compiled matrix holds exactly the reference
// entries, column-major with strictly ascending rows and consistent column
// pointers.
func checkAgainstRef(t *testing.T, c *CSC, ref map[[2]int]float64) {
	t.Helper()
	if len(c.I) != len(ref) || len(c.X) != len(ref) {
		t.Fatalf("compiled %d entries, reference has %d", len(c.I), len(ref))
	}
	if len(c.P) != c.N+1 || c.P[0] != 0 || c.P[c.N] != len(c.I) {
		t.Fatalf("bad column pointers: P[0]=%d P[n]=%d nnz=%d", c.P[0], c.P[c.N], len(c.I))
	}
	for j := 0; j < c.N; j++ {
		if c.P[j] > c.P[j+1] {
			t.Fatalf("column %d has negative extent", j)
		}
		for p := c.P[j]; p < c.P[j+1]; p++ {
			if p > c.P[j] && c.I[p] <= c.I[p-1] {
				t.Fatalf("column %d rows not strictly ascending at %d", j, p)
			}
			want, ok := ref[[2]int{c.I[p], j}]
			if !ok {
				t.Fatalf("compiled entry (%d,%d) not in reference", c.I[p], j)
			}
			if math.Abs(c.X[p]-want) > 1e-12*math.Max(math.Abs(want), 1) {
				t.Fatalf("entry (%d,%d) = %g, reference %g", c.I[p], j, c.X[p], want)
			}
		}
	}
}

// TestCompileCSCAdversarialOrderings is the duplicate-handling regression
// suite: mesh stamping produces many duplicates in arbitrary orders, and the
// compile must sum every group regardless of how the input interleaves them.
func TestCompileCSCAdversarialOrderings(t *testing.T) {
	n := 9
	// The base pattern: a 3×3 grid's 5-point stencil, stamped one segment at
	// a time like pdn.Build does, so every diagonal gets several duplicates.
	type ent struct {
		r, c int
		v    float64
	}
	var base []ent
	node := func(x, y int) int { return y*3 + x }
	for y := 0; y < 3; y++ {
		for x := 0; x < 3; x++ {
			i := node(x, y)
			stamp := func(j int) {
				base = append(base,
					ent{i, i, 1}, ent{j, j, 1}, ent{i, j, -1}, ent{j, i, -1})
			}
			if x+1 < 3 {
				stamp(node(x+1, y))
			}
			if y+1 < 3 {
				stamp(node(x, y+1))
			}
		}
	}

	orderings := map[string]func([]ent) []ent{
		"natural": func(e []ent) []ent { return e },
		"reversed": func(e []ent) []ent {
			out := make([]ent, len(e))
			for i := range e {
				out[len(e)-1-i] = e[i]
			}
			return out
		},
		// All copies of each duplicate group adjacent — the easy case the
		// merge must not over-fit to.
		"grouped": func(e []ent) []ent {
			out := make([]ent, 0, len(e))
			seen := make(map[[2]int]bool)
			for _, a := range e {
				k := [2]int{a.r, a.c}
				if seen[k] {
					continue
				}
				seen[k] = true
				for _, b := range e {
					if b.r == a.r && b.c == a.c {
						out = append(out, b)
					}
				}
			}
			return out
		},
		"shuffled": func(e []ent) []ent {
			out := make([]ent, len(e))
			copy(out, e)
			rng := rand.New(rand.NewSource(7))
			rng.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
			return out
		},
	}

	for name, order := range orderings {
		t.Run(name, func(t *testing.T) {
			es := order(base)
			rows := make([]int, len(es))
			cols := make([]int, len(es))
			vals := make([]float64, len(es))
			for i, e := range es {
				rows[i], cols[i], vals[i] = e.r, e.c, float64(i%5)/4+e.v
			}
			c := compileCSC(n, rows, cols, vals)
			checkAgainstRef(t, c, refCompile(n, rows, cols, vals))
		})
	}
}

// TestCompileCSCDegenerate covers duplicate-heavy corner shapes: every entry
// the same coordinate, a single column, cancellation to explicit zeros
// (duplicates summing to 0 must keep their slot — frozen replays restamp
// them), and the empty matrix.
func TestCompileCSCDegenerate(t *testing.T) {
	// 100 stamps on one coordinate.
	rows := make([]int, 100)
	cols := make([]int, 100)
	vals := make([]float64, 100)
	for i := range vals {
		rows[i], cols[i], vals[i] = 2, 3, 0.5
	}
	c := compileCSC(5, rows, cols, vals)
	if c.NNZ() != 1 || math.Abs(c.At(2, 3)-50) > 1e-12 {
		t.Fatalf("100 duplicate stamps: nnz=%d value=%g, want 1 / 50", c.NNZ(), c.At(2, 3))
	}

	// Duplicates that cancel exactly still occupy a pattern slot.
	c = compileCSC(2, []int{0, 0, 1}, []int{0, 0, 1}, []float64{3, -3, 1})
	if c.NNZ() != 2 {
		t.Fatalf("cancelled duplicate dropped from pattern: nnz=%d, want 2", c.NNZ())
	}
	if c.At(0, 0) != 0 {
		t.Fatalf("cancelled duplicate sums to %g, want 0", c.At(0, 0))
	}

	// Empty input.
	c = compileCSC(3, nil, nil, nil)
	if c.NNZ() != 0 || len(c.P) != 4 {
		t.Fatalf("empty compile: nnz=%d len(P)=%d", c.NNZ(), len(c.P))
	}
}

// TestCompileCSCFrozenReplayWithDuplicates pins the contract the PDN AC
// sweep rests on: a frozen triplet replaying a duplicate-heavy stamp
// sequence with new values updates the compiled CSC to exactly what a fresh
// compile of those values would produce.
func TestCompileCSCFrozenReplayWithDuplicates(t *testing.T) {
	n := 6
	stamp := func(tr *Triplet, scale float64) {
		for i := 0; i < n; i++ {
			tr.Add(i, i, 2*scale)
			if i+1 < n {
				// Segment stamps: each diagonal receives duplicates from both
				// neighbors, off-diagonals stay unique.
				tr.Add(i, i, scale)
				tr.Add(i+1, i+1, scale)
				tr.Add(i, i+1, -scale)
				tr.Add(i+1, i, -scale)
			}
		}
	}
	tr := NewTriplet(n)
	stamp(tr, 1)
	a := tr.Compile()

	tr.Reset()
	stamp(tr, 2.5)

	fresh := NewTriplet(n)
	stamp(fresh, 2.5)
	want := fresh.Compile()

	for j := 0; j < n; j++ {
		for p := want.P[j]; p < want.P[j+1]; p++ {
			if got := a.At(want.I[p], j); got != want.X[p] {
				t.Fatalf("replayed (%d,%d) = %g, fresh compile %g", want.I[p], j, got, want.X[p])
			}
		}
	}
	if a.NNZ() != want.NNZ() {
		t.Fatalf("replayed nnz %d != fresh %d", a.NNZ(), want.NNZ())
	}
}
