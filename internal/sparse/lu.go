package sparse

import (
	"fmt"
	"math"

	"rlcint/internal/diag"
)

// ErrSingular is returned when no usable pivot can be found in a column.
// It wraps diag.ErrSingularJacobian, so callers can match either sentinel.
var ErrSingular = fmt.Errorf("sparse: singular matrix: %w", diag.ErrSingularJacobian)

// PivotError reports the structural location of a factorization breakdown.
// It wraps ErrSingular (and transitively diag.ErrSingularJacobian).
type PivotError struct {
	Col int // column with no usable pivot
}

// Error implements the error interface.
func (e *PivotError) Error() string {
	return fmt.Sprintf("%v: no pivot in column %d", ErrSingular, e.Col)
}

// Unwrap makes errors.Is(err, ErrSingular) match.
func (e *PivotError) Unwrap() error { return ErrSingular }

// ErrRefactorUnhealthy is returned by Refactorize when replaying the stored
// pivot sequence is numerically unsafe (zero, tiny, or non-finite pivot).
// Callers recover by falling back to a fresh full Factorize, which re-runs
// the symbolic analysis and pivot search on the current values.
var ErrRefactorUnhealthy = fmt.Errorf("sparse: refactorization numerically unhealthy")

// RefactorError reports where and why a numeric-only refactorization
// declined to reuse the cached pivot sequence. It wraps
// ErrRefactorUnhealthy, NOT ErrSingular: the matrix may be perfectly
// factorable under fresh pivoting.
type RefactorError struct {
	Col    int     // column whose reused pivot degraded
	Pivot  float64 // the degraded pivot value
	ColMax float64 // largest magnitude seen in that column's pattern
}

// Error implements the error interface.
func (e *RefactorError) Error() string {
	return fmt.Sprintf("%v: pivot %g (column max %g) in column %d",
		ErrRefactorUnhealthy, e.Pivot, e.ColMax, e.Col)
}

// Unwrap makes errors.Is(err, ErrRefactorUnhealthy) match.
func (e *RefactorError) Unwrap() error { return ErrRefactorUnhealthy }

// refactorPivRel is the pivot-health threshold of Refactorize: a reused
// pivot smaller than this fraction of its column's largest magnitude trips
// the fallback to full factorization. The value is deliberately loose — it
// catches genuine degradation (orders of magnitude of growth) without
// rejecting the mild drift every Newton iteration produces.
const refactorPivRel = 1e-12

// Ordering selects the fill-reducing ordering strategy of Factorize.
type Ordering int

const (
	// OrderAuto (the default) applies the AMD ordering to systems with at
	// least amdAutoMin unknowns and factors smaller ones in natural order.
	OrderAuto Ordering = iota
	// OrderNatural factors the matrix as given (the pre-ordering behaviour).
	OrderNatural
	// OrderAMD always applies the approximate-minimum-degree ordering.
	OrderAMD
)

// amdAutoMin is the size below which OrderAuto skips the AMD pass: for a
// handful of unknowns the permutation plumbing costs more than any fill it
// could save.
const amdAutoMin = 8

// String names the ordering for stats and logs.
func (o Ordering) String() string {
	switch o {
	case OrderNatural:
		return "natural"
	case OrderAMD:
		return "amd"
	default:
		return "auto"
	}
}

// FactorStats reports the shape of the most recent successful factorization:
// how much fill the factors carry and which ordering produced them.
type FactorStats struct {
	N         int     `json:"n"`          // unknowns
	NNZ       int     `json:"nnz"`        // nonzeros of the input matrix
	NNZL      int     `json:"nnz_l"`      // nonzeros of L (including the unit diagonal)
	NNZU      int     `json:"nnz_u"`      // nonzeros of U (including the diagonal)
	FillRatio float64 `json:"fill_ratio"` // nnz(L+U) / nnz(A)
	Ordering  string  `json:"ordering"`   // "natural" or "amd"
}

// LU holds the factors P*(QᵀAQ)*... = L*U produced by Factorize, where Q is
// the fill-reducing ordering (identity in natural order) and P the row
// pivoting. L has unit diagonal (stored explicitly as the first entry of
// each column); U stores each column's diagonal as its last entry. Row
// indices of both factors are in pivotal (permuted) coordinates.
type LU struct {
	n        int
	lp       []int
	li       []int
	lx       []float64
	up       []int
	ui       []int
	ux       []float64
	pinv     []int // pinv[factored-matrix row] = pivot position
	workX    []float64
	workXi   []int
	workPst  []int
	workMark []bool
	// Symbolic-cache state: a successful Factorize records the pattern of
	// L/U and the pivot sequence implicitly in (lp, li, up, ui, pinv);
	// symbolic marks them valid and symNNZ remembers the input pattern size
	// so Refactorize can reject a structurally different matrix.
	symbolic bool
	symNNZ   int

	// Fill-reducing ordering state. q (new index -> original) and qinv are
	// nil when the last factorization ran in natural order. pa is the
	// workspace-owned permuted copy the numeric core factors; pinv2 is the
	// composed scatter permutation pinv∘qinv so Refactorize and Solve touch
	// original-coordinate inputs directly. aP/aI cache the input pattern so
	// a repeated Factorize on the same structure reuses the ordering (and
	// allocates nothing).
	ord   Ordering
	q     []int
	qinv  []int
	pinv2 []int
	pa    *CSC
	aP    []int
	aI    []int
	workS []float64 // solve scratch for the ordered path
	stats FactorStats
}

// Workspace returns a reusable LU sized for n unknowns. Repeated Factorize
// calls reuse all internal buffers.
func Workspace(n int) *LU {
	return &LU{
		n:        n,
		lp:       make([]int, n+1),
		up:       make([]int, n+1),
		pinv:     make([]int, n),
		workX:    make([]float64, n),
		workXi:   make([]int, 2*n),
		workPst:  make([]int, n),
		workMark: make([]bool, n),
	}
}

// SetOrdering selects the fill-reducing ordering strategy for subsequent
// Factorize calls (existing factors are unaffected). The default is
// OrderAuto.
func (f *LU) SetOrdering(o Ordering) { f.ord = o }

// Stats reports the shape of the factors from the last successful Factorize
// or Refactorize (the zero value before any).
func (f *LU) Stats() FactorStats { return f.stats }

// origCol maps a column of the factored (possibly permuted) matrix back to
// the caller's coordinates, so errors name columns the caller recognizes.
func (f *LU) origCol(k int) int {
	if f.q != nil {
		return f.q[k]
	}
	return k
}

// samePattern reports whether a's sparsity pattern matches the one cached by
// the last ordering pass.
func (f *LU) samePattern(a *CSC) bool {
	if f.aP == nil || len(f.aI) != a.NNZ() {
		return false
	}
	for i, v := range a.P {
		if f.aP[i] != v {
			return false
		}
	}
	for i, v := range a.I {
		if f.aI[i] != v {
			return false
		}
	}
	return true
}

// applyOrdering prepares the AMD-permuted copy of a in f.pa: on a new
// pattern it runs the ordering and rebuilds the permuted structure; on the
// cached pattern it only rescatters the values (no allocation). The
// permuted matrix is B[i,j] = A[q[i], q[j]] — a symmetric permutation, so
// MNA diagonals stay on the diagonal and threshold pivoting keeps working.
func (f *LU) applyOrdering(a *CSC) {
	n := f.n
	if !f.samePattern(a) {
		f.q = amdOrder(a)
		if f.qinv == nil {
			f.qinv = make([]int, n)
			f.pinv2 = make([]int, n)
			f.workS = make([]float64, n)
		}
		for k, orig := range f.q {
			f.qinv[orig] = k
		}
		nnz := a.NNZ()
		if f.pa == nil || cap(f.pa.I) < nnz {
			f.pa = &CSC{N: n, P: make([]int, n+1), I: make([]int, nnz), X: make([]float64, nnz)}
		}
		f.pa.I = f.pa.I[:nnz]
		f.pa.X = f.pa.X[:nnz]
		f.aP = append(f.aP[:0], a.P...)
		f.aI = append(f.aI[:0], a.I...)
		pos := 0
		for newj := 0; newj < n; newj++ {
			f.pa.P[newj] = pos
			j := f.q[newj]
			for p := a.P[j]; p < a.P[j+1]; p++ {
				f.pa.I[pos] = f.qinv[a.I[p]]
				f.pa.X[pos] = a.X[p]
				pos++
			}
		}
		f.pa.P[n] = pos
		return
	}
	// Same structure: only the values moved. Scatter them through the cached
	// permutation without touching the ordering.
	pos := 0
	for newj := 0; newj < n; newj++ {
		j := f.q[newj]
		for p := a.P[j]; p < a.P[j+1]; p++ {
			f.pa.X[pos] = a.X[p]
			pos++
		}
	}
}

// Factorize computes the LU factorization of a with partial pivoting using
// the left-looking Gilbert–Peierls algorithm, after applying the configured
// fill-reducing ordering (AMD by default for systems of amdAutoMin unknowns
// or more — see SetOrdering). pivTol in (0,1] relaxes pivoting toward the
// diagonal (1 = strict partial pivoting); MNA systems typically use a
// relaxed tolerance to preserve sparsity, but strictness is the safe
// default.
func (f *LU) Factorize(a *CSC, pivTol float64) error {
	if a.N != f.n {
		return fmt.Errorf("sparse: Factorize dimension %d != workspace %d", a.N, f.n)
	}
	if pivTol <= 0 || pivTol > 1 {
		pivTol = 1
	}
	f.symbolic = false
	m := a
	if f.ord == OrderAMD || (f.ord == OrderAuto && f.n >= amdAutoMin) {
		f.applyOrdering(a)
		m = f.pa
	} else {
		f.q = nil
	}
	if err := f.factorizeCore(m, pivTol); err != nil {
		return err
	}
	if f.q != nil {
		for i := 0; i < f.n; i++ {
			f.pinv2[i] = f.pinv[f.qinv[i]]
		}
	}
	f.symbolic = true
	f.symNNZ = a.NNZ()
	f.recordStats(a)
	return nil
}

func (f *LU) recordStats(a *CSC) {
	ordering := "natural"
	if f.q != nil {
		ordering = "amd"
	}
	f.stats = FactorStats{
		N: f.n, NNZ: a.NNZ(), NNZL: len(f.lx), NNZU: len(f.ux),
		FillRatio: float64(len(f.lx)+len(f.ux)) / float64(max(a.NNZ(), 1)),
		Ordering:  ordering,
	}
}

// factorizeCore runs the numeric left-looking factorization of m (the
// caller's matrix, or its AMD-permuted copy).
func (f *LU) factorizeCore(a *CSC, pivTol float64) error {
	n := f.n
	f.li = f.li[:0]
	f.lx = f.lx[:0]
	f.ui = f.ui[:0]
	f.ux = f.ux[:0]
	for i := range f.pinv {
		f.pinv[i] = -1
		f.workX[i] = 0
		f.workMark[i] = false
	}
	for k := 0; k < n; k++ {
		f.lp[k] = len(f.lx)
		f.up[k] = len(f.ux)
		top, err := f.spsolve(a, k)
		if err != nil {
			return err
		}
		// Select pivot among rows that are not yet pivotal, noting the
		// diagonal candidate in the same pass (relaxed-pivTol factorization
		// used to rescan the candidate list for it).
		ipiv := -1
		amax := -1.0
		var diagCand float64
		diagRow := -1
		for p := top; p < n; p++ {
			i := f.workXi[p]
			if f.pinv[i] < 0 {
				v := math.Abs(f.workX[i])
				if v > amax {
					amax, ipiv = v, i
				}
				if i == k {
					diagCand, diagRow = v, i
				}
			}
		}
		if ipiv < 0 || amax == 0 {
			return &PivotError{Col: f.origCol(k)}
		}
		// Prefer the diagonal entry when it is within pivTol of the largest
		// candidate (threshold pivoting).
		if pivTol < 1 && diagRow >= 0 && diagCand >= pivTol*amax {
			ipiv = diagRow
		}
		pivot := f.workX[ipiv]
		// Emit U entries (rows already pivotal) and this column's diagonal.
		for p := top; p < n; p++ {
			i := f.workXi[p]
			if f.pinv[i] >= 0 {
				f.ui = append(f.ui, f.pinv[i])
				f.ux = append(f.ux, f.workX[i])
			}
		}
		f.ui = append(f.ui, k)
		f.ux = append(f.ux, pivot)
		// Emit L column: unit diagonal first, then subdiagonal entries.
		f.pinv[ipiv] = k
		f.li = append(f.li, ipiv)
		f.lx = append(f.lx, 1)
		for p := top; p < n; p++ {
			i := f.workXi[p]
			if f.pinv[i] < 0 {
				f.li = append(f.li, i)
				f.lx = append(f.lx, f.workX[i]/pivot)
			}
			f.workX[i] = 0 // clear for next column
		}
	}
	f.lp[n] = len(f.lx)
	f.up[n] = len(f.ux)
	// Map L's row indices into pivotal coordinates so Solve can run plain
	// triangular substitutions.
	for p := range f.li {
		f.li[p] = f.pinv[f.li[p]]
	}
	return nil
}

// Symbolic reports whether the workspace holds a valid symbolic analysis
// (L/U pattern and pivot sequence) from a previous successful Factorize.
func (f *LU) Symbolic() bool { return f.symbolic }

// Refactorize recomputes the numeric values of L and U for a matrix with
// the SAME sparsity pattern as the one last passed to a successful
// Factorize, replaying the stored elimination pattern and pivot sequence
// with no symbolic DFS and no pivot search — the KLU/SPICE "refactor" step
// that makes repeated Newton factorizations cheap. It performs no
// allocation.
//
// When the stored pivots agree with what a fresh Factorize would select,
// the numeric result is bit-identical to a full factorization: the
// elimination replays the exact same operations in the exact same order.
//
// A pivot-health guard watches every reused pivot; a zero, non-finite, or
// relatively tiny pivot aborts with a *RefactorError (matching
// ErrRefactorUnhealthy), leaving the factors invalid for Solve until the
// caller falls back to a full Factorize.
func (f *LU) Refactorize(a *CSC) error {
	if !f.symbolic {
		return fmt.Errorf("sparse: Refactorize without a prior successful Factorize")
	}
	if a.N != f.n {
		return fmt.Errorf("sparse: Refactorize dimension %d != workspace %d", a.N, f.n)
	}
	if a.NNZ() != f.symNNZ {
		return fmt.Errorf("sparse: Refactorize pattern has %d nonzeros, symbolic analysis has %d", a.NNZ(), f.symNNZ)
	}
	n := f.n
	x := f.workX // dense accumulator in pivotal row coordinates; all-zero between columns
	// In the ordered path, column k of the factored matrix is column q[k] of
	// a, and the composed permutation pinv2 scatters original-coordinate
	// rows straight into pivotal positions — no permuted copy is built.
	scat, colOf := f.pinv, f.q
	if colOf != nil {
		scat = f.pinv2
	}
	for k := 0; k < n; k++ {
		j := k
		if colOf != nil {
			j = colOf[k]
		}
		// Scatter A(:,j) into pivotal coordinates.
		for p := a.P[j]; p < a.P[j+1]; p++ {
			x[scat[a.I[p]]] = a.X[p]
		}
		// Eliminate with the already-finished columns of L in the stored
		// (topological) order: the U entries of column k, excluding the
		// diagonal held last.
		uend := f.up[k+1] - 1
		cmax := 0.0
		for p := f.up[k]; p < uend; p++ {
			j := f.ui[p]
			xj := x[j]
			f.ux[p] = xj
			if v := math.Abs(xj); v > cmax {
				cmax = v
			}
			if xj != 0 {
				for q := f.lp[j] + 1; q < f.lp[j+1]; q++ {
					x[f.li[q]] -= f.lx[q] * xj
				}
			}
			x[j] = 0
		}
		pivot := x[f.ui[uend]] // ui[uend] == k: the diagonal slot
		f.ux[uend] = pivot
		x[k] = 0
		if v := math.Abs(pivot); v > cmax {
			cmax = v
		}
		// L column: unit diagonal stored first, subdiagonals divided by the
		// reused pivot.
		lend := f.lp[k+1]
		for q := f.lp[k] + 1; q < lend; q++ {
			v := x[f.li[q]]
			x[f.li[q]] = 0
			if m := math.Abs(v); m > cmax {
				cmax = m
			}
			f.lx[q] = v / pivot
		}
		// Pivot health: refuse zero, non-finite, or collapsed pivots. The
		// workX entries touched by this column are already cleared, so a
		// later full Factorize starts from a clean workspace.
		if pa := math.Abs(pivot); pa == 0 || math.IsNaN(pivot) || pa < refactorPivRel*cmax || math.IsInf(pivot, 0) {
			f.symbolic = false
			return &RefactorError{Col: f.origCol(k), Pivot: pivot, ColMax: cmax}
		}
	}
	return nil
}

// spsolve solves L*x = A(:,k) for the sparse x used by column k of the
// factorization. It returns top: workXi[top:n] lists x's nonzero pattern in
// topological order; values live in workX (in original row coordinates).
func (f *LU) spsolve(a *CSC, k int) (int, error) {
	n := f.n
	top := n
	// DFS from every nonzero of A(:,k).
	for p := a.P[k]; p < a.P[k+1]; p++ {
		if !f.workMark[a.I[p]] {
			top = f.dfs(a.I[p], top)
		}
	}
	// Unmark (pattern list doubles as the touched list).
	for p := top; p < n; p++ {
		f.workMark[f.workXi[p]] = false
	}
	// Scatter the right-hand side.
	for p := a.P[k]; p < a.P[k+1]; p++ {
		f.workX[a.I[p]] = a.X[p]
	}
	// Numeric sparse forward solve in topological order.
	for px := top; px < n; px++ {
		j := f.workXi[px]
		jn := f.pinv[j]
		if jn < 0 {
			continue // row not yet pivotal: no L column to eliminate with
		}
		xj := f.workX[j] // L diagonal is 1, no division needed
		for p := f.lp[jn] + 1; p < f.lp[jn+1]; p++ {
			f.workX[f.li[p]] -= f.lx[p] * xj
		}
	}
	return top, nil
}

// dfs performs an iterative depth-first search from node j through the
// structure of the already-computed L columns, writing finished nodes into
// workXi[top-1], workXi[top-2], ... in reverse topological order and
// returning the new top. The DFS stack shares workXi's front: the stack
// holds only unfinished (marked, not yet emitted) nodes while the output
// region holds finished ones, so stack head < top always (the CSparse
// invariant) and the regions never collide.
func (f *LU) dfs(j, top int) int {
	xi := f.workXi
	head := 0
	xi[0] = j
	for head >= 0 {
		j = xi[head]
		jn := f.pinv[j]
		if !f.workMark[j] {
			f.workMark[j] = true
			if jn < 0 {
				f.workPst[head] = 0
			} else {
				f.workPst[head] = f.lp[jn] + 1
			}
		}
		done := true
		if jn >= 0 {
			end := f.lp[jn+1]
			for p := f.workPst[head]; p < end; p++ {
				i := f.li[p]
				if f.workMark[i] {
					continue
				}
				f.workPst[head] = p + 1
				head++
				xi[head] = i
				done = false
				break
			}
		}
		if done {
			head--
			top--
			xi[top] = j
		}
	}
	return top
}

// Solve solves A*x = b using the current factorization; b is not modified.
func (f *LU) Solve(b []float64) ([]float64, error) {
	if len(b) != f.n {
		return nil, fmt.Errorf("sparse: Solve rhs length %d != %d", len(b), f.n)
	}
	x := make([]float64, f.n)
	f.SolveInto(x, b)
	return x, nil
}

// SolveInto solves A*x = b writing into x; x and b must have length n and
// may not alias.
func (f *LU) SolveInto(x, b []float64) {
	n := f.n
	// With a fill-reducing ordering in effect the triangular solves run in
	// permuted coordinates on an internal scratch vector, and the result is
	// gathered back through q; without one they run directly in x.
	y := x
	if f.q != nil {
		y = f.workS
		for i := 0; i < n; i++ {
			y[f.pinv2[i]] = b[i]
		}
	} else {
		// Apply row permutation: y[pinv[i]] = b[i].
		for i := 0; i < n; i++ {
			y[f.pinv[i]] = b[i]
		}
	}
	// Forward solve L*y = Pb (unit diagonal first entry per column).
	for j := 0; j < n; j++ {
		xj := y[j]
		if xj == 0 {
			continue
		}
		for p := f.lp[j] + 1; p < f.lp[j+1]; p++ {
			y[f.li[p]] -= f.lx[p] * xj
		}
	}
	// Back solve U*x = y (diagonal last entry per column).
	for j := n - 1; j >= 0; j-- {
		y[j] /= f.ux[f.up[j+1]-1]
		xj := y[j]
		if xj == 0 {
			continue
		}
		for p := f.up[j]; p < f.up[j+1]-1; p++ {
			y[f.ui[p]] -= f.ux[p] * xj
		}
	}
	if f.q != nil {
		for j := 0; j < n; j++ {
			x[f.q[j]] = y[j]
		}
	}
}
