package sparse

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

// perturb returns a copy of the system with every value nudged by up to
// rel·|v| — the same sparsity pattern with slightly different numerics,
// which is exactly what consecutive Newton iterations hand the solver.
func perturb(r *rand.Rand, a *CSC, rel float64) *CSC {
	out := &CSC{N: a.N, P: a.P, I: a.I, X: make([]float64, len(a.X))}
	for i, v := range a.X {
		out.X[i] = v * (1 + rel*(r.Float64()*2-1))
	}
	return out
}

// TestRefactorizeMatchesFactorize solves the same perturbed systems through
// Refactorize and through a fresh full Factorize: as long as the pivot
// sequence stays valid, both must produce solutions that agree to machine
// roundoff (and identical bits when the values are unchanged).
func TestRefactorizeMatchesFactorize(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		n := 5 + r.Intn(40)
		a, b := randomSystem(r, n, 0.15)
		lu := Workspace(n)
		if err := lu.Factorize(a, 1e-3); err != nil {
			t.Fatalf("trial %d: factorize: %v", trial, err)
		}
		want := make([]float64, n)
		lu.SolveInto(want, b)

		// Same values through Refactorize: bit-identical factors and solve.
		if err := lu.Refactorize(a); err != nil {
			t.Fatalf("trial %d: refactorize (unchanged): %v", trial, err)
		}
		got := make([]float64, n)
		lu.SolveInto(got, b)
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("trial %d: refactorize with unchanged values altered solution at %d: %g != %g",
					trial, i, got[i], want[i])
			}
		}

		// Perturbed values: compare against an independent full factorization.
		ap := perturb(r, a, 1e-3)
		if err := lu.Refactorize(ap); err != nil {
			t.Fatalf("trial %d: refactorize (perturbed): %v", trial, err)
		}
		lu.SolveInto(got, b)
		ref := Workspace(n)
		if err := ref.Factorize(ap, 1e-3); err != nil {
			t.Fatalf("trial %d: reference factorize: %v", trial, err)
		}
		refX := make([]float64, n)
		ref.SolveInto(refX, b)
		for i := range got {
			scale := math.Max(math.Abs(refX[i]), 1)
			if math.Abs(got[i]-refX[i]) > 1e-10*scale {
				t.Fatalf("trial %d: perturbed refactorize solution off at %d: %g vs %g",
					trial, i, got[i], refX[i])
			}
		}
	}
}

// TestRefactorizeHealthGuard drives the stored pivot sequence into the
// ground — the diagonal entry the sequence relies on collapses to zero —
// and requires a typed ErrRefactorUnhealthy instead of silently garbage
// factors, with the symbolic state invalidated so the next call goes
// through a full factorization.
func TestRefactorizeHealthGuard(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	a, b := randomSystem(r, 12, 0.3)
	lu := Workspace(12)
	if err := lu.Factorize(a, 1e-3); err != nil {
		t.Fatal(err)
	}
	if !lu.Symbolic() {
		t.Fatal("Symbolic() false after successful factorization")
	}
	// Kill a diagonal: with diagonal dominance gone and the stored pivots
	// forced, the health check must trip on the dead pivot.
	bad := &CSC{N: a.N, P: a.P, I: a.I, X: append([]float64(nil), a.X...)}
	for j := 0; j < bad.N; j++ {
		for p := bad.P[j]; p < bad.P[j+1]; p++ {
			if bad.I[p] == j {
				bad.X[p] = 0
			}
		}
	}
	err := lu.Refactorize(bad)
	if err == nil {
		t.Fatal("refactorize accepted a matrix with a zeroed diagonal")
	}
	if !errors.Is(err, ErrRefactorUnhealthy) {
		t.Fatalf("error %v is not ErrRefactorUnhealthy", err)
	}
	var re *RefactorError
	if !errors.As(err, &re) {
		t.Fatalf("error %v carries no *RefactorError detail", err)
	}
	if lu.Symbolic() {
		t.Fatal("Symbolic() still true after an unhealthy refactorization")
	}
	// Recovery: a full factorization of the original matrix works again.
	if err := lu.Factorize(a, 1e-3); err != nil {
		t.Fatalf("recovery factorize: %v", err)
	}
	x := make([]float64, 12)
	lu.SolveInto(x, b)
	res := a.MulVec(x)
	for i := range res {
		if math.Abs(res[i]-b[i]) > 1e-9 {
			t.Fatalf("recovered solve residual %g at row %d", res[i]-b[i], i)
		}
	}
}

// TestRefactorizeRejectsMismatch covers the contract checks: no symbolic
// state, wrong dimension, wrong nonzero count.
func TestRefactorizeRejectsMismatch(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	a, _ := randomSystem(r, 8, 0.3)
	lu := Workspace(8)
	if err := lu.Refactorize(a); err == nil {
		t.Fatal("refactorize without a prior factorization succeeded")
	}
	if err := lu.Factorize(a, 1e-3); err != nil {
		t.Fatal(err)
	}
	other, _ := randomSystem(r, 9, 0.3)
	if err := lu.Refactorize(other); err == nil {
		t.Fatal("refactorize accepted a differently sized matrix")
	}
}

// TestRefactorizeAllocFree pins the hot-loop property the transient solver
// relies on: numeric-only refactorization performs no allocation.
func TestRefactorizeAllocFree(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	a, _ := randomSystem(r, 30, 0.15)
	lu := Workspace(30)
	if err := lu.Factorize(a, 1e-3); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(50, func() {
		if err := lu.Refactorize(a); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("Refactorize allocates %.0f objects/op, want 0", allocs)
	}
}

// TestTripletSeekPartialReplay replays only a subset of the stamp sequence
// after freezing — the partitioned-assembly pattern: Reset, then Seek to an
// element's recorded range and restamp just that range.
func TestTripletSeekPartialReplay(t *testing.T) {
	tr := NewTriplet(3)
	// "Element 1": entries 0-1; "element 2": entries 2-3.
	m0 := tr.Mark()
	tr.Add(0, 0, 1)
	tr.Add(0, 1, 2)
	m1 := tr.Mark()
	tr.Add(1, 1, 3)
	tr.Add(2, 2, 4)
	c := tr.Compile()
	if !tr.Frozen() {
		t.Fatal("Compile did not freeze the pattern")
	}

	// Full replay keeps values.
	tr.Reset()
	tr.Seek(m0)
	tr.Add(0, 0, 10)
	tr.Add(0, 1, 20)
	tr.Seek(m1)
	tr.Add(1, 1, 30)
	tr.Add(2, 2, 40)
	if c.At(0, 0) != 10 || c.At(1, 1) != 30 || c.At(2, 2) != 40 {
		t.Fatalf("full replay wrong: %v", c.X)
	}

	// Partial replay: zero everything, restamp only element 2's range.
	tr.Reset()
	tr.Seek(m1)
	tr.Add(1, 1, 7)
	tr.Add(2, 2, 8)
	if c.At(0, 0) != 0 || c.At(0, 1) != 0 || c.At(1, 1) != 7 || c.At(2, 2) != 8 {
		t.Fatalf("partial replay wrong: %v", c.X)
	}

	// Deviating from the frozen order must panic loudly, not corrupt slots.
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-order frozen Add did not panic")
		}
	}()
	tr.Seek(m0)
	tr.Add(2, 2, 1)
}

// TestGaxpyWith checks y += A'·x against a straightforward dense product.
func TestGaxpyWith(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	a, _ := randomSystem(r, 15, 0.2)
	vals := make([]float64, a.NNZ())
	for i := range vals {
		vals[i] = r.Float64()*2 - 1
	}
	x := make([]float64, a.N)
	for i := range x {
		x[i] = r.Float64()*2 - 1
	}
	x[3] = 0 // exercise the zero-column skip
	y := make([]float64, a.N)
	for i := range y {
		y[i] = float64(i)
	}
	want := append([]float64(nil), y...)
	for j := 0; j < a.N; j++ {
		for p := a.P[j]; p < a.P[j+1]; p++ {
			want[a.I[p]] += vals[p] * x[j]
		}
	}
	a.GaxpyWith(vals, x, y)
	for i := range y {
		if y[i] != want[i] {
			t.Fatalf("GaxpyWith wrong at %d: %g != %g", i, y[i], want[i])
		}
	}
}
