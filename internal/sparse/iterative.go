package sparse

import (
	"fmt"
	"math"
)

// ErrIterativeStalled is returned when an iterative solve fails to reach the
// requested tolerance within its iteration budget, or breaks down (loss of
// positive-definiteness in CG, a zero Arnoldi vector in GMRES). The Engine
// treats it as a signal to fall back to the direct solver.
var ErrIterativeStalled = fmt.Errorf("sparse: iterative solver stalled")

// preconditioner is the contract shared by ic0 and ilu0: refreshable
// in-place numeric values over a frozen pattern, allocation-free apply.
type preconditioner interface {
	Refresh(a *CSC) error
	Apply(z, r []float64)
}

func dot(a, b []float64) float64 {
	s := 0.0
	for i, v := range a {
		s += v * b[i]
	}
	return s
}

func norm2(a []float64) float64 { return math.Sqrt(dot(a, a)) }

// axpy computes y += alpha*x.
func axpy(y []float64, alpha float64, x []float64) {
	for i, v := range x {
		y[i] += alpha * v
	}
}

// cgWork holds the preallocated vectors of a preconditioned
// conjugate-gradient solve.
type cgWork struct {
	r, z, p, q []float64
}

func newCGWork(n int) *cgWork {
	return &cgWork{
		r: make([]float64, n), z: make([]float64, n),
		p: make([]float64, n), q: make([]float64, n),
	}
}

// solve runs preconditioned CG on a·x = b from x = 0, stopping when
// ‖r‖₂ ≤ tol·‖b‖₂ or maxIter iterations have run. It returns the iteration
// count and final relative residual; a breakdown (the matrix or the
// preconditioner is not positive definite on the Krylov space) or running
// out of iterations reports ErrIterativeStalled. Allocation-free.
func (w *cgWork) solve(a *CSC, m preconditioner, x, b []float64, tol float64, maxIter int) (int, float64, error) {
	n := a.N
	for i := 0; i < n; i++ {
		x[i] = 0
	}
	bnorm := norm2(b)
	if bnorm == 0 {
		return 0, 0, nil
	}
	copy(w.r, b)
	m.Apply(w.z, w.r)
	copy(w.p, w.z)
	rz := dot(w.r, w.z)
	rn := bnorm
	for it := 1; it <= maxIter; it++ {
		a.MulVecInto(w.q, w.p)
		pq := dot(w.p, w.q)
		if !(pq > 0) {
			return it, rn / bnorm, fmt.Errorf("%w: CG breakdown pᵀAp=%g at iteration %d", ErrIterativeStalled, pq, it)
		}
		alpha := rz / pq
		axpy(x, alpha, w.p)
		axpy(w.r, -alpha, w.q)
		rn = norm2(w.r)
		if rn <= tol*bnorm {
			return it, rn / bnorm, nil
		}
		m.Apply(w.z, w.r)
		rzNew := dot(w.r, w.z)
		if !(rzNew > 0) || math.IsInf(rzNew, 0) {
			return it, rn / bnorm, fmt.Errorf("%w: CG breakdown rᵀz=%g at iteration %d", ErrIterativeStalled, rzNew, it)
		}
		beta := rzNew / rz
		rz = rzNew
		for i := 0; i < n; i++ {
			w.p[i] = w.z[i] + beta*w.p[i]
		}
	}
	return maxIter, rn / bnorm, fmt.Errorf("%w: CG did not converge in %d iterations (relres %.3g)", ErrIterativeStalled, maxIter, rn/bnorm)
}

// gmresWork holds the preallocated Krylov basis and Hessenberg factorization
// state of a restarted GMRES solve with restart length m.
type gmresWork struct {
	m      int
	v      [][]float64 // m+1 basis vectors of length n
	h      []float64   // Hessenberg column-major: h[i + k*(m+1)], i ≤ k+1
	cs, sn []float64   // Givens rotations
	g      []float64   // rotated residual vector, len m+1
	y      []float64   // triangular solve result
	tmp    []float64   // M⁻¹ scratch
	r      []float64
}

func newGMRESWork(n, m int) *gmresWork {
	w := &gmresWork{
		m:  m,
		v:  make([][]float64, m+1),
		h:  make([]float64, (m+1)*m),
		cs: make([]float64, m), sn: make([]float64, m),
		g: make([]float64, m+1), y: make([]float64, m),
		tmp: make([]float64, n), r: make([]float64, n),
	}
	for i := range w.v {
		w.v[i] = make([]float64, n)
	}
	return w
}

// solve runs right-preconditioned restarted GMRES(m) on a·x = b from x = 0:
// the Krylov space is built for A·M⁻¹ so the recurrence's residual is the
// true residual and the stopping test needs no extra matvec. Stops when
// ‖r‖₂ ≤ tol·‖b‖₂ or after maxIter total inner iterations; both stagnation
// and a non-finite Arnoldi norm report ErrIterativeStalled. Allocation-free.
func (w *gmresWork) solve(a *CSC, mp preconditioner, x, b []float64, tol float64, maxIter int) (int, float64, error) {
	n := a.N
	for i := 0; i < n; i++ {
		x[i] = 0
	}
	bnorm := norm2(b)
	if bnorm == 0 {
		return 0, 0, nil
	}
	m := w.m
	total := 0
	relres := 1.0
	for total < maxIter {
		// r = b - A·x (x is zero on the first cycle but not after restarts).
		a.MulVecInto(w.r, x)
		for i := 0; i < n; i++ {
			w.r[i] = b[i] - w.r[i]
		}
		beta := norm2(w.r)
		relres = beta / bnorm
		if beta <= tol*bnorm {
			return total, relres, nil
		}
		inv := 1 / beta
		for i := 0; i < n; i++ {
			w.v[0][i] = w.r[i] * inv
		}
		for i := range w.g {
			w.g[i] = 0
		}
		w.g[0] = beta
		k := 0
		for ; k < m && total < maxIter; k++ {
			total++
			// Arnoldi step on A·M⁻¹ with modified Gram–Schmidt.
			mp.Apply(w.tmp, w.v[k])
			vk1 := w.v[k+1]
			a.MulVecInto(vk1, w.tmp)
			hc := w.h[k*(m+1):]
			for i := 0; i <= k; i++ {
				hik := dot(vk1, w.v[i])
				hc[i] = hik
				axpy(vk1, -hik, w.v[i])
			}
			hk1 := norm2(vk1)
			if math.IsNaN(hk1) || math.IsInf(hk1, 0) {
				return total, relres, fmt.Errorf("%w: GMRES Arnoldi norm %g at iteration %d", ErrIterativeStalled, hk1, total)
			}
			hc[k+1] = hk1
			if hk1 > 0 {
				inv := 1 / hk1
				for i := 0; i < n; i++ {
					vk1[i] *= inv
				}
			}
			// Apply the stored Givens rotations, then generate a new one to
			// zero the subdiagonal.
			for i := 0; i < k; i++ {
				t := w.cs[i]*hc[i] + w.sn[i]*hc[i+1]
				hc[i+1] = -w.sn[i]*hc[i] + w.cs[i]*hc[i+1]
				hc[i] = t
			}
			denom := math.Hypot(hc[k], hc[k+1])
			if denom == 0 {
				w.cs[k], w.sn[k] = 1, 0
			} else {
				w.cs[k], w.sn[k] = hc[k]/denom, hc[k+1]/denom
			}
			hc[k] = w.cs[k]*hc[k] + w.sn[k]*hc[k+1]
			hc[k+1] = 0
			w.g[k+1] = -w.sn[k] * w.g[k]
			w.g[k] *= w.cs[k]
			relres = math.Abs(w.g[k+1]) / bnorm
			if relres <= tol || hk1 == 0 {
				k++
				break
			}
		}
		// Back-substitute H·y = g and accumulate x += M⁻¹·(V·y).
		for i := k - 1; i >= 0; i-- {
			s := w.g[i]
			for j := i + 1; j < k; j++ {
				s -= w.h[i+j*(m+1)] * w.y[j]
			}
			w.y[i] = s / w.h[i+i*(m+1)]
		}
		for i := 0; i < n; i++ {
			w.r[i] = 0
		}
		for j := 0; j < k; j++ {
			axpy(w.r, w.y[j], w.v[j])
		}
		mp.Apply(w.tmp, w.r)
		axpy(x, 1, w.tmp)
		if relres <= tol {
			// Recompute the true residual once: floating-point drift across
			// restarts can make the recurrence optimistic.
			a.MulVecInto(w.r, x)
			for i := 0; i < n; i++ {
				w.r[i] = b[i] - w.r[i]
			}
			relres = norm2(w.r) / bnorm
			if relres <= 10*tol {
				return total, relres, nil
			}
		}
	}
	return total, relres, fmt.Errorf("%w: GMRES did not converge in %d iterations (relres %.3g)", ErrIterativeStalled, maxIter, relres)
}
