package sparse

import (
	"fmt"
	"math"
)

// ErrPrecondBreakdown is returned when an incomplete factorization cannot be
// completed on the given values (non-positive IC(0) pivot, zero ILU(0)
// pivot, missing diagonal entry). It signals "this matrix is not a good fit
// for the iterative path", not singularity: the Engine responds by falling
// back to the direct solver, which applies full pivoting.
var ErrPrecondBreakdown = fmt.Errorf("sparse: incomplete factorization breakdown")

// icBreakdownTol rejects IC(0) pivots that are positive but so small the
// resulting sqrt/divide would amplify noise instead of preconditioning.
const icBreakdownTol = 1e-300

// ic0 is a zero-fill incomplete Cholesky preconditioner: A ≈ L·Lᵀ where L
// keeps exactly the lower-triangle pattern of A. The pattern is fixed at
// build time; Refresh recomputes the numeric values in place, so a
// simulator's Refactorize cadence carries over with no allocation.
type ic0 struct {
	n  int
	lp []int     // column pointers of L, len n+1
	li []int     // row indices (diagonal first, then ascending), len nnz(L)
	lx []float64 // values

	aLow []int // aLow[j]: first index in A's column j with row >= j

	// Numeric-pass scratch: left-looking traversal needs, for each column j,
	// the set of earlier columns k with L[j,k] != 0. llist[r] heads a linked
	// list (through lnext) of columns whose next unconsumed entry sits in row
	// r; lptr[k] is that entry's index.
	llist []int
	lnext []int
	lptr  []int
	x     []float64
	mark  []int32
	gen   int32
}

// newIC0 builds the pattern of the IC(0) factor from a (columns must be
// row-sorted, as Triplet.Compile produces) and runs the first numeric pass.
func newIC0(a *CSC) (*ic0, error) {
	n := a.N
	ic := &ic0{
		n:     n,
		lp:    make([]int, n+1),
		aLow:  make([]int, n),
		llist: make([]int, n),
		lnext: make([]int, n),
		lptr:  make([]int, n),
		x:     make([]float64, n),
		mark:  make([]int32, n),
	}
	nnz := 0
	for j := 0; j < n; j++ {
		lo, hi := a.P[j], a.P[j+1]
		for lo < hi && a.I[lo] < j {
			lo++
		}
		if lo == hi || a.I[lo] != j {
			return nil, fmt.Errorf("%w: no diagonal entry in column %d", ErrPrecondBreakdown, j)
		}
		ic.aLow[j] = lo
		ic.lp[j] = nnz
		nnz += hi - lo
	}
	ic.lp[n] = nnz
	ic.li = make([]int, nnz)
	ic.lx = make([]float64, nnz)
	for j := 0; j < n; j++ {
		copy(ic.li[ic.lp[j]:ic.lp[j+1]], a.I[ic.aLow[j]:a.P[j+1]])
	}
	if err := ic.Refresh(a); err != nil {
		return nil, err
	}
	return ic, nil
}

// Refresh recomputes the factor values for a matrix with the same pattern as
// the one the preconditioner was built on. It allocates nothing.
func (ic *ic0) Refresh(a *CSC) error {
	n := ic.n
	for i := 0; i < n; i++ {
		ic.llist[i] = -1
	}
	for j := 0; j < n; j++ {
		// Scatter the lower triangle of A(:,j) and stamp its pattern; updates
		// outside the pattern are dropped (that is the "zero fill" part).
		ic.gen++
		gen := ic.gen
		for p := ic.aLow[j]; p < a.P[j+1]; p++ {
			i := a.I[p]
			ic.x[i] = a.X[p]
			ic.mark[i] = gen
		}
		// Apply every earlier column k with L[j,k] != 0.
		for k := ic.llist[j]; k >= 0; {
			next := ic.lnext[k]
			ljk := ic.lx[ic.lptr[k]]
			for p := ic.lptr[k]; p < ic.lp[k+1]; p++ {
				if i := ic.li[p]; ic.mark[i] == gen {
					ic.x[i] -= ljk * ic.lx[p]
				}
			}
			// Column k's next nonzero row (if any) takes over its list slot.
			ic.lptr[k]++
			if ic.lptr[k] < ic.lp[k+1] {
				r := ic.li[ic.lptr[k]]
				ic.lnext[k] = ic.llist[r]
				ic.llist[r] = k
			}
			k = next
		}
		d := ic.x[j]
		if !(d > icBreakdownTol) || math.IsInf(d, 0) {
			return fmt.Errorf("%w: IC(0) pivot %g in column %d", ErrPrecondBreakdown, d, j)
		}
		root := math.Sqrt(d)
		ic.lx[ic.lp[j]] = root
		for p := ic.lp[j] + 1; p < ic.lp[j+1]; p++ {
			ic.lx[p] = ic.x[ic.li[p]] / root
		}
		// Link column j in for its first subdiagonal row.
		ic.lptr[j] = ic.lp[j] + 1
		if ic.lptr[j] < ic.lp[j+1] {
			r := ic.li[ic.lptr[j]]
			ic.lnext[j] = ic.llist[r]
			ic.llist[r] = j
		}
	}
	return nil
}

// Apply solves L·Lᵀ·z = r (z and r may alias). It allocates nothing.
func (ic *ic0) Apply(z, r []float64) {
	n := ic.n
	if &z[0] != &r[0] {
		copy(z, r)
	}
	// Forward solve L·y = r.
	for j := 0; j < n; j++ {
		zj := z[j] / ic.lx[ic.lp[j]]
		z[j] = zj
		for p := ic.lp[j] + 1; p < ic.lp[j+1]; p++ {
			z[ic.li[p]] -= ic.lx[p] * zj
		}
	}
	// Back solve Lᵀ·z = y: column j of L is row j of Lᵀ, so each step is a
	// dot product with the already-solved entries below.
	for j := n - 1; j >= 0; j-- {
		s := z[j]
		for p := ic.lp[j] + 1; p < ic.lp[j+1]; p++ {
			s -= ic.lx[p] * z[ic.li[p]]
		}
		z[j] = s / ic.lx[ic.lp[j]]
	}
}

// ilu0 is a zero-fill incomplete LU preconditioner: A ≈ L·U where the
// combined factors keep exactly A's pattern. L has an implicit unit
// diagonal; subdiagonal slots hold L, the rest hold U. Like ic0, the pattern
// is fixed at build time and Refresh is allocation-free.
type ilu0 struct {
	n    int
	a    *CSC      // pattern reference (P and I reused; values NOT read after Refresh)
	lux  []float64 // factor values aligned with a's pattern
	diag []int     // diag[j]: index of the diagonal entry in column j

	x    []float64
	mark []int32
	gen  int32
}

// newILU0 builds the ILU(0) preconditioner over a's pattern (columns must be
// row-sorted) and runs the first numeric pass.
func newILU0(a *CSC) (*ilu0, error) {
	n := a.N
	il := &ilu0{
		n:    n,
		a:    a,
		lux:  make([]float64, a.NNZ()),
		diag: make([]int, n),
		x:    make([]float64, n),
		mark: make([]int32, n),
	}
	for j := 0; j < n; j++ {
		lo, hi := a.P[j], a.P[j+1]
		for lo < hi && a.I[lo] < j {
			lo++
		}
		if lo == hi || a.I[lo] != j {
			return nil, fmt.Errorf("%w: no diagonal entry in column %d", ErrPrecondBreakdown, j)
		}
		il.diag[j] = lo
	}
	if err := il.Refresh(a); err != nil {
		return nil, err
	}
	return il, nil
}

// Refresh recomputes the factor values for a matrix with the same pattern as
// the one the preconditioner was built on. It allocates nothing.
func (il *ilu0) Refresh(a *CSC) error {
	n := il.n
	for j := 0; j < n; j++ {
		il.gen++
		gen := il.gen
		for p := a.P[j]; p < a.P[j+1]; p++ {
			i := a.I[p]
			il.x[i] = a.X[p]
			il.mark[i] = gen
		}
		// Left-looking update: the above-diagonal entries of column j name
		// exactly the earlier columns that eliminate into it; rows ascend, so
		// x[k] is final by the time k is consumed.
		for p := a.P[j]; a.I[p] < j; p++ {
			k := a.I[p]
			xk := il.x[k]
			if xk == 0 {
				continue
			}
			for q := il.diag[k] + 1; q < a.P[k+1]; q++ {
				if i := a.I[q]; il.mark[i] == gen {
					il.x[i] -= il.lux[q] * xk
				}
			}
		}
		d := il.x[j]
		if d == 0 || math.IsNaN(d) || math.IsInf(d, 0) {
			return fmt.Errorf("%w: ILU(0) pivot %g in column %d", ErrPrecondBreakdown, d, j)
		}
		for p := a.P[j]; p < a.P[j+1]; p++ {
			i := a.I[p]
			if i <= j {
				il.lux[p] = il.x[i]
			} else {
				il.lux[p] = il.x[i] / d
			}
		}
	}
	return nil
}

// Apply solves L·U·z = r (z and r may alias). It allocates nothing.
func (il *ilu0) Apply(z, r []float64) {
	a := il.a
	n := il.n
	if &z[0] != &r[0] {
		copy(z, r)
	}
	// Forward solve L·y = r (unit diagonal).
	for j := 0; j < n; j++ {
		zj := z[j]
		if zj == 0 {
			continue
		}
		for p := il.diag[j] + 1; p < a.P[j+1]; p++ {
			z[a.I[p]] -= il.lux[p] * zj
		}
	}
	// Back solve U·z = y.
	for j := n - 1; j >= 0; j-- {
		zj := z[j] / il.lux[il.diag[j]]
		z[j] = zj
		if zj == 0 {
			continue
		}
		for p := a.P[j]; a.I[p] < j; p++ {
			z[a.I[p]] -= il.lux[p] * zj
		}
	}
}
