// Package sparse implements the sparse-matrix kernel used by the transient
// circuit simulator: a triplet (coordinate) builder, compressed sparse column
// storage, and a left-looking Gilbert–Peierls LU factorization with partial
// pivoting. MNA matrices of segmented RLC ladders are extremely sparse
// (roughly five entries per row) and are refactored every Newton iteration,
// so the factorization is written to be allocation-free after the first call
// through the Workspace type.
package sparse

import (
	"fmt"
)

// Triplet accumulates (row, col, value) entries; duplicates are summed when
// compiled to CSC. This is the natural target for MNA stamping.
type Triplet struct {
	N           int // matrix is N x N
	rows, cols  []int
	vals        []float64
	frozen      bool
	cursor      int   // frozen-replay position in the stamp sequence
	stampOrder  []int // compiled mapping: entry index -> CSC value slot
	compiledCSC *CSC
}

// NewTriplet returns an empty triplet accumulator for an n-by-n matrix.
func NewTriplet(n int) *Triplet {
	return &Triplet{N: n}
}

// Add appends a contribution at (row, col). After Compile has been called,
// the stamping pattern is frozen: Add must then replay entries in the
// identical order from the replay cursor (set by Reset or Seek — this is
// exactly what a transient simulator does each timestep), which updates the
// compiled CSC in place without allocation.
func (t *Triplet) Add(row, col int, v float64) {
	if row < 0 || row >= t.N || col < 0 || col >= t.N {
		panic(fmt.Sprintf("sparse: Add(%d,%d) out of range for n=%d", row, col, t.N))
	}
	if t.frozen {
		i := t.cursor
		if i >= len(t.stampOrder) {
			panic("sparse: frozen Triplet received more stamps than compiled pattern")
		}
		if t.rows[i] != row || t.cols[i] != col {
			panic("sparse: frozen Triplet stamp order deviates from compiled pattern")
		}
		t.cursor++
		t.compiledCSC.X[t.stampOrder[i]] += v
		return
	}
	t.rows = append(t.rows, row)
	t.cols = append(t.cols, col)
	t.vals = append(t.vals, v)
}

// Reset prepares the triplet for a fresh round of stamping. After Compile,
// the sparsity pattern is retained, the compiled CSC values are zeroed, and
// the replay cursor returns to the start of the stamp sequence.
func (t *Triplet) Reset() {
	if t.frozen {
		t.cursor = 0
		for i := range t.compiledCSC.X {
			t.compiledCSC.X[i] = 0
		}
	} else {
		t.rows = t.rows[:0]
		t.cols = t.cols[:0]
		t.vals = t.vals[:0]
	}
}

// NNZ returns the number of accumulated entries (before deduplication).
func (t *Triplet) NNZ() int {
	if t.frozen {
		return len(t.stampOrder)
	}
	return len(t.vals)
}

// Mark returns the current position in the stamp sequence: the number of
// entries recorded so far (unfrozen) or the replay cursor (frozen). Callers
// record Marks around element stamping to obtain per-element entry ranges
// that Seek can later replay selectively.
func (t *Triplet) Mark() int {
	if t.frozen {
		return t.cursor
	}
	return len(t.vals)
}

// Seek positions the frozen-replay cursor at entry i of the stamp sequence,
// allowing a caller to restamp only a subset of elements (the partitioned
// linear/nonlinear assembly of the transient fast path). It panics when the
// triplet is not frozen or i is out of range.
func (t *Triplet) Seek(i int) {
	if !t.frozen {
		panic("sparse: Seek on unfrozen Triplet")
	}
	if i < 0 || i > len(t.stampOrder) {
		panic(fmt.Sprintf("sparse: Seek(%d) outside stamp sequence of %d entries", i, len(t.stampOrder)))
	}
	t.cursor = i
}

// Frozen reports whether Compile has fixed the stamping pattern.
func (t *Triplet) Frozen() bool { return t.frozen }

// Compile deduplicates the triplet into CSC form and freezes the stamping
// pattern: subsequent Reset/Add cycles with the same stamp sequence update
// the returned CSC in place. The returned matrix aliases internal state and
// remains owned by the Triplet.
func (t *Triplet) Compile() *CSC {
	if t.frozen {
		return t.compiledCSC
	}
	c := compileCSC(t.N, t.rows, t.cols, t.vals)
	// Build entry -> slot mapping so frozen replays can update in place.
	t.stampOrder = make([]int, len(t.vals))
	for i := range t.vals {
		t.stampOrder[i] = c.slot(t.rows[i], t.cols[i])
	}
	t.frozen = true
	t.compiledCSC = c
	return c
}

// CSC is a compressed-sparse-column matrix.
type CSC struct {
	N int
	P []int     // column pointers, len N+1
	I []int     // row indices, len nnz, sorted within each column
	X []float64 // values, len nnz
}

// compileCSC deduplicates triplet entries into CSC form. Ordering uses a
// two-pass stable counting sort (by row, then by column) instead of a
// comparison sort: circuit builds run this on every netlist, and sweep/MC
// workloads construct thousands of circuits, so the O(nnz + n) radix pass
// beats sort.Slice's O(nnz·log nnz) with closure-call overhead.
func compileCSC(n int, rows, cols []int, vals []float64) *CSC {
	m := len(vals)
	count := make([]int, n+1)
	byRow := make([]int, m)
	perm := make([]int, m)
	// Pass 1: stable counting sort by row (the minor key).
	for _, r := range rows {
		count[r+1]++
	}
	for i := 0; i < n; i++ {
		count[i+1] += count[i]
	}
	for i := 0; i < m; i++ {
		byRow[count[rows[i]]] = i
		count[rows[i]]++
	}
	// Pass 2: stable counting sort by column (the major key). Stability
	// preserves the row order established by pass 1, yielding column-major
	// entries with ascending rows within each column.
	for i := range count {
		count[i] = 0
	}
	for _, c := range cols {
		count[c+1]++
	}
	for i := 0; i < n; i++ {
		count[i+1] += count[i]
	}
	for _, e := range byRow {
		perm[count[cols[e]]] = e
		count[cols[e]]++
	}
	// Pass 3: the single merge pass. perm now orders entries column-major
	// with ascending rows, so every group of duplicates — mesh stamping
	// produces one per incident element, in arbitrary input order — is a
	// contiguous run. Each run is summed into exactly one output entry
	// (left-to-right in input-sorted order, so the floating-point
	// accumulation order is deterministic for a given input sequence), and
	// the per-column counts accumulate into the column pointers afterwards.
	// The output is written tail-first into arrays preallocated at the
	// duplicate-free upper bound m, then re-sliced, so the pass neither
	// re-grows storage nor needs a separate counting sweep over the runs.
	c := &CSC{N: n, P: make([]int, n+1), I: make([]int, 0, m), X: make([]float64, 0, m)}
	for i := 0; i < m; {
		e := perm[i]
		sum := vals[e]
		j := i + 1
		for j < m && rows[perm[j]] == rows[e] && cols[perm[j]] == cols[e] {
			sum += vals[perm[j]]
			j++
		}
		c.I = append(c.I, rows[e])
		c.X = append(c.X, sum)
		c.P[cols[e]+1]++
		i = j
	}
	for j := 0; j < n; j++ {
		c.P[j+1] += c.P[j]
	}
	return c
}

// slot returns the value index of entry (row, col); the entry must exist.
func (c *CSC) slot(row, col int) int {
	lo, hi := c.P[col], c.P[col+1]
	for lo < hi {
		mid := (lo + hi) / 2
		if c.I[mid] < row {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo >= c.P[col+1] || c.I[lo] != row {
		panic(fmt.Sprintf("sparse: slot(%d,%d) not present", row, col))
	}
	return lo
}

// At returns element (row, col), zero when not stored.
func (c *CSC) At(row, col int) float64 {
	for p := c.P[col]; p < c.P[col+1]; p++ {
		if c.I[p] == row {
			return c.X[p]
		}
	}
	return 0
}

// NNZ returns the stored entry count.
func (c *CSC) NNZ() int { return len(c.X) }

// GaxpyWith accumulates y += A'·x where A' has c's sparsity pattern and the
// given value vector (len nnz). The transient fast path uses it to apply the
// cached linear-partition Jacobian to an iterate without restamping any
// element; it performs no allocation.
func (c *CSC) GaxpyWith(vals, x, y []float64) {
	if len(vals) != len(c.X) || len(x) != c.N || len(y) != c.N {
		panic(fmt.Sprintf("sparse: GaxpyWith size mismatch: vals=%d nnz=%d x=%d y=%d n=%d",
			len(vals), len(c.X), len(x), len(y), c.N))
	}
	for j := 0; j < c.N; j++ {
		xj := x[j]
		if xj == 0 {
			continue
		}
		for p := c.P[j]; p < c.P[j+1]; p++ {
			y[c.I[p]] += vals[p] * xj
		}
	}
}

// MulVecInto computes y = A*x into the caller's slice without allocating;
// y and x must have length N and may not alias.
func (c *CSC) MulVecInto(y, x []float64) {
	for i := range y {
		y[i] = 0
	}
	for j := 0; j < c.N; j++ {
		xj := x[j]
		if xj == 0 {
			continue
		}
		for p := c.P[j]; p < c.P[j+1]; p++ {
			y[c.I[p]] += c.X[p] * xj
		}
	}
}

// MulVec computes y = A*x into a new slice.
func (c *CSC) MulVec(x []float64) []float64 {
	y := make([]float64, c.N)
	for j := 0; j < c.N; j++ {
		xj := x[j]
		if xj == 0 {
			continue
		}
		for p := c.P[j]; p < c.P[j+1]; p++ {
			y[c.I[p]] += c.X[p] * xj
		}
	}
	return y
}

// ExtractWith builds the submatrix selected by keep (keep[i] >= 0 maps
// global index i to the compact index keep[i]; -1 drops the row/column),
// reading values from vals, which must share c's sparsity pattern (pass
// c.X for the matrix's own values). m is the compact dimension. The
// reduced-order-model builder uses this to carve the per-component internal
// blocks of the MNA matrices out of one shared pattern.
func (c *CSC) ExtractWith(vals []float64, keep []int, m int) *CSC {
	if len(vals) != len(c.X) || len(keep) != c.N {
		panic(fmt.Sprintf("sparse: ExtractWith size mismatch: vals=%d nnz=%d keep=%d n=%d",
			len(vals), len(c.X), len(keep), c.N))
	}
	t := NewTriplet(m)
	for j := 0; j < c.N; j++ {
		cj := keep[j]
		if cj < 0 {
			continue
		}
		for p := c.P[j]; p < c.P[j+1]; p++ {
			if ci := keep[c.I[p]]; ci >= 0 {
				t.Add(ci, cj, vals[p])
			}
		}
	}
	return t.Compile()
}
