// Package sparse implements the sparse-matrix kernel used by the transient
// circuit simulator: a triplet (coordinate) builder, compressed sparse column
// storage, and a left-looking Gilbert–Peierls LU factorization with partial
// pivoting. MNA matrices of segmented RLC ladders are extremely sparse
// (roughly five entries per row) and are refactored every Newton iteration,
// so the factorization is written to be allocation-free after the first call
// through the Workspace type.
package sparse

import (
	"fmt"
	"sort"
)

// Triplet accumulates (row, col, value) entries; duplicates are summed when
// compiled to CSC. This is the natural target for MNA stamping.
type Triplet struct {
	N           int // matrix is N x N
	rows, cols  []int
	vals        []float64
	frozen      bool
	stampOrder  []int // compiled mapping: entry index -> CSC value slot
	compiledCSC *CSC
}

// NewTriplet returns an empty triplet accumulator for an n-by-n matrix.
func NewTriplet(n int) *Triplet {
	return &Triplet{N: n}
}

// Add appends a contribution at (row, col). After Compile has been called,
// the stamping pattern is frozen: Add must then be preceded by Reset and must
// replay entries in the identical order (this is exactly what a transient
// simulator does each timestep), which updates the compiled CSC in place
// without allocation.
func (t *Triplet) Add(row, col int, v float64) {
	if row < 0 || row >= t.N || col < 0 || col >= t.N {
		panic(fmt.Sprintf("sparse: Add(%d,%d) out of range for n=%d", row, col, t.N))
	}
	if t.frozen {
		i := len(t.vals)
		if i >= len(t.stampOrder) {
			panic("sparse: frozen Triplet received more stamps than compiled pattern")
		}
		if t.rows[i] != row || t.cols[i] != col {
			panic("sparse: frozen Triplet stamp order deviates from compiled pattern")
		}
		t.vals = append(t.vals, v)
		t.compiledCSC.X[t.stampOrder[i]] += v
		return
	}
	t.rows = append(t.rows, row)
	t.cols = append(t.cols, col)
	t.vals = append(t.vals, v)
}

// Reset prepares the triplet for a fresh round of stamping. After Compile,
// the sparsity pattern is retained and the compiled CSC values are zeroed.
func (t *Triplet) Reset() {
	t.vals = t.vals[:0]
	if t.frozen {
		for i := range t.compiledCSC.X {
			t.compiledCSC.X[i] = 0
		}
	} else {
		t.rows = t.rows[:0]
		t.cols = t.cols[:0]
	}
}

// NNZ returns the number of accumulated entries (before deduplication).
func (t *Triplet) NNZ() int { return len(t.vals) }

// Compile deduplicates the triplet into CSC form and freezes the stamping
// pattern: subsequent Reset/Add cycles with the same stamp sequence update
// the returned CSC in place. The returned matrix aliases internal state and
// remains owned by the Triplet.
func (t *Triplet) Compile() *CSC {
	if t.frozen {
		return t.compiledCSC
	}
	c := compileCSC(t.N, t.rows, t.cols, t.vals)
	// Build entry -> slot mapping so frozen replays can update in place.
	t.stampOrder = make([]int, len(t.vals))
	for i := range t.vals {
		t.stampOrder[i] = c.slot(t.rows[i], t.cols[i])
	}
	t.frozen = true
	t.compiledCSC = c
	return c
}

// CSC is a compressed-sparse-column matrix.
type CSC struct {
	N int
	P []int     // column pointers, len N+1
	I []int     // row indices, len nnz, sorted within each column
	X []float64 // values, len nnz
}

func compileCSC(n int, rows, cols []int, vals []float64) *CSC {
	type ent struct {
		r, c int
		v    float64
	}
	ents := make([]ent, len(vals))
	for i := range vals {
		ents[i] = ent{rows[i], cols[i], vals[i]}
	}
	sort.Slice(ents, func(a, b int) bool {
		if ents[a].c != ents[b].c {
			return ents[a].c < ents[b].c
		}
		return ents[a].r < ents[b].r
	})
	c := &CSC{N: n, P: make([]int, n+1)}
	for i := 0; i < len(ents); {
		j := i
		for j < len(ents) && ents[j].r == ents[i].r && ents[j].c == ents[i].c {
			j++
		}
		sum := 0.0
		for k := i; k < j; k++ {
			sum += ents[k].v
		}
		c.I = append(c.I, ents[i].r)
		c.X = append(c.X, sum)
		c.P[ents[i].c+1]++
		i = j
	}
	for j := 0; j < n; j++ {
		c.P[j+1] += c.P[j]
	}
	return c
}

// slot returns the value index of entry (row, col); the entry must exist.
func (c *CSC) slot(row, col int) int {
	lo, hi := c.P[col], c.P[col+1]
	for lo < hi {
		mid := (lo + hi) / 2
		if c.I[mid] < row {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo >= c.P[col+1] || c.I[lo] != row {
		panic(fmt.Sprintf("sparse: slot(%d,%d) not present", row, col))
	}
	return lo
}

// At returns element (row, col), zero when not stored.
func (c *CSC) At(row, col int) float64 {
	for p := c.P[col]; p < c.P[col+1]; p++ {
		if c.I[p] == row {
			return c.X[p]
		}
	}
	return 0
}

// NNZ returns the stored entry count.
func (c *CSC) NNZ() int { return len(c.X) }

// MulVec computes y = A*x into a new slice.
func (c *CSC) MulVec(x []float64) []float64 {
	y := make([]float64, c.N)
	for j := 0; j < c.N; j++ {
		xj := x[j]
		if xj == 0 {
			continue
		}
		for p := c.P[j]; p < c.P[j+1]; p++ {
			y[c.I[p]] += c.X[p] * xj
		}
	}
	return y
}
