package sparse

// Fill-reducing ordering: an approximate-minimum-degree (AMD-style) pass
// over the symmetric pattern of A+Aᵀ, run during the symbolic phase of
// Factorize. The algorithm is the classic quotient-graph elimination of
// Amestoy, Davis and Duff: instead of updating the true elimination graph
// (whose edge count grows with fill), eliminated pivots become *elements*
// whose vertex sets stand in for the cliques they created, variables with
// identical adjacency merge into *supervariables* eliminated together, and
// each variable's degree is tracked as the cheap AMD upper bound on its
// external degree rather than recomputed exactly.
//
// Ordering quality is a heuristic concern only: any permutation returned
// here leaves the factorization correct, because the numeric phase runs on
// the permuted matrix with its usual threshold pivoting. What the ordering
// buys is fill — on a 2-D power-grid mesh the natural order fills in a full
// band (nnz(L) ≈ n·√n) while the AMD order stays near n·log n, which is the
// difference between a 10⁵-node mesh factoring in memory and thrashing.

// amdOrder returns a fill-reducing elimination order for the symmetric
// pattern of A+Aᵀ (diagonal ignored): perm[k] is the original index
// eliminated at step k. The result is deterministic for a given pattern.
func amdOrder(a *CSC) []int {
	n := a.N
	g := newQuotientGraph(a)
	perm := make([]int, 0, n)
	for len(perm) < n {
		p := g.popMinDegree()
		g.eliminate(p)
		// A supervariable is eliminated together with every variable that
		// was found indistinguishable from it and absorbed into it.
		perm = g.emit(perm, p)
	}
	return perm
}

// quotientGraph is the working state of one AMD run. Variables and elements
// share the index space [0, n): a node starts as a variable and becomes an
// element when eliminated. Adjacency lists live in per-node slices —
// deliberately simpler than the single-workspace layout of the reference
// implementations; the lists only ever shrink (pruning) or gain one element
// entry per elimination, so total churn stays O(nnz).
type quotientGraph struct {
	n int

	// Per-variable adjacency: elems lists adjacent elements, vars lists the
	// still-explicit variable neighbours (entries covered by an element are
	// pruned as eliminations proceed).
	elems [][]int32
	vars  [][]int32

	// Per-element vertex set Le (live supervariables only, compacted lazily).
	elemVars [][]int32

	// nv[i] > 0: i is a live principal supervariable representing nv[i]
	// original variables. nv[i] == 0: i was absorbed into another
	// supervariable (parent[i]) or eliminated.
	nv     []int
	parent []int32 // absorption forest: child -> principal
	kids   [][]int32

	degree []int  // approximate external degree of each live variable
	dead   []bool // absorbed elements and merged-away supervariable members

	// Degree buckets: head[d] -> doubly linked list through next/prev.
	head   []int32
	next   []int32
	prev   []int32
	minDeg int

	// Scratch with generation stamps (no clearing between eliminations).
	stamp    []int64
	stampGen int64
	w        []int // |Le \ Lp| accumulator per element
	wStamp   []int64

	nel int // original variables eliminated so far
}

func newQuotientGraph(a *CSC) *quotientGraph {
	n := a.N
	g := &quotientGraph{
		n:        n,
		elems:    make([][]int32, n),
		vars:     make([][]int32, n),
		elemVars: make([][]int32, n),
		nv:       make([]int, n),
		parent:   make([]int32, n),
		kids:     make([][]int32, n),
		degree:   make([]int, n),
		dead:     make([]bool, n),
		head:     make([]int32, n+1),
		next:     make([]int32, n),
		prev:     make([]int32, n),
		stamp:    make([]int64, n),
		w:        make([]int, n),
		wStamp:   make([]int64, n),
	}
	// Symmetrize the pattern: count then fill neighbour lists of A+Aᵀ
	// without the diagonal, deduplicating with a stamp pass per column.
	deg := make([]int, n)
	for j := 0; j < n; j++ {
		for p := a.P[j]; p < a.P[j+1]; p++ {
			if i := a.I[p]; i != j {
				deg[i]++
				deg[j]++
			}
		}
	}
	for i := 0; i < n; i++ {
		g.vars[i] = make([]int32, 0, deg[i])
	}
	for j := 0; j < n; j++ {
		for p := a.P[j]; p < a.P[j+1]; p++ {
			if i := a.I[p]; i != j {
				g.vars[i] = append(g.vars[i], int32(j))
				g.vars[j] = append(g.vars[j], int32(i))
			}
		}
	}
	for i := 0; i < n; i++ {
		g.vars[i] = g.dedupe(g.vars[i])
		g.nv[i] = 1
		g.parent[i] = int32(i)
		g.degree[i] = len(g.vars[i])
		g.head[i] = -1
	}
	g.head[n] = -1
	for i := n - 1; i >= 0; i-- { // reverse so buckets pop in index order
		g.bucketInsert(int32(i))
	}
	return g
}

// dedupe removes repeated indices from list in place using the stamp
// scratch, preserving first-seen order.
func (g *quotientGraph) dedupe(list []int32) []int32 {
	g.stampGen++
	out := list[:0]
	for _, v := range list {
		if g.stamp[v] != g.stampGen {
			g.stamp[v] = g.stampGen
			out = append(out, v)
		}
	}
	return out
}

func (g *quotientGraph) bucketInsert(i int32) {
	d := g.degree[i]
	g.prev[i] = -1
	g.next[i] = g.head[d]
	if g.head[d] >= 0 {
		g.prev[g.head[d]] = i
	}
	g.head[d] = i
	if d < g.minDeg {
		g.minDeg = d
	}
}

func (g *quotientGraph) bucketRemove(i int32) {
	if g.prev[i] >= 0 {
		g.next[g.prev[i]] = g.next[i]
	} else if g.head[g.degree[i]] == i {
		g.head[g.degree[i]] = g.next[i]
	}
	if g.next[i] >= 0 {
		g.prev[g.next[i]] = g.prev[i]
	}
	g.next[i], g.prev[i] = -1, -1
}

// popMinDegree removes and returns the live variable with the smallest
// approximate degree. Scanning upward from the cached minimum is amortized
// O(1): minDeg only decreases when an insert sets it.
func (g *quotientGraph) popMinDegree() int32 {
	for {
		if g.minDeg > g.n {
			g.minDeg = g.n
		}
		h := g.head[g.minDeg]
		if h < 0 {
			g.minDeg++
			continue
		}
		g.bucketRemove(h)
		return h
	}
}

// eliminate turns variable p into an element: builds the new element's
// vertex set Lp, absorbs the elements p was adjacent to, prunes and
// re-degrees every variable in Lp, and merges indistinguishable variables
// into supervariables.
func (g *quotientGraph) eliminate(p int32) {
	g.nel += g.nv[p]
	// p stops being a variable (nv < 0 excludes it from every variable
	// context) but lives on as an element; dead[p] is only set if a later
	// pivot absorbs the element.
	g.nv[p] = -g.nv[p]

	// Lp = (A_p ∪ ⋃ Le) \ {p, dead}: stamp-deduplicated union.
	g.stampGen++
	gen := g.stampGen
	g.stamp[p] = gen
	lp := g.elemVars[p][:0] // reuse p's (empty) element slot
	degme := 0
	add := func(i int32) {
		if g.stamp[i] != gen && !g.dead[i] && g.nv[i] > 0 {
			g.stamp[i] = gen
			lp = append(lp, i)
			degme += g.nv[i]
		}
	}
	for _, i := range g.vars[p] {
		add(i)
	}
	for _, e := range g.elems[p] {
		if g.dead[e] {
			continue
		}
		for _, i := range g.elemVars[e] {
			add(i)
		}
		// Element absorption: e's clique is a subset of p's new one.
		g.dead[e] = true
		g.elemVars[e] = nil
	}
	g.elemVars[p] = lp
	g.vars[p] = nil
	g.elems[p] = nil

	// First pass of the approximate-degree update: for every element e still
	// adjacent to a variable in Lp, compute |Le \ Lp| by subtracting the
	// sizes of the members it shares with Lp.
	for _, i := range lp {
		for _, e := range g.elems[i] {
			if g.dead[e] {
				continue
			}
			if g.wStamp[e] != gen {
				g.wStamp[e] = gen
				g.w[e] = g.elemSize(e)
			}
			g.w[e] -= g.nv[i]
		}
	}

	// Second pass: prune each i ∈ Lp and recompute its approximate degree.
	for _, i := range lp {
		g.bucketRemove(i)

		// Prune i's element list: drop dead/absorbed elements, append p.
		// An element whose remaining vertices all lie inside Lp (w == 0)
		// is aggressively absorbed — its clique is covered by p's.
		el := g.elems[i][:0]
		sumExt := 0 // Σ |Le \ Lp| over i's other elements
		for _, e := range g.elems[i] {
			if g.dead[e] {
				continue
			}
			if g.wStamp[e] == gen && g.w[e] <= 0 {
				g.dead[e] = true
				g.elemVars[e] = nil
				continue
			}
			if g.wStamp[e] == gen {
				sumExt += g.w[e]
			} else {
				sumExt += g.elemSize(e)
			}
			el = append(el, e)
		}
		g.elems[i] = append(el, p)

		// Prune i's variable list: drop members of Lp (now covered by
		// element p), dead variables, and absorbed supervariables.
		vl := g.vars[i][:0]
		extVars := 0
		for _, v := range g.vars[i] {
			if g.stamp[v] == gen || g.dead[v] || g.nv[v] <= 0 || v == p {
				continue
			}
			vl = append(vl, v)
			extVars += g.nv[v]
		}
		g.vars[i] = vl

		// AMD degree bound: the true external degree of i is at most each of
		// (previous degree + |Lp \ i|), (|A_i \ Lp| + |Lp \ i| + Σ|Le \ Lp|),
		// and the number of variables left outside the supervariable.
		ext := degme - g.nv[i]
		d := extVars + ext + sumExt
		if bound := g.degree[i] + ext; bound < d {
			d = bound
		}
		if bound := g.n - g.nel - g.nv[i]; bound < d {
			d = bound
		}
		if d < 0 {
			d = 0
		}
		g.degree[i] = d
	}

	// Supervariable detection: hash every i ∈ Lp by its pruned adjacency;
	// within a hash bucket, compare adjacency sets exactly and merge
	// indistinguishable variables. Buckets are built with stamped scratch
	// (reusing w as the bucket head array keyed by hash).
	g.detectSupervariables(lp)

	// Reinsert the survivors with their updated degrees.
	for _, i := range lp {
		if g.nv[i] > 0 && !g.dead[i] {
			g.bucketInsert(i)
		}
	}
}

// elemSize returns |Le| counting supervariable sizes, compacting dead
// members out of the list as a side effect.
func (g *quotientGraph) elemSize(e int32) int {
	vl := g.elemVars[e][:0]
	size := 0
	for _, v := range g.elemVars[e] {
		if !g.dead[v] && g.nv[v] > 0 {
			vl = append(vl, v)
			size += g.nv[v]
		}
	}
	g.elemVars[e] = vl
	return size
}

// detectSupervariables merges members of lp with identical quotient-graph
// adjacency (same element list and same variable list, as sets). Merged
// variables leave the degree lists and the graph; their principal's nv
// grows, so later degree arithmetic and eliminations account for them.
func (g *quotientGraph) detectSupervariables(lp []int32) {
	if len(lp) < 2 {
		return
	}
	// Bucket by a cheap order-independent hash of the adjacency. Map
	// iteration order is random, but buckets are independent (variables in
	// different buckets can never merge) and each bucket's internal
	// processing is deterministic, so the final graph state — and hence the
	// ordering — does not depend on it.
	buckets := make(map[uint64][]int32, len(lp))
	for _, i := range lp {
		if g.dead[i] || g.nv[i] <= 0 {
			continue
		}
		var h uint64
		for _, e := range g.elems[i] {
			if !g.dead[e] {
				h += uint64(e) * 0x9e3779b97f4a7c15
			}
		}
		for _, v := range g.vars[i] {
			if !g.dead[v] && g.nv[v] > 0 {
				h += uint64(v) * 0x517cc1b727220a95
			}
		}
		buckets[h] = append(buckets[h], i)
	}
	for _, cand := range buckets {
		if len(cand) < 2 {
			continue
		}
		for a := 0; a < len(cand); a++ {
			i := cand[a]
			if g.dead[i] || g.nv[i] <= 0 {
				continue
			}
			for b := a + 1; b < len(cand); b++ {
				j := cand[b]
				if g.dead[j] || g.nv[j] <= 0 {
					continue
				}
				if !g.sameAdjacency(i, j) {
					continue
				}
				// Merge j into i: j is eliminated whenever i is. i's
				// external degree no longer counts j (it is now internal
				// to the supervariable).
				g.bucketRemove(j)
				if g.degree[i] -= g.nv[j]; g.degree[i] < 0 {
					g.degree[i] = 0
				}
				g.nv[i] += g.nv[j]
				g.nv[j] = 0
				g.parent[j] = i
				g.kids[i] = append(g.kids[i], j)
				g.dead[j] = true
				g.vars[j] = nil
				g.elems[j] = nil
			}
		}
	}
}

// sameAdjacency reports whether live variables i and j have identical
// adjacency up to each other (the indistinguishability test: N(i) ∪ {i} ==
// N(j) ∪ {j} in the quotient graph).
func (g *quotientGraph) sameAdjacency(i, j int32) bool {
	// Element lists must match as sets.
	g.stampGen++
	gen := g.stampGen
	ni := 0
	for _, e := range g.elems[i] {
		if !g.dead[e] {
			g.stamp[e] = gen
			ni++
		}
	}
	nj := 0
	for _, e := range g.elems[j] {
		if g.dead[e] {
			continue
		}
		if g.stamp[e] != gen {
			return false
		}
		nj++
	}
	if ni != nj {
		return false
	}
	// Variable lists must match as sets, ignoring i and j themselves.
	g.stampGen++
	gen = g.stampGen
	ni = 0
	for _, v := range g.vars[i] {
		if !g.dead[v] && g.nv[v] > 0 && v != j {
			g.stamp[v] = gen
			ni++
		}
	}
	nj = 0
	for _, v := range g.vars[j] {
		if g.dead[v] || g.nv[v] <= 0 || v == i {
			continue
		}
		if g.stamp[v] != gen {
			return false
		}
		nj++
	}
	return ni == nj
}

// emit appends p and its absorbed subtree to the permutation.
func (g *quotientGraph) emit(perm []int, p int32) []int {
	perm = append(perm, int(p))
	for _, k := range g.kids[p] {
		perm = g.emit(perm, k)
	}
	return perm
}
