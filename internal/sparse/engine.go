package sparse

import (
	"errors"
	"fmt"
	"math"

	"rlcint/internal/diag"
)

// Policy selects how an Engine solves its linear systems.
type Policy int

const (
	// PolicyAuto picks per matrix: direct LU below DirectBelow unknowns,
	// IC(0)-preconditioned CG for symmetric positive-diagonal structure,
	// ILU(0)-preconditioned restarted GMRES otherwise.
	PolicyAuto Policy = iota
	// PolicyDirect forces the direct sparse LU (with AMD ordering).
	PolicyDirect
	// PolicyCG forces IC(0)+CG.
	PolicyCG
	// PolicyGMRES forces ILU(0)+GMRES.
	PolicyGMRES
)

// String names the policy for stats and logs.
func (p Policy) String() string {
	switch p {
	case PolicyDirect:
		return "direct"
	case PolicyCG:
		return "cg"
	case PolicyGMRES:
		return "gmres"
	default:
		return "auto"
	}
}

// EngineOpts configures an Engine. The zero value is usable: auto policy,
// strict pivoting for the direct fallback, 1e-10 relative tolerance.
type EngineOpts struct {
	Policy      Policy
	PivTol      float64 // direct-LU threshold pivoting tolerance (default 1)
	Tol         float64 // iterative relative residual target (default 1e-10)
	MaxIter     int     // iterative iteration budget (default 1000)
	Restart     int     // GMRES restart length (default 30)
	DirectBelow int     // auto policy: direct LU below this many unknowns (default 2048)

	// Injector guards preconditioner construction under Op "sparse.precond";
	// an injected fault is treated exactly like a numeric breakdown and
	// falls back to the direct solver.
	Injector *diag.Injector
	// Report, when non-nil, records iterative→direct fallbacks on the
	// "sparse.engine" ladder.
	Report *diag.Report
}

func (o EngineOpts) withDefaults() EngineOpts {
	if o.PivTol <= 0 || o.PivTol > 1 {
		o.PivTol = 1
	}
	if o.Tol <= 0 {
		o.Tol = 1e-10
	}
	if o.MaxIter <= 0 {
		o.MaxIter = 1000
	}
	if o.Restart <= 0 {
		o.Restart = 30
	}
	if o.DirectBelow <= 0 {
		o.DirectBelow = 2048
	}
	return o
}

// EngineStats reports what the Engine actually did: which solver is active,
// how the last iterative solve went, and the cumulative fallback count.
type EngineStats struct {
	Solver     string      `json:"solver"`     // "direct", "cg", or "gmres"
	Policy     string      `json:"policy"`     // configured policy
	Iterations int         `json:"iterations"` // iterations of the last iterative solve (0 for direct)
	Residual   float64     `json:"residual"`   // relative residual of the last iterative solve
	Fallbacks  int         `json:"fallbacks"`  // lifetime iterative→direct fallbacks
	Factor     FactorStats `json:"factor"`     // direct-LU factor shape when the direct solver has run
}

// engineMode is the solver currently active for the factorized matrix.
type engineMode int

const (
	modeDirect engineMode = iota
	modeCG
	modeGMRES
)

// Engine solves sparse linear systems behind the same Factorize /
// Refactorize / SolveInto contract as LU, but chooses between the direct
// factorization and preconditioned iterative methods by policy, and
// guarantees an answer by falling back to the direct solver whenever the
// iterative path breaks down or stalls. It is not safe for concurrent use;
// give each worker its own Engine.
type Engine struct {
	n    int
	opts EngineOpts

	mode engineMode
	a    *CSC // matrix of the last Factorize/Refactorize (caller-owned)

	lu      *LU // direct solver, created lazily
	luFresh bool

	ic    *ic0
	il    *ilu0
	cg    *cgWork
	gmres *gmresWork

	stats EngineStats
}

// NewEngine returns an Engine for n-unknown systems.
func NewEngine(n int, opts EngineOpts) *Engine {
	return &Engine{n: n, opts: opts.withDefaults()}
}

// Stats returns a snapshot of the engine's counters.
func (e *Engine) Stats() EngineStats {
	s := e.stats
	s.Policy = e.opts.Policy.String()
	switch e.mode {
	case modeCG:
		s.Solver = "cg"
	case modeGMRES:
		s.Solver = "gmres"
	default:
		s.Solver = "direct"
	}
	if e.lu != nil {
		s.Factor = e.lu.Stats()
	}
	return s
}

// decideMode resolves the configured policy against the matrix structure.
func (e *Engine) decideMode(a *CSC) engineMode {
	switch e.opts.Policy {
	case PolicyDirect:
		return modeDirect
	case PolicyCG:
		return modeCG
	case PolicyGMRES:
		return modeGMRES
	}
	if e.n < e.opts.DirectBelow {
		return modeDirect
	}
	if isSymmetricPosDiag(a) {
		return modeCG
	}
	return modeGMRES
}

// Factorize prepares the engine to solve systems with a: it resolves the
// policy, builds or refreshes the preconditioner on the iterative path, and
// factors directly otherwise. Breakdown anywhere on the iterative path falls
// back to the direct solver; only a genuinely singular matrix returns an
// error.
func (e *Engine) Factorize(a *CSC) error {
	if a.N != e.n {
		return fmt.Errorf("sparse: Engine.Factorize dimension %d != engine %d", a.N, e.n)
	}
	e.a = a
	e.luFresh = false
	e.mode = e.decideMode(a)
	switch e.mode {
	case modeCG:
		if err := e.buildIC(a); err != nil {
			return e.fallbackToDirect(a, "ic0", err)
		}
	case modeGMRES:
		if err := e.buildILU(a); err != nil {
			return e.fallbackToDirect(a, "ilu0", err)
		}
	default:
		return e.factorDirect(a)
	}
	return nil
}

// Refactorize refreshes the engine for new numeric values on the same
// sparsity pattern: preconditioner values are recomputed in place on the
// iterative path (allocation-free in steady state), and the direct path uses
// LU.Refactorize with its usual full-factorization fallback.
func (e *Engine) Refactorize(a *CSC) error {
	if a.N != e.n {
		return fmt.Errorf("sparse: Engine.Refactorize dimension %d != engine %d", a.N, e.n)
	}
	e.a = a
	switch e.mode {
	case modeCG:
		e.luFresh = false
		if err := e.precondFault(); err != nil {
			return e.fallbackToDirect(a, "ic0", err)
		}
		if err := e.ic.Refresh(a); err != nil {
			return e.fallbackToDirect(a, "ic0", err)
		}
	case modeGMRES:
		e.luFresh = false
		if err := e.precondFault(); err != nil {
			return e.fallbackToDirect(a, "ilu0", err)
		}
		if err := e.il.Refresh(a); err != nil {
			return e.fallbackToDirect(a, "ilu0", err)
		}
	default:
		if e.lu != nil && e.lu.Symbolic() {
			err := e.lu.Refactorize(a)
			if err == nil {
				e.luFresh = true
				return nil
			}
			if !errors.Is(err, ErrRefactorUnhealthy) {
				return err
			}
		}
		return e.factorDirect(a)
	}
	return nil
}

// SolveInto solves a·x = b for the last factorized matrix. Iterative-path
// stagnation falls back to the direct solver transparently (recorded in
// Stats and the diag report); the returned error is only non-nil when the
// direct solver itself fails.
func (e *Engine) SolveInto(x, b []float64) error {
	switch e.mode {
	case modeCG:
		it, res, err := e.cg.solve(e.a, e.ic, x, b, e.opts.Tol, e.opts.MaxIter)
		e.stats.Iterations, e.stats.Residual = it, res
		if err == nil {
			return nil
		}
		return e.solveDirectAfter(x, b, "cg", err)
	case modeGMRES:
		it, res, err := e.gmres.solve(e.a, e.il, x, b, e.opts.Tol, e.opts.MaxIter)
		e.stats.Iterations, e.stats.Residual = it, res
		if err == nil {
			return nil
		}
		return e.solveDirectAfter(x, b, "gmres", err)
	default:
		if !e.luFresh {
			if err := e.factorDirect(e.a); err != nil {
				return err
			}
		}
		e.stats.Iterations, e.stats.Residual = 0, 0
		e.lu.SolveInto(x, b)
		return nil
	}
}

// precondFault consults the configured injector at the preconditioner site.
func (e *Engine) precondFault() error {
	return e.opts.Injector.At(diag.Site{Op: "sparse.precond", Step: e.n})
}

func (e *Engine) buildIC(a *CSC) error {
	if err := e.precondFault(); err != nil {
		return err
	}
	ic, err := newIC0(a)
	if err != nil {
		return err
	}
	e.ic = ic
	e.ensureCGWork()
	return nil
}

func (e *Engine) buildILU(a *CSC) error {
	if err := e.precondFault(); err != nil {
		return err
	}
	il, err := newILU0(a)
	if err != nil {
		return err
	}
	e.il = il
	e.ensureGMRESWork()
	return nil
}

func (e *Engine) ensureCGWork() {
	if e.cg == nil {
		e.cg = newCGWork(e.n)
	}
}

func (e *Engine) ensureGMRESWork() {
	if e.gmres == nil || e.gmres.m != e.opts.Restart {
		e.gmres = newGMRESWork(e.n, e.opts.Restart)
	}
}

// factorDirect runs (or re-runs) the direct LU on a.
func (e *Engine) factorDirect(a *CSC) error {
	if e.lu == nil {
		e.lu = Workspace(e.n)
	}
	if err := e.lu.Factorize(a, e.opts.PivTol); err != nil {
		return err
	}
	e.luFresh = true
	return nil
}

// fallbackToDirect records an iterative-path breakdown and switches the
// engine to the direct solver for this matrix.
func (e *Engine) fallbackToDirect(a *CSC, rung string, cause error) error {
	e.stats.Fallbacks++
	e.opts.Report.Record("sparse.engine", rung, diag.OutcomeFailed,
		fmt.Sprintf("n=%d; falling back to direct LU", e.n), cause)
	e.mode = modeDirect
	if err := e.factorDirect(a); err != nil {
		return err
	}
	e.opts.Report.Record("sparse.engine", "direct", diag.OutcomeOK,
		fmt.Sprintf("fill %.2fx", e.lu.Stats().FillRatio), nil)
	return nil
}

// solveDirectAfter finishes a solve whose iterative attempt failed.
func (e *Engine) solveDirectAfter(x, b []float64, rung string, cause error) error {
	if err := e.fallbackToDirect(e.a, rung, cause); err != nil {
		return err
	}
	e.lu.SolveInto(x, b)
	return nil
}

// symRelTol is the relative tolerance of the numeric-symmetry test: MNA
// stamping produces exactly equal (i,j)/(j,i) values, so anything beyond
// rounding noise means the matrix is genuinely unsymmetric.
const symRelTol = 1e-12

// isSymmetricPosDiag reports whether a is structurally and numerically
// symmetric with a strictly positive diagonal — the shape CG+IC(0) is safe
// to attempt on (a conductance / PDN matrix). Columns must be row-sorted.
func isSymmetricPosDiag(a *CSC) bool {
	n := a.N
	for j := 0; j < n; j++ {
		hasDiag := false
		for p := a.P[j]; p < a.P[j+1]; p++ {
			i := a.I[p]
			if i == j {
				if !(a.X[p] > 0) {
					return false
				}
				hasDiag = true
				continue
			}
			// Every off-diagonal entry must have a matching mirror; checking
			// both triangles catches one-sided entries on either side.
			v, ok := findEntry(a, j, i)
			if !ok {
				return false
			}
			d := math.Abs(a.X[p] - v)
			if d > symRelTol*(math.Abs(a.X[p])+math.Abs(v)) {
				return false
			}
		}
		if !hasDiag {
			return false
		}
	}
	return true
}

// findEntry binary-searches for (row, col); columns must be row-sorted.
func findEntry(a *CSC, row, col int) (float64, bool) {
	lo, hi := a.P[col], a.P[col+1]
	for lo < hi {
		mid := (lo + hi) / 2
		if a.I[mid] < row {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < a.P[col+1] && a.I[lo] == row {
		return a.X[lo], true
	}
	return 0, false
}
