package sparse

import (
	"errors"
	"testing"

	"rlcint/internal/diag"
)

func TestFactorizeSingularTypedError(t *testing.T) {
	// Column 1 is structurally empty: factorization must fail with a
	// PivotError naming it, matchable against both sentinels.
	tr := NewTriplet(2)
	tr.Add(0, 0, 1)
	tr.Add(1, 0, 2)
	lu := Workspace(2)
	err := lu.Factorize(tr.Compile(), 1)
	if err == nil {
		t.Fatal("singular matrix factorized")
	}
	if !errors.Is(err, ErrSingular) {
		t.Errorf("error %v does not match sparse.ErrSingular", err)
	}
	if !errors.Is(err, diag.ErrSingularJacobian) {
		t.Errorf("error %v does not match diag.ErrSingularJacobian", err)
	}
	var pe *PivotError
	if !errors.As(err, &pe) {
		t.Fatalf("error %T is not a *PivotError", err)
	}
	if pe.Col != 1 {
		t.Errorf("Col = %d, want 1", pe.Col)
	}
}
