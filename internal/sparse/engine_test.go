package sparse

import (
	"errors"
	"fmt"
	"math"
	"testing"

	"rlcint/internal/diag"
)

// meshEngineOpts lowers the auto-policy direct threshold so small test
// meshes exercise the iterative path.
func meshEngineOpts() EngineOpts {
	return EngineOpts{DirectBelow: 16}
}

func residual(a *CSC, x, b []float64) float64 {
	r := a.MulVec(x)
	worst := 0.0
	for i := range r {
		if d := math.Abs(r[i] - b[i]); d > worst {
			worst = d
		}
	}
	return worst
}

// TestEngineCGSolvesMesh checks that the auto policy picks CG for the
// symmetric positive-diagonal mesh and converges to the configured
// tolerance.
func TestEngineCGSolvesMesh(t *testing.T) {
	a, b := meshSystem(24, 24)
	e := NewEngine(a.N, meshEngineOpts())
	if err := e.Factorize(a); err != nil {
		t.Fatalf("factorize: %v", err)
	}
	x := make([]float64, a.N)
	if err := e.SolveInto(x, b); err != nil {
		t.Fatalf("solve: %v", err)
	}
	st := e.Stats()
	if st.Solver != "cg" {
		t.Errorf("auto policy picked %q for a mesh, want cg", st.Solver)
	}
	if st.Iterations == 0 {
		t.Error("stats report zero CG iterations")
	}
	if st.Fallbacks != 0 {
		t.Errorf("unexpected fallbacks: %d", st.Fallbacks)
	}
	if r := residual(a, x, b); r > 1e-8 {
		t.Errorf("CG residual too large: %g", r)
	}
}

// TestEngineGMRESSolvesUnsymmetric checks that a structurally unsymmetric
// system routes to GMRES and still converges.
func TestEngineGMRESSolvesUnsymmetric(t *testing.T) {
	// A mesh plus a one-way coupling entry: breaks symmetry, keeps sparsity.
	n := 20 * 20
	tr := NewTriplet(n)
	a0, b := meshSystem(20, 20)
	for j := 0; j < n; j++ {
		for p := a0.P[j]; p < a0.P[j+1]; p++ {
			tr.Add(a0.I[p], j, a0.X[p])
		}
	}
	tr.Add(3, n-2, 0.25)
	a := tr.Compile()

	e := NewEngine(n, meshEngineOpts())
	if err := e.Factorize(a); err != nil {
		t.Fatalf("factorize: %v", err)
	}
	x := make([]float64, n)
	if err := e.SolveInto(x, b); err != nil {
		t.Fatalf("solve: %v", err)
	}
	st := e.Stats()
	if st.Solver != "gmres" {
		t.Errorf("auto policy picked %q for an unsymmetric system, want gmres", st.Solver)
	}
	if r := residual(a, x, b); r > 1e-7 {
		t.Errorf("GMRES residual too large: %g", r)
	}
}

// TestEngineMatchesDirect compares iterative solutions against the direct
// solver on the same systems.
func TestEngineMatchesDirect(t *testing.T) {
	a, b := meshSystem(30, 30)
	lu := Workspace(a.N)
	if err := lu.Factorize(a, 1); err != nil {
		t.Fatal(err)
	}
	want := make([]float64, a.N)
	lu.SolveInto(want, b)

	for _, pol := range []Policy{PolicyCG, PolicyGMRES} {
		opts := meshEngineOpts()
		opts.Policy = pol
		opts.Tol = 1e-12
		e := NewEngine(a.N, opts)
		if err := e.Factorize(a); err != nil {
			t.Fatalf("%v factorize: %v", pol, err)
		}
		got := make([]float64, a.N)
		if err := e.SolveInto(got, b); err != nil {
			t.Fatalf("%v solve: %v", pol, err)
		}
		for i := range want {
			scale := math.Max(math.Abs(want[i]), 1)
			if math.Abs(got[i]-want[i]) > 1e-8*scale {
				t.Fatalf("%v differs from direct at %d: %g vs %g", pol, i, got[i], want[i])
			}
		}
	}
}

// TestEnginePrecondFaultFallsBack is the fault-injection satellite: a
// deterministic injector at the "sparse.precond" site must divert the
// engine onto the direct path with no caller-visible failure, counted in
// Stats and recorded on the diag report.
func TestEnginePrecondFaultFallsBack(t *testing.T) {
	a, b := meshSystem(24, 24)
	boom := errors.New("injected precond fault")
	rep := &diag.Report{}
	opts := meshEngineOpts()
	opts.Injector = diag.FaultEvery("sparse.precond", 1, boom)
	opts.Report = rep
	e := NewEngine(a.N, opts)
	if err := e.Factorize(a); err != nil {
		t.Fatalf("factorize should absorb the injected fault, got %v", err)
	}
	x := make([]float64, a.N)
	if err := e.SolveInto(x, b); err != nil {
		t.Fatalf("solve after fallback: %v", err)
	}
	st := e.Stats()
	if st.Solver != "direct" {
		t.Errorf("solver after fault = %q, want direct", st.Solver)
	}
	if st.Fallbacks != 1 {
		t.Errorf("fallbacks = %d, want 1", st.Fallbacks)
	}
	if last, ok := rep.Last("sparse.engine"); !ok || last.Outcome != diag.OutcomeOK {
		t.Errorf("report does not end with a successful direct rung: %v", rep.Summary())
	}
	if r := residual(a, x, b); r > 1e-9 {
		t.Errorf("fallback residual too large: %g", r)
	}
}

// TestEngineBreakdownFallsBack drives a numeric IC(0) breakdown (an
// indefinite symmetric matrix under a forced CG policy) and checks the
// engine silently completes on the direct path.
func TestEngineBreakdownFallsBack(t *testing.T) {
	n := 32
	tr := NewTriplet(n)
	for i := 0; i < n; i++ {
		tr.Add(i, i, -2) // negative diagonal: IC(0) must refuse
		if i+1 < n {
			tr.Add(i, i+1, 1)
			tr.Add(i+1, i, 1)
		}
	}
	a := tr.Compile()
	b := make([]float64, n)
	for i := range b {
		b[i] = 1
	}
	opts := meshEngineOpts()
	opts.Policy = PolicyCG
	e := NewEngine(n, opts)
	if err := e.Factorize(a); err != nil {
		t.Fatalf("factorize should fall back, got %v", err)
	}
	if st := e.Stats(); st.Solver != "direct" || st.Fallbacks != 1 {
		t.Errorf("stats after breakdown = %+v, want direct with 1 fallback", st)
	}
	x := make([]float64, n)
	if err := e.SolveInto(x, b); err != nil {
		t.Fatalf("solve: %v", err)
	}
	if r := residual(a, x, b); r > 1e-9 {
		t.Errorf("residual too large: %g", r)
	}
}

// TestEngineRefactorizeAllocFree is the alloc-guard satellite: on a 64×64
// mesh (4096 unknowns — the CG path under the default policy), repeated
// Refactorize and SolveInto must allocate nothing in steady state.
func TestEngineRefactorizeAllocFree(t *testing.T) {
	a, b := meshSystem(64, 64)
	e := NewEngine(a.N, EngineOpts{})
	if err := e.Factorize(a); err != nil {
		t.Fatal(err)
	}
	x := make([]float64, a.N)
	if err := e.SolveInto(x, b); err != nil {
		t.Fatal(err)
	}
	if st := e.Stats(); st.Solver != "cg" {
		t.Fatalf("64×64 mesh solver = %q, want cg under default policy", st.Solver)
	}
	allocs := testing.AllocsPerRun(10, func() {
		if err := e.Refactorize(a); err != nil {
			t.Fatal(err)
		}
		if err := e.SolveInto(x, b); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("Engine Refactorize+SolveInto allocates %.0f objects/op, want 0", allocs)
	}
}

// TestEngineRefactorizeTracksValues checks the preconditioner refresh
// actually follows the matrix: solve, scale the values, refresh, solve
// again, and verify both answers against the direct solver.
func TestEngineRefactorizeTracksValues(t *testing.T) {
	nx, ny := 20, 20
	build := func(scale float64) *CSC {
		a, _ := meshSystem(nx, ny)
		// Copy with scaled values (same pattern).
		tr := NewTriplet(a.N)
		for j := 0; j < a.N; j++ {
			for p := a.P[j]; p < a.P[j+1]; p++ {
				tr.Add(a.I[p], j, a.X[p]*scale)
			}
		}
		return tr.Compile()
	}
	_, b := meshSystem(nx, ny)
	a1 := build(1)
	a2 := build(3.5)

	opts := meshEngineOpts()
	opts.Tol = 1e-12
	e := NewEngine(a1.N, opts)
	if err := e.Factorize(a1); err != nil {
		t.Fatal(err)
	}
	x := make([]float64, a1.N)
	if err := e.SolveInto(x, b); err != nil {
		t.Fatal(err)
	}
	if err := e.Refactorize(a2); err != nil {
		t.Fatal(err)
	}
	if err := e.SolveInto(x, b); err != nil {
		t.Fatal(err)
	}
	if r := residual(a2, x, b); r > 1e-8 {
		t.Errorf("post-refresh residual too large: %g", r)
	}
}

// TestEngineStallFallsBack forces a hopeless iteration budget so the
// iterative solve stalls, and checks the solve still lands on the direct
// path with the stall recorded.
func TestEngineStallFallsBack(t *testing.T) {
	a, b := meshSystem(24, 24)
	rep := &diag.Report{}
	opts := meshEngineOpts()
	opts.MaxIter = 1
	opts.Tol = 1e-14
	opts.Report = rep
	e := NewEngine(a.N, opts)
	if err := e.Factorize(a); err != nil {
		t.Fatal(err)
	}
	x := make([]float64, a.N)
	if err := e.SolveInto(x, b); err != nil {
		t.Fatalf("solve: %v", err)
	}
	if st := e.Stats(); st.Solver != "direct" || st.Fallbacks != 1 {
		t.Errorf("stats after stall = %+v, want direct with 1 fallback", st)
	}
	if rep.Tried("sparse.engine") == 0 {
		t.Error("stall was not recorded on the diag report")
	}
	if r := residual(a, x, b); r > 1e-9 {
		t.Errorf("residual too large: %g", r)
	}
}

// TestEngineZeroRHS covers the trivial-but-easy-to-break case.
func TestEngineZeroRHS(t *testing.T) {
	a, _ := meshSystem(12, 12)
	for _, pol := range []Policy{PolicyCG, PolicyGMRES, PolicyDirect} {
		opts := meshEngineOpts()
		opts.Policy = pol
		e := NewEngine(a.N, opts)
		if err := e.Factorize(a); err != nil {
			t.Fatalf("%v: %v", pol, err)
		}
		x := make([]float64, a.N)
		b := make([]float64, a.N)
		if err := e.SolveInto(x, b); err != nil {
			t.Fatalf("%v: %v", pol, err)
		}
		for i, v := range x {
			if v != 0 {
				t.Fatalf("%v: x[%d] = %g for zero rhs", pol, i, v)
			}
		}
	}
}

// TestPolicyStrings pins the names used in metrics and logs.
func TestPolicyStrings(t *testing.T) {
	cases := map[Policy]string{
		PolicyAuto: "auto", PolicyDirect: "direct", PolicyCG: "cg", PolicyGMRES: "gmres",
	}
	for p, want := range cases {
		if got := p.String(); got != want {
			t.Errorf("Policy(%d).String() = %q, want %q", int(p), got, want)
		}
	}
	if s := fmt.Sprint(OrderAuto, OrderNatural, OrderAMD); s != "auto natural amd" {
		t.Errorf("ordering strings = %q", s)
	}
}
