package sparse

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"rlcint/internal/lina"
)

func denseFromCSC(c *CSC) *lina.Dense {
	d := lina.NewDense(c.N, c.N)
	for j := 0; j < c.N; j++ {
		for p := c.P[j]; p < c.P[j+1]; p++ {
			d.Add(c.I[p], j, c.X[p])
		}
	}
	return d
}

func randomSystem(r *rand.Rand, n int, density float64) (*CSC, []float64) {
	t := NewTriplet(n)
	for i := 0; i < n; i++ {
		rowSum := 0.0
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			if r.Float64() < density {
				v := r.Float64()*2 - 1
				t.Add(i, j, v)
				rowSum += math.Abs(v)
			}
		}
		t.Add(i, i, rowSum+1+r.Float64()) // diagonally dominant => nonsingular
	}
	b := make([]float64, n)
	for i := range b {
		b[i] = r.Float64()*10 - 5
	}
	return t.Compile(), b
}

func TestTripletCompileDuplicates(t *testing.T) {
	tr := NewTriplet(2)
	tr.Add(0, 0, 1)
	tr.Add(0, 0, 2) // duplicate sums
	tr.Add(1, 0, 4)
	tr.Add(1, 1, 5)
	c := tr.Compile()
	if c.At(0, 0) != 3 || c.At(1, 0) != 4 || c.At(1, 1) != 5 || c.At(0, 1) != 0 {
		t.Errorf("compile wrong: %v", c.X)
	}
	if c.NNZ() != 3 {
		t.Errorf("nnz = %d, want 3", c.NNZ())
	}
}

func TestTripletFrozenReplay(t *testing.T) {
	tr := NewTriplet(2)
	stamp := func(scale float64) {
		tr.Add(0, 0, 2*scale)
		tr.Add(0, 1, scale)
		tr.Add(1, 1, 3*scale)
		tr.Add(0, 0, scale) // duplicate entry in the pattern
	}
	stamp(1)
	c := tr.Compile()
	if c.At(0, 0) != 3 {
		t.Fatalf("initial compile: %v", c.At(0, 0))
	}
	// Replay with different values; same pattern, updated in place.
	tr.Reset()
	stamp(2)
	if c.At(0, 0) != 6 || c.At(0, 1) != 2 || c.At(1, 1) != 6 {
		t.Errorf("frozen replay values wrong: %v", c.X)
	}
	if got := tr.Compile(); got != c {
		t.Error("Compile after freeze must return the same CSC")
	}
}

func TestTripletFrozenDeviationPanics(t *testing.T) {
	tr := NewTriplet(2)
	tr.Add(0, 0, 1)
	tr.Compile()
	tr.Reset()
	defer func() {
		if recover() == nil {
			t.Error("expected panic on deviating stamp order")
		}
	}()
	tr.Add(1, 1, 1)
}

func TestLUSmallExact(t *testing.T) {
	// [[2,1],[1,3]] x = [5,10] -> x = [1,3]
	tr := NewTriplet(2)
	tr.Add(0, 0, 2)
	tr.Add(0, 1, 1)
	tr.Add(1, 0, 1)
	tr.Add(1, 1, 3)
	f := Workspace(2)
	if err := f.Factorize(tr.Compile(), 1); err != nil {
		t.Fatalf("Factorize: %v", err)
	}
	x, err := f.Solve([]float64{5, 10})
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if math.Abs(x[0]-1) > 1e-12 || math.Abs(x[1]-3) > 1e-12 {
		t.Errorf("x = %v, want [1 3]", x)
	}
}

func TestLUZeroDiagonalNeedsPivot(t *testing.T) {
	tr := NewTriplet(2)
	tr.Add(0, 1, 1)
	tr.Add(1, 0, 1)
	f := Workspace(2)
	if err := f.Factorize(tr.Compile(), 1); err != nil {
		t.Fatalf("Factorize: %v", err)
	}
	x, err := f.Solve([]float64{3, 7})
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if x[0] != 7 || x[1] != 3 {
		t.Errorf("x = %v, want [7 3]", x)
	}
}

func TestLUSingular(t *testing.T) {
	tr := NewTriplet(2)
	tr.Add(0, 0, 1)
	tr.Add(0, 1, 2)
	tr.Add(1, 0, 2)
	tr.Add(1, 1, 4)
	f := Workspace(2)
	if err := f.Factorize(tr.Compile(), 1); err == nil {
		t.Error("expected ErrSingular")
	}
}

func TestLURandomAgainstDense(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for trial := 0; trial < 30; trial++ {
		n := 2 + r.Intn(40)
		c, b := randomSystem(r, n, 0.2)
		f := Workspace(n)
		if err := f.Factorize(c, 1); err != nil {
			t.Fatalf("n=%d Factorize: %v", n, err)
		}
		x, err := f.Solve(b)
		if err != nil {
			t.Fatalf("Solve: %v", err)
		}
		want, err := lina.Solve(denseFromCSC(c), b)
		if err != nil {
			t.Fatalf("dense Solve: %v", err)
		}
		for i := range want {
			if math.Abs(x[i]-want[i]) > 1e-8*(1+math.Abs(want[i])) {
				t.Fatalf("n=%d x[%d] = %v, want %v", n, i, x[i], want[i])
			}
		}
	}
}

func TestLUThresholdPivoting(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	c, b := randomSystem(r, 25, 0.15)
	f := Workspace(25)
	if err := f.Factorize(c, 0.1); err != nil {
		t.Fatalf("Factorize with threshold: %v", err)
	}
	x, _ := f.Solve(b)
	res := c.MulVec(x)
	for i := range b {
		if math.Abs(res[i]-b[i]) > 1e-8 {
			t.Fatalf("residual[%d] = %v", i, res[i]-b[i])
		}
	}
}

func TestLULadderStructure(t *testing.T) {
	// Tridiagonal ladder: the structure the MNA of an RC line produces.
	n := 200
	tr := NewTriplet(n)
	for i := 0; i < n; i++ {
		tr.Add(i, i, 2.5)
		if i > 0 {
			tr.Add(i, i-1, -1)
			tr.Add(i-1, i, -1)
		}
	}
	c := tr.Compile()
	f := Workspace(n)
	if err := f.Factorize(c, 1); err != nil {
		t.Fatalf("Factorize: %v", err)
	}
	b := make([]float64, n)
	b[0], b[n-1] = 1, 2
	x, _ := f.Solve(b)
	res := c.MulVec(x)
	for i := range b {
		if math.Abs(res[i]-b[i]) > 1e-10 {
			t.Fatalf("residual[%d] = %v", i, res[i]-b[i])
		}
	}
}

func TestLUWorkspaceReuse(t *testing.T) {
	// Factorize the same workspace with different matrices; results stay correct.
	r := rand.New(rand.NewSource(5))
	f := Workspace(15)
	for trial := 0; trial < 10; trial++ {
		c, b := randomSystem(r, 15, 0.3)
		if err := f.Factorize(c, 1); err != nil {
			t.Fatalf("Factorize: %v", err)
		}
		x, _ := f.Solve(b)
		res := c.MulVec(x)
		for i := range b {
			if math.Abs(res[i]-b[i]) > 1e-8 {
				t.Fatalf("trial %d residual[%d] = %v", trial, i, res[i]-b[i])
			}
		}
	}
}

func TestLUSolveResidualProperty(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(30)
		c, b := randomSystem(r, n, 0.25)
		f := Workspace(n)
		if err := f.Factorize(c, 1); err != nil {
			return false
		}
		x, err := f.Solve(b)
		if err != nil {
			return false
		}
		res := c.MulVec(x)
		for i := range b {
			if math.Abs(res[i]-b[i]) > 1e-8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestCSCMulVecAndAt(t *testing.T) {
	tr := NewTriplet(3)
	tr.Add(0, 0, 1)
	tr.Add(1, 1, 2)
	tr.Add(2, 0, 3)
	tr.Add(0, 2, -1)
	c := tr.Compile()
	y := c.MulVec([]float64{1, 1, 1})
	want := []float64{0, 2, 3}
	for i := range want {
		if y[i] != want[i] {
			t.Errorf("y[%d] = %v, want %v", i, y[i], want[i])
		}
	}
	if c.At(2, 2) != 0 {
		t.Error("missing entry must read as zero")
	}
}

func BenchmarkLUFactorLadder500(b *testing.B) {
	n := 500
	tr := NewTriplet(n)
	for i := 0; i < n; i++ {
		tr.Add(i, i, 2.5)
		if i > 0 {
			tr.Add(i, i-1, -1)
			tr.Add(i-1, i, -1)
		}
	}
	c := tr.Compile()
	f := Workspace(n)
	rhs := make([]float64, n)
	rhs[0] = 1
	x := make([]float64, n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := f.Factorize(c, 1); err != nil {
			b.Fatal(err)
		}
		f.SolveInto(x, rhs)
	}
}
