package sparse

import (
	"math/rand"
	"testing"
)

// BenchmarkFactorize measures the full symbolic+pivotal factorization of an
// MNA-like sparse system — the per-iteration cost of the legacy solver path.
func BenchmarkFactorize(b *testing.B) {
	b.ReportAllocs()
	r := rand.New(rand.NewSource(1))
	a, _ := randomSystem(r, 400, 0.01)
	lu := Workspace(400)
	if err := lu.Factorize(a, 1e-3); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := lu.Factorize(a, 1e-3); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRefactorize measures the numeric-only refactorization replaying
// the cached symbolic analysis and pivot sequence — the per-iteration cost
// of the fast solver path.
func BenchmarkRefactorize(b *testing.B) {
	b.ReportAllocs()
	r := rand.New(rand.NewSource(1))
	a, _ := randomSystem(r, 400, 0.01)
	lu := Workspace(400)
	if err := lu.Factorize(a, 1e-3); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := lu.Refactorize(a); err != nil {
			b.Fatal(err)
		}
	}
}
