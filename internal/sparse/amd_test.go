package sparse

import (
	"math"
	"math/rand"
	"testing"
)

// meshSystem builds the 5-point-stencil conductance matrix of an nx×ny
// resistive grid with a small diagonal shift — the PDN mesh structure the
// ordering exists for.
func meshSystem(nx, ny int) (*CSC, []float64) {
	n := nx * ny
	id := func(x, y int) int { return y*nx + x }
	t := NewTriplet(n)
	for y := 0; y < ny; y++ {
		for x := 0; x < nx; x++ {
			i := id(x, y)
			t.Add(i, i, 0.01) // grounding shift keeps the matrix nonsingular
			if x+1 < nx {
				j := id(x+1, y)
				t.Add(i, i, 1)
				t.Add(j, j, 1)
				t.Add(i, j, -1)
				t.Add(j, i, -1)
			}
			if y+1 < ny {
				j := id(x, y+1)
				t.Add(i, i, 1)
				t.Add(j, j, 1)
				t.Add(i, j, -1)
				t.Add(j, i, -1)
			}
		}
	}
	b := make([]float64, n)
	for i := range b {
		b[i] = math.Sin(float64(i))
	}
	return t.Compile(), b
}

// TestAMDOrderIsPermutation checks the ordering invariant that correctness
// rests on: whatever the quality heuristics do, the result must be a
// permutation of [0, n).
func TestAMDOrderIsPermutation(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	check := func(a *CSC) {
		perm := amdOrder(a)
		if len(perm) != a.N {
			t.Fatalf("perm has %d entries for n=%d", len(perm), a.N)
		}
		seen := make([]bool, a.N)
		for _, p := range perm {
			if p < 0 || p >= a.N || seen[p] {
				t.Fatalf("perm %v is not a permutation", perm)
			}
			seen[p] = true
		}
	}
	for trial := 0; trial < 40; trial++ {
		n := 1 + r.Intn(60)
		a, _ := randomSystem(r, n, 0.05+r.Float64()*0.4)
		check(a)
	}
	mesh, _ := meshSystem(17, 23)
	check(mesh)
	// Structurally extreme cases: diagonal-only, dense row/column arrow.
	diag := NewTriplet(6)
	for i := 0; i < 6; i++ {
		diag.Add(i, i, 1)
	}
	check(diag.Compile())
	arrow := NewTriplet(12)
	for i := 0; i < 12; i++ {
		arrow.Add(i, i, 4)
		if i > 0 {
			arrow.Add(0, i, -1)
			arrow.Add(i, 0, -1)
		}
	}
	check(arrow.Compile())
}

// TestAMDReducesMeshFill is the quality gate: on a 2-D mesh the AMD order
// must produce dramatically less fill than the natural (banded) order. The
// 3× margin is loose — observed reduction on a 40×40 mesh is >5× — so the
// test pins "the ordering works" without chasing exact heuristic output.
func TestAMDReducesMeshFill(t *testing.T) {
	a, _ := meshSystem(40, 40)
	nat := Workspace(a.N)
	nat.SetOrdering(OrderNatural)
	if err := nat.Factorize(a, 1e-3); err != nil {
		t.Fatalf("natural factorize: %v", err)
	}
	amd := Workspace(a.N)
	amd.SetOrdering(OrderAMD)
	if err := amd.Factorize(a, 1e-3); err != nil {
		t.Fatalf("amd factorize: %v", err)
	}
	natFill := nat.Stats().NNZL + nat.Stats().NNZU
	amdFill := amd.Stats().NNZL + amd.Stats().NNZU
	if amdFill*3 > natFill {
		t.Errorf("amd fill %d is not < natural fill %d / 3", amdFill, natFill)
	}
	if got := amd.Stats().Ordering; got != "amd" {
		t.Errorf("Stats().Ordering = %q, want amd", got)
	}
	if got := nat.Stats().Ordering; got != "natural" {
		t.Errorf("Stats().Ordering = %q, want natural", got)
	}
}

// TestOrderedSolveMatchesNatural is the permutation-correctness suite: for
// random sparsity patterns and the mesh, the AMD-ordered solve must agree
// with the natural-order solve to 1e-12 relative — the ordering changes the
// arithmetic order, never the answer.
func TestOrderedSolveMatchesNatural(t *testing.T) {
	r := rand.New(rand.NewSource(77))
	compare := func(a *CSC, b []float64) {
		t.Helper()
		nat := Workspace(a.N)
		nat.SetOrdering(OrderNatural)
		if err := nat.Factorize(a, 1e-3); err != nil {
			t.Fatalf("natural factorize: %v", err)
		}
		want := make([]float64, a.N)
		nat.SolveInto(want, b)

		amd := Workspace(a.N)
		amd.SetOrdering(OrderAMD)
		if err := amd.Factorize(a, 1e-3); err != nil {
			t.Fatalf("amd factorize: %v", err)
		}
		got := make([]float64, a.N)
		amd.SolveInto(got, b)
		for i := range want {
			scale := math.Max(math.Abs(want[i]), 1)
			if math.Abs(got[i]-want[i]) > 1e-12*scale {
				t.Fatalf("n=%d: ordered solve differs at %d: %g vs %g",
					a.N, i, got[i], want[i])
			}
		}
	}
	for trial := 0; trial < 30; trial++ {
		n := 2 + r.Intn(80)
		a, b := randomSystem(r, n, 0.05+r.Float64()*0.3)
		compare(a, b)
	}
	mesh, b := meshSystem(20, 20)
	compare(mesh, b)
}

// TestOrderedRefactorize exercises the Refactorize contract through the
// ordered path: unchanged values produce bit-identical solutions, a changed
// pattern is re-ordered transparently, and repeated Refactorize stays
// allocation-free.
func TestOrderedRefactorize(t *testing.T) {
	a, b := meshSystem(16, 16)
	lu := Workspace(a.N)
	lu.SetOrdering(OrderAMD)
	if err := lu.Factorize(a, 1e-3); err != nil {
		t.Fatal(err)
	}
	want := make([]float64, a.N)
	lu.SolveInto(want, b)
	if err := lu.Refactorize(a); err != nil {
		t.Fatalf("refactorize: %v", err)
	}
	got := make([]float64, a.N)
	lu.SolveInto(got, b)
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("ordered refactorize not bit-identical at %d: %g != %g", i, got[i], want[i])
		}
	}
	allocs := testing.AllocsPerRun(20, func() {
		if err := lu.Refactorize(a); err != nil {
			t.Fatal(err)
		}
		lu.SolveInto(got, b)
	})
	if allocs != 0 {
		t.Errorf("ordered Refactorize+SolveInto allocates %.0f objects/op, want 0", allocs)
	}
	// Repeated full Factorize on the same pattern reuses the cached ordering
	// without allocating.
	allocs = testing.AllocsPerRun(20, func() {
		if err := lu.Factorize(a, 1e-3); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("same-pattern ordered Factorize allocates %.0f objects/op, want 0", allocs)
	}
}
