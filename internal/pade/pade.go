// Package pade implements the paper's second-order (two-pole) Padé model of
// the driver–interconnect–load stage, Eq. (2):
//
//	H(s) ≈ 1/(1 + b1·s + b2·s²)
//
// with the closed-form coefficients of Section 2.1, its exact step response,
// the numerical f×100% delay solve of Eq. (3), damping classification,
// overshoot/undershoot metrics, and the critical line inductance of Eq. (4).
package pade

import (
	"fmt"
	"math"

	"rlcint/internal/diag"
	"rlcint/internal/num"
	"rlcint/internal/runctl"
	"rlcint/internal/tline"
)

// Damping classifies the second-order response.
type Damping int

const (
	Overdamped Damping = iota
	CriticallyDamped
	Underdamped
)

// String implements fmt.Stringer.
func (d Damping) String() string {
	switch d {
	case Overdamped:
		return "overdamped"
	case CriticallyDamped:
		return "critically damped"
	case Underdamped:
		return "underdamped"
	}
	return fmt.Sprintf("Damping(%d)", int(d))
}

// criticalTol is the relative width of the discriminant band treated as
// critically damped; inside it the confluent step-response formula is used
// to avoid catastrophic cancellation between nearly equal poles.
const criticalTol = 1e-9

// Model is a unit-gain two-pole lowpass 1/(1 + b1 s + b2 s²) with b1, b2 > 0
// (a passive stage always yields positive coefficients).
type Model struct {
	B1, B2 float64
}

// New validates and constructs a Model. Non-physical coefficients (NaN,
// Inf, or non-positive) are rejected with a diag.ErrDomain-matchable error.
func New(b1, b2 float64) (Model, error) {
	if !(b1 > 0) || !(b2 > 0) || math.IsInf(b1, 1) || math.IsInf(b2, 1) {
		return Model{}, fmt.Errorf("pade: non-physical coefficients b1=%g b2=%g: %w", b1, b2, diag.ErrDomain)
	}
	return Model{B1: b1, B2: b2}, nil
}

// FromStage builds the model for a driver–line–load stage using the paper's
// closed-form b1 and b2 (equivalently, the first two moments of the exact
// transfer function). Stages carrying NaN/Inf or non-physical parameters
// (e.g. assembled via StageOf from bad inputs) are rejected with a
// diag.ErrDomain-matchable error.
func FromStage(st tline.Stage) (Model, error) {
	if err := st.Validate(); err != nil {
		return Model{}, err
	}
	var buf [3]float64
	d := st.DenominatorSeriesInto(buf[:], 3)
	return New(d[1], d[2])
}

// Discriminant returns b1² − 4·b2: negative for underdamped responses.
func (m Model) Discriminant() float64 { return m.B1*m.B1 - 4*m.B2 }

// Zeta returns the damping ratio ζ = b1/(2√b2).
func (m Model) Zeta() float64 { return m.B1 / (2 * math.Sqrt(m.B2)) }

// OmegaN returns the natural frequency ωn = 1/√b2 (rad/s).
func (m Model) OmegaN() float64 { return 1 / math.Sqrt(m.B2) }

// Damping classifies the response, treating a small relative band around
// zero discriminant as critically damped.
func (m Model) Damping() Damping {
	d := m.Discriminant()
	band := criticalTol * m.B1 * m.B1
	switch {
	case d > band:
		return Overdamped
	case d < -band:
		return Underdamped
	}
	return CriticallyDamped
}

// Poles returns the two poles s1, s2 (complex conjugate when underdamped).
// The real-pole case returns s1 >= s2 (s1 is the slow pole).
func (m Model) Poles() (complex128, complex128) {
	disc := m.Discriminant()
	if disc >= 0 {
		sq := math.Sqrt(disc)
		s1 := (-m.B1 + sq) / (2 * m.B2)
		s2 := (-m.B1 - sq) / (2 * m.B2)
		return complex(s1, 0), complex(s2, 0)
	}
	re := -m.B1 / (2 * m.B2)
	im := math.Sqrt(-disc) / (2 * m.B2)
	return complex(re, im), complex(re, -im)
}

// Step evaluates the unit step response at time t:
//
//	v(t) = 1 − s2/(s2−s1)·exp(s1 t) + s1/(s2−s1)·exp(s2 t),
//
// using numerically safe real forms in each damping regime and the confluent
// limit v(t) = 1 − (1 − s̄t)·exp(s̄t) near critical damping.
func (m Model) Step(t float64) float64 {
	if t <= 0 {
		return 0
	}
	disc := m.Discriminant()
	band := criticalTol * m.B1 * m.B1
	switch {
	case disc > band: // overdamped: two real poles
		sq := math.Sqrt(disc)
		s1 := (-m.B1 + sq) / (2 * m.B2) // slow pole
		s2 := (-m.B1 - sq) / (2 * m.B2) // fast pole
		d := s2 - s1
		return 1 - s2/d*math.Exp(s1*t) + s1/d*math.Exp(s2*t)
	case disc < -band: // underdamped: complex pair −α ± jβ
		alpha := m.B1 / (2 * m.B2)
		beta := math.Sqrt(-disc) / (2 * m.B2)
		return 1 - math.Exp(-alpha*t)*(math.Cos(beta*t)+alpha/beta*math.Sin(beta*t))
	default: // critically damped (confluent limit)
		s := -m.B1 / (2 * m.B2)
		return 1 - (1-s*t)*math.Exp(s*t)
	}
}

// StepDeriv evaluates dv/dt of the unit step response at time t.
func (m Model) StepDeriv(t float64) float64 {
	if t < 0 {
		return 0
	}
	disc := m.Discriminant()
	band := criticalTol * m.B1 * m.B1
	switch {
	case disc > band:
		sq := math.Sqrt(disc)
		s1 := (-m.B1 + sq) / (2 * m.B2)
		s2 := (-m.B1 - sq) / (2 * m.B2)
		d := s2 - s1
		// v' = s1·s2/(s2−s1)·(exp(s2 t) − exp(s1 t)) ... derived from Step.
		return -s1 * s2 / d * math.Exp(s1*t) * (1 - math.Exp((s2-s1)*t))
	case disc < -band:
		alpha := m.B1 / (2 * m.B2)
		beta := math.Sqrt(-disc) / (2 * m.B2)
		// v' = exp(−αt)·(α²+β²)/β·sin(βt)
		return math.Exp(-alpha*t) * (alpha*alpha + beta*beta) / beta * math.Sin(beta*t)
	default:
		s := -m.B1 / (2 * m.B2)
		return s * s * t * math.Exp(s*t)
	}
}

// DelayResult carries the threshold delay and solver diagnostics.
type DelayResult struct {
	Tau        float64 // time of the first crossing of f
	Iterations int     // Newton iterations used (the paper reports ≤ 4)
}

// ErrThreshold rejects delay thresholds outside [0, 1). It wraps
// diag.ErrDomain, so callers can match either sentinel.
var ErrThreshold = fmt.Errorf("pade: threshold must satisfy 0 <= f < 1: %w", diag.ErrDomain)

// Delay solves the paper's Eq. (3) for the f×100% delay: the first time at
// which the unit step response reaches f. The root is bracketed by scanning
// (so that, for underdamped responses, the first crossing rather than a
// later one is found) and polished with safeguarded Newton.
func (m Model) Delay(f float64) (DelayResult, error) {
	return m.DelayWith(nil, f)
}

// stepState carries (model, threshold) into the package-level residual
// functions below, so the delay solvers avoid a per-call closure allocation
// on the optimizer's hottest path.
type stepState struct {
	m Model
	f float64
}

func stepResidual(s stepState, t float64) float64 { return s.m.Step(t) - s.f }
func stepDeriv(s stepState, t float64) float64    { return s.m.StepDeriv(t) }

// DelayWith is Delay consulting ctl (which may be nil) between bracket-
// growth attempts, so cancelling an optimization aborts even a pathological
// threshold search promptly.
func (m Model) DelayWith(ctl *runctl.Controller, f float64) (DelayResult, error) {
	if f < 0 || f >= 1 || math.IsNaN(f) {
		return DelayResult{}, fmt.Errorf("%w: f=%g", ErrThreshold, f)
	}
	if f == 0 {
		return DelayResult{}, nil
	}
	g := stepState{m: m, f: f}
	// Characteristic time: the larger of the Elmore time and the natural
	// period. Grow the scan window until the crossing is inside.
	tScale := math.Max(m.B1, math.Sqrt(m.B2))
	tmax := 4 * tScale
	var lo, hi float64
	var err error
	for try := 0; ; try++ {
		if err := ctl.Check("pade.Delay"); err != nil {
			return DelayResult{}, err
		}
		lo, hi, err = num.FirstCrossingS(stepResidual, g, 0, tmax, 512)
		if err == nil {
			break
		}
		if try == 24 {
			return DelayResult{}, fmt.Errorf("pade: Delay(f=%g): no crossing found up to t=%g: %w", f, tmax, err)
		}
		tmax *= 4
	}
	res, err := num.Newton1DS(stepResidual, stepDeriv, g, lo, hi, 0.5*(lo+hi), 1e-14*tScale+1e-30, 60)
	if err != nil {
		// Fall back to Brent inside the bracket: Step is continuous, so this
		// cannot fail once a bracket exists.
		tau, berr := num.BrentS(stepResidual, g, lo, hi, 1e-16*tScale, 200)
		if berr != nil {
			return DelayResult{}, fmt.Errorf("pade: Delay(f=%g): %w", f, berr)
		}
		return DelayResult{Tau: tau, Iterations: res.Iterations}, nil
	}
	return DelayResult{Tau: res.Root, Iterations: res.Iterations}, nil
}

// DelaySeeded is DelayWith with a warm-start hint: hint is the converged
// delay of a neighboring solve (an adjacent grid point of a sweep, or the
// previous evaluation of an optimization trajectory). When a tight bracket
// around the hint straddles the threshold crossing — and, for underdamped
// responses, no earlier crossing exists — the solve skips the 512-sample
// scan of the cold path and polishes inside the local bracket. On any doubt
// (bad hint, bracket not confirmed, possible earlier crossing, failed
// polish) it falls back to DelayWith, so it never returns a different
// crossing than the cold solve and agrees with it to the solver tolerance
// (~1e-14 relative).
func (m Model) DelaySeeded(ctl *runctl.Controller, f, hint float64) (DelayResult, error) {
	if !(hint > 0) || math.IsInf(hint, 1) {
		return m.DelayWith(ctl, f)
	}
	if f < 0 || f >= 1 || math.IsNaN(f) {
		return DelayResult{}, fmt.Errorf("%w: f=%g", ErrThreshold, f)
	}
	if f == 0 {
		return DelayResult{}, nil
	}
	if err := ctl.Check("pade.DelaySeeded"); err != nil {
		return DelayResult{}, err
	}
	g := stepState{m: m, f: f}
	lo, hi := 0.75*hint, hint/0.75
	if !(stepResidual(g, lo) < 0 && stepResidual(g, hi) > 0) {
		return m.DelayWith(ctl, f)
	}
	// For underdamped responses the local bracket could straddle a later
	// crossing of an oscillatory tail; confirm no crossing precedes it.
	if m.Damping() == Underdamped {
		if _, _, crosses := num.CrossingScanS(stepResidual, g, 0, lo, 64); crosses {
			return m.DelayWith(ctl, f)
		}
	}
	tScale := math.Max(m.B1, math.Sqrt(m.B2))
	res, err := num.Newton1DS(stepResidual, stepDeriv, g, lo, hi, hint, 1e-14*tScale+1e-30, 60)
	if err != nil {
		return m.DelayWith(ctl, f)
	}
	return DelayResult{Tau: res.Root, Iterations: res.Iterations}, nil
}

// Overshoot returns the peak of the step response relative to the final
// value (v_peak − 1, i.e. 0 for non-underdamped responses) and the time of
// the peak (+Inf when there is no finite peak).
func (m Model) Overshoot() (mag, tPeak float64) {
	if m.Damping() != Underdamped {
		return 0, math.Inf(1)
	}
	alpha := m.B1 / (2 * m.B2)
	beta := math.Sqrt(-m.Discriminant()) / (2 * m.B2)
	tPeak = math.Pi / beta
	return math.Exp(-alpha * tPeak), tPeak
}

// Undershoot returns the depth of the first post-peak minimum below the
// final value (1 − v_min ≥ 0 relative magnitude, 0 for non-underdamped) and
// its time. This is the quantity the paper ties to false switching.
func (m Model) Undershoot() (mag, tMin float64) {
	if m.Damping() != Underdamped {
		return 0, math.Inf(1)
	}
	alpha := m.B1 / (2 * m.B2)
	beta := math.Sqrt(-m.Discriminant()) / (2 * m.B2)
	tMin = 2 * math.Pi / beta
	return math.Exp(-alpha * tMin), tMin
}

// SettleTime returns the time after which the response envelope stays within
// ±tol of the final value (envelope-based, conservative for real poles).
func (m Model) SettleTime(tol float64) float64 {
	if tol <= 0 || tol >= 1 {
		tol = 0.01
	}
	switch m.Damping() {
	case Underdamped, CriticallyDamped:
		alpha := m.B1 / (2 * m.B2)
		// Envelope exp(−αt)·√(1+(α/β)²) ≤ exp(−αt)/ sin(acos ζ); use the
		// standard ζ-corrected bound, clamped for near-critical ζ.
		zeta := math.Min(m.Zeta(), 0.999)
		return -math.Log(tol*math.Sqrt(1-zeta*zeta)) / alpha
	default:
		// Slow pole dominates; include its residue amplitude |s2/(s2−s1)|.
		sq := math.Sqrt(m.Discriminant())
		s1 := (-m.B1 + sq) / (2 * m.B2)
		s2 := (-m.B1 - sq) / (2 * m.B2)
		amp := math.Abs(s2 / (s2 - s1))
		return math.Log(amp/tol) / -s1
	}
}

// LCrit computes the paper's Eq. (4): the per-unit-length line inductance
// that makes the stage critically damped at the given geometry and sizing.
// All other stage parameters are taken from st; st.Line.L is ignored.
// The result may be negative, meaning the stage is underdamped even with a
// zero-inductance line (cannot happen for physical b1², but kept signed for
// diagnostic use).
func LCrit(st tline.Stage) float64 {
	r, c := st.Line.R, st.Line.C
	h := st.H
	rs, cp, cl := st.RS, st.CP, st.CL
	b1 := rs*(cp+cl) + r*c*h*h/2 + rs*c*h + cl*r*h
	num := b1*b1/4 -
		r*r*c*c*h*h*h*h/24 -
		rs*(cp+cl)*r*c*h*h/2 -
		(rs*c*h+cl*r*h)*r*c*h*h/6 -
		rs*cp*cl*r*h
	den := c*h*h/2 + cl*h
	return num / den
}
