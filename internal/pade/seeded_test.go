package pade

import (
	"math"
	"testing"

	"rlcint/internal/tech"
	"rlcint/internal/tline"
)

// seededTestModels spans the damping regimes at physically plausible scales:
// the paper's 100nm stage at several inductances plus normalized canonical
// models.
func seededTestModels(t *testing.T) []Model {
	t.Helper()
	var ms []Model
	for _, zeta := range []float64{2, 1.2, 0.6, 0.3} {
		m, err := New(2*zeta, 1)
		if err != nil {
			t.Fatal(err)
		}
		ms = append(ms, m)
	}
	node := tech.Node100()
	for _, l := range []float64{0, 1e-6, 2e-6, 4e-6} {
		st := tline.Stage{
			Line: tline.Line{R: node.R, L: l, C: node.C},
			H:    11.1e-3, RS: node.Rs / 528, CP: node.Cp * 528, CL: node.C0 * 528,
		}
		m, err := FromStage(st)
		if err != nil {
			t.Fatal(err)
		}
		ms = append(ms, m)
	}
	return ms
}

// TestDelaySeededAgreesWithCold: with an honest hint (the cold solution,
// possibly perturbed), the seeded solve returns the same crossing to ≤1e-12
// relative.
func TestDelaySeededAgreesWithCold(t *testing.T) {
	for mi, m := range seededTestModels(t) {
		for _, f := range []float64{0.3, 0.5, 0.9} {
			cold, err := m.Delay(f)
			if err != nil {
				t.Fatal(err)
			}
			for _, scale := range []float64{1, 0.92, 1.08} {
				got, err := m.DelaySeeded(nil, f, cold.Tau*scale)
				if err != nil {
					t.Fatalf("model %d f=%g scale=%g: %v", mi, f, scale, err)
				}
				den := math.Max(math.Abs(cold.Tau), math.Abs(got.Tau))
				if den != 0 && math.Abs(got.Tau-cold.Tau)/den > 1e-12 {
					t.Errorf("model %d f=%g scale=%g: seeded %v vs cold %v",
						mi, f, scale, got.Tau, cold.Tau)
				}
			}
		}
	}
}

// TestDelaySeededBadHintFallsBack: non-positive, infinite, and wildly wrong
// hints reproduce the cold solve exactly.
func TestDelaySeededBadHintFallsBack(t *testing.T) {
	for mi, m := range seededTestModels(t) {
		cold, err := m.Delay(0.5)
		if err != nil {
			t.Fatal(err)
		}
		for _, hint := range []float64{0, -1, math.Inf(1), math.NaN(), cold.Tau * 100, cold.Tau / 100} {
			got, err := m.DelaySeeded(nil, 0.5, hint)
			if err != nil {
				t.Fatalf("model %d hint=%g: %v", mi, hint, err)
			}
			if got.Tau != cold.Tau {
				t.Errorf("model %d hint=%g: %v, want exact cold fallback %v",
					mi, hint, got.Tau, cold.Tau)
			}
		}
	}
}

// TestDelaySeededRejectsLaterCrossing: for a strongly underdamped response a
// hint near a *later* threshold crossing of the oscillatory tail must not be
// accepted — the first-crossing guard falls back to the cold solve.
func TestDelaySeededRejectsLaterCrossing(t *testing.T) {
	m, err := New(0.2, 1) // ζ = 0.1, heavy ringing
	if err != nil {
		t.Fatal(err)
	}
	const f = 0.95
	cold, err := m.Delay(f)
	if err != nil {
		t.Fatal(err)
	}
	// Scan for a later upward crossing of the threshold and aim the hint at
	// it; the period of ringing guarantees several such crossings.
	period := 2 * math.Pi / math.Sqrt(-m.Discriminant()) * 2 * m.B2
	for _, hint := range []float64{cold.Tau + period, cold.Tau + 2*period} {
		got, err := m.DelaySeeded(nil, f, hint)
		if err != nil {
			t.Fatalf("hint=%g: %v", hint, err)
		}
		if got.Tau != cold.Tau {
			t.Errorf("hint near later crossing %g returned %g, want first crossing %g",
				hint, got.Tau, cold.Tau)
		}
	}
}

// TestDelaySolvesZeroAlloc pins the zero-allocation contract of the grid hot
// path: the cold and seeded delay solves and the series expansion allocate
// nothing on their happy paths.
func TestDelaySolvesZeroAlloc(t *testing.T) {
	for mi, m := range seededTestModels(t) {
		cold, err := m.Delay(0.5)
		if err != nil {
			t.Fatal(err)
		}
		if a := testing.AllocsPerRun(50, func() {
			if _, err := m.Delay(0.5); err != nil {
				t.Fatal(err)
			}
		}); a != 0 {
			t.Errorf("model %d: Delay allocates %v/op", mi, a)
		}
		if a := testing.AllocsPerRun(50, func() {
			if _, err := m.DelaySeeded(nil, 0.5, cold.Tau); err != nil {
				t.Fatal(err)
			}
		}); a != 0 {
			t.Errorf("model %d: DelaySeeded allocates %v/op", mi, a)
		}
	}
	node := tech.Node100()
	st := tline.Stage{
		Line: tline.Line{R: node.R, L: 2e-6, C: node.C},
		H:    11.1e-3, RS: node.Rs / 528, CP: node.Cp * 528, CL: node.C0 * 528,
	}
	var buf [3]float64
	if a := testing.AllocsPerRun(50, func() {
		st.DenominatorSeriesInto(buf[:], 3)
	}); a != 0 {
		t.Errorf("DenominatorSeriesInto allocates %v/op", a)
	}
	if a := testing.AllocsPerRun(50, func() {
		if _, err := FromStage(st); err != nil {
			t.Fatal(err)
		}
	}); a != 0 {
		t.Errorf("FromStage allocates %v/op", a)
	}
}
