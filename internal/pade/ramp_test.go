package pade

import (
	"math"
	"testing"

	"rlcint/internal/num"
)

func TestStepIntegralMatchesQuadrature(t *testing.T) {
	for _, c := range [][2]float64{{3, 1}, {2, 1}, {1, 1}, {0.4, 1}} {
		m, _ := New(c[0], c[1])
		for _, tt := range []float64{0.5, 2, 6} {
			want := num.AdaptiveSimpson(m.Step, 0, tt, 1e-12)
			got := m.StepIntegral(tt)
			if math.Abs(got-want) > 1e-8*(1+math.Abs(want)) {
				t.Errorf("b=%v t=%v: integral %v, quadrature %v", c, tt, got, want)
			}
		}
	}
}

func TestStepIntegralNonNegativeAndZeroAtOrigin(t *testing.T) {
	m, _ := New(1, 1)
	if m.StepIntegral(0) != 0 || m.StepIntegral(-3) != 0 {
		t.Error("integral must vanish for t <= 0")
	}
}

func TestRampReducesToStep(t *testing.T) {
	m, _ := New(1.2, 1)
	for _, tt := range []float64{0.5, 1.5, 4} {
		if m.Ramp(tt, 0) != m.Step(tt) {
			t.Errorf("Ramp with tRise=0 differs from Step at %v", tt)
		}
	}
	// Very short rise time converges to the step response.
	for _, tt := range []float64{1, 3} {
		if d := math.Abs(m.Ramp(tt, 1e-4) - m.Step(tt)); d > 1e-3 {
			t.Errorf("short-ramp mismatch %v at t=%v", d, tt)
		}
	}
}

func TestRampSmoothsOvershoot(t *testing.T) {
	// A slow input ramp reduces the output overshoot of an underdamped
	// stage — the physical reason rise times matter for signal integrity.
	m, _ := New(0.6, 1)
	peakStep, peakRamp := 0.0, 0.0
	for _, tt := range num.Linspace(0, 30, 3000) {
		if v := m.Step(tt); v > peakStep {
			peakStep = v
		}
		if v := m.Ramp(tt, 4); v > peakRamp {
			peakRamp = v
		}
	}
	if peakStep <= 1.05 {
		t.Fatalf("test premise: step must overshoot, peak=%v", peakStep)
	}
	if peakRamp >= peakStep-0.02 {
		t.Errorf("ramp did not smooth overshoot: %v vs %v", peakRamp, peakStep)
	}
}

func TestRampFinalValue(t *testing.T) {
	m, _ := New(2, 1)
	if v := m.Ramp(200, 3); math.Abs(v-1) > 1e-6 {
		t.Errorf("ramp final value %v", v)
	}
}

func TestDelayRampReducesToDelay(t *testing.T) {
	m, _ := New(1.5, 1)
	d0, err := m.Delay(0.5)
	if err != nil {
		t.Fatal(err)
	}
	dr, err := m.DelayRamp(0.5, 0)
	if err != nil {
		t.Fatal(err)
	}
	if dr.Tau != d0.Tau {
		t.Errorf("tRise=0: %v vs %v", dr.Tau, d0.Tau)
	}
	ds, err := m.DelayRamp(0.5, 1e-5)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ds.Tau-d0.Tau) > 1e-3 {
		t.Errorf("tiny rise time: %v vs %v", ds.Tau, d0.Tau)
	}
}

func TestDelayRampGrowsWithRiseTime(t *testing.T) {
	// For overdamped stages, slower inputs give longer 50% propagation
	// delays (measured input-crossing to output-crossing).
	m, _ := New(3, 1)
	prev := -math.MaxFloat64
	for _, tr := range []float64{0, 1, 3, 8} {
		d, err := m.DelayRamp(0.5, tr)
		if err != nil {
			t.Fatalf("tr=%v: %v", tr, err)
		}
		if d.Tau <= prev {
			t.Errorf("tr=%v: delay %v did not grow (prev %v)", tr, d.Tau, prev)
		}
		prev = d.Tau
	}
}

func TestDelayRampValidation(t *testing.T) {
	m, _ := New(2, 1)
	if _, err := m.DelayRamp(0.5, -1); err == nil {
		t.Error("negative rise time must fail")
	}
	if _, err := m.DelayRamp(0, 1); err == nil {
		t.Error("f=0 must fail for ramp")
	}
}

func TestRampPropertyMonotoneBelowFirstPeak(t *testing.T) {
	// Ramp output of an overdamped system is monotone.
	m, _ := New(4, 1)
	prev := -1.0
	for _, tt := range num.Linspace(0, 40, 2000) {
		v := m.Ramp(tt, 5)
		if v < prev-1e-10 {
			t.Fatalf("overdamped ramp response not monotone at %v", tt)
		}
		prev = v
	}
}
