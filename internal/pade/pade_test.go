package pade

import (
	"math"
	"testing"
	"testing/quick"

	"rlcint/internal/num"
	"rlcint/internal/tech"
	"rlcint/internal/tline"
)

func stage100nm(lNHmm float64) tline.Stage {
	n := tech.Node100()
	k := 528.0
	return tline.Stage{
		Line: tline.Line{R: n.R, L: lNHmm * tech.NHPerMM, C: n.C},
		H:    11.1 * tech.MM,
		RS:   n.Rs / k,
		CP:   n.Cp * k,
		CL:   n.C0 * k,
	}
}

func TestNewRejectsNonPhysical(t *testing.T) {
	for _, c := range [][2]float64{{0, 1}, {1, 0}, {-1, 1}, {1, -1}, {math.NaN(), 1}} {
		if _, err := New(c[0], c[1]); err == nil {
			t.Errorf("New(%v,%v) should fail", c[0], c[1])
		}
	}
	if _, err := New(1e-10, 1e-20); err != nil {
		t.Errorf("valid coefficients rejected: %v", err)
	}
}

func TestDampingClassification(t *testing.T) {
	over, _ := New(3, 1)  // disc = 5 > 0
	under, _ := New(1, 1) // disc = -3 < 0
	crit, _ := New(2, 1)  // disc = 0
	if over.Damping() != Overdamped {
		t.Errorf("(3,1) -> %v", over.Damping())
	}
	if under.Damping() != Underdamped {
		t.Errorf("(1,1) -> %v", under.Damping())
	}
	if crit.Damping() != CriticallyDamped {
		t.Errorf("(2,1) -> %v", crit.Damping())
	}
	if over.Damping().String() != "overdamped" || Damping(9).String() == "" {
		t.Error("String() broken")
	}
}

func TestPolesSatisfyCharacteristicEquation(t *testing.T) {
	for _, c := range [][2]float64{{3, 1}, {1, 1}, {2, 1}, {1e-10, 3e-21}} {
		m, _ := New(c[0], c[1])
		s1, s2 := m.Poles()
		for _, s := range []complex128{s1, s2} {
			res := complex(1, 0) + complex(m.B1, 0)*s + complex(m.B2, 0)*s*s
			if mag := math.Hypot(real(res), imag(res)); mag > 1e-9 {
				t.Errorf("b=(%v,%v): residual %v at pole %v", c[0], c[1], mag, s)
			}
		}
		// Vieta: s1+s2 = -b1/b2, s1*s2 = 1/b2.
		sum := s1 + s2
		prod := s1 * s2
		if math.Abs(real(sum)+m.B1/m.B2) > 1e-6*math.Abs(m.B1/m.B2) {
			t.Errorf("pole sum %v, want %v", real(sum), -m.B1/m.B2)
		}
		if math.Abs(real(prod)-1/m.B2) > 1e-6/m.B2 {
			t.Errorf("pole product %v, want %v", real(prod), 1/m.B2)
		}
	}
}

func TestStepLimitsAndMonotoneRegimes(t *testing.T) {
	for _, c := range [][2]float64{{3, 1}, {2, 1}, {1, 1}, {0.5, 1}} {
		m, _ := New(c[0], c[1])
		if v := m.Step(0); v != 0 {
			t.Errorf("v(0) = %v", v)
		}
		if v := m.Step(-1); v != 0 {
			t.Errorf("v(<0) = %v", v)
		}
		if v := m.Step(200 * math.Sqrt(m.B2) / math.Min(1, m.Zeta())); math.Abs(v-1) > 1e-3 {
			t.Errorf("b=%v: v(inf) = %v, want 1", c, v)
		}
	}
	// Overdamped and critically damped responses are monotone (no overshoot).
	for _, c := range [][2]float64{{3, 1}, {2, 1}} {
		m, _ := New(c[0], c[1])
		prev := -1e-12
		for _, tt := range num.Linspace(0, 20, 2000) {
			v := m.Step(tt)
			if v < prev-1e-12 {
				t.Fatalf("b=%v: non-monotone at t=%v", c, tt)
			}
			if v > 1+1e-9 {
				t.Fatalf("b=%v: overshoot %v in non-underdamped regime", c, v)
			}
			prev = v
		}
	}
}

func TestStepContinuousAcrossCriticalDamping(t *testing.T) {
	// The three evaluation branches must agree at the regime boundaries.
	b2 := 2.3e-20 // representative magnitude for the paper's stages
	b1c := 2 * math.Sqrt(b2)
	for _, eps := range []float64{1e-5, 1e-7} {
		over, _ := New(b1c*(1+eps), b2)
		under, _ := New(b1c*(1-eps), b2)
		crit, _ := New(b1c, b2)
		for _, frac := range []float64{0.3, 1, 3} {
			tt := frac * math.Sqrt(b2)
			vo, vu, vc := over.Step(tt), under.Step(tt), crit.Step(tt)
			if math.Abs(vo-vc) > 1e-3 || math.Abs(vu-vc) > 1e-3 {
				t.Errorf("eps=%g t=%g: over=%v crit=%v under=%v", eps, tt, vo, vc, vu)
			}
		}
	}
}

func TestStepDerivMatchesFiniteDifference(t *testing.T) {
	for _, c := range [][2]float64{{3, 1}, {2, 1}, {1.2, 1}} {
		m, _ := New(c[0], c[1])
		for _, tt := range []float64{0.3, 1, 2.5, 7} {
			want := num.CentralDiff(m.Step, tt)
			got := m.StepDeriv(tt)
			if math.Abs(got-want) > 1e-6*(math.Abs(want)+1e-3) {
				t.Errorf("b=%v t=%v: deriv %v, FD %v", c, tt, got, want)
			}
		}
	}
}

func TestDelayKnownCases(t *testing.T) {
	// Single-dominant-pole limit: b2 -> 0 gives v = 1-exp(-t/b1);
	// 50% delay -> b1·ln2.
	m, _ := New(1, 1e-6)
	res, err := m.Delay(0.5)
	if err != nil {
		t.Fatalf("Delay: %v", err)
	}
	if math.Abs(res.Tau-math.Ln2) > 1e-3 {
		t.Errorf("near-single-pole 50%% delay = %v, want ≈ln2", res.Tau)
	}
	// Critically damped: v(τ)=0.5 with α=1 -> (1+τ)e^{-τ}=0.5, τ≈1.67835.
	mc, _ := New(2, 1)
	res, err = mc.Delay(0.5)
	if err != nil {
		t.Fatalf("Delay: %v", err)
	}
	if math.Abs(res.Tau-1.67835) > 1e-4 {
		t.Errorf("critically damped 50%% delay = %v, want 1.67835", res.Tau)
	}
}

func TestDelayDefinitionHolds(t *testing.T) {
	// v(τ) = f exactly, and τ is the FIRST crossing.
	for _, c := range [][2]float64{{3, 1}, {2, 1}, {1, 1}, {0.3, 1}} {
		m, _ := New(c[0], c[1])
		for _, f := range []float64{0.1, 0.5, 0.9} {
			res, err := m.Delay(f)
			if err != nil {
				t.Fatalf("b=%v f=%v: %v", c, f, err)
			}
			if math.Abs(m.Step(res.Tau)-f) > 1e-9 {
				t.Errorf("b=%v f=%v: v(τ)=%v", c, f, m.Step(res.Tau))
			}
			// No earlier crossing: v(t) < f for t in (0, τ).
			for _, tt := range num.Linspace(res.Tau/400, res.Tau*0.995, 200) {
				if m.Step(tt) >= f {
					t.Fatalf("b=%v f=%v: earlier crossing at %v < τ=%v", c, f, tt, res.Tau)
				}
			}
		}
	}
}

func TestDelayPaperOperatingPointFastNewton(t *testing.T) {
	// The paper reports ≤4 Newton iterations for its operating points. Our
	// solver brackets first, so allow a handful more, but it must stay small.
	for _, l := range []float64{0, 0.5, 1, 2, 3, 4.5} {
		m, err := FromStage(stage100nm(l))
		if err != nil {
			t.Fatalf("FromStage: %v", err)
		}
		res, err := m.Delay(0.5)
		if err != nil {
			t.Fatalf("l=%v: %v", l, err)
		}
		if res.Iterations > 12 {
			t.Errorf("l=%v: %d iterations", l, res.Iterations)
		}
		if res.Tau <= 0 || res.Tau > 1e-8 {
			t.Errorf("l=%v: implausible delay %v s", l, res.Tau)
		}
	}
}

func TestDelayThresholdValidation(t *testing.T) {
	m, _ := New(2, 1)
	if _, err := m.Delay(1); err == nil {
		t.Error("f=1 must be rejected")
	}
	if _, err := m.Delay(-0.1); err == nil {
		t.Error("f<0 must be rejected")
	}
	res, err := m.Delay(0)
	if err != nil || res.Tau != 0 {
		t.Errorf("f=0: %v, %v", res, err)
	}
}

func TestDelayMonotoneInThresholdProperty(t *testing.T) {
	prop := func(a, b float64) bool {
		za := 0.2 + math.Abs(math.Mod(a, 3))      // damping ratio range [0.2, 3.2)
		f1 := 0.05 + math.Abs(math.Mod(b, 1))/2.5 // in [0.05, 0.45)
		f2 := f1 + 0.3
		m, err := New(2*za, 1) // b2=1, zeta=za
		if err != nil {
			return true
		}
		r1, e1 := m.Delay(f1)
		r2, e2 := m.Delay(f2)
		return e1 == nil && e2 == nil && r2.Tau > r1.Tau
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestOvershootUndershootClosedForms(t *testing.T) {
	m, _ := New(1, 1) // zeta = 0.5
	os, tp := m.Overshoot()
	alpha := m.B1 / (2 * m.B2)
	beta := math.Sqrt(-m.Discriminant()) / (2 * m.B2)
	if math.Abs(tp-math.Pi/beta) > 1e-12 {
		t.Errorf("tPeak = %v", tp)
	}
	if math.Abs(os-math.Exp(-alpha*math.Pi/beta)) > 1e-12 {
		t.Errorf("overshoot = %v", os)
	}
	// The step response at tPeak equals 1+overshoot.
	if v := m.Step(tp); math.Abs(v-(1+os)) > 1e-9 {
		t.Errorf("v(tPeak) = %v, want %v", v, 1+os)
	}
	us, tm := m.Undershoot()
	if v := m.Step(tm); math.Abs(v-(1-us)) > 1e-9 {
		t.Errorf("v(tMin) = %v, want %v", v, 1-us)
	}
	// Peaks really are extrema.
	if math.Abs(m.StepDeriv(tp)) > 1e-9 || math.Abs(m.StepDeriv(tm)) > 1e-9 {
		t.Error("derivative at extrema not zero")
	}
	// Non-underdamped: zero overshoot.
	mo, _ := New(3, 1)
	if os, _ := mo.Overshoot(); os != 0 {
		t.Errorf("overdamped overshoot = %v", os)
	}
}

func TestLCritMakesSystemCriticallyDamped(t *testing.T) {
	// Substituting l = LCrit back into the stage must zero the discriminant.
	for _, lseed := range []float64{0.5, 2, 4} {
		st := stage100nm(lseed)
		lc := LCrit(st)
		if lc <= 0 {
			t.Fatalf("lcrit = %v, want positive", lc)
		}
		st.Line.L = lc
		m, err := FromStage(st)
		if err != nil {
			t.Fatal(err)
		}
		if d := m.Discriminant(); math.Abs(d) > 1e-9*m.B1*m.B1 {
			t.Errorf("disc at lcrit = %v (b1²=%v)", d, m.B1*m.B1)
		}
	}
}

func TestLCritIndependentOfSeedInductance(t *testing.T) {
	// Eq. (4) does not involve l; two stages differing only in l agree.
	a, b := stage100nm(0.1), stage100nm(4.9)
	if la, lb := LCrit(a), LCrit(b); math.Abs(la-lb) > 1e-18 {
		t.Errorf("LCrit depends on seed l: %v vs %v", la, lb)
	}
}

func TestLCritPaperMagnitude(t *testing.T) {
	// At RC-optimal sizing lcrit is small and positive (a few tens of
	// pH/mm), which is exactly why practical inductances (0.1..5 nH/mm)
	// push RC-sized stages underdamped. Fig. 4's "lcrit ~ l" statement
	// holds at the RLC optimum and is checked in the core package tests.
	lc := LCrit(stage100nm(0)) / tech.NHPerMM
	if lc < 1e-3 || lc > 1 {
		t.Errorf("lcrit = %v nH/mm at RC sizing: outside the plausible range", lc)
	}
}

func TestUnderdampedAtRCOptimumFor100nm(t *testing.T) {
	// Section 3.1: at RC-optimal sizing, practical l > lcrit makes the 100 nm
	// stage underdamped. Verify for l = 2 nH/mm.
	m, err := FromStage(stage100nm(2))
	if err != nil {
		t.Fatal(err)
	}
	if m.Damping() != Underdamped {
		t.Errorf("100nm RC-optimum at 2 nH/mm: %v, want underdamped", m.Damping())
	}
}

func TestSettleTime(t *testing.T) {
	for _, c := range [][2]float64{{3, 1}, {1, 1}} {
		m, _ := New(c[0], c[1])
		ts := m.SettleTime(0.01)
		if ts <= 0 {
			t.Fatalf("settle time %v", ts)
		}
		// After the settle time the response stays within the band.
		for _, tt := range num.Linspace(ts, 3*ts, 50) {
			if d := math.Abs(m.Step(tt) - 1); d > 0.011 {
				t.Errorf("b=%v: |v-1| = %v at t=%v > band", c, d, tt)
			}
		}
	}
}

func TestZetaOmegaN(t *testing.T) {
	m, _ := New(2, 1)
	if math.Abs(m.Zeta()-1) > 1e-14 || math.Abs(m.OmegaN()-1) > 1e-14 {
		t.Errorf("zeta=%v omegaN=%v, want 1,1", m.Zeta(), m.OmegaN())
	}
}
