package pade

import (
	"fmt"
	"math"
	"math/cmplx"

	"rlcint/internal/num"
)

// StepIntegral evaluates I(t) = ∫₀ᵗ v(u) du of the unit step response in
// closed form. It is the building block for finite-rise-time (saturated
// ramp) inputs: the paper analyzes step inputs, but real repeater outputs
// have finite transition times, and by linearity the ramp response is
// (I(t) − I(t − t_r))/t_r.
func (m Model) StepIntegral(t float64) float64 {
	if t <= 0 {
		return 0
	}
	disc := m.Discriminant()
	band := criticalTol * m.B1 * m.B1
	ct := complex(t, 0)
	if math.Abs(disc) <= band {
		// Confluent double pole s: I(t) = t − [2(e^{st}−1)/s − t·e^{st}].
		s := complex(-m.B1/(2*m.B2), 0)
		e := cmplx.Exp(s * ct)
		return t - real(2*(e-1)/s-ct*e)
	}
	sq := cmplx.Sqrt(complex(disc, 0))
	cb1, cb2 := complex(m.B1, 0), complex(m.B2, 0)
	s1 := (-cb1 + sq) / (2 * cb2)
	s2 := (-cb1 - sq) / (2 * cb2)
	d := s2 - s1
	// I(t) = t − s2/(d·s1)·(e^{s1 t}−1) + s1/(d·s2)·(e^{s2 t}−1); real for
	// conjugate pairs.
	v := ct - s2/(d*s1)*(cmplx.Exp(s1*ct)-1) + s1/(d*s2)*(cmplx.Exp(s2*ct)-1)
	return real(v)
}

// Ramp evaluates the response to a saturated-ramp input that rises linearly
// from 0 to 1 over tRise (a step when tRise = 0).
func (m Model) Ramp(t, tRise float64) float64 {
	if tRise <= 0 {
		return m.Step(t)
	}
	if t <= 0 {
		return 0
	}
	if t <= tRise {
		return m.StepIntegral(t) / tRise
	}
	return (m.StepIntegral(t) - m.StepIntegral(t-tRise)) / tRise
}

// DelayRamp returns the f×100% propagation delay for a saturated-ramp input:
// the time from the input's crossing of f (at f·tRise) to the output's first
// crossing of f. With tRise = 0 it reduces to Delay.
func (m Model) DelayRamp(f, tRise float64) (DelayResult, error) {
	if tRise < 0 {
		return DelayResult{}, fmt.Errorf("pade: negative rise time %g", tRise)
	}
	if tRise == 0 {
		return m.Delay(f)
	}
	if f <= 0 || f >= 1 {
		return DelayResult{}, fmt.Errorf("%w: f=%g", ErrThreshold, f)
	}
	g := func(t float64) float64 { return m.Ramp(t, tRise) - f }
	tScale := math.Max(m.B1, math.Sqrt(m.B2)) + tRise
	tmax := 4 * tScale
	var lo, hi float64
	var err error
	for try := 0; ; try++ {
		lo, hi, err = num.FirstCrossing(g, 0, tmax, 512)
		if err == nil {
			break
		}
		if try == 24 {
			return DelayResult{}, fmt.Errorf("pade: DelayRamp(f=%g, tr=%g): %w", f, tRise, err)
		}
		tmax *= 4
	}
	root, err := num.Brent(g, lo, hi, 1e-15*tScale, 200)
	if err != nil {
		return DelayResult{}, err
	}
	return DelayResult{Tau: root - f*tRise}, nil
}
