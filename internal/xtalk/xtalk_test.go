package xtalk

import (
	"math"
	"testing"

	"rlcint/internal/tline"
)

// inductivePair is an on-chip-like pair where inductive coupling dominates
// (kl > kc): negative far-end crosstalk expected.
func inductivePair() tline.CoupledPair {
	return tline.CoupledPair{R: 4400, L: 2e-6, Cg: 8e-11, Cm: 2e-11, Lm: 1.4e-6}
}

// capacitivePair has kc > kl: positive far-end crosstalk (PCB-like).
func capacitivePair() tline.CoupledPair {
	return tline.CoupledPair{R: 4400, L: 2e-6, Cg: 4e-11, Cm: 6e-11, Lm: 0.2e-6}
}

func TestFarEndPolarityFollowsCouplingBalance(t *testing.T) {
	if testing.Short() {
		t.Skip("transient simulation")
	}
	for _, tc := range []struct {
		name string
		pair tline.CoupledPair
	}{
		{"inductive", inductivePair()},
		{"capacitive", capacitivePair()},
	} {
		res, err := Run(Config{Pair: tc.pair, H: 5e-3})
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if res.PredictedFarSign == 0 {
			t.Fatalf("%s: no predicted sign", tc.name)
		}
		if math.Signbit(res.FarPeak) != math.Signbit(res.PredictedFarSign) {
			t.Errorf("%s: far-end peak %v, predicted sign %v",
				tc.name, res.FarPeak, res.PredictedFarSign)
		}
	}
}

func TestNearEndMagnitudeNearKb(t *testing.T) {
	if testing.Short() {
		t.Skip("transient simulation")
	}
	// For a matched, weakly lossy pair the near-end plateau approaches
	// Kb·V. Losses and discretization erode it; accept a factor-2 band.
	pair := inductivePair()
	pair.R = 400 // weakly lossy so the textbook formula applies
	res, err := Run(Config{Pair: pair, H: 5e-3})
	if err != nil {
		t.Fatal(err)
	}
	if res.NearPeak <= 0 {
		t.Fatalf("near-end noise %v, want positive (kb > 0)", res.NearPeak)
	}
	ratio := res.NearPeak / res.PredictedNear
	if ratio < 0.5 || ratio > 2 {
		t.Errorf("near-end peak %v vs Kb·V %v (ratio %v)", res.NearPeak, res.PredictedNear, ratio)
	}
}

func TestNoCouplingNoNoise(t *testing.T) {
	if testing.Short() {
		t.Skip("transient simulation")
	}
	pair := tline.CoupledPair{R: 4400, L: 2e-6, Cg: 1e-10, Cm: 0, Lm: 0}
	res, err := Run(Config{Pair: pair, H: 5e-3})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.NearPeak) > 1e-9 || math.Abs(res.FarPeak) > 1e-9 {
		t.Errorf("decoupled pair shows noise: near %v far %v", res.NearPeak, res.FarPeak)
	}
	// The aggressor still switches.
	if res.VAggFar[len(res.VAggFar)-1] < 0.2 {
		t.Error("aggressor did not propagate")
	}
}

func TestNoiseGrowsWithCoupling(t *testing.T) {
	if testing.Short() {
		t.Skip("transient simulation")
	}
	weak := inductivePair()
	weak.Cm, weak.Lm = weak.Cm/4, weak.Lm/4
	rWeak, err := Run(Config{Pair: weak, H: 5e-3})
	if err != nil {
		t.Fatal(err)
	}
	rStrong, err := Run(Config{Pair: inductivePair(), H: 5e-3})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rStrong.NearPeak) <= math.Abs(rWeak.NearPeak) {
		t.Errorf("near-end noise did not grow with coupling: %v vs %v",
			rStrong.NearPeak, rWeak.NearPeak)
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := Run(Config{Pair: inductivePair(), H: 0}); err == nil {
		t.Error("zero length must fail")
	}
	rc := inductivePair()
	rc.L, rc.Lm = 0, 0
	if _, err := Run(Config{Pair: rc, H: 1e-3}); err == nil {
		t.Error("RC pair must be rejected")
	}
	bad := inductivePair()
	bad.Lm = bad.L * 2
	if _, err := Run(Config{Pair: bad, H: 1e-3}); err == nil {
		t.Error("invalid pair must fail")
	}
}

// TestWorkspaceReuseMatchesFreshRun reruns one config through a shared
// workspace and requires every rerun to match a fresh-circuit Run exactly:
// circuit reuse must not leak element state between transients. A config
// switch mid-stream must rebuild and stay correct too.
func TestWorkspaceReuseMatchesFreshRun(t *testing.T) {
	if testing.Short() {
		t.Skip("transient simulation")
	}
	cfgA := Config{Pair: inductivePair(), H: 5e-3}
	cfgB := Config{Pair: capacitivePair(), H: 5e-3}
	fresh := func(cfg Config) Result {
		r, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	refA, refB := fresh(cfgA), fresh(cfgB)
	var w Workspace
	for i := 0; i < 3; i++ {
		got, err := w.Run(cfgA)
		if err != nil {
			t.Fatalf("reuse %d: %v", i, err)
		}
		for j := range got.VFar {
			if got.VFar[j] != refA.VFar[j] || got.VNear[j] != refA.VNear[j] {
				t.Fatalf("reuse %d: waveform deviates from fresh run at sample %d", i, j)
			}
		}
	}
	got, err := w.Run(cfgB)
	if err != nil {
		t.Fatalf("config switch: %v", err)
	}
	if got.FarPeak != refB.FarPeak || got.NearPeak != refB.NearPeak {
		t.Fatalf("config switch: peaks %g/%g, fresh run %g/%g",
			got.NearPeak, got.FarPeak, refB.NearPeak, refB.FarPeak)
	}
}
