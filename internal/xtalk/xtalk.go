// Package xtalk simulates crosstalk between a switching aggressor and a
// quiet victim line as a coupled pair of discretized RLC ladders (coupling
// capacitors plus mutual inductors per section) and measures the induced
// near-end and far-end noise. It validates, in the time domain, the
// classical coupling-coefficient estimates of tline.CoupledPair — including
// the inductively-dominated negative far-end polarity typical of on-chip
// global wiring, the signal-integrity concern the paper's introduction
// raises alongside delay.
package xtalk

import (
	"fmt"
	"math"

	"rlcint/internal/spice"
	"rlcint/internal/tline"
)

// Config describes one crosstalk experiment.
type Config struct {
	Pair tline.CoupledPair
	H    float64 // coupled length, m
	// Sections per ladder (default 24).
	Sections int
	// RDrive is the aggressor driver resistance; zero selects the victim
	// termination value (matched-ish drive).
	RDrive float64
	// RTerm terminates the victim at both ends; zero selects the quiet-mode
	// lossless impedance √(l/c_quiet) (matched victim, the textbook
	// configuration for the coefficient formulas).
	RTerm float64
	// VStep and TRise describe the aggressor edge; defaults 1 V and a
	// quarter of the line's time of flight.
	VStep, TRise float64
	// TStop and DT override the automatic window.
	TStop, DT float64
}

func (c Config) withDefaults() (Config, error) {
	if err := c.Pair.Validate(); err != nil {
		return c, err
	}
	if c.H <= 0 {
		return c, fmt.Errorf("xtalk: non-positive length %g", c.H)
	}
	if c.Pair.L <= 0 {
		return c, fmt.Errorf("xtalk: crosstalk experiment needs inductive lines")
	}
	if c.Sections == 0 {
		c.Sections = 24
	}
	quiet := c.Pair.QuietMode()
	z0 := quiet.Z0LC()
	if c.RTerm == 0 {
		c.RTerm = z0
	}
	if c.RDrive == 0 {
		c.RDrive = c.RTerm
	}
	if c.VStep == 0 {
		c.VStep = 1
	}
	tof := quiet.TimeOfFlight(c.H)
	if c.TRise == 0 {
		c.TRise = tof / 4
	}
	if c.TStop == 0 {
		c.TStop = 10 * (tof + c.TRise)
	}
	if c.DT == 0 {
		c.DT = c.TStop / 4000
	}
	return c, nil
}

// Result carries the simulated waveforms and the scalar noise metrics.
type Result struct {
	T                []float64
	VNear, VFar      []float64 // victim near end (driver side), far end
	VAggFar          []float64 // aggressor far end, for reference
	NearPeak         float64   // signed extremum of the near-end noise, V
	FarPeak          float64   // signed extremum of the far-end noise, V
	PredictedNear    float64   // Kb·VStep from the coupling coefficients
	PredictedFarSign float64   // sign of the far-end pulse from Kf
}

// Run builds and simulates the coupled pair.
func Run(cfg Config) (Result, error) {
	var w Workspace
	return w.Run(cfg)
}

// Workspace amortizes repeated crosstalk runs. The discretized coupled-pair
// circuit is built once per distinct (post-default) Config and reused for
// every following Run with the same config — and through the spice layer the
// reduced-order projection is fingerprint-cached too, so steady-state
// iterations pay only for the transient solve itself. A Workspace is not
// safe for concurrent use; the zero value is ready.
type Workspace struct {
	cfg                   Config
	ckt                   *spice.Circuit
	vicIn, vicEnd, aggEnd spice.NodeID
	built                 bool
}

// Run simulates cfg, rebuilding the cached circuit only when cfg differs
// from the previous call's.
func (w *Workspace) Run(cfg Config) (Result, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return Result{}, err
	}
	if !w.built || cfg != w.cfg {
		if err := w.build(cfg); err != nil {
			return Result{}, err
		}
	}
	res, err := w.ckt.Transient(spice.TranOpts{TStop: cfg.TStop, DT: cfg.DT, UseICs: true},
		spice.NodeProbe{Name: "vnear", ID: w.vicIn},
		spice.NodeProbe{Name: "vfar", ID: w.vicEnd},
		spice.NodeProbe{Name: "aggfar", ID: w.aggEnd},
	)
	if err != nil {
		return Result{}, fmt.Errorf("xtalk: transient: %w", err)
	}
	p := cfg.Pair
	out := Result{T: res.T}
	out.VNear, _ = res.Signal("vnear")
	out.VFar, _ = res.Signal("vfar")
	out.VAggFar, _ = res.Signal("aggfar")
	out.NearPeak = signedPeak(out.VNear)
	out.FarPeak = signedPeak(out.VFar)
	out.PredictedNear = p.BackwardCrosstalk() * cfg.VStep
	if kf := p.ForwardCrosstalk(); kf < 0 {
		out.PredictedFarSign = -1
	} else if kf > 0 {
		out.PredictedFarSign = 1
	}
	return out, nil
}

// build constructs the discretized coupled pair for cfg (already defaulted).
func (w *Workspace) build(cfg Config) error {
	p := cfg.Pair
	ckt := spice.New()
	src := ckt.Node("src")
	if _, err := ckt.AddV(src, spice.Ground, spice.Pulse{
		V0: 0, V1: cfg.VStep, Rise: cfg.TRise, Fall: cfg.TRise,
		Width: cfg.TStop, Period: 4 * cfg.TStop,
	}); err != nil {
		return err
	}
	aggIn := ckt.Node("agg_in")
	vicIn := ckt.Node("vic_in")
	if err := ckt.AddR(src, aggIn, cfg.RDrive); err != nil {
		return err
	}
	if err := ckt.AddR(vicIn, spice.Ground, cfg.RTerm); err != nil {
		return err
	}
	n := cfg.Sections
	dR := p.R * cfg.H / float64(n)
	dL := p.L * cfg.H / float64(n)
	dCg := p.Cg * cfg.H / float64(n)
	dCm := p.Cm * cfg.H / float64(n)
	kCoef := p.Lm / p.L

	aggPrev, vicPrev := aggIn, vicIn
	var aggEnd, vicEnd spice.NodeID
	for i := 0; i < n; i++ {
		aggMid := ckt.Node(fmt.Sprintf("am%d", i))
		vicMid := ckt.Node(fmt.Sprintf("vm%d", i))
		aggNext := ckt.Node(fmt.Sprintf("an%d", i))
		vicNext := ckt.Node(fmt.Sprintf("vn%d", i))
		if err := ckt.AddR(aggPrev, aggMid, dR); err != nil {
			return err
		}
		if err := ckt.AddR(vicPrev, vicMid, dR); err != nil {
			return err
		}
		la, err := ckt.AddL(aggMid, aggNext, dL)
		if err != nil {
			return err
		}
		lv, err := ckt.AddL(vicMid, vicNext, dL)
		if err != nil {
			return err
		}
		if kCoef > 0 {
			if _, err := ckt.AddMutual(la, lv, kCoef); err != nil {
				return err
			}
		}
		if err := ckt.AddC(aggNext, spice.Ground, dCg); err != nil {
			return err
		}
		if err := ckt.AddC(vicNext, spice.Ground, dCg); err != nil {
			return err
		}
		if dCm > 0 {
			if err := ckt.AddC(aggNext, vicNext, dCm); err != nil {
				return err
			}
		}
		aggPrev, vicPrev = aggNext, vicNext
		aggEnd, vicEnd = aggNext, vicNext
	}
	// Far-end terminations.
	if err := ckt.AddR(aggEnd, spice.Ground, cfg.RTerm); err != nil {
		return err
	}
	if err := ckt.AddR(vicEnd, spice.Ground, cfg.RTerm); err != nil {
		return err
	}

	w.cfg = cfg
	w.ckt = ckt
	w.vicIn, w.vicEnd, w.aggEnd = vicIn, vicEnd, aggEnd
	w.built = true
	return nil
}

// signedPeak returns the sample with the largest magnitude, keeping sign.
func signedPeak(v []float64) float64 {
	peak := 0.0
	for _, x := range v {
		if math.Abs(x) > math.Abs(peak) {
			peak = x
		}
	}
	return peak
}
