package batch

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"

	"rlcint/internal/diag"
	"rlcint/internal/runctl"
)

func TestTilesOfGeometry(t *testing.T) {
	cases := []struct {
		n    int
		opts Options
		want []tileRange
	}{
		{0, Options{}, []tileRange{}},
		{3, Options{TileSize: 1}, []tileRange{{0, 1}, {1, 2}, {2, 3}}},
		{10, Options{TileSize: 4}, []tileRange{{0, 4}, {4, 8}, {8, 10}}},
		// Default tile size is 8.
		{10, Options{}, []tileRange{{0, 8}, {8, 10}}},
		// Tiles never span a row boundary.
		{12, Options{TileSize: 8, RowLen: 6}, []tileRange{{0, 6}, {6, 12}}},
		{12, Options{TileSize: 4, RowLen: 6}, []tileRange{{0, 4}, {4, 6}, {6, 10}, {10, 12}}},
		// Ragged final row.
		{7, Options{TileSize: 2, RowLen: 3}, []tileRange{{0, 2}, {2, 3}, {3, 5}, {5, 6}, {6, 7}}},
	}
	for _, c := range cases {
		got := tilesOf(c.n, c.opts)
		if len(got) != len(c.want) {
			t.Fatalf("tilesOf(%d, %+v) = %v, want %v", c.n, c.opts, got, c.want)
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Fatalf("tilesOf(%d, %+v) = %v, want %v", c.n, c.opts, got, c.want)
			}
		}
	}
}

// TestRunOrderedAndComplete checks that every index is evaluated exactly once
// and results come back in index order regardless of worker count.
func TestRunOrderedAndComplete(t *testing.T) {
	const n = 53
	for _, workers := range []int{1, 2, 8} {
		var mu sync.Mutex
		seen := make(map[int]int)
		got, err := Run(nil, n, Options{Workers: workers, TileSize: 5},
			func() int { return 0 },
			func(_ int, i int, _ bool) (int, error) {
				mu.Lock()
				seen[i]++
				mu.Unlock()
				return i * i, nil
			})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(got) != n {
			t.Fatalf("workers=%d: got %d results, want %d", workers, len(got), n)
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: results[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
		for i := 0; i < n; i++ {
			if seen[i] != 1 {
				t.Fatalf("workers=%d: index %d evaluated %d times", workers, i, seen[i])
			}
		}
	}
}

// TestRunWarmFlag checks the continuation contract: warm is false exactly at
// tile-leading indices and true elsewhere, independent of worker count.
func TestRunWarmFlag(t *testing.T) {
	const n = 17
	opts := Options{TileSize: 4, RowLen: 7}
	tiles := tilesOf(n, opts)
	leading := make(map[int]bool)
	for _, tr := range tiles {
		leading[tr.lo] = true
	}
	for _, workers := range []int{1, 3} {
		o := opts
		o.Workers = workers
		warms, err := Run(nil, n, o,
			func() struct{} { return struct{}{} },
			func(_ struct{}, i int, warm bool) (bool, error) { return warm, nil })
		if err != nil {
			t.Fatal(err)
		}
		for i, w := range warms {
			if w == leading[i] {
				t.Errorf("workers=%d: warm[%d] = %v, want %v", workers, i, !w, leading[i])
			}
		}
	}
}

// TestRunScratchChaining checks that a tile's points share one scratch value
// in order: each point sees exactly the state its predecessor left.
func TestRunScratchChaining(t *testing.T) {
	const n = 24
	opts := Options{Workers: 4, TileSize: 6}
	type cell struct{ last int }
	got, err := Run(nil, n, opts,
		func() *cell { return &cell{last: -1} },
		func(s *cell, i int, warm bool) (int, error) {
			prev := s.last
			s.last = i
			if !warm {
				return -1, nil // tile-leading: no meaningful predecessor
			}
			return prev, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if i%6 == 0 {
			if v != -1 {
				t.Errorf("tile-leading %d saw predecessor %d", i, v)
			}
		} else if v != i-1 {
			t.Errorf("point %d chained from %d, want %d", i, v, i-1)
		}
	}
}

// TestRunDeterministicAcrossWorkers runs an eval whose result depends on the
// scratch chain and checks bit-identical output for 1, 2, and 8 workers.
func TestRunDeterministicAcrossWorkers(t *testing.T) {
	const n = 40
	run := func(workers int) []float64 {
		t.Helper()
		got, err := Run(nil, n, Options{Workers: workers, TileSize: 8, RowLen: 10},
			func() *float64 { x := 1.0; return &x },
			func(acc *float64, i int, warm bool) (float64, error) {
				if !warm {
					*acc = 1.0
				}
				*acc = *acc*1.0000001 + float64(i)*1e-9
				return *acc, nil
			})
		if err != nil {
			t.Fatal(err)
		}
		return got
	}
	ref := run(1)
	for _, workers := range []int{2, 8} {
		got := run(workers)
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("workers=%d: results[%d] = %x, want %x (bit-exact)", workers, i, got[i], ref[i])
			}
		}
	}
}

// TestRunErrorPrefix checks the partial-result contract: on an eval error the
// longest error-free prefix is returned with the lowest-indexed error.
func TestRunErrorPrefix(t *testing.T) {
	boom := errors.New("boom")
	got, err := Run(nil, 20, Options{Workers: 1, TileSize: 4},
		func() struct{} { return struct{}{} },
		func(_ struct{}, i int, _ bool) (int, error) {
			if i == 7 {
				return 0, fmt.Errorf("point %d: %w", i, boom)
			}
			return i, nil
		})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped boom", err)
	}
	if len(got) != 7 {
		t.Fatalf("prefix length = %d, want 7", len(got))
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("prefix[%d] = %d", i, v)
		}
	}
}

// TestRunCancellation checks that an exhausted iteration budget stops the
// pool with a typed error and a completed prefix.
func TestRunCancellation(t *testing.T) {
	ctl := runctl.New(context.Background(), runctl.Limits{MaxIters: 5})
	got, err := Run(ctl, 100, Options{Workers: 2, TileSize: 2},
		func() struct{} { return struct{}{} },
		func(_ struct{}, i int, _ bool) (int, error) { return i, nil })
	if !errors.Is(err, diag.ErrBudget) {
		t.Fatalf("err = %v, want ErrBudget", err)
	}
	if len(got) > 5 {
		t.Fatalf("completed %d points on a 5-iteration budget", len(got))
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("prefix[%d] = %d", i, v)
		}
	}
}

// TestRunPanicContained checks that a panicking eval surfaces as a typed
// diag.ErrPanic error instead of crashing the pool.
func TestRunPanicContained(t *testing.T) {
	got, err := Run(nil, 10, Options{Workers: 2, TileSize: 2},
		func() struct{} { return struct{}{} },
		func(_ struct{}, i int, _ bool) (int, error) {
			if i == 4 {
				panic("poisoned grid point")
			}
			return i, nil
		})
	if !errors.Is(err, diag.ErrPanic) {
		t.Fatalf("err = %v, want ErrPanic", err)
	}
	if len(got) > 4 {
		t.Fatalf("prefix %d reaches past the panicking point", len(got))
	}
}

// TestRunEmptyAndNilController covers the degenerate inputs.
func TestRunEmptyAndNilController(t *testing.T) {
	got, err := Run(nil, 0, Options{},
		func() struct{} { return struct{}{} },
		func(_ struct{}, i int, _ bool) (int, error) { return i, nil })
	if err != nil || len(got) != 0 {
		t.Fatalf("empty run: got %v, %v", got, err)
	}
}
