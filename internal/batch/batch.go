// Package batch is the batched evaluation engine for grid-shaped workloads:
// parameter sweeps, figure generation, and Monte-Carlo-style fan-out where
// every grid point runs the same solve at a different input.
//
// The engine partitions the index space [0, n) into worker-owned tiles.
// Each worker claims whole tiles from a shared counter and evaluates the
// tile's points in index order with a per-worker scratch value, telling the
// evaluator whether the previous point of the same tile completed — the
// hook warm-start continuation hangs off. Tile geometry is a function of
// Options alone (never of the worker count or scheduling), so a run with 16
// workers is bit-identical to a run with one: a point's result depends only
// on its tile and its position inside it.
//
// Like runctl.Stream, the engine is cancellation-aware (one controller Tick
// per point), leak-free (Run returns only after every worker exited), and
// panic-containing (a panic in eval surfaces as a typed diag.ErrPanic
// error). Unlike Stream — which drops the value of a failed item — Run
// keeps every completed point and returns the longest error-free prefix
// alongside the first error, honouring the partial-result contract of the
// sweep layer.
package batch

import (
	"runtime"
	"sync"
	"sync/atomic"

	"rlcint/internal/diag"
	"rlcint/internal/runctl"
)

// Options configure one batched run. The zero value means: GOMAXPROCS
// workers, 8-point tiles, no row structure.
type Options struct {
	// Workers bounds the worker pool (≤0 → GOMAXPROCS). Worker count never
	// affects results, only wall-clock time.
	Workers int
	// TileSize is the number of consecutive points one worker owns (≤0 →
	// 8). Within a tile, points evaluate in index order on one scratch
	// value; the first point of every tile sees warm == false. TileSize is
	// part of the result contract: changing it changes which points are
	// continuation-seeded.
	TileSize int
	// RowLen, when positive, declares the grid row width: tiles never span
	// a row boundary, so continuation never chains across unrelated rows
	// (e.g. different technology nodes).
	RowLen int
}

func (o Options) tileSize() int {
	if o.TileSize > 0 {
		return o.TileSize
	}
	return 8
}

// tileRange is one worker-owned contiguous index range [lo, hi).
type tileRange struct{ lo, hi int }

// tilesOf partitions [0, n) into tiles of at most TileSize points, splitting
// at every RowLen boundary first. Pure function of (n, Options).
func tilesOf(n int, o Options) []tileRange {
	if n <= 0 {
		return nil
	}
	ts := o.tileSize()
	rowLen := o.RowLen
	if rowLen <= 0 {
		rowLen = n
	}
	tiles := make([]tileRange, 0, n/ts+n/rowLen+1)
	for rowLo := 0; rowLo < n; rowLo += rowLen {
		rowHi := rowLo + rowLen
		if rowHi > n {
			rowHi = n
		}
		for lo := rowLo; lo < rowHi; lo += ts {
			hi := lo + ts
			if hi > rowHi {
				hi = rowHi
			}
			tiles = append(tiles, tileRange{lo, hi})
		}
	}
	return tiles
}

// Run evaluates eval(ws, i, warm) for every i in [0, n) across at most
// opts.Workers goroutines and returns the results in index order.
//
// newScratch builds one scratch value per worker; eval owns it for the
// duration of each call and may mutate it freely (it is never shared).
// warm reports that the previous index of the same tile completed on this
// scratch value immediately before — the continuation contract: when warm
// is true, state left in ws by point i−1 describes the neighboring grid
// point.
//
// On success Run returns all n results. On the first error (from run
// control, eval, or a contained panic) the pool drains and Run returns the
// longest error-free prefix of results together with the lowest-indexed
// error observed. A nil controller imposes no run control.
func Run[W, T any](ctl *runctl.Controller, n int, opts Options,
	newScratch func() W,
	eval func(ws W, i int, warm bool) (T, error),
) ([]T, error) {
	if n <= 0 {
		return nil, ctl.Check("batch.Run")
	}
	tiles := tilesOf(n, opts)
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(tiles) {
		workers = len(tiles)
	}

	results := make([]T, n)
	errs := make([]error, n)
	done := make([]bool, n)
	var next atomic.Int64
	var stop atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ws := newScratch()
			for {
				if stop.Load() {
					return
				}
				t := int(next.Add(1)) - 1
				if t >= len(tiles) {
					return
				}
				tr := tiles[t]
				for i := tr.lo; i < tr.hi; i++ {
					if i > tr.lo && stop.Load() {
						return
					}
					if err := ctl.Tick("batch.Run"); err != nil {
						errs[i] = err
						stop.Store(true)
						return
					}
					v, err := runGuarded(eval, ws, i, i > tr.lo)
					if err != nil {
						errs[i] = err
						stop.Store(true)
						return
					}
					results[i] = v
					done[i] = true
				}
			}
		}()
	}
	wg.Wait()

	prefix := 0
	for prefix < n && done[prefix] {
		prefix++
	}
	var firstErr error
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			firstErr = errs[i]
			break
		}
	}
	return results[:prefix], firstErr
}

// runGuarded calls eval with panic containment so one poisoned grid point
// cannot take down the whole pool (or the process).
func runGuarded[W, T any](eval func(W, int, bool) (T, error), ws W, i int, warm bool) (v T, err error) {
	defer diag.RecoverTo(&err, "batch.Run")
	return eval(ws, i, warm)
}
