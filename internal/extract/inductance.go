package extract

import (
	"fmt"
	"math"
)

// PartialSelfL returns the Ruehli/Grover partial self-inductance (H) of a
// straight rectangular bar of the given length, width and thickness:
//
//	L = (µ0·l/2π)·[ln(2l/(w+t)) + 1/2 + 0.2235·(w+t)/l]
//
// valid for l ≫ w+t (the usual on-chip regime).
func PartialSelfL(length, w, t float64) (float64, error) {
	if length <= 0 || w <= 0 || t <= 0 {
		return 0, fmt.Errorf("extract: non-physical bar l=%g w=%g t=%g", length, w, t)
	}
	u := w + t
	return Mu0 * length / (2 * math.Pi) *
		(math.Log(2*length/u) + 0.5 + 0.2235*u/length), nil
}

// MutualL returns the Grover mutual partial inductance (H) between two
// parallel filaments of equal length at centre-to-centre distance d:
//
//	M = (µ0·l/2π)·[ln(l/d + √(1+(l/d)²)) − √(1+(d/l)²) + d/l]
func MutualL(length, d float64) (float64, error) {
	if length <= 0 || d <= 0 {
		return 0, fmt.Errorf("extract: non-physical filament pair l=%g d=%g", length, d)
	}
	r := length / d
	return Mu0 * length / (2 * math.Pi) *
		(math.Log(r+math.Sqrt(1+r*r)) - math.Sqrt(1+1/(r*r)) + 1/r), nil
}

// LoopL returns the loop inductance (H) of a signal bar with an identical
// parallel return bar at centre-to-centre distance d:
//
//	L_loop = 2·(L_self − M)
func LoopL(length, w, t, d float64) (float64, error) {
	ls, err := PartialSelfL(length, w, t)
	if err != nil {
		return 0, err
	}
	m, err := MutualL(length, d)
	if err != nil {
		return 0, err
	}
	return 2 * (ls - m), nil
}

// LoopLPUL returns the loop inductance per unit length (H/m) for a signal
// wire of the given cross-section and length with its return at distance d.
// The per-unit-length value depends (weakly, logarithmically) on the total
// length because partial inductances are not local quantities; the paper's
// point that l varies strongly with the (uncertain) current return path is
// exactly this d-dependence.
func LoopLPUL(length, w, t, d float64) (float64, error) {
	l, err := LoopL(length, w, t, d)
	if err != nil {
		return 0, err
	}
	return l / length, nil
}
