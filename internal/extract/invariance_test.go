package extract

import (
	"math"
	"testing"
	"testing/quick"
)

func TestBEM2DScaleInvariance(t *testing.T) {
	// Two-dimensional capacitance per unit length is invariant under
	// uniform geometric scaling — a sharp analytic property the BEM
	// extractor must inherit.
	prop := func(seed float64) bool {
		scale := 0.5 + math.Abs(math.Mod(seed, 4)) // 0.5 .. 4.5
		if math.IsNaN(scale) {
			return true
		}
		base := []Rect{
			{X: 0, Y: 2 * um, W: 3 * um, H: 1.5 * um},
			{X: 5 * um, Y: 2 * um, W: 3 * um, H: 1.5 * um},
		}
		scaled := make([]Rect, len(base))
		for i, r := range base {
			scaled[i] = Rect{X: r.X * scale, Y: r.Y * scale, W: r.W * scale, H: r.H * scale}
		}
		c1, err1 := TotalCap2D(base, 0, 2.5, 10)
		c2, err2 := TotalCap2D(scaled, 0, 2.5, 10)
		if err1 != nil || err2 != nil {
			return false
		}
		return math.Abs(c1-c2)/c1 < 1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestBEMDielectricLinearity(t *testing.T) {
	// Capacitance scales exactly linearly with εr in a homogeneous medium.
	g := Table1Geometry(2*um, 2.5*um, 4*um, 14*um)
	c1, err := TotalCap2D(g, 0, 1.0, 10)
	if err != nil {
		t.Fatal(err)
	}
	c33, err := TotalCap2D(g, 0, 3.3, 10)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(c33-3.3*c1)/(3.3*c1) > 1e-12 {
		t.Errorf("dielectric scaling broken: %v vs %v", c33, 3.3*c1)
	}
}

func TestBEMCapacitanceGrowsTowardPlane(t *testing.T) {
	// Moving the conductor closer to the plane must increase C.
	prev := 0.0
	for _, y := range []float64{20 * um, 10 * um, 5 * um, 2 * um} {
		c, err := TotalCap2D([]Rect{{X: 0, Y: y, W: 2 * um, H: 2.5 * um}}, 0, 2, 12)
		if err != nil {
			t.Fatal(err)
		}
		if c <= prev {
			t.Errorf("y=%v: C=%v did not grow approaching the plane", y, c)
		}
		prev = c
	}
}

func TestMutualInductanceSymmetricInDistanceOnly(t *testing.T) {
	// Grover mutual depends only on |d| and length.
	m1, _ := MutualL(0.01, 5e-5)
	m2, _ := MutualL(0.01, 5e-5)
	if m1 != m2 {
		t.Error("MutualL must be deterministic")
	}
	// Longer filaments couple more.
	m3, _ := MutualL(0.02, 5e-5)
	if m3 <= m1 {
		t.Errorf("longer filaments must have larger mutual: %v vs %v", m3, m1)
	}
}
