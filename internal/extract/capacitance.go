package extract

import (
	"fmt"
	"math"
)

// PlateFringe returns a parallel-plate-plus-fringe estimate of the
// capacitance per unit length (F/m) of a wire of width w and thickness t at
// height hIns over a ground plane in a dielectric of relative permittivity
// epsr. The fringe term is the classic cylindrical-edge correction.
func PlateFringe(w, t, hIns, epsr float64) (float64, error) {
	if w <= 0 || t <= 0 || hIns <= 0 || epsr < 1 {
		return 0, fmt.Errorf("extract: non-physical capacitance inputs w=%g t=%g h=%g epsr=%g", w, t, hIns, epsr)
	}
	eps := Eps0 * epsr
	plate := eps * w / hIns
	fringe := eps * 2 * math.Pi / math.Log(1+2*hIns/t*(1+math.Sqrt(1+t/hIns)))
	return plate + fringe, nil
}

// SakuraiTamaru returns the Sakurai–Tamaru (1983) empirical capacitance per
// unit length of an isolated line over a ground plane:
//
//	C = ε·[1.15·(w/h) + 2.80·(t/h)^0.222]
//
// valid for 0.3 < w/h < 30 and 0.3 < t/h < 30.
func SakuraiTamaru(w, t, hIns, epsr float64) (float64, error) {
	if w <= 0 || t <= 0 || hIns <= 0 || epsr < 1 {
		return 0, fmt.Errorf("extract: non-physical capacitance inputs w=%g t=%g h=%g epsr=%g", w, t, hIns, epsr)
	}
	eps := Eps0 * epsr
	return eps * (1.15*(w/hIns) + 2.80*math.Pow(t/hIns, 0.222)), nil
}

// CoupledCap estimates the ground and neighbour-coupling capacitance per
// unit length of a line with symmetric same-layer neighbours at spacing s:
// the ground component follows Sakurai–Tamaru and the sidewall coupling uses
// a plate term t/s with a fringe correction. Returns (cGround, cCouple) with
// cCouple counted per neighbour.
func CoupledCap(w, t, hIns, s, epsr float64) (cg, cc float64, err error) {
	cg, err = SakuraiTamaru(w, t, hIns, epsr)
	if err != nil {
		return 0, 0, err
	}
	if s <= 0 {
		return 0, 0, fmt.Errorf("extract: non-positive spacing %g", s)
	}
	eps := Eps0 * epsr
	// Sidewall plate plus a fringing contribution decaying with s/h.
	cc = eps * (t/s + 1.2*math.Pow(s/hIns+1, -1.0)*math.Pow(w/(w+s), 0.1))
	return cg, cc, nil
}

// MillerRange returns the effective total capacitance extremes of a victim
// with two neighbours under switching activity: both neighbours switching
// in phase (coupling cancels) to both switching in anti-phase (coupling
// doubles). With aspect ratios above one this is the paper's "effective
// line capacitance can vary by as much as 4×" observation.
func MillerRange(cGround, cCouplePerNeighbour float64) (cMin, cMax float64) {
	return cGround, cGround + 4*cCouplePerNeighbour
}
