package extract

import (
	"fmt"
	"math"

	"rlcint/internal/lina"
)

// Rect is a conductor cross-section: a rectangle with lower-left corner
// (X, Y), width W and height H, in meters, above a ground plane at y = 0.
type Rect struct {
	X, Y, W, H float64
}

// Validate checks the rectangle sits strictly above the ground plane.
func (r Rect) Validate() error {
	if r.W <= 0 || r.H <= 0 {
		return fmt.Errorf("extract: degenerate conductor %+v", r)
	}
	if r.Y <= 0 {
		return fmt.Errorf("extract: conductor %+v touches the ground plane", r)
	}
	return nil
}

// panel is one boundary element: a straight segment with uniform charge.
type panel struct {
	x0, y0, x1, y1 float64
	cond           int // owning conductor
}

func (p panel) mid() (float64, float64) {
	return 0.5 * (p.x0 + p.x1), 0.5 * (p.y0 + p.y1)
}

func (p panel) length() float64 {
	return math.Hypot(p.x1-p.x0, p.y1-p.y0)
}

// CapMatrix2D computes the Maxwell capacitance matrix (F/m, per unit depth)
// of conductors over a ground plane in a uniform dielectric of relative
// permittivity epsr, using a 2-D boundary-element method: each conductor's
// perimeter is split into uniform-charge panels, the ground plane is handled
// with image charges, and the resulting potential-coefficient system is
// solved once per conductor. segPerSide panels are used on each rectangle
// side (12–16 gives better than a percent for typical geometries).
//
// C[i][i] is conductor i's total capacitance with every other conductor
// grounded; C[i][j] (i≠j, negative) is the mutual term.
func CapMatrix2D(conds []Rect, epsr float64, segPerSide int) (*lina.Dense, error) {
	if len(conds) == 0 {
		return nil, fmt.Errorf("extract: no conductors")
	}
	if epsr < 1 {
		return nil, fmt.Errorf("extract: epsr=%g < 1", epsr)
	}
	if segPerSide < 2 {
		segPerSide = 2
	}
	for i, c := range conds {
		if err := c.Validate(); err != nil {
			return nil, fmt.Errorf("extract: conductor %d: %w", i, err)
		}
	}
	var panels []panel
	for ci, c := range conds {
		corners := [][4]float64{
			{c.X, c.Y, c.X + c.W, c.Y},             // bottom
			{c.X + c.W, c.Y, c.X + c.W, c.Y + c.H}, // right
			{c.X + c.W, c.Y + c.H, c.X, c.Y + c.H}, // top
			{c.X, c.Y + c.H, c.X, c.Y},             // left
		}
		for _, side := range corners {
			for s := 0; s < segPerSide; s++ {
				f0 := float64(s) / float64(segPerSide)
				f1 := float64(s+1) / float64(segPerSide)
				panels = append(panels, panel{
					x0: side[0] + f0*(side[2]-side[0]), y0: side[1] + f0*(side[3]-side[1]),
					x1: side[0] + f1*(side[2]-side[0]), y1: side[1] + f1*(side[3]-side[1]),
					cond: ci,
				})
			}
		}
	}
	n := len(panels)
	eps := Eps0 * epsr
	pref := 1 / (2 * math.Pi * eps)
	// Potential coefficients: phi_i = sum_j P[i][j]·q_j with q in C/m.
	pmat := lina.NewDense(n, n)
	for i := 0; i < n; i++ {
		xi, yi := panels[i].mid()
		for j := 0; j < n; j++ {
			lj := panels[j].length()
			xj, yj := panels[j].mid()
			var direct float64
			if i == j {
				// Analytic self-term: (1/L)∫ ln|s| ds over the panel.
				direct = math.Log(lj/2) - 1
			} else {
				// Two-point Gauss–Legendre along the source panel.
				g := 0.5 / math.Sqrt(3)
				ax := panels[j].x0 + (0.5-g)*(panels[j].x1-panels[j].x0)
				ay := panels[j].y0 + (0.5-g)*(panels[j].y1-panels[j].y0)
				bx := panels[j].x0 + (0.5+g)*(panels[j].x1-panels[j].x0)
				by := panels[j].y0 + (0.5+g)*(panels[j].y1-panels[j].y0)
				direct = 0.5 * (math.Log(math.Hypot(xi-ax, yi-ay)) + math.Log(math.Hypot(xi-bx, yi-by)))
			}
			// Image of panel j below the ground plane.
			image := math.Log(math.Hypot(xi-xj, yi+yj))
			pmat.Set(i, j, pref*(image-direct))
		}
	}
	lu, err := lina.Factor(pmat)
	if err != nil {
		return nil, fmt.Errorf("extract: potential matrix singular: %w", err)
	}
	nc := len(conds)
	cm := lina.NewDense(nc, nc)
	rhs := make([]float64, n)
	for k := 0; k < nc; k++ {
		for i := range rhs {
			if panels[i].cond == k {
				rhs[i] = 1
			} else {
				rhs[i] = 0
			}
		}
		q := lu.Solve(rhs)
		for i, p := range panels {
			cm.Add(p.cond, k, q[i])
		}
	}
	return cm, nil
}

// TotalCap2D returns the victim conductor's total capacitance per unit
// length with all other conductors grounded — the quantity the paper's
// Table 1 tabulates from FASTCAP.
func TotalCap2D(conds []Rect, victim int, epsr float64, segPerSide int) (float64, error) {
	if victim < 0 || victim >= len(conds) {
		return 0, fmt.Errorf("extract: victim index %d out of range", victim)
	}
	cm, err := CapMatrix2D(conds, epsr, segPerSide)
	if err != nil {
		return 0, err
	}
	return cm.At(victim, victim), nil
}

// Table1Geometry builds the paper's top-metal cross-section: a victim line
// with one grounded neighbour on each side at the given pitch, all of the
// given width and thickness, at height tIns over the substrate plane.
// The victim is conductor 0.
func Table1Geometry(width, thickness, pitch, tIns float64) []Rect {
	return []Rect{
		{X: -width / 2, Y: tIns, W: width, H: thickness},
		{X: -width/2 - pitch, Y: tIns, W: width, H: thickness},
		{X: -width/2 + pitch, Y: tIns, W: width, H: thickness},
	}
}
