package extract

import (
	"math"
	"testing"
	"testing/quick"

	"rlcint/internal/tech"
)

const um = 1e-6

func TestResistanceMatchesTable1(t *testing.T) {
	// Table 1: r = 4.4 Ω/mm for a 2×2.5 µm² Cu wire. Bulk Cu at an
	// operating temperature near 90 °C (plus damascene overhead folded into
	// the coefficient) reproduces it.
	rho := RhoAtTemp(RhoCu, TCRCu, 90)
	r, err := ResistancePUL(rho, 2*um, 2.5*um)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r-4400)/4400 > 0.03 {
		t.Errorf("r = %v Ω/m, Table 1 has 4400", r)
	}
}

func TestResistanceValidation(t *testing.T) {
	if _, err := ResistancePUL(0, 1, 1); err == nil {
		t.Error("zero rho must fail")
	}
	if _, err := SkinDepth(RhoCu, 0); err == nil {
		t.Error("zero frequency must fail")
	}
}

func TestSkinDepthAndACResistance(t *testing.T) {
	// Copper at 10 GHz: δ ≈ 0.66 µm.
	d, err := SkinDepth(RhoCu, 10e9)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d-0.66e-6) > 0.03e-6 {
		t.Errorf("skin depth = %v, want ≈0.66 µm", d)
	}
	rdc, _ := ResistancePUL(RhoCu, 2*um, 2.5*um)
	rlo, err := ResistanceAC(RhoCu, 2*um, 2.5*um, 1e8) // δ≈6.6µm > 1µm: DC
	if err != nil {
		t.Fatal(err)
	}
	if rlo != rdc {
		t.Errorf("low-frequency AC resistance %v != DC %v", rlo, rdc)
	}
	rhi, err := ResistanceAC(RhoCu, 2*um, 2.5*um, 10e9)
	if err != nil {
		t.Fatal(err)
	}
	if rhi <= rdc {
		t.Errorf("10 GHz resistance %v not above DC %v", rhi, rdc)
	}
}

func TestSakuraiTamaruAgainstBEM(t *testing.T) {
	// The empirical fit and the BEM extractor must agree within a few
	// percent inside the fit's validity range (isolated line, uniform
	// dielectric).
	cases := []struct{ w, th, h float64 }{
		{10, 1, 1}, {3, 1, 1}, {1, 1, 1}, {2, 3, 2},
	}
	for _, c := range cases {
		st, err := SakuraiTamaru(c.w*um, c.th*um, c.h*um, 1)
		if err != nil {
			t.Fatal(err)
		}
		bem, err := TotalCap2D([]Rect{{X: 0, Y: c.h * um, W: c.w * um, H: c.th * um}}, 0, 1, 16)
		if err != nil {
			t.Fatal(err)
		}
		if r := bem / st; r < 0.93 || r > 1.07 {
			t.Errorf("w/h=%v t/h=%v: BEM/ST = %v", c.w/c.h, c.th/c.h, r)
		}
	}
}

func TestBEMReproducesTable1Within3DEnvironmentGap(t *testing.T) {
	// The paper extracted c with FASTCAP in a full 3-D multi-layer
	// environment; our 2-D model (victim + two neighbours + substrate
	// plane) recovers ≈3/4 of it — the missing quarter is coupling to the
	// orthogonal layers the 2-D cross-section cannot see. The ratio must be
	// consistent across both nodes (same geometry, different dielectric).
	ratios := make([]float64, 0, 2)
	for _, tc := range []struct {
		node tech.Node
		want float64
	}{
		{tech.Node250(), 203.5e-12},
		{tech.Node100(), 123.33e-12},
	} {
		g := Table1Geometry(tc.node.Width, tc.node.Height, tc.node.Pitch, tc.node.TIns)
		c, err := TotalCap2D(g, 0, tc.node.EpsR, 14)
		if err != nil {
			t.Fatal(err)
		}
		r := c / tc.want
		if r < 0.6 || r > 1.1 {
			t.Errorf("%s: BEM/FASTCAP = %v, outside the expected environment gap", tc.node.Name, r)
		}
		ratios = append(ratios, r)
	}
	if math.Abs(ratios[0]-ratios[1]) > 0.05 {
		t.Errorf("environment gap inconsistent across nodes: %v vs %v", ratios[0], ratios[1])
	}
}

func TestCoupledCapApproximatesTable1(t *testing.T) {
	// The closed-form coupled estimate (ground + two sidewall neighbours)
	// lands within ~15% of the FASTCAP values.
	for _, tc := range []struct {
		node tech.Node
		want float64
	}{
		{tech.Node250(), 203.5e-12},
		{tech.Node100(), 123.33e-12},
	} {
		cg, cc, err := CoupledCap(tc.node.Width, tc.node.Height, tc.node.TIns, tc.node.Spacing(), tc.node.EpsR)
		if err != nil {
			t.Fatal(err)
		}
		tot := cg + 2*cc
		if r := tot / tc.want; r < 0.85 || r > 1.15 {
			t.Errorf("%s: closed-form total %v vs FASTCAP %v (ratio %v)", tc.node.Name, tot, tc.want, r)
		}
	}
}

func TestMillerRange(t *testing.T) {
	// The paper: effective line capacitance can vary by as much as 4× for
	// aspect ratios above one. With cc ≈ cg the Miller range spans ≈5×
	// cGround, i.e. max/min up to ~4–5.
	n := tech.Node100()
	cg, cc, err := CoupledCap(n.Width, n.Height, n.TIns, n.Spacing(), n.EpsR)
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := MillerRange(cg, cc)
	if lo != cg {
		t.Errorf("min = %v, want cGround %v", lo, cg)
	}
	if ratio := hi / lo; ratio < 3 || ratio > 7 {
		t.Errorf("Miller max/min = %v, paper indicates ≈4×", ratio)
	}
}

func TestCapMatrixSymmetryAndSigns(t *testing.T) {
	g := Table1Geometry(2*um, 2.5*um, 4*um, 14*um)
	cm, err := CapMatrix2D(g, 3.0, 10)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if cm.At(i, i) <= 0 {
			t.Errorf("C[%d][%d] = %v, want positive", i, i, cm.At(i, i))
		}
		for j := 0; j < 3; j++ {
			if i == j {
				continue
			}
			if cm.At(i, j) >= 0 {
				t.Errorf("C[%d][%d] = %v, want negative", i, j, cm.At(i, j))
			}
			if rel := math.Abs(cm.At(i, j)-cm.At(j, i)) / math.Abs(cm.At(i, j)); rel > 0.02 {
				t.Errorf("asymmetry C[%d][%d]=%v vs C[%d][%d]=%v", i, j, cm.At(i, j), j, i, cm.At(j, i))
			}
		}
	}
	// The two outer neighbours are mirror images: equal self terms.
	if rel := math.Abs(cm.At(1, 1)-cm.At(2, 2)) / cm.At(1, 1); rel > 0.01 {
		t.Errorf("mirror conductors differ: %v vs %v", cm.At(1, 1), cm.At(2, 2))
	}
}

func TestBEMPanelConvergence(t *testing.T) {
	coarse, err := TotalCap2D([]Rect{{X: 0, Y: um, W: 3 * um, H: um}}, 0, 1, 8)
	if err != nil {
		t.Fatal(err)
	}
	fine, err := TotalCap2D([]Rect{{X: 0, Y: um, W: 3 * um, H: um}}, 0, 1, 24)
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(fine-coarse) / fine; rel > 0.01 {
		t.Errorf("panel convergence: %v vs %v (rel %v)", coarse, fine, rel)
	}
}

func TestBEMValidation(t *testing.T) {
	if _, err := CapMatrix2D(nil, 1, 8); err == nil {
		t.Error("no conductors must fail")
	}
	if _, err := CapMatrix2D([]Rect{{X: 0, Y: 0, W: 1, H: 1}}, 1, 8); err == nil {
		t.Error("conductor on the plane must fail")
	}
	if _, err := CapMatrix2D([]Rect{{X: 0, Y: 1, W: -1, H: 1}}, 1, 8); err == nil {
		t.Error("degenerate conductor must fail")
	}
	if _, err := CapMatrix2D([]Rect{{X: 0, Y: 1, W: 1, H: 1}}, 0.5, 8); err == nil {
		t.Error("epsr < 1 must fail")
	}
	if _, err := TotalCap2D([]Rect{{X: 0, Y: 1, W: 1, H: 1}}, 3, 1, 8); err == nil {
		t.Error("victim out of range must fail")
	}
}

func TestPartialSelfLScalesSuperlinearly(t *testing.T) {
	// Partial inductance grows faster than length (the ln term).
	l1, err := PartialSelfL(1e-3, 2*um, 2.5*um)
	if err != nil {
		t.Fatal(err)
	}
	l2, err := PartialSelfL(2e-3, 2*um, 2.5*um)
	if err != nil {
		t.Fatal(err)
	}
	if l2 <= 2*l1 {
		t.Errorf("L(2mm)=%v not above 2·L(1mm)=%v", l2, 2*l1)
	}
}

func TestMutualLessThanSelf(t *testing.T) {
	length := 11.1e-3
	ls, _ := PartialSelfL(length, 2*um, 2.5*um)
	for _, d := range []float64{4 * um, 20 * um, 200 * um} {
		m, err := MutualL(length, d)
		if err != nil {
			t.Fatal(err)
		}
		if m >= ls || m <= 0 {
			t.Errorf("d=%v: M=%v vs L=%v", d, m, ls)
		}
	}
}

func TestLoopLMatchesTwoWireFormula(t *testing.T) {
	// For d ≫ cross-section, the loop inductance approaches the classic
	// two-wire value (µ0/π)·[ln(d/GMR) + …]; check against the direct
	// partial-inductance composition at 10% accuracy.
	length := 11.1e-3
	w, th := 2*um, 2.5*um
	gmr := 0.2235 * (w + th) // geometric-mean-radius equivalent of a rectangle
	for _, d := range []float64{50 * um, 200 * um} {
		got, err := LoopLPUL(length, w, th, d)
		if err != nil {
			t.Fatal(err)
		}
		want := Mu0 / math.Pi * (math.Log(d/gmr) + 0.25)
		if rel := math.Abs(got-want) / want; rel > 0.10 {
			t.Errorf("d=%v: loop L %v vs two-wire %v (rel %v)", d, got, want, rel)
		}
	}
}

func TestLoopLMonotoneInReturnDistanceProperty(t *testing.T) {
	prop := func(a, b float64) bool {
		d1 := 5*um + math.Abs(math.Mod(a, 1))*100*um
		d2 := d1 + 5*um + math.Abs(math.Mod(b, 1))*100*um
		l1, e1 := LoopLPUL(11.1e-3, 2*um, 2.5*um, d1)
		l2, e2 := LoopLPUL(11.1e-3, 2*um, 2.5*um, d2)
		return e1 == nil && e2 == nil && l2 > l1
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestWorstCaseInductanceBelowPaperBound(t *testing.T) {
	// The paper: "the worst-case line inductance for both these technologies
	// was calculated to be < 5 nH/mm" with the farthest practical return.
	// Even a return 2 mm away stays under the bound; a substrate return
	// (t_ins) gives a few tenths of nH/mm.
	n := tech.Node100()
	far, err := LoopLPUL(11.1e-3, n.Width, n.Height, 2e-3)
	if err != nil {
		t.Fatal(err)
	}
	if far >= tech.WorstCaseInductance {
		t.Errorf("far-return l = %v nH/mm, paper bound is 5", far*1e6)
	}
	near, err := LoopLPUL(11.1e-3, n.Width, n.Height, n.TIns+n.Height)
	if err != nil {
		t.Fatal(err)
	}
	if near < 0.1e-6 || near > 1.5e-6 {
		t.Errorf("substrate-return l = %v nH/mm, expected a few tenths", near*1e6)
	}
	if near >= far {
		t.Error("inductance must grow with return distance")
	}
}

func TestInductanceValidation(t *testing.T) {
	if _, err := PartialSelfL(0, 1, 1); err == nil {
		t.Error("zero length must fail")
	}
	if _, err := MutualL(1, 0); err == nil {
		t.Error("zero distance must fail")
	}
	if _, err := LoopL(1e-3, 0, 1e-6, 1e-5); err == nil {
		t.Error("zero width must fail")
	}
}

func TestCapValidation(t *testing.T) {
	if _, err := PlateFringe(0, 1, 1, 1); err == nil {
		t.Error("zero width must fail")
	}
	if _, err := SakuraiTamaru(1, 1, 1, 0.5); err == nil {
		t.Error("epsr<1 must fail")
	}
	if _, _, err := CoupledCap(1e-6, 1e-6, 1e-6, 0, 2); err == nil {
		t.Error("zero spacing must fail")
	}
	if c, err := PlateFringe(2*um, 2.5*um, 14*um, 3.3); err != nil || c <= 0 {
		t.Errorf("PlateFringe: %v %v", c, err)
	}
}
