package extract

import (
	"fmt"
	"math"

	"rlcint/internal/lina"
)

// Bar is a straight rectangular conductor parallel to the signal wire,
// described by its cross-section centre position (X, Y) and size. All bars
// in one solve share the same length.
type Bar struct {
	X, Y float64 // centre coordinates of the cross-section, m
	W, T float64 // width and thickness, m
}

// Validate rejects degenerate bars.
func (b Bar) Validate() error {
	if b.W <= 0 || b.T <= 0 {
		return fmt.Errorf("extract: degenerate bar %+v", b)
	}
	return nil
}

// centreDist returns the centre-to-centre distance between two bars — the
// geometric-mean-distance approximation used for mutual partial inductance
// (accurate once separation exceeds the cross-section size).
func centreDist(a, b Bar) float64 {
	return math.Hypot(a.X-b.X, a.Y-b.Y)
}

// LoopSolution is the result of EffectiveLoopL: how the return current
// distributes and the resulting loop inductance.
type LoopSolution struct {
	LTotal  float64   // loop inductance of the full length, H
	LPUL    float64   // per unit length, H/m
	Returns []float64 // return currents (sum = −1, signal carries +1)
}

// EffectiveLoopL computes the effective loop inductance of a signal bar
// whose unit current returns through an arbitrary set of parallel return
// conductors. The return currents distribute so as to minimize the total
// magnetic energy ½·iᵀ·Lp·i subject to Σi_ret = −1 — the physical
// low-frequency current distribution, and the mechanism behind the paper's
// observation that the effective line inductance depends strongly on the
// (uncertain) current return path. Solving with different return sets
// reproduces the full practical range of l, bounded by the paper's
// 5 nH/mm worst case.
func EffectiveLoopL(length float64, signal Bar, returns []Bar) (LoopSolution, error) {
	if length <= 0 {
		return LoopSolution{}, fmt.Errorf("extract: non-positive length %g", length)
	}
	if err := signal.Validate(); err != nil {
		return LoopSolution{}, err
	}
	if len(returns) == 0 {
		return LoopSolution{}, fmt.Errorf("extract: no return conductors")
	}
	n := len(returns)
	for i, b := range returns {
		if err := b.Validate(); err != nil {
			return LoopSolution{}, fmt.Errorf("extract: return %d: %w", i, err)
		}
		if centreDist(signal, b) == 0 {
			return LoopSolution{}, fmt.Errorf("extract: return %d coincides with the signal", i)
		}
	}
	// Partial inductance blocks.
	l00, err := PartialSelfL(length, signal.W, signal.T)
	if err != nil {
		return LoopSolution{}, err
	}
	l0r := make([]float64, n)
	for i, b := range returns {
		m, err := MutualL(length, centreDist(signal, b))
		if err != nil {
			return LoopSolution{}, err
		}
		l0r[i] = m
	}
	lrr := lina.NewDense(n, n)
	for i := range returns {
		self, err := PartialSelfL(length, returns[i].W, returns[i].T)
		if err != nil {
			return LoopSolution{}, err
		}
		lrr.Set(i, i, self)
		for j := i + 1; j < n; j++ {
			d := centreDist(returns[i], returns[j])
			if d == 0 {
				return LoopSolution{}, fmt.Errorf("extract: returns %d and %d coincide", i, j)
			}
			m, err := MutualL(length, d)
			if err != nil {
				return LoopSolution{}, err
			}
			lrr.Set(i, j, m)
			lrr.Set(j, i, m)
		}
	}
	// KKT system: [Lrr 1; 1ᵀ 0]·[i_r; μ] = [−L_r0; −1].
	kkt := lina.NewDense(n+1, n+1)
	rhs := make([]float64, n+1)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			kkt.Set(i, j, lrr.At(i, j))
		}
		kkt.Set(i, n, 1)
		kkt.Set(n, i, 1)
		rhs[i] = -l0r[i]
	}
	rhs[n] = -1
	sol, err := lina.Solve(kkt, rhs)
	if err != nil {
		return LoopSolution{}, fmt.Errorf("extract: singular return system: %w", err)
	}
	ir := sol[:n]
	// Energy: L_loop = i·Lp·i with i = (1, ir).
	lTot := l00
	for i := 0; i < n; i++ {
		lTot += 2 * l0r[i] * ir[i]
		for j := 0; j < n; j++ {
			lTot += ir[i] * lrr.At(i, j) * ir[j]
		}
	}
	return LoopSolution{LTotal: lTot, LPUL: lTot / length, Returns: ir}, nil
}
