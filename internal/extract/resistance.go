// Package extract computes per-unit-length interconnect parameters (r, c, l)
// from cross-section geometry — the library's substitute for the paper's
// field solvers (FASTCAP for capacitance, rigorous EM tools for inductance):
//
//   - resistance from resistivity and cross-section, with temperature and
//     skin-depth corrections;
//   - capacitance from closed-form estimators (parallel plate + fringe,
//     Sakurai–Tamaru) and from a 2-D boundary-element (method-of-moments)
//     extractor with a ground plane;
//   - inductance from Ruehli/Grover partial self and mutual inductances of
//     rectangular bars, and loop inductance versus return-path distance —
//     which reproduces the paper's "worst-case l < 5 nH/mm" bound.
package extract

import (
	"fmt"
	"math"
)

// Material resistivities at 20 °C, Ω·m.
const (
	RhoCu = 1.72e-8 // bulk copper (damascene lines run ~20–30% higher)
	RhoAl = 2.82e-8

	// TCRCu is copper's temperature coefficient of resistivity, 1/K.
	TCRCu = 3.9e-3

	// Mu0 is the vacuum permeability, H/m.
	Mu0 = 4 * math.Pi * 1e-7
	// Eps0 is the vacuum permittivity, F/m.
	Eps0 = 8.8541878128e-12
)

// ResistancePUL returns the DC resistance per unit length (Ω/m) of a wire
// with the given resistivity and cross-section.
func ResistancePUL(rho, width, thickness float64) (float64, error) {
	if rho <= 0 || width <= 0 || thickness <= 0 {
		return 0, fmt.Errorf("extract: non-physical resistance inputs rho=%g w=%g t=%g", rho, width, thickness)
	}
	return rho / (width * thickness), nil
}

// RhoAtTemp scales a 20 °C resistivity to temperature tC (°C) with a linear
// temperature coefficient tcr (1/K).
func RhoAtTemp(rho20, tcr, tC float64) float64 {
	return rho20 * (1 + tcr*(tC-20))
}

// SkinDepth returns δ = √(ρ/(π·f·µ0)) in meters at frequency f.
func SkinDepth(rho, f float64) (float64, error) {
	if rho <= 0 || f <= 0 {
		return 0, fmt.Errorf("extract: non-physical skin-depth inputs rho=%g f=%g", rho, f)
	}
	return math.Sqrt(rho / (math.Pi * f * Mu0)), nil
}

// ResistanceAC returns an effective AC resistance per unit length using the
// standard conducting-shell approximation: current flows in a rim of one
// skin depth when δ is smaller than half the conductor's smaller dimension,
// otherwise the DC value applies.
func ResistanceAC(rho, width, thickness, f float64) (float64, error) {
	rdc, err := ResistancePUL(rho, width, thickness)
	if err != nil {
		return 0, err
	}
	if f <= 0 {
		return rdc, nil
	}
	delta, err := SkinDepth(rho, f)
	if err != nil {
		return 0, err
	}
	half := math.Min(width, thickness) / 2
	if delta >= half {
		return rdc, nil
	}
	// Effective conducting area: full area minus the unused core.
	coreW := width - 2*delta
	coreT := thickness - 2*delta
	area := width*thickness - coreW*coreT
	return rho / area, nil
}
