package extract

import (
	"math"
	"testing"

	"rlcint/internal/tech"
)

func barAt(x, y float64) Bar { return Bar{X: x, Y: y, W: 2 * um, T: 2.5 * um} }

func TestSingleReturnMatchesLoopL(t *testing.T) {
	length := 11.1e-3
	d := 50 * um
	sol, err := EffectiveLoopL(length, barAt(0, 0), []Bar{barAt(d, 0)})
	if err != nil {
		t.Fatal(err)
	}
	want, err := LoopL(length, 2*um, 2.5*um, d)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sol.LTotal-want)/want > 1e-12 {
		t.Errorf("single return: %v, closed form %v", sol.LTotal, want)
	}
	if math.Abs(sol.Returns[0]+1) > 1e-12 {
		t.Errorf("single return current %v, want -1", sol.Returns[0])
	}
}

func TestSymmetricReturnsShareEqually(t *testing.T) {
	length := 11.1e-3
	sol, err := EffectiveLoopL(length, barAt(0, 0),
		[]Bar{barAt(40*um, 0), barAt(-40*um, 0)})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sol.Returns[0]-sol.Returns[1]) > 1e-12 {
		t.Errorf("symmetric returns unequal: %v", sol.Returns)
	}
	if math.Abs(sol.Returns[0]+0.5) > 1e-12 {
		t.Errorf("each return should carry -0.5, got %v", sol.Returns[0])
	}
	// Two returns beat one: less inductance.
	single, _ := EffectiveLoopL(length, barAt(0, 0), []Bar{barAt(40*um, 0)})
	if sol.LTotal >= single.LTotal {
		t.Errorf("two returns (%v) not below one (%v)", sol.LTotal, single.LTotal)
	}
}

func TestCurrentPrefersCloserReturn(t *testing.T) {
	length := 11.1e-3
	sol, err := EffectiveLoopL(length, barAt(0, 0),
		[]Bar{barAt(20*um, 0), barAt(200*um, 0)})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sol.Returns[0]) <= math.Abs(sol.Returns[1]) {
		t.Errorf("closer return should carry more current: %v", sol.Returns)
	}
	// Conservation.
	if math.Abs(sol.Returns[0]+sol.Returns[1]+1) > 1e-12 {
		t.Errorf("currents don't sum to -1: %v", sol.Returns)
	}
}

func TestEffectiveLGrowsWithReturnDistance(t *testing.T) {
	length := 11.1e-3
	var prev float64
	for i, d := range []float64{20 * um, 100 * um, 500 * um} {
		sol, err := EffectiveLoopL(length, barAt(0, 0), []Bar{barAt(d, 0)})
		if err != nil {
			t.Fatal(err)
		}
		if i > 0 && sol.LPUL <= prev {
			t.Errorf("d=%v: l did not grow (%v vs %v)", d, sol.LPUL, prev)
		}
		prev = sol.LPUL
	}
}

func TestRealisticConfigsInPaperRange(t *testing.T) {
	// A grid-like environment: power rails at ±3 pitches plus a remote
	// return. Effective l must land inside the paper's practical window
	// and below its 5 nH/mm worst case.
	n := tech.Node100()
	length := 11.1e-3
	configs := [][]Bar{
		{barAt(3*n.Pitch, 0), barAt(-3*n.Pitch, 0)}, // nearby rails
		{barAt(30*n.Pitch, 0)},                      // single distant rail
		{barAt(0, -(n.TIns + n.Height))},            // substrate return
		{barAt(800*um, 0)},                          // remote return
	}
	for i, cfg := range configs {
		sol, err := EffectiveLoopL(length, barAt(0, 0), cfg)
		if err != nil {
			t.Fatalf("config %d: %v", i, err)
		}
		lNH := sol.LPUL / tech.NHPerMM
		if lNH <= 0.05 || lNH >= 5 {
			t.Errorf("config %d: l = %v nH/mm outside the paper's practical window", i, lNH)
		}
	}
}

func TestMoreReturnsNeverWorse(t *testing.T) {
	// Energy minimization: adding a return conductor can only reduce (or
	// keep) the effective inductance.
	length := 11.1e-3
	base, err := EffectiveLoopL(length, barAt(0, 0), []Bar{barAt(60*um, 0)})
	if err != nil {
		t.Fatal(err)
	}
	more, err := EffectiveLoopL(length, barAt(0, 0),
		[]Bar{barAt(60*um, 0), barAt(-90*um, 0), barAt(0, 120*um)})
	if err != nil {
		t.Fatal(err)
	}
	if more.LTotal > base.LTotal+1e-18 {
		t.Errorf("adding returns increased L: %v vs %v", more.LTotal, base.LTotal)
	}
}

func TestEffectiveLoopLValidation(t *testing.T) {
	if _, err := EffectiveLoopL(0, barAt(0, 0), []Bar{barAt(1e-5, 0)}); err == nil {
		t.Error("zero length must fail")
	}
	if _, err := EffectiveLoopL(1e-3, barAt(0, 0), nil); err == nil {
		t.Error("no returns must fail")
	}
	if _, err := EffectiveLoopL(1e-3, barAt(0, 0), []Bar{barAt(0, 0)}); err == nil {
		t.Error("coincident return must fail")
	}
	if _, err := EffectiveLoopL(1e-3, barAt(0, 0), []Bar{barAt(1e-5, 0), barAt(1e-5, 0)}); err == nil {
		t.Error("coincident returns must fail")
	}
	if _, err := EffectiveLoopL(1e-3, Bar{W: 0, T: 1}, []Bar{barAt(1e-5, 0)}); err == nil {
		t.Error("degenerate signal must fail")
	}
}
