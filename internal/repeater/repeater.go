// Package repeater models the sized CMOS repeater of the paper's Figure 1
// and the classical Elmore/RC-optimal repeater insertion it compares
// against: closed-form optimal segment length h_optRC, size k_optRC and
// segment delay τ_optRC, plus the inverse extraction the paper uses to
// obtain (r_s, c_0, c_p) for a technology from SPICE-measured optima.
package repeater

import (
	"fmt"
	"math"

	"rlcint/internal/diag"
	"rlcint/internal/tech"
	"rlcint/internal/tline"
)

// MinDevice describes a minimum-sized repeater: output resistance Rs,
// input capacitance C0 and output parasitic capacitance Cp (SI units).
// A repeater k times minimum size has RS = Rs/k, CP = Cp·k, and presents
// CL = C0·k to its driver.
type MinDevice struct {
	Rs float64 // Ω
	C0 float64 // F
	Cp float64 // F
}

// FromTech extracts the device parameters of a technology node.
func FromTech(n tech.Node) MinDevice { return MinDevice{Rs: n.Rs, C0: n.C0, Cp: n.Cp} }

// Validate rejects non-physical device parameters, including NaN/Inf
// values (which plain sign comparisons would let through) with a
// diag.ErrDomain-matchable error.
func (d MinDevice) Validate() error {
	if err := diag.CheckFinite("repeater.MinDevice",
		[]string{"Rs", "C0", "Cp"}, []float64{d.Rs, d.C0, d.Cp}); err != nil {
		return err
	}
	if d.Rs <= 0 || d.C0 <= 0 || d.Cp < 0 {
		return fmt.Errorf("repeater: invalid device rs=%g c0=%g cp=%g: %w", d.Rs, d.C0, d.Cp, diag.ErrDomain)
	}
	return nil
}

// Scaled returns the driver parameters of a k-times-minimum repeater:
// series resistance, output parasitic capacitance, and the input (load)
// capacitance it presents.
func (d MinDevice) Scaled(k float64) (rs, cp, cl float64) {
	return d.Rs / k, d.Cp * k, d.C0 * k
}

// Stage assembles the paper's driver–line–load stage for a segment of
// length h driven by a size-k repeater and loaded by an identical repeater.
func (d MinDevice) Stage(line tline.Line, h, k float64) tline.Stage {
	rs, cp, cl := d.Scaled(k)
	return tline.Stage{Line: line, H: h, RS: rs, CP: cp, CL: cl}
}

// RCOptimum is the classical Elmore-delay repeater insertion solution.
type RCOptimum struct {
	H   float64 // optimal segment length, m
	K   float64 // optimal repeater size (multiples of minimum)
	Tau float64 // Elmore delay of one optimal segment, s
}

// Normalize maps a design point (h, k) into the RC optimum's coordinate
// frame (h/h_optRC, k/k_optRC) — the dimensionless space the stationarity
// Newton, its warm-start continuation seeds, and the batched sweep engine
// all work in (cold start = (1, 1)).
func (o RCOptimum) Normalize(h, k float64) (x, y float64) {
	return h / o.H, k / o.K
}

// Denormalize is the inverse of Normalize: it maps a point of the RC-frame
// back to physical (h, k).
func (o RCOptimum) Denormalize(x, y float64) (h, k float64) {
	return x * o.H, y * o.K
}

// RCOptimal returns the closed-form optimum for the Elmore (RC) delay model:
//
//	h_optRC = √(2·rs(c0+cp)/(r·c)),  k_optRC = √(rs·c/(r·c0)),
//	τ_optRC = 2·rs(c0+cp)·(1 + √(2c0/(c0+cp))).
//
// τ_optRC is independent of the wiring level — the paper treats it as a
// technology constant.
func RCOptimal(d MinDevice, line tline.Line) (RCOptimum, error) {
	if err := d.Validate(); err != nil {
		return RCOptimum{}, err
	}
	if err := line.Validate(); err != nil {
		return RCOptimum{}, err
	}
	return RCOptimum{
		H:   math.Sqrt(2 * d.Rs * (d.C0 + d.Cp) / (line.R * line.C)),
		K:   math.Sqrt(d.Rs * line.C / (line.R * d.C0)),
		Tau: 2 * d.Rs * (d.C0 + d.Cp) * (1 + math.Sqrt(2*d.C0/(d.C0+d.Cp))),
	}, nil
}

// SegmentElmore returns the Elmore delay of one length-h segment driven by a
// size-k repeater (the bracketed term of the paper's t_Elmore).
func SegmentElmore(d MinDevice, line tline.Line, h, k float64) float64 {
	return d.Stage(line, h, k).ElmoreSegment()
}

// TotalElmore returns the Elmore delay of a length-L line broken into
// length-h buffered segments of size-k repeaters: (L/h)·τ_segment.
func TotalElmore(d MinDevice, line tline.Line, L, h, k float64) float64 {
	return L / h * SegmentElmore(d, line, h, k)
}

// Extract inverts the RC-optimum closed forms: given a measured optimal
// segment length h, repeater size k and segment delay tau (e.g. from SPICE
// sweeps, as the paper does for Table 1) plus the line's r and c, it
// recovers the minimum-device parameters (rs, c0, cp).
//
// Derivation: with A ≡ rs(c0+cp) = r·c·h²/2 and B ≡ rs/c0 = k²·r/c, the
// delay equation gives q ≡ √(2c0/(c0+cp)) = tau/(2A) − 1, so
// rs = q·√(A·B/2), c0 = rs/B, cp = A/rs − c0.
func Extract(line tline.Line, h, k, tau float64) (MinDevice, error) {
	if h <= 0 || k <= 0 || tau <= 0 {
		return MinDevice{}, fmt.Errorf("repeater: Extract requires positive h, k, tau")
	}
	if err := line.Validate(); err != nil {
		return MinDevice{}, err
	}
	a := line.R * line.C * h * h / 2
	b := k * k * line.R / line.C
	q := tau/(2*a) - 1
	if q <= 0 || q >= math.Sqrt2 {
		return MinDevice{}, fmt.Errorf("repeater: Extract: inconsistent measurements (q=%g must be in (0,√2))", q)
	}
	rs := q * math.Sqrt(a*b/2)
	c0 := rs / b
	cp := a/rs - c0
	d := MinDevice{Rs: rs, C0: c0, Cp: cp}
	if err := d.Validate(); err != nil {
		return MinDevice{}, fmt.Errorf("repeater: Extract produced %+v: %w", d, err)
	}
	return d, nil
}

// IntrinsicDelay returns τ_optRC for the device alone; like τ_optRC it is a
// pure technology figure of merit (the paper's Table 1 τ column).
func (d MinDevice) IntrinsicDelay() float64 {
	return 2 * d.Rs * (d.C0 + d.Cp) * (1 + math.Sqrt(2*d.C0/(d.C0+d.Cp)))
}
