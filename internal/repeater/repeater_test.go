package repeater

import (
	"math"
	"testing"
	"testing/quick"

	"rlcint/internal/tech"
	"rlcint/internal/tline"
)

func lineOf(n tech.Node) tline.Line { return tline.Line{R: n.R, L: 0, C: n.C} }

func TestRCOptimalReproducesTable1(t *testing.T) {
	cases := []struct {
		node        tech.Node
		h, k, tauPS float64
	}{
		{tech.Node250(), 14.4e-3, 578, 305.17},
		{tech.Node100(), 11.1e-3, 528, 105.94},
	}
	for _, tc := range cases {
		opt, err := RCOptimal(FromTech(tc.node), lineOf(tc.node))
		if err != nil {
			t.Fatalf("%s: %v", tc.node.Name, err)
		}
		if math.Abs(opt.H-tc.h)/tc.h > 0.01 {
			t.Errorf("%s: h_optRC = %v mm, want %v", tc.node.Name, opt.H/tech.MM, tc.h/tech.MM)
		}
		if math.Abs(opt.K-tc.k)/tc.k > 0.01 {
			t.Errorf("%s: k_optRC = %v, want %v", tc.node.Name, opt.K, tc.k)
		}
		if math.Abs(opt.Tau-tc.tauPS*tech.PS)/(tc.tauPS*tech.PS) > 0.01 {
			t.Errorf("%s: tau_optRC = %v ps, want %v", tc.node.Name, opt.Tau/tech.PS, tc.tauPS)
		}
	}
}

func TestRCOptimalIsElmoreStationaryPoint(t *testing.T) {
	// The closed form must be the minimum of the Elmore delay per unit
	// length: perturbing h or k in either direction cannot decrease it.
	for _, n := range tech.Nodes() {
		d := FromTech(n)
		line := lineOf(n)
		opt, err := RCOptimal(d, line)
		if err != nil {
			t.Fatal(err)
		}
		perUnit := func(h, k float64) float64 { return SegmentElmore(d, line, h, k) / h }
		base := perUnit(opt.H, opt.K)
		for _, eps := range []float64{-0.01, 0.01} {
			if perUnit(opt.H*(1+eps), opt.K) < base {
				t.Errorf("%s: h perturbation %v improves Elmore delay", n.Name, eps)
			}
			if perUnit(opt.H, opt.K*(1+eps)) < base {
				t.Errorf("%s: k perturbation %v improves Elmore delay", n.Name, eps)
			}
		}
	}
}

func TestTauIndependentOfWiringLevel(t *testing.T) {
	// τ_optRC depends only on the device: change r and c arbitrarily and the
	// optimal segment delay stays the same.
	d := FromTech(tech.Node250())
	line1 := tline.Line{R: 4400, C: 203.5e-12}
	line2 := tline.Line{R: 44000, C: 20.35e-12}
	o1, _ := RCOptimal(d, line1)
	o2, _ := RCOptimal(d, line2)
	if math.Abs(o1.Tau-o2.Tau)/o1.Tau > 1e-12 {
		t.Errorf("tau varies with wiring level: %v vs %v", o1.Tau, o2.Tau)
	}
	if math.Abs(o1.Tau-d.IntrinsicDelay()) > 1e-18 {
		t.Error("IntrinsicDelay disagrees with RCOptimal tau")
	}
}

func TestExtractRoundTrip(t *testing.T) {
	// Table 1 is self-consistent: extracting from the closed-form optimum
	// recovers the device.
	for _, n := range tech.Nodes() {
		d := FromTech(n)
		line := lineOf(n)
		opt, _ := RCOptimal(d, line)
		got, err := Extract(line, opt.H, opt.K, opt.Tau)
		if err != nil {
			t.Fatalf("%s: Extract: %v", n.Name, err)
		}
		if math.Abs(got.Rs-d.Rs)/d.Rs > 1e-9 {
			t.Errorf("%s: rs = %v, want %v", n.Name, got.Rs, d.Rs)
		}
		if math.Abs(got.C0-d.C0)/d.C0 > 1e-9 {
			t.Errorf("%s: c0 = %v, want %v", n.Name, got.C0, d.C0)
		}
		if math.Abs(got.Cp-d.Cp)/d.Cp > 1e-9 {
			t.Errorf("%s: cp = %v, want %v", n.Name, got.Cp, d.Cp)
		}
	}
}

func TestExtractRoundTripProperty(t *testing.T) {
	prop := func(a, b, c float64) bool {
		u := func(x float64) float64 {
			m := math.Mod(x, 5)
			if math.IsNaN(m) {
				m = 1
			}
			return 0.2 + math.Abs(m)
		}
		d := MinDevice{Rs: 5000 * u(a), C0: 1e-15 * u(b), Cp: 3e-15 * u(c)}
		line := tline.Line{R: 4400, C: 1.5e-10}
		opt, err := RCOptimal(d, line)
		if err != nil {
			return false
		}
		got, err := Extract(line, opt.H, opt.K, opt.Tau)
		if err != nil {
			return false
		}
		return math.Abs(got.Rs-d.Rs) < 1e-6*d.Rs &&
			math.Abs(got.C0-d.C0) < 1e-6*d.C0 &&
			math.Abs(got.Cp-d.Cp) < 1e-6*d.Cp
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestExtractRejectsInconsistent(t *testing.T) {
	line := tline.Line{R: 4400, C: 2e-10}
	if _, err := Extract(line, 0.014, 500, 1e-15); err == nil {
		t.Error("tau too small for the geometry must be rejected")
	}
	if _, err := Extract(line, -1, 500, 1e-10); err == nil {
		t.Error("negative h must be rejected")
	}
	// q >= sqrt(2) (tau too large) must be rejected too.
	a := line.R * line.C * 0.014 * 0.014 / 2
	if _, err := Extract(line, 0.014, 500, 2*a*(1+1.5)); err == nil {
		t.Error("tau too large must be rejected")
	}
}

func TestScaledAndStage(t *testing.T) {
	d := MinDevice{Rs: 8000, C0: 1e-15, Cp: 4e-15}
	rs, cp, cl := d.Scaled(400)
	if rs != 20 || cp != 1.6e-12 || cl != 4e-13 {
		t.Errorf("Scaled: %v %v %v", rs, cp, cl)
	}
	line := tline.Line{R: 4400, L: 1e-6, C: 1.2e-10}
	st := d.Stage(line, 0.01, 400)
	if st.RS != rs || st.CP != cp || st.CL != cl || st.H != 0.01 || st.Line != line {
		t.Errorf("Stage wrong: %+v", st)
	}
}

func TestTotalElmoreScales(t *testing.T) {
	d := FromTech(tech.Node100())
	line := lineOf(tech.Node100())
	// Twice the length = twice the delay for fixed segmentation.
	d1 := TotalElmore(d, line, 0.05, 0.01, 500)
	d2 := TotalElmore(d, line, 0.10, 0.01, 500)
	if math.Abs(d2-2*d1)/d1 > 1e-12 {
		t.Errorf("TotalElmore not linear in L: %v vs %v", d1, d2)
	}
}

func TestValidate(t *testing.T) {
	if err := (MinDevice{Rs: 1, C0: 1, Cp: 0}).Validate(); err != nil {
		t.Errorf("cp=0 should be allowed: %v", err)
	}
	if err := (MinDevice{Rs: 0, C0: 1, Cp: 1}).Validate(); err == nil {
		t.Error("rs=0 must fail")
	}
}
