package baseline

import (
	"math"
	"testing"

	"rlcint/internal/pade"
	"rlcint/internal/repeater"
	"rlcint/internal/tech"
	"rlcint/internal/tline"
)

func TestCriticalX(t *testing.T) {
	// (1+x)e^{-x} = 0.5 has x = 1.67835...
	x, err := criticalX(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x-1.67835) > 1e-4 {
		t.Errorf("x = %v, want 1.67835", x)
	}
	// Verify the defining equation across thresholds.
	for _, g := range []float64{0.1, 0.3, 0.7, 0.95} {
		x, err := criticalX(g)
		if err != nil {
			t.Fatalf("g=%v: %v", g, err)
		}
		if r := (1+x)*math.Exp(-x) - g; math.Abs(r) > 1e-10 {
			t.Errorf("g=%v: residual %v", g, r)
		}
	}
	if _, err := criticalX(0); err == nil {
		t.Error("g=0 must fail")
	}
	if _, err := criticalX(1); err == nil {
		t.Error("g=1 must fail")
	}
}

func TestKMDelayRegimeSelection(t *testing.T) {
	over, _ := pade.New(10, 1)   // disc = 96 >> 10·b2
	under, _ := pade.New(0.1, 1) // disc ≈ -4 << -10·b2? -3.99 vs -10: NOT strongly under
	deep, _ := pade.New(0.1, 10) // disc = 0.01-40 = -39.99 << -10·b2=-100? no...
	_ = deep
	crit, _ := pade.New(2, 1)
	if _, r, _ := KMDelay(over, 0.5); r != KMOverdamped {
		t.Errorf("(10,1) regime %v", r)
	}
	if _, r, _ := KMDelay(crit, 0.5); r != KMCritical {
		t.Errorf("(2,1) regime %v", r)
	}
	if _, r, _ := KMDelay(under, 0.5); r != KMUnderdamped {
		t.Errorf("(0.1,1) regime %v, want underdamped (ζ=0.05)", r)
	}
	mid, _ := pade.New(1.5, 1) // ζ=0.75: disc=-1.75, inside the critical band
	if _, r, _ := KMDelay(mid, 0.5); r != KMCritical {
		t.Errorf("(1.5,1) regime %v, want critical (moderate ζ)", r)
	}
	_ = deep
}

func TestKMDelayAccuracyInAsymptoticRegimes(t *testing.T) {
	// The paper concedes KM is accurate when |b1²−4b2| >> b2. Compare with
	// the exact numerical delay there.
	cases := []struct {
		b1, b2 float64
		tol    float64
	}{
		{20, 1, 0.02},   // strongly overdamped
		{0.05, 1, 0.05}, // strongly underdamped
		{0.2, 1, 0.08},  // underdamped
	}
	for _, c := range cases {
		m, _ := pade.New(c.b1, c.b2)
		km, _, err := KMDelay(m, 0.5)
		if err != nil {
			t.Fatalf("(%v,%v): %v", c.b1, c.b2, err)
		}
		exact, err := m.Delay(0.5)
		if err != nil {
			t.Fatal(err)
		}
		if rel := math.Abs(km-exact.Tau) / exact.Tau; rel > c.tol {
			t.Errorf("(%v,%v): KM %v vs exact %v (rel %v)", c.b1, c.b2, km, exact.Tau, rel)
		}
	}
}

func TestKMCriticalBranchInsensitiveToInductance(t *testing.T) {
	// The paper's criticism (Section 2.1): near critical damping KM use the
	// critically damped formula, which — because it is evaluated AT
	// b2 = b1²/4 — is a pure multiple of b1 and so does not move when l
	// (hence b2) changes. Verify the branch value is identical for two
	// different b2 with the same b1 once both are forced critical.
	node := tech.Node100()
	d := repeater.FromTech(node)
	mk := func(l float64) pade.Model {
		line := tline.Line{R: node.R, L: l, C: node.C}
		st := d.Stage(line, 11.1*tech.MM, 528)
		m, err := pade.FromStage(st)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	// b1 is independent of l by construction.
	mA, mB := mk(0.1*tech.NHPerMM), mk(0.25*tech.NHPerMM)
	if mA.B1 != mB.B1 {
		t.Fatalf("b1 changed with l: %v vs %v", mA.B1, mB.B1)
	}
	// Force the critical branch by construction: at b2 = b1²/4 the formula
	// depends only on b1.
	critA, _ := pade.New(mA.B1, mA.B1*mA.B1/4)
	dA, rA, err := KMDelay(critA, 0.5)
	if err != nil || rA != KMCritical {
		t.Fatalf("regime %v err %v", rA, err)
	}
	x, _ := criticalX(0.5)
	if want := x * mA.B1 / 2; math.Abs(dA-want) > 1e-12*want {
		t.Errorf("critical KM delay %v, want %v·b1/2", dA, x)
	}
	// The true delay DOES change between the two inductances; KM's critical
	// branch cannot see it.
	tA, _ := mA.Delay(0.5)
	tB, _ := mB.Delay(0.5)
	if math.Abs(tA.Tau-tB.Tau)/tA.Tau < 1e-3 {
		t.Skip("exact delays too close to demonstrate the criticism here")
	}
}

func TestIFReducesToRCAtZeroInductance(t *testing.T) {
	for _, node := range tech.Nodes() {
		d := repeater.FromTech(node)
		line := tline.Line{R: node.R, L: 0, C: node.C}
		ifo, err := IFOptimal(d, line)
		if err != nil {
			t.Fatal(err)
		}
		rc, _ := repeater.RCOptimal(d, line)
		if math.Abs(ifo.H-rc.H) > 1e-12*rc.H || math.Abs(ifo.K-rc.K) > 1e-12*rc.K {
			t.Errorf("%s: IF at l=0 (%v,%v) != RC (%v,%v)", node.Name, ifo.H, ifo.K, rc.H, rc.K)
		}
		if ifo.TLR != 0 {
			t.Errorf("T_{L/R} at l=0 = %v", ifo.TLR)
		}
	}
}

func TestIFValidityFlagsTypicalGlobalLine(t *testing.T) {
	// The paper notes IF's fit is only valid for C_T/C_L and R_S/R_T in
	// (0,1]; a typical optimally-buffered global line violates the first.
	node := tech.Node100()
	d := repeater.FromTech(node)
	line := tline.Line{R: node.R, L: 2e-6, C: node.C}
	v := IFCheckValidity(d, line, 11.1*tech.MM, 528)
	if v.CTOverCL <= 1 {
		t.Errorf("C_T/C_L = %v, expected > 1 for the paper's global lines", v.CTOverCL)
	}
	if v.InRange {
		t.Error("typical global line should be flagged out of IF fitting range")
	}
}

func TestElmoreDelay50(t *testing.T) {
	node := tech.Node250()
	d := repeater.FromTech(node)
	st := d.Stage(tline.Line{R: node.R, C: node.C}, 14.4*tech.MM, 578)
	got := ElmoreDelay50(st)
	if want := math.Ln2 * st.ElmoreSegment(); got != want {
		t.Errorf("ElmoreDelay50 = %v, want %v", got, want)
	}
}

func TestKMDelayValidation(t *testing.T) {
	m, _ := pade.New(2, 1)
	if _, _, err := KMDelay(m, 0); err == nil {
		t.Error("f=0 must fail")
	}
	if _, _, err := KMDelay(m, 1); err == nil {
		t.Error("f=1 must fail")
	}
	if KMOverdamped.String() == "" || KMRegime(7).String() == "" {
		t.Error("String() broken")
	}
}
