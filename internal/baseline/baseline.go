// Package baseline implements the prior-art models the paper compares its
// methodology against:
//
//   - the Elmore (first-moment) delay and its classical repeater optimum
//     (via internal/repeater),
//   - the Kahng–Muddu analytical two-pole delay approximations [23], whose
//     critically-damped branch the paper criticizes for being insensitive to
//     the line inductance,
//   - the Ismail–Friedman curve-fitted repeater-insertion formulas [21, 22],
//     whose empirical constants were fitted to circuit simulations and carry
//     validity-range restrictions the paper's own method avoids.
package baseline

import (
	"errors"
	"fmt"
	"math"

	"rlcint/internal/pade"
	"rlcint/internal/repeater"
	"rlcint/internal/tline"
)

// ElmoreDelay50 returns the classical 0.69·(first moment) estimate of the
// 50% delay of a stage (the "0.69 RC" rule; exact for a single pole).
func ElmoreDelay50(st tline.Stage) float64 {
	return math.Ln2 * st.ElmoreSegment()
}

// KMRegime names the branch of the Kahng–Muddu approximation used.
type KMRegime int

const (
	KMOverdamped  KMRegime = iota // dominant-pole branch
	KMUnderdamped                 // phase/envelope branch
	KMCritical                    // critically-damped closed form
)

// String implements fmt.Stringer.
func (r KMRegime) String() string {
	switch r {
	case KMOverdamped:
		return "overdamped"
	case KMUnderdamped:
		return "underdamped"
	case KMCritical:
		return "critical"
	}
	return fmt.Sprintf("KMRegime(%d)", int(r))
}

// kmBand is the |b1²−4b2|/b2 threshold below which Kahng–Muddu fall back to
// the critically damped expression ("|b1²−4b2| ≫ b2" is required for the
// asymptotic branches). Since |b1²−4b2| = 4·b2·|ζ²−1| can never exceed 4·b2
// on the underdamped side, the band is 3·b2, i.e. the asymptotic branches
// engage for ζ < 1/2 (underdamped) or ζ > √(7)/2 ≈ 1.32 (overdamped).
const kmBand = 3.0

// KMDelay evaluates the Kahng–Muddu-style analytical f×100% delay of a
// two-pole model:
//
//   - strongly overdamped: dominant-pole formula
//     τ = ln(A/(1−f))/(−s1) with A = |s2/(s2−s1)|;
//   - strongly underdamped: fast-rise phase formula
//     τ = [φ + arccos((1−f)·β/ωn)]/β with φ = atan(α/β), which neglects the
//     envelope decay over the first rise;
//   - otherwise: the critically damped closed form, the solution of
//     (1+x)e^{−x} = 1−f scaled by 2b2/b1.
//
// The critical branch collapses to a pure multiple of b1 when b2 = b1²/4,
// which is exactly the inductance-insensitivity the paper criticizes
// (Section 2.1): near critical damping this approximation predicts that the
// delay does not change with l at all.
func KMDelay(m pade.Model, f float64) (float64, KMRegime, error) {
	if f <= 0 || f >= 1 {
		return 0, 0, fmt.Errorf("baseline: KMDelay threshold f=%g outside (0,1)", f)
	}
	disc := m.Discriminant()
	switch {
	case disc > kmBand*m.B2: // strongly overdamped
		sq := math.Sqrt(disc)
		s1 := (-m.B1 + sq) / (2 * m.B2) // slow pole
		s2 := (-m.B1 - sq) / (2 * m.B2)
		amp := math.Abs(s2 / (s2 - s1))
		return math.Log(amp/(1-f)) / -s1, KMOverdamped, nil
	case disc < -kmBand*m.B2: // strongly underdamped
		alpha := m.B1 / (2 * m.B2)
		beta := math.Sqrt(-disc) / (2 * m.B2)
		omegaN := m.OmegaN()
		phi := math.Atan2(alpha, beta)
		arg := (1 - f) * beta / omegaN
		if arg > 1 {
			arg = 1
		}
		return (phi + math.Acos(arg)) / beta, KMUnderdamped, nil
	default:
		x, err := criticalX(1 - f)
		if err != nil {
			return 0, KMCritical, err
		}
		return x * 2 * m.B2 / m.B1, KMCritical, nil
	}
}

// criticalX solves (1+x)·e^{−x} = g for x > 0 (the critically damped
// threshold equation) with Newton from a log-based initial guess.
func criticalX(g float64) (float64, error) {
	if g <= 0 || g >= 1 {
		return 0, fmt.Errorf("baseline: criticalX requires g in (0,1), got %g", g)
	}
	x := 1.0 - math.Log(g) // decent start: for small g, x ≈ -ln g + ln x
	for i := 0; i < 100; i++ {
		fx := (1+x)*math.Exp(-x) - g
		dfx := -x * math.Exp(-x)
		if dfx == 0 {
			break
		}
		step := fx / dfx
		x -= step
		if x <= 0 {
			x = 1e-9
		}
		if math.Abs(step) < 1e-14*(1+x) {
			return x, nil
		}
	}
	return x, errors.New("baseline: criticalX did not converge")
}

// IFOptimum is the Ismail–Friedman curve-fitted repeater solution.
type IFOptimum struct {
	H   float64 // optimal segment length, m
	K   float64 // optimal repeater size
	TLR float64 // the T_{L/R} inductance-effect parameter used
}

// IFValidity reports whether the fitted formulas are inside their published
// fitting range: the ratios C_T/C_L (total line to load capacitance) and
// R_S/R_T (source to total line resistance) were fitted for values in (0,1].
type IFValidity struct {
	CTOverCL float64
	RSOverRT float64
	InRange  bool
}

// IFOptimal evaluates the Ismail–Friedman closed-form repeater insertion
// [21, 22]:
//
//	h_opt = h_RC · [1 + 0.18·T³]^0.3,  k_opt = k_RC / [1 + 0.16·T³]^0.24,
//
// where T = T_{L/R} = √(l/c)/(r·h_RC) measures the relative strength of
// inductance over the RC-optimal segment. At l = 0 the formulas reduce
// exactly to the Elmore optimum — by construction they can never reproduce
// the paper's observation that h_optRLC < h_optRC at l = 0.
func IFOptimal(d repeater.MinDevice, line tline.Line) (IFOptimum, error) {
	rc, err := repeater.RCOptimal(d, tline.Line{R: line.R, C: line.C})
	if err != nil {
		return IFOptimum{}, err
	}
	t := 0.0
	if line.L > 0 {
		t = math.Sqrt(line.L/line.C) / (line.R * rc.H)
	}
	t3 := t * t * t
	return IFOptimum{
		H:   rc.H * math.Pow(1+0.18*t3, 0.3),
		K:   rc.K / math.Pow(1+0.16*t3, 0.24),
		TLR: t,
	}, nil
}

// IFCheckValidity evaluates the fitted-range conditions for a candidate
// stage sizing.
func IFCheckValidity(d repeater.MinDevice, line tline.Line, h, k float64) IFValidity {
	ct := line.C * h
	cl := d.C0 * k
	rs := d.Rs / k
	rt := line.R * h
	v := IFValidity{CTOverCL: ct / cl, RSOverRT: rs / rt}
	v.InRange = v.CTOverCL > 0 && v.CTOverCL <= 1 && v.RSOverRT > 0 && v.RSOverRT <= 1
	return v
}
