// Tests comparing the fitted baselines against the rigorous optimizer live
// in an external test package: core imports baseline (for the degraded-mode
// estimate facade), so an in-package test importing core would be a cycle.
package baseline_test

import (
	"math"
	"testing"

	"rlcint/internal/baseline"
	"rlcint/internal/core"
	"rlcint/internal/repeater"
	"rlcint/internal/tech"
	"rlcint/internal/tline"
)

func TestIFTrendsMatchOptimizer(t *testing.T) {
	// IF's fitted curves move in the same direction as the rigorous
	// optimizer: h grows, k shrinks with l; magnitudes agree within ~35%
	// (they were fitted to a different simulator and delay definition).
	node := tech.Node100()
	d := repeater.FromTech(node)
	var prevH, prevK float64
	for i, l := range []float64{0.5e-6, 2e-6, 4.5e-6} {
		line := tline.Line{R: node.R, L: l, C: node.C}
		ifo, err := baseline.IFOptimal(d, line)
		if err != nil {
			t.Fatal(err)
		}
		if i > 0 && (ifo.H <= prevH || ifo.K >= prevK) {
			t.Errorf("l=%v: IF trends wrong (h %v->%v, k %v->%v)", l, prevH, ifo.H, prevK, ifo.K)
		}
		prevH, prevK = ifo.H, ifo.K
		opt, err := core.Optimize(core.Problem{Device: d, Line: line})
		if err != nil {
			t.Fatal(err)
		}
		if rel := math.Abs(ifo.H-opt.H) / opt.H; rel > 0.35 {
			t.Errorf("l=%v: IF h=%v vs optimizer %v (rel %v)", l, ifo.H, opt.H, rel)
		}
		// The fitted k consistently overestimates the rigorous optimum here
		// (different delay definition and fitting simulator); the paper's
		// point is exactly that the fit has limited validity. Bound the
		// disagreement rather than requiring agreement.
		if ratio := ifo.K / opt.K; ratio < 1.0 || ratio > 2.5 {
			t.Errorf("l=%v: IF k=%v vs optimizer %v (ratio %v)", l, ifo.K, opt.K, ratio)
		}
	}
}
