package fleet

import (
	"context"
	"errors"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"rlcint/internal/diag"
)

func addrOf(ts *httptest.Server) string { return strings.TrimPrefix(ts.URL, "http://") }

// newTestFleet builds a probe-less fleet (peers permanently up) with fast
// backoff, suitable for exercising the forwarding client directly.
func newTestFleet(t *testing.T, mutate func(*Config)) *Fleet {
	t.Helper()
	cfg := Config{
		Self:           "self.test:1",
		ProbeInterval:  -1, // no prober; candidate lists come from the caller
		AttemptTimeout: 2 * time.Second,
		BackoffBase:    time.Millisecond,
		BackoffMax:     5 * time.Millisecond,
		ForwardBudget:  10 * time.Second,
		Logger:         log.New(io.Discard, "", 0),
	}
	if mutate != nil {
		mutate(&cfg)
	}
	f, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(f.Close)
	return f
}

func TestForwardRetriesNextReplica(t *testing.T) {
	bad := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "boom", http.StatusInternalServerError)
	}))
	defer bad.Close()
	good := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if got := r.Header.Get(HopsHeader); got != "1" {
			t.Errorf("forwarded request hops header = %q, want 1", got)
		}
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write([]byte(`{"ok":true}`))
	}))
	defer good.Close()

	f := newTestFleet(t, nil)
	pr, err := f.Forward(context.Background(), []string{addrOf(bad), addrOf(good)}, "/v1/x", []byte(`{}`), 1)
	if err != nil {
		t.Fatalf("Forward: %v", err)
	}
	if pr.Peer != addrOf(good) || pr.Status != http.StatusOK || string(pr.Body) != `{"ok":true}` {
		t.Fatalf("Forward answered from %s status %d body %q", pr.Peer, pr.Status, pr.Body)
	}
	m := f.Metrics()
	if m["attempts"] != 2 || m["retries"] != 1 || m["peer_5xx"] != 1 {
		t.Errorf("metrics = %v, want 2 attempts / 1 retry / 1 peer_5xx", m)
	}
}

func TestForward4xxIsAuthoritative(t *testing.T) {
	var hits atomic.Int64
	peer := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		http.Error(w, `{"error":{}}`, http.StatusUnprocessableEntity)
	}))
	defer peer.Close()
	other := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		t.Error("second candidate reached after an authoritative 4xx")
	}))
	defer other.Close()

	f := newTestFleet(t, nil)
	pr, err := f.Forward(context.Background(), []string{addrOf(peer), addrOf(other)}, "/v1/x", nil, 1)
	if err != nil {
		t.Fatalf("Forward: %v", err)
	}
	if pr.Status != http.StatusUnprocessableEntity {
		t.Fatalf("status = %d, want 422 relayed", pr.Status)
	}
	if hits.Load() != 1 {
		t.Fatalf("peer hit %d times, want exactly 1 (4xx must not retry)", hits.Load())
	}
}

func TestForwardHedgeFirstResponseWins(t *testing.T) {
	slowCancelled := make(chan struct{})
	slow := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-r.Context().Done():
			close(slowCancelled) // the losing attempt was cancelled, not left running
		case <-time.After(5 * time.Second):
		}
	}))
	defer slow.Close()
	fast := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, _ = w.Write([]byte(`fast`))
	}))
	defer fast.Close()

	f := newTestFleet(t, func(c *Config) { c.HedgeAfter = 20 * time.Millisecond })
	pr, err := f.Forward(context.Background(), []string{addrOf(slow), addrOf(fast)}, "/v1/x", nil, 1)
	if err != nil {
		t.Fatalf("Forward: %v", err)
	}
	if !pr.Hedged || pr.Peer != addrOf(fast) {
		t.Fatalf("answer hedged=%t from %s, want hedged answer from the fast peer", pr.Hedged, pr.Peer)
	}
	m := f.Metrics()
	if m["hedges"] != 1 || m["hedge_wins"] != 1 {
		t.Errorf("metrics = %v, want 1 hedge / 1 hedge_win", m)
	}
	select {
	case <-slowCancelled:
	case <-time.After(2 * time.Second):
		t.Error("losing attempt was never cancelled")
	}
}

func TestForwardHonorsRetryAfter(t *testing.T) {
	shedding := func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "1")
		http.Error(w, "full", http.StatusServiceUnavailable)
	}
	p1 := httptest.NewServer(http.HandlerFunc(shedding))
	defer p1.Close()
	p2 := httptest.NewServer(http.HandlerFunc(shedding))
	defer p2.Close()

	f := newTestFleet(t, func(c *Config) { c.BackoffMax = 10 * time.Millisecond })
	start := time.Now()
	_, err := f.Forward(context.Background(), []string{addrOf(p1), addrOf(p2)}, "/v1/x", nil, 1)
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("Forward succeeded against two shedding peers")
	}
	m := f.Metrics()
	if m["retry_after_honored"] < 1 {
		t.Errorf("retry_after_honored = %d, want >= 1", m["retry_after_honored"])
	}
	// Retry-After of 1s is clamped to 4×BackoffMax = 40ms; the retry must
	// have waited at least that long instead of hammering immediately.
	if elapsed < 40*time.Millisecond {
		t.Errorf("both attempts finished in %s, Retry-After was not honored", elapsed)
	}
}

func TestForwardTransportFaultInjection(t *testing.T) {
	var hits atomic.Int64
	peer := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
	}))
	defer peer.Close()

	f := newTestFleet(t, func(c *Config) {
		c.Injector = diag.FaultEvery("fleet.transport", 1, errors.New("injected wire fault"))
	})
	_, err := f.Forward(context.Background(), []string{addrOf(peer), addrOf(peer)}, "/v1/x", nil, 1)
	if err == nil {
		t.Fatal("Forward succeeded although every transport attempt faults")
	}
	if hits.Load() != 0 {
		t.Errorf("peer reached %d times through a faulted transport", hits.Load())
	}
	if m := f.Metrics(); m["transport_errors"] < 2 {
		t.Errorf("transport_errors = %d, want >= 2", m["transport_errors"])
	}
}

// denyAllGate skips every peer, as an all-open breaker set would.
type denyAllGate struct{ skips atomic.Int64 }

func (g *denyAllGate) Allow(string) bool          { g.skips.Add(1); return false }
func (g *denyAllGate) Result(string, bool, string) {}

func TestForwardAllCandidatesGatedReturnsNoCandidates(t *testing.T) {
	gate := &denyAllGate{}
	f := newTestFleet(t, func(c *Config) { c.Gate = gate })
	_, err := f.Forward(context.Background(), []string{"x:1", "y:2"}, "/v1/x", nil, 1)
	if !errors.Is(err, ErrNoCandidates) {
		t.Fatalf("err = %v, want ErrNoCandidates", err)
	}
	if f.Metrics()["breaker_skips"] != 2 {
		t.Errorf("breaker_skips = %d, want 2", f.Metrics()["breaker_skips"])
	}
}

func TestForwardEmptyCandidates(t *testing.T) {
	f := newTestFleet(t, nil)
	if _, err := f.Forward(context.Background(), nil, "/v1/x", nil, 0); !errors.Is(err, ErrNoCandidates) {
		t.Fatalf("err = %v, want ErrNoCandidates", err)
	}
}

func TestHopsFrom(t *testing.T) {
	cases := []struct {
		in   string
		want int
	}{{"", 0}, {"0", 0}, {"2", 2}, {"17", 17}, {"-1", 0}, {"junk", 0}, {"2x", 0}}
	for _, c := range cases {
		h := http.Header{}
		if c.in != "" {
			h.Set(HopsHeader, c.in)
		}
		if got := HopsFrom(h); got != c.want {
			t.Errorf("HopsFrom(%q) = %d, want %d", c.in, got, c.want)
		}
	}
}
