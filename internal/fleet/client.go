package fleet

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"time"

	"rlcint/internal/diag"
)

// maxRelayBytes bounds a relayed peer response body. Unary answers are a few
// hundred bytes; anything near this limit is a protocol violation, treated
// as a failed attempt.
const maxRelayBytes = 8 << 20

// ErrNoCandidates reports that no routable peer survived health and breaker
// filtering — the caller computes locally.
var ErrNoCandidates = errors.New("fleet: no routable peer candidates")

// PeerResponse is a relayable answer from a peer: an authoritative HTTP
// response (2xx, or a deterministic 4xx that would be the same everywhere).
type PeerResponse struct {
	Status      int
	ContentType string
	Degraded    string // the peer's X-Degraded header, if any
	Body        []byte
	Peer        string // address that answered
	Hedged      bool   // answered by a hedge request, not the primary attempt
}

// peerError is one failed attempt: transport errors carry status 0,
// retryable HTTP failures carry the peer's status and any Retry-After.
type peerError struct {
	addr       string
	status     int
	retryAfter time.Duration
	err        error
}

func (e *peerError) Error() string {
	if e.status != 0 {
		return fmt.Sprintf("fleet: peer %s answered %d", e.addr, e.status)
	}
	return fmt.Sprintf("fleet: peer %s: %v", e.addr, e.err)
}

func (e *peerError) Unwrap() error { return e.err }

// attempt performs one forwarded request to one peer. It returns a
// PeerResponse only for authoritative statuses (2xx/4xx); transport errors
// and 5xx come back as *peerError so the caller retries the next candidate.
func (f *Fleet) attempt(ctx context.Context, addr, path string, body []byte, hops, attemptIdx int) (*PeerResponse, error) {
	// The chaos hook: rlcd -fault-op fleet.transport -fault-every N makes
	// every Nth peer attempt fail as if the wire dropped it.
	if err := f.cfg.Injector.At(diag.Site{Op: "fleet.transport", Step: attemptIdx, Iteration: hops}); err != nil {
		return nil, &peerError{addr: addr, err: err}
	}
	actx, cancel := context.WithTimeout(ctx, f.cfg.AttemptTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(actx, http.MethodPost, "http://"+addr+path, bytes.NewReader(body))
	if err != nil {
		return nil, &peerError{addr: addr, err: err}
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(HopsHeader, strconv.Itoa(hops))
	resp, err := f.client.Do(req)
	if err != nil {
		return nil, &peerError{addr: addr, err: err}
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(io.LimitReader(resp.Body, maxRelayBytes+1))
	if err != nil {
		return nil, &peerError{addr: addr, err: fmt.Errorf("read response: %w", err)}
	}
	if len(b) > maxRelayBytes {
		return nil, &peerError{addr: addr, err: fmt.Errorf("response exceeds %d bytes", maxRelayBytes)}
	}
	if resp.StatusCode >= 500 {
		// The peer is up but failing or shedding load (503 queue-full /
		// breaker-open): retryable on the next replica, honoring Retry-After.
		return nil, &peerError{
			addr:       addr,
			status:     resp.StatusCode,
			retryAfter: parseRetryAfter(resp.Header),
			err:        fmt.Errorf("peer status %d", resp.StatusCode),
		}
	}
	return &PeerResponse{
		Status:      resp.StatusCode,
		ContentType: resp.Header.Get("Content-Type"),
		Degraded:    resp.Header.Get("X-Degraded"),
		Body:        b,
		Peer:        addr,
	}, nil
}

// parseRetryAfter reads a delay-seconds Retry-After header (the only form
// rlcd emits); absent or malformed → 0.
func parseRetryAfter(h http.Header) time.Duration {
	v := h.Get("Retry-After")
	if v == "" {
		return 0
	}
	secs, err := strconv.Atoi(v)
	if err != nil || secs < 0 {
		return 0
	}
	return time.Duration(secs) * time.Second
}

// backoff computes the pre-retry delay: capped exponential with full ±50%
// jitter, stretched (within reason) to honor a Retry-After from the failed
// attempt.
func (f *Fleet) backoff(retry int, cause error) time.Duration {
	base := f.cfg.BackoffBase << uint(retry)
	if base > f.cfg.BackoffMax || base <= 0 {
		base = f.cfg.BackoffMax
	}
	d := time.Duration(float64(base) * (0.5 + rand.Float64()))
	var pe *peerError
	if errors.As(cause, &pe) && pe.retryAfter > d {
		honor := pe.retryAfter
		if lim := 4 * f.cfg.BackoffMax; honor > lim {
			honor = lim
		}
		if honor > d {
			d = honor
			f.c.retryAfterHonored.Add(1)
		}
	}
	return d
}

// recordOutcome reports one finished attempt to the breaker gate and to
// passive health detection. Cancelled attempts (a hedge lost the race, or
// the caller gave up) must not count against the peer.
func (f *Fleet) recordOutcome(addr string, err error) {
	cause := ""
	if err != nil {
		var pe *peerError
		switch {
		case errors.Is(err, context.Canceled):
			cause = "cancelled"
		case errors.As(err, &pe) && pe.status != 0:
			cause = "peer-" + strconv.Itoa(pe.status)
			f.c.peer5xx.Add(1)
		default:
			cause = "transport"
			f.c.transportErrors.Add(1)
			// A transport-level failure is as good as a failed probe: fold it
			// into the hysteresis so a dead peer is ejected before the prober
			// gets around to noticing.
			f.notePeer(addr, false, fmt.Sprintf("forward: %v", err))
		}
	}
	if f.cfg.Gate != nil {
		f.cfg.Gate.Result(addr, err == nil, cause)
	}
}

// Forward sends body to the candidate peers in failover order and returns
// the first authoritative answer. Per attempt: breaker-gate check, timeout,
// outcome recording. Between attempts: capped exponential backoff with
// jitter (honoring Retry-After). Concurrent with a slow attempt: one hedge
// to the next candidate after HedgeAfter, first answer wins, losers are
// cancelled. The whole call is bounded by ForwardBudget and the caller's
// ctx; every failure mode returns an error so the caller can compute
// locally.
func (f *Fleet) Forward(ctx context.Context, cands []string, path string, body []byte, hops int) (*PeerResponse, error) {
	if len(cands) == 0 {
		return nil, ErrNoCandidates
	}
	var cancel context.CancelFunc
	fctx := ctx
	if f.cfg.ForwardBudget > 0 {
		fctx, cancel = context.WithTimeout(ctx, f.cfg.ForwardBudget)
	} else {
		fctx, cancel = context.WithCancel(ctx)
	}
	defer cancel()

	max := f.cfg.MaxAttempts
	if max > len(cands) {
		max = len(cands)
	}
	type res struct {
		pr     *PeerResponse
		err    error
		addr   string
		hedged bool
	}
	ch := make(chan res, max)
	next, inflight := 0, 0

	// launch starts the next candidate attempt, skipping peers whose
	// breaker is open. hedged marks attempts started by the hedge timer.
	launch := func(hedged bool) {
		for next < max {
			addr := cands[next]
			idx := next
			next++
			if f.cfg.Gate != nil && !f.cfg.Gate.Allow(addr) {
				f.c.breakerSkips.Add(1)
				continue
			}
			inflight++
			f.c.attempts.Add(1)
			if idx > 0 && !hedged {
				f.c.retries.Add(1)
			}
			go func() {
				pr, err := f.attempt(fctx, addr, path, body, hops, idx)
				f.recordOutcome(addr, err)
				ch <- res{pr: pr, err: err, addr: addr, hedged: hedged}
			}()
			return
		}
	}

	var hedgeT, retryT *time.Timer
	defer func() {
		if hedgeT != nil {
			hedgeT.Stop()
		}
		if retryT != nil {
			retryT.Stop()
		}
	}()
	var hedgeC, retryC <-chan time.Time
	armHedge := func() {
		hedgeC = nil
		if f.cfg.HedgeAfter > 0 && next < max {
			if hedgeT == nil {
				hedgeT = time.NewTimer(f.cfg.HedgeAfter)
			} else {
				hedgeT.Reset(f.cfg.HedgeAfter)
			}
			hedgeC = hedgeT.C
		}
	}

	launch(false)
	if inflight == 0 {
		return nil, ErrNoCandidates // every candidate breaker-skipped
	}
	armHedge()

	retry := 0
	var lastErr error
	for {
		select {
		case r := <-ch:
			inflight--
			if r.err == nil {
				r.pr.Hedged = r.hedged
				if r.hedged {
					f.c.hedgeWins.Add(1)
				}
				return r.pr, nil
			}
			lastErr = r.err
			if inflight == 0 && next >= max {
				return nil, lastErr
			}
			if inflight == 0 && retryC == nil && next < max {
				retryT = time.NewTimer(f.backoff(retry, r.err))
				retryC = retryT.C
				retry++
			}
		case <-hedgeC:
			hedgeC = nil
			before := inflight
			f.c.hedges.Add(1)
			launch(true)
			if inflight == before {
				f.c.hedges.Add(-1) // every remaining candidate was breaker-skipped
				if inflight == 0 {
					return nil, firstErr(lastErr)
				}
			} else {
				armHedge()
			}
		case <-retryC:
			retryC = nil
			launch(false)
			if inflight == 0 {
				return nil, firstErr(lastErr)
			}
			armHedge()
		case <-fctx.Done():
			return nil, fctx.Err()
		}
	}
}

func firstErr(err error) error {
	if err == nil {
		return ErrNoCandidates
	}
	return err
}
