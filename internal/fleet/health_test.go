package fleet

import (
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"
)

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func peerUp(f *Fleet, addr string) func() bool {
	return func() bool {
		for _, p := range f.Status().Peers {
			if p.Addr == addr {
				return p.Up
			}
		}
		return false
	}
}

// TestProbeRiseFallHysteresis drives a peer through the full health cycle:
// admitted after Rise consecutive good probes, ejected after Fall
// consecutive bad ones, re-admitted when it recovers.
func TestProbeRiseFallHysteresis(t *testing.T) {
	var ready atomic.Bool
	ready.Store(true)
	peer := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/readyz" {
			t.Errorf("probe hit %s, want /readyz", r.URL.Path)
		}
		if !ready.Load() {
			http.Error(w, "draining", http.StatusServiceUnavailable)
			return
		}
		_, _ = w.Write([]byte(`{"ready":true}`))
	}))
	defer peer.Close()
	addr := addrOf(peer)

	f, err := New(Config{
		Self:          "self.test:1",
		Peers:         []string{addr},
		ProbeInterval: 10 * time.Millisecond,
		ProbeTimeout:  time.Second,
		Rise:          2,
		Fall:          2,
		Logger:        log.New(io.Discard, "", 0),
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer f.Close()

	// New peers start down until the prober has seen Rise consecutive 200s.
	waitFor(t, "initial admission", peerUp(f, addr))

	ready.Store(false)
	waitFor(t, "ejection", func() bool { return !peerUp(f, addr)() })
	if m := f.Metrics(); m["ejected"] < 1 || m["probe_failures"] < 2 {
		t.Errorf("metrics after ejection = %v", m)
	}

	ready.Store(true)
	waitFor(t, "re-admission", peerUp(f, addr))
	if m := f.Metrics(); m["readmitted"] < 1 {
		t.Errorf("readmitted = %d, want >= 1", m["readmitted"])
	}
}

// TestProbeSingleFailureDoesNotEject: hysteresis means one flaky probe (a
// lost packet) must not drop an up peer from the candidate sets.
func TestProbeSingleFailureDoesNotEject(t *testing.T) {
	f, err := New(Config{
		Self:          "self.test:1",
		Peers:         []string{"p:1"},
		ProbeInterval: time.Hour, // loop idle; observations fed by hand
		Rise:          2,
		Fall:          2,
		Logger:        log.New(io.Discard, "", 0),
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer f.Close()
	f.notePeer("p:1", true, "")
	f.notePeer("p:1", true, "")
	if !peerUp(f, "p:1")() {
		t.Fatal("peer not admitted after Rise successes")
	}
	f.notePeer("p:1", false, "one lost probe")
	if !peerUp(f, "p:1")() {
		t.Fatal("a single failure ejected the peer despite Fall=2")
	}
	f.notePeer("p:1", false, "second consecutive")
	if peerUp(f, "p:1")() {
		t.Fatal("peer still up after Fall consecutive failures")
	}
}

func TestProbingDisabledPeersAlwaysUp(t *testing.T) {
	f, err := New(Config{
		Self:          "self.test:1",
		Peers:         []string{"p:1"},
		ProbeInterval: -1,
		Logger:        log.New(io.Discard, "", 0),
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer f.Close()
	if !peerUp(f, "p:1")() {
		t.Fatal("probing disabled: peer must start up")
	}
	// With no prober there is no way back up, so observations are ignored.
	f.notePeer("p:1", false, "transport")
	f.notePeer("p:1", false, "transport")
	if !peerUp(f, "p:1")() {
		t.Fatal("probing disabled: passive failures must not eject")
	}
}

func TestSetPeersRetainsHealthState(t *testing.T) {
	f, err := New(Config{
		Self:          "self.test:1",
		Peers:         []string{"a:1", "b:2"},
		ProbeInterval: time.Hour,
		Rise:          1,
		Fall:          1,
		Logger:        log.New(io.Discard, "", 0),
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer f.Close()
	f.notePeer("a:1", true, "")
	f.SetPeers([]string{"a:1", "c:3"}) // drop b, add c
	st := f.Status()
	if st.Members != 3 { // self + a + c
		t.Fatalf("members = %d, want 3", st.Members)
	}
	for _, p := range st.Peers {
		switch p.Addr {
		case "a:1":
			if !p.Up {
				t.Error("retained peer lost its health state across SetPeers")
			}
		case "c:3":
			if p.Up {
				t.Error("new peer must start down until probed up")
			}
		case "b:2":
			t.Error("removed peer still present")
		}
	}
	// Observations for the removed peer must be ignored, not panic.
	f.notePeer("b:2", false, "late probe result")
}

func TestReloadPeersFromFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "peers.txt")
	if err := os.WriteFile(path, []byte("# fleet members\na:1\nb:2\n\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	f, err := New(Config{
		Self:          "self.test:1",
		PeersFile:     path,
		ProbeInterval: time.Hour,
		Logger:        log.New(io.Discard, "", 0),
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer f.Close()
	if st := f.Status(); st.Members != 3 {
		t.Fatalf("members = %d, want 3 (self + 2 from file)", st.Members)
	}
	if err := os.WriteFile(path, []byte("a:1\nc:3\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := f.ReloadPeers(); err != nil {
		t.Fatalf("ReloadPeers: %v", err)
	}
	addrs := map[string]bool{}
	for _, p := range f.Status().Peers {
		addrs[p.Addr] = true
	}
	if !addrs["a:1"] || !addrs["c:3"] || addrs["b:2"] {
		t.Fatalf("membership after reload = %v, want a:1 and c:3 only", addrs)
	}
	// A vanished file keeps the current membership instead of emptying it.
	if err := os.Remove(path); err != nil {
		t.Fatal(err)
	}
	if err := f.ReloadPeers(); err == nil {
		t.Fatal("ReloadPeers succeeded with the file gone")
	}
	if st := f.Status(); st.Members != 3 {
		t.Fatalf("members after failed reload = %d, want unchanged 3", st.Members)
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("New without Self must fail")
	}
	if _, err := New(Config{Self: "s:1", Peers: []string{"a:1"}, PeersFile: "/x"}); err == nil {
		t.Error("New with both Peers and PeersFile must fail")
	}
	if _, err := New(Config{Self: "s:1", PeersFile: "/does/not/exist"}); err == nil {
		t.Error("New with an unreadable PeersFile must fail")
	}
}

// TestRouteFiltersSelfAndDownPeers covers the ownership/health split: the
// ring decides ownership from membership, health only filters candidates.
func TestRouteFiltersSelfAndDownPeers(t *testing.T) {
	f, err := New(Config{
		Self:          "self.test:1",
		Peers:         []string{"a:1", "b:2"},
		ProbeInterval: time.Hour, // all peers start down
		Rise:          1,
		Fall:          1,
		Replicas:      2,
		Logger:        log.New(io.Discard, "", 0),
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer f.Close()

	// Find keys owned by self and by a peer.
	var selfKey, peerKey string
	for i := 0; selfKey == "" || peerKey == ""; i++ {
		k := keysN(i + 1)[i]
		if f.Owner(k) == "self.test:1" {
			selfKey = k
		} else {
			peerKey = k
		}
	}
	if got := f.Route(selfKey); got != nil {
		t.Errorf("Route(self-owned key) = %v, want nil (serve locally)", got)
	}
	// All peers down: nothing routable.
	if got := f.Route(peerKey); got != nil {
		t.Errorf("Route with all peers down = %v, want nil", got)
	}
	f.notePeer("a:1", true, "")
	f.notePeer("b:2", true, "")
	cands := f.Route(peerKey)
	if len(cands) == 0 {
		t.Fatal("Route returned nothing with all peers up")
	}
	for _, c := range cands {
		if c == "self.test:1" {
			t.Errorf("Route included self: %v", cands)
		}
	}
	if cands[0] != f.Owner(peerKey) {
		t.Errorf("first candidate %s is not the owner %s", cands[0], f.Owner(peerKey))
	}
}
