package fleet

import (
	"fmt"
	"testing"
)

func keysN(n int) []string {
	out := make([]string, n)
	for i := range out {
		// Shaped like real cache keys (endpoint|tech|float bits) so the
		// distribution measured here is the one production sees.
		out[i] = fmt.Sprintf("optimize|100nm|%x|%x", i*7919, i)
	}
	return out
}

// TestRingUniformity bounds the ownership skew: with 64 vnodes per member,
// every member of a 3-node ring owns between half and double its fair share
// of a large key population.
func TestRingUniformity(t *testing.T) {
	members := []string{"a:1", "b:2", "c:3"}
	r := buildRing(members, defaultVNodes)
	counts := map[string]int{}
	keys := keysN(30000)
	for _, k := range keys {
		counts[r.owner(k)]++
	}
	fair := float64(len(keys)) / float64(len(members))
	for _, m := range members {
		got := float64(counts[m])
		if got < 0.5*fair || got > 2.0*fair {
			t.Errorf("member %s owns %0.f keys, fair share %0.f (skew out of [0.5, 2.0]×): %v",
				m, got, fair, counts)
		}
	}
}

// TestRingMinimalRemap is the property consistent hashing exists for:
// removing one member remaps only the keys that member owned. Every other
// key keeps its owner, so a single node loss cannot cold-start the whole
// fleet's caches.
func TestRingMinimalRemap(t *testing.T) {
	before := buildRing([]string{"a:1", "b:2", "c:3", "d:4"}, defaultVNodes)
	after := buildRing([]string{"a:1", "b:2", "d:4"}, defaultVNodes)
	keys := keysN(10000)
	moved := 0
	for _, k := range keys {
		was, is := before.owner(k), after.owner(k)
		if was == "c:3" {
			if is == "c:3" {
				t.Fatalf("key %q still owned by the removed member", k)
			}
			moved++
			continue
		}
		if was != is {
			t.Fatalf("key %q moved %s → %s although its owner stayed a member", k, was, is)
		}
	}
	if moved == 0 {
		t.Fatal("removed member owned no keys; the test proved nothing")
	}
}

// TestRingDeterministicCandidates: every instance must compute the identical
// failover order for the same key, or forwards would orbit; and the owner
// must stay first with replicas distinct.
func TestRingDeterministicCandidates(t *testing.T) {
	members := []string{"a:1", "b:2", "c:3", "d:4"}
	r1 := buildRing(members, defaultVNodes)
	r2 := buildRing([]string{"d:4", "c:3", "b:2", "a:1"}, defaultVNodes) // same set, shuffled input
	for _, k := range keysN(500) {
		c1 := r1.candidates(k, 3)
		c2 := r2.candidates(k, 3)
		if len(c1) != 3 || len(c2) != 3 {
			t.Fatalf("candidates(%q, 3) lengths %d, %d", k, len(c1), len(c2))
		}
		for i := range c1 {
			if c1[i] != c2[i] {
				t.Fatalf("rings disagree on %q: %v vs %v", k, c1, c2)
			}
		}
		seen := map[string]bool{}
		for _, c := range c1 {
			if seen[c] {
				t.Fatalf("duplicate candidate for %q: %v", k, c1)
			}
			seen[c] = true
		}
		if c1[0] != r1.owner(k) {
			t.Fatalf("candidates(%q)[0] = %s, owner = %s", k, c1[0], r1.owner(k))
		}
	}
}

func TestRingEdgeCases(t *testing.T) {
	if got := buildRing(nil, 0).candidates("k", 3); got != nil {
		t.Errorf("empty ring candidates = %v, want nil", got)
	}
	if got := buildRing(nil, 0).owner("k"); got != "" {
		t.Errorf("empty ring owner = %q, want empty", got)
	}
	one := buildRing([]string{"solo:1", "", "solo:1"}, 8) // dedup + drop empties
	if got := one.candidates("k", 5); len(got) != 1 || got[0] != "solo:1" {
		t.Errorf("single-member candidates = %v", got)
	}
	r := buildRing([]string{"a:1", "b:2"}, 8)
	if got := r.candidates("k", 0); got != nil {
		t.Errorf("n=0 candidates = %v, want nil", got)
	}
	if got := r.candidates("k", 99); len(got) != 2 {
		t.Errorf("n beyond membership returned %v, want both members", got)
	}
}
