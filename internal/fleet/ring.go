package fleet

import (
	"hash/fnv"
	"sort"
	"strconv"
)

// ring is a consistent-hash ring over the fleet's member addresses. Each
// member contributes vnodes virtual points so key ownership spreads evenly;
// a key's owner is the first point at or clockwise of the key's hash, and
// its replicas are the next distinct members walking the ring. Membership
// changes rebuild the ring; removing one member remaps only the keys that
// member owned (every other key's first point is untouched), which is the
// property that keeps a fleet's caches warm through a single node loss.
//
// The ring is immutable once built; Fleet swaps whole rings under its lock.
type ring struct {
	points []ringPoint // sorted by hash
	nodes  []string    // distinct members, sorted
}

type ringPoint struct {
	hash uint64
	node string
}

// defaultVNodes is the virtual-point count per member. 64 points over a
// handful of members keeps the max/min ownership ratio within ~1.5× (see
// TestRingUniformity) at negligible build and lookup cost.
const defaultVNodes = 64

func hash64(s string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(s))
	return mix64(h.Sum64())
}

// mix64 is a splitmix64-style finalizer. FNV-64a alone has weak avalanche on
// short, similar strings — vnode labels like "host:port#17" land in clumps
// and skew ownership past 2× (caught by TestRingUniformity); the finalizer
// spreads them uniformly around the ring.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// buildRing constructs the ring for the given members (deduplicated; empty
// strings dropped). A nil or empty member list yields an empty ring whose
// candidates are always nil.
func buildRing(members []string, vnodes int) *ring {
	if vnodes <= 0 {
		vnodes = defaultVNodes
	}
	seen := make(map[string]bool, len(members))
	nodes := make([]string, 0, len(members))
	for _, m := range members {
		if m == "" || seen[m] {
			continue
		}
		seen[m] = true
		nodes = append(nodes, m)
	}
	sort.Strings(nodes)
	r := &ring{
		points: make([]ringPoint, 0, len(nodes)*vnodes),
		nodes:  nodes,
	}
	for _, n := range nodes {
		for i := 0; i < vnodes; i++ {
			r.points = append(r.points, ringPoint{hash: hash64(n + "#" + strconv.Itoa(i)), node: n})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Hash ties (vanishingly rare) break by name so two independently
		// built rings agree on ownership exactly.
		return r.points[i].node < r.points[j].node
	})
	return r
}

// candidates returns up to n distinct members in ring order starting at
// key's owner: candidates(key, 1+R)[0] is the owner and the rest are its
// replicas in deterministic failover order. Every member of a fleet with the
// same membership computes the same candidate list for the same key.
func (r *ring) candidates(key string, n int) []string {
	if r == nil || len(r.points) == 0 || n <= 0 {
		return nil
	}
	if n > len(r.nodes) {
		n = len(r.nodes)
	}
	h := hash64(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	out := make([]string, 0, n)
	for j := 0; len(out) < n && j < len(r.points); j++ {
		node := r.points[(i+j)%len(r.points)].node
		dup := false
		for _, o := range out {
			if o == node {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, node)
		}
	}
	return out
}

// owner is candidates(key, 1)[0] — the key's home shard.
func (r *ring) owner(key string) string {
	c := r.candidates(key, 1)
	if len(c) == 0 {
		return ""
	}
	return c[0]
}
