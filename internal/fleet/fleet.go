// Package fleet makes a set of rlcd daemons act as one service: a
// consistent-hash ring over peer instances routes each canonical cache key
// to one owner shard, so identical design queries land on a warm process no
// matter which instance the client hit.
//
// The package is built for partial failure, in layers:
//
//   - Health-checked membership: every peer is probed periodically
//     (readiness, not liveness, so a replaying or draining instance is not
//     routed to), with rise/fall hysteresis before a peer is ejected from or
//     re-admitted to the candidate sets. Ring ownership is computed from the
//     configured membership, not from health — a down owner's keys fail over
//     to its replicas without remapping everyone else's keys.
//   - A defensive peer client: per-attempt timeouts, capped exponential
//     backoff with jitter between retries, Retry-After honored when a peer
//     sheds load, bounded attempts walking the key's replica list, and
//     optional tail-latency hedging (a second request to the next replica
//     after HedgeAfter; first answer wins, the loser is cancelled).
//   - Loop containment: every forwarded request carries an X-Fleet-Hops
//     header; the serving layer stops forwarding at MaxHops and computes
//     locally, so topology skew during membership changes can never orbit a
//     request around the ring.
//
// The fleet never fails a request on its own: when the owner and every
// replica are down, unreachable, or breaker-ejected, Forward returns an
// error and the caller computes locally (and may still answer with a
// degraded estimate) — fleet topology is an optimization, never a new way
// to fail hard.
package fleet

import (
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"rlcint/internal/diag"
)

// HopsHeader carries the forwarding depth of a fleet-internal request. A
// request from an outside client has no header (0 hops); each forward
// increments it, and the serving layer refuses to forward at MaxHops.
const HopsHeader = "X-Fleet-Hops"

// HopsFrom parses the forwarding depth from a request's headers (absent or
// malformed → 0).
func HopsFrom(h http.Header) int {
	v := h.Get(HopsHeader)
	if v == "" {
		return 0
	}
	n := 0
	for _, c := range v {
		if c < '0' || c > '9' || n > 1<<20 {
			return 0
		}
		n = n*10 + int(c-'0')
	}
	return n
}

// PeerGate lets the serving layer veto and observe peer attempts — in rlcd
// it adapts the per-region circuit-breaker set, so a flapping peer opens a
// peer-breaker and drops out of the candidate sets until its cooldown.
// Allow is consulted immediately before an attempt; Result is reported for
// every attempt that Allow admitted (ok, or !ok with the failure cause —
// "cancelled" marks an attempt abandoned because another attempt already
// won, which must not count against the peer).
type PeerGate interface {
	Allow(addr string) bool
	Result(addr string, ok bool, cause string)
}

// Config describes one instance's view of the fleet. The zero value of any
// field selects the default noted on it.
type Config struct {
	// Self is this instance's advertised host:port — the spelling its peers
	// use for it. Required; ring ownership is only consistent when every
	// member lists every address identically.
	Self string
	// Peers are the other members' host:port addresses. Self is filtered
	// out, so the full membership list can be deployed identically to every
	// instance.
	Peers []string
	// PeersFile, when non-empty, names a file with one peer address per line
	// ('#' comments and blank lines ignored). Loaded at New and reloaded by
	// ReloadPeers (rlcd wires that to SIGHUP). Mutually exclusive with Peers.
	PeersFile string
	// Replicas is how many ring successors after the owner are tried when
	// forwarding (0 → 2).
	Replicas int
	// VNodes is the virtual-point count per member (0 → 64).
	VNodes int
	// ProbeInterval is the health-probe cadence (0 → 1s; <0 disables
	// probing entirely and treats every peer as permanently up — for tests
	// and benchmarks, not production).
	ProbeInterval time.Duration
	// ProbeTimeout bounds one readiness probe (0 → 500ms).
	ProbeTimeout time.Duration
	// Rise is the consecutive successful probes required to (re-)admit a
	// peer; Fall the consecutive failures required to eject one (0 → 2 each).
	Rise, Fall int
	// AttemptTimeout bounds one forwarded request attempt (0 → 1s).
	AttemptTimeout time.Duration
	// MaxAttempts bounds peer attempts per request across the candidate
	// list, hedges included (0 → 3).
	MaxAttempts int
	// BackoffBase/BackoffMax shape the capped exponential backoff between
	// retry attempts (0 → 25ms / 500ms). A peer's Retry-After is honored up
	// to 4×BackoffMax.
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// ForwardBudget bounds one request's total time in the fleet client,
	// attempts and backoffs included; exhausting it falls back to local
	// compute (0 → 2.5s; <0 → no budget beyond the request's own deadline).
	ForwardBudget time.Duration
	// HedgeAfter, when positive, launches a hedge request to the next
	// candidate if the current attempt has not answered within it. First
	// response wins; the loser is cancelled.
	HedgeAfter time.Duration
	// MaxHops caps forwarding depth; at the cap an instance computes locally
	// instead of forwarding (0 → 3).
	MaxHops int
	// Transport overrides the peer HTTP transport (nil → a pooled default).
	Transport http.RoundTripper
	// Gate, when non-nil, is consulted before and after every peer attempt
	// (see PeerGate).
	Gate PeerGate
	// Injector injects transport faults at Site{Op: "fleet.transport"} for
	// chaos testing (Step = attempt index, Iteration = hop count). Nil in
	// production.
	Injector *diag.Injector
	// Logger receives membership and health transitions (nil → stderr).
	Logger *log.Logger
}

func (c Config) withDefaults() Config {
	if c.Replicas <= 0 {
		c.Replicas = 2
	}
	if c.VNodes <= 0 {
		c.VNodes = defaultVNodes
	}
	if c.ProbeInterval == 0 {
		c.ProbeInterval = time.Second
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = 500 * time.Millisecond
	}
	if c.Rise <= 0 {
		c.Rise = 2
	}
	if c.Fall <= 0 {
		c.Fall = 2
	}
	if c.AttemptTimeout <= 0 {
		c.AttemptTimeout = time.Second
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 3
	}
	if c.BackoffBase <= 0 {
		c.BackoffBase = 25 * time.Millisecond
	}
	if c.BackoffMax <= 0 {
		c.BackoffMax = 500 * time.Millisecond
	}
	if c.ForwardBudget == 0 {
		c.ForwardBudget = 2500 * time.Millisecond
	} else if c.ForwardBudget < 0 {
		c.ForwardBudget = 0
	}
	if c.MaxHops <= 0 {
		c.MaxHops = 3
	}
	if c.Logger == nil {
		c.Logger = log.New(os.Stderr, "", log.LstdFlags|log.Lmicroseconds)
	}
	return c
}

// peerState is one peer's health-tracking record, guarded by Fleet.mu.
type peerState struct {
	up         bool
	consecOK   int
	consecFail int
	lastErr    string
	changed    time.Time
}

// counters are the fleet's flat metrics, merged into /metrics by the
// serving layer.
type counters struct {
	attempts, retries, hedges, hedgeWins   atomic.Int64
	transportErrors, peer5xx, breakerSkips atomic.Int64
	retryAfterHonored                      atomic.Int64
	probes, probeFailures                  atomic.Int64
	ejected, readmitted                    atomic.Int64
}

// Fleet is one instance's live view of the peer ring: membership, health,
// and the forwarding client. Create with New, stop with Close.
type Fleet struct {
	cfg    Config
	log    *log.Logger
	client *http.Client

	mu    sync.Mutex
	ring  *ring
	peers map[string]*peerState // keyed by address, Self excluded

	c    counters
	stop chan struct{}
	once sync.Once
	wg   sync.WaitGroup
}

// New builds a Fleet from cfg and starts its health-probe loop (unless
// probing is disabled). cfg.Self must be non-empty; peers come from
// cfg.Peers or cfg.PeersFile.
func New(cfg Config) (*Fleet, error) {
	cfg = cfg.withDefaults()
	if cfg.Self == "" {
		return nil, fmt.Errorf("fleet: Self must be set")
	}
	if len(cfg.Peers) > 0 && cfg.PeersFile != "" {
		return nil, fmt.Errorf("fleet: Peers and PeersFile are mutually exclusive")
	}
	tr := cfg.Transport
	if tr == nil {
		tr = &http.Transport{
			MaxIdleConnsPerHost: 32,
			IdleConnTimeout:     90 * time.Second,
			DialContext: (&net.Dialer{
				Timeout:   cfg.AttemptTimeout,
				KeepAlive: 30 * time.Second,
			}).DialContext,
		}
	}
	f := &Fleet{
		cfg: cfg,
		log: cfg.Logger,
		// No Client.Timeout: per-attempt contexts own all deadlines.
		client: &http.Client{Transport: tr},
		peers:  make(map[string]*peerState),
		stop:   make(chan struct{}),
	}
	peers := cfg.Peers
	if cfg.PeersFile != "" {
		var err error
		peers, err = readPeersFile(cfg.PeersFile)
		if err != nil {
			return nil, err
		}
	}
	f.SetPeers(peers)
	if cfg.ProbeInterval > 0 {
		f.wg.Add(1)
		go f.probeLoop()
	}
	return f, nil
}

// Close stops the probe loop. Nil-safe, so the serving layer can call it
// unconditionally.
func (f *Fleet) Close() {
	if f == nil {
		return
	}
	f.once.Do(func() { close(f.stop) })
	f.wg.Wait()
}

// MaxHops returns the configured forwarding-depth cap.
func (f *Fleet) MaxHops() int { return f.cfg.MaxHops }

// Self returns this instance's advertised address.
func (f *Fleet) Self() string { return f.cfg.Self }

// SetPeers replaces the fleet membership (Self is filtered out and the ring
// always includes Self). Health state carries over for retained peers; new
// peers start down until the prober admits them — or up when probing is
// disabled. Safe for concurrent use with Route/Forward.
func (f *Fleet) SetPeers(peers []string) {
	members := make([]string, 0, len(peers)+1)
	members = append(members, f.cfg.Self)
	for _, p := range peers {
		p = strings.TrimSpace(p)
		if p != "" && p != f.cfg.Self {
			members = append(members, p)
		}
	}
	r := buildRing(members, f.cfg.VNodes)
	f.mu.Lock()
	defer f.mu.Unlock()
	f.ring = r
	next := make(map[string]*peerState, len(r.nodes))
	for _, n := range r.nodes {
		if n == f.cfg.Self {
			continue
		}
		if st, ok := f.peers[n]; ok {
			next[n] = st
			continue
		}
		next[n] = &peerState{up: f.cfg.ProbeInterval < 0, changed: time.Now()}
	}
	f.peers = next
}

// ReloadPeers re-reads PeersFile and applies the new membership — the
// SIGHUP path. A read error keeps the current membership.
func (f *Fleet) ReloadPeers() error {
	if f.cfg.PeersFile == "" {
		return fmt.Errorf("fleet: no peers file configured")
	}
	peers, err := readPeersFile(f.cfg.PeersFile)
	if err != nil {
		f.log.Printf("fleet: peers reload failed, keeping current membership: %v", err)
		return err
	}
	f.SetPeers(peers)
	f.log.Printf("fleet: peers reloaded from %s: %v", f.cfg.PeersFile, peers)
	return nil
}

func readPeersFile(path string) ([]string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("fleet: peers file: %w", err)
	}
	var peers []string
	for _, line := range strings.Split(string(data), "\n") {
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line != "" {
			peers = append(peers, line)
		}
	}
	return peers, nil
}

// Owner returns key's home shard address (possibly Self).
func (f *Fleet) Owner(key string) string {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.ring.owner(key)
}

// Route returns the peers to forward key to, in failover order (owner
// first, then ring replicas), filtered to peers currently up. nil means
// serve locally: this instance owns the key, or no routable peer exists.
// Breaker gating happens per attempt inside Forward, not here, so a granted
// half-open probe slot is always followed by the attempt that resolves it.
func (f *Fleet) Route(key string) []string {
	f.mu.Lock()
	defer f.mu.Unlock()
	cands := f.ring.candidates(key, 1+f.cfg.Replicas)
	if len(cands) == 0 || cands[0] == f.cfg.Self {
		return nil
	}
	out := make([]string, 0, len(cands))
	for _, a := range cands {
		if a == f.cfg.Self {
			continue
		}
		if st := f.peers[a]; st != nil && st.up {
			out = append(out, a)
		}
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// PeerStatus is one peer's externally visible health, for /statusz.
type PeerStatus struct {
	Addr         string  `json:"addr"`
	Up           bool    `json:"up"`
	ConsecOK     int     `json:"consec_ok"`
	ConsecFail   int     `json:"consec_fail"`
	LastError    string  `json:"last_error,omitempty"`
	SinceChangeS float64 `json:"since_change_s"`
}

// Status snapshots the fleet view for /statusz: membership, per-peer
// health (down peers first), and the routing configuration.
type Status struct {
	Self       string       `json:"self"`
	Members    int          `json:"members"`
	Replicas   int          `json:"replicas"`
	MaxHops    int          `json:"max_hops"`
	HedgeAfter string       `json:"hedge_after"`
	Peers      []PeerStatus `json:"peers"`
}

func (f *Fleet) Status() Status {
	if f == nil {
		return Status{}
	}
	f.mu.Lock()
	st := Status{
		Self:       f.cfg.Self,
		Members:    len(f.ring.nodes),
		Replicas:   f.cfg.Replicas,
		MaxHops:    f.cfg.MaxHops,
		HedgeAfter: f.cfg.HedgeAfter.String(),
		Peers:      make([]PeerStatus, 0, len(f.peers)),
	}
	for addr, p := range f.peers {
		st.Peers = append(st.Peers, PeerStatus{
			Addr:         addr,
			Up:           p.up,
			ConsecOK:     p.consecOK,
			ConsecFail:   p.consecFail,
			LastError:    p.lastErr,
			SinceChangeS: time.Since(p.changed).Seconds(),
		})
	}
	f.mu.Unlock()
	sort.Slice(st.Peers, func(i, j int) bool {
		if st.Peers[i].Up != st.Peers[j].Up {
			return !st.Peers[i].Up // down peers first: they are what an operator looks for
		}
		return st.Peers[i].Addr < st.Peers[j].Addr
	})
	return st
}

// Metrics returns the fleet's flat counters for the /metrics surface.
func (f *Fleet) Metrics() map[string]int64 {
	if f == nil {
		return nil
	}
	return map[string]int64{
		"attempts":            f.c.attempts.Load(),
		"retries":             f.c.retries.Load(),
		"hedges":              f.c.hedges.Load(),
		"hedge_wins":          f.c.hedgeWins.Load(),
		"transport_errors":    f.c.transportErrors.Load(),
		"peer_5xx":            f.c.peer5xx.Load(),
		"breaker_skips":       f.c.breakerSkips.Load(),
		"retry_after_honored": f.c.retryAfterHonored.Load(),
		"probes":              f.c.probes.Load(),
		"probe_failures":      f.c.probeFailures.Load(),
		"ejected":             f.c.ejected.Load(),
		"readmitted":          f.c.readmitted.Load(),
	}
}
