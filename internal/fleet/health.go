package fleet

import (
	"context"
	"fmt"
	"math/rand"
	"net/http"
	"sync"
	"time"
)

// probeLoop actively health-checks every peer each ProbeInterval (jittered
// ±10% so a fleet restarted in lockstep does not probe in lockstep). Peers
// are probed concurrently so one black-holed peer cannot delay the others'
// probes past their timeout.
func (f *Fleet) probeLoop() {
	defer f.wg.Done()
	t := time.NewTimer(jitter(f.cfg.ProbeInterval))
	defer t.Stop()
	for {
		select {
		case <-f.stop:
			return
		case <-t.C:
		}
		f.probeAll()
		t.Reset(jitter(f.cfg.ProbeInterval))
	}
}

// jitter spreads d uniformly over [0.9d, 1.1d].
func jitter(d time.Duration) time.Duration {
	return time.Duration(float64(d) * (0.9 + 0.2*rand.Float64()))
}

func (f *Fleet) probeAll() {
	f.mu.Lock()
	addrs := make([]string, 0, len(f.peers))
	for a := range f.peers {
		addrs = append(addrs, a)
	}
	f.mu.Unlock()
	var wg sync.WaitGroup
	for _, a := range addrs {
		wg.Add(1)
		go func(addr string) {
			defer wg.Done()
			f.probeOne(addr)
		}(a)
	}
	wg.Wait()
}

// probeOne performs a single readiness probe. Probing readiness — not
// liveness — is what keeps the ring from routing to an instance that is
// alive but replaying its snapshot or draining.
func (f *Fleet) probeOne(addr string) {
	f.c.probes.Add(1)
	ctx, cancel := context.WithTimeout(context.Background(), f.cfg.ProbeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, "http://"+addr+"/readyz", nil)
	if err != nil {
		f.notePeer(addr, false, fmt.Sprintf("probe: %v", err))
		return
	}
	resp, err := f.client.Do(req)
	if err != nil {
		f.c.probeFailures.Add(1)
		f.notePeer(addr, false, fmt.Sprintf("probe: %v", err))
		return
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		f.c.probeFailures.Add(1)
		f.notePeer(addr, false, fmt.Sprintf("probe: readiness %d", resp.StatusCode))
		return
	}
	f.notePeer(addr, true, "")
}

// notePeer folds one health observation — a probe result, or a passive
// transport failure seen by the forwarding client — into the peer's
// rise/fall hysteresis. Fall consecutive failures eject the peer from the
// candidate sets; Rise consecutive successful probes re-admit it. With
// probing disabled the fleet has no way to re-admit, so observations are
// ignored and peers stay permanently up.
func (f *Fleet) notePeer(addr string, ok bool, detail string) {
	if f.cfg.ProbeInterval < 0 {
		return
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	st := f.peers[addr]
	if st == nil {
		return // peer removed by a concurrent SetPeers
	}
	if ok {
		st.consecFail, st.consecOK = 0, st.consecOK+1
		st.lastErr = ""
		if !st.up && st.consecOK >= f.cfg.Rise {
			st.up = true
			st.changed = time.Now()
			f.c.readmitted.Add(1)
			f.log.Printf("fleet: peer %s up after %d consecutive probes", addr, st.consecOK)
		}
		return
	}
	st.consecOK, st.consecFail = 0, st.consecFail+1
	st.lastErr = detail
	if st.up && st.consecFail >= f.cfg.Fall {
		st.up = false
		st.changed = time.Now()
		f.c.ejected.Add(1)
		f.log.Printf("fleet: peer %s ejected after %d consecutive failures (%s)", addr, st.consecFail, detail)
	}
}
