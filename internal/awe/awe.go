// Package awe implements Asymptotic Waveform Evaluation: reduced-order
// pole/residue models of arbitrary order q matched to the first 2q moments
// of a transfer function. In this library it serves as the high-accuracy
// reference the paper's two-pole model is validated against — the moments of
// the exact distributed-line transfer function come from
// tline.Stage.TransferMoments, so an order-q AWE fit converges to the exact
// response as q grows (within AWE's usual numerical limits, q ≲ 10).
package awe

import (
	"errors"
	"fmt"
	"math"
	"math/cmplx"

	"rlcint/internal/lina"
	"rlcint/internal/num"
	"rlcint/internal/poly"
	"rlcint/internal/tline"
)

// Fit is a pole/residue approximation H(s) ≈ Σ k_i/(s − p_i).
type Fit struct {
	Poles    []complex128
	Residues []complex128
}

// ErrUnstable is returned when a fit contains right-half-plane poles (a
// known failure mode of high-order AWE on ill-conditioned moment sets).
var ErrUnstable = errors.New("awe: fit has right-half-plane poles")

// FromMoments builds an order-q fit from at least 2q moments
// (m[j] = coefficient of s^j of H(s)).
//
// The denominator coefficients d solve the moment recurrence
// Σ_{i=1..q} m_{n-i}·d_i = −m_n for n = q..2q−1 (with d_0 = 1); the poles
// are the roots of D(s) = 1 + d_1 s + … + d_q s^q; the residues solve the
// complex Vandermonde system m_j = −Σ_i k_i/p_i^{j+1}, j = 0..q−1.
func FromMoments(m []float64, q int) (Fit, error) {
	if q < 1 {
		return Fit{}, fmt.Errorf("awe: order q=%d must be >= 1", q)
	}
	if len(m) < 2*q {
		return Fit{}, fmt.Errorf("awe: need %d moments for order %d, have %d", 2*q, q, len(m))
	}
	// Physical moments decay like T^j for a characteristic time T (~1e-10 s
	// here), which makes the raw Hankel system hopelessly ill-scaled in
	// float64. Normalize time by T = |m1/m0|: fit the scaled series
	// m'_j = m_j/T^j, then map back via p_i = p'_i/T, k_i = k'_i/T.
	ms, scale := NormalizeMoments(m)
	if scale != 1 {
		fit, err := FromMoments(ms, q)
		if err != nil {
			return Fit{}, err
		}
		cs := complex(scale, 0)
		for i := range fit.Poles {
			fit.Poles[i] /= cs
			fit.Residues[i] /= cs
		}
		return fit, nil
	}
	// Solve for denominator coefficients d_1..d_q.
	a := lina.NewDense(q, q)
	b := make([]float64, q)
	for row := 0; row < q; row++ {
		n := q + row
		for i := 1; i <= q; i++ {
			a.Set(row, i-1, m[n-i])
		}
		b[row] = -m[n]
	}
	d, err := lina.Solve(a, b)
	if err != nil {
		return Fit{}, fmt.Errorf("awe: singular moment matrix (order %d too high for these moments): %w", q, err)
	}
	den := make([]float64, q+1)
	den[0] = 1
	copy(den[1:], d)
	poles, err := (poly.Poly{C: den}).Roots()
	if err != nil {
		return Fit{}, fmt.Errorf("awe: pole extraction: %w", err)
	}
	// Residues from the first q moments.
	v := lina.NewZDense(q, q)
	rhs := make([]complex128, q)
	for j := 0; j < q; j++ {
		for i, p := range poles {
			v.Set(j, i, -1/cpow(p, j+1))
		}
		rhs[j] = complex(m[j], 0)
	}
	res, err := lina.ZSolve(v, rhs)
	if err != nil {
		return Fit{}, fmt.Errorf("awe: residue solve: %w", err)
	}
	return Fit{Poles: poles, Residues: res}, nil
}

// NormalizeMoments rescales a moment series onto its own characteristic
// time T = |m1/m0|, returning the scaled series m'_j = m_j/T^j and T.
// Physical transfer moments decay geometrically with the circuit time
// constant, so comparing or fitting raw series in float64 is hopelessly
// ill-scaled; both the AWE fit above and the reduced-order-model accuracy
// gate (internal/mor) compare moments in this normalized form. A series
// whose leading moments vanish is returned unchanged with T = 1.
func NormalizeMoments(m []float64) ([]float64, float64) {
	scale := 1.0
	if len(m) >= 2 && m[0] != 0 && m[1] != 0 {
		scale = math.Abs(m[1] / m[0])
	}
	if scale == 1 || scale == 0 || math.IsInf(scale, 0) || math.IsNaN(scale) {
		return m, 1
	}
	ms := make([]float64, len(m))
	tj := 1.0
	for j := range m {
		ms[j] = m[j] / tj
		tj *= scale
	}
	return ms, scale
}

// FromStage fits an order-q model to the exact transfer function of the
// driver–line–load stage.
func FromStage(st tline.Stage, q int) (Fit, error) {
	m, err := st.TransferMoments(2 * q)
	if err != nil {
		return Fit{}, err
	}
	return FromMoments(m, q)
}

// Order returns the number of poles.
func (f Fit) Order() int { return len(f.Poles) }

// Stable reports whether every pole lies strictly in the left half plane.
func (f Fit) Stable() bool {
	for _, p := range f.Poles {
		if real(p) >= 0 {
			return false
		}
	}
	return true
}

// TransferAt evaluates the pole/residue approximation at s.
func (f Fit) TransferAt(s complex128) complex128 {
	sum := complex(0, 0)
	for i, p := range f.Poles {
		sum += f.Residues[i] / (s - p)
	}
	return sum
}

// DCGain returns H(0) = −Σ k_i/p_i (should be ≈1 for the paper's stages).
func (f Fit) DCGain() float64 {
	sum := complex(0, 0)
	for i, p := range f.Poles {
		sum -= f.Residues[i] / p
	}
	return real(sum)
}

// Step evaluates the unit-step response y(t) = Σ (k_i/p_i)(e^{p_i t} − 1)
// for t ≥ 0. The imaginary parts cancel for physical (conjugate-symmetric)
// fits; any residual imaginary part is discarded.
func (f Fit) Step(t float64) float64 {
	if t <= 0 {
		return 0
	}
	sum := complex(0, 0)
	ct := complex(t, 0)
	for i, p := range f.Poles {
		sum += f.Residues[i] / p * (cmplx.Exp(p*ct) - 1)
	}
	return real(sum)
}

// Delay returns the first time the step response crosses fraction fr of the
// DC gain, using scan + Brent (no Newton: the high-order response's
// derivative is cheap but the scan already brackets the first crossing).
func (f Fit) Delay(fr float64) (float64, error) {
	if fr <= 0 || fr >= 1 {
		return 0, fmt.Errorf("awe: Delay fraction %g outside (0,1)", fr)
	}
	if !f.Stable() {
		return 0, ErrUnstable
	}
	target := fr * f.DCGain()
	g := func(t float64) float64 { return f.Step(t) - target }
	// Slowest pole sets the horizon.
	slow := math.Inf(1)
	for _, p := range f.Poles {
		if a := -real(p); a < slow {
			slow = a
		}
	}
	tmax := 4 / slow
	for try := 0; ; try++ {
		lo, hi, err := num.FirstCrossing(g, 0, tmax, 1024)
		if err == nil {
			return num.Brent(g, lo, hi, 1e-16*tmax, 200)
		}
		if try == 20 {
			return 0, fmt.Errorf("awe: Delay: no crossing up to t=%g", tmax)
		}
		tmax *= 4
	}
}

func cpow(z complex128, n int) complex128 {
	out := complex(1, 0)
	for i := 0; i < n; i++ {
		out *= z
	}
	return out
}
