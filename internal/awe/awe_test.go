package awe

import (
	"math"
	"math/cmplx"
	"testing"

	"rlcint/internal/pade"
	"rlcint/internal/tech"
	"rlcint/internal/tline"
)

func stage(lNHmm float64) tline.Stage {
	n := tech.Node100()
	k := 528.0
	return tline.Stage{
		Line: tline.Line{R: n.R, L: lNHmm * tech.NHPerMM, C: n.C},
		H:    11.1 * tech.MM,
		RS:   n.Rs / k,
		CP:   n.Cp * k,
		CL:   n.C0 * k,
	}
}

func TestFromMomentsRecoversKnownTwoPole(t *testing.T) {
	// H = 1/(1+3s+s²) has exact poles (-3±√5)/2; feed its series moments.
	b1, b2 := 3.0, 1.0
	n := 8
	m := make([]float64, n)
	m[0] = 1
	// Recurrence: m_k = -(b1 m_{k-1} + b2 m_{k-2}).
	m[1] = -b1
	for k := 2; k < n; k++ {
		m[k] = -(b1*m[k-1] + b2*m[k-2])
	}
	fit, err := FromMoments(m, 2)
	if err != nil {
		t.Fatalf("FromMoments: %v", err)
	}
	want := []float64{(-3 + math.Sqrt(5)) / 2, (-3 - math.Sqrt(5)) / 2}
	for _, w := range want {
		found := false
		for _, p := range fit.Poles {
			if cmplx.Abs(p-complex(w, 0)) < 1e-8 {
				found = true
			}
		}
		if !found {
			t.Errorf("pole %v not recovered (got %v)", w, fit.Poles)
		}
	}
	if g := fit.DCGain(); math.Abs(g-1) > 1e-9 {
		t.Errorf("DC gain = %v, want 1", g)
	}
}

func TestFitReproducesInputMoments(t *testing.T) {
	// The defining property: an order-q fit matches all 2q input moments,
	// m_j = −Σ_i k_i/p_i^{j+1}. (Note this is a [q−1/q] Padé with free
	// residues — deliberately different from the paper's all-pole [0/q]
	// truncation, which is why AWE serves as an independent reference.)
	st := stage(2)
	for _, q := range []int{2, 3, 4} {
		m, err := st.TransferMoments(2 * q)
		if err != nil {
			t.Fatal(err)
		}
		fit, err := FromMoments(m, q)
		if err != nil {
			t.Fatalf("q=%d: %v", q, err)
		}
		for j := 0; j < 2*q; j++ {
			got := complex(0, 0)
			for i, p := range fit.Poles {
				got -= fit.Residues[i] / cpow(p, j+1)
			}
			if cmplx.Abs(got-complex(m[j], 0)) > 1e-6*math.Abs(m[j]) {
				t.Errorf("q=%d: moment %d = %v, want %v", q, j, got, m[j])
			}
		}
	}
}

func TestHigherOrderConvergesToExact(t *testing.T) {
	// The fit must reproduce the exact transfer function at a physical
	// frequency progressively better as q grows.
	st := stage(1)
	s := complex(0, 2*math.Pi*2e9) // 2 GHz
	exact := st.TransferExact(s)
	var prevErr float64 = math.Inf(1)
	improved := false
	for _, q := range []int{2, 4, 6} {
		fit, err := FromStage(st, q)
		if err != nil {
			t.Fatalf("q=%d: %v", q, err)
		}
		e := cmplx.Abs(fit.TransferAt(s)-exact) / cmplx.Abs(exact)
		if e < prevErr {
			improved = true
		}
		prevErr = e
	}
	if !improved || prevErr > 0.05 {
		t.Errorf("AWE not converging to exact H: final relative error %v", prevErr)
	}
}

func TestStepFinalValue(t *testing.T) {
	st := stage(2)
	fit, err := FromStage(st, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !fit.Stable() {
		t.Skip("order-4 fit unstable for this stage")
	}
	slow := math.Inf(1)
	for _, p := range fit.Poles {
		if a := -real(p); a < slow {
			slow = a
		}
	}
	if v := fit.Step(20 / slow); math.Abs(v-1) > 1e-3 {
		t.Errorf("final value %v, want 1", v)
	}
	if fit.Step(-1) != 0 || fit.Step(0) != 0 {
		t.Error("step before t=0 must be 0")
	}
}

func TestDelayAgreesWithPadeAtModerateQ(t *testing.T) {
	// Quantify the paper's approximation #1 (two poles instead of the exact
	// distributed response). The two-pole 50% delay tracks the higher-order
	// model within ~15%: it systematically underestimates at large l because
	// it cannot represent the line's wave dead time h·√(lc). The paper's
	// conclusions are built on ratios of such delays, which largely cancels
	// this bias.
	for _, l := range []float64{0.5, 2, 4} {
		st := stage(l)
		m, _ := pade.FromStage(st)
		d2, err := m.Delay(0.5)
		if err != nil {
			t.Fatal(err)
		}
		fit, err := FromStage(st, 4)
		if err != nil {
			t.Fatalf("l=%v: %v", l, err)
		}
		if !fit.Stable() {
			t.Logf("l=%v: order-4 fit unstable, skipping", l)
			continue
		}
		d4, err := fit.Delay(0.5)
		if err != nil {
			t.Fatalf("l=%v: %v", l, err)
		}
		if rel := math.Abs(d4-d2.Tau) / d4; rel > 0.20 {
			t.Errorf("l=%v nH/mm: two-pole delay %v vs order-4 %v (rel %v)", l, d2.Tau, d4, rel)
		}
	}
}

func TestValidation(t *testing.T) {
	if _, err := FromMoments([]float64{1, -1}, 2); err == nil {
		t.Error("too few moments must fail")
	}
	if _, err := FromMoments([]float64{1, -1, 1, -1}, 0); err == nil {
		t.Error("q=0 must fail")
	}
	fit := Fit{Poles: []complex128{complex(1, 0)}, Residues: []complex128{1}}
	if fit.Stable() {
		t.Error("RHP pole must be unstable")
	}
	if _, err := fit.Delay(0.5); err == nil {
		t.Error("Delay on unstable fit must fail")
	}
	stable := Fit{Poles: []complex128{complex(-1, 0)}, Residues: []complex128{1}}
	if _, err := stable.Delay(1.5); err == nil {
		t.Error("fraction out of range must fail")
	}
}
