// Package testutil holds shared test helpers. It is imported only by test
// files.
package testutil

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"testing"
	"time"
)

// CheckGoroutines snapshots the goroutine count and registers a cleanup
// that fails the test if extra goroutines are still alive at test end —
// the hygiene check proving that no solver or pool goroutine survives
// cancellation. The recheck retries briefly so goroutines that are mid-exit
// when the test body returns are not false positives.
func CheckGoroutines(t testing.TB) {
	t.Helper()
	before := runtime.NumGoroutine()
	t.Cleanup(func() {
		deadline := time.Now().Add(2 * time.Second)
		var after int
		for {
			runtime.GC() // flush finalizer goroutine churn
			after = runtime.NumGoroutine()
			if after <= before || time.Now().After(deadline) {
				break
			}
			time.Sleep(10 * time.Millisecond)
		}
		if after > before {
			t.Errorf("goroutine leak: %d before, %d after\n%s", before, after, goroutineDump())
		}
	})
}

// goroutineDump renders the per-creation-site goroutine census for leak
// diagnostics.
func goroutineDump() string {
	buf := make([]byte, 1<<20)
	buf = buf[:runtime.Stack(buf, true)]
	counts := make(map[string]int)
	for _, g := range strings.Split(string(buf), "\n\n") {
		lines := strings.Split(g, "\n")
		site := lines[len(lines)-1]
		if i := strings.LastIndex(site, " "); i >= 0 {
			site = site[:i]
		}
		counts[strings.TrimSpace(site)]++
	}
	sites := make([]string, 0, len(counts))
	for s := range counts {
		sites = append(sites, s)
	}
	sort.Strings(sites)
	var b strings.Builder
	for _, s := range sites {
		fmt.Fprintf(&b, "%4d %s\n", counts[s], s)
	}
	return b.String()
}
