package tech

import (
	"fmt"
	"math"
)

// InterpolateNode synthesizes a technology node at an intermediate (or
// mildly extrapolated) feature size by log–log interpolation between the
// paper's two anchors (250 nm and 100 nm). The top-metal geometry is held
// fixed — exactly as in the paper, where both nodes share the same global
// wire cross-section — while the device parameters (r_s, c_0, c_p), supply,
// oxide and dielectric follow the anchored scaling trends. Valid for
// feature sizes in [70 nm, 350 nm]; outside that window the trends have no
// support in the data and an error is returned.
//
// This utility extends the paper's scaling argument into a trajectory: the
// interpolated nodes let the susceptibility trend (Figure 7) be plotted
// versus feature size rather than at two points.
func InterpolateNode(feature float64) (Node, error) {
	const lo, hi = 70e-9, 350e-9
	if feature < lo || feature > hi || math.IsNaN(feature) {
		return Node{}, fmt.Errorf("tech: feature %g m outside the supported [%g, %g] window", feature, lo, hi)
	}
	a, b := Node250(), Node100()
	fa, fb := 250e-9, 100e-9
	// Interpolation coordinate in log feature size: t=0 at 250nm, 1 at 100nm.
	t := (math.Log(feature) - math.Log(fa)) / (math.Log(fb) - math.Log(fa))
	geo := func(x, y float64) float64 {
		return math.Exp(math.Log(x) + t*(math.Log(y)-math.Log(x)))
	}
	n := Node{
		Name:   fmt.Sprintf("%.0fnm", feature*1e9),
		R:      a.R, // same wire cross-section and material
		C:      geo(a.C, b.C),
		EpsR:   geo(a.EpsR, b.EpsR),
		Width:  a.Width,
		Pitch:  a.Pitch,
		Height: a.Height,
		TIns:   geo(a.TIns, b.TIns),
		Rs:     geo(a.Rs, b.Rs),
		C0:     geo(a.C0, b.C0),
		Cp:     geo(a.Cp, b.Cp),
		VDD:    geo(a.VDD, b.VDD),
		Tox:    geo(a.Tox, b.Tox),
		Vt:     geo(a.Vt, b.Vt),
		Ioff:   geo(a.Ioff, b.Ioff),
	}
	if err := n.Validate(); err != nil {
		return Node{}, fmt.Errorf("tech: interpolation produced invalid node: %w", err)
	}
	return n, nil
}

// DriverRC returns the node's intrinsic driver time constant r_s·(c_0+c_p),
// the quantity the paper identifies as the root cause of growing inductance
// susceptibility (it shrinks with scaling while the wire stays put).
func (n Node) DriverRC() float64 {
	return n.Rs * (n.C0 + n.Cp)
}
