// Package tech embeds the interconnect and device technology parameters the
// paper's experiments run on (its Table 1, NTRS'97-based), and helpers for
// unit conversion between the paper's engineering units (Ω/mm, pF/m, nH/mm,
// mm, fF, kΩ) and the SI units used everywhere else in this library.
package tech

import "fmt"

// Node bundles one technology node's top-level-metal interconnect parameters
// and minimum-sized repeater parameters. All fields are SI.
type Node struct {
	Name string

	// Interconnect (top-level metal: M6 at 250 nm, M8 at 100 nm).
	R    float64 // series resistance per unit length, Ω/m
	C    float64 // capacitance per unit length, F/m
	EpsR float64 // interlayer dielectric constant
	// Cross-section geometry, meters.
	Width  float64 // line width
	Pitch  float64 // line pitch (width + spacing)
	Height float64 // conductor thickness
	TIns   float64 // distance from the top-layer metal to the substrate

	// Minimum-sized repeater, extracted by the paper from SPICE (Table 1).
	Rs float64 // output resistance, Ω
	C0 float64 // input capacitance, F
	Cp float64 // output parasitic capacitance, F

	// Supply. The paper does not tabulate VDD; these follow the NTRS'97
	// ranges for each node and only matter for the transient (ring
	// oscillator / reliability) experiments, whose conclusions are about
	// waveform shape rather than absolute volts.
	VDD float64 // V

	// Gate oxide thickness, used by the oxide-overstress reliability check.
	// NTRS'97-representative values.
	Tox float64 // m

	// Power-model device parameters. The paper does not tabulate these —
	// they drive only the power-aware planning extension (internal/power),
	// never a delay result. NTRS'97-representative: Vt tracks ~0.2·VDD at
	// each node; Ioff is the minimum device's subthreshold leakage, which
	// grows sharply as Vt scales down.
	Vt   float64 // device threshold voltage, V
	Ioff float64 // minimum-device off-state leakage current, A
}

// Unit conversion factors between the paper's presentation and SI.
const (
	OhmPerMM = 1e3   // Ω/mm -> Ω/m
	PFPerM   = 1e-12 // pF/m -> F/m
	NHPerMM  = 1e-6  // nH/mm -> H/m
	MM       = 1e-3  // mm -> m
	UM       = 1e-6  // µm -> m
	FF       = 1e-15 // fF -> F
	KOhm     = 1e3   // kΩ -> Ω
	PS       = 1e-12 // ps -> s
)

// Node250 returns the paper's 250 nm technology node (Table 1, metal 6).
func Node250() Node {
	return Node{
		Name:   "250nm",
		R:      4.4 * OhmPerMM,
		C:      203.50 * PFPerM,
		EpsR:   3.3,
		Width:  2 * UM,
		Pitch:  4 * UM,
		Height: 2.5 * UM,
		TIns:   13.9 * UM,
		Rs:     11.784 * KOhm,
		C0:     1.6314 * FF,
		Cp:     6.2474 * FF,
		VDD:    2.5,
		Tox:    5.0e-9,
		Vt:     0.5,
		Ioff:   1e-9,
	}
}

// Node100 returns the paper's 100 nm technology node (Table 1, metal 8).
func Node100() Node {
	return Node{
		Name:   "100nm",
		R:      4.4 * OhmPerMM,
		C:      123.33 * PFPerM,
		EpsR:   2.0,
		Width:  2 * UM,
		Pitch:  4 * UM,
		Height: 2.5 * UM,
		TIns:   15.4 * UM,
		Rs:     7.534 * KOhm,
		C0:     0.758 * FF,
		Cp:     3.68 * FF,
		VDD:    1.2,
		// Chosen so VDD/Tox sits at the 5 MV/cm design field for both
		// nodes — the "supply scales with oxide thickness" rule the paper
		// cites from Hu [27].
		Tox:  2.4e-9,
		Vt:   0.26,
		Ioff: 1e-8,
	}
}

// Node100WithEps250 returns the paper's control experiment: the 100 nm node
// with the 250 nm dielectric, i.e. identical capacitance per unit length to
// 250 nm (c scales linearly with εr: 203.50 = 123.33 · 3.3/2). The paper
// uses this to show the increased inductance susceptibility at 100 nm comes
// from driver scaling, not from the wire.
func Node100WithEps250() Node {
	n := Node100()
	n.Name = "100nm-eps250"
	n.EpsR = 3.3
	n.C = n.C * 3.3 / 2.0
	return n
}

// Nodes returns the two primary technology nodes in the paper's order.
func Nodes() []Node {
	return []Node{Node250(), Node100()}
}

// ByName looks a node up by its Name field.
func ByName(name string) (Node, error) {
	for _, n := range append(Nodes(), Node100WithEps250()) {
		if n.Name == name {
			return n, nil
		}
	}
	return Node{}, fmt.Errorf("tech: unknown node %q (have 250nm, 100nm, 100nm-eps250)", name)
}

// CrossSectionArea returns the wire's current-carrying area, m².
func (n Node) CrossSectionArea() float64 { return n.Width * n.Height }

// Spacing returns the edge-to-edge gap to the neighbouring line on the same
// layer, m.
func (n Node) Spacing() float64 { return n.Pitch - n.Width }

// Validate checks internal consistency of the parameters.
func (n Node) Validate() error {
	switch {
	case n.R <= 0 || n.C <= 0:
		return fmt.Errorf("tech: %s: non-positive line parameters", n.Name)
	case n.Rs <= 0 || n.C0 <= 0 || n.Cp <= 0:
		return fmt.Errorf("tech: %s: non-positive device parameters", n.Name)
	case n.Width <= 0 || n.Pitch <= n.Width || n.Height <= 0 || n.TIns <= 0:
		return fmt.Errorf("tech: %s: inconsistent geometry", n.Name)
	case n.VDD <= 0:
		return fmt.Errorf("tech: %s: non-positive supply", n.Name)
	// Vt = 0 means "power parameters unavailable" (hand-built nodes);
	// when set, the Veendrick short-circuit term needs VDD − 2·Vt > 0.
	case n.Vt < 0 || n.Ioff < 0:
		return fmt.Errorf("tech: %s: negative power parameters", n.Name)
	case n.Vt > 0 && 2*n.Vt >= n.VDD:
		return fmt.Errorf("tech: %s: threshold %g too high for supply %g (need 2Vt < VDD)", n.Name, n.Vt, n.VDD)
	}
	return nil
}

// WorstCaseInductance is the paper's stated upper bound on the per-unit-
// length line inductance for both nodes ("< 5 nH/mm"): the sweep limit for
// every inductance experiment. SI (H/m).
const WorstCaseInductance = 5 * NHPerMM
