package tech

import (
	"math"
	"testing"
)

func TestTable1Values(t *testing.T) {
	n250 := Node250()
	if n250.R != 4400 {
		t.Errorf("250nm r = %v Ω/m, want 4400", n250.R)
	}
	if math.Abs(n250.C-203.5e-12) > 1e-18 {
		t.Errorf("250nm c = %v", n250.C)
	}
	n100 := Node100()
	if math.Abs(n100.C-123.33e-12) > 1e-18 {
		t.Errorf("100nm c = %v", n100.C)
	}
	if n100.Rs != 7534 {
		t.Errorf("100nm rs = %v", n100.Rs)
	}
}

func TestValidate(t *testing.T) {
	for _, n := range Nodes() {
		if err := n.Validate(); err != nil {
			t.Errorf("%s: %v", n.Name, err)
		}
	}
	bad := Node250()
	bad.Rs = 0
	if err := bad.Validate(); err == nil {
		t.Error("expected validation failure for rs=0")
	}
	bad = Node250()
	bad.Pitch = bad.Width
	if err := bad.Validate(); err == nil {
		t.Error("expected validation failure for pitch<=width")
	}
}

func TestEpsSwapVariant(t *testing.T) {
	v := Node100WithEps250()
	if err := v.Validate(); err != nil {
		t.Fatal(err)
	}
	// c must equal the 250 nm node's c: the paper's "identical c" control.
	if math.Abs(v.C-Node250().C)/Node250().C > 1e-3 {
		t.Errorf("eps-swap c = %v, want %v", v.C, Node250().C)
	}
	// Driver parameters stay those of the 100 nm node.
	if v.Rs != Node100().Rs || v.C0 != Node100().C0 {
		t.Error("eps-swap must keep 100 nm driver parameters")
	}
}

func TestByName(t *testing.T) {
	n, err := ByName("100nm")
	if err != nil || n.Name != "100nm" {
		t.Errorf("ByName: %v, %v", n, err)
	}
	if _, err := ByName("65nm"); err == nil {
		t.Error("expected error for unknown node")
	}
}

func TestGeometryHelpers(t *testing.T) {
	n := Node250()
	if math.Abs(n.CrossSectionArea()-5e-12) > 1e-24 {
		t.Errorf("area = %v, want 5e-12 m²", n.CrossSectionArea())
	}
	if math.Abs(n.Spacing()-2e-6) > 1e-18 {
		t.Errorf("spacing = %v, want 2 µm", n.Spacing())
	}
}

func TestResistanceMatchesGeometry(t *testing.T) {
	// Table 1's r is consistent with Cu resistivity over the stated
	// cross-section: ρ = r·A ≈ 2.2e-8 Ωm.
	for _, n := range Nodes() {
		rho := n.R * n.CrossSectionArea()
		if rho < 1.6e-8 || rho > 2.6e-8 {
			t.Errorf("%s: implied resistivity %v Ωm not copper-like", n.Name, rho)
		}
	}
}
