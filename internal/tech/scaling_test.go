package tech

import (
	"math"
	"testing"
)

func TestInterpolateRecoversAnchors(t *testing.T) {
	n250, err := InterpolateNode(250e-9)
	if err != nil {
		t.Fatal(err)
	}
	n100, err := InterpolateNode(100e-9)
	if err != nil {
		t.Fatal(err)
	}
	a, b := Node250(), Node100()
	if math.Abs(n250.Rs-a.Rs)/a.Rs > 1e-12 || math.Abs(n250.C-a.C)/a.C > 1e-12 {
		t.Errorf("250nm anchor not recovered: %+v", n250)
	}
	if math.Abs(n100.Rs-b.Rs)/b.Rs > 1e-12 || math.Abs(n100.VDD-b.VDD)/b.VDD > 1e-12 {
		t.Errorf("100nm anchor not recovered: %+v", n100)
	}
}

func TestInterpolateMonotoneTrends(t *testing.T) {
	// Between the anchors every scaled parameter moves monotonically.
	feats := []float64{250e-9, 180e-9, 130e-9, 100e-9}
	var prev Node
	for i, f := range feats {
		n, err := InterpolateNode(f)
		if err != nil {
			t.Fatal(err)
		}
		if err := n.Validate(); err != nil {
			t.Fatalf("%v: %v", f, err)
		}
		if i > 0 {
			if n.Rs >= prev.Rs || n.C0 >= prev.C0 || n.Cp >= prev.Cp || n.VDD >= prev.VDD {
				t.Errorf("feature %v: device parameters not shrinking", f)
			}
			if n.DriverRC() >= prev.DriverRC() {
				t.Errorf("feature %v: driver RC did not shrink", f)
			}
		}
		prev = n
	}
}

func TestInterpolateRejectsOutOfWindow(t *testing.T) {
	for _, f := range []float64{10e-9, 1e-6, math.NaN()} {
		if _, err := InterpolateNode(f); err == nil {
			t.Errorf("feature %v should be rejected", f)
		}
	}
}

func TestDriverRCAnchorsMatchPaperRatio(t *testing.T) {
	// The paper's cause: driver RC shrinks ~2.8× from 250 to 100 nm while
	// the wire is unchanged.
	r := Node250().DriverRC() / Node100().DriverRC()
	if r < 2.2 || r > 3.5 {
		t.Errorf("driver RC ratio %v, expected ≈2.8", r)
	}
}

func TestInterpolatedNodeOptimizable(t *testing.T) {
	// The synthesized node must be consumable by the RC closed forms: its
	// optimum falls between the two anchors'.
	n, err := InterpolateNode(150e-9)
	if err != nil {
		t.Fatal(err)
	}
	// h_optRC = sqrt(2 rs (c0+cp)/(r c)) monotone in the interpolation.
	h := math.Sqrt(2 * n.Rs * (n.C0 + n.Cp) / (n.R * n.C))
	h250 := math.Sqrt(2 * Node250().Rs * (Node250().C0 + Node250().Cp) / (Node250().R * Node250().C))
	h100 := math.Sqrt(2 * Node100().Rs * (Node100().C0 + Node100().Cp) / (Node100().R * Node100().C))
	if !(h < h250 && h > h100) {
		t.Errorf("interpolated h_optRC %v not between anchors (%v, %v)", h, h100, h250)
	}
}
