package relia

import (
	"fmt"

	"rlcint/internal/tech"
)

// KOxide is the thermal conductivity of the interlayer dielectric, W/(m·K).
// SiO2 sits near 1.4; low-k dielectrics are worse (the paper's [28] makes
// this the coming problem for scaled interconnects).
const KOxide = 1.4

// HeatReport quantifies steady-state Joule self-heating of a wire over the
// insulator stack, following the one-dimensional model of Banerjee et al.
// [28]: the dissipated density j²ρ conducts through the insulator of
// thickness t_ins to the substrate,
//
//	ΔT = j_rms²·ρ·t_metal·t_ins / k_ins.
type HeatReport struct {
	DeltaT   float64 // steady self-heating temperature rise, K
	Power    float64 // dissipated power per unit length, W/m
	Critical bool    // exceeds MaxSelfHeating
}

// MaxSelfHeating is the self-heating screen, K. Design practice keeps wire
// self-heating to a few kelvin so that electromigration budgets (strongly
// Arrhenius in temperature) hold.
const MaxSelfHeating = 10.0

// SelfHeating evaluates the steady-state temperature rise of a node's
// top-metal wire carrying the given rms current density (A/m²).
func SelfHeating(node tech.Node, rmsJ float64) (HeatReport, error) {
	if err := node.Validate(); err != nil {
		return HeatReport{}, err
	}
	if rmsJ < 0 {
		return HeatReport{}, fmt.Errorf("relia: negative current density %g", rmsJ)
	}
	rho := node.R * node.CrossSectionArea() // implied resistivity, Ω·m
	dT := rmsJ * rmsJ * rho * node.Height * node.TIns / KOxide
	return HeatReport{
		DeltaT:   dT,
		Power:    rmsJ * rmsJ * rho * node.CrossSectionArea(),
		Critical: dT > MaxSelfHeating,
	}, nil
}
