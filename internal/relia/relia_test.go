package relia

import (
	"math"
	"testing"

	"rlcint/internal/tech"
)

func TestCheckOxideNoOvershoot(t *testing.T) {
	// With no overshoot both nodes sit at or below the design limit:
	// supplies scale with tox exactly to keep the field sustainable (the
	// scaling rule the paper cites from [27]).
	for _, n := range tech.Nodes() {
		r, err := CheckOxide(n, 0)
		if err != nil {
			t.Fatal(err)
		}
		if r.Field != r.FieldVDD {
			t.Errorf("%s: field %v != fieldVDD %v with zero overshoot", n.Name, r.Field, r.FieldVDD)
		}
		if r.Critical {
			t.Errorf("%s: nominal operation flagged critical (field %v V/m)", n.Name, r.Field)
		}
	}
}

func TestCheckOxideOvershootRaisesField(t *testing.T) {
	n := tech.Node100()
	base, _ := CheckOxide(n, 0)
	over, err := CheckOxide(n, 0.5*n.VDD) // 50% overshoot
	if err != nil {
		t.Fatal(err)
	}
	if over.Field <= base.Field {
		t.Error("overshoot must raise the field")
	}
	if want := 1.5 * base.Field; math.Abs(over.Field-want) > 1e-6*want {
		t.Errorf("field %v, want %v", over.Field, want)
	}
	// A 50% overshoot at 100 nm pushes past the design limit.
	if !over.OverLimit {
		t.Errorf("field %v V/m should exceed the %v design limit", over.Field, float64(OxideFieldLimit))
	}
}

func TestCheckOxideValidation(t *testing.T) {
	if _, err := CheckOxide(tech.Node100(), -0.1); err == nil {
		t.Error("negative overshoot must fail")
	}
	bad := tech.Node100()
	bad.Tox = 0
	if _, err := CheckOxide(bad, 0); err == nil {
		t.Error("zero tox must fail")
	}
	bad2 := tech.Node100()
	bad2.VDD = -1
	if _, err := CheckOxide(bad2, 0); err == nil {
		t.Error("invalid node must fail")
	}
}

func TestCheckWire(t *testing.T) {
	// The paper's measured ring-oscillator densities (~1e9–4e9 A/m²) pass
	// both screens — its conclusion that inductance does not degrade wire
	// reliability.
	r, err := CheckWire(4e9, 2e9)
	if err != nil {
		t.Fatal(err)
	}
	if r.PeakOver || r.RMSOver {
		t.Errorf("paper-scale densities must pass: %+v", r)
	}
	if r.RMSMargin <= 0 || r.RMSMargin >= 1 {
		t.Errorf("rms margin %v out of expected band", r.RMSMargin)
	}
	over, err := CheckWire(5e11, 5e10)
	if err != nil {
		t.Fatal(err)
	}
	if !over.PeakOver || !over.RMSOver {
		t.Errorf("extreme densities must fail screens: %+v", over)
	}
}

func TestCheckWireValidation(t *testing.T) {
	if _, err := CheckWire(-1, 0); err == nil {
		t.Error("negative peak must fail")
	}
	if _, err := CheckWire(1, 2); err == nil {
		t.Error("rms > peak must fail")
	}
	if _, err := CheckWire(0, 0); err != nil {
		t.Errorf("zeros are fine: %v", err)
	}
}
