// Package relia implements the paper's Section 3.3.2 reliability checks:
// gate-oxide overstress caused by inductive overshoot at repeater inputs,
// and wire self-heating / electromigration screening of peak and rms current
// densities following Banerjee et al., DAC 1999 [28].
package relia

import (
	"fmt"

	"rlcint/internal/tech"
)

// Default screening limits. They are representative of late-1990s design
// rules (the paper's context): oxide fields above ~7 MV/cm risk rapid
// wear-out, and DSM design practice held operating fields near 4–5 MV/cm;
// copper interconnect electromigration screens at ~2 MA/cm² rms with
// self-heating limiting peaks an order of magnitude higher.
const (
	// OxideFieldLimit is the sustained-oxide-field design limit, V/m
	// (5 MV/cm).
	OxideFieldLimit = 5e8
	// OxideFieldCritical is the rapid-wear-out threshold, V/m (7 MV/cm).
	OxideFieldCritical = 7e8
	// JRMSLimit is the rms current-density screen for Joule heating and
	// electromigration, A/m² (2 MA/cm²).
	JRMSLimit = 2e10
	// JPeakLimit is the peak current-density screen, A/m² (20 MA/cm²).
	JPeakLimit = 2e11
)

// OxideReport assesses gate-oxide stress at a repeater input that sees
// inductive overshoot above the supply.
type OxideReport struct {
	VGateMax  float64 // worst-case gate voltage, V
	Field     float64 // oxide field at the worst case, V/m
	FieldVDD  float64 // oxide field with no overshoot, V/m
	Margin    float64 // Field / OxideFieldLimit
	OverLimit bool    // exceeds the design limit
	Critical  bool    // exceeds the rapid-wear-out threshold
}

// CheckOxide evaluates oxide stress for a node's devices given the measured
// overshoot (V above VDD) at a repeater input.
func CheckOxide(node tech.Node, overshootV float64) (OxideReport, error) {
	if err := node.Validate(); err != nil {
		return OxideReport{}, err
	}
	if node.Tox <= 0 {
		return OxideReport{}, fmt.Errorf("relia: node %s has no oxide thickness", node.Name)
	}
	if overshootV < 0 {
		return OxideReport{}, fmt.Errorf("relia: negative overshoot %g", overshootV)
	}
	vg := node.VDD + overshootV
	r := OxideReport{
		VGateMax: vg,
		Field:    vg / node.Tox,
		FieldVDD: node.VDD / node.Tox,
	}
	r.Margin = r.Field / OxideFieldLimit
	r.OverLimit = r.Field > OxideFieldLimit
	r.Critical = r.Field > OxideFieldCritical
	return r, nil
}

// WireReport screens interconnect current densities against the Joule-
// heating / electromigration limits of [28].
type WireReport struct {
	PeakJ, RMSJ           float64 // measured, A/m²
	PeakMargin, RMSMargin float64 // measured / limit
	PeakOver, RMSOver     bool
}

// CheckWire screens the given peak and rms current densities (A/m²).
func CheckWire(peakJ, rmsJ float64) (WireReport, error) {
	if peakJ < 0 || rmsJ < 0 || rmsJ > peakJ && peakJ > 0 {
		return WireReport{}, fmt.Errorf("relia: implausible densities peak=%g rms=%g", peakJ, rmsJ)
	}
	return WireReport{
		PeakJ: peakJ, RMSJ: rmsJ,
		PeakMargin: peakJ / JPeakLimit,
		RMSMargin:  rmsJ / JRMSLimit,
		PeakOver:   peakJ > JPeakLimit,
		RMSOver:    rmsJ > JRMSLimit,
	}, nil
}
