package relia

import (
	"math"
	"testing"

	"rlcint/internal/tech"
)

func TestSelfHeatingPaperOperatingPoint(t *testing.T) {
	// The measured ring-oscillator rms density (~1e9 A/m² = 0.1 MA/cm²)
	// produces negligible self-heating — consistent with the paper's
	// conclusion that inductance does not endanger wire reliability.
	rep, err := SelfHeating(tech.Node100(), 1e9)
	if err != nil {
		t.Fatal(err)
	}
	if rep.DeltaT > 1.0 || rep.Critical {
		t.Errorf("paper-scale density heats by %v K, expected negligible", rep.DeltaT)
	}
	if rep.Power <= 0 {
		t.Error("power must be positive for nonzero current")
	}
}

func TestSelfHeatingQuadraticInJ(t *testing.T) {
	a, _ := SelfHeating(tech.Node100(), 1e10)
	b, _ := SelfHeating(tech.Node100(), 2e10)
	if math.Abs(b.DeltaT/a.DeltaT-4) > 1e-9 {
		t.Errorf("heating not quadratic: ratio %v", b.DeltaT/a.DeltaT)
	}
}

func TestSelfHeatingCriticalAtEMLimitScale(t *testing.T) {
	// At ~10× the EM rms screen, self-heating becomes critical — the two
	// screens are mutually consistent in ordering.
	rep, err := SelfHeating(tech.Node100(), 10*JRMSLimit)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Critical {
		t.Errorf("10× EM limit heats by only %v K — screen ordering broken", rep.DeltaT)
	}
}

func TestSelfHeatingValidation(t *testing.T) {
	if _, err := SelfHeating(tech.Node100(), -1); err == nil {
		t.Error("negative density must fail")
	}
	bad := tech.Node100()
	bad.R = 0
	if _, err := SelfHeating(bad, 1); err == nil {
		t.Error("invalid node must fail")
	}
	zero, err := SelfHeating(tech.Node250(), 0)
	if err != nil || zero.DeltaT != 0 {
		t.Errorf("zero current: %+v, %v", zero, err)
	}
}
