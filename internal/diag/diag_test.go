package diag

import (
	"errors"
	"fmt"
	"math"
	"strings"
	"testing"
)

func TestErrorMatchesKindAndCause(t *testing.T) {
	cause := errors.New("no pivot in column 3")
	e := New(ErrSingularJacobian, "spice.solveNewton")
	e.Time = 1.5e-9
	e.Iteration = 4
	e.Err = cause

	if !errors.Is(e, ErrSingularJacobian) {
		t.Fatalf("errors.Is(kind) = false for %v", e)
	}
	if !errors.Is(e, cause) {
		t.Fatalf("errors.Is(cause) = false for %v", e)
	}
	if errors.Is(e, ErrTimestepCollapse) {
		t.Fatalf("errors.Is matched the wrong kind for %v", e)
	}
	var de *Error
	if !errors.As(e, &de) || de.Iteration != 4 {
		t.Fatalf("errors.As lost context: %+v", de)
	}
	// Wrapping through fmt must preserve matchability.
	wrapped := fmt.Errorf("outer: %w", e)
	if !errors.Is(wrapped, ErrSingularJacobian) || !errors.As(wrapped, &de) {
		t.Fatalf("wrapping broke matching: %v", wrapped)
	}
}

func TestErrorStringOmitsInapplicableFields(t *testing.T) {
	e := New(ErrNonConvergence, "num.NewtonND")
	e.Iteration = 50
	e.Residual = 1e-3
	s := e.Error()
	for _, want := range []string{"num.NewtonND", "iter=50", "residual=0.001"} {
		if !strings.Contains(s, want) {
			t.Errorf("Error() = %q missing %q", s, want)
		}
	}
	for _, absent := range []string{"t=", "gmin=", "step=", "damping="} {
		if strings.Contains(s, absent) {
			t.Errorf("Error() = %q contains inapplicable %q", s, absent)
		}
	}
}

func TestDomainfAndCheckFinite(t *testing.T) {
	if err := CheckFinite("op", []string{"a", "b"}, []float64{1, 2}); err != nil {
		t.Fatalf("CheckFinite on finite values: %v", err)
	}
	err := CheckFinite("op", []string{"a", "b"}, []float64{1, math.NaN()})
	if !errors.Is(err, ErrDomain) {
		t.Fatalf("CheckFinite(NaN) = %v, want ErrDomain", err)
	}
	if !strings.Contains(err.Error(), "b=") {
		t.Errorf("CheckFinite error %q does not name the offending field", err)
	}
	if err := CheckFinite("op", []string{"x"}, []float64{math.Inf(-1)}); !errors.Is(err, ErrDomain) {
		t.Fatalf("CheckFinite(-Inf) = %v, want ErrDomain", err)
	}
	if err := Domainf("op", "f=%g outside (0,1)", 2.0); !errors.Is(err, ErrDomain) {
		t.Fatalf("Domainf kind = %v", err)
	}
}

func TestReportNilSafety(t *testing.T) {
	var r *Report
	r.Record("dc-gmin", "gmin=1e-3", OutcomeOK, "", nil) // must not panic
	if n := r.Tried("dc-gmin"); n != 0 {
		t.Fatalf("nil report Tried = %d", n)
	}
	if _, ok := r.Last("dc-gmin"); ok {
		t.Fatal("nil report Last reported an attempt")
	}
	if s := r.Summary(); s != "" {
		t.Fatalf("nil report Summary = %q", s)
	}
}

func TestReportRecordsAndSummarizes(t *testing.T) {
	r := &Report{}
	r.Record("dc-gmin", "gmin=0.001", OutcomeOK, "", nil)
	r.Record("dc-gmin", "gmin=1e-05", OutcomeFailed, "t=0", errors.New("stall"))
	r.Record("dc-ramp", "ramp=0.5", OutcomeOK, "", nil)
	if got := r.Tried("dc-gmin"); got != 2 {
		t.Fatalf("Tried(dc-gmin) = %d, want 2", got)
	}
	last, ok := r.Last("dc-gmin")
	if !ok || last.Outcome != OutcomeFailed {
		t.Fatalf("Last(dc-gmin) = %+v, %v", last, ok)
	}
	s := r.Summary()
	for _, want := range []string{"gmin=0.001: ok", "gmin=1e-05: failed", "stall", "ramp=0.5: ok"} {
		if !strings.Contains(s, want) {
			t.Errorf("Summary() = %q missing %q", s, want)
		}
	}
}

func TestReportCapsRetention(t *testing.T) {
	r := &Report{}
	for i := 0; i < maxAttempts+10; i++ {
		r.Record("tran-step", "halve", OutcomeFailed, "", nil)
	}
	if len(r.Attempts) != maxAttempts {
		t.Fatalf("retained %d attempts, want cap %d", len(r.Attempts), maxAttempts)
	}
	if r.Dropped != 10 {
		t.Fatalf("Dropped = %d, want 10", r.Dropped)
	}
	if !strings.Contains(r.Summary(), "10 more attempts dropped") {
		t.Errorf("Summary does not mention dropped attempts")
	}
}

func TestInjectorNilSafety(t *testing.T) {
	var in *Injector
	if err := in.At(Site{Op: "x"}); err != nil {
		t.Fatalf("nil injector injected %v", err)
	}
	if err := (&Injector{}).At(Site{Op: "x"}); err != nil {
		t.Fatalf("empty injector injected %v", err)
	}
}

func TestFaultAt(t *testing.T) {
	boom := errors.New("boom")
	in := FaultAt("spice.factorize", 3, boom)
	if err := in.At(Site{Op: "spice.factorize", Step: 2}); err != nil {
		t.Fatalf("injected before fromStep: %v", err)
	}
	if err := in.At(Site{Op: "other", Step: 5}); err != nil {
		t.Fatalf("injected at wrong op: %v", err)
	}
	if err := in.At(Site{Op: "spice.factorize", Step: 3}); !errors.Is(err, boom) {
		t.Fatalf("did not inject at matching site: %v", err)
	}
}

func TestDescribe(t *testing.T) {
	e := New(ErrTimestepCollapse, "spice.Transient")
	e.Time = 2e-9
	e.Residual = 0.5
	rep := &Report{}
	rep.Record("tran-step", "be-fallback", OutcomeFailed, "t=2e-09", nil)
	s := Describe(e, rep)
	for _, want := range []string{"kind: timestep collapsed", "time: 2e-09", "be-fallback", "recovery attempts"} {
		if !strings.Contains(s, want) {
			t.Errorf("Describe = %q missing %q", s, want)
		}
	}
	if got := Describe(errors.New("plain"), nil); got != "plain" {
		t.Errorf("Describe(plain) = %q", got)
	}
	if got := Describe(nil, nil); got != "<nil>" {
		t.Errorf("Describe(nil) = %q", got)
	}
}
