package diag

import (
	"fmt"
	"runtime/debug"
)

// RecoverTo converts a panic on the current goroutine into a typed *Error of
// kind ErrPanic carrying the panic value and the stack, and stores it in
// *errp. It must be installed with defer directly at the boundary to guard:
//
//	func Solve(...) (err error) {
//	    defer diag.RecoverTo(&err, "pkg.Solve")
//	    ...
//	}
//
// Every public entry point of the solver stack installs one of these, so an
// index fault or NaN-poisoned slice access deep in a device eval surfaces as
// a matchable SolverError instead of crashing the process. When no panic is
// in flight it leaves *errp untouched.
func RecoverTo(errp *error, op string) {
	r := recover()
	if r == nil {
		return
	}
	de := New(ErrPanic, op)
	de.Detail = fmt.Sprint(r)
	de.Stack = debug.Stack()
	if cause, ok := r.(error); ok {
		de.Err = cause
	}
	*errp = de
}

// PanicAt builds an Injector that panics with msg at every site whose Op
// equals op and whose Step is at least fromStep — the tool for proving that
// panic containment converts a device-eval crash into a typed error.
func PanicAt(op string, fromStep int, msg string) *Injector {
	return &Injector{Fault: func(s Site) error {
		if s.Op == op && s.Step >= fromStep {
			panic(msg)
		}
		return nil
	}}
}
