package diag

import "sync/atomic"

// Site identifies a potential fault point inside a solver, passed to an
// Injector before the guarded operation runs. Op names the operation and —
// where a solver runs the same operation under different ladder rungs —
// carries the rung context (e.g. "spice.newton/dc-gmin" vs
// "spice.newton/tran-tr"). Sites are not limited to solvers: the fleet
// forwarding client guards each peer attempt as "fleet.transport" (Step =
// attempt index, Iteration = hop count), so chaos harnesses can sever the
// network between fleet members without touching real sockets.
type Site struct {
	Op        string
	Time      float64 // simulation time, s (0 when inapplicable)
	Step      int     // outer step / rung / start index
	Iteration int     // inner iteration
	Gmin      float64 // gmin level in effect (0 when inapplicable)
}

// Injector forces solver faults at chosen sites so tests can exercise
// recovery ladders and terminal failure paths deliberately. Production code
// passes a nil *Injector, which injects nothing.
type Injector struct {
	// Fault, when non-nil, is consulted at each guarded site; returning a
	// non-nil error makes the guarded operation fail with that error (which
	// the solver then wraps in its usual typed failure).
	Fault func(Site) error
}

// At consults the injector at site s. Nil receivers and nil Fault hooks
// inject nothing, so solvers can call At unconditionally on their hot paths.
func (in *Injector) At(s Site) error {
	if in == nil || in.Fault == nil {
		return nil
	}
	return in.Fault(s)
}

// FaultAt builds an Injector that returns err at every site whose Op equals
// op and whose Step is at least fromStep — the common shape for "fail this
// operation from step N onward" tests.
func FaultAt(op string, fromStep int, err error) *Injector {
	return &Injector{Fault: func(s Site) error {
		if s.Op == op && s.Step >= fromStep {
			return err
		}
		return nil
	}}
}

// FaultEvery builds a concurrency-safe Injector that returns err at every
// n-th consultation of sites whose Op equals op, counting across goroutines
// — a deterministic stand-in for random fault injection, used by the chaos
// harness to stress recovery and degraded-answer paths without seeding
// nondeterminism into a test. n <= 0 injects nothing.
func FaultEvery(op string, n int, err error) *Injector {
	if n <= 0 {
		return nil
	}
	var count atomic.Int64
	return &Injector{Fault: func(s Site) error {
		if s.Op != op {
			return nil
		}
		if count.Add(1)%int64(n) == 0 {
			return err
		}
		return nil
	}}
}
