// Package diag is the solver-resilience layer shared by every iterative
// routine in the library: a typed error taxonomy with structured context
// (matchable via errors.Is / errors.As), a per-run Report that records which
// rungs of a recovery ladder were tried, and a fault Injector that lets
// tests force solver failures at chosen points.
//
// The taxonomy is deliberately small. Every solver failure in the library is
// one of four kinds:
//
//   - ErrNonConvergence: an iterative solve exhausted its budget or stalled;
//   - ErrSingularJacobian: a linearized system had no usable pivot;
//   - ErrTimestepCollapse: transient step control halved past its floor;
//   - ErrDomain: an input (option, argument, operating point) was outside
//     the routine's domain — NaN/Inf values, negative tolerances, thresholds
//     outside (0,1), and the like.
//
// Callers match kinds with errors.Is and extract context with errors.As:
//
//	var de *diag.Error
//	if errors.As(err, &de) && errors.Is(err, diag.ErrTimestepCollapse) {
//	    log.Printf("collapsed at t=%g after %d iterations", de.Time, de.Iteration)
//	}
package diag

import (
	"errors"
	"fmt"
	"math"
	"strings"
	"time"
)

// The error kinds. Every typed solver failure wraps exactly one of these.
var (
	// ErrNonConvergence marks an iterative solve that exhausted its budget
	// or stalled without meeting its tolerance.
	ErrNonConvergence = errors.New("diag: iterative solve did not converge")
	// ErrSingularJacobian marks a linear(ized) system with no usable pivot.
	ErrSingularJacobian = errors.New("diag: singular Jacobian")
	// ErrTimestepCollapse marks transient step control that halved its step
	// past the configured floor without recovering.
	ErrTimestepCollapse = errors.New("diag: timestep collapsed")
	// ErrDomain marks an input outside a routine's domain: NaN/Inf values,
	// negative tolerances, thresholds outside their interval, and the like.
	ErrDomain = errors.New("diag: input outside domain")
	// ErrCancelled marks a solve stopped cooperatively because its context
	// was cancelled; any accompanying result follows the partial-result
	// contract.
	ErrCancelled = errors.New("diag: run cancelled")
	// ErrDeadline marks a solve stopped because its wall-clock budget (or
	// context deadline) expired.
	ErrDeadline = errors.New("diag: wall-clock budget exceeded")
	// ErrBudget marks a solve stopped because its cooperative iteration
	// budget was exhausted.
	ErrBudget = errors.New("diag: iteration budget exhausted")
	// ErrPanic marks a solver panic (index fault, NaN poison, ...) converted
	// into a typed error at a public API boundary; the Error carries the
	// stack of the panicking goroutine.
	ErrPanic = errors.New("diag: solver panicked")
)

// Error is a solver failure with structured context. Kind is one of the
// package sentinels; Err optionally wraps an underlying cause. Numeric
// fields default to NaN / -1 meaning "not applicable".
type Error struct {
	Kind      error   // taxonomy sentinel (ErrNonConvergence, ...)
	Op        string  // failing operation, e.g. "spice.Transient"
	Time      float64 // simulation time, s (NaN when inapplicable)
	Step      int     // outer step / rung / start index (-1 when inapplicable)
	Iteration int     // inner iteration count (-1 when inapplicable)
	Residual  float64 // last residual infinity-norm (NaN when inapplicable)
	Gmin      float64 // gmin level in effect (NaN when inapplicable)
	Damping   float64 // last line-search damping factor (NaN when inapplicable)
	// Elapsed is the wall-clock time the run had consumed when run control
	// stopped it (0 when inapplicable).
	Elapsed time.Duration
	// Stack is the stack trace captured when a panic was converted into this
	// error (nil otherwise).
	Stack  []byte
	Detail string // free-form context
	Err    error  // wrapped cause, may be nil
}

// New returns an Error of the given kind with inapplicable context fields
// pre-set; callers fill in what they know.
func New(kind error, op string) *Error {
	return &Error{
		Kind: kind, Op: op,
		Time: math.NaN(), Step: -1, Iteration: -1,
		Residual: math.NaN(), Gmin: math.NaN(), Damping: math.NaN(),
	}
}

// Error implements the error interface with a compact one-line rendering of
// the applicable context fields.
func (e *Error) Error() string {
	var b strings.Builder
	if e.Op != "" {
		b.WriteString(e.Op)
		b.WriteString(": ")
	}
	if e.Kind != nil {
		b.WriteString(strings.TrimPrefix(e.Kind.Error(), "diag: "))
	} else {
		b.WriteString("solver failure")
	}
	if !math.IsNaN(e.Time) {
		fmt.Fprintf(&b, " t=%g", e.Time)
	}
	if e.Step >= 0 {
		fmt.Fprintf(&b, " step=%d", e.Step)
	}
	if e.Iteration >= 0 {
		fmt.Fprintf(&b, " iter=%d", e.Iteration)
	}
	if !math.IsNaN(e.Residual) {
		fmt.Fprintf(&b, " residual=%g", e.Residual)
	}
	if !math.IsNaN(e.Gmin) {
		fmt.Fprintf(&b, " gmin=%g", e.Gmin)
	}
	if !math.IsNaN(e.Damping) {
		fmt.Fprintf(&b, " damping=%g", e.Damping)
	}
	if e.Elapsed > 0 {
		fmt.Fprintf(&b, " elapsed=%s", e.Elapsed.Round(time.Millisecond))
	}
	if e.Detail != "" {
		fmt.Fprintf(&b, " (%s)", e.Detail)
	}
	if e.Err != nil {
		fmt.Fprintf(&b, ": %v", e.Err)
	}
	return b.String()
}

// Unwrap exposes both the taxonomy kind and the wrapped cause, so
// errors.Is(err, diag.ErrX) and errors.Is(err, cause) both match.
func (e *Error) Unwrap() []error {
	var out []error
	if e.Kind != nil {
		out = append(out, e.Kind)
	}
	if e.Err != nil {
		out = append(out, e.Err)
	}
	return out
}

// Domainf builds an ErrDomain Error for operation op with a formatted detail.
func Domainf(op, format string, args ...any) *Error {
	e := New(ErrDomain, op)
	e.Detail = fmt.Sprintf(format, args...)
	return e
}

// CheckFinite returns an ErrDomain Error when any named value is NaN or
// ±Inf; names and values pair positionally. It returns nil when all values
// are finite.
func CheckFinite(op string, names []string, values []float64) error {
	for i, v := range values {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return Domainf(op, "%s=%g is not finite", names[i], v)
		}
	}
	return nil
}

// Describe renders err for human consumption: typed solver failures get a
// multi-line breakdown of their context; other errors render as themselves.
// A trailing Report summary is appended when rep is non-nil and non-empty.
func Describe(err error, rep *Report) string {
	if err == nil {
		return "<nil>"
	}
	var b strings.Builder
	b.WriteString(err.Error())
	var de *Error
	if errors.As(err, &de) {
		b.WriteString("\n  kind: ")
		if de.Kind != nil {
			b.WriteString(strings.TrimPrefix(de.Kind.Error(), "diag: "))
		} else {
			b.WriteString("unknown")
		}
		if de.Op != "" {
			fmt.Fprintf(&b, "\n  op:   %s", de.Op)
		}
		if !math.IsNaN(de.Time) {
			fmt.Fprintf(&b, "\n  time: %g s", de.Time)
		}
		if de.Iteration >= 0 {
			fmt.Fprintf(&b, "\n  iterations: %d", de.Iteration)
		}
		if !math.IsNaN(de.Residual) {
			fmt.Fprintf(&b, "\n  residual: %g", de.Residual)
		}
		if !math.IsNaN(de.Gmin) {
			fmt.Fprintf(&b, "\n  gmin: %g", de.Gmin)
		}
		if de.Elapsed > 0 {
			fmt.Fprintf(&b, "\n  elapsed: %s", de.Elapsed.Round(time.Millisecond))
		}
		if len(de.Stack) > 0 {
			b.WriteString("\n  stack:\n")
			for _, line := range strings.Split(strings.TrimRight(string(de.Stack), "\n"), "\n") {
				b.WriteString("    ")
				b.WriteString(line)
				b.WriteByte('\n')
			}
		}
	}
	if s := rep.Summary(); s != "" {
		b.WriteString("\n  recovery attempts:\n")
		for _, line := range strings.Split(s, "\n") {
			b.WriteString("    ")
			b.WriteString(line)
			b.WriteString("\n")
		}
	}
	return strings.TrimRight(b.String(), "\n")
}
