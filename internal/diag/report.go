package diag

import (
	"fmt"
	"strings"
)

// Outcome classifies one rung attempt of a recovery ladder.
type Outcome string

const (
	// OutcomeOK marks a rung that converged.
	OutcomeOK Outcome = "ok"
	// OutcomeFailed marks a rung that was tried and did not converge.
	OutcomeFailed Outcome = "failed"
	// OutcomeSkipped marks a rung that was bypassed (e.g. a gmin level
	// skipped after restoring the last converged iterate).
	OutcomeSkipped Outcome = "skipped"
)

// Attempt records one rung of a recovery ladder.
type Attempt struct {
	Ladder  string  // ladder name, e.g. "dc-gmin", "tran-step", "opt-newton"
	Rung    string  // rung identity, e.g. "gmin=1e-05", "be-fallback"
	Outcome Outcome
	Detail  string // free-form context ("t=1.2e-9", "restored x from gmin=1e-3")
	Err     error  // failure cause for OutcomeFailed rungs
}

// maxAttempts bounds the attempts kept per report so a pathologically
// struggling run cannot grow a report without bound; further attempts are
// counted but dropped.
const maxAttempts = 1024

// Report collects the recovery-ladder attempts of one solver run. The zero
// value is ready to use, and all methods are nil-receiver safe so solvers
// can record unconditionally and callers opt in by passing a non-nil Report.
// A Report is not safe for concurrent use; give each run its own.
type Report struct {
	Attempts []Attempt
	Dropped  int // attempts beyond the retention cap
}

// Record appends one ladder attempt. It is a no-op on a nil Report.
func (r *Report) Record(ladder, rung string, outcome Outcome, detail string, err error) {
	if r == nil {
		return
	}
	if len(r.Attempts) >= maxAttempts {
		r.Dropped++
		return
	}
	r.Attempts = append(r.Attempts, Attempt{
		Ladder: ladder, Rung: rung, Outcome: outcome, Detail: detail, Err: err,
	})
}

// Tried returns how many attempts were recorded for the named ladder.
func (r *Report) Tried(ladder string) int {
	if r == nil {
		return 0
	}
	n := 0
	for _, a := range r.Attempts {
		if a.Ladder == ladder {
			n++
		}
	}
	return n
}

// Last returns the most recent attempt for the named ladder and whether one
// exists.
func (r *Report) Last(ladder string) (Attempt, bool) {
	if r == nil {
		return Attempt{}, false
	}
	for i := len(r.Attempts) - 1; i >= 0; i-- {
		if r.Attempts[i].Ladder == ladder {
			return r.Attempts[i], true
		}
	}
	return Attempt{}, false
}

// Summary renders one line per attempt ("" for an empty or nil report).
func (r *Report) Summary() string {
	if r == nil || len(r.Attempts) == 0 {
		return ""
	}
	var b strings.Builder
	for i, a := range r.Attempts {
		if i > 0 {
			b.WriteByte('\n')
		}
		fmt.Fprintf(&b, "%s %s: %s", a.Ladder, a.Rung, a.Outcome)
		if a.Detail != "" {
			fmt.Fprintf(&b, " (%s)", a.Detail)
		}
		if a.Err != nil {
			fmt.Fprintf(&b, ": %v", a.Err)
		}
	}
	if r.Dropped > 0 {
		fmt.Fprintf(&b, "\n... and %d more attempts dropped", r.Dropped)
	}
	return b.String()
}

// String implements fmt.Stringer via Summary.
func (r *Report) String() string { return r.Summary() }
