package num

import (
	"errors"
	"math"
	"testing"

	"rlcint/internal/diag"
)

func TestNewtonNDOptionsValidate(t *testing.T) {
	nan := math.NaN()
	bad := []struct {
		name string
		opts NewtonNDOptions
	}{
		{"negative Tol", NewtonNDOptions{Tol: -1e-10}},
		{"NaN Tol", NewtonNDOptions{Tol: nan}},
		{"Inf StepTol", NewtonNDOptions{StepTol: math.Inf(1)}},
		{"negative FDScale", NewtonNDOptions{FDScale: -1e-7}},
		{"negative MaxIter", NewtonNDOptions{MaxIter: -1}},
		{"negative MaxHalve", NewtonNDOptions{MaxHalve: -1}},
		{"NaN Lower", NewtonNDOptions{Lower: []float64{0, nan}}},
	}
	for _, c := range bad {
		t.Run(c.name, func(t *testing.T) {
			if err := c.opts.Validate(); !errors.Is(err, diag.ErrDomain) {
				t.Errorf("Validate() = %v, want ErrDomain match", err)
			}
			// The solver itself must refuse the options too.
			f := func(x, out []float64) error { out[0] = x[0]; return nil }
			if _, err := NewtonND(f, []float64{1}, c.opts); !errors.Is(err, diag.ErrDomain) {
				t.Errorf("NewtonND = %v, want ErrDomain match", err)
			}
		})
	}
	if err := (NewtonNDOptions{}).Validate(); err != nil {
		t.Errorf("zero-valued options rejected: %v", err)
	}
}

func TestNewtonNDRejectsNonFiniteStart(t *testing.T) {
	f := func(x, out []float64) error { out[0] = x[0]; return nil }
	for _, x0 := range [][]float64{{math.NaN()}, {math.Inf(1)}} {
		if _, err := NewtonND(f, x0, NewtonNDOptions{}); !errors.Is(err, diag.ErrDomain) {
			t.Errorf("NewtonND(x0=%v) = %v, want ErrDomain match", x0, err)
		}
	}
}

func TestNewtonNDSingularJacobianTyped(t *testing.T) {
	// A constant residual has an exactly zero Jacobian: the dense solve must
	// fail and surface as a typed singular-Jacobian error with context.
	f := func(x, out []float64) error {
		out[0], out[1] = 1, 1
		return nil
	}
	_, err := NewtonND(f, []float64{1, 1}, NewtonNDOptions{MaxIter: 10})
	if !errors.Is(err, diag.ErrSingularJacobian) {
		t.Fatalf("error %v does not match diag.ErrSingularJacobian", err)
	}
	var de *diag.Error
	if !errors.As(err, &de) {
		t.Fatalf("error %T is not a *diag.Error", err)
	}
	if de.Iteration < 1 {
		t.Errorf("Iteration = %d, want >= 1", de.Iteration)
	}
	if math.IsNaN(de.Residual) {
		t.Error("Residual not populated")
	}
}

func TestNewtonNDStallTypedBothSentinels(t *testing.T) {
	// x² + 1 has no real root: Newton stalls at the residual minimum. The
	// failure must match both the legacy package sentinel and the taxonomy.
	f := func(x, out []float64) error {
		out[0] = x[0]*x[0] + 1
		return nil
	}
	_, err := NewtonND(f, []float64{2}, NewtonNDOptions{MaxIter: 40, Damping: true})
	if err == nil {
		t.Fatal("rootless system converged")
	}
	if !errors.Is(err, ErrNoConvergence) {
		t.Errorf("error %v does not match num.ErrNoConvergence", err)
	}
	if !errors.Is(err, diag.ErrNonConvergence) {
		t.Errorf("error %v does not match diag.ErrNonConvergence", err)
	}
	var de *diag.Error
	if !errors.As(err, &de) {
		t.Fatalf("error %T is not a *diag.Error", err)
	}
	if de.Residual < 0.999 {
		t.Errorf("Residual = %g, want the stalled residual (~1)", de.Residual)
	}
}

func TestLegacySentinelsMatchTaxonomy(t *testing.T) {
	if !errors.Is(ErrNoConvergence, diag.ErrNonConvergence) {
		t.Error("num.ErrNoConvergence does not wrap diag.ErrNonConvergence")
	}
	if !errors.Is(ErrBadBracket, diag.ErrDomain) {
		t.Error("num.ErrBadBracket does not wrap diag.ErrDomain")
	}
}
