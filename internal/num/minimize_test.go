package num

import (
	"math"
	"testing"
	"testing/quick"
)

func TestGoldenSection(t *testing.T) {
	f := func(x float64) float64 { return (x - 1.3) * (x - 1.3) }
	x, err := GoldenSection(f, -5, 5, 1e-10, 200)
	if err != nil {
		t.Fatalf("GoldenSection: %v", err)
	}
	if math.Abs(x-1.3) > 1e-7 {
		t.Errorf("min at %v, want 1.3", x)
	}
}

func TestGoldenSectionPropertyQuadratic(t *testing.T) {
	prop := func(c float64) bool {
		c = math.Mod(c, 4) // min location in (-4, 4)
		f := func(x float64) float64 { return (x - c) * (x - c) }
		x, err := GoldenSection(f, -6, 6, 1e-10, 300)
		return err == nil && math.Abs(x-c) < 1e-6
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestNelderMeadRosenbrock(t *testing.T) {
	f := func(x []float64) float64 {
		a := 1 - x[0]
		b := x[1] - x[0]*x[0]
		return a*a + 100*b*b
	}
	x, fv, err := NelderMead(f, []float64{-1.2, 1}, NelderMeadOptions{MaxIter: 4000})
	if err != nil {
		t.Fatalf("NelderMead: %v", err)
	}
	if math.Abs(x[0]-1) > 1e-4 || math.Abs(x[1]-1) > 1e-4 {
		t.Errorf("min at %v (f=%v), want (1,1)", x, fv)
	}
}

func TestNelderMeadInfeasibleRegion(t *testing.T) {
	// +Inf outside the unit disk; min of (x-0.5)^2+(y-0.5)^2 is feasible.
	f := func(x []float64) float64 {
		if x[0]*x[0]+x[1]*x[1] > 1 {
			return math.Inf(1)
		}
		dx, dy := x[0]-0.5, x[1]-0.5
		return dx*dx + dy*dy
	}
	x, _, err := NelderMead(f, []float64{0.1, 0.1}, NelderMeadOptions{})
	if err != nil {
		t.Fatalf("NelderMead: %v", err)
	}
	if math.Abs(x[0]-0.5) > 1e-4 || math.Abs(x[1]-0.5) > 1e-4 {
		t.Errorf("min at %v, want (0.5,0.5)", x)
	}
}

func TestNelderMeadAllInfeasible(t *testing.T) {
	f := func(x []float64) float64 { return math.Inf(1) }
	if _, _, err := NelderMead(f, []float64{0, 0}, NelderMeadOptions{MaxIter: 50, MaxRestart: 1}); err == nil {
		t.Error("expected failure when no feasible point exists")
	}
}
