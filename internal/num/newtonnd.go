package num

import (
	"fmt"
	"math"

	"rlcint/internal/diag"
	"rlcint/internal/runctl"
)

// VecFunc is a vector-valued function of a vector argument. Implementations
// must write the result into out (len(out) == len(x)) and may return an
// error when the point is outside the function's domain.
type VecFunc func(x, out []float64) error

// NewtonNDResult reports the outcome of a multi-dimensional Newton solve.
type NewtonNDResult struct {
	X          []float64
	Residual   float64
	Iterations int
}

// NewtonNDOptions configures NewtonND.
type NewtonNDOptions struct {
	Tol      float64 // residual infinity-norm tolerance (default 1e-10)
	StepTol  float64 // relative step-size tolerance (default 1e-12)
	MaxIter  int     // default 50
	FDScale  float64 // relative finite-difference step (default 1e-7)
	Damping  bool    // enable backtracking line search (default via DefaultNewtonND)
	MaxHalve int     // max backtracking halvings per iteration (default 12)
	// Lower, when non-nil, gives per-component lower bounds enforced by
	// clipping trial points (used to keep h, k positive).
	Lower []float64
	// Ctl, when non-nil, is consulted at every Newton iteration; a stop
	// (cancellation, deadline, iteration budget) aborts the solve with the
	// typed run-control error.
	Ctl *runctl.Controller
	// WS, when non-nil, supplies reusable scratch storage so repeated
	// solves allocate nothing. The returned Result.X aliases WS storage and
	// is only valid until the next call using the same WS; copy it if it
	// must outlive that.
	WS *NewtonNDWS
}

// NewtonNDWS is reusable scratch state for NewtonND. A zero value is ready
// to use; it grows to the largest system dimension it has seen and is not
// safe for concurrent use.
type NewtonNDWS struct {
	n                       int
	x, fx, ftrial, step, xt []float64
	jac                     []float64
}

func (ws *NewtonNDWS) grow(n int) {
	if n <= ws.n {
		return
	}
	ws.n = n
	ws.x = make([]float64, n)
	ws.fx = make([]float64, n)
	ws.ftrial = make([]float64, n)
	ws.step = make([]float64, n)
	ws.xt = make([]float64, n)
	ws.jac = make([]float64, n*n)
}

// Validate rejects option sets that a plain `== 0` default check would let
// through and silently corrupt convergence testing: negative, NaN, or Inf
// tolerances and budgets. The zero value of each field still means "use the
// default".
func (o NewtonNDOptions) Validate() error {
	names := []string{"Tol", "StepTol", "FDScale"}
	vals := []float64{o.Tol, o.StepTol, o.FDScale}
	for i, v := range vals {
		if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			return diag.Domainf("num.NewtonND", "%s=%g must be a finite non-negative value", names[i], v)
		}
	}
	if o.MaxIter < 0 || o.MaxHalve < 0 {
		return diag.Domainf("num.NewtonND", "negative iteration budget MaxIter=%d MaxHalve=%d", o.MaxIter, o.MaxHalve)
	}
	for i, v := range o.Lower {
		if math.IsNaN(v) {
			return diag.Domainf("num.NewtonND", "Lower[%d] is NaN", i)
		}
	}
	return nil
}

func (o *NewtonNDOptions) defaults() {
	if o.Tol == 0 {
		o.Tol = 1e-10
	}
	if o.StepTol == 0 {
		o.StepTol = 1e-12
	}
	if o.MaxIter == 0 {
		o.MaxIter = 50
	}
	if o.FDScale == 0 {
		o.FDScale = 1e-7
	}
	if o.MaxHalve == 0 {
		o.MaxHalve = 12
	}
}

// NewtonND solves f(x) = 0 with Newton's method using a forward-difference
// Jacobian and a residual-reducing backtracking line search. The Jacobian
// system is solved with dense Gaussian elimination with partial pivoting
// (systems here are 2x2 or 3x3).
func NewtonND(f VecFunc, x0 []float64, opts NewtonNDOptions) (NewtonNDResult, error) {
	if err := opts.Validate(); err != nil {
		return NewtonNDResult{}, err
	}
	for i, v := range x0 {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return NewtonNDResult{}, diag.Domainf("num.NewtonND", "x0[%d]=%g is not finite", i, v)
		}
	}
	opts.defaults()
	n := len(x0)
	ws := opts.WS
	if ws == nil {
		ws = &NewtonNDWS{}
	}
	ws.grow(n)
	x := ws.x[:n]
	copy(x, x0)
	fx := ws.fx[:n]
	ftrial := ws.ftrial[:n]
	jac := ws.jac[:n*n]
	step := ws.step[:n]
	xt := ws.xt[:n]
	for i := range fx {
		fx[i], ftrial[i] = 0, 0
	}

	clip := func(v []float64) {
		if opts.Lower == nil {
			return
		}
		for i := range v {
			if v[i] < opts.Lower[i] {
				v[i] = opts.Lower[i]
			}
		}
	}
	clip(x)
	if err := f(x, fx); err != nil {
		return NewtonNDResult{}, fmt.Errorf("num: NewtonND initial point: %w", err)
	}
	res := NewtonNDResult{X: x}
	for iter := 0; iter < opts.MaxIter; iter++ {
		if err := opts.Ctl.Tick("num.NewtonND"); err != nil {
			res.X = x
			return res, err
		}
		res.Iterations = iter + 1
		r := infNorm(fx)
		res.Residual = r
		if r < opts.Tol {
			return res, nil
		}
		// Forward-difference Jacobian column by column.
		for j := 0; j < n; j++ {
			hstep := fdScale(x[j], opts.FDScale)
			copy(xt, x)
			xt[j] += hstep
			clip(xt)
			dh := xt[j] - x[j]
			if dh == 0 {
				xt[j] = x[j] - hstep
				dh = -hstep
			}
			if err := f(xt, ftrial); err != nil {
				return res, fmt.Errorf("num: NewtonND Jacobian eval: %w", err)
			}
			for i := 0; i < n; i++ {
				jac[i*n+j] = (ftrial[i] - fx[i]) / dh
			}
		}
		for i := 0; i < n; i++ {
			step[i] = -fx[i]
		}
		if err := solveDense(jac, step, n); err != nil {
			de := diag.New(diag.ErrSingularJacobian, "num.NewtonND")
			de.Iteration = iter + 1
			de.Residual = r
			de.Err = err
			return res, de
		}
		// Backtracking line search on the residual norm.
		lambda := 1.0
		improved := false
		for h := 0; h <= opts.MaxHalve; h++ {
			for i := 0; i < n; i++ {
				xt[i] = x[i] + lambda*step[i]
			}
			clip(xt)
			if err := f(xt, ftrial); err == nil {
				if rn := infNorm(ftrial); rn < r || !opts.Damping {
					copy(x, xt)
					copy(fx, ftrial)
					improved = true
					break
				}
			}
			lambda *= 0.5
		}
		if !improved {
			de := diag.New(diag.ErrNonConvergence, "num.NewtonND")
			de.Iteration = iter + 1
			de.Residual = r
			de.Damping = lambda
			de.Detail = "line search stalled"
			de.Err = ErrNoConvergence
			return res, de
		}
		// Step-size convergence.
		small := true
		for i := 0; i < n; i++ {
			if math.Abs(lambda*step[i]) > opts.StepTol*math.Max(math.Abs(x[i]), 1) {
				small = false
				break
			}
		}
		if small {
			if err := f(x, fx); err == nil {
				res.Residual = infNorm(fx)
			}
			res.X = x
			return res, nil
		}
	}
	res.X = x
	de := diag.New(diag.ErrNonConvergence, "num.NewtonND")
	de.Iteration = opts.MaxIter
	de.Residual = res.Residual
	de.Detail = "iteration budget exhausted"
	de.Err = ErrNoConvergence
	return res, de
}

func infNorm(v []float64) float64 {
	m := 0.0
	for _, x := range v {
		if a := math.Abs(x); a > m {
			m = a
		}
	}
	return m
}

// solveDense solves the n-by-n system a*x = b in place (a is row-major and is
// destroyed; b is overwritten with the solution).
func solveDense(a, b []float64, n int) error {
	for col := 0; col < n; col++ {
		// Partial pivot.
		p := col
		maxv := math.Abs(a[col*n+col])
		for r := col + 1; r < n; r++ {
			if v := math.Abs(a[r*n+col]); v > maxv {
				maxv, p = v, r
			}
		}
		if maxv == 0 {
			return fmt.Errorf("singular matrix (column %d)", col)
		}
		if p != col {
			for j := 0; j < n; j++ {
				a[col*n+j], a[p*n+j] = a[p*n+j], a[col*n+j]
			}
			b[col], b[p] = b[p], b[col]
		}
		piv := a[col*n+col]
		for r := col + 1; r < n; r++ {
			m := a[r*n+col] / piv
			if m == 0 {
				continue
			}
			a[r*n+col] = 0
			for j := col + 1; j < n; j++ {
				a[r*n+j] -= m * a[col*n+j]
			}
			b[r] -= m * b[col]
		}
	}
	for r := n - 1; r >= 0; r-- {
		s := b[r]
		for j := r + 1; j < n; j++ {
			s -= a[r*n+j] * b[j]
		}
		b[r] = s / a[r*n+r]
	}
	return nil
}
