package num

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewton1DQuadratic(t *testing.T) {
	f := func(x float64) float64 { return x*x - 2 }
	df := func(x float64) float64 { return 2 * x }
	res, err := Newton1D(f, df, 0, 2, 1, 1e-12, 50)
	if err != nil {
		t.Fatalf("Newton1D: %v", err)
	}
	if math.Abs(res.Root-math.Sqrt2) > 1e-10 {
		t.Errorf("root = %v, want sqrt(2)", res.Root)
	}
	if res.Iterations > 8 {
		t.Errorf("took %d iterations, want fast quadratic convergence", res.Iterations)
	}
}

func TestNewton1DEndpointRoots(t *testing.T) {
	f := func(x float64) float64 { return x }
	df := func(x float64) float64 { return 1 }
	res, err := Newton1D(f, df, 0, 1, 0.5, 1e-12, 50)
	if err != nil || res.Root != 0 {
		t.Errorf("root at left endpoint: got %v, %v", res.Root, err)
	}
	res, err = Newton1D(f, df, -1, 0, -0.5, 1e-12, 50)
	if err != nil || res.Root != 0 {
		t.Errorf("root at right endpoint: got %v, %v", res.Root, err)
	}
}

func TestNewton1DBadBracket(t *testing.T) {
	f := func(x float64) float64 { return x*x + 1 }
	df := func(x float64) float64 { return 2 * x }
	if _, err := Newton1D(f, df, 0, 1, 0.5, 1e-12, 50); err == nil {
		t.Error("expected ErrBadBracket for positive function")
	}
}

func TestNewton1DSafeguardKicksIn(t *testing.T) {
	// f has a flat region that defeats raw Newton (derivative ~0 at start).
	f := func(x float64) float64 { return math.Atan(x - 3) }
	df := func(x float64) float64 { return 1 / (1 + (x-3)*(x-3)) }
	res, err := Newton1D(f, df, -50, 50, -49, 1e-10, 100)
	if err != nil {
		t.Fatalf("Newton1D: %v", err)
	}
	if math.Abs(res.Root-3) > 1e-8 {
		t.Errorf("root = %v, want 3", res.Root)
	}
}

func TestBrentAgainstBisect(t *testing.T) {
	fns := []struct {
		name string
		f    func(float64) float64
		a, b float64
	}{
		{"cubic", func(x float64) float64 { return x*x*x - x - 2 }, 1, 2},
		{"cos", math.Cos, 1, 2},
		{"exp", func(x float64) float64 { return math.Exp(x) - 5 }, 0, 3},
		{"steep", func(x float64) float64 { return math.Tanh(50 * (x - 0.3)) }, 0, 1},
	}
	for _, tc := range fns {
		t.Run(tc.name, func(t *testing.T) {
			got, err := Brent(tc.f, tc.a, tc.b, 1e-13, 200)
			if err != nil {
				t.Fatalf("Brent: %v", err)
			}
			want, err := Bisect(tc.f, tc.a, tc.b, 1e-13, 200)
			if err != nil {
				t.Fatalf("Bisect: %v", err)
			}
			if math.Abs(got-want) > 1e-9 {
				t.Errorf("Brent=%v Bisect=%v", got, want)
			}
		})
	}
}

func TestBrentPropertyLinear(t *testing.T) {
	// Property: for any line with slope m != 0 crossing inside the bracket,
	// Brent recovers the exact root.
	prop := func(m, r float64) bool {
		m = 0.5 + math.Abs(math.Mod(m, 10)) // slope in [0.5, 10.5)
		r = math.Mod(r, 1)                  // root in (-1, 1)
		f := func(x float64) float64 { return m * (x - r) }
		got, err := Brent(f, -2, 2, 1e-14, 100)
		return err == nil && math.Abs(got-r) < 1e-10
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestBracketOut(t *testing.T) {
	f := func(x float64) float64 { return x - 100 }
	a, b, err := BracketOut(f, 0, 1, 40)
	if err != nil {
		t.Fatalf("BracketOut: %v", err)
	}
	if !(a <= 100 && 100 <= b) {
		t.Errorf("bracket [%v,%v] does not contain 100", a, b)
	}
}

func TestFirstCrossingFindsFirst(t *testing.T) {
	// sin crosses 0.5 first at pi/6; a naive solver near a later crossing
	// would find 5pi/6.
	f := func(x float64) float64 { return math.Sin(x) - 0.5 }
	a, b, err := FirstCrossing(f, 0, 10, 200)
	if err != nil {
		t.Fatalf("FirstCrossing: %v", err)
	}
	root, err := Brent(f, a, b, 1e-12, 100)
	if err != nil {
		t.Fatalf("Brent: %v", err)
	}
	if math.Abs(root-math.Pi/6) > 1e-9 {
		t.Errorf("first crossing = %v, want pi/6=%v", root, math.Pi/6)
	}
}

func TestFirstCrossingNone(t *testing.T) {
	f := func(x float64) float64 { return 1 + x*x }
	if _, _, err := FirstCrossing(f, 0, 10, 100); err == nil {
		t.Error("expected error when no crossing exists")
	}
}

func TestBisectBadBracket(t *testing.T) {
	if _, err := Bisect(func(x float64) float64 { return 1 }, 0, 1, 1e-12, 10); err == nil {
		t.Error("expected ErrBadBracket")
	}
}
