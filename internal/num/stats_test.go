package num

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRunningSine(t *testing.T) {
	r := NewRunning()
	n := 20000
	for i := 0; i <= n; i++ {
		time := 2 * math.Pi * float64(i) / float64(n)
		r.Add(time, math.Sin(time))
	}
	if math.Abs(r.Mean()) > 1e-6 {
		t.Errorf("mean of sine over full period = %v, want 0", r.Mean())
	}
	if math.Abs(r.RMS()-1/math.Sqrt2) > 1e-5 {
		t.Errorf("rms = %v, want %v", r.RMS(), 1/math.Sqrt2)
	}
	if math.Abs(r.Peak()-1) > 1e-6 {
		t.Errorf("peak = %v, want 1", r.Peak())
	}
	if math.Abs(r.Max()-1) > 1e-6 || math.Abs(r.Min()+1) > 1e-6 {
		t.Errorf("extrema = [%v, %v], want [-1, 1]", r.Min(), r.Max())
	}
}

func TestRunningConstant(t *testing.T) {
	r := NewRunning()
	for i := 0; i < 10; i++ {
		r.Add(float64(i), 3.5)
	}
	if r.Mean() != 3.5 || math.Abs(r.RMS()-3.5) > 1e-12 {
		t.Errorf("constant signal: mean=%v rms=%v", r.Mean(), r.RMS())
	}
}

func TestRunningEmptyAndSingle(t *testing.T) {
	r := NewRunning()
	if r.Mean() != 0 || r.RMS() != 0 {
		t.Error("empty accumulator must report zeros")
	}
	r.Add(0, 5)
	if r.Mean() != 0 || r.Peak() != 5 {
		t.Errorf("single sample: mean=%v peak=%v", r.Mean(), r.Peak())
	}
}

func TestRunningRMSAtLeastMeanProperty(t *testing.T) {
	// Property: rms >= |mean| for any sample sequence.
	prop := func(vals []float64) bool {
		if len(vals) < 2 {
			return true
		}
		r := NewRunning()
		for i, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
			v = math.Mod(v, 1e6)
			r.Add(float64(i), v)
		}
		return r.RMS() >= math.Abs(r.Mean())-1e-9*math.Abs(r.Mean())-1e-12
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestLinspace(t *testing.T) {
	pts := Linspace(0, 1, 5)
	want := []float64{0, 0.25, 0.5, 0.75, 1}
	for i := range want {
		if math.Abs(pts[i]-want[i]) > 1e-15 {
			t.Errorf("pts[%d] = %v, want %v", i, pts[i], want[i])
		}
	}
	if got := Linspace(3, 9, 1); len(got) != 1 || got[0] != 3 {
		t.Errorf("n=1: got %v", got)
	}
}

func TestLogspace(t *testing.T) {
	pts := Logspace(1, 1000, 4)
	want := []float64{1, 10, 100, 1000}
	for i := range want {
		if math.Abs(pts[i]-want[i])/want[i] > 1e-12 {
			t.Errorf("pts[%d] = %v, want %v", i, pts[i], want[i])
		}
	}
}

func TestClamp(t *testing.T) {
	if Clamp(5, 0, 1) != 1 || Clamp(-5, 0, 1) != 0 || Clamp(0.5, 0, 1) != 0.5 {
		t.Error("Clamp misbehaves")
	}
}

func TestDiffOracles(t *testing.T) {
	f := math.Exp
	if d := CentralDiff(f, 1); math.Abs(d-math.E) > 1e-6 {
		t.Errorf("CentralDiff(exp,1) = %v", d)
	}
	if d := Richardson(f, 1); math.Abs(d-math.E) > 1e-8 {
		t.Errorf("Richardson(exp,1) = %v", d)
	}
	if d := CentralDiff2(f, 0); math.Abs(d-1) > 1e-5 {
		t.Errorf("CentralDiff2(exp,0) = %v", d)
	}
}
