package num

import "math"

// fdScale returns a sensible absolute step for differencing around x: a
// relative step when x is away from zero, otherwise the relative step itself.
func fdScale(x, rel float64) float64 {
	if x != 0 {
		return rel * math.Abs(x)
	}
	return rel
}

// CentralDiff estimates f'(x) with a central difference using a relative
// step. It is used in tests as an oracle against analytic derivatives.
func CentralDiff(f func(float64) float64, x float64) float64 {
	h := fdScale(x, 1e-6)
	return (f(x+h) - f(x-h)) / (2 * h)
}

// CentralDiff2 estimates f”(x) with a second-order central difference.
func CentralDiff2(f func(float64) float64, x float64) float64 {
	h := fdScale(x, 1e-4)
	return (f(x+h) - 2*f(x) + f(x-h)) / (h * h)
}

// Richardson estimates f'(x) by Richardson extrapolation of central
// differences, giving roughly two extra orders of accuracy over CentralDiff
// at the cost of two more evaluations.
func Richardson(f func(float64) float64, x float64) float64 {
	h := fdScale(x, 1e-4)
	d1 := (f(x+h) - f(x-h)) / (2 * h)
	d2 := (f(x+h/2) - f(x-h/2)) / h
	return (4*d2 - d1) / 3
}
