package num

import (
	"math"
	"testing"
)

func TestNewtonND2x2(t *testing.T) {
	// x^2 + y^2 = 4, x*y = 1; solution in the first quadrant with x > y.
	f := func(x, out []float64) error {
		out[0] = x[0]*x[0] + x[1]*x[1] - 4
		out[1] = x[0]*x[1] - 1
		return nil
	}
	res, err := NewtonND(f, []float64{2, 0.3}, NewtonNDOptions{Damping: true})
	if err != nil {
		t.Fatalf("NewtonND: %v", err)
	}
	x, y := res.X[0], res.X[1]
	if math.Abs(x*x+y*y-4) > 1e-8 || math.Abs(x*y-1) > 1e-8 {
		t.Errorf("residuals too large at (%v,%v)", x, y)
	}
}

func TestNewtonNDLinearExact(t *testing.T) {
	// A linear system must converge in one damped Newton iteration.
	f := func(x, out []float64) error {
		out[0] = 2*x[0] + x[1] - 5
		out[1] = x[0] - 3*x[1] + 4
		return nil
	}
	res, err := NewtonND(f, []float64{0, 0}, NewtonNDOptions{Damping: true})
	if err != nil {
		t.Fatalf("NewtonND: %v", err)
	}
	if math.Abs(res.X[0]-11.0/7) > 1e-8 || math.Abs(res.X[1]-13.0/7) > 1e-8 {
		t.Errorf("got %v, want (11/7, 13/7)", res.X)
	}
	if res.Iterations > 3 {
		t.Errorf("linear system took %d iterations", res.Iterations)
	}
}

func TestNewtonNDLowerBound(t *testing.T) {
	// Solve x^2 = 4 restricted to x >= 0 from a start that Newton would
	// otherwise push negative.
	f := func(x, out []float64) error {
		out[0] = x[0]*x[0] - 4
		return nil
	}
	res, err := NewtonND(f, []float64{0.1}, NewtonNDOptions{Damping: true, Lower: []float64{1e-9}})
	if err != nil {
		t.Fatalf("NewtonND: %v", err)
	}
	if math.Abs(res.X[0]-2) > 1e-7 {
		t.Errorf("got %v, want 2", res.X[0])
	}
}

func TestNewtonNDSingular(t *testing.T) {
	f := func(x, out []float64) error {
		out[0] = x[0] + x[1]
		out[1] = 2*x[0] + 2*x[1] + 1 // inconsistent, singular Jacobian
		return nil
	}
	if _, err := NewtonND(f, []float64{1, 1}, NewtonNDOptions{Damping: true}); err == nil {
		t.Error("expected failure on singular system")
	}
}

func TestSolveDense3x3(t *testing.T) {
	a := []float64{
		2, 1, -1,
		-3, -1, 2,
		-2, 1, 2,
	}
	b := []float64{8, -11, -3}
	if err := solveDense(a, b, 3); err != nil {
		t.Fatalf("solveDense: %v", err)
	}
	want := []float64{2, 3, -1}
	for i := range want {
		if math.Abs(b[i]-want[i]) > 1e-12 {
			t.Errorf("x[%d] = %v, want %v", i, b[i], want[i])
		}
	}
}

func TestSolveDenseNeedsPivot(t *testing.T) {
	// Zero on the diagonal forces a row swap.
	a := []float64{
		0, 1,
		1, 0,
	}
	b := []float64{3, 7}
	if err := solveDense(a, b, 2); err != nil {
		t.Fatalf("solveDense: %v", err)
	}
	if b[0] != 7 || b[1] != 3 {
		t.Errorf("got %v, want [7 3]", b)
	}
}

func TestSolveDenseSingular(t *testing.T) {
	a := []float64{1, 2, 2, 4}
	b := []float64{1, 2}
	if err := solveDense(a, b, 2); err == nil {
		t.Error("expected singular-matrix error")
	}
}
