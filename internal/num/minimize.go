package num

import (
	"fmt"
	"math"
	"sort"

	"rlcint/internal/runctl"
)

// GoldenSection minimizes a unimodal scalar function on [a, b] and returns
// the minimizer.
func GoldenSection(f func(float64) float64, a, b, tol float64, maxIter int) (float64, error) {
	if a > b {
		a, b = b, a
	}
	const invPhi = 0.6180339887498949 // 1/phi
	x1 := b - invPhi*(b-a)
	x2 := a + invPhi*(b-a)
	f1, f2 := f(x1), f(x2)
	for i := 0; i < maxIter && (b-a) > tol; i++ {
		if f1 < f2 {
			b, x2, f2 = x2, x1, f1
			x1 = b - invPhi*(b-a)
			f1 = f(x1)
		} else {
			a, x1, f1 = x1, x2, f2
			x2 = a + invPhi*(b-a)
			f2 = f(x2)
		}
	}
	if b-a > tol {
		return 0.5 * (a + b), fmt.Errorf("%w: GoldenSection", ErrNoConvergence)
	}
	return 0.5 * (a + b), nil
}

// NelderMeadOptions configures NelderMead.
type NelderMeadOptions struct {
	Tol        float64 // simplex function-value spread tolerance (default 1e-12 relative)
	MaxIter    int     // default 400*n
	InitScale  float64 // initial simplex edge, relative to |x0| (default 0.05)
	MaxRestart int     // restarts from the best point with a fresh simplex (default 2)
	// Ctl, when non-nil, is consulted once per simplex iteration; a stop
	// aborts the search, returning the best point found so far with the
	// typed run-control error.
	Ctl *runctl.Controller
}

// NelderMead minimizes f starting from x0 using the Nelder–Mead downhill
// simplex method with standard coefficients and optional restarts. f may
// return +Inf to mark infeasible points; the method treats those as very bad
// vertices, which makes simple bound handling (transform or penalize in the
// caller) effective.
func NelderMead(f func([]float64) float64, x0 []float64, opts NelderMeadOptions) ([]float64, float64, error) {
	n := len(x0)
	if opts.Tol == 0 {
		opts.Tol = 1e-12
	}
	if opts.MaxIter == 0 {
		opts.MaxIter = 400 * n
	}
	if opts.InitScale == 0 {
		opts.InitScale = 0.05
	}
	if opts.MaxRestart == 0 {
		opts.MaxRestart = 2
	}

	type vertex struct {
		x []float64
		f float64
	}
	eval := func(x []float64) float64 {
		v := f(x)
		if math.IsNaN(v) {
			return math.Inf(1)
		}
		return v
	}
	buildSimplex := func(center []float64) []vertex {
		s := make([]vertex, n+1)
		for i := range s {
			x := append([]float64(nil), center...)
			if i > 0 {
				d := opts.InitScale * math.Max(math.Abs(x[i-1]), 1e-3)
				x[i-1] += d
			}
			s[i] = vertex{x: x, f: eval(x)}
		}
		return s
	}

	best := vertex{x: append([]float64(nil), x0...), f: eval(x0)}
	iterBudget := opts.MaxIter
	for restart := 0; restart <= opts.MaxRestart; restart++ {
		s := buildSimplex(best.x)
		for iter := 0; iter < iterBudget; iter++ {
			if err := opts.Ctl.Tick("num.NelderMead"); err != nil {
				sort.Slice(s, func(i, j int) bool { return s[i].f < s[j].f })
				if s[0].f < best.f {
					best = vertex{append([]float64(nil), s[0].x...), s[0].f}
				}
				return best.x, best.f, err
			}
			sort.Slice(s, func(i, j int) bool { return s[i].f < s[j].f })
			spread := math.Abs(s[n].f - s[0].f)
			scale := math.Abs(s[0].f) + math.Abs(s[n].f) + 1e-300
			if spread/scale < opts.Tol && !math.IsInf(s[n].f, 1) {
				break
			}
			// Centroid of all but worst.
			cen := make([]float64, n)
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					cen[j] += s[i].x[j]
				}
			}
			for j := range cen {
				cen[j] /= float64(n)
			}
			point := func(coef float64) []float64 {
				p := make([]float64, n)
				for j := 0; j < n; j++ {
					p[j] = cen[j] + coef*(s[n].x[j]-cen[j])
				}
				return p
			}
			xr := point(-1) // reflection
			fr := eval(xr)
			switch {
			case fr < s[0].f:
				xe := point(-2) // expansion
				if fe := eval(xe); fe < fr {
					s[n] = vertex{xe, fe}
				} else {
					s[n] = vertex{xr, fr}
				}
			case fr < s[n-1].f:
				s[n] = vertex{xr, fr}
			default:
				xc := point(0.5) // contraction
				if fc := eval(xc); fc < s[n].f {
					s[n] = vertex{xc, fc}
				} else {
					// Shrink toward best.
					for i := 1; i <= n; i++ {
						for j := 0; j < n; j++ {
							s[i].x[j] = s[0].x[j] + 0.5*(s[i].x[j]-s[0].x[j])
						}
						s[i].f = eval(s[i].x)
					}
				}
			}
		}
		sort.Slice(s, func(i, j int) bool { return s[i].f < s[j].f })
		if s[0].f < best.f {
			best = vertex{append([]float64(nil), s[0].x...), s[0].f}
		}
	}
	if math.IsInf(best.f, 1) {
		return best.x, best.f, fmt.Errorf("%w: NelderMead found no feasible point", ErrNoConvergence)
	}
	return best.x, best.f, nil
}
