package num

import (
	"fmt"
	"math"

	"rlcint/internal/runctl"
)

// GoldenSection minimizes a unimodal scalar function on [a, b] and returns
// the minimizer.
func GoldenSection(f func(float64) float64, a, b, tol float64, maxIter int) (float64, error) {
	if a > b {
		a, b = b, a
	}
	const invPhi = 0.6180339887498949 // 1/phi
	x1 := b - invPhi*(b-a)
	x2 := a + invPhi*(b-a)
	f1, f2 := f(x1), f(x2)
	for i := 0; i < maxIter && (b-a) > tol; i++ {
		if f1 < f2 {
			b, x2, f2 = x2, x1, f1
			x1 = b - invPhi*(b-a)
			f1 = f(x1)
		} else {
			a, x1, f1 = x1, x2, f2
			x2 = a + invPhi*(b-a)
			f2 = f(x2)
		}
	}
	if b-a > tol {
		return 0.5 * (a + b), fmt.Errorf("%w: GoldenSection", ErrNoConvergence)
	}
	return 0.5 * (a + b), nil
}

// NelderMeadOptions configures NelderMead.
type NelderMeadOptions struct {
	Tol        float64 // simplex function-value spread tolerance (default 1e-12 relative)
	MaxIter    int     // default 400*n
	InitScale  float64 // initial simplex edge, relative to |x0| (default 0.05)
	MaxRestart int     // restarts from the best point with a fresh simplex (default 2)
	// Ctl, when non-nil, is consulted once per simplex iteration; a stop
	// aborts the search, returning the best point found so far with the
	// typed run-control error.
	Ctl *runctl.Controller
	// WS, when non-nil, supplies reusable scratch storage so repeated
	// minimizations allocate nothing. The returned minimizer aliases WS
	// storage and is only valid until the next call using the same WS;
	// copy it if it must outlive that.
	WS *NelderMeadWS
}

// NelderMeadWS is reusable scratch state for NelderMead. A zero value is
// ready to use; it grows to the largest problem dimension it has seen and is
// not safe for concurrent use.
type NelderMeadWS struct {
	n     int
	verts [][]float64
	fvals []float64
	cen   []float64
	xr    []float64
	xt    []float64
	best  []float64
}

func (ws *NelderMeadWS) grow(n int) {
	if n <= ws.n {
		return
	}
	ws.n = n
	ws.verts = make([][]float64, n+1)
	for i := range ws.verts {
		ws.verts[i] = make([]float64, n)
	}
	ws.fvals = make([]float64, n+1)
	ws.cen = make([]float64, n)
	ws.xr = make([]float64, n)
	ws.xt = make([]float64, n)
	ws.best = make([]float64, n)
}

func nmEval(f func([]float64) float64, x []float64) float64 {
	v := f(x)
	if math.IsNaN(v) {
		return math.Inf(1)
	}
	return v
}

// nmSort orders the simplex by ascending function value using the exact
// insertion sort sort.Slice applies to slices shorter than 12 elements, so
// the vertex permutation — and hence every downstream FP operation — is
// unchanged from the previous sort.Slice-based implementation while avoiding
// its reflection allocation.
func nmSort(verts [][]float64, fvals []float64) {
	for i := 1; i < len(fvals); i++ {
		for j := i; j > 0 && fvals[j] < fvals[j-1]; j-- {
			fvals[j], fvals[j-1] = fvals[j-1], fvals[j]
			verts[j], verts[j-1] = verts[j-1], verts[j]
		}
	}
}

// nmPoint writes the trial point cen + coef·(worst − cen) into dst.
func nmPoint(dst, cen, worst []float64, coef float64) {
	for j := range dst {
		dst[j] = cen[j] + coef*(worst[j]-cen[j])
	}
}

// NelderMead minimizes f starting from x0 using the Nelder–Mead downhill
// simplex method with standard coefficients and optional restarts. f may
// return +Inf to mark infeasible points; the method treats those as very bad
// vertices, which makes simple bound handling (transform or penalize in the
// caller) effective. When opts.WS is non-nil the returned slice aliases the
// workspace (see NelderMeadOptions.WS).
func NelderMead(f func([]float64) float64, x0 []float64, opts NelderMeadOptions) ([]float64, float64, error) {
	n := len(x0)
	if opts.Tol == 0 {
		opts.Tol = 1e-12
	}
	if opts.MaxIter == 0 {
		opts.MaxIter = 400 * n
	}
	if opts.InitScale == 0 {
		opts.InitScale = 0.05
	}
	if opts.MaxRestart == 0 {
		opts.MaxRestart = 2
	}
	ws := opts.WS
	if ws == nil {
		ws = &NelderMeadWS{}
	}
	ws.grow(n)
	verts := ws.verts[:n+1]
	for i := range verts {
		verts[i] = verts[i][:n]
	}
	fvals := ws.fvals[:n+1]
	cen := ws.cen[:n]
	xr := ws.xr[:n]
	xt := ws.xt[:n]
	bestX := ws.best[:n]

	copy(bestX, x0)
	bestF := nmEval(f, x0)
	iterBudget := opts.MaxIter
	for restart := 0; restart <= opts.MaxRestart; restart++ {
		// Fresh simplex around the best point so far.
		for i := 0; i <= n; i++ {
			copy(verts[i], bestX)
			if i > 0 {
				d := opts.InitScale * math.Max(math.Abs(verts[i][i-1]), 1e-3)
				verts[i][i-1] += d
			}
			fvals[i] = nmEval(f, verts[i])
		}
		for iter := 0; iter < iterBudget; iter++ {
			if err := opts.Ctl.Tick("num.NelderMead"); err != nil {
				nmSort(verts, fvals)
				if fvals[0] < bestF {
					copy(bestX, verts[0])
					bestF = fvals[0]
				}
				return bestX, bestF, err
			}
			nmSort(verts, fvals)
			spread := math.Abs(fvals[n] - fvals[0])
			scale := math.Abs(fvals[0]) + math.Abs(fvals[n]) + 1e-300
			if spread/scale < opts.Tol && !math.IsInf(fvals[n], 1) {
				break
			}
			// Centroid of all but worst.
			for j := range cen {
				cen[j] = 0
			}
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					cen[j] += verts[i][j]
				}
			}
			for j := range cen {
				cen[j] /= float64(n)
			}
			nmPoint(xr, cen, verts[n], -1) // reflection
			fr := nmEval(f, xr)
			switch {
			case fr < fvals[0]:
				nmPoint(xt, cen, verts[n], -2) // expansion
				if fe := nmEval(f, xt); fe < fr {
					copy(verts[n], xt)
					fvals[n] = fe
				} else {
					copy(verts[n], xr)
					fvals[n] = fr
				}
			case fr < fvals[n-1]:
				copy(verts[n], xr)
				fvals[n] = fr
			default:
				nmPoint(xt, cen, verts[n], 0.5) // contraction
				if fc := nmEval(f, xt); fc < fvals[n] {
					copy(verts[n], xt)
					fvals[n] = fc
				} else {
					// Shrink toward best.
					for i := 1; i <= n; i++ {
						for j := 0; j < n; j++ {
							verts[i][j] = verts[0][j] + 0.5*(verts[i][j]-verts[0][j])
						}
						fvals[i] = nmEval(f, verts[i])
					}
				}
			}
		}
		nmSort(verts, fvals)
		if fvals[0] < bestF {
			copy(bestX, verts[0])
			bestF = fvals[0]
		}
	}
	if math.IsInf(bestF, 1) {
		return bestX, bestF, fmt.Errorf("%w: NelderMead found no feasible point", ErrNoConvergence)
	}
	return bestX, bestF, nil
}
