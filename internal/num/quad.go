package num

import "math"

// Simpson integrates f over [a, b] with n (even) uniform panels.
func Simpson(f func(float64) float64, a, b float64, n int) float64 {
	if n < 2 {
		n = 2
	}
	if n%2 != 0 {
		n++
	}
	h := (b - a) / float64(n)
	s := f(a) + f(b)
	for i := 1; i < n; i++ {
		x := a + float64(i)*h
		if i%2 == 1 {
			s += 4 * f(x)
		} else {
			s += 2 * f(x)
		}
	}
	return s * h / 3
}

// AdaptiveSimpson integrates f over [a, b] to absolute tolerance tol using
// recursive adaptive Simpson quadrature with a recursion-depth cap.
func AdaptiveSimpson(f func(float64) float64, a, b, tol float64) float64 {
	fa, fb := f(a), f(b)
	m := 0.5 * (a + b)
	fm := f(m)
	whole := (b - a) / 6 * (fa + 4*fm + fb)
	return adaptiveSimpsonAux(f, a, b, fa, fb, fm, whole, tol, 50)
}

func adaptiveSimpsonAux(f func(float64) float64, a, b, fa, fb, fm, whole, tol float64, depth int) float64 {
	m := 0.5 * (a + b)
	lm := 0.5 * (a + m)
	rm := 0.5 * (m + b)
	flm, frm := f(lm), f(rm)
	left := (m - a) / 6 * (fa + 4*flm + fm)
	right := (b - m) / 6 * (fm + 4*frm + fb)
	if depth <= 0 || math.Abs(left+right-whole) <= 15*tol {
		return left + right + (left+right-whole)/15
	}
	return adaptiveSimpsonAux(f, a, m, fa, fm, flm, left, tol/2, depth-1) +
		adaptiveSimpsonAux(f, m, b, fm, fb, frm, right, tol/2, depth-1)
}
