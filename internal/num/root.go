package num

import (
	"fmt"
	"math"

	"rlcint/internal/diag"
)

// ErrNoConvergence is returned when an iterative routine exhausts its
// iteration budget without meeting its tolerance. It wraps
// diag.ErrNonConvergence, so callers can match either sentinel.
var ErrNoConvergence = fmt.Errorf("num: no convergence: %w", diag.ErrNonConvergence)

// ErrBadBracket is returned when a bracketing routine is handed an interval
// whose endpoints do not straddle a root. It wraps diag.ErrDomain.
var ErrBadBracket = fmt.Errorf("num: endpoints do not bracket a root: %w", diag.ErrDomain)

// NewtonResult reports the outcome of a scalar Newton solve.
type NewtonResult struct {
	Root       float64
	Iterations int
	// Bisections counts safeguard steps taken instead of Newton steps.
	Bisections int
}

// fn1 and fdf adapt plain closure-based callers onto the generic
// state-carrying solver bodies below, so both entry points share one
// implementation (and hence stay bit-identical) while hot callers can avoid
// the closure allocations entirely by passing static functions plus a value
// state.
type fn1 struct{ f func(float64) float64 }

func callFn1(s fn1, x float64) float64 { return s.f(x) }

type fdf struct{ f, df func(float64) float64 }

func callF(s fdf, x float64) float64  { return s.f(x) }
func callDF(s fdf, x float64) float64 { return s.df(x) }

// Newton1D finds a root of f inside [a, b] using Newton's method with a
// bisection safeguard. df is the derivative of f. f(a) and f(b) must have
// opposite signs (one may be zero). The safeguard guarantees global
// convergence: whenever a Newton step would leave the current bracket or
// fails to shrink the residual, a bisection step is substituted and the
// bracket is maintained throughout.
//
// tol is an absolute tolerance on the root location; iteration also stops
// when |f| underflows to zero.
func Newton1D(f, df func(float64) float64, a, b, x0, tol float64, maxIter int) (NewtonResult, error) {
	return Newton1DS(callF, callDF, fdf{f: f, df: df}, a, b, x0, tol, maxIter)
}

// Newton1DS is Newton1D over a state-carrying function pair: f and df are
// static functions receiving the caller's state s, so repeated solves on a
// hot path allocate no closures. The algorithm is identical to Newton1D
// (which delegates here).
func Newton1DS[S any](f, df func(S, float64) float64, s S, a, b, x0, tol float64, maxIter int) (NewtonResult, error) {
	if a > b {
		a, b = b, a
	}
	fa, fb := f(s, a), f(s, b)
	if fa == 0 {
		return NewtonResult{Root: a}, nil
	}
	if fb == 0 {
		return NewtonResult{Root: b}, nil
	}
	if math.Signbit(fa) == math.Signbit(fb) {
		return NewtonResult{}, fmt.Errorf("%w: f(%g)=%g, f(%g)=%g", ErrBadBracket, a, fa, b, fb)
	}
	x := x0
	if x < a || x > b || math.IsNaN(x) {
		x = 0.5 * (a + b)
	}
	res := NewtonResult{}
	for i := 0; i < maxIter; i++ {
		res.Iterations = i + 1
		fx := f(s, x)
		if fx == 0 || math.Abs(b-a) < tol {
			res.Root = x
			return res, nil
		}
		// Shrink the bracket with the new sample.
		if math.Signbit(fx) == math.Signbit(fa) {
			a, fa = x, fx
		} else {
			b, fb = x, fx
		}
		dfx := df(s, x)
		var xn float64
		if dfx != 0 {
			xn = x - fx/dfx
		} else {
			xn = math.NaN()
		}
		if math.IsNaN(xn) || xn <= a || xn >= b {
			// Newton step rejected: bisect.
			xn = 0.5 * (a + b)
			res.Bisections++
		}
		if math.Abs(xn-x) < tol {
			res.Root = xn
			return res, nil
		}
		x = xn
	}
	res.Root = x
	if math.Abs(b-a) < 16*tol {
		return res, nil
	}
	return res, fmt.Errorf("%w: Newton1D after %d iterations (bracket width %g)", ErrNoConvergence, maxIter, b-a)
}

// Brent finds a root of f in [a, b] using Brent's method (inverse quadratic
// interpolation with bisection safeguards). f(a) and f(b) must straddle zero.
func Brent(f func(float64) float64, a, b, tol float64, maxIter int) (float64, error) {
	return BrentS(callFn1, fn1{f: f}, a, b, tol, maxIter)
}

// BrentS is Brent over a state-carrying function, for closure-free hot
// paths. The algorithm is identical to Brent (which delegates here).
func BrentS[S any](f func(S, float64) float64, s S, a, b, tol float64, maxIter int) (float64, error) {
	fa, fb := f(s, a), f(s, b)
	if fa == 0 {
		return a, nil
	}
	if fb == 0 {
		return b, nil
	}
	if math.Signbit(fa) == math.Signbit(fb) {
		return 0, fmt.Errorf("%w: f(%g)=%g, f(%g)=%g", ErrBadBracket, a, fa, b, fb)
	}
	c, fc := a, fa
	d, e := b-a, b-a
	for i := 0; i < maxIter; i++ {
		if math.Abs(fc) < math.Abs(fb) {
			a, b, c = b, c, b
			fa, fb, fc = fb, fc, fb
		}
		const eps = 2.220446049250313e-16
		tol1 := 2*eps*math.Abs(b) + 0.5*tol
		xm := 0.5 * (c - b)
		if math.Abs(xm) <= tol1 || fb == 0 {
			return b, nil
		}
		if math.Abs(e) >= tol1 && math.Abs(fa) > math.Abs(fb) {
			s := fb / fa
			var p, q float64
			if a == c {
				p = 2 * xm * s
				q = 1 - s
			} else {
				q = fa / fc
				r := fb / fc
				p = s * (2*xm*q*(q-r) - (b-a)*(r-1))
				q = (q - 1) * (r - 1) * (s - 1)
			}
			if p > 0 {
				q = -q
			}
			p = math.Abs(p)
			if 2*p < math.Min(3*xm*q-math.Abs(tol1*q), math.Abs(e*q)) {
				e, d = d, p/q
			} else {
				d, e = xm, xm
			}
		} else {
			d, e = xm, xm
		}
		a, fa = b, fb
		if math.Abs(d) > tol1 {
			b += d
		} else {
			b += math.Copysign(tol1, xm)
		}
		fb = f(s, b)
		if (fb > 0) == (fc > 0) {
			c, fc = a, fa
			d, e = b-a, b-a
		}
	}
	return b, fmt.Errorf("%w: Brent after %d iterations", ErrNoConvergence, maxIter)
}

// Bisect performs plain bisection; it is used as a last-resort fallback and
// in tests as an oracle for the faster root finders.
func Bisect(f func(float64) float64, a, b, tol float64, maxIter int) (float64, error) {
	fa, fb := f(a), f(b)
	if fa == 0 {
		return a, nil
	}
	if fb == 0 {
		return b, nil
	}
	if math.Signbit(fa) == math.Signbit(fb) {
		return 0, ErrBadBracket
	}
	for i := 0; i < maxIter && math.Abs(b-a) > tol; i++ {
		m := 0.5 * (a + b)
		fm := f(m)
		if fm == 0 {
			return m, nil
		}
		if math.Signbit(fm) == math.Signbit(fa) {
			a, fa = m, fm
		} else {
			b = m
		}
	}
	return 0.5 * (a + b), nil
}

// BracketOut expands an initial guess interval geometrically until it
// brackets a sign change of f or the expansion budget is exhausted.
// It returns the bracketing interval.
func BracketOut(f func(float64) float64, a, b float64, maxExpand int) (float64, float64, error) {
	if a == b {
		b = a + 1
	}
	if a > b {
		a, b = b, a
	}
	fa, fb := f(a), f(b)
	const grow = 1.6
	for i := 0; i < maxExpand; i++ {
		if math.Signbit(fa) != math.Signbit(fb) || fa == 0 || fb == 0 {
			return a, b, nil
		}
		if math.Abs(fa) < math.Abs(fb) {
			a -= grow * (b - a)
			fa = f(a)
		} else {
			b += grow * (b - a)
			fb = f(b)
		}
	}
	return a, b, fmt.Errorf("%w: BracketOut", ErrBadBracket)
}

// FirstCrossing scans [t0, t1] with n samples for the first sign change of f
// and returns a bracketing subinterval. It is used to locate the *first*
// threshold crossing of oscillatory step responses, where plain Newton could
// converge to a later crossing.
func FirstCrossing(f func(float64) float64, t0, t1 float64, n int) (float64, float64, error) {
	return FirstCrossingS(callFn1, fn1{f: f}, t0, t1, n)
}

// FirstCrossingS is FirstCrossing over a state-carrying function, for
// closure-free hot paths. The algorithm is identical to FirstCrossing
// (which delegates here).
func FirstCrossingS[S any](f func(S, float64) float64, s S, t0, t1 float64, n int) (float64, float64, error) {
	lo, hi, ok := CrossingScanS(f, s, t0, t1, n)
	if !ok {
		return 0, 0, fmt.Errorf("%w: no crossing in [%g,%g]", ErrBadBracket, t0, t1)
	}
	return lo, hi, nil
}

// CrossingScanS is FirstCrossingS with a boolean verdict instead of an
// error: ok reports whether a sign change was found. It exists for probes
// where "no crossing" is an expected, frequent outcome (e.g. the seeded
// delay solve's first-crossing guard) and allocating an error per call would
// put garbage on a zero-alloc path.
func CrossingScanS[S any](f func(S, float64) float64, s S, t0, t1 float64, n int) (lo, hi float64, ok bool) {
	if n < 2 {
		n = 2
	}
	prevT := t0
	prevF := f(s, t0)
	if prevF == 0 {
		return t0, t0, true
	}
	dt := (t1 - t0) / float64(n)
	for i := 1; i <= n; i++ {
		t := t0 + float64(i)*dt
		ft := f(s, t)
		if ft == 0 {
			return t, t, true
		}
		if math.Signbit(ft) != math.Signbit(prevF) {
			return prevT, t, true
		}
		prevT, prevF = t, ft
	}
	return 0, 0, false
}
