package num

import (
	"math"
	"testing"
)

// TestNewtonNDWorkspaceBitIdentical: solving with a caller-owned workspace —
// including a workspace reused across different problems — returns results
// bit-identical to the allocating path.
func TestNewtonNDWorkspaceBitIdentical(t *testing.T) {
	problems := []struct {
		f  VecFunc
		x0 []float64
	}{
		{func(x, out []float64) error {
			out[0] = x[0]*x[0] + x[1]*x[1] - 4
			out[1] = x[0]*x[1] - 1
			return nil
		}, []float64{2, 0.3}},
		{func(x, out []float64) error {
			out[0] = 2*x[0] + x[1] - 5
			out[1] = x[0] - 3*x[1] + 4
			return nil
		}, []float64{0, 0}},
		{func(x, out []float64) error {
			out[0] = math.Exp(x[0]) - 2
			return nil
		}, []float64{0}},
	}
	ws := &NewtonNDWS{}
	for round := 0; round < 3; round++ {
		for pi, pr := range problems {
			x0a := append([]float64(nil), pr.x0...)
			ra, erra := NewtonND(pr.f, x0a, NewtonNDOptions{Damping: true})
			x0b := append([]float64(nil), pr.x0...)
			rb, errb := NewtonND(pr.f, x0b, NewtonNDOptions{Damping: true, WS: ws})
			if (erra == nil) != (errb == nil) {
				t.Fatalf("round %d problem %d: err %v vs %v", round, pi, erra, errb)
			}
			if ra.Iterations != rb.Iterations || len(ra.X) != len(rb.X) {
				t.Fatalf("round %d problem %d: %+v vs %+v", round, pi, ra, rb)
			}
			for i := range ra.X {
				if ra.X[i] != rb.X[i] {
					t.Fatalf("round %d problem %d: X[%d] %x != %x (not bit-identical)",
						round, pi, i, ra.X[i], rb.X[i])
				}
			}
		}
	}
}

// TestNelderMeadWorkspaceBitIdentical mirrors the Newton check for the
// simplex fallback, reusing one workspace across dimensions.
func TestNelderMeadWorkspaceBitIdentical(t *testing.T) {
	rosen := func(x []float64) float64 {
		a := 1 - x[0]
		b := x[1] - x[0]*x[0]
		return a*a + 100*b*b
	}
	quad1 := func(x []float64) float64 { return (x[0] - 3) * (x[0] - 3) }
	problems := []struct {
		f  func([]float64) float64
		x0 []float64
	}{
		{rosen, []float64{-1.2, 1}},
		{quad1, []float64{0}},
		{rosen, []float64{0.5, 0.5}},
	}
	ws := &NelderMeadWS{}
	for round := 0; round < 3; round++ {
		for pi, pr := range problems {
			xa, fa, erra := NelderMead(pr.f, append([]float64(nil), pr.x0...),
				NelderMeadOptions{MaxIter: 4000})
			xb, fb, errb := NelderMead(pr.f, append([]float64(nil), pr.x0...),
				NelderMeadOptions{MaxIter: 4000, WS: ws})
			if (erra == nil) != (errb == nil) {
				t.Fatalf("round %d problem %d: err %v vs %v", round, pi, erra, errb)
			}
			if fa != fb {
				t.Fatalf("round %d problem %d: fval %x != %x (not bit-identical)", round, pi, fa, fb)
			}
			for i := range xa {
				if xa[i] != xb[i] {
					t.Fatalf("round %d problem %d: x[%d] %x != %x", round, pi, i, xa[i], xb[i])
				}
			}
		}
	}
}

// TestNewtonNDWorkspaceZeroAlloc pins the steady-state allocation behavior
// of the workspace-backed solver.
func TestNewtonNDWorkspaceZeroAlloc(t *testing.T) {
	f := func(x, out []float64) error {
		out[0] = x[0]*x[0] + x[1]*x[1] - 4
		out[1] = x[0]*x[1] - 1
		return nil
	}
	ws := &NewtonNDWS{}
	x0 := make([]float64, 2)
	opts := NewtonNDOptions{Damping: true, WS: ws}
	// Warm the workspace buffers once.
	x0[0], x0[1] = 2, 0.3
	if _, err := NewtonND(f, x0, opts); err != nil {
		t.Fatal(err)
	}
	if a := testing.AllocsPerRun(50, func() {
		x0[0], x0[1] = 2, 0.3
		if _, err := NewtonND(f, x0, opts); err != nil {
			t.Fatal(err)
		}
	}); a != 0 {
		t.Errorf("workspace-backed NewtonND allocates %v/op", a)
	}
}
