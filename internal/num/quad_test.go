package num

import (
	"math"
	"testing"
)

func TestSimpsonPolynomialExact(t *testing.T) {
	// Simpson is exact for cubics.
	f := func(x float64) float64 { return x*x*x - 2*x + 1 }
	got := Simpson(f, 0, 2, 4)
	want := 4.0 - 4 + 2 // ∫ = x^4/4 - x^2 + x over [0,2]
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("Simpson = %v, want %v", got, want)
	}
}

func TestAdaptiveSimpsonSin(t *testing.T) {
	got := AdaptiveSimpson(math.Sin, 0, math.Pi, 1e-12)
	if math.Abs(got-2) > 1e-9 {
		t.Errorf("∫sin over [0,pi] = %v, want 2", got)
	}
}

func TestAdaptiveSimpsonPeaked(t *testing.T) {
	// Narrow Gaussian: adaptive refinement required.
	f := func(x float64) float64 { return math.Exp(-1000 * (x - 0.5) * (x - 0.5)) }
	got := AdaptiveSimpson(f, 0, 1, 1e-12)
	want := math.Sqrt(math.Pi / 1000)
	if math.Abs(got-want) > 1e-8 {
		t.Errorf("peaked integral = %v, want %v", got, want)
	}
}

func TestSimpsonOddPanelsRounded(t *testing.T) {
	// n is rounded up to even; result must still be finite and close.
	got := Simpson(math.Cos, 0, 1, 3)
	if math.Abs(got-math.Sin(1)) > 1e-4 {
		t.Errorf("Simpson with odd n = %v, want %v", got, math.Sin(1))
	}
}
