package num

import "math"

// Running accumulates streaming statistics of a sampled signal: extrema,
// mean and rms over (possibly non-uniform) time steps using trapezoidal
// time-weighting. It is used by simulation probes for peak/rms current.
type Running struct {
	n        int
	tPrev    float64
	vPrev    float64
	duration float64
	integral float64 // ∫ v dt
	sqInt    float64 // ∫ v² dt
	min, max float64
}

// NewRunning returns an empty accumulator.
func NewRunning() *Running {
	return &Running{min: math.Inf(1), max: math.Inf(-1)}
}

// Add appends a sample v at time t. Times must be non-decreasing.
func (r *Running) Add(t, v float64) {
	if r.n > 0 {
		dt := t - r.tPrev
		if dt > 0 {
			r.duration += dt
			r.integral += 0.5 * (v + r.vPrev) * dt
			r.sqInt += 0.5 * (v*v + r.vPrev*r.vPrev) * dt
		}
	}
	if v < r.min {
		r.min = v
	}
	if v > r.max {
		r.max = v
	}
	r.tPrev, r.vPrev = t, v
	r.n++
}

// N returns the number of samples seen.
func (r *Running) N() int { return r.n }

// Min returns the smallest sample (+Inf when empty).
func (r *Running) Min() float64 { return r.min }

// Max returns the largest sample (-Inf when empty).
func (r *Running) Max() float64 { return r.max }

// Peak returns the largest absolute sample value.
func (r *Running) Peak() float64 {
	return math.Max(math.Abs(r.min), math.Abs(r.max))
}

// Mean returns the time-weighted mean, or 0 when fewer than two samples.
func (r *Running) Mean() float64 {
	if r.duration == 0 {
		return 0
	}
	return r.integral / r.duration
}

// RMS returns the time-weighted root-mean-square, or 0 when fewer than two
// samples.
func (r *Running) RMS() float64 {
	if r.duration == 0 {
		return 0
	}
	return math.Sqrt(r.sqInt / r.duration)
}

// Clamp limits x to [lo, hi].
func Clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// Linspace returns n points uniformly spaced over [a, b] inclusive.
func Linspace(a, b float64, n int) []float64 {
	if n <= 1 {
		return []float64{a}
	}
	out := make([]float64, n)
	d := (b - a) / float64(n-1)
	for i := range out {
		out[i] = a + float64(i)*d
	}
	out[n-1] = b
	return out
}

// Logspace returns n points logarithmically spaced over [a, b] inclusive;
// a and b must be positive.
func Logspace(a, b float64, n int) []float64 {
	la, lb := math.Log(a), math.Log(b)
	pts := Linspace(la, lb, n)
	for i, p := range pts {
		pts[i] = math.Exp(p)
	}
	if n > 1 {
		pts[0], pts[n-1] = a, b
	}
	return pts
}
