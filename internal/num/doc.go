// Package num provides the small numerical substrate used throughout the
// library: safeguarded scalar root finding (Newton, Brent), multi-dimensional
// Newton with finite-difference Jacobians, derivative estimation, scalar and
// multi-dimensional minimization (golden section, Nelder–Mead), adaptive
// quadrature and running statistics.
//
// Everything here is deliberately dependency-free and allocation-light; these
// routines sit in the inner loops of the delay solver and the repeater
// optimizer.
package num
