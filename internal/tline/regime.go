package tline

import "math"

// Attenuation returns the low-loss attenuation factor exp(−r·h/(2·Z0)) of a
// length-h segment: the fraction of an incident wave surviving one traversal.
// It is 0 for an RC line (Z0LC = 0, infinite loss in this metric).
func (l Line) Attenuation(h float64) float64 {
	z0 := l.Z0LC()
	if z0 == 0 {
		return 0
	}
	return math.Exp(-l.R * h / (2 * z0))
}

// TransmissionLineRegime reports whether transmission-line (inductance)
// effects matter for a length-h segment driven with rise time tr, using the
// two classical window conditions (Deutsch et al. [6]):
//
//	tr/2 < time of flight      (the edge is faster than the line)
//	R_total < 2·Z0             (the line is not overdamped by loss)
//
// Both must hold for significant waveform ringing.
func (l Line) TransmissionLineRegime(h, tr float64) bool {
	if l.L == 0 {
		return false
	}
	tof := l.TimeOfFlight(h)
	return tr/2 < tof && l.R*h < 2*l.Z0LC()
}

// CriticalLengthRange returns the [min, max] segment lengths over which
// transmission-line effects matter for rise time tr: below min the line is
// electrically short; above max resistance damps the waves. Returns
// (0, 0) when the window is empty (e.g. an RC line).
func (l Line) CriticalLengthRange(tr float64) (hMin, hMax float64) {
	if l.L == 0 {
		return 0, 0
	}
	v := l.Velocity()
	hMin = tr / 2 * v
	hMax = 2 * l.Z0LC() / l.R
	if hMin >= hMax {
		return 0, 0
	}
	return hMin, hMax
}
