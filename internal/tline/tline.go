// Package tline models the uniform distributed RLC transmission line and
// the paper's driver–line–load stage (its Figure 1): characteristic
// impedance, propagation constant, exact ABCD two-ports, the exact transfer
// function of Eq. (1), its power-series (moment) expansion in s, Elmore
// delay, and lumped-ladder discretization for time-domain simulation.
package tline

import (
	"fmt"
	"math"
	"math/cmplx"

	"rlcint/internal/diag"
	"rlcint/internal/poly"
)

// Line holds per-unit-length parameters of a uniform line, SI units.
type Line struct {
	R float64 // Ω/m
	L float64 // H/m
	C float64 // F/m
}

// Validate rejects non-physical parameter sets (R and C must be positive;
// L may be zero for the RC limit). NaN/Inf values — which plain sign
// comparisons would let through — are rejected with a diag.ErrDomain-
// matchable error.
func (l Line) Validate() error {
	if err := diag.CheckFinite("tline.Line",
		[]string{"R", "L", "C"}, []float64{l.R, l.L, l.C}); err != nil {
		return err
	}
	if l.R <= 0 || l.C <= 0 || l.L < 0 {
		return fmt.Errorf("tline: invalid line parameters r=%g l=%g c=%g: %w", l.R, l.L, l.C, diag.ErrDomain)
	}
	return nil
}

// Z0 returns the characteristic impedance √((r+sl)/(sc)) at complex
// frequency s.
func (l Line) Z0(s complex128) complex128 {
	return cmplx.Sqrt((complex(l.R, 0) + s*complex(l.L, 0)) / (s * complex(l.C, 0)))
}

// Gamma returns the propagation constant θ = √((r+sl)sc) at s.
func (l Line) Gamma(s complex128) complex128 {
	return cmplx.Sqrt((complex(l.R, 0) + s*complex(l.L, 0)) * s * complex(l.C, 0))
}

// Z0LC returns the lossless characteristic impedance √(l/c), the asymptote
// the paper's optimal driver impedance approaches at large inductance. It is
// zero for an RC line.
func (l Line) Z0LC() float64 { return math.Sqrt(l.L / l.C) }

// Velocity returns the lossless propagation velocity 1/√(lc), +Inf for an
// RC line.
func (l Line) Velocity() float64 {
	if l.L == 0 {
		return math.Inf(1)
	}
	return 1 / math.Sqrt(l.L*l.C)
}

// TimeOfFlight returns h/velocity, the lossless wave delay over length h.
func (l Line) TimeOfFlight(h float64) float64 {
	if l.L == 0 {
		return 0
	}
	return h * math.Sqrt(l.L*l.C)
}

// ABCD is a complex two-port transmission (chain) matrix
// [A B; C D] relating (V1, I1) to (V2, I2).
type ABCD struct{ A, B, C, D complex128 }

// Cascade returns m followed by n (m·n).
func (m ABCD) Cascade(n ABCD) ABCD {
	return ABCD{
		A: m.A*n.A + m.B*n.C,
		B: m.A*n.B + m.B*n.D,
		C: m.C*n.A + m.D*n.C,
		D: m.C*n.B + m.D*n.D,
	}
}

// SeriesZ returns the ABCD matrix of a series impedance z.
func SeriesZ(z complex128) ABCD { return ABCD{A: 1, B: z, C: 0, D: 1} }

// ShuntY returns the ABCD matrix of a shunt admittance y.
func ShuntY(y complex128) ABCD { return ABCD{A: 1, B: 0, C: y, D: 1} }

// LineABCD returns the exact ABCD matrix of a length-h segment of the line
// at complex frequency s:
//
//	[ cosh(θh)        Z0 sinh(θh) ]
//	[ sinh(θh)/Z0     cosh(θh)    ]
func (l Line) LineABCD(s complex128, h float64) ABCD {
	th := l.Gamma(s) * complex(h, 0)
	z0 := l.Z0(s)
	ch := cmplx.Cosh(th)
	sh := cmplx.Sinh(th)
	return ABCD{A: ch, B: z0 * sh, C: sh / z0, D: ch}
}

// Stage is the paper's Figure 1: a repeater with series resistance RS and
// output parasitic capacitance CP driving a length-H segment of Line, loaded
// by the next repeater's input capacitance CL.
type Stage struct {
	Line Line
	H    float64 // segment length, m
	RS   float64 // driver series resistance, Ω
	CP   float64 // driver output parasitic capacitance, F
	CL   float64 // load capacitance, F
}

// Validate rejects non-physical stages: a bad line, NaN/Inf driver or load
// parameters, or non-positive segment length. Domain violations match
// diag.ErrDomain.
func (st Stage) Validate() error {
	if err := st.Line.Validate(); err != nil {
		return err
	}
	if err := diag.CheckFinite("tline.Stage",
		[]string{"H", "RS", "CP", "CL"}, []float64{st.H, st.RS, st.CP, st.CL}); err != nil {
		return err
	}
	if st.H <= 0 || st.RS < 0 || st.CP < 0 || st.CL < 0 {
		return fmt.Errorf("tline: invalid stage h=%g rs=%g cp=%g cl=%g: %w",
			st.H, st.RS, st.CP, st.CL, diag.ErrDomain)
	}
	return nil
}

// TransferExact evaluates the exact Eq. (1) transfer function
// Vo(s)/Vi(s) = 1/D(s) with
// D(s) = [1+sRS(CP+CL)]cosh(θh) + [RS/Z0 + sCL·Z0 + s²RS·CP·CL·Z0]·sinh(θh).
func (st Stage) TransferExact(s complex128) complex128 {
	l := st.Line
	th := l.Gamma(s) * complex(st.H, 0)
	z0 := l.Z0(s)
	ch := cmplx.Cosh(th)
	sh := cmplx.Sinh(th)
	rs := complex(st.RS, 0)
	cp := complex(st.CP, 0)
	cl := complex(st.CL, 0)
	d := (1+s*rs*(cp+cl))*ch + (rs/z0+s*cl*z0+s*s*rs*cp*cl*z0)*sh
	return 1 / d
}

// DenominatorSeries returns the first n coefficients (ascending powers of s)
// of the exact denominator D(s). Coefficient 0 is always 1; coefficients 1
// and 2 are the paper's b1 and b2. The expansion is exact to the returned
// order: it is built with truncated polynomial arithmetic from
//
//	(θh)² = s·rch² + s²·lch²,
//	cosh(θh)        = Σ (θh)^{2n}/(2n)!,
//	sinh(θh)/(θh)   = Σ (θh)^{2n}/(2n+1)!,
//
// using sinh(θh)/Z0 = sc·h·S(s) and Z0·sinh(θh) = (r+sl)·h·S(s) where
// S = sinh(θh)/(θh).
func (st Stage) DenominatorSeries(n int) []float64 {
	if n < 1 {
		return nil
	}
	l := st.Line
	h := st.H
	// x2 represents (θh)² as a polynomial in s.
	x2 := poly.New(0, l.R*l.C*h*h, l.L*l.C*h*h)
	cosh := poly.New(1)
	shOverTh := poly.New(1)
	pow := poly.New(1) // x2^k, truncated
	fact := 1.0
	for k := 1; 2*k-1 < 2*n; k++ { // enough terms: x2^k contributes from s^k
		pow = pow.MulTrunc(x2, n)
		if pow.Degree() < 0 {
			break
		}
		fact *= float64(2*k-1) * float64(2*k)
		cosh = cosh.Add(pow.Scale(1 / fact))
		shOverTh = shOverTh.Add(pow.Scale(1 / (fact * float64(2*k+1))))
	}
	rs, cp, cl := st.RS, st.CP, st.CL
	// Term 1: (1 + s·RS(CP+CL))·cosh.
	t1 := poly.New(1, rs*(cp+cl)).MulTrunc(cosh, n)
	// Term 2: RS·sinh/Z0 = RS·s·c·h·S.
	t2 := poly.New(0, rs*l.C*h).MulTrunc(shOverTh, n)
	// Term 3: s·CL·Z0·sinh = s·CL·(r+sl)·h·S.
	t3 := poly.New(0, cl*l.R*h, cl*l.L*h).MulTrunc(shOverTh, n)
	// Term 4: s²·RS·CP·CL·Z0·sinh = s²·RS·CP·CL·(r+sl)·h·S.
	t4 := poly.New(0, 0, rs*cp*cl*l.R*h, rs*cp*cl*l.L*h).MulTrunc(shOverTh, n)
	d := t1.Add(t2).Add(t3).Add(t4)
	out := make([]float64, n)
	copy(out, d.C)
	return out
}

// seriesIntoMax is the largest order DenominatorSeriesInto computes with
// stack buffers; larger orders fall back to the allocating path.
const seriesIntoMax = 8

// DenominatorSeriesInto is DenominatorSeries writing into dst, which must
// have length ≥ n. For n ≤ 8 (the two-pole model needs n = 3) it performs no
// heap allocation: the truncated polynomial arithmetic runs on fixed-size
// stack buffers, replaying the exact floating-point operation sequence of
// DenominatorSeries so the coefficients are bit-identical. It returns
// dst[:n].
func (st Stage) DenominatorSeriesInto(dst []float64, n int) []float64 {
	if n < 1 {
		return dst[:0]
	}
	if n > seriesIntoMax || len(dst) < n {
		return append(dst[:0], st.DenominatorSeries(n)...)
	}
	l := st.Line
	h := st.H
	// (θh)² as a polynomial in s, matching poly.New(0, rch², lch²).
	var x2 [3]float64
	x2[1] = l.R * l.C * h * h
	x2[2] = l.L * l.C * h * h

	var coshBuf, shBuf, powA, powB, scaled, term [seriesIntoMax]float64
	cosh := coshBuf[:1]
	cosh[0] = 1
	shOverTh := shBuf[:1]
	shOverTh[0] = 1
	pow := powA[:1]
	pow[0] = 1
	spare := powB[:]
	fact := 1.0
	for k := 1; 2*k-1 < 2*n; k++ {
		next := spare[:n]
		mulTruncInto(next, pow, x2[:], n)
		spare, pow = pow[:cap(pow)], next
		if allZero(pow) { // pow.Degree() < 0
			break
		}
		fact *= float64(2*k-1) * float64(2*k)
		// cosh = cosh.Add(pow.Scale(1/fact))
		scaleInto(scaled[:n], pow, 1/fact)
		cosh = addInto(coshBuf[:], cosh, scaled[:n])
		// shOverTh = shOverTh.Add(pow.Scale(1/(fact·(2k+1))))
		scaleInto(scaled[:n], pow, 1/(fact*float64(2*k+1)))
		shOverTh = addInto(shBuf[:], shOverTh, scaled[:n])
	}
	rs, cp, cl := st.RS, st.CP, st.CL
	var lin [4]float64
	d := dst[:n]
	// Term 1: (1 + s·RS(CP+CL))·cosh.
	lin[0], lin[1] = 1, rs*(cp+cl)
	mulTruncInto(d, lin[:2], cosh, n)
	// Term 2: RS·sinh/Z0 = RS·s·c·h·S.
	lin[0], lin[1] = 0, rs*l.C*h
	mulTruncInto(term[:n], lin[:2], shOverTh, n)
	accumulate(d, term[:n])
	// Term 3: s·CL·Z0·sinh = s·CL·(r+sl)·h·S.
	lin[0], lin[1], lin[2] = 0, cl*l.R*h, cl*l.L*h
	mulTruncInto(term[:n], lin[:3], shOverTh, n)
	accumulate(d, term[:n])
	// Term 4: s²·RS·CP·CL·Z0·sinh = s²·RS·CP·CL·(r+sl)·h·S.
	lin[0], lin[1], lin[2], lin[3] = 0, 0, rs*cp*cl*l.R*h, rs*cp*cl*l.L*h
	mulTruncInto(term[:n], lin[:4], shOverTh, n)
	accumulate(d, term[:n])
	return d
}

// mulTruncInto writes the product p·q truncated to degree < n into out
// (len(out) == n), mirroring poly.Poly.MulTrunc's accumulation order.
func mulTruncInto(out, p, q []float64, n int) {
	for i := range out {
		out[i] = 0
	}
	for i, a := range p {
		if a == 0 || i >= n {
			continue
		}
		for j, b := range q {
			if i+j >= n {
				break
			}
			out[i+j] += a * b
		}
	}
}

// scaleInto writes a·p into out elementwise (poly.Poly.Scale).
func scaleInto(out, p []float64, a float64) {
	for i, c := range p {
		out[i] = a * c
	}
}

// addInto computes p + q into p's backing array (len max(len p, len q) ≤
// len(backing)), mirroring poly.Poly.Add: out[i] = 0 (+ p[i]) (+ q[i]).
func addInto(backing, p, q []float64) []float64 {
	n := len(p)
	if len(q) > n {
		n = len(q)
	}
	out := backing[:n]
	for i := range out {
		v := 0.0
		if i < len(p) {
			v += p[i]
		}
		if i < len(q) {
			v += q[i]
		}
		out[i] = v
	}
	return out
}

// accumulate adds src into dst elementwise (equal lengths), the Add chain of
// the four denominator terms.
func accumulate(dst, src []float64) {
	for i, v := range src {
		dst[i] += v
	}
}

func allZero(v []float64) bool {
	for _, x := range v {
		if x != 0 {
			return false
		}
	}
	return true
}

// TransferMoments returns the first n moments (ascending power-series
// coefficients) of the exact transfer function H(s) = 1/D(s). Moment 0 is 1.
func (st Stage) TransferMoments(n int) ([]float64, error) {
	d := poly.Poly{C: st.DenominatorSeries(n)}
	inv, err := d.SeriesInverse(n)
	if err != nil {
		return nil, fmt.Errorf("tline: TransferMoments: %w", err)
	}
	return inv.C, nil
}

// ElmoreSegment returns the Elmore delay of one driver–line–load segment,
// the paper's per-segment form of t_Elmore:
//
//	RS(CP+CL) + RS·c·h + r·h·CL + r·c·h²/2.
//
// This equals the first moment b1 of the exact transfer function.
func (st Stage) ElmoreSegment() float64 {
	l := st.Line
	return st.RS*(st.CP+st.CL) + st.RS*l.C*st.H + l.R*st.H*st.CL + 0.5*l.R*l.C*st.H*st.H
}

// LadderSegment is one lumped section of a discretized line.
type LadderSegment struct {
	R, L, C float64 // section series resistance/inductance and shunt capacitance
}

// Ladder discretizes length h of the line into n identical lumped sections
// for time-domain simulation. The shunt capacitance uses the standard
// "C at the far node" arrangement; callers typically add half-sections or
// accept the O(1/n) discretization error, which the convergence tests bound.
func (l Line) Ladder(h float64, n int) []LadderSegment {
	if n < 1 {
		n = 1
	}
	seg := LadderSegment{R: l.R * h / float64(n), L: l.L * h / float64(n), C: l.C * h / float64(n)}
	out := make([]LadderSegment, n)
	for i := range out {
		out[i] = seg
	}
	return out
}

// SectionsForAccuracy returns a section count such that the per-section wave
// delay resolves the fastest time scale of interest tmin (a rise time or an
// oscillation period fraction). A common rule is ≥10 sections per tmin of
// wave travel; the count is clamped to [minSec, maxSec].
func (l Line) SectionsForAccuracy(h, tmin float64, minSec, maxSec int) int {
	if minSec < 1 {
		minSec = 1
	}
	tof := l.TimeOfFlight(h)
	n := minSec
	if tmin > 0 && tof > 0 {
		n = int(math.Ceil(10 * tof / tmin))
	}
	if n < minSec {
		n = minSec
	}
	if maxSec > 0 && n > maxSec {
		n = maxSec
	}
	return n
}
