package tline

import (
	"math"
	"math/cmplx"
	"testing"

	"rlcint/internal/tech"
)

// TestDenominatorSeriesAgainstCauchyIntegral validates the arbitrary-order
// moment expansion against the exact transfer function via the Cauchy
// integral formula: the n-th series coefficient of D(s) equals
// (1/2πi)·∮ D(s)/s^{n+1} ds on a small circle around the origin.
func TestDenominatorSeriesAgainstCauchyIntegral(t *testing.T) {
	n := tech.Node100()
	k := 528.0
	st := Stage{
		Line: Line{R: n.R, L: 2 * tech.NHPerMM, C: n.C},
		H:    11.1 * tech.MM,
		RS:   n.Rs / k,
		CP:   n.Cp * k,
		CL:   n.C0 * k,
	}
	series := st.DenominatorSeries(6)
	// Radius well inside the convergence region: |s·b1| ~ 0.1.
	radius := 0.1 / series[1]
	const m = 512
	for order := 0; order <= 5; order++ {
		sum := complex(0, 0)
		for j := 0; j < m; j++ {
			theta := 2 * math.Pi * float64(j) / float64(m)
			s := cmplx.Rect(radius, theta)
			d := 1 / st.TransferExact(s) // D(s)
			sum += d / cmplx.Pow(s, complex(float64(order), 0))
		}
		coef := real(sum) / float64(m)
		scale := math.Abs(series[order])
		if scale == 0 {
			scale = 1
		}
		if math.Abs(coef-series[order])/scale > 1e-6 {
			t.Errorf("order %d: Cauchy %v vs series %v", order, coef, series[order])
		}
	}
}

func TestDenominatorSeriesRCLimit(t *testing.T) {
	// With l = 0 the odd/even structure still holds and b2 > 0 from the RC
	// terms alone; the expansion of a pure RC line is the classic
	// (rch²)ⁿ/(2n)!-dominated series.
	st := Stage{Line: Line{R: 4400, L: 0, C: 1.5e-10}, H: 0.01, RS: 20, CP: 1e-12, CL: 4e-13}
	d := st.DenominatorSeries(4)
	for i, c := range d {
		if c <= 0 {
			t.Errorf("RC series coefficient %d = %v, want positive", i, c)
		}
	}
}
