package tline

import (
	"fmt"
	"math"
)

// CoupledPair models two identical parallel RLC lines with capacitive and
// inductive coupling — the paper's Section 3 discussion of why the effective
// line capacitance varies with neighbour switching (Miller effect) and why
// the effective inductance varies with the current return path. For a
// symmetric pair the analysis decouples exactly into even and odd
// propagation modes.
type CoupledPair struct {
	R  float64 // series resistance per line, Ω/m
	L  float64 // self inductance per line, H/m
	Cg float64 // capacitance to ground per line, F/m
	Cm float64 // mutual (coupling) capacitance, F/m
	Lm float64 // mutual inductance, H/m
}

// Validate rejects non-physical parameter sets.
func (p CoupledPair) Validate() error {
	if p.R <= 0 || p.Cg <= 0 || p.L < 0 {
		return fmt.Errorf("tline: invalid coupled pair %+v", p)
	}
	if p.Cm < 0 || p.Lm < 0 {
		return fmt.Errorf("tline: negative coupling %+v", p)
	}
	if p.Lm >= p.L && p.L > 0 {
		return fmt.Errorf("tline: mutual inductance %g must be below self %g", p.Lm, p.L)
	}
	return nil
}

// EvenMode returns the line seen by a common-mode (both lines switching
// together) signal: the coupling capacitance carries no current and the
// mutual inductance aids the self term.
func (p CoupledPair) EvenMode() Line {
	return Line{R: p.R, L: p.L + p.Lm, C: p.Cg}
}

// OddMode returns the line seen by a differential (opposite switching)
// signal: the coupling capacitance appears doubled (Miller) and the mutual
// inductance opposes the self term.
func (p CoupledPair) OddMode() Line {
	return Line{R: p.R, L: p.L - p.Lm, C: p.Cg + 2*p.Cm}
}

// QuietMode returns the effective line when the neighbour is quiet
// (grounded): the coupling capacitance appears once.
func (p CoupledPair) QuietMode() Line {
	return Line{R: p.R, L: p.L, C: p.Cg + p.Cm}
}

// MillerSpread returns the ratio of the odd-mode to even-mode effective
// capacitance — the paper's "effective line capacitance can vary by as much
// as 4×" observation expressed as a number.
func (p CoupledPair) MillerSpread() float64 {
	return (p.Cg + 2*p.Cm) / p.Cg
}

// CouplingCoefficients returns the capacitive and inductive coupling factors
// kc = cm/(cg+cm) and kl = lm/l used by classical crosstalk estimates.
func (p CoupledPair) CouplingCoefficients() (kc, kl float64) {
	kc = p.Cm / (p.Cg + p.Cm)
	if p.L > 0 {
		kl = p.Lm / p.L
	}
	return
}

// BackwardCrosstalk returns the classical near-end (backward) crosstalk
// coefficient for weakly lossy coupled lines,
//
//	Kb = (kc + kl)/4,
//
// the fraction of the aggressor swing induced on a matched quiet victim.
// Positive kc and kl add constructively at the near end.
func (p CoupledPair) BackwardCrosstalk() float64 {
	kc, kl := p.CouplingCoefficients()
	return (kc + kl) / 4
}

// ForwardCrosstalk returns the classical far-end (forward) crosstalk slope
// coefficient per unit length and time,
//
//	Kf = (kc − kl)/2 · √(L·C)  [s/m],
//
// the far-end pulse amplitude is Kf·length·(dV/dt). For on-chip lines
// kl usually exceeds kc, making Kf negative (inductively dominated
// crosstalk) — the opposite polarity of PCB-style capacitive coupling.
func (p CoupledPair) ForwardCrosstalk() float64 {
	kc, kl := p.CouplingCoefficients()
	ceff := p.Cg + p.Cm
	return (kc - kl) / 2 * math.Sqrt(p.L*ceff)
}

// ModeVelocityMismatch returns the relative difference between even- and
// odd-mode velocities; zero for homogeneous dielectrics with kl = kc.
func (p CoupledPair) ModeVelocityMismatch() float64 {
	ve := p.EvenMode().Velocity()
	vo := p.OddMode().Velocity()
	if math.IsInf(ve, 1) || math.IsInf(vo, 1) {
		return 0
	}
	return math.Abs(ve-vo) / math.Max(ve, vo)
}

// WorstCaseStageDelays evaluates the delay spread a stage sees across
// neighbour-switching corners: the same geometry optimized once but
// operated at even / quiet / odd effective lines. It returns the stage
// copies for each corner (delay evaluation is the caller's choice of model).
func (p CoupledPair) WorstCaseStageDelays(st Stage) (even, quiet, odd Stage) {
	even, quiet, odd = st, st, st
	even.Line = p.EvenMode()
	quiet.Line = p.QuietMode()
	odd.Line = p.OddMode()
	return
}
