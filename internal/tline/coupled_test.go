package tline

import (
	"math"
	"testing"
	"testing/quick"

	"rlcint/internal/tech"
)

func pair100() CoupledPair {
	// 100 nm-like numbers: cg from the isolated part, cm the sidewall term.
	return CoupledPair{R: 4400, L: 2e-6, Cg: 4.4e-11, Cm: 3.9e-11, Lm: 1.2e-6}
}

func TestCoupledValidate(t *testing.T) {
	if err := pair100().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := pair100()
	bad.Lm = bad.L
	if err := bad.Validate(); err == nil {
		t.Error("lm >= l must fail")
	}
	bad = pair100()
	bad.Cm = -1
	if err := bad.Validate(); err == nil {
		t.Error("negative cm must fail")
	}
	bad = pair100()
	bad.Cg = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero cg must fail")
	}
}

func TestModeCapacitanceOrdering(t *testing.T) {
	p := pair100()
	e, q, o := p.EvenMode(), p.QuietMode(), p.OddMode()
	if !(e.C < q.C && q.C < o.C) {
		t.Errorf("capacitance ordering wrong: %v %v %v", e.C, q.C, o.C)
	}
	if !(e.L > q.L && q.L > o.L) {
		t.Errorf("inductance ordering wrong: %v %v %v", e.L, q.L, o.L)
	}
	// Mode capacitances: even = cg, quiet = cg+cm, odd = cg+2cm.
	if e.C != p.Cg || q.C != p.Cg+p.Cm || o.C != p.Cg+2*p.Cm {
		t.Error("mode capacitances wrong")
	}
}

func TestMillerSpreadMatchesPaperScale(t *testing.T) {
	// With a DSM aspect ratio, cm ≈ cg and the spread approaches the
	// paper's "as much as 4×" between even and odd corners... here defined
	// odd/even; with cm≈0.9·cg the spread is ≈2.8.
	p := pair100()
	s := p.MillerSpread()
	if s < 2 || s > 4.5 {
		t.Errorf("Miller spread %v outside the DSM range the paper describes", s)
	}
}

func TestCrosstalkCoefficients(t *testing.T) {
	p := pair100()
	kc, kl := p.CouplingCoefficients()
	if kc <= 0 || kc >= 1 || kl <= 0 || kl >= 1 {
		t.Fatalf("coefficients out of range: %v %v", kc, kl)
	}
	if kb := p.BackwardCrosstalk(); math.Abs(kb-(kc+kl)/4) > 1e-15 {
		t.Errorf("Kb = %v", kb)
	}
	// On-chip: inductive coupling dominates -> negative forward crosstalk.
	if kl <= kc {
		t.Skip("test geometry not inductively dominated")
	}
	if kf := p.ForwardCrosstalk(); kf >= 0 {
		t.Errorf("Kf = %v, want negative for kl > kc", kf)
	}
}

func TestDecoupledPairHasNoCrosstalk(t *testing.T) {
	p := CoupledPair{R: 4400, L: 2e-6, Cg: 1e-10, Cm: 0, Lm: 0}
	if kb := p.BackwardCrosstalk(); kb != 0 {
		t.Errorf("Kb = %v for decoupled pair", kb)
	}
	if kf := p.ForwardCrosstalk(); kf != 0 {
		t.Errorf("Kf = %v for decoupled pair", kf)
	}
	if s := p.MillerSpread(); s != 1 {
		t.Errorf("spread = %v", s)
	}
	if p.ModeVelocityMismatch() != 0 {
		t.Error("identical modes must have no velocity mismatch")
	}
}

func TestModeVelocityMismatchProperty(t *testing.T) {
	// Property: mismatch is in [0, 1) and zero iff kl == kc (homogeneous).
	prop := func(a, b float64) bool {
		u := func(x float64) float64 {
			m := math.Mod(x, 0.8)
			if math.IsNaN(m) {
				m = 0.3
			}
			return math.Abs(m)
		}
		p := CoupledPair{R: 4000, L: 2e-6, Cg: 1e-10, Cm: u(a) * 1e-10, Lm: u(b) * 1.9e-6}
		if p.Validate() != nil {
			return true
		}
		mm := p.ModeVelocityMismatch()
		return mm >= 0 && mm < 1
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestWorstCaseStageDelays(t *testing.T) {
	n := tech.Node100()
	k := 528.0
	base := Stage{Line: Line{R: n.R, L: 2e-6, C: n.C}, H: 11.1e-3, RS: n.Rs / k, CP: n.Cp * k, CL: n.C0 * k}
	p := pair100()
	even, quiet, odd := p.WorstCaseStageDelays(base)
	if even.Line != p.EvenMode() || quiet.Line != p.QuietMode() || odd.Line != p.OddMode() {
		t.Error("stage lines not the mode lines")
	}
	if even.H != base.H || odd.RS != base.RS {
		t.Error("stage sizing must be preserved across corners")
	}
	// Odd mode (more C, less L) has larger Elmore delay than even mode.
	if odd.ElmoreSegment() <= even.ElmoreSegment() {
		t.Errorf("odd Elmore %v not above even %v", odd.ElmoreSegment(), even.ElmoreSegment())
	}
}

func TestAttenuation(t *testing.T) {
	l := Line{R: 4400, L: 2e-6, C: 1.2331e-10}
	a := l.Attenuation(11.1e-3)
	want := math.Exp(-4400 * 11.1e-3 / (2 * l.Z0LC()))
	if math.Abs(a-want) > 1e-15 {
		t.Errorf("attenuation %v, want %v", a, want)
	}
	if a <= 0 || a >= 1 {
		t.Errorf("attenuation %v out of (0,1)", a)
	}
	if (Line{R: 4400, L: 0, C: 1e-10}).Attenuation(0.01) != 0 {
		t.Error("RC line attenuation must be 0")
	}
}

func TestTransmissionLineRegime(t *testing.T) {
	l := Line{R: 4400, L: 2e-6, C: 1.2331e-10}
	// Fast edge, moderate length: inside the window.
	if !l.TransmissionLineRegime(11.1e-3, 20e-12) {
		t.Error("fast edge on a global line should be in the TL regime")
	}
	// Slow edge: electrically short.
	if l.TransmissionLineRegime(11.1e-3, 5e-9) {
		t.Error("slow edge should not be in the TL regime")
	}
	// Very long line: loss-dominated.
	if l.TransmissionLineRegime(0.2, 20e-12) {
		t.Error("0.2 m of 4.4 Ω/mm line should be loss-dominated")
	}
	if (Line{R: 4400, L: 0, C: 1e-10}).TransmissionLineRegime(0.01, 1e-12) {
		t.Error("RC line can never be in the TL regime")
	}
}

func TestCriticalLengthRange(t *testing.T) {
	l := Line{R: 4400, L: 2e-6, C: 1.2331e-10}
	lo, hi := l.CriticalLengthRange(20e-12)
	if !(lo > 0 && lo < hi) {
		t.Fatalf("window [%v, %v]", lo, hi)
	}
	// Consistency with the regime predicate.
	mid := (lo + hi) / 2
	if !l.TransmissionLineRegime(mid, 20e-12) {
		t.Error("midpoint of window must be in regime")
	}
	if l.TransmissionLineRegime(hi*1.1, 20e-12) || l.TransmissionLineRegime(lo*0.9, 20e-12) {
		t.Error("points outside window must not be in regime")
	}
	// Slow rise closes the window.
	if lo, hi := l.CriticalLengthRange(1); lo != 0 || hi != 0 {
		t.Error("absurdly slow edge must close the window")
	}
	if lo, hi := (Line{R: 4400, L: 0, C: 1e-10}).CriticalLengthRange(1e-12); lo != 0 || hi != 0 {
		t.Error("RC line has no window")
	}
}
