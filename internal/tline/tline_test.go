package tline

import (
	"math"
	"math/cmplx"
	"testing"
	"testing/quick"

	"rlcint/internal/tech"
)

// paperStage returns a representative stage: the 100 nm node at its RC
// optimum with l = 2 nH/mm.
func paperStage() Stage {
	n := tech.Node100()
	k := 528.0
	return Stage{
		Line: Line{R: n.R, L: 2 * tech.NHPerMM, C: n.C},
		H:    11.1 * tech.MM,
		RS:   n.Rs / k,
		CP:   n.Cp * k,
		CL:   n.C0 * k,
	}
}

// b1b2Paper evaluates the paper's closed-form b1 and b2 expressions.
func b1b2Paper(st Stage) (float64, float64) {
	r, l, c := st.Line.R, st.Line.L, st.Line.C
	h := st.H
	rs, cp, cl := st.RS, st.CP, st.CL
	b1 := rs*(cp+cl) + r*c*h*h/2 + rs*c*h + cl*r*h
	b2 := l*c*h*h/2 + r*r*c*c*h*h*h*h/24 +
		rs*(cp+cl)*r*c*h*h/2 +
		(rs*c*h+cl*r*h)*r*c*h*h/6 +
		cl*l*h + rs*cp*cl*r*h
	return b1, b2
}

func TestDenominatorSeriesMatchesPaperB1B2(t *testing.T) {
	st := paperStage()
	d := st.DenominatorSeries(3)
	if math.Abs(d[0]-1) > 1e-15 {
		t.Errorf("d0 = %v, want 1", d[0])
	}
	b1, b2 := b1b2Paper(st)
	if math.Abs(d[1]-b1)/b1 > 1e-12 {
		t.Errorf("b1 = %v, paper %v", d[1], b1)
	}
	if math.Abs(d[2]-b2)/b2 > 1e-12 {
		t.Errorf("b2 = %v, paper %v", d[2], b2)
	}
}

func TestDenominatorSeriesPropertyB1B2(t *testing.T) {
	// Property: the series coefficients equal the paper's closed forms for
	// random physical parameter sets.
	prop := func(a, b, c, d, e, f float64) bool {
		u := func(x float64) float64 {
			m := math.Mod(x, 3)
			if math.IsNaN(m) {
				m = 1
			}
			return 0.1 + math.Abs(m)
		}
		st := Stage{
			Line: Line{R: 4400 * u(a), L: 2e-6 * u(b), C: 1.5e-10 * u(c)},
			H:    0.012 * u(d),
			RS:   15 * u(e),
			CP:   2e-12 * u(f),
			CL:   4e-13 * u(a+f),
		}
		got := st.DenominatorSeries(3)
		b1, b2 := b1b2Paper(st)
		return math.Abs(got[1]-b1) < 1e-9*b1 && math.Abs(got[2]-b2) < 1e-9*b2
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestElmoreEqualsFirstMoment(t *testing.T) {
	st := paperStage()
	d := st.DenominatorSeries(2)
	if math.Abs(st.ElmoreSegment()-d[1])/d[1] > 1e-12 {
		t.Errorf("Elmore %v != b1 %v", st.ElmoreSegment(), d[1])
	}
}

func TestTransferExactMatchesSeriesAtSmallS(t *testing.T) {
	st := paperStage()
	n := 8
	coefs := st.DenominatorSeries(n)
	// At |s·b1| << 1 the truncated series must agree with the exact D(s).
	s := complex(1e7, 2e7)
	series := complex(0, 0)
	for i := n - 1; i >= 0; i-- {
		series = series*s + complex(coefs[i], 0)
	}
	exact := 1 / st.TransferExact(s)
	if cmplx.Abs(series-exact)/cmplx.Abs(exact) > 1e-8 {
		t.Errorf("series D = %v, exact D = %v", series, exact)
	}
}

func TestTransferMomentsInvertDenominator(t *testing.T) {
	st := paperStage()
	n := 6
	d := st.DenominatorSeries(n)
	m, err := st.TransferMoments(n)
	if err != nil {
		t.Fatalf("TransferMoments: %v", err)
	}
	// Convolution d*m must be the identity series.
	for k := 0; k < n; k++ {
		s := 0.0
		for j := 0; j <= k; j++ {
			s += d[j] * m[k-j]
		}
		want := 0.0
		if k == 0 {
			want = 1
		}
		if math.Abs(s-want) > 1e-12 {
			t.Errorf("conv[%d] = %v, want %v", k, s, want)
		}
	}
}

func TestLineABCDCascade(t *testing.T) {
	// Two half-length segments must equal one full segment.
	l := Line{R: 4400, L: 1.5e-6, C: 1.8e-10}
	s := complex(1e8, 3e9)
	full := l.LineABCD(s, 0.01)
	half := l.LineABCD(s, 0.005)
	comp := half.Cascade(half)
	for i, pair := range [][2]complex128{{full.A, comp.A}, {full.B, comp.B}, {full.C, comp.C}, {full.D, comp.D}} {
		if cmplx.Abs(pair[0]-pair[1])/(cmplx.Abs(pair[0])+1e-30) > 1e-10 {
			t.Errorf("entry %d: %v != %v", i, pair[0], pair[1])
		}
	}
}

func TestLineABCDReciprocity(t *testing.T) {
	// A lossy line two-port is reciprocal: AD - BC = 1.
	l := Line{R: 4400, L: 2e-6, C: 1.2e-10}
	for _, s := range []complex128{complex(1e8, 0), complex(0, 1e10), complex(5e8, -3e9)} {
		m := l.LineABCD(s, 0.011)
		det := m.A*m.D - m.B*m.C
		if cmplx.Abs(det-1) > 1e-9 {
			t.Errorf("s=%v: det = %v, want 1", s, det)
		}
	}
}

func TestSeriesShuntABCD(t *testing.T) {
	z := complex(5, 2)
	y := complex(0, 3)
	m := SeriesZ(z).Cascade(ShuntY(y))
	// [1 z; 0 1]·[1 0; y 1] = [1+zy, z; y, 1]
	if m.A != 1+z*y || m.B != z || m.C != y || m.D != 1 {
		t.Errorf("cascade wrong: %+v", m)
	}
}

func TestTransferExactUnityAtDC(t *testing.T) {
	st := paperStage()
	// As s -> 0 the transfer function approaches 1 (no DC attenuation into a
	// capacitive load).
	h := st.TransferExact(complex(10, 0))
	if cmplx.Abs(h-1) > 1e-3 {
		t.Errorf("H(≈0) = %v, want ≈1", h)
	}
}

func TestZ0HighFrequencyLimit(t *testing.T) {
	l := Line{R: 4400, L: 2e-6, C: 1.2331e-10}
	z := l.Z0(complex(0, 1e13))
	want := l.Z0LC()
	if math.Abs(real(z)-want)/want > 1e-3 || math.Abs(imag(z)) > 0.05*want {
		t.Errorf("Z0(j·inf) = %v, want %v", z, want)
	}
}

func TestVelocityAndTOF(t *testing.T) {
	l := Line{R: 4400, L: 2e-6, C: 1.2331e-10}
	v := l.Velocity()
	want := 1 / math.Sqrt(2e-6*1.2331e-10)
	if math.Abs(v-want)/want > 1e-12 {
		t.Errorf("velocity = %v, want %v", v, want)
	}
	if tof := l.TimeOfFlight(0.011); math.Abs(tof-0.011/want)/(0.011/want) > 1e-12 {
		t.Errorf("tof = %v", tof)
	}
	rc := Line{R: 4400, L: 0, C: 1e-10}
	if !math.IsInf(rc.Velocity(), 1) || rc.TimeOfFlight(1) != 0 {
		t.Error("RC limit velocity/TOF wrong")
	}
}

func TestLadderConservation(t *testing.T) {
	l := Line{R: 4400, L: 2e-6, C: 1.2e-10}
	h := 0.0111
	segs := l.Ladder(h, 37)
	var rTot, lTot, cTot float64
	for _, s := range segs {
		rTot += s.R
		lTot += s.L
		cTot += s.C
	}
	if math.Abs(rTot-l.R*h)/(l.R*h) > 1e-12 {
		t.Errorf("sum R = %v, want %v", rTot, l.R*h)
	}
	if math.Abs(lTot-l.L*h)/(l.L*h) > 1e-12 {
		t.Errorf("sum L = %v", lTot)
	}
	if math.Abs(cTot-l.C*h)/(l.C*h) > 1e-12 {
		t.Errorf("sum C = %v", cTot)
	}
	if got := l.Ladder(h, 0); len(got) != 1 {
		t.Errorf("n=0 clamps to 1 section, got %d", len(got))
	}
}

func TestSectionsForAccuracy(t *testing.T) {
	l := Line{R: 4400, L: 2e-6, C: 1.2331e-10}
	n := l.SectionsForAccuracy(0.0111, 20e-12, 10, 200)
	if n < 10 || n > 200 {
		t.Errorf("sections = %d outside clamp", n)
	}
	// Sharper tmin demands more sections.
	n2 := l.SectionsForAccuracy(0.0111, 5e-12, 10, 10000)
	if n2 <= n {
		t.Errorf("finer tmin should need more sections: %d vs %d", n2, n)
	}
	// RC line has no wave delay: falls back to minimum.
	rc := Line{R: 4400, L: 0, C: 1e-10}
	if got := rc.SectionsForAccuracy(0.01, 1e-12, 7, 100); got != 7 {
		t.Errorf("RC fallback = %d, want 7", got)
	}
}

func TestValidate(t *testing.T) {
	if err := (Line{R: 1, L: 0, C: 1}).Validate(); err != nil {
		t.Errorf("RC line should validate: %v", err)
	}
	if err := (Line{R: 0, L: 1, C: 1}).Validate(); err == nil {
		t.Error("zero R must fail")
	}
	if err := (Line{R: 1, L: -1, C: 1}).Validate(); err == nil {
		t.Error("negative L must fail")
	}
}
