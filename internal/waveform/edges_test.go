package waveform

import (
	"math"
	"testing"

	"rlcint/internal/num"
)

// trapezoid builds a clean 0→1→0 pulse with the given edge durations.
func trapezoid(rise, high, fall float64) (t, v []float64) {
	t = num.Linspace(0, 2+rise+high+fall, 4001)
	v = make([]float64, len(t))
	for i, x := range t {
		switch {
		case x < 1:
			v[i] = 0
		case x < 1+rise:
			v[i] = (x - 1) / rise
		case x < 1+rise+high:
			v[i] = 1
		case x < 1+rise+high+fall:
			v[i] = 1 - (x-1-rise-high)/fall
		default:
			v[i] = 0
		}
	}
	return
}

func TestRiseFallTime(t *testing.T) {
	tt, v := trapezoid(0.4, 1, 0.2)
	r, err := RiseTime(tt, v, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	// 10-90% of a 0.4 linear edge = 0.32.
	if math.Abs(r-0.32) > 0.005 {
		t.Errorf("rise time %v, want 0.32", r)
	}
	f, err := FallTime(tt, v, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(f-0.16) > 0.005 {
		t.Errorf("fall time %v, want 0.16", f)
	}
}

func TestEdgesDetectBoth(t *testing.T) {
	tt, v := trapezoid(0.3, 1, 0.3)
	edges, err := Edges(tt, v, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	var rises, falls int
	for _, e := range edges {
		if e.Duration() <= 0 {
			t.Errorf("non-positive edge duration %v", e.Duration())
		}
		if e.Rising {
			rises++
		} else {
			falls++
		}
	}
	if rises != 1 || falls != 1 {
		t.Errorf("edges: %d rises, %d falls; want 1 and 1", rises, falls)
	}
}

func TestEdgesSkipRunts(t *testing.T) {
	// A pulse that only reaches 60%: no complete rising edge.
	tt := num.Linspace(0, 4, 2001)
	v := make([]float64, len(tt))
	for i, x := range tt {
		if x > 1 && x < 2 {
			v[i] = 0.6
		}
	}
	if _, err := RiseTime(tt, v, 0, 1); err == nil {
		t.Error("runt-only waveform must yield no rise time")
	}
	n, err := CountGlitches(tt, v, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Errorf("glitches = %d, want 1", n)
	}
}

func TestCountGlitchesCleanSquare(t *testing.T) {
	// A clean square wave has zero glitches.
	tt := num.Linspace(0, 10, 5001)
	v := make([]float64, len(tt))
	for i, x := range tt {
		if math.Mod(x, 2) < 1 {
			v[i] = 1
		}
	}
	n, err := CountGlitches(tt, v, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Errorf("clean square reported %d glitches", n)
	}
}

func TestCountGlitchesHighSideRunt(t *testing.T) {
	// Starts high, dips to 40% and returns: one glitch.
	tt := num.Linspace(0, 4, 2001)
	v := make([]float64, len(tt))
	for i, x := range tt {
		v[i] = 1
		if x > 1 && x < 1.5 {
			v[i] = 0.4
		}
	}
	n, err := CountGlitches(tt, v, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Errorf("glitches = %d, want 1", n)
	}
}

func TestEdgesValidation(t *testing.T) {
	if _, err := Edges(nil, nil, 1, 0); err == nil {
		t.Error("vHigh <= vLow must fail")
	}
	if _, err := CountGlitches(nil, nil, 1, 1); err == nil {
		t.Error("vHigh <= vLow must fail")
	}
}
