package waveform

import (
	"fmt"
)

// Edge is one detected transition of a waveform.
type Edge struct {
	TStart, TEnd float64 // 10% and 90% crossing times (reversed for falls)
	Rising       bool
}

// Duration returns the 10–90% transition time.
func (e Edge) Duration() float64 { return e.TEnd - e.TStart }

// Edges detects 10–90% transitions between the logic levels vLow and vHigh:
// a rising edge runs from a 10%-level crossing (upward) to the next
// 90%-level crossing, and symmetrically for falling edges. Malformed
// (incomplete) transitions are skipped.
func Edges(t, v []float64, vLow, vHigh float64) ([]Edge, error) {
	if vHigh <= vLow {
		return nil, fmt.Errorf("waveform: Edges needs vHigh > vLow, got %g <= %g", vHigh, vLow)
	}
	swing := vHigh - vLow
	lo := vLow + 0.1*swing
	hi := vLow + 0.9*swing
	ups10 := Crossings(t, v, lo, Rising)
	ups90 := Crossings(t, v, hi, Rising)
	downs90 := Crossings(t, v, hi, Falling)
	downs10 := Crossings(t, v, lo, Falling)

	var out []Edge
	// Pair each 10%-up with the first later 90%-up that precedes the next
	// 10%-up (i.e. the same transition).
	j := 0
	for i, t10 := range ups10 {
		for j < len(ups90) && ups90[j] < t10 {
			j++
		}
		if j >= len(ups90) {
			break
		}
		if i+1 < len(ups10) && ups90[j] > ups10[i+1] {
			continue // never reached 90% before falling back: a runt
		}
		out = append(out, Edge{TStart: t10, TEnd: ups90[j], Rising: true})
	}
	j = 0
	for i, t90 := range downs90 {
		for j < len(downs10) && downs10[j] < t90 {
			j++
		}
		if j >= len(downs10) {
			break
		}
		if i+1 < len(downs90) && downs10[j] > downs90[i+1] {
			continue
		}
		out = append(out, Edge{TStart: t90, TEnd: downs10[j], Rising: false})
	}
	return out, nil
}

// RiseTime returns the mean 10–90% rise time over all detected rising edges.
func RiseTime(t, v []float64, vLow, vHigh float64) (float64, error) {
	return meanEdge(t, v, vLow, vHigh, true)
}

// FallTime returns the mean 90–10% fall time over all detected falling edges.
func FallTime(t, v []float64, vLow, vHigh float64) (float64, error) {
	return meanEdge(t, v, vLow, vHigh, false)
}

func meanEdge(t, v []float64, vLow, vHigh float64, rising bool) (float64, error) {
	edges, err := Edges(t, v, vLow, vHigh)
	if err != nil {
		return 0, err
	}
	sum, n := 0.0, 0
	for _, e := range edges {
		if e.Rising == rising {
			sum += e.Duration()
			n++
		}
	}
	if n == 0 {
		kind := "rising"
		if !rising {
			kind = "falling"
		}
		return 0, fmt.Errorf("%w: no complete %s edges", ErrNoCrossing, kind)
	}
	return sum / float64(n), nil
}

// CountGlitches counts runt pulses: excursions that cross the mid level and
// return without completing a full transition to within 10% of the opposite
// rail. In the paper's terms these are the glitch events that burn dynamic
// power without being full logic transitions.
func CountGlitches(t, v []float64, vLow, vHigh float64) (int, error) {
	if vHigh <= vLow {
		return 0, fmt.Errorf("waveform: CountGlitches needs vHigh > vLow")
	}
	swing := vHigh - vLow
	mid := vLow + 0.5*swing
	lo := vLow + 0.1*swing
	hi := vLow + 0.9*swing
	// Walk the waveform as a three-level state machine.
	const (
		stLow = iota
		stHigh
		stMidFromLow
		stMidFromHigh
	)
	state := stLow
	if len(v) > 0 && v[0] > mid {
		state = stHigh
	}
	glitches := 0
	for i := range v {
		x := v[i]
		switch state {
		case stLow:
			if x > mid {
				state = stMidFromLow
			}
		case stHigh:
			if x < mid {
				state = stMidFromHigh
			}
		case stMidFromLow:
			switch {
			case x >= hi:
				state = stHigh // completed transition
			case x <= lo:
				state = stLow // came back: runt
				glitches++
			}
		case stMidFromHigh:
			switch {
			case x <= lo:
				state = stLow
			case x >= hi:
				state = stHigh
				glitches++
			}
		}
	}
	return glitches, nil
}
