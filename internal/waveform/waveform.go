// Package waveform provides measurements on sampled transient waveforms:
// threshold crossings, delays, oscillation period, overshoot/undershoot and
// peak/rms, plus CSV export. These are the post-processing the paper applies
// to its SPICE runs (Figures 9–12).
package waveform

import (
	"errors"
	"fmt"
	"io"
	"math"
	"sort"

	"rlcint/internal/num"
)

// Direction selects which threshold crossings to detect.
type Direction int

const (
	// Rising selects low-to-high crossings.
	Rising Direction = iota
	// Falling selects high-to-low crossings.
	Falling
	// Either selects both.
	Either
)

// ErrNoCrossing is returned when no qualifying crossing exists.
var ErrNoCrossing = errors.New("waveform: no crossing found")

// Crossings returns the times where v crosses level in the given direction,
// linearly interpolated between samples. t must be increasing and len(t) ==
// len(v).
func Crossings(t, v []float64, level float64, dir Direction) []float64 {
	var out []float64
	for i := 1; i < len(v) && i < len(t); i++ {
		a, b := v[i-1]-level, v[i]-level
		if a == b {
			continue
		}
		crossed := (a < 0 && b >= 0) || (a > 0 && b <= 0)
		if !crossed {
			continue
		}
		rising := a < 0
		if dir == Rising && !rising || dir == Falling && rising {
			continue
		}
		frac := -a / (b - a)
		out = append(out, t[i-1]+frac*(t[i]-t[i-1]))
	}
	return out
}

// FirstCrossing returns the first crossing time of level after tMin.
func FirstCrossing(t, v []float64, level, tMin float64, dir Direction) (float64, error) {
	for _, tc := range Crossings(t, v, level, dir) {
		if tc >= tMin {
			return tc, nil
		}
	}
	return 0, fmt.Errorf("%w: level %g after t=%g", ErrNoCrossing, level, tMin)
}

// Delay measures the time from the input's crossing of level to the
// output's next crossing of level (any direction on both), i.e. a stage
// propagation delay.
func Delay(t, vin, vout []float64, level float64) (float64, error) {
	tin, err := FirstCrossing(t, vin, level, 0, Either)
	if err != nil {
		return 0, fmt.Errorf("waveform: Delay input: %w", err)
	}
	tout, err := FirstCrossing(t, vout, level, tin, Either)
	if err != nil {
		return 0, fmt.Errorf("waveform: Delay output: %w", err)
	}
	return tout - tin, nil
}

// Period estimates the oscillation period as the median spacing of rising
// crossings of level after tMin. It needs at least three crossings.
func Period(t, v []float64, level, tMin float64) (float64, error) {
	var cs []float64
	for _, tc := range Crossings(t, v, level, Rising) {
		if tc >= tMin {
			cs = append(cs, tc)
		}
	}
	if len(cs) < 3 {
		return 0, fmt.Errorf("%w: %d rising crossings after t=%g (need >=3)", ErrNoCrossing, len(cs), tMin)
	}
	diffs := make([]float64, len(cs)-1)
	for i := 1; i < len(cs); i++ {
		diffs[i-1] = cs[i] - cs[i-1]
	}
	sort.Float64s(diffs)
	return diffs[len(diffs)/2], nil
}

// Extremes returns the minimum and maximum sample values after tMin.
func Extremes(t, v []float64, tMin float64) (vmin, vmax float64) {
	vmin, vmax = math.Inf(1), math.Inf(-1)
	for i := range v {
		if t[i] < tMin {
			continue
		}
		if v[i] < vmin {
			vmin = v[i]
		}
		if v[i] > vmax {
			vmax = v[i]
		}
	}
	return
}

// OverUnder measures how far the waveform exceeds the [0, vdd] rail window
// after tMin: overshoot = max(v) − vdd, undershoot = −min(v), both clamped
// at zero.
func OverUnder(t, v []float64, vdd, tMin float64) (over, under float64) {
	vmin, vmax := Extremes(t, v, tMin)
	over = math.Max(0, vmax-vdd)
	under = math.Max(0, -vmin)
	return
}

// PeakRMS returns the peak |v| and the time-weighted rms of v after tMin.
func PeakRMS(t, v []float64, tMin float64) (peak, rms float64) {
	r := num.NewRunning()
	for i := range v {
		if t[i] < tMin {
			continue
		}
		r.Add(t[i], v[i])
	}
	if r.N() == 0 {
		return 0, 0
	}
	return r.Peak(), r.RMS()
}

// WriteCSV writes aligned columns (time plus one column per series) as CSV.
// All series must have the same length as t.
func WriteCSV(w io.Writer, t []float64, names []string, series ...[]float64) error {
	if len(names) != len(series) {
		return fmt.Errorf("waveform: WriteCSV: %d names for %d series", len(names), len(series))
	}
	for _, s := range series {
		if len(s) != len(t) {
			return fmt.Errorf("waveform: WriteCSV: series length %d != time length %d", len(s), len(t))
		}
	}
	if _, err := fmt.Fprint(w, "t"); err != nil {
		return err
	}
	for _, n := range names {
		if _, err := fmt.Fprintf(w, ",%s", n); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintln(w); err != nil {
		return err
	}
	for i := range t {
		if _, err := fmt.Fprintf(w, "%.9g", t[i]); err != nil {
			return err
		}
		for _, s := range series {
			if _, err := fmt.Fprintf(w, ",%.9g", s[i]); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	return nil
}
