package waveform

import (
	"math"
	"strings"
	"testing"

	"rlcint/internal/num"
)

func sine(n int, periods float64) (t, v []float64) {
	t = num.Linspace(0, periods, n)
	v = make([]float64, n)
	for i := range t {
		v[i] = math.Sin(2 * math.Pi * t[i])
	}
	return
}

func TestCrossingsDirections(t *testing.T) {
	tt, v := sine(4001, 2) // two full periods
	rising := Crossings(tt, v, 0, Rising)
	falling := Crossings(tt, v, 0, Falling)
	either := Crossings(tt, v, 0, Either)
	// sin crosses 0 rising at t=1 (and at 0 boundary, not detected since it
	// starts there... it starts at exactly 0): expect rising near 1, falling
	// near 0.5 and 1.5.
	if len(falling) != 2 {
		t.Fatalf("falling: %v", falling)
	}
	if math.Abs(falling[0]-0.5) > 1e-3 || math.Abs(falling[1]-1.5) > 1e-3 {
		t.Errorf("falling crossings %v", falling)
	}
	found := false
	for _, r := range rising {
		if math.Abs(r-1) < 1e-3 {
			found = true
		}
	}
	if !found {
		t.Errorf("rising crossings %v missing t=1", rising)
	}
	if len(either) < len(rising)+len(falling) {
		t.Errorf("either (%d) < rising+falling (%d)", len(either), len(rising)+len(falling))
	}
}

func TestCrossingsInterpolation(t *testing.T) {
	// Two samples straddling the level: exact linear interpolation.
	tc := Crossings([]float64{0, 1}, []float64{0, 10}, 2.5, Rising)
	if len(tc) != 1 || math.Abs(tc[0]-0.25) > 1e-15 {
		t.Errorf("crossings %v, want [0.25]", tc)
	}
}

func TestPeriodOfSine(t *testing.T) {
	tt, v := sine(8001, 6)
	p, err := Period(tt, v, 0, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p-1) > 1e-3 {
		t.Errorf("period %v, want 1", p)
	}
}

func TestPeriodNeedsCrossings(t *testing.T) {
	tt := num.Linspace(0, 1, 100)
	flat := make([]float64, 100)
	if _, err := Period(tt, flat, 0.5, 0); err == nil {
		t.Error("flat waveform must have no period")
	}
}

func TestDelay(t *testing.T) {
	// Output is the input shifted by 0.2.
	tt := num.Linspace(0, 2, 2001)
	vin := make([]float64, len(tt))
	vout := make([]float64, len(tt))
	for i, x := range tt {
		vin[i] = num.Clamp((x-0.5)*10, 0, 1)
		vout[i] = num.Clamp((x-0.7)*10, 0, 1)
	}
	d, err := Delay(tt, vin, vout, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d-0.2) > 1e-6 {
		t.Errorf("delay %v, want 0.2", d)
	}
	if _, err := Delay(tt, vin, make([]float64, len(tt)), 0.5); err == nil {
		t.Error("flat output must fail")
	}
}

func TestOverUnder(t *testing.T) {
	tt := num.Linspace(0, 1, 101)
	v := make([]float64, 101)
	for i := range v {
		v[i] = 1.2*math.Sin(2*math.Pi*tt[i])*0.3 + 0.6 // swings -? compute extremes 0.6±0.36
	}
	v[50] = 1.5  // overshoot above vdd=1.2
	v[60] = -0.2 // undershoot below 0
	over, under := OverUnder(tt, v, 1.2, 0)
	if math.Abs(over-0.3) > 1e-12 || math.Abs(under-0.2) > 1e-12 {
		t.Errorf("over=%v under=%v", over, under)
	}
	// tMin excludes the excursions.
	over, under = OverUnder(tt, v, 1.2, 0.7)
	if over != 0 || under != 0 {
		t.Errorf("after tMin: over=%v under=%v", over, under)
	}
}

func TestPeakRMS(t *testing.T) {
	tt, v := sine(20001, 4)
	peak, rms := PeakRMS(tt, v, 0)
	if math.Abs(peak-1) > 1e-4 {
		t.Errorf("peak %v", peak)
	}
	if math.Abs(rms-1/math.Sqrt2) > 1e-3 {
		t.Errorf("rms %v", rms)
	}
	if p, r := PeakRMS(tt, v, 99); p != 0 || r != 0 {
		t.Error("empty window must give zeros")
	}
}

func TestExtremes(t *testing.T) {
	tt := []float64{0, 1, 2, 3}
	v := []float64{5, -3, 7, 1}
	lo, hi := Extremes(tt, v, 0)
	if lo != -3 || hi != 7 {
		t.Errorf("extremes %v %v", lo, hi)
	}
	lo, hi = Extremes(tt, v, 2.5)
	if lo != 1 || hi != 1 {
		t.Errorf("windowed extremes %v %v", lo, hi)
	}
}

func TestWriteCSV(t *testing.T) {
	var sb strings.Builder
	err := WriteCSV(&sb, []float64{0, 1}, []string{"a", "b"},
		[]float64{1, 2}, []float64{3, 4})
	if err != nil {
		t.Fatal(err)
	}
	want := "t,a,b\n0,1,3\n1,2,4\n"
	if sb.String() != want {
		t.Errorf("CSV = %q, want %q", sb.String(), want)
	}
	if err := WriteCSV(&sb, []float64{0}, []string{"a"}, []float64{1, 2}); err == nil {
		t.Error("length mismatch must fail")
	}
	if err := WriteCSV(&sb, []float64{0}, []string{"a", "b"}, []float64{1}); err == nil {
		t.Error("name count mismatch must fail")
	}
}

func TestFirstCrossingAfterTMin(t *testing.T) {
	tt, v := sine(4001, 2)
	c, err := FirstCrossing(tt, v, 0.5, 1.0, Rising)
	if err != nil {
		t.Fatal(err)
	}
	// sin crosses 0.5 rising at t ≈ 1 + 1/12.
	if math.Abs(c-(1+1.0/12)) > 1e-3 {
		t.Errorf("crossing %v", c)
	}
	if _, err := FirstCrossing(tt, v, 0.5, 1.9, Rising); err == nil {
		t.Error("no crossing after 1.9 in two periods... (next at 2+1/12)")
	}
}
