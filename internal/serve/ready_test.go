package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"rlcint/internal/diag"
)

func getReadyz(t *testing.T, base string) (int, map[string]any) {
	t.Helper()
	resp, err := http.Get(base + "/readyz")
	if err != nil {
		t.Fatalf("GET /readyz: %v", err)
	}
	defer resp.Body.Close()
	var body map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatalf("decode /readyz: %v", err)
	}
	return resp.StatusCode, body
}

// TestReadyzDrainSplit: liveness stays 200 through a drain while readiness
// flips to 503 — the split that lets an orchestrator stop routing to a
// draining instance without restarting it.
func TestReadyzDrainSplit(t *testing.T) {
	s, ts := testServer(t, Config{})
	if code, body := getReadyz(t, ts.URL); code != http.StatusOK || body["ready"] != true {
		t.Fatalf("idle readyz = %d %v, want 200 ready", code, body)
	}
	s.BeginDrain()
	code, body := getReadyz(t, ts.URL)
	if code != http.StatusServiceUnavailable || body["reason"] != "draining" {
		t.Fatalf("draining readyz = %d %v, want 503 draining", code, body)
	}
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var hz map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&hz); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || hz["status"] != "ok" || hz["ready"] != false {
		t.Errorf("draining healthz = %d %v, want 200 ok with ready=false", resp.StatusCode, hz)
	}
}

// TestReadyzDuringSnapshotReplay holds the snapshot load open through a
// FIFO: the daemon must serve liveness (and 503 readiness) while the replay
// blocks, then flip ready once the snapshot is consumed.
func TestReadyzDuringSnapshotReplay(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cache.fifo")
	if err := syscall.Mkfifo(path, 0o600); err != nil {
		t.Skipf("mkfifo unsupported here: %v", err)
	}
	data, err := encodeSnapshot([]*cached{
		{key: "k1", ctype: "application/json", body: []byte("{}\n")},
	})
	if err != nil {
		t.Fatal(err)
	}
	released := false
	release := func() {
		if released {
			return
		}
		released = true
		w, err := os.OpenFile(path, os.O_WRONLY, 0)
		if err != nil {
			t.Fatalf("open fifo for write: %v", err)
		}
		if _, err := w.Write(data); err != nil {
			t.Fatalf("write fifo: %v", err)
		}
		w.Close()
	}
	defer release() // Close() waits on the loader; never leave it wedged

	s, ts := testServer(t, Config{SnapshotPath: path, SnapshotInterval: -1})
	if code, body := getReadyz(t, ts.URL); code != http.StatusServiceUnavailable || body["reason"] != "replaying snapshot" {
		t.Fatalf("replaying readyz = %d %v, want 503 replaying snapshot", code, body)
	}
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz during replay = %d, want 200 (liveness is not readiness)", resp.StatusCode)
	}

	release()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.WaitReady(ctx); err != nil {
		t.Fatalf("WaitReady after releasing the replay: %v", err)
	}
	if code, _ := getReadyz(t, ts.URL); code != http.StatusOK {
		t.Fatalf("readyz after replay = %d, want 200", code)
	}
	_, _, _, entries, _ := s.cache.stats()
	if entries != 1 {
		t.Errorf("cache entries after replay = %d, want the 1 snapshot entry", entries)
	}
}

// TestWaitReadyHonorsContext: a caller waiting on a wedged replay can give
// up.
func TestWaitReadyHonorsContext(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cache.fifo")
	if err := syscall.Mkfifo(path, 0o600); err != nil {
		t.Skipf("mkfifo unsupported here: %v", err)
	}
	s := New(Config{SnapshotPath: path, SnapshotInterval: -1, Logger: log.New(io.Discard, "", 0)})
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := s.WaitReady(ctx); err == nil {
		t.Error("WaitReady returned nil while the replay is blocked")
	}
	// Unblock the loader so Close can finish.
	w, err := os.OpenFile(path, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	w.Close()
	s.Close()
}

// TestRetryAfterOnQueueFull: a shed request tells the client when to come
// back.
func TestRetryAfterOnQueueFull(t *testing.T) {
	s, ts := testServer(t, Config{MaxInflight: 1, MaxQueue: -1})
	// Park a slow cold sweep in the single slot.
	slowCtx, cancelSlow := context.WithCancel(context.Background())
	defer cancelSlow()
	var ls []string
	for i := 0; i < 2000; i++ {
		ls = append(ls, fmt.Sprintf("%g", float64(i)*1e-9))
	}
	slowDone := make(chan struct{})
	go func() {
		defer close(slowDone)
		req, _ := http.NewRequestWithContext(slowCtx, "POST", ts.URL+"/v1/sweep",
			strings.NewReader(`{"tech":"100nm","ls":[`+strings.Join(ls, ",")+`],"f":0.5}`))
		req.Header.Set("Content-Type", "application/json")
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}()
	defer func() { cancelSlow(); <-slowDone }()
	for s.limiter.inflight() == 0 {
		time.Sleep(time.Millisecond)
	}
	resp, body := postJSON(t, ts.URL+"/v1/optimize", `{"tech":"100nm","l":3e-6}`)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d body=%s, want 503", resp.StatusCode, body)
	}
	ra, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil || ra < 1 || ra > 30 {
		t.Errorf("queue-full Retry-After = %q, want integer seconds in [1, 30]",
			resp.Header.Get("Retry-After"))
	}
}

// TestRetryAfterOnBreakerOpen: the 503 carries the region's remaining
// cooldown, the same hint the fleet client's backoff honors.
func TestRetryAfterOnBreakerOpen(t *testing.T) {
	var failing atomic.Bool
	failing.Store(true)
	inj := &diag.Injector{Fault: func(site diag.Site) error {
		if site.Op != "core.eval" {
			return nil
		}
		if failing.Load() {
			return diag.New(diag.ErrNonConvergence, "chaos")
		}
		return nil
	}}
	_, ts := testServer(t, Config{
		BreakerThreshold: 1,
		BreakerCooldown:  time.Minute,
		DisableDegraded:  true,
		Injector:         inj,
	})
	resp, _ := postJSON(t, ts.URL+"/v1/optimize", `{"tech":"100nm","l":1.2e-6,"f":0.5}`)
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("seed failure status = %d, want 422", resp.StatusCode)
	}
	// Same region (half-decade bucket), different key: short-circuited.
	resp2, body := postJSON(t, ts.URL+"/v1/optimize", `{"tech":"100nm","l":1.3e-6,"f":0.5}`)
	if resp2.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("short-circuit status = %d body=%s, want 503", resp2.StatusCode, body)
	}
	ra, err := strconv.Atoi(resp2.Header.Get("Retry-After"))
	if err != nil || ra < 1 || ra > 120 {
		t.Errorf("breaker-open Retry-After = %q, want ~cooldown seconds in [1, 120]",
			resp2.Header.Get("Retry-After"))
	}
}
