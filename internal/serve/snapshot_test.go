package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"hash/crc32"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func TestSnapshotEncodeDecodeRoundTrip(t *testing.T) {
	in := []*cached{
		{key: "a", ctype: "application/json", body: []byte(`{"x":1}` + "\n")},
		{key: "b", ctype: "application/x-ndjson", body: []byte("{}\n{}\n")},
	}
	data, err := encodeSnapshot(in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := decodeSnapshot(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("decoded %d entries, want %d", len(out), len(in))
	}
	for i := range in {
		if out[i].key != in[i].key || out[i].ctype != in[i].ctype || !bytes.Equal(out[i].body, in[i].body) {
			t.Errorf("entry %d: got %+v, want %+v", i, out[i], in[i])
		}
	}
}

func TestSnapshotDecodeRejectsCorruption(t *testing.T) {
	valid, err := encodeSnapshot([]*cached{{key: "a", ctype: "application/json", body: []byte("{}\n")}})
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"empty":      {},
		"not json":   []byte("\x00\xff garbage"),
		"truncated":  valid[:len(valid)/2],
		"wrong type": []byte(`[1,2,3]`),
	}
	// A flipped byte inside the payload must fail the CRC, not decode quietly.
	flipped := bytes.Replace(valid, []byte(`"key":"a"`), []byte(`"key":"z"`), 1)
	if bytes.Equal(flipped, valid) {
		t.Fatal("flip did not apply")
	}
	cases["bit flip"] = flipped
	// A version bump must be rejected even with a valid checksum and schema.
	payload, _ := json.Marshal([]snapEntry{{Key: "a", CType: "application/json", Body: []byte("{}\n")}})
	future, _ := json.Marshal(snapshotFile{Version: snapshotVersion + 1, Schema: snapshotSchema(), CRC: crc32.ChecksumIEEE(payload), Entries: payload})
	cases["future version"] = future
	// A snapshot from a build with different response shapes must be
	// rejected even when the envelope itself is intact.
	stale, _ := json.Marshal(snapshotFile{Version: snapshotVersion, Schema: "0000000000000000", CRC: crc32.ChecksumIEEE(payload), Entries: payload})
	cases["stale schema"] = stale
	// An entry with no key is structurally invalid.
	nokey, _ := json.Marshal([]snapEntry{{Key: "", Body: []byte("x")}})
	bad, _ := json.Marshal(snapshotFile{Version: snapshotVersion, Schema: snapshotSchema(), CRC: crc32.ChecksumIEEE(nokey), Entries: nokey})
	cases["empty key"] = bad

	for name, data := range cases {
		if _, err := decodeSnapshot(data); err == nil {
			t.Errorf("%s: decode accepted corrupt snapshot", name)
		}
	}
}

// A kill-and-restart must serve the first repeat request from the restored
// cache: the snapshot written on drain is loaded by the next New.
func TestSnapshotWarmRestart(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cache.snap")
	cfg := Config{SnapshotPath: path, SnapshotInterval: -1, Logger: log.New(io.Discard, "", 0)}
	req := `{"tech":"100nm","l":2e-6,"f":0.5}`

	a := New(cfg)
	tsA := httptest.NewServer(a.Handler())
	resp, body := postJSON(t, tsA.URL+"/v1/optimize", req)
	if resp.StatusCode != http.StatusOK || resp.Header.Get("X-Cache") != "miss" {
		t.Fatalf("first solve: status=%d cache=%q", resp.StatusCode, resp.Header.Get("X-Cache"))
	}
	tsA.Close()
	a.Close() // the on-drain save
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("drain did not write the snapshot: %v", err)
	}

	b := New(cfg)
	tsB := httptest.NewServer(b.Handler())
	defer func() { tsB.Close(); b.Close() }()
	// The snapshot replays off the request path; wait for readiness so the
	// warm-hit assertion below cannot race the loader.
	if err := b.WaitReady(context.Background()); err != nil {
		t.Fatalf("WaitReady: %v", err)
	}
	resp2, body2 := postJSON(t, tsB.URL+"/v1/optimize", req)
	if got := resp2.Header.Get("X-Cache"); got != "hit" {
		t.Errorf("restarted daemon X-Cache = %q, want hit", got)
	}
	if !bytes.Equal(body, body2) {
		t.Errorf("restored body differs: %s vs %s", body, body2)
	}
	var sz struct {
		Snapshot struct {
			Restored int    `json:"restored_entries"`
			Load     string `json:"load"`
		} `json:"snapshot"`
	}
	getJSON(t, tsB.URL+"/statusz", &sz)
	if sz.Snapshot.Load != "ok" || sz.Snapshot.Restored < 1 {
		t.Errorf("statusz snapshot = %+v, want load=ok restored>=1", sz.Snapshot)
	}
}

// A corrupt snapshot is a logged cold start: the daemon must come up and
// serve, never crash.
func TestSnapshotCorruptFileColdStarts(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cache.snap")
	if err := os.WriteFile(path, []byte("\x00 not a snapshot"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, ts := testServer(t, Config{SnapshotPath: path, SnapshotInterval: -1})
	resp, _ := postJSON(t, ts.URL+"/v1/optimize", `{"tech":"100nm","l":2e-6,"f":0.5}`)
	if resp.StatusCode != http.StatusOK || resp.Header.Get("X-Cache") != "miss" {
		t.Fatalf("cold start: status=%d cache=%q", resp.StatusCode, resp.Header.Get("X-Cache"))
	}
	var sz struct {
		Snapshot struct {
			Load string `json:"load"`
		} `json:"snapshot"`
	}
	getJSON(t, ts.URL+"/statusz", &sz)
	if sz.Snapshot.Load == "ok" || sz.Snapshot.Load == "none" {
		t.Errorf("statusz load = %q, want a skip reason", sz.Snapshot.Load)
	}
	m := metricsSnapshot(t, ts.URL)
	snap, _ := m["snapshot"].(map[string]any)
	if v, _ := snap["load_skipped"].(float64); v != 1 {
		t.Errorf("snapshot.load_skipped = %v, want 1", v)
	}
}

// The periodic loop must persist without any drain.
func TestSnapshotPeriodicSave(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cache.snap")
	_, ts := testServer(t, Config{SnapshotPath: path, SnapshotInterval: 20 * time.Millisecond})
	postJSON(t, ts.URL+"/v1/optimize", `{"tech":"100nm","l":2e-6,"f":0.5}`)
	deadline := time.Now().Add(5 * time.Second)
	for {
		if data, err := os.ReadFile(path); err == nil {
			if entries, err := decodeSnapshot(data); err == nil && len(entries) >= 1 {
				return
			}
		}
		if time.Now().After(deadline) {
			t.Fatal("periodic save never produced a loadable snapshot")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func getJSON(t *testing.T, url string, v any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatalf("decode %s: %v", url, err)
	}
}
