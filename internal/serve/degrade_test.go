package serve

import (
	"encoding/json"
	"net/http"
	"sync/atomic"
	"testing"

	"rlcint/internal/core"
	"rlcint/internal/diag"
	"rlcint/internal/tech"
)

// alwaysFail injects err at every core.eval, so every rigorous solve fails
// while the closed-form estimate (which never consults the injector) stays
// healthy.
func alwaysFail(err error) *diag.Injector {
	return &diag.Injector{Fault: func(s diag.Site) error {
		if s.Op == "core.eval" {
			return err
		}
		return nil
	}}
}

type degradedBody struct {
	Degraded bool            `json:"degraded"`
	Reason   string          `json:"reason"`
	Estimate json.RawMessage `json:"estimate"`
	Report   []reportAttempt `json:"report"`
}

// A failing solve must answer 200 with the flagged closed-form estimate —
// exactly core.EstimateOptimum — and the recovery-ladder report, never a
// bare 422.
func TestDegradedOptimizeAnswersWithEstimate(t *testing.T) {
	_, ts := testServer(t, Config{
		Injector:         alwaysFail(diag.New(diag.ErrNonConvergence, "chaos")),
		BreakerThreshold: -1,
	})
	resp, body := postJSON(t, ts.URL+"/v1/optimize", `{"tech":"100nm","l":2e-6,"f":0.5}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200 degraded; body=%s", resp.StatusCode, body)
	}
	if got := resp.Header.Get("X-Degraded"); got != "non-convergence" {
		t.Errorf("X-Degraded = %q, want non-convergence", got)
	}
	var d degradedBody
	if err := json.Unmarshal(body, &d); err != nil {
		t.Fatal(err)
	}
	if !d.Degraded || d.Reason != "non-convergence" {
		t.Errorf("body flags = (%v, %q), want (true, non-convergence)", d.Degraded, d.Reason)
	}
	if len(d.Report) == 0 {
		t.Error("degraded body missing the recovery-ladder report")
	}
	var est optimumResp
	if err := json.Unmarshal(d.Estimate, &est); err != nil {
		t.Fatal(err)
	}
	want, err := core.EstimateOptimum(problemOf(tech.Node100(), 2e-6, 0.5))
	if err != nil {
		t.Fatal(err)
	}
	if est.H != want.H || est.K != want.K || est.Tau != want.Tau || est.Method != string(core.MethodEstimate) {
		t.Errorf("estimate (h=%g k=%g tau=%g %s) != core.EstimateOptimum (h=%g k=%g tau=%g)",
			est.H, est.K, est.Tau, est.Method, want.H, want.K, want.Tau)
	}

	// Degraded answers are never cached: the repeat recomputes (and degrades
	// again) instead of serving the estimate as if it were exact.
	resp2, _ := postJSON(t, ts.URL+"/v1/optimize", `{"tech":"100nm","l":2e-6,"f":0.5}`)
	if got := resp2.Header.Get("X-Cache"); got == "hit" {
		t.Error("degraded answer was served from cache")
	}
	if resp2.Header.Get("X-Degraded") == "" {
		t.Error("repeat lost the degraded flag")
	}

	m := metricsSnapshot(t, ts.URL)
	deg, _ := m["degraded"].(map[string]any)
	if v, _ := deg["non-convergence"].(float64); v < 2 {
		t.Errorf("metrics degraded.non-convergence = %v, want >= 2", v)
	}
}

// The per-request no_degraded knob restores fail-hard semantics: the mapped
// 422 with the ladder report, exactly as if no estimate existed.
func TestNoDegradedKnobOptsOut(t *testing.T) {
	_, ts := testServer(t, Config{
		Injector:         alwaysFail(diag.New(diag.ErrNonConvergence, "chaos")),
		BreakerThreshold: -1,
	})
	resp, body := postJSON(t, ts.URL+"/v1/optimize",
		`{"tech":"100nm","l":2e-6,"f":0.5,"no_degraded":true}`)
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("status = %d, want 422; body=%s", resp.StatusCode, body)
	}
	if resp.Header.Get("X-Degraded") != "" {
		t.Error("opted-out response carries X-Degraded")
	}
	var env struct {
		Error apiError `json:"error"`
	}
	if err := json.Unmarshal(body, &env); err != nil {
		t.Fatal(err)
	}
	if env.Error.Kind != "non-convergence" || len(env.Error.Report) == 0 {
		t.Errorf("422 envelope = %+v, want non-convergence with report", env.Error)
	}
}

// DisableDegraded turns the fallback off daemon-wide.
func TestDisableDegradedServerWide(t *testing.T) {
	_, ts := testServer(t, Config{
		Injector:         alwaysFail(diag.New(diag.ErrNonConvergence, "chaos")),
		BreakerThreshold: -1,
		DisableDegraded:  true,
	})
	resp, _ := postJSON(t, ts.URL+"/v1/optimize", `{"tech":"100nm","l":2e-6,"f":0.5}`)
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("status = %d, want 422", resp.StatusCode)
	}
}

// Deadline failures degrade with their own reason kind.
func TestDegradedDeadlineKind(t *testing.T) {
	_, ts := testServer(t, Config{
		Injector:         alwaysFail(diag.New(diag.ErrDeadline, "chaos")),
		BreakerThreshold: -1,
	})
	resp, body := postJSON(t, ts.URL+"/v1/optimize", `{"tech":"100nm","l":2e-6,"f":0.5}`)
	if resp.StatusCode != http.StatusOK || resp.Header.Get("X-Degraded") != "deadline" {
		t.Fatalf("status=%d X-Degraded=%q body=%s",
			resp.StatusCode, resp.Header.Get("X-Degraded"), body)
	}
}

// /v1/plan degrades to core.EstimatePlan with the full plan shape.
func TestDegradedPlan(t *testing.T) {
	_, ts := testServer(t, Config{
		Injector:         alwaysFail(diag.New(diag.ErrNonConvergence, "chaos")),
		BreakerThreshold: -1,
	})
	resp, body := postJSON(t, ts.URL+"/v1/plan", `{"tech":"100nm","l":2e-6,"f":0.5,"length":0.02}`)
	if resp.StatusCode != http.StatusOK || resp.Header.Get("X-Degraded") == "" {
		t.Fatalf("status=%d X-Degraded=%q body=%s",
			resp.StatusCode, resp.Header.Get("X-Degraded"), body)
	}
	var d degradedBody
	if err := json.Unmarshal(body, &d); err != nil {
		t.Fatal(err)
	}
	var est planResp
	if err := json.Unmarshal(d.Estimate, &est); err != nil {
		t.Fatal(err)
	}
	want, err := core.EstimatePlan(problemOf(tech.Node100(), 2e-6, 0.5), 0.02)
	if err != nil {
		t.Fatal(err)
	}
	if est.Stages != want.Stages || est.H != want.H || est.Total != want.Total {
		t.Errorf("plan estimate %+v != core.EstimatePlan %+v", est, want)
	}
}

// /v1/delay degrades too — here via a tripped breaker (its solve path has no
// injection site), which also proves the short-circuit path serves estimates
// without running any solver.
func TestDegradedDelayViaOpenBreaker(t *testing.T) {
	s, ts := testServer(t, Config{BreakerThreshold: 2})
	region := regionOf("delay", "100nm", 2e-6)
	s.breakers.allow(region) // create the region
	for i := 0; i < 2; i++ {
		s.breakers.onResult(region, false, true, "non-convergence")
	}
	resp, body := postJSON(t, ts.URL+"/v1/delay",
		`{"tech":"100nm","l":2e-6,"h":0.01,"k":300,"f":0.5}`)
	if resp.StatusCode != http.StatusOK || resp.Header.Get("X-Degraded") != "breaker-open" {
		t.Fatalf("status=%d X-Degraded=%q body=%s",
			resp.StatusCode, resp.Header.Get("X-Degraded"), body)
	}
	var d degradedBody
	if err := json.Unmarshal(body, &d); err != nil {
		t.Fatal(err)
	}
	var est delayResp
	if err := json.Unmarshal(d.Estimate, &est); err != nil {
		t.Fatal(err)
	}
	node := tech.Node100()
	want, err := core.EstimateDelay(stageOf(node, 2e-6, 0.01, 300), 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if est.Tau != want || est.Iterations != 0 {
		t.Errorf("delay estimate = %+v, want tau=%g iterations=0", est, want)
	}
	if len(d.Report) != 0 {
		t.Error("short-circuited answer attached a ladder report, but no solve ran")
	}
}

// A coalesced burst into a failing solve records exactly one breaker result:
// the leader's. N concurrent identical failing requests must advance the
// failure count by one, not N.
func TestCoalescedFailureCountsOnceForBreaker(t *testing.T) {
	var evals atomic.Int64
	inj := &diag.Injector{Fault: func(site diag.Site) error {
		if site.Op == "core.eval" {
			evals.Add(1)
			return diag.New(diag.ErrNonConvergence, "chaos")
		}
		return nil
	}}
	s, ts := testServer(t, Config{Injector: inj, BreakerThreshold: 5})
	const n = 8
	done := make(chan struct{}, n)
	for i := 0; i < n; i++ {
		go func() {
			defer func() { done <- struct{}{} }()
			postJSON(t, ts.URL+"/v1/optimize", `{"tech":"100nm","l":2e-6,"f":0.5}`)
		}()
	}
	for i := 0; i < n; i++ {
		<-done
	}
	sts := s.breakers.statuses()
	if len(sts) != 1 {
		t.Fatalf("regions = %d, want 1", len(sts))
	}
	// The burst may straggle into 1..n separate computations depending on
	// timing, but the failure count must equal the computation count — never
	// one per request when requests coalesced.
	m := metricsSnapshot(t, ts.URL)
	misses := int(xcacheCount(m, "miss"))
	if sts[0].Failures != misses {
		t.Errorf("failures = %d, computations (misses) = %d — breaker must count per computation",
			sts[0].Failures, misses)
	}
	if coal := xcacheCount(m, "coalesced"); coal > 0 && sts[0].Failures >= n {
		t.Errorf("burst of %d coalesced requests counted as %d failures", n, sts[0].Failures)
	}
}
