package serve

import (
	"context"
	"sync"
	"time"

	"rlcint/internal/diag"
)

// flight is one in-progress computation shared by every request with the
// same canonical key.
type flight struct {
	done    chan struct{} // closed when val/err are final
	val     *cached
	err     error
	waiters int // callers currently blocked on done (leader included)
	cancel  context.CancelFunc
}

// flightGroup deduplicates concurrent identical computations (singleflight).
// Unlike the classic pattern, the computation does not run on the leader's
// request context: it runs on a context derived from the server's base
// context that is cancelled only when every interested caller has gone away
// — so one impatient client cannot kill a solve other clients still wait
// for, and an abandoned solve never runs on as an orphan.
type flightGroup struct {
	base context.Context // server lifetime; Close cancels it
	mu   sync.Mutex
	m    map[string]*flight
	wg   sync.WaitGroup // tracks computation goroutines for drain
}

func newFlightGroup(base context.Context) *flightGroup {
	return &flightGroup{base: base, m: make(map[string]*flight)}
}

// do returns fn's result for key, computing it at most once across
// concurrent callers. timeout bounds the computation (0 = none). shared
// reports that this call joined an in-flight computation started by an
// earlier caller. When ctx ends first, the caller detaches with ctx's error;
// the computation is cancelled only if it was the last caller.
func (g *flightGroup) do(ctx context.Context, key string, timeout time.Duration,
	fn func(context.Context) (*cached, error)) (v *cached, err error, shared bool) {
	g.mu.Lock()
	f, ok := g.m[key]
	shared = ok
	if !ok {
		cctx, cancel := context.WithCancel(g.base)
		f = &flight{done: make(chan struct{}), cancel: cancel}
		g.m[key] = f
		g.wg.Add(1)
		go g.run(f, key, cctx, timeout, fn)
	}
	f.waiters++
	g.mu.Unlock()

	select {
	case <-f.done:
		g.mu.Lock()
		f.waiters--
		g.mu.Unlock()
		return f.val, f.err, shared
	case <-ctx.Done():
		g.mu.Lock()
		f.waiters--
		if f.waiters == 0 {
			select {
			case <-f.done:
			default:
				// Last caller gone: stop the solve and unmap the flight so a
				// later identical request starts fresh instead of joining a
				// dying computation.
				f.cancel()
				if g.m[key] == f {
					delete(g.m, key)
				}
			}
		}
		g.mu.Unlock()
		return nil, ctx.Err(), shared
	}
}

func (g *flightGroup) run(f *flight, key string, cctx context.Context, timeout time.Duration,
	fn func(context.Context) (*cached, error)) {
	defer g.wg.Done()
	defer f.cancel()
	ctx := cctx
	if timeout > 0 {
		var tcancel context.CancelFunc
		ctx, tcancel = context.WithTimeout(cctx, timeout)
		defer tcancel()
	}
	v, err := runContained(fn, ctx)
	g.mu.Lock()
	f.val, f.err = v, err
	close(f.done)
	if g.m[key] == f {
		delete(g.m, key)
	}
	g.mu.Unlock()
}

// runContained confines a panic in the compute path to a typed ErrPanic,
// matching the library-wide boundary contract.
func runContained(fn func(context.Context) (*cached, error), ctx context.Context) (v *cached, err error) {
	defer diag.RecoverTo(&err, "serve.compute")
	return fn(ctx)
}

// wait blocks until every computation goroutine has exited — the drain step
// of a graceful shutdown (cancel base first, then wait).
func (g *flightGroup) wait() { g.wg.Wait() }
