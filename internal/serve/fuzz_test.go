package serve

import (
	"encoding/json"
	"hash/crc32"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// fuzzSrv is shared across fuzz iterations: small bounds and a short budget
// keep each accidental valid request cheap.
var (
	fuzzOnce sync.Once
	fuzzSrv  *Server
)

func fuzzHandler() http.Handler {
	fuzzOnce.Do(func() {
		fuzzSrv = New(Config{
			MaxSweepPoints: 64,
			DefaultTimeout: 200 * time.Millisecond,
			MaxTimeout:     200 * time.Millisecond,
			Logger:         log.New(io.Discard, "", 0),
		})
	})
	return fuzzSrv.Handler()
}

var fuzzEndpoints = []string{
	"/v1/optimize", "/v1/delay", "/v1/plan", "/v1/optimize-rc",
	"/v1/lcrit", "/v1/sweep", "/v1/check/oxide", "/v1/check/wire",
	"/v1/plan-power", "/v1/pareto",
}

// FuzzDecode throws arbitrary bodies at every endpoint decoder. The
// invariants: the server never panics, malformed JSON is always a plain 400,
// and whatever happens the response is one of the documented statuses with a
// well-formed JSON error envelope (sweeps may stream NDJSON on success).
func FuzzDecode(f *testing.F) {
	seeds := []string{
		``,
		`{}`,
		`{"tech":"100nm","l":2e-6,"f":0.5}`,
		`{"tech":"100nm","l":2e-6,"h":1e-3,"k":100}`,
		`{"tech":"100nm","ls":[0,1e-6],"f":0.5}`,
		`{"tech":"100nm","ls":[],"f":0.5}`,
		`{"tech":"100nm","ls":[1e308,-1e308]}`,
		`{"tech":"100nm","l":1e999}`,
		`{"tech":"100nm","l":-1e-6,"length":-1}`,
		`{"tech":"7nm"}`,
		`{"teCh":"100nm"}`, // case-insensitive field match, zero geometry: lcrit must 400, not NaN→500
		`{"tech":"100nm","bogus":true}`,
		`{"tech":"100nm"} trailing`,
		`{"peak_j":-1,"rms_j":1e99}`,
		`{"tech":"100nm","overshoot_v":-3}`,
		`{"tech":"100nm","l":2e-6,"length":0.02,"alpha":0.15,"freq":1e9}`,
		`{"tech":"100nm","l":2e-6,"alpha":2,"freq":-1}`,
		`{"tech":"100nm","l":2e-6,"length":0.02,"alpha":0,"freq":0,"points":1,"max_weight":-3}`,
		`{"tech":"250nm","l":1e-6,"alpha":1,"freq":3e9,"points":3,"max_weight":0.5}`,
		`{"tech":"100nm","ls":[0],"workers":-1,"tile_size":-9,"timeout_ms":-5}`,
		`[1,2,3]`,
		`"just a string"`,
		`{"tech":`,
		"\x00\xff\xfe",
		`{"tech":"100nm","ls":` + "[" + strings.Repeat("1e-9,", 200) + "2e-9]}",
	}
	for _, s := range seeds {
		for i := range fuzzEndpoints {
			f.Add(i, s)
		}
	}
	allowed := map[int]bool{
		200: true, 400: true, 404: true, 422: true,
		499: true, 503: true, 504: true,
	}
	f.Fuzz(func(t *testing.T, which int, body string) {
		if which < 0 {
			which = -which
		}
		path := fuzzEndpoints[which%len(fuzzEndpoints)]
		req := httptest.NewRequest("POST", path, strings.NewReader(body))
		req.Header.Set("Content-Type", "application/json")
		rec := httptest.NewRecorder()
		fuzzHandler().ServeHTTP(rec, req) // a panic here fails the fuzz run

		if !allowed[rec.Code] {
			t.Fatalf("%s body %q → undocumented status %d (%s)", path, body, rec.Code, rec.Body.Bytes())
		}
		if !json.Valid([]byte(body)) && rec.Code != 400 {
			t.Fatalf("%s: malformed JSON %q → %d, want 400", path, body, rec.Code)
		}
		if rec.Code >= 400 {
			var env struct {
				Error struct {
					Status int    `json:"status"`
					Kind   string `json:"kind"`
				} `json:"error"`
			}
			if err := json.Unmarshal(rec.Body.Bytes(), &env); err != nil {
				t.Fatalf("%s: error response is not a JSON envelope: %q", path, rec.Body.Bytes())
			}
			if env.Error.Status != rec.Code || env.Error.Kind == "" {
				t.Fatalf("%s: envelope %+v inconsistent with status %d", path, env.Error, rec.Code)
			}
		}
	})
}

// FuzzSnapshotLoad throws arbitrary bytes at the snapshot loader, both at
// the decoder and through a full server start. The invariants: never a
// panic, and anything that isn't a perfectly valid snapshot is a clean
// skip-and-cold-start — the server still comes up and still answers.
func FuzzSnapshotLoad(f *testing.F) {
	valid, err := encodeSnapshot([]*cached{
		{key: "optimize|100nm|1|2", ctype: "application/json", body: []byte(`{"h":1}` + "\n")},
	})
	if err != nil {
		f.Fatal(err)
	}
	f.Add([]byte{})
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add([]byte(`{"version":1,"crc32":0,"entries":[]}`))
	f.Add([]byte(`{"version":99,"crc32":0,"entries":[]}`))
	f.Add([]byte(`{"version":1,"crc32":` + "4294967295" + `,"entries":[{"key":"","ctype":"","body":""}]}`))
	f.Add([]byte("\x00\xff\xfe garbage"))
	f.Add([]byte(`[{"key":"a"}]`))

	payload := []byte(`[{"key":"k","ctype":"t","body":"eA=="}]`)
	wrapped, _ := json.Marshal(snapshotFile{Version: snapshotVersion, Schema: snapshotSchema(), CRC: crc32.ChecksumIEEE(payload), Entries: payload})
	f.Add(wrapped)
	noSchema, _ := json.Marshal(snapshotFile{Version: snapshotVersion, CRC: crc32.ChecksumIEEE(payload), Entries: payload})
	f.Add(noSchema)

	f.Fuzz(func(t *testing.T, data []byte) {
		entries, err := decodeSnapshot(data) // a panic here fails the run
		if err == nil {
			for _, e := range entries {
				if e.key == "" {
					t.Fatal("decoder admitted an entry with no key")
				}
			}
		}

		path := filepath.Join(t.TempDir(), "cache.snap")
		if werr := os.WriteFile(path, data, 0o644); werr != nil {
			t.Fatal(werr)
		}
		s := New(Config{
			SnapshotPath:     path,
			SnapshotInterval: -1, // no ticker: keep each iteration cheap
			Logger:           log.New(io.Discard, "", 0),
		})
		defer s.Close()
		req := httptest.NewRequest("GET", "/healthz", nil)
		rec := httptest.NewRecorder()
		s.Handler().ServeHTTP(rec, req)
		if rec.Code != 200 {
			t.Fatalf("server with snapshot %q failed /healthz: %d", data, rec.Code)
		}
		if err != nil {
			// A rejected snapshot must leave the cache cold.
			if _, _, _, n, _ := s.cache.stats(); n != 0 {
				t.Fatalf("rejected snapshot still populated %d cache entries", n)
			}
		}
	})
}
