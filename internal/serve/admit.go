package serve

import (
	"context"
	"errors"
	"sync/atomic"
)

// errQueueFull is the admission-control rejection: the concurrency limiter
// is saturated and the wait queue is at capacity. Mapped to HTTP 503.
var errQueueFull = errors.New("serve: admission queue full")

// limiter is the admission controller: at most maxInflight computations run
// concurrently, at most maxQueue more may wait for a slot, and anything
// beyond that is rejected immediately with errQueueFull — bounding both the
// CPU and the memory a traffic burst can claim.
type limiter struct {
	slots    chan struct{} // buffered; one token per running solve
	queued   atomic.Int64
	maxQueue int64
	rejected atomic.Int64
}

func newLimiter(maxInflight, maxQueue int) *limiter {
	return &limiter{
		slots:    make(chan struct{}, maxInflight),
		maxQueue: int64(maxQueue),
	}
}

// acquire claims a slot, waiting in the bounded queue if none is free. It
// fails fast with errQueueFull when the queue is at capacity, and with
// ctx.Err() when the caller gives up while queued.
func (l *limiter) acquire(ctx context.Context) error {
	select {
	case l.slots <- struct{}{}:
		return nil
	default:
	}
	if l.queued.Add(1) > l.maxQueue {
		l.queued.Add(-1)
		l.rejected.Add(1)
		return errQueueFull
	}
	defer l.queued.Add(-1)
	select {
	case l.slots <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (l *limiter) release() { <-l.slots }

// inflight is the number of currently running solves; depth the number of
// queued waiters. Both are point-in-time gauges for /metrics.
func (l *limiter) inflight() int  { return len(l.slots) }
func (l *limiter) depth() int64   { return l.queued.Load() }
func (l *limiter) rejects() int64 { return l.rejected.Load() }
func (l *limiter) capacity() int  { return cap(l.slots) }
