package serve

import (
	"encoding/json"
	"fmt"
	"hash/crc32"
	"hash/fnv"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"time"

	"rlcint/internal/pdn"
)

// snapshotVersion is bumped whenever the serialized snapshot layout changes;
// loadSnapshot rejects mismatches so a restarted daemon never replays an
// incompatible cache image. A rejected snapshot is a cold start, not a
// crash.
const snapshotVersion = 2

// snapshotSchema fingerprints the response types whose marshaled bodies a
// snapshot can contain, walking struct field names, JSON tags, and types
// recursively. The envelope's Schema field carries it, so a build whose
// response shapes changed rejects an older snapshot automatically — a cold
// start — instead of relying on someone remembering to bump
// snapshotVersion while a stale image replays wrong answers as cache hits.
var snapshotSchema = sync.OnceValue(func() string {
	h := fnv.New64a()
	seen := map[reflect.Type]bool{}
	var walk func(t reflect.Type)
	walk = func(t reflect.Type) {
		if seen[t] {
			fmt.Fprintf(h, "~%s", t.String())
			return
		}
		seen[t] = true
		fmt.Fprintf(h, "%s(", t.Kind())
		switch t.Kind() {
		case reflect.Struct:
			for i := 0; i < t.NumField(); i++ {
				f := t.Field(i)
				fmt.Fprintf(h, "%s`%s`:", f.Name, f.Tag.Get("json"))
				walk(f.Type)
			}
		case reflect.Pointer, reflect.Slice, reflect.Array:
			walk(t.Elem())
		case reflect.Map:
			walk(t.Key())
			walk(t.Elem())
		default:
			fmt.Fprint(h, t.String())
		}
		fmt.Fprint(h, ")")
	}
	for _, v := range []any{
		optimumResp{}, delayResp{}, planResp{}, sweepPointLine{},
		rcResp{}, lcritResp{}, oxideResp{}, wireResp{},
		pdn.IRResult{}, pdn.ImpedanceResult{},
		planPowerResp{}, paretoPointLine{},
	} {
		walk(reflect.TypeOf(v))
	}
	return fmt.Sprintf("%016x", h.Sum64())
})

// snapEntry is one cached response in a snapshot, hot-path metadata only —
// counters and recency are rebuilt by replaying the entries through put.
type snapEntry struct {
	Key   string `json:"key"`
	CType string `json:"ctype"`
	Body  []byte `json:"body"`
}

// snapshotFile is the on-disk envelope. The entry list is kept as raw JSON
// so the checksum covers exactly the bytes that will be decoded: any
// corruption of the payload — truncation, bit flips, a partial write that
// survived a crash — fails the CRC before any entry is trusted.
type snapshotFile struct {
	Version int             `json:"version"`
	Schema  string          `json:"schema"`
	CRC     uint32          `json:"crc32"`
	Entries json.RawMessage `json:"entries"`
}

// encodeSnapshot serializes cache entries into the versioned, checksummed
// envelope.
func encodeSnapshot(entries []*cached) ([]byte, error) {
	ses := make([]snapEntry, 0, len(entries))
	for _, e := range entries {
		ses = append(ses, snapEntry{Key: e.key, CType: e.ctype, Body: e.body})
	}
	payload, err := json.Marshal(ses)
	if err != nil {
		return nil, fmt.Errorf("serve: snapshot encode: %w", err)
	}
	return json.Marshal(snapshotFile{
		Version: snapshotVersion,
		Schema:  snapshotSchema(),
		CRC:     crc32.ChecksumIEEE(payload),
		Entries: payload,
	})
}

// decodeSnapshot validates the envelope (version, schema, checksum, shape)
// and returns the entries hot-order-preserving (cold end first). Every
// failure is an error, never a panic: callers log, skip, and cold-start.
func decodeSnapshot(data []byte) ([]*cached, error) {
	var sf snapshotFile
	if err := json.Unmarshal(data, &sf); err != nil {
		return nil, fmt.Errorf("serve: snapshot decode: %w", err)
	}
	if sf.Version != snapshotVersion {
		return nil, fmt.Errorf("serve: snapshot version %d, this build reads version %d", sf.Version, snapshotVersion)
	}
	if sf.Schema != snapshotSchema() {
		return nil, fmt.Errorf("serve: snapshot schema %q, this build's responses fingerprint as %q", sf.Schema, snapshotSchema())
	}
	if got := crc32.ChecksumIEEE(sf.Entries); got != sf.CRC {
		return nil, fmt.Errorf("serve: snapshot checksum mismatch (file %08x, payload %08x)", sf.CRC, got)
	}
	var ses []snapEntry
	if err := json.Unmarshal(sf.Entries, &ses); err != nil {
		return nil, fmt.Errorf("serve: snapshot payload decode: %w", err)
	}
	out := make([]*cached, 0, len(ses))
	for i, se := range ses {
		if se.Key == "" {
			return nil, fmt.Errorf("serve: snapshot entry %d has no key", i)
		}
		out = append(out, &cached{key: se.Key, ctype: se.CType, body: se.Body})
	}
	return out, nil
}

// writeSnapshotFile persists the encoded snapshot atomically: temp file in
// the same directory, fsync, rename — the checkpoint file discipline, so a
// kill mid-write leaves the previous snapshot intact.
func writeSnapshotFile(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".snapshot-*")
	if err != nil {
		return fmt.Errorf("serve: snapshot write: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("serve: snapshot write: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("serve: snapshot sync: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("serve: snapshot close: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("serve: snapshot rename: %w", err)
	}
	return nil
}

// snapStats tracks the snapshot lifecycle for /statusz and /metrics.
type snapStats struct {
	mu         sync.Mutex
	restored   int    // entries replayed into the cache at startup
	loadNote   string // "ok" / "none" / the skip reason
	saves      int64
	saveErrors int64
	lastSave   time.Time
	lastSaveN  int // entries in the last successful save
}

func (st *snapStats) snapshot() map[string]any {
	st.mu.Lock()
	defer st.mu.Unlock()
	out := map[string]any{
		"restored_entries": st.restored,
		"load":             st.loadNote,
		"saves":            st.saves,
		"save_errors":      st.saveErrors,
	}
	if !st.lastSave.IsZero() {
		out["last_save_unix"] = st.lastSave.Unix()
		out["last_save_entries"] = st.lastSaveN
	}
	return out
}

// loadCacheSnapshot restores the result cache from cfg.SnapshotPath at
// startup. Any failure — missing file, corrupt bytes, version skew — is a
// logged cold start, never fatal: a daemon must come up even when its
// snapshot does not.
func (s *Server) loadCacheSnapshot() {
	note, restored := "none", 0
	// Runs on the loader goroutine, concurrently with early requests (which
	// see a filling cache — correct, just colder); snap.mu guards the stats.
	defer func() {
		s.snap.mu.Lock()
		s.snap.loadNote = note
		s.snap.restored = restored
		s.snap.mu.Unlock()
	}()
	data, err := os.ReadFile(s.cfg.SnapshotPath)
	if err != nil {
		if !os.IsNotExist(err) {
			note = fmt.Sprintf("skipped: %v", err)
			s.cfg.Logger.Printf("snapshot load %s: %v (cold start)", s.cfg.SnapshotPath, err)
		}
		return
	}
	entries, err := decodeSnapshot(data)
	if err != nil {
		note = fmt.Sprintf("skipped: %v", err)
		s.metrics.snapshotOps.Add("load_skipped", 1)
		s.cfg.Logger.Printf("snapshot load %s: %v (cold start)", s.cfg.SnapshotPath, err)
		return
	}
	for _, e := range entries {
		s.cachePut(e)
	}
	note, restored = "ok", len(entries)
	s.metrics.snapshotOps.Add("load_ok", 1)
	s.cfg.Logger.Printf("snapshot load %s: restored %d entries", s.cfg.SnapshotPath, len(entries))
}

// SaveSnapshot persists the current result cache to the configured snapshot
// path. It is a no-op without a SnapshotPath. Safe for concurrent use; the
// atomic rename means readers never observe a torn file.
func (s *Server) SaveSnapshot() error {
	if s.cfg.SnapshotPath == "" {
		return nil
	}
	entries := s.cache.export()
	data, err := encodeSnapshot(entries)
	if err == nil {
		err = writeSnapshotFile(s.cfg.SnapshotPath, data)
	}
	s.snap.mu.Lock()
	if err != nil {
		s.snap.saveErrors++
	} else {
		s.snap.saves++
		s.snap.lastSave = time.Now()
		s.snap.lastSaveN = len(entries)
	}
	s.snap.mu.Unlock()
	if err != nil {
		s.metrics.snapshotOps.Add("save_error", 1)
		s.cfg.Logger.Printf("snapshot save %s: %v", s.cfg.SnapshotPath, err)
		return err
	}
	s.metrics.snapshotOps.Add("save", 1)
	return nil
}

// snapshotLoop saves periodically until the server context ends, each wait
// jittered ±10% so a fleet of daemons restarted together does not fsync its
// snapshots in lockstep. The final on-drain save happens in Close, after
// in-flight solves finish, so the last image includes everything the daemon
// computed. Runs on the loader goroutine started by New, which owns the
// snapWG slot.
func (s *Server) snapshotLoop(interval time.Duration) {
	t := time.NewTimer(jitterDuration(interval))
	defer t.Stop()
	for {
		select {
		case <-t.C:
			_ = s.SaveSnapshot()
			t.Reset(jitterDuration(interval))
		case <-s.base.Done():
			return
		}
	}
}

// jitterDuration spreads d uniformly over [0.9d, 1.1d].
func jitterDuration(d time.Duration) time.Duration {
	return time.Duration(float64(d) * (0.9 + 0.2*rand.Float64()))
}
