package serve

import (
	"encoding/json"
	"net/http"
	"testing"
)

func TestPDNIREndpoint(t *testing.T) {
	_, ts := testServer(t, Config{})
	resp, body := postJSON(t, ts.URL+"/v1/pdn/ir", `{"nx": 12, "ny": 12, "tech": "100nm"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var res struct {
		VDD       float64 `json:"vdd"`
		VMin      float64 `json:"v_min"`
		WorstDrop float64 `json:"worst_drop"`
		Solver    struct {
			Solver string `json:"solver"`
		} `json:"solver"`
	}
	if err := json.Unmarshal(body, &res); err != nil {
		t.Fatalf("decode: %v (%s)", err, body)
	}
	if res.VDD != 1.2 || res.WorstDrop <= 0 || res.VMin >= res.VDD {
		t.Errorf("implausible IR answer: %+v", res)
	}
	if res.Solver.Solver == "" {
		t.Error("solver stats missing from response")
	}

	// Identical request → cache hit; sparse counters appear in /metrics.
	resp2, _ := postJSON(t, ts.URL+"/v1/pdn/ir", `{"nx": 12, "ny": 12, "tech": "100nm"}`)
	if got := resp2.Header.Get("X-Cache"); got != "hit" {
		t.Errorf("second identical request X-Cache = %q, want hit", got)
	}
	m := metricsSnapshot(t, ts.URL)
	sp, _ := m["sparse"].(map[string]any)
	if v, _ := sp["solve|direct"].(float64); v != 1 {
		t.Errorf("sparse solve|direct metric = %v, want 1 (map %v)", v, sp)
	}
}

func TestPDNIRValidation(t *testing.T) {
	_, ts := testServer(t, Config{})
	for _, body := range []string{
		`{"nx": 1, "ny": 5}`,                      // grid too small
		`{"nx": 600, "ny": 600}`,                  // exceeds maxPDNNodes
		`{"nx": 8, "ny": 8, "tech": "13nm"}`,      // unknown tech
		`{"nx": 8, "ny": 8, "hot_x": 99}`,         // hotspot outside grid
		`{"nx": 8, "ny": 8, "bogus_field": true}`, // strict decoding
	} {
		resp, b := postJSON(t, ts.URL+"/v1/pdn/ir", body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d (%s), want 400", body, resp.StatusCode, b)
		}
	}
}

func TestPDNImpedanceEndpoint(t *testing.T) {
	_, ts := testServer(t, Config{})
	resp, body := postJSON(t, ts.URL+"/v1/pdn/impedance",
		`{"nx": 8, "ny": 8, "tech": "100nm", "points": 6, "f_start": 1e6, "f_stop": 1e9}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var res struct {
		Points []struct {
			F float64 `json:"f"`
			Z float64 `json:"z"`
		} `json:"points"`
		Peak struct {
			Z float64 `json:"z"`
		} `json:"peak"`
	}
	if err := json.Unmarshal(body, &res); err != nil {
		t.Fatalf("decode: %v (%s)", err, body)
	}
	if len(res.Points) != 6 {
		t.Fatalf("got %d points, want 6", len(res.Points))
	}
	if res.Peak.Z <= 0 {
		t.Error("no resonance peak in response")
	}
	for _, p := range res.Points {
		if p.F < 1e6 || p.F > 1e9+1 || p.Z <= 0 {
			t.Errorf("implausible point %+v", p)
		}
	}

	// Excessive point counts are rejected before any solve.
	resp2, _ := postJSON(t, ts.URL+"/v1/pdn/impedance", `{"nx": 8, "ny": 8, "points": 100000}`)
	if resp2.StatusCode != http.StatusBadRequest {
		t.Errorf("oversized sweep status %d, want 400", resp2.StatusCode)
	}
}
