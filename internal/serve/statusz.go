package serve

import (
	"encoding/json"
	"net/http"
	"time"

	"rlcint/internal/spice"
)

// handleStatusz renders the resilience-oriented operational snapshot: the
// effective configuration, snapshot lifecycle, every tracked circuit
// breaker region (tripped regions first), degraded-answer counts, and the
// cache/admission gauges — the page an operator reads when the daemon is
// answering strangely. /metrics stays the flat counter surface for
// scrapers; /statusz is structured for humans.
func (s *Server) handleStatusz(w http.ResponseWriter, r *http.Request) {
	hits, misses, evictions, entries, bytes := s.cache.stats()
	snap := map[string]any{
		"uptime_s": time.Since(s.metrics.start).Seconds(),
		"config": map[string]any{
			"max_inflight":       s.cfg.MaxInflight,
			"max_queue":          s.cfg.MaxQueue,
			"default_timeout_ms": s.cfg.DefaultTimeout.Milliseconds(),
			"max_timeout_ms":     s.cfg.MaxTimeout.Milliseconds(),
			"cache_entries":      s.cfg.CacheEntries,
			"cache_bytes":        s.cfg.CacheBytes,
			"max_sweep_points":   s.cfg.MaxSweepPoints,
			"snapshot_path":      s.cfg.SnapshotPath,
			"snapshot_interval":  s.cfg.SnapshotInterval.String(),
			"breaker_threshold":  s.cfg.BreakerThreshold,
			"breaker_cooldown":   s.cfg.BreakerCooldown.String(),
			"degraded_enabled":   !s.cfg.DisableDegraded,
		},
		"snapshot": s.snap.snapshot(),
		"breakers": map[string]any{
			"enabled":     s.breakers != nil,
			"transitions": expvarMapToGo(s.metrics.breaker),
			"regions":     s.breakers.statuses(),
		},
		"degraded": expvarMapToGo(s.metrics.degraded),
		// Reduced-order engagement for transient-backed endpoints: how often
		// the Krylov fast path answered vs fell back to the full solver.
		// Process-wide (the reduced-model cache is process-wide), so numbers
		// here cover every Server in the process.
		"mor": spice.ReductionStats(),
		"cache": map[string]int64{
			"hits":      hits,
			"misses":    misses,
			"evictions": evictions,
			"entries":   entries,
			"bytes":     bytes,
		},
		"admission": map[string]int64{
			"inflight":    int64(s.limiter.inflight()),
			"capacity":    int64(s.limiter.capacity()),
			"queue_depth": s.limiter.depth(),
			"queue_full":  s.limiter.rejects(),
		},
		"readiness": map[string]any{
			"ready":    s.Ready(),
			"draining": s.draining.Load(),
		},
	}
	if s.fleet != nil {
		snap["fleet"] = map[string]any{
			"status":   s.fleet.Status(),
			"forwards": expvarMapToGo(s.metrics.fleetOps),
			"client":   s.fleet.Metrics(),
		}
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(snap)
}
