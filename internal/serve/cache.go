package serve

import (
	"container/list"
	"sync"
)

// cached is one canonicalized response body held by the result cache. Only
// successful (2xx) responses are cached; errors always recompute.
type cached struct {
	key   string
	ctype string // Content-Type of the stored body
	body  []byte
}

func (c *cached) size() int64 { return int64(len(c.key) + len(c.body) + 64) }

// lruCache is a bounded LRU over canonical request keys: both an entry count
// bound and a byte bound, whichever trips first. The zero bounds disable the
// respective limit; an entry larger than the byte bound alone is never
// admitted. Safe for concurrent use.
type lruCache struct {
	mu         sync.Mutex
	maxEntries int
	maxBytes   int64
	bytes      int64
	ll         *list.List // front = most recently used
	items      map[string]*list.Element

	hits, misses, evictions int64
}

func newLRUCache(maxEntries int, maxBytes int64) *lruCache {
	return &lruCache{
		maxEntries: maxEntries,
		maxBytes:   maxBytes,
		ll:         list.New(),
		items:      make(map[string]*list.Element),
	}
}

// get returns the cached response for key, bumping its recency.
func (c *lruCache) get(key string) (*cached, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	return el.Value.(*cached), true
}

// put inserts (or refreshes) an entry, then evicts from the cold end until
// both bounds hold again.
func (c *lruCache) put(e *cached) {
	if c.maxBytes > 0 && e.size() > c.maxBytes {
		return // would evict the whole cache for one entry
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[e.key]; ok {
		c.bytes += e.size() - el.Value.(*cached).size()
		el.Value = e
		c.ll.MoveToFront(el)
	} else {
		c.items[e.key] = c.ll.PushFront(e)
		c.bytes += e.size()
	}
	for (c.maxEntries > 0 && c.ll.Len() > c.maxEntries) ||
		(c.maxBytes > 0 && c.bytes > c.maxBytes) {
		el := c.ll.Back()
		if el == nil {
			break
		}
		old := el.Value.(*cached)
		c.ll.Remove(el)
		delete(c.items, old.key)
		c.bytes -= old.size()
		c.evictions++
	}
}

// export returns the cache contents cold end first, so replaying the slice
// through put restores both the contents and the recency order. Entries are
// shared, not copied: a cached body is immutable once constructed, and an
// entry rejected by put (oversize) can never appear here because rejection
// happens before the entry is linked in.
func (c *lruCache) export() []*cached {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]*cached, 0, c.ll.Len())
	for el := c.ll.Back(); el != nil; el = el.Prev() {
		out = append(out, el.Value.(*cached))
	}
	return out
}

// stats snapshots the counters and current occupancy.
func (c *lruCache) stats() (hits, misses, evictions, entries, bytes int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.evictions, int64(c.ll.Len()), c.bytes
}
