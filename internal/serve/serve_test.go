package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"rlcint/internal/core"
	"rlcint/internal/diag"
	"rlcint/internal/tech"
	"rlcint/internal/testutil"
)

func testServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.Logger == nil {
		cfg.Logger = log.New(io.Discard, "", 0)
	}
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

func postJSON(t *testing.T, url, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	return resp, b
}

func metricsSnapshot(t *testing.T, base string) map[string]any {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer resp.Body.Close()
	var m map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatalf("decode /metrics: %v", err)
	}
	return m
}

func xcacheCount(m map[string]any, key string) float64 {
	xc, _ := m["xcache"].(map[string]any)
	v, _ := xc[key].(float64)
	return v
}

func TestHealthz(t *testing.T) {
	_, ts := testServer(t, Config{})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status = %d", resp.StatusCode)
	}
	var body map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body["status"] != "ok" {
		t.Errorf("healthz body = %v", body)
	}
}

// The optimize endpoint must agree exactly with the library facade and serve
// the repeat from cache, visibly in the X-Cache header and /metrics.
func TestOptimizeMatchesLibraryAndCaches(t *testing.T) {
	_, ts := testServer(t, Config{})
	req := `{"tech":"100nm","l":2e-6,"f":0.5}`

	resp, body := postJSON(t, ts.URL+"/v1/optimize", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("optimize status = %d body=%s", resp.StatusCode, body)
	}
	if got := resp.Header.Get("X-Cache"); got != "miss" {
		t.Errorf("first request X-Cache = %q, want miss", got)
	}
	var got optimumResp
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatal(err)
	}
	node := tech.Node100()
	want, err := core.Optimize(problemOf(node, 2e-6, 0.5))
	if err != nil {
		t.Fatal(err)
	}
	if got.H != want.H || got.K != want.K || got.Tau != want.Tau {
		t.Errorf("served optimum (h=%g k=%g tau=%g) != library (h=%g k=%g tau=%g)",
			got.H, got.K, got.Tau, want.H, want.K, want.Tau)
	}

	resp2, body2 := postJSON(t, ts.URL+"/v1/optimize", req)
	if got := resp2.Header.Get("X-Cache"); got != "hit" {
		t.Errorf("repeat request X-Cache = %q, want hit", got)
	}
	if !bytes.Equal(body, body2) {
		t.Error("cached body differs from computed body")
	}
	m := metricsSnapshot(t, ts.URL)
	if hits := xcacheCount(m, "hit"); hits != 1 {
		t.Errorf("metrics xcache.hit = %v, want 1", hits)
	}
	cache, _ := m["cache"].(map[string]any)
	if h, _ := cache["hits"].(float64); h != 1 {
		t.Errorf("metrics cache.hits = %v, want 1", h)
	}
}

// N concurrent identical requests must compute once: one miss, N-1
// coalesced joins, and byte-identical responses.
func TestConcurrentIdenticalRequestsComputeOnce(t *testing.T) {
	testutil.CheckGoroutines(t)
	_, ts := testServer(t, Config{})
	const n = 12
	req := `{"tech":"250nm","l":4.9e-6,"f":0.5}`
	var wg sync.WaitGroup
	bodies := make([][]byte, n)
	codes := make([]int, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/v1/optimize", "application/json", strings.NewReader(req))
			if err != nil {
				t.Errorf("POST: %v", err)
				return
			}
			defer resp.Body.Close()
			codes[i] = resp.StatusCode
			bodies[i], _ = io.ReadAll(resp.Body)
		}(i)
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		if codes[i] != http.StatusOK {
			t.Fatalf("request %d status = %d (%s)", i, codes[i], bodies[i])
		}
		if !bytes.Equal(bodies[i], bodies[0]) {
			t.Error("concurrent identical requests returned different bodies")
		}
	}
	m := metricsSnapshot(t, ts.URL)
	misses, hits, coalesced := xcacheCount(m, "miss"), xcacheCount(m, "hit"), xcacheCount(m, "coalesced")
	if misses != 1 {
		t.Errorf("xcache.miss = %v, want exactly 1 (one computation)", misses)
	}
	if hits+coalesced != n-1 {
		t.Errorf("hit=%v coalesced=%v, want hit+coalesced = %d", hits, coalesced, n-1)
	}
}

func TestSweepStreamsNDJSONAndCaches(t *testing.T) {
	_, ts := testServer(t, Config{})
	req := `{"tech":"100nm","ls":[0,1e-6,2e-6,4e-6],"f":0.5}`
	resp, body := postJSON(t, ts.URL+"/v1/sweep", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sweep status = %d body=%s", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("Content-Type = %q", ct)
	}
	var points int
	var sawDone bool
	sc := bufio.NewScanner(bytes.NewReader(body))
	for sc.Scan() {
		var line map[string]any
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		switch line["type"] {
		case "point":
			points++
			if line["method"] == "" {
				t.Error("point without method")
			}
		case "done":
			sawDone = true
			if n, _ := line["points"].(float64); int(n) != points {
				t.Errorf("done.points = %v, streamed %d", n, points)
			}
		default:
			t.Errorf("unexpected line type %v", line["type"])
		}
	}
	if points != 4 || !sawDone {
		t.Fatalf("streamed %d points, done=%v; want 4, true", points, sawDone)
	}

	// Identical repeat: chunk served from cache, byte-identical stream.
	resp2, body2 := postJSON(t, ts.URL+"/v1/sweep", req)
	if got := resp2.Header.Get("X-Cache"); got != "hit" {
		t.Errorf("repeat sweep X-Cache = %q, want hit", got)
	}
	if !bytes.Equal(body, body2) {
		t.Error("cached sweep stream differs")
	}

	// The sweep must agree with the library's batched engine.
	pts, err := core.SweepBatchCtx(context.Background(), core.SweepOptions{}, tech.Node100(), []float64{0, 1e-6, 2e-6, 4e-6}, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	var first sweepPointLine
	firstLine, _, _ := bytes.Cut(body, []byte("\n"))
	if err := json.Unmarshal(firstLine, &first); err != nil {
		t.Fatal(err)
	}
	if first.H != pts[0].Opt.H || first.PerUnit != pts[0].Opt.PerUnit {
		t.Errorf("served sweep point differs from engine: h=%g vs %g", first.H, pts[0].Opt.H)
	}
}

func TestSweepWarmMode(t *testing.T) {
	_, ts := testServer(t, Config{})
	req := `{"tech":"100nm","ls":[0,5e-7,1e-6,1.5e-6,2e-6],"f":0.5,"warm":true}`
	resp, body := postJSON(t, ts.URL+"/v1/sweep", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("warm sweep status = %d body=%s", resp.StatusCode, body)
	}
	if n := bytes.Count(body, []byte(`"type":"point"`)); n != 5 {
		t.Errorf("warm sweep streamed %d points, want 5", n)
	}
}

// Every documented error mapping, exercised end-to-end where the HTTP layer
// can produce it.
func TestErrorStatusesOverHTTP(t *testing.T) {
	_, ts := testServer(t, Config{})
	cases := []struct {
		name, path, body string
		status           int
		kind             string
	}{
		{"malformed-json", "/v1/optimize", `{"tech":`, 400, "bad-request"},
		{"unknown-field", "/v1/optimize", `{"tech":"100nm","bogus":1}`, 400, "bad-request"},
		{"string-for-float", "/v1/optimize", `{"tech":"100nm","l":"NaN"}`, 400, "bad-request"},
		{"trailing-garbage", "/v1/optimize", `{"tech":"100nm"} {"x":1}`, 400, "bad-request"},
		{"unknown-tech", "/v1/optimize", `{"tech":"7nm","l":1e-6}`, 400, "bad-request"},
		{"domain-threshold", "/v1/optimize", `{"tech":"100nm","l":2e-6,"f":1.5}`, 400, "domain"},
		{"domain-negative-l", "/v1/delay", `{"tech":"100nm","l":-1e-6,"h":1e-3,"k":100}`, 400, "domain"},
		{"empty-grid", "/v1/sweep", `{"tech":"100nm","ls":[]}`, 400, "bad-request"},
		{"absurd-grid", "/v1/sweep", `{"tech":"100nm","ls":[1,2,3]}`, 400, "bad-request"},
		{"plan-bad-length", "/v1/plan", `{"tech":"100nm","l":2e-6,"length":-1}`, 400, "domain"},
		{"oxide-negative", "/v1/check/oxide", `{"tech":"100nm","overshoot_v":-0.5}`, 400, "bad-request"},
		{"wire-implausible", "/v1/check/wire", `{"peak_j":1,"rms_j":2}`, 400, "bad-request"},
		{"lcrit-zero-stage", "/v1/lcrit", `{"tech":"100nm"}`, 400, "bad-request"},
		{"lcrit-zero-k", "/v1/lcrit", `{"tech":"100nm","l":2e-6,"h":1e-3}`, 400, "bad-request"},
	}
	// Shrink the sweep bound so "absurd-grid" trips it.
	s2, ts2 := testServer(t, Config{MaxSweepPoints: 2})
	_ = s2
	for _, tc := range cases {
		url := ts.URL
		if tc.name == "absurd-grid" {
			url = ts2.URL
		}
		resp, body := postJSON(t, url+tc.path, tc.body)
		if resp.StatusCode != tc.status {
			t.Errorf("%s: status = %d, want %d (body %s)", tc.name, resp.StatusCode, tc.status, body)
			continue
		}
		var env struct {
			Error apiError `json:"error"`
		}
		if err := json.Unmarshal(body, &env); err != nil {
			t.Errorf("%s: error body not JSON: %v", tc.name, err)
			continue
		}
		if env.Error.Kind != tc.kind {
			t.Errorf("%s: kind = %q, want %q", tc.name, env.Error.Kind, tc.kind)
		}
	}
}

// The full diag taxonomy → HTTP status table, including kinds the HTTP layer
// can only produce under solver pathologies.
func TestMapErrorTaxonomy(t *testing.T) {
	rep := &diag.Report{}
	rep.Record("opt-newton", "cold", diag.OutcomeFailed, "", errors.New("x"))
	cases := []struct {
		err    error
		status int
		kind   string
	}{
		{badRequestf("nope"), 400, "bad-request"},
		{diag.Domainf("op", "bad input"), 400, "domain"},
		{diag.New(diag.ErrNonConvergence, "op"), 422, "non-convergence"},
		{&solveError{err: diag.New(diag.ErrNonConvergence, "op"), report: rep}, 422, "non-convergence"},
		{diag.New(diag.ErrSingularJacobian, "op"), 422, "singular-jacobian"},
		{diag.New(diag.ErrTimestepCollapse, "op"), 422, "timestep-collapse"},
		{diag.New(diag.ErrCancelled, "op"), 499, "cancelled"},
		{context.Canceled, 499, "cancelled"},
		{diag.New(diag.ErrDeadline, "op"), 504, "deadline"},
		{context.DeadlineExceeded, 504, "deadline"},
		{diag.New(diag.ErrBudget, "op"), 504, "budget"},
		{errQueueFull, 503, "queue-full"},
		{errBreakerOpen, 503, "breaker-open"},
		{diag.New(diag.ErrPanic, "op"), 500, "panic"},
		{errors.New("mystery"), 500, "internal"},
	}
	for _, tc := range cases {
		ae := mapError(tc.err)
		if ae.Status != tc.status || ae.Kind != tc.kind {
			t.Errorf("mapError(%v) = (%d, %q), want (%d, %q)", tc.err, ae.Status, ae.Kind, tc.status, tc.kind)
		}
	}
	// A 422 from a solveError must carry the serialized ladder report.
	ae := mapError(&solveError{err: diag.New(diag.ErrNonConvergence, "op"), report: rep})
	if len(ae.Report) != 1 || ae.Report[0].Ladder != "opt-newton" || ae.Report[0].Outcome != "failed" {
		t.Errorf("422 report = %+v, want the recorded rung", ae.Report)
	}
}

func TestDeadlineMapsTo504(t *testing.T) {
	_, ts := testServer(t, Config{})
	// 200 cold points with a 1 ms budget cannot finish.
	var ls []string
	for i := 0; i < 200; i++ {
		ls = append(ls, fmt.Sprintf("%g", float64(i)*1e-8))
	}
	req := `{"tech":"100nm","ls":[` + strings.Join(ls, ",") + `],"f":0.5,"timeout_ms":1}`
	resp, body := postJSON(t, ts.URL+"/v1/sweep", req)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504 (body %.200s)", resp.StatusCode, body)
	}
}

func TestQueueFullMapsTo503(t *testing.T) {
	testutil.CheckGoroutines(t)
	s, ts := testServer(t, Config{MaxInflight: 1, MaxQueue: -1})
	// Park one slow cold sweep in the single slot.
	slowCtx, cancelSlow := context.WithCancel(context.Background())
	defer cancelSlow()
	var ls []string
	for i := 0; i < 2000; i++ {
		ls = append(ls, fmt.Sprintf("%g", float64(i)*1e-9))
	}
	slowDone := make(chan struct{})
	go func() {
		defer close(slowDone)
		req, _ := http.NewRequestWithContext(slowCtx, "POST", ts.URL+"/v1/sweep",
			strings.NewReader(`{"tech":"100nm","ls":[`+strings.Join(ls, ",")+`],"f":0.5}`))
		req.Header.Set("Content-Type", "application/json")
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}()
	for s.limiter.inflight() == 0 {
		time.Sleep(time.Millisecond)
	}
	// A different request now finds no slot and no queue.
	resp, body := postJSON(t, ts.URL+"/v1/optimize", `{"tech":"100nm","l":3e-6}`)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503 (body %s)", resp.StatusCode, body)
	}
	var env struct {
		Error apiError `json:"error"`
	}
	if err := json.Unmarshal(body, &env); err != nil || env.Error.Kind != "queue-full" {
		t.Errorf("503 body = %s", body)
	}
	cancelSlow()
	<-slowDone
	// The cancelled sweep must release its slot promptly — no orphaned
	// batch workers holding admission capacity.
	deadline := time.Now().Add(5 * time.Second)
	for s.limiter.inflight() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("slot never released after client cancellation")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// A client that disconnects mid-sweep must stop the underlying batch
// workers: inflight drains to zero and no goroutine survives.
func TestClientCancellationStopsSweepWorkers(t *testing.T) {
	testutil.CheckGoroutines(t)
	s, ts := testServer(t, Config{})
	ctx, cancel := context.WithCancel(context.Background())
	var ls []string
	for i := 0; i < 5000; i++ {
		ls = append(ls, fmt.Sprintf("%g", float64(i)*1e-9))
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		req, _ := http.NewRequestWithContext(ctx, "POST", ts.URL+"/v1/sweep",
			strings.NewReader(`{"tech":"100nm","ls":[`+strings.Join(ls, ",")+`],"f":0.5}`))
		req.Header.Set("Content-Type", "application/json")
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}()
	for s.limiter.inflight() == 0 {
		time.Sleep(time.Millisecond)
	}
	cancel()
	<-done
	deadline := time.Now().Add(5 * time.Second)
	for s.limiter.inflight() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("batch workers still holding the solve slot after client disconnect")
		}
		time.Sleep(5 * time.Millisecond)
	}
	s.Close() // drains compute goroutines; CheckGoroutines then proves no leak
}

// Shutdown with a solve in flight: Close cancels it and returns only after
// the compute goroutine exited.
func TestServerCloseDrainsInflightSolves(t *testing.T) {
	testutil.CheckGoroutines(t)
	s := New(Config{Logger: log.New(io.Discard, "", 0)})
	started := make(chan struct{})
	go func() {
		<-started
		s.Close()
	}()
	ctx := context.Background()
	var once sync.Once
	_, err, _ := s.flights.do(ctx, "k", 0, func(cctx context.Context) (*cached, error) {
		once.Do(func() { close(started) })
		<-cctx.Done() // only the server abort can end this
		return nil, cctx.Err()
	})
	if err == nil {
		t.Fatal("want cancellation error after Close")
	}
	s.Close()
}

func TestMethodNotAllowed(t *testing.T) {
	_, ts := testServer(t, Config{})
	resp, err := http.Get(ts.URL + "/v1/optimize")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/optimize = %d, want 405", resp.StatusCode)
	}
}

func TestAllUnaryEndpoints(t *testing.T) {
	_, ts := testServer(t, Config{})
	cases := []struct {
		path, body string
		checkField string
	}{
		{"/v1/optimize-rc", `{"tech":"100nm"}`, "h"},
		{"/v1/delay", `{"tech":"100nm","l":2e-6,"h":1e-3,"k":100,"f":0.5}`, "tau"},
		{"/v1/plan", `{"tech":"100nm","l":2e-6,"f":0.5,"length":0.01}`, "stages"},
		{"/v1/lcrit", `{"tech":"100nm","l":2e-6,"h":1e-3,"k":100}`, "lcrit"},
		{"/v1/check/oxide", `{"tech":"100nm","overshoot_v":0.4}`, "margin"},
		{"/v1/check/wire", `{"peak_j":1e9,"rms_j":5e8}`, "peak_margin"},
	}
	for _, tc := range cases {
		resp, body := postJSON(t, ts.URL+tc.path, tc.body)
		if resp.StatusCode != http.StatusOK {
			t.Errorf("%s: status %d (body %s)", tc.path, resp.StatusCode, body)
			continue
		}
		var m map[string]any
		if err := json.Unmarshal(body, &m); err != nil {
			t.Errorf("%s: bad JSON: %v", tc.path, err)
			continue
		}
		if _, ok := m[tc.checkField]; !ok {
			t.Errorf("%s: response %v missing %q", tc.path, m, tc.checkField)
		}
		// Second identical request must hit the cache.
		resp2, _ := postJSON(t, ts.URL+tc.path, tc.body)
		if got := resp2.Header.Get("X-Cache"); got != "hit" {
			t.Errorf("%s repeat: X-Cache = %q, want hit", tc.path, got)
		}
	}
}

func TestMetricsLadderCounters(t *testing.T) {
	_, ts := testServer(t, Config{})
	postJSON(t, ts.URL+"/v1/optimize", `{"tech":"100nm","l":2e-6,"f":0.5}`)
	m := metricsSnapshot(t, ts.URL)
	ladder, _ := m["ladder"].(map[string]any)
	if len(ladder) == 0 {
		t.Error("ladder rung counters empty after an optimize")
	}
	reqs, _ := m["requests"].(map[string]any)
	if reqs["/v1/optimize"] == nil {
		t.Error("request counter for /v1/optimize missing")
	}
	lat, _ := m["latency"].(map[string]any)
	if lat["/v1/optimize"] == nil {
		t.Error("latency histogram for /v1/optimize missing")
	}
}

// TestMORCountersExposed checks that the reduced-order engagement counters
// from internal/spice appear on both observability pages with the full key
// set. The counters are process-wide, so the test only asserts shape, not
// values (neighbouring tests may have run transients already).
func TestMORCountersExposed(t *testing.T) {
	_, ts := testServer(t, Config{})
	m := metricsSnapshot(t, ts.URL)
	mor, ok := m["mor"].(map[string]any)
	if !ok {
		t.Fatalf("/metrics missing mor block: %v", m["mor"])
	}
	for _, k := range []string{"engaged", "cache_hits", "fallbacks", "rejected"} {
		if _, ok := mor[k]; !ok {
			t.Errorf("/metrics mor block missing %q: %v", k, mor)
		}
	}
	var sz map[string]any
	getJSON(t, ts.URL+"/statusz", &sz)
	if _, ok := sz["mor"].(map[string]any); !ok {
		t.Errorf("/statusz missing mor block: %v", sz["mor"])
	}
}
