package serve

import (
	"context"
	"net/http"
	"strconv"
	"strings"

	"rlcint/internal/pdn"
	"rlcint/internal/runctl"
)

// maxPDNNodes bounds one request's mesh (nx*ny). The ceiling admits the
// 10⁵-node acceptance workload with headroom while keeping a single request
// from claiming unbounded memory.
const maxPDNNodes = 1 << 18

// maxPDNPoints bounds one impedance sweep's frequency grid: each point is a
// full 2n-unknown solve, far heavier than a sweep grid point.
const maxPDNPoints = 1024

// pdnIRReq drives /v1/pdn/ir: a DC IR-drop analysis of a parameterized
// power-grid mesh. The embedded Spec carries the mesh parameters; zero
// fields take the package defaults.
type pdnIRReq struct {
	pdn.Spec
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

func (q *pdnIRReq) validate() error { return validatePDNSpec(&q.Spec) }

// validatePDNSpec canonicalizes the spec in place (so cache keys see the
// defaulted form) and applies the server-side size cap.
func validatePDNSpec(s *pdn.Spec) error {
	c, err := s.Canonical()
	if err != nil {
		return badRequestf("%v", err)
	}
	if c.NX*c.NY > maxPDNNodes {
		return badRequestf("mesh of %d nodes exceeds the per-request limit of %d", c.NX*c.NY, maxPDNNodes)
	}
	*s = c
	return nil
}

// pdnKey canonicalizes a (defaulted) spec into a cache key segment.
func pdnKey(kind string, s pdn.Spec) string {
	var b strings.Builder
	b.WriteString("pdn-")
	b.WriteString(kind)
	b.WriteString("|")
	b.WriteString(s.Tech)
	for _, n := range []int{s.NX, s.NY, s.BumpNX, s.BumpNY, s.HotX, s.HotY} {
		b.WriteString("|")
		b.WriteString(strconv.Itoa(n))
	}
	for _, f := range []float64{s.PitchMM, s.LPerM, s.RBump, s.LBump, s.CNode, s.ILoad, s.IHot, s.VDD} {
		b.WriteString("|")
		b.WriteString(canonF(f))
	}
	return b.String()
}

func (q *pdnIRReq) key() string { return pdnKey("ir", q.Spec) }

// pdnImpReq drives /v1/pdn/impedance: an AC impedance-profile sweep at the
// probe node. Workers is an execution hint and stays out of the cache key.
type pdnImpReq struct {
	pdn.Spec
	FStart    float64 `json:"f_start,omitempty"`
	FStop     float64 `json:"f_stop,omitempty"`
	Points    int     `json:"points,omitempty"`
	ProbeX    int     `json:"probe_x,omitempty"`
	ProbeY    int     `json:"probe_y,omitempty"`
	Workers   int     `json:"workers,omitempty"`
	TimeoutMS int64   `json:"timeout_ms,omitempty"`
}

func (q *pdnImpReq) validate() error {
	if err := validatePDNSpec(&q.Spec); err != nil {
		return err
	}
	if err := reqFinite("f_start", q.FStart, "f_stop", q.FStop); err != nil {
		return err
	}
	if q.Points > maxPDNPoints {
		return badRequestf("impedance sweep of %d points exceeds the per-request limit of %d", q.Points, maxPDNPoints)
	}
	if q.Workers < 0 {
		return badRequestf("workers must be non-negative")
	}
	return nil
}

func (q *pdnImpReq) key() string {
	var b strings.Builder
	b.WriteString(pdnKey("imp", q.Spec))
	for _, f := range []float64{q.FStart, q.FStop} {
		b.WriteString("|")
		b.WriteString(canonF(f))
	}
	b.WriteString("|")
	b.WriteString(strconv.Itoa(q.Points))
	b.WriteString("|")
	b.WriteString(strconv.Itoa(q.ProbeX))
	b.WriteString(",")
	b.WriteString(strconv.Itoa(q.ProbeY))
	return b.String()
}

// handlePDNIR serves the DC IR-drop analysis. Large meshes route through the
// engine's CG path automatically; the solver stats land in the response and
// the /metrics sparse counters.
func (s *Server) handlePDNIR(w http.ResponseWriter, r *http.Request) {
	var q pdnIRReq
	if !s.decodeOrFail(w, r, &q, q.validate) {
		return
	}
	s.serveCached(w, r, q.key(), s.timeoutFor(q.TimeoutMS), func(ctx context.Context) (any, error) {
		m, err := pdn.Build(q.Spec)
		if err != nil {
			return nil, err
		}
		res, err := m.SolveIR()
		if err != nil {
			return nil, err
		}
		s.metrics.recordSparse(res.Solver)
		return res, nil
	})
}

// handlePDNImpedance serves the AC impedance-profile sweep through the
// batched engine, with run control wired to the request context so an
// abandoned sweep stops at its next frequency point.
func (s *Server) handlePDNImpedance(w http.ResponseWriter, r *http.Request) {
	var q pdnImpReq
	if !s.decodeOrFail(w, r, &q, q.validate) {
		return
	}
	workers := q.Workers
	if workers <= 0 || workers > s.cfg.MaxWorkers {
		workers = s.cfg.MaxWorkers
	}
	timeout := s.timeoutFor(q.TimeoutMS)
	s.serveCached(w, r, q.key(), timeout, func(ctx context.Context) (any, error) {
		m, err := pdn.Build(q.Spec)
		if err != nil {
			return nil, err
		}
		ctl := runctl.New(ctx, runctl.Limits{Timeout: timeout})
		return m.ImpedanceProfile(ctl, pdn.ImpedanceOpts{
			FStart: q.FStart, FStop: q.FStop, Points: q.Points,
			ProbeX: q.ProbeX, ProbeY: q.ProbeY, Workers: workers,
		})
	})
}
