// Package serve is the HTTP serving subsystem: it exposes the library's
// public facade — Optimize, Delay, PlanLine, Sweep, OptimizeRC, LCrit, and
// the reliability checks — as a JSON API hardened for heavy traffic.
//
// Three layers sit between a request and a solver:
//
//   - Result caching: requests are canonicalized into exact cache keys
//     (float bit patterns, normalized defaults) and successful responses are
//     kept in a bounded LRU (entry and byte bounds), so repeated identical
//     queries cost a map lookup.
//   - Request coalescing: concurrent identical requests share one
//     computation (singleflight). The computation runs on a context owned by
//     the group, cancelled only when every interested client has gone — one
//     impatient client cannot kill a shared solve, and a fully abandoned
//     solve stops promptly with no orphaned Newton iterations.
//   - Admission control: a concurrency limiter bounds simultaneous solves, a
//     bounded queue absorbs bursts, and anything beyond is rejected with 503
//     before it can claim memory or CPU. Per-request deadlines ride the
//     request context into the runctl layer.
//
// On top of those sit the resilience layers:
//
//   - Persistent cache snapshots: the result LRU is periodically (and on
//     drain) written to a versioned, checksummed snapshot file with the
//     checkpoint discipline (temp + fsync + atomic rename), and restored on
//     startup — a restarted daemon serves warm hits immediately. A corrupt
//     or version-skewed snapshot is detected and skipped: always a cold
//     start, never a crash.
//   - Per-region circuit breakers: solver failures are keyed by a coarse
//     quantization of the request region (endpoint × tech × half-decade of
//     inductance); after a threshold of consecutive failures the region's
//     breaker opens and requests skip the expensive recovery ladder, going
//     straight to degraded mode, with half-open probes restoring full
//     service.
//   - Graceful degradation: when the full solve fails, times out, or hits
//     an open breaker, the response is the closed-form RC-optimal /
//     Ismail–Friedman estimate, marked "degraded": true with the ladder
//     report attached and an X-Degraded header — never a bare 422/504 when
//     an estimate exists. Clients opt out per request with no_degraded.
//
// Sweeps stream as NDJSON, chunk by chunk, with each chunk independently
// cached and coalesced; every stream ends with a terminal status record
// ("done" or "error", both carrying the error-free prefix length), so a
// completed stream is always distinguishable from a dropped connection.
// Typed diag errors map onto documented HTTP statuses (see mapError). The
// observability surface is /healthz, /metrics, /statusz, and /debug/pprof.
package serve

import (
	"context"
	"encoding/json"
	"expvar"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"rlcint/internal/diag"
	"rlcint/internal/fleet"
)

// Config sizes the serving layers. The zero value of any field selects the
// default noted on it.
type Config struct {
	// MaxInflight bounds concurrently running solves (0 → GOMAXPROCS).
	MaxInflight int
	// MaxQueue bounds requests waiting for a solve slot (0 → 64; <0
	// disables queueing: a request either gets a slot immediately or is
	// rejected).
	MaxQueue int
	// DefaultTimeout is the per-request compute budget when the request does
	// not name one (0 → 30s).
	DefaultTimeout time.Duration
	// MaxTimeout caps client-requested timeout_ms (0 → 2m).
	MaxTimeout time.Duration
	// CacheEntries bounds the result cache's entry count (0 → 4096; <0
	// disables caching).
	CacheEntries int
	// CacheBytes bounds the result cache's memory (0 → 64 MiB).
	CacheBytes int64
	// MaxSweepPoints bounds one sweep request's grid (0 → 65536).
	MaxSweepPoints int
	// MaxWorkers caps the per-request sweep worker hint (0 → GOMAXPROCS).
	MaxWorkers int
	// SnapshotPath, when non-empty, enables persistent cache snapshots:
	// loaded at startup, saved every SnapshotInterval and on drain.
	SnapshotPath string
	// SnapshotInterval is the periodic save cadence (0 → 30s; <0 disables
	// periodic saves, leaving only the on-drain save).
	SnapshotInterval time.Duration
	// BreakerThreshold is the consecutive eligible-failure count that opens
	// a request region's circuit breaker (0 → 5; <0 disables breakers).
	BreakerThreshold int
	// BreakerCooldown is the open → half-open delay (0 → 10s).
	BreakerCooldown time.Duration
	// DisableDegraded turns off degraded-mode answers server-wide: solver
	// failures surface as their mapped errors, as if no estimate existed.
	DisableDegraded bool
	// Fleet, when non-nil, enables fleet mode: cache-missed unary requests
	// are forwarded to their key's ring owner (see internal/fleet). The
	// fleet's Gate, Logger, and Injector default to this server's.
	Fleet *fleet.Config
	// Injector injects solver faults into every solve for chaos testing
	// (nil in production).
	Injector *diag.Injector
	// Logger receives one structured access-log line per request (nil →
	// stderr).
	Logger *log.Logger
}

func (c Config) withDefaults() Config {
	if c.MaxInflight <= 0 {
		c.MaxInflight = runtime.GOMAXPROCS(0)
	}
	if c.MaxQueue == 0 {
		c.MaxQueue = 64
	} else if c.MaxQueue < 0 {
		c.MaxQueue = 0 // negative disables queueing entirely, like CacheEntries
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 30 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 2 * time.Minute
	}
	if c.CacheEntries == 0 {
		c.CacheEntries = 4096
	}
	if c.CacheBytes <= 0 {
		c.CacheBytes = 64 << 20
	}
	if c.MaxSweepPoints <= 0 {
		c.MaxSweepPoints = 65536
	}
	if c.MaxWorkers <= 0 {
		c.MaxWorkers = runtime.GOMAXPROCS(0)
	}
	if c.SnapshotInterval == 0 {
		c.SnapshotInterval = 30 * time.Second
	}
	if c.BreakerThreshold == 0 {
		c.BreakerThreshold = 5
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = 10 * time.Second
	}
	if c.Logger == nil {
		c.Logger = log.New(os.Stderr, "", log.LstdFlags|log.Lmicroseconds)
	}
	return c
}

// Server is one serving instance. Create with New, mount Handler on an
// http.Server, and Close during shutdown to cancel and drain in-flight
// solves.
type Server struct {
	cfg      Config
	mux      *http.ServeMux
	cache    *lruCache
	flights  *flightGroup
	limiter  *limiter
	metrics  *metrics
	breakers *breakerSet
	fleet    *fleet.Fleet
	snap     snapStats
	snapWG   sync.WaitGroup
	base     context.Context
	abort    context.CancelFunc

	// readyCh closes once the snapshot replay (if any) finishes; together
	// with draining it backs /readyz, which fleet peers and load balancers
	// probe. Liveness (/healthz) stays 200 through both phases.
	readyCh  chan struct{}
	draining atomic.Bool
}

// New builds a Server from cfg (zero value → all defaults). When
// cfg.SnapshotPath is set the cache is warmed from the snapshot file in the
// background (a missing or corrupt snapshot is a cold start, never an
// error); /readyz answers 503 until the replay finishes, then a background
// goroutine persists the cache every SnapshotInterval until Close. When
// cfg.Fleet is set, the server joins the peer ring and forwards cache-missed
// unary requests to their key's owner shard.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	base, abort := context.WithCancel(context.Background())
	s := &Server{
		cfg:     cfg,
		mux:     http.NewServeMux(),
		cache:   newLRUCache(cfg.CacheEntries, cfg.CacheBytes),
		flights: newFlightGroup(base),
		limiter: newLimiter(cfg.MaxInflight, cfg.MaxQueue),
		metrics: newMetrics(),
		base:    base,
		abort:   abort,
		readyCh: make(chan struct{}),
	}
	s.breakers = newBreakerSet(cfg.BreakerThreshold, cfg.BreakerCooldown, s.metrics.breaker)
	if cfg.Fleet != nil {
		fc := *cfg.Fleet
		if fc.Gate == nil {
			fc.Gate = &peerGate{s: s}
		}
		if fc.Logger == nil {
			fc.Logger = cfg.Logger
		}
		if fc.Injector == nil {
			fc.Injector = cfg.Injector
		}
		fl, err := fleet.New(fc)
		if err != nil {
			// A misconfigured fleet must not keep the daemon from answering:
			// run standalone. rlcd validates flags up front, so this is only
			// reachable through the library API.
			cfg.Logger.Printf("fleet: disabled: %v", err)
		}
		s.fleet = fl
	}
	if cfg.SnapshotPath != "" {
		// The replay runs off the request path: a daemon with a large snapshot
		// accepts liveness checks immediately and signals readiness when warm.
		s.snapWG.Add(1)
		go func() {
			defer s.snapWG.Done()
			s.loadCacheSnapshot()
			close(s.readyCh)
			if cfg.SnapshotInterval > 0 {
				s.snapshotLoop(cfg.SnapshotInterval)
			}
		}()
	} else {
		close(s.readyCh)
	}
	s.routes()
	return s
}

func (s *Server) routes() {
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /readyz", s.handleReadyz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /statusz", s.handleStatusz)
	s.mux.HandleFunc("POST /v1/optimize", s.handleOptimize)
	s.mux.HandleFunc("POST /v1/delay", s.handleDelay)
	s.mux.HandleFunc("POST /v1/plan", s.handlePlan)
	s.mux.HandleFunc("POST /v1/optimize-rc", s.handleOptimizeRC)
	s.mux.HandleFunc("POST /v1/lcrit", s.handleLCrit)
	s.mux.HandleFunc("POST /v1/sweep", s.handleSweep)
	s.mux.HandleFunc("POST /v1/check/oxide", s.handleCheckOxide)
	s.mux.HandleFunc("POST /v1/check/wire", s.handleCheckWire)
	s.mux.HandleFunc("POST /v1/plan-power", s.handlePlanPower)
	s.mux.HandleFunc("POST /v1/pareto", s.handlePareto)
	s.mux.HandleFunc("POST /v1/pdn/ir", s.handlePDNIR)
	s.mux.HandleFunc("POST /v1/pdn/impedance", s.handlePDNImpedance)
	// Process-global expvar page (memstats, cmdline); the server's own
	// counters live unpublished behind /metrics so multiple Servers in one
	// process never collide in the global namespace.
	s.mux.Handle("GET /debug/vars", expvar.Handler())
	s.mux.HandleFunc("/debug/pprof/", pprof.Index)
	s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}

// Handler returns the fully instrumented HTTP handler: access logging,
// request/latency metrics, and panic containment wrap the route mux.
func (s *Server) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		startAt := time.Now()
		rec := &statusRecorder{ResponseWriter: w}
		func() {
			defer func() {
				if p := recover(); p != nil {
					// A handler bug must not take the daemon down; solver
					// panics are already contained below this layer.
					if !rec.wrote {
						writeError(rec, apiError{
							Status:  http.StatusInternalServerError,
							Kind:    "panic",
							Message: fmt.Sprintf("serve: handler panic: %v", p),
						})
					}
				}
			}()
			s.mux.ServeHTTP(rec, r)
		}()
		d := time.Since(startAt)
		status := rec.status
		if status == 0 {
			status = http.StatusOK
		}
		s.metrics.observe(r.URL.Path, status, d)
		s.cfg.Logger.Printf("method=%s path=%s status=%d bytes=%d dur_ms=%.3f cache=%s",
			r.Method, r.URL.Path, status, rec.bytes, float64(d)/float64(time.Millisecond),
			orDash(rec.Header().Get("X-Cache")))
	})
}

func orDash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}

// Close cancels every in-flight computation, waits for the compute
// goroutines to drain, and — when snapshots are configured — persists a
// final cache snapshot so the next start is warm. Call after (or instead
// of) http.Server.Shutdown; it is what turns a stuck drain into a prompt
// one — solvers observe the cancellation at their next runctl tick.
func (s *Server) Close() {
	s.BeginDrain()
	s.fleet.Close()
	s.abort()
	s.flights.wait()
	s.snapWG.Wait()
	if s.cfg.SnapshotPath != "" {
		if err := s.SaveSnapshot(); err != nil {
			s.cfg.Logger.Printf("snapshot: drain save failed: %v", err)
		}
	}
}

// EffectiveConfig returns the configuration after defaulting — what this
// server actually runs with, for boot logs and diagnostics.
func (s *Server) EffectiveConfig() Config { return s.cfg }

// timeoutFor resolves a request's compute budget from its timeout_ms field.
func (s *Server) timeoutFor(ms int64) time.Duration {
	if ms <= 0 {
		return s.cfg.DefaultTimeout
	}
	d := time.Duration(ms) * time.Millisecond
	if d > s.cfg.MaxTimeout {
		return s.cfg.MaxTimeout
	}
	return d
}

// handleHealthz is liveness: the process is up and serving HTTP. It stays
// 200 while the snapshot replays and while draining — restarting a daemon
// for being not-yet-ready or deliberately-shutting-down would be wrong.
// Orchestrators gate traffic on /readyz instead.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(map[string]any{
		"status":   "ok",
		"ready":    s.Ready(),
		"uptime_s": time.Since(s.metrics.start).Seconds(),
	})
}

// handleReadyz is readiness: 200 only when the server should receive
// traffic. 503 while the startup snapshot replay is still running and after
// BeginDrain — fleet peers probe this, so a replaying or draining instance
// drops out of the candidate sets instead of answering cold or dying
// mid-request.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	reason := ""
	select {
	case <-s.readyCh:
	default:
		reason = "replaying snapshot"
	}
	if s.draining.Load() {
		reason = "draining"
	}
	w.Header().Set("Content-Type", "application/json")
	if reason != "" {
		w.WriteHeader(http.StatusServiceUnavailable)
		_ = json.NewEncoder(w).Encode(map[string]any{"ready": false, "reason": reason})
		return
	}
	_ = json.NewEncoder(w).Encode(map[string]any{"ready": true})
}

// Ready reports whether /readyz would answer 200 right now.
func (s *Server) Ready() bool {
	select {
	case <-s.readyCh:
		return !s.draining.Load()
	default:
		return false
	}
}

// BeginDrain flips readiness to 503 without interrupting in-flight work —
// the first step of a graceful shutdown, called by rlcd on the first
// SIGINT/SIGTERM (and by Close). Load balancers and fleet probes see the
// instance leave rotation while http.Server.Shutdown lets live requests
// finish.
func (s *Server) BeginDrain() { s.draining.Store(true) }

// WaitReady blocks until the startup snapshot replay finishes or ctx ends.
// Tests and embedders use it to avoid racing cold reads against the replay.
func (s *Server) WaitReady(ctx context.Context) error {
	select {
	case <-s.readyCh:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// statusRecorder captures the status and byte count for logs and metrics.
type statusRecorder struct {
	http.ResponseWriter
	status int
	bytes  int64
	wrote  bool
}

func (r *statusRecorder) WriteHeader(code int) {
	if !r.wrote {
		r.status = code
		r.wrote = true
	}
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(p []byte) (int, error) {
	if !r.wrote {
		r.status = http.StatusOK
		r.wrote = true
	}
	n, err := r.ResponseWriter.Write(p)
	r.bytes += int64(n)
	return n, err
}

// Flush forwards streaming flushes so NDJSON chunks reach the client as
// they complete.
func (r *statusRecorder) Flush() {
	if f, ok := r.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}
