package serve

import (
	"io"
	"log"
	"net"
	"net/http"
	"strings"
	"testing"
)

// The fleet benchmarks price the three rungs of the failover ladder against
// each other over real TCP: answering from the local shard, paying one hop
// to the key's owner, and detecting a dead owner before computing locally.

func benchFleetPost(b *testing.B, url, body string) int {
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		b.Fatalf("POST %s: %v", url, err)
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode
}

// BenchmarkFleetLocalHit: the request lands on its key's owner and the
// owner's cache answers — no forwarding, the fleet fast path.
func BenchmarkFleetLocalHit(b *testing.B) {
	srvs, addrs := startFleetMembers(b, 2, nil)
	body := keyOwnedBy(b, srvs[0].Fleet(), addrs[0])
	url := "http://" + addrs[0] + "/v1/optimize"
	if code := benchFleetPost(b, url, body); code != 200 {
		b.Fatalf("warmup status %d", code)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if code := benchFleetPost(b, url, body); code != 200 {
			b.Fatalf("status %d", code)
		}
	}
}

// BenchmarkFleetForwardedHit: the request lands on a non-owner, hops to the
// owner, and relays the owner's cache hit — the price of one extra peer
// round trip over BenchmarkFleetLocalHit.
func BenchmarkFleetForwardedHit(b *testing.B) {
	srvs, addrs := startFleetMembers(b, 2, nil)
	body := keyOwnedBy(b, srvs[1].Fleet(), addrs[0])
	url := "http://" + addrs[1] + "/v1/optimize"
	if code := benchFleetPost(b, url, body); code != 200 {
		b.Fatalf("warmup status %d", code)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if code := benchFleetPost(b, url, body); code != 200 {
			b.Fatalf("status %d", code)
		}
	}
}

// BenchmarkFleetFailover: the key's owner connection-refuses every attempt,
// so each request pays the failed forward before computing locally (cache
// disabled so the local solve really runs). Probing is off, which keeps the
// dead peer permanently "up" — every iteration exercises the full
// route → refused → fallback path rather than a short-circuit.
func BenchmarkFleetFailover(b *testing.B) {
	dead, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	deadAddr := dead.Addr().String()
	dead.Close()

	fc := fastFleet("live.bench:1", []string{deadAddr})
	fc.MaxAttempts = 1
	s := New(Config{CacheEntries: -1, Logger: log.New(io.Discard, "", 0), Fleet: fc})
	b.Cleanup(s.Close)
	h := s.Handler()
	body := keyOwnedBy(b, s.Fleet(), deadAddr)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if code := benchPost(b, h, "/v1/optimize", body); code != 200 {
			b.Fatalf("status %d", code)
		}
	}
}
