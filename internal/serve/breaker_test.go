package serve

import (
	"expvar"
	"net/http"
	"sync/atomic"
	"testing"
	"time"

	"rlcint/internal/diag"
)

func TestRegionOfQuantizesByHalfDecade(t *testing.T) {
	// 2e-6 and 3e-6 share the half-decade [1e-6, 10^-5.5); 4e-6 is the next.
	a := regionOf("optimize", "100nm", 2e-6)
	b := regionOf("optimize", "100nm", 3e-6)
	c := regionOf("optimize", "100nm", 4e-6)
	if a != b {
		t.Errorf("same half-decade split: %q vs %q", a, b)
	}
	if a == c {
		t.Errorf("different half-decades collide: %q", a)
	}
	if regionOf("delay", "100nm", 2e-6) == a {
		t.Error("endpoints must not share regions")
	}
	if regionOf("optimize", "250nm", 2e-6) == a {
		t.Error("technologies must not share regions")
	}
	if got := regionOf("optimize", "100nm", 0); got != "optimize|100nm|l^0" {
		t.Errorf("l=0 region = %q", got)
	}
}

func newTestBreakers(threshold int, cooldown time.Duration) *breakerSet {
	return newBreakerSet(threshold, cooldown, new(expvar.Map).Init())
}

func TestBreakerLifecycle(t *testing.T) {
	b := newTestBreakers(3, time.Hour)
	const r = "optimize|100nm|l^-6"

	// Closed: everything allowed; successes keep it closed.
	for i := 0; i < 5; i++ {
		if !b.allow(r) {
			t.Fatalf("closed breaker denied request %d", i)
		}
		b.onResult(r, true, false, "")
	}
	// Two failures then a success: the consecutive count must reset.
	for i := 0; i < 2; i++ {
		b.allow(r)
		b.onResult(r, false, true, "non-convergence")
	}
	b.allow(r)
	b.onResult(r, true, false, "")
	for i := 0; i < 2; i++ {
		b.allow(r)
		b.onResult(r, false, true, "non-convergence")
	}
	if st := b.statuses()[0]; st.State != "closed" || st.Failures != 2 {
		t.Fatalf("after reset + 2 failures: %+v", st)
	}
	// Third consecutive failure opens it.
	b.allow(r)
	b.onResult(r, false, true, "non-convergence")
	if st := b.statuses()[0]; st.State != "open" || st.Opens != 1 {
		t.Fatalf("after threshold: %+v", st)
	}
	// Open and cooling: short-circuit.
	if b.allow(r) {
		t.Fatal("open breaker allowed a request inside the cooldown")
	}
	if st := b.statuses()[0]; st.ShortCircuits != 1 {
		t.Fatalf("short_circuits = %d, want 1", st.ShortCircuits)
	}

	// Expire the cooldown by hand (same package) — the next allow is the
	// half-open probe, and only one probe may be in flight.
	b.mu.Lock()
	b.m[r].changed = time.Now().Add(-2 * time.Hour)
	b.mu.Unlock()
	if !b.allow(r) {
		t.Fatal("cooled breaker denied the probe")
	}
	if b.allow(r) {
		t.Fatal("second concurrent probe allowed")
	}
	// Inconclusive probe (cancelled client) re-arms instead of wedging.
	b.onResult(r, false, false, "cancelled")
	if !b.allow(r) {
		t.Fatal("re-armed half-open denied the next probe")
	}
	// Failed probe re-opens.
	b.onResult(r, false, true, "deadline")
	if st := b.statuses()[0]; st.State != "open" || st.Opens != 2 {
		t.Fatalf("after failed probe: %+v", st)
	}
	// Cool again; a successful probe closes.
	b.mu.Lock()
	b.m[r].changed = time.Now().Add(-2 * time.Hour)
	b.mu.Unlock()
	if !b.allow(r) {
		t.Fatal("cooled breaker denied the probe")
	}
	b.onResult(r, true, false, "")
	if st := b.statuses()[0]; st.State != "closed" || st.Failures != 0 {
		t.Fatalf("after successful probe: %+v", st)
	}
	// Ineligible failures (client cancels, admission rejects) never count.
	for i := 0; i < 10; i++ {
		b.allow(r)
		b.onResult(r, false, false, "cancelled")
	}
	if st := b.statuses()[0]; st.State != "closed" {
		t.Fatalf("ineligible failures opened the breaker: %+v", st)
	}
}

func TestBreakerDisabledAndNil(t *testing.T) {
	if newTestBreakers(-1, time.Second) != nil || newTestBreakers(0, time.Second) != nil {
		t.Fatal("threshold <= 0 must disable the set")
	}
	var b *breakerSet
	if !b.allow("x") {
		t.Error("nil set must allow everything")
	}
	b.onResult("x", false, true, "non-convergence") // must not panic
	if b.statuses() != nil {
		t.Error("nil set must report no regions")
	}
}

func TestBreakerRegionCapRunsUntracked(t *testing.T) {
	b := newTestBreakers(1, time.Hour)
	b.mu.Lock()
	for i := 0; i < maxBreakerRegions; i++ {
		b.m[string(rune(i))+"x"] = &breaker{changed: time.Now()}
	}
	b.mu.Unlock()
	if !b.allow("fresh-region") {
		t.Fatal("full region map must fail open (allow), not deny")
	}
	b.onResult("fresh-region", false, true, "deadline") // untracked: no-op, no panic
}

// End-to-end lifecycle over HTTP: consecutive injected solver failures open
// the region's breaker (visible in /statusz and /metrics), further requests
// short-circuit to degraded answers without touching the solver, and after
// the cooldown a successful probe restores full service.
func TestBreakerLifecycleHTTP(t *testing.T) {
	var failing atomic.Bool
	failing.Store(true)
	var evals atomic.Int64
	inj := &diag.Injector{Fault: func(site diag.Site) error {
		if site.Op != "core.eval" {
			return nil
		}
		evals.Add(1)
		if failing.Load() {
			return diag.New(diag.ErrNonConvergence, "chaos")
		}
		return nil
	}}
	_, ts := testServer(t, Config{
		BreakerThreshold: 3,
		BreakerCooldown:  30 * time.Millisecond,
		Injector:         inj,
	})

	// Distinct inductances, one half-decade bucket: distinct cache keys, one
	// breaker region.
	ls := []string{"1.1e-6", "1.5e-6", "2e-6", "2.5e-6", "3e-6"}
	post := func(l string) (*http.Response, []byte) {
		return postJSON(t, ts.URL+"/v1/optimize", `{"tech":"100nm","l":`+l+`,"f":0.5}`)
	}
	for i := 0; i < 3; i++ {
		resp, body := post(ls[i])
		if resp.StatusCode != http.StatusOK || resp.Header.Get("X-Degraded") != "non-convergence" {
			t.Fatalf("failure %d: status=%d X-Degraded=%q body=%s",
				i, resp.StatusCode, resp.Header.Get("X-Degraded"), body)
		}
	}
	// Threshold reached: the next request must short-circuit — degraded with
	// the breaker's own reason, and no new solver evaluation.
	before := evals.Load()
	resp, body := post(ls[3])
	if resp.StatusCode != http.StatusOK || resp.Header.Get("X-Degraded") != "breaker-open" {
		t.Fatalf("short-circuit: status=%d X-Degraded=%q body=%s",
			resp.StatusCode, resp.Header.Get("X-Degraded"), body)
	}
	if evals.Load() != before {
		t.Errorf("short-circuited request still ran the solver (%d evals)", evals.Load()-before)
	}

	var sz struct {
		Breakers struct {
			Enabled bool            `json:"enabled"`
			Regions []breakerStatus `json:"regions"`
		} `json:"breakers"`
	}
	getJSON(t, ts.URL+"/statusz", &sz)
	if !sz.Breakers.Enabled || len(sz.Breakers.Regions) == 0 {
		t.Fatalf("statusz breakers = %+v", sz.Breakers)
	}
	if st := sz.Breakers.Regions[0]; st.State != "open" || st.Region != regionOf("optimize", "100nm", 2e-6) {
		t.Errorf("tripped region not first/open in statusz: %+v", st)
	}
	m := metricsSnapshot(t, ts.URL)
	br, _ := m["breaker"].(map[string]any)
	if opens, _ := br["open"].(float64); opens < 1 {
		t.Errorf("metrics breaker.open = %v, want >= 1", opens)
	}
	if sc, _ := br["short-circuit"].(float64); sc < 1 {
		t.Errorf("metrics breaker.short-circuit = %v, want >= 1", sc)
	}

	// Heal the solver, wait out the cooldown: the probe closes the breaker
	// and full service resumes.
	failing.Store(false)
	time.Sleep(50 * time.Millisecond)
	resp, body = post(ls[4])
	if resp.StatusCode != http.StatusOK || resp.Header.Get("X-Degraded") != "" {
		t.Fatalf("probe: status=%d X-Degraded=%q body=%s",
			resp.StatusCode, resp.Header.Get("X-Degraded"), body)
	}
	getJSON(t, ts.URL+"/statusz", &sz)
	if st := sz.Breakers.Regions[0]; st.State != "closed" {
		t.Errorf("after successful probe: %+v", st)
	}
	m = metricsSnapshot(t, ts.URL)
	br, _ = m["breaker"].(map[string]any)
	if closes, _ := br["close"].(float64); closes < 1 {
		t.Errorf("metrics breaker.close = %v, want >= 1", closes)
	}
	if ho, _ := br["half-open"].(float64); ho < 1 {
		t.Errorf("metrics breaker.half-open = %v, want >= 1", ho)
	}
}
