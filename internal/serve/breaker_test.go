package serve

import (
	"expvar"
	"net/http"
	"sync/atomic"
	"testing"
	"time"

	"rlcint/internal/diag"
)

func TestRegionOfQuantizesByHalfDecade(t *testing.T) {
	// 2e-6 and 3e-6 share the half-decade [1e-6, 10^-5.5); 4e-6 is the next.
	a := regionOf("optimize", "100nm", 2e-6)
	b := regionOf("optimize", "100nm", 3e-6)
	c := regionOf("optimize", "100nm", 4e-6)
	if a != b {
		t.Errorf("same half-decade split: %q vs %q", a, b)
	}
	if a == c {
		t.Errorf("different half-decades collide: %q", a)
	}
	if regionOf("delay", "100nm", 2e-6) == a {
		t.Error("endpoints must not share regions")
	}
	if regionOf("optimize", "250nm", 2e-6) == a {
		t.Error("technologies must not share regions")
	}
	if got := regionOf("optimize", "100nm", 0); got != "optimize|100nm|l^0" {
		t.Errorf("l=0 region = %q", got)
	}
}

func newTestBreakers(threshold int, cooldown time.Duration) *breakerSet {
	return newBreakerSet(threshold, cooldown, new(expvar.Map).Init())
}

// allowed discards the probe token — for the call sites that only care
// whether the request may proceed.
func allowed(b *breakerSet, region string) bool {
	ok, _ := b.allow(region)
	return ok
}

func TestBreakerLifecycle(t *testing.T) {
	b := newTestBreakers(3, time.Hour)
	const r = "optimize|100nm|l^-6"

	// Closed: everything allowed; successes keep it closed.
	for i := 0; i < 5; i++ {
		if !allowed(b, r) {
			t.Fatalf("closed breaker denied request %d", i)
		}
		b.onResult(r, true, false, "")
	}
	// Two failures then a success: the consecutive count must reset.
	for i := 0; i < 2; i++ {
		b.allow(r)
		b.onResult(r, false, true, "non-convergence")
	}
	b.allow(r)
	b.onResult(r, true, false, "")
	for i := 0; i < 2; i++ {
		b.allow(r)
		b.onResult(r, false, true, "non-convergence")
	}
	if st := b.statuses()[0]; st.State != "closed" || st.Failures != 2 {
		t.Fatalf("after reset + 2 failures: %+v", st)
	}
	// Third consecutive failure opens it.
	b.allow(r)
	b.onResult(r, false, true, "non-convergence")
	if st := b.statuses()[0]; st.State != "open" || st.Opens != 1 {
		t.Fatalf("after threshold: %+v", st)
	}
	// Open and cooling: short-circuit.
	if allowed(b, r) {
		t.Fatal("open breaker allowed a request inside the cooldown")
	}
	if st := b.statuses()[0]; st.ShortCircuits != 1 {
		t.Fatalf("short_circuits = %d, want 1", st.ShortCircuits)
	}

	// Expire the cooldown by hand (same package) — the next allow is the
	// half-open probe, and only one probe may be in flight.
	b.mu.Lock()
	b.m[r].cooldownAt = time.Now().Add(-2 * time.Hour)
	b.mu.Unlock()
	if !allowed(b, r) {
		t.Fatal("cooled breaker denied the probe")
	}
	if allowed(b, r) {
		t.Fatal("second concurrent probe allowed")
	}
	// Inconclusive probe (cancelled client) re-arms instead of wedging.
	b.onResult(r, false, false, "cancelled")
	if !allowed(b, r) {
		t.Fatal("re-armed half-open denied the next probe")
	}
	// Failed probe re-opens.
	b.onResult(r, false, true, "deadline")
	if st := b.statuses()[0]; st.State != "open" || st.Opens != 2 {
		t.Fatalf("after failed probe: %+v", st)
	}
	// Cool again; a successful probe closes.
	b.mu.Lock()
	b.m[r].cooldownAt = time.Now().Add(-2 * time.Hour)
	b.mu.Unlock()
	if !allowed(b, r) {
		t.Fatal("cooled breaker denied the probe")
	}
	b.onResult(r, true, false, "")
	if st := b.statuses()[0]; st.State != "closed" || st.Failures != 0 {
		t.Fatalf("after successful probe: %+v", st)
	}
	// Ineligible failures (client cancels, admission rejects) never count.
	for i := 0; i < 10; i++ {
		b.allow(r)
		b.onResult(r, false, false, "cancelled")
	}
	if st := b.statuses()[0]; st.State != "closed" {
		t.Fatalf("ineligible failures opened the breaker: %+v", st)
	}
}

func TestBreakerDisabledAndNil(t *testing.T) {
	if newTestBreakers(-1, time.Second) != nil || newTestBreakers(0, time.Second) != nil {
		t.Fatal("threshold <= 0 must disable the set")
	}
	var b *breakerSet
	if !allowed(b, "x") {
		t.Error("nil set must allow everything")
	}
	b.onResult("x", false, true, "non-convergence") // must not panic
	b.probeAbort("x", 1)                            // must not panic
	if b.statuses() != nil {
		t.Error("nil set must report no regions")
	}
}

func TestBreakerRegionCapRunsUntracked(t *testing.T) {
	b := newTestBreakers(1, time.Hour)
	b.mu.Lock()
	for i := 0; i < maxBreakerRegions; i++ {
		b.m[string(rune(i))+"x"] = &breaker{changed: time.Now()}
	}
	b.mu.Unlock()
	if !allowed(b, "fresh-region") {
		t.Fatal("full region map must fail open (allow), not deny")
	}
	b.onResult("fresh-region", false, true, "deadline") // untracked: no-op, no panic
}

// End-to-end lifecycle over HTTP: consecutive injected solver failures open
// the region's breaker (visible in /statusz and /metrics), further requests
// short-circuit to degraded answers without touching the solver, and after
// the cooldown a successful probe restores full service.
func TestBreakerLifecycleHTTP(t *testing.T) {
	var failing atomic.Bool
	failing.Store(true)
	var evals atomic.Int64
	inj := &diag.Injector{Fault: func(site diag.Site) error {
		if site.Op != "core.eval" {
			return nil
		}
		evals.Add(1)
		if failing.Load() {
			return diag.New(diag.ErrNonConvergence, "chaos")
		}
		return nil
	}}
	_, ts := testServer(t, Config{
		BreakerThreshold: 3,
		BreakerCooldown:  30 * time.Millisecond,
		Injector:         inj,
	})

	// Distinct inductances, one half-decade bucket: distinct cache keys, one
	// breaker region.
	ls := []string{"1.1e-6", "1.5e-6", "2e-6", "2.5e-6", "3e-6"}
	post := func(l string) (*http.Response, []byte) {
		return postJSON(t, ts.URL+"/v1/optimize", `{"tech":"100nm","l":`+l+`,"f":0.5}`)
	}
	for i := 0; i < 3; i++ {
		resp, body := post(ls[i])
		if resp.StatusCode != http.StatusOK || resp.Header.Get("X-Degraded") != "non-convergence" {
			t.Fatalf("failure %d: status=%d X-Degraded=%q body=%s",
				i, resp.StatusCode, resp.Header.Get("X-Degraded"), body)
		}
	}
	// Threshold reached: the next request must short-circuit — degraded with
	// the breaker's own reason, and no new solver evaluation.
	before := evals.Load()
	resp, body := post(ls[3])
	if resp.StatusCode != http.StatusOK || resp.Header.Get("X-Degraded") != "breaker-open" {
		t.Fatalf("short-circuit: status=%d X-Degraded=%q body=%s",
			resp.StatusCode, resp.Header.Get("X-Degraded"), body)
	}
	if evals.Load() != before {
		t.Errorf("short-circuited request still ran the solver (%d evals)", evals.Load()-before)
	}

	var sz struct {
		Breakers struct {
			Enabled bool            `json:"enabled"`
			Regions []breakerStatus `json:"regions"`
		} `json:"breakers"`
	}
	getJSON(t, ts.URL+"/statusz", &sz)
	if !sz.Breakers.Enabled || len(sz.Breakers.Regions) == 0 {
		t.Fatalf("statusz breakers = %+v", sz.Breakers)
	}
	if st := sz.Breakers.Regions[0]; st.State != "open" || st.Region != regionOf("optimize", "100nm", 2e-6) {
		t.Errorf("tripped region not first/open in statusz: %+v", st)
	}
	m := metricsSnapshot(t, ts.URL)
	br, _ := m["breaker"].(map[string]any)
	if opens, _ := br["open"].(float64); opens < 1 {
		t.Errorf("metrics breaker.open = %v, want >= 1", opens)
	}
	if sc, _ := br["short-circuit"].(float64); sc < 1 {
		t.Errorf("metrics breaker.short-circuit = %v, want >= 1", sc)
	}

	// Heal the solver, wait out the cooldown: the probe closes the breaker
	// and full service resumes.
	failing.Store(false)
	time.Sleep(50 * time.Millisecond)
	resp, body = post(ls[4])
	if resp.StatusCode != http.StatusOK || resp.Header.Get("X-Degraded") != "" {
		t.Fatalf("probe: status=%d X-Degraded=%q body=%s",
			resp.StatusCode, resp.Header.Get("X-Degraded"), body)
	}
	getJSON(t, ts.URL+"/statusz", &sz)
	if st := sz.Breakers.Regions[0]; st.State != "closed" {
		t.Errorf("after successful probe: %+v", st)
	}
	m = metricsSnapshot(t, ts.URL)
	br, _ = m["breaker"].(map[string]any)
	if closes, _ := br["close"].(float64); closes < 1 {
		t.Errorf("metrics breaker.close = %v, want >= 1", closes)
	}
	if ho, _ := br["half-open"].(float64); ho < 1 {
		t.Errorf("metrics breaker.half-open = %v, want >= 1", ho)
	}
}

// The half-open probe slot must be releasable by token (probeAbort), must
// ignore stale or wrong tokens, and must be reclaimable after a full
// cooldown even if its holder never resolves it — the region can degrade,
// but it can never wedge.
func TestBreakerProbeAbortAndReclaim(t *testing.T) {
	const cooldown = time.Hour
	b := newTestBreakers(1, cooldown)
	const r = "optimize|100nm|l^-6"
	b.allow(r)
	b.onResult(r, false, true, "non-convergence") // threshold 1: open
	b.mu.Lock()
	b.m[r].cooldownAt = time.Now().Add(-2 * cooldown)
	b.mu.Unlock()

	ok, p1 := b.allow(r)
	if !ok || p1 == 0 {
		t.Fatalf("cooled breaker: allow = (%v, %d), want a granted probe", ok, p1)
	}
	if allowed(b, r) {
		t.Fatal("second concurrent probe allowed")
	}
	// A wrong token must not release the slot.
	b.probeAbort(r, p1+99)
	if allowed(b, r) {
		t.Fatal("wrong-token abort released the probe slot")
	}
	// The right token re-arms the slot for the next caller.
	b.probeAbort(r, p1)
	ok, p2 := b.allow(r)
	if !ok || p2 == 0 || p2 == p1 {
		t.Fatalf("after abort: allow = (%v, %d), want a fresh probe token", ok, p2)
	}
	// A stale abort (p1 resolved long ago) must not release p2's slot.
	b.probeAbort(r, p1)
	if allowed(b, r) {
		t.Fatal("stale abort released another caller's probe slot")
	}
	// Deadline backstop: a probe outstanding for a full cooldown is
	// reclaimed by the next caller instead of wedging the region.
	b.mu.Lock()
	b.m[r].probeStart = time.Now().Add(-2 * cooldown)
	b.mu.Unlock()
	ok, p3 := b.allow(r)
	if !ok || p3 == 0 || p3 == p2 {
		t.Fatalf("expired probe not reclaimed: allow = (%v, %d)", ok, p3)
	}
	b.onResult(r, true, false, "")
	if st := b.statuses()[0]; st.State != "closed" {
		t.Fatalf("after reclaimed probe succeeded: %+v", st)
	}
}

// A half-open probe that dies at admission control (solve slots full, no
// queue) must resolve the probe slot — the wedge found in review: the
// flight closure returned before onResult, leaving probing=true forever and
// the whole region short-circuiting until restart.
func TestBreakerProbeSurvivesAdmissionReject(t *testing.T) {
	const (
		modeFail = iota // region requests fail with non-convergence
		modeBlock       // solver parks on the release channel
		modeOK          // solver healthy
	)
	var mode atomic.Int64
	release := make(chan struct{})
	inj := &diag.Injector{Fault: func(site diag.Site) error {
		if site.Op != "core.eval" {
			return nil
		}
		switch mode.Load() {
		case modeFail:
			return diag.New(diag.ErrNonConvergence, "chaos")
		case modeBlock:
			<-release
		}
		return nil
	}}
	_, ts := testServer(t, Config{
		MaxInflight:      1,
		MaxQueue:         -1, // no queue: a busy slot rejects immediately
		BreakerThreshold: 1,
		BreakerCooldown:  30 * time.Millisecond,
		Injector:         inj,
	})
	post := func(l string) (*http.Response, []byte) {
		return postJSON(t, ts.URL+"/v1/optimize", `{"tech":"100nm","l":`+l+`,"f":0.5}`)
	}

	// One eligible failure opens the region (threshold 1).
	if resp, body := post("2e-6"); resp.Header.Get("X-Degraded") != "non-convergence" {
		t.Fatalf("opening failure: X-Degraded=%q body=%s", resp.Header.Get("X-Degraded"), body)
	}
	// Park a solve from a different region (different half-decade) on the
	// only slot.
	mode.Store(modeBlock)
	blocked := make(chan struct{})
	go func() {
		defer close(blocked)
		postJSON(t, ts.URL+"/v1/optimize", `{"tech":"100nm","l":2e-3,"f":0.5}`)
	}()
	waitFor(t, 5*time.Second, func() bool {
		var sz struct {
			Admission struct {
				Inflight int64 `json:"inflight"`
			} `json:"admission"`
		}
		getJSON(t, ts.URL+"/statusz", &sz)
		return sz.Admission.Inflight == 1
	})
	time.Sleep(50 * time.Millisecond) // past the cooldown: next allow is the probe

	// The probe is granted, then dies at admission: 503 queue-full (shed
	// load, never degrade) — and the probe slot must be released.
	resp, body := post("2.5e-6")
	if resp.StatusCode != http.StatusServiceUnavailable || resp.Header.Get("X-Degraded") != "" {
		t.Fatalf("probe at full admission: status=%d X-Degraded=%q body=%s",
			resp.StatusCode, resp.Header.Get("X-Degraded"), body)
	}

	// Free the slot, heal the solver: the next request in the region must be
	// allowed to probe (not short-circuited) and close the breaker.
	mode.Store(modeOK)
	close(release)
	<-blocked
	resp, body = post("3e-6")
	if resp.StatusCode != http.StatusOK || resp.Header.Get("X-Degraded") != "" {
		t.Fatalf("post-reject probe wedged: status=%d X-Degraded=%q body=%s",
			resp.StatusCode, resp.Header.Get("X-Degraded"), body)
	}
	var sz struct {
		Breakers struct {
			Regions []breakerStatus `json:"regions"`
		} `json:"breakers"`
	}
	getJSON(t, ts.URL+"/statusz", &sz)
	for _, st := range sz.Breakers.Regions {
		if st.Region == regionOf("optimize", "100nm", 2e-6) && st.State != "closed" {
			t.Fatalf("region did not recover: %+v", st)
		}
	}
}

func waitFor(t *testing.T, timeout time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition never became true")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestBreakerCooldownJitterBreaksLockstep is the thundering-herd regression
// test: two regions tripped at the same instant must not half-open at the
// same instant. The fake clock and seeded jitter fractions make the
// staggering deterministic — with an unjittered cooldown both probes would
// be granted at t = cooldown and this test fails.
func TestBreakerCooldownJitterBreaksLockstep(t *testing.T) {
	const cooldown = time.Second
	b := newTestBreakers(1, cooldown)
	base := time.Unix(1_000_000, 0)
	now := base
	b.now = func() time.Time { return now }
	fracs := []float64{0.0, 0.95} // region A: +1.00s, region B: +1.19s
	i := 0
	b.frac = func() float64 { f := fracs[i%len(fracs)]; i++; return f }

	for _, r := range []string{"opt|t|l^a", "opt|t|l^b"} {
		b.allow(r)
		b.onResult(r, false, true, "deadline")
	}
	// Just past the un-jittered cooldown: the low-jitter region probes, the
	// high-jitter one is still short-circuited — they left lockstep.
	now = base.Add(cooldown + 100*time.Millisecond)
	if !allowed(b, "opt|t|l^a") {
		t.Error("low-jitter region still denied past its cooldown")
	}
	if allowed(b, "opt|t|l^b") {
		t.Error("high-jitter region probed at the base cooldown: still in lockstep")
	}
	// And past the max jitter both are serviceable.
	now = base.Add(time.Duration(1.2*float64(cooldown)) + 100*time.Millisecond)
	if !allowed(b, "opt|t|l^b") {
		t.Error("high-jitter region denied past the maximum jittered cooldown")
	}
}
