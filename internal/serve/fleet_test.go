package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"testing"
	"time"

	"rlcint/internal/fleet"
	"rlcint/internal/testutil"
)

// fastFleet returns forwarding-client settings tuned for tests: no prober
// (peers permanently up), millisecond backoff, generous attempt budget.
func fastFleet(self string, peers []string) *fleet.Config {
	return &fleet.Config{
		Self:           self,
		Peers:          peers,
		ProbeInterval:  -1,
		AttemptTimeout: 5 * time.Second,
		BackoffBase:    time.Millisecond,
		BackoffMax:     5 * time.Millisecond,
		ForwardBudget:  10 * time.Second,
	}
}

// startFleetMembers boots n servers that know each other as peers, with
// Self equal to each instance's real listen address so every member
// computes identical ring ownership. mutate may adjust each member's config
// (its Fleet field is already populated).
func startFleetMembers(t testing.TB, n int, mutate func(i int, cfg *Config)) ([]*Server, []string) {
	t.Helper()
	lns := make([]net.Listener, n)
	addrs := make([]string, n)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatalf("listen: %v", err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	srvs := make([]*Server, n)
	for i := range srvs {
		peers := make([]string, 0, n-1)
		for j, a := range addrs {
			if j != i {
				peers = append(peers, a)
			}
		}
		cfg := Config{
			Logger: log.New(io.Discard, "", 0),
			Fleet:  fastFleet(addrs[i], peers),
		}
		if mutate != nil {
			mutate(i, &cfg)
		}
		s := New(cfg)
		ts := &httptest.Server{Listener: lns[i], Config: &http.Server{Handler: s.Handler()}}
		ts.Start()
		t.Cleanup(func() { ts.Close(); s.Close() })
		srvs[i] = s
	}
	return srvs, addrs
}

// keyOwnedBy scans inductance values until it finds an optimize request
// whose cache key the given member owns, so tests can aim a request at (or
// away from) a specific shard.
func keyOwnedBy(t testing.TB, f *fleet.Fleet, owner string) (body string) {
	t.Helper()
	for i := 1; i < 10000; i++ {
		l := 1e-6 + float64(i)*1e-9
		q := optimizeReq{Tech: "100nm", L: l, F: 0.5}
		if f.Owner(q.key()) == owner {
			return fmt.Sprintf(`{"tech":"100nm","l":%g,"f":0.5}`, l)
		}
	}
	t.Fatalf("no key owned by %s in 10000 tries", owner)
	return ""
}

// TestFleetForwardedHit: a request landing on the wrong instance is
// forwarded to its key's owner, relayed with X-Cache: forwarded, and the
// owner (not the relay) caches the result.
func TestFleetForwardedHit(t *testing.T) {
	srvs, addrs := startFleetMembers(t, 2, nil)
	body := keyOwnedBy(t, srvs[1].Fleet(), addrs[0])

	// Hitting the non-owner forwards to the owner, which computes (a miss
	// on its side) and answers.
	resp, b1 := postJSON(t, "http://"+addrs[1]+"/v1/optimize", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("forwarded request: status=%d body=%s", resp.StatusCode, b1)
	}
	if got := resp.Header.Get("X-Cache"); got != "forwarded" {
		t.Fatalf("X-Cache = %q, want forwarded", got)
	}
	if got := resp.Header.Get("X-Fleet-Peer"); got != addrs[0] {
		t.Errorf("X-Fleet-Peer = %q, want the owner %s", got, addrs[0])
	}

	// The owner holds the cache entry...
	resp2, b2 := postJSON(t, "http://"+addrs[0]+"/v1/optimize", body)
	if got := resp2.Header.Get("X-Cache"); got != "hit" {
		t.Errorf("owner X-Cache = %q, want hit (forward must fill the owner's cache)", got)
	}
	if !bytes.Equal(b1, b2) {
		t.Errorf("relayed body %s != owner body %s", b1, b2)
	}
	// ...and the relay does not: a repeat through the relay forwards again
	// (now an owner-side hit), keeping one authoritative copy per key.
	resp3, _ := postJSON(t, "http://"+addrs[1]+"/v1/optimize", body)
	if got := resp3.Header.Get("X-Cache"); got != "forwarded" {
		t.Errorf("repeat through relay X-Cache = %q, want forwarded", got)
	}

	m := metricsSnapshot(t, "http://"+addrs[1])
	fl, _ := m["fleet"].(map[string]any)
	if fwd, _ := fl["forwarded"].(float64); fwd != 2 {
		t.Errorf("relay fleet.forwarded = %v, want 2 (metrics %v)", fl["forwarded"], fl)
	}
}

// TestFleetFallbackLocalOnDeadPeer: when the key's owner is unreachable the
// instance computes locally — topology can cost a forward, never an answer.
func TestFleetFallbackLocalOnDeadPeer(t *testing.T) {
	testutil.CheckGoroutines(t)
	// Reserve an address, then close it: a peer that connection-refuses.
	dead, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadAddr := dead.Addr().String()
	dead.Close()

	fc := fastFleet("live.test:1", []string{deadAddr})
	fc.MaxAttempts = 1
	s, ts := testServer(t, Config{Fleet: fc})
	body := keyOwnedBy(t, s.Fleet(), deadAddr)

	resp, b := postJSON(t, ts.URL+"/v1/optimize", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d body=%s, want 200 computed locally", resp.StatusCode, b)
	}
	if got := resp.Header.Get("X-Cache"); got != "miss" {
		t.Errorf("X-Cache = %q, want miss (local compute)", got)
	}
	m := metricsSnapshot(t, ts.URL)
	fl, _ := m["fleet"].(map[string]any)
	if fb, _ := fl["fallback-local"].(float64); fb < 1 {
		t.Errorf("fleet.fallback-local = %v, want >= 1 (metrics %v)", fl["fallback-local"], fl)
	}
}

// TestFleetHopCapUnderTopologyChurn wires two instances whose ring views
// disagree on purpose (each believes the other owns everything it is asked
// for), so forwards ping-pong until the hop cap forces a local answer. Run
// under -race with concurrent membership churn: requests must all answer
// 200 and no forwarding goroutine may leak.
func TestFleetHopCapUnderTopologyChurn(t *testing.T) {
	testutil.CheckGoroutines(t)
	lns := make([]net.Listener, 2)
	addrs := make([]string, 2)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	srvs := make([]*Server, 2)
	for i := range srvs {
		// Self is a name that is NOT this instance's real address, and the
		// only peer is the other real instance: every key this instance does
		// not map to its fake self is "owned" by the other — the skewed
		// topology that would orbit requests forever without the hop cap.
		fc := fastFleet("skewed-"+strconv.Itoa(i)+".test:1", []string{addrs[1-i]})
		fc.MaxHops = 3
		s := New(Config{Logger: log.New(io.Discard, "", 0), Fleet: fc})
		ts := &httptest.Server{Listener: lns[i], Config: &http.Server{Handler: s.Handler()}}
		ts.Start()
		t.Cleanup(func() { ts.Close(); s.Close() })
		srvs[i] = s
	}

	// Membership churn racing the forwards: SetPeers swaps ring membership
	// while requests are mid-flight.
	stop := make(chan struct{})
	var churn sync.WaitGroup
	churn.Add(1)
	go func() {
		defer churn.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if i%2 == 0 {
				srvs[0].Fleet().SetPeers(nil) // standalone: everything local
			} else {
				srvs[0].Fleet().SetPeers([]string{addrs[1]})
			}
			time.Sleep(time.Millisecond)
		}
	}()

	var wg sync.WaitGroup
	errs := make(chan string, 64)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				l := 2e-6 + float64(w*100+i)*1e-9
				body := fmt.Sprintf(`{"tech":"100nm","l":%g,"f":0.5}`, l)
				resp, err := http.Post("http://"+addrs[i%2]+"/v1/optimize", "application/json",
					bytes.NewReader([]byte(body)))
				if err != nil {
					errs <- fmt.Sprintf("worker %d: %v", w, err)
					continue
				}
				b, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Sprintf("worker %d: status %d body %.120s", w, resp.StatusCode, b)
				}
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	churn.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
	// The skewed ring must actually have exercised the cap on at least one
	// instance — otherwise this test proved nothing about loops.
	capped := 0.0
	for i := range srvs {
		m := metricsSnapshot(t, "http://"+addrs[i])
		if fl, ok := m["fleet"].(map[string]any); ok {
			if v, _ := fl["hop-capped"].(float64); v > 0 {
				capped += v
			}
		}
	}
	if capped == 0 {
		t.Error("no request ever hit the hop cap; the loop topology was not exercised")
	}
}

// TestFleetStatuszSurfaces: ring membership and peer health are visible to
// operators.
func TestFleetStatuszSurfaces(t *testing.T) {
	fc := fastFleet("self.test:1", []string{"peer-a:1", "peer-b:2"})
	_, ts := testServer(t, Config{Fleet: fc})
	resp, err := http.Get(ts.URL + "/statusz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sz struct {
		Fleet struct {
			Status struct {
				Self    string `json:"self"`
				Members int    `json:"members"`
				Peers   []struct {
					Addr string `json:"addr"`
					Up   bool   `json:"up"`
				} `json:"peers"`
			} `json:"status"`
		} `json:"fleet"`
		Readiness struct {
			Ready bool `json:"ready"`
		} `json:"readiness"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&sz); err != nil {
		t.Fatal(err)
	}
	if sz.Fleet.Status.Self != "self.test:1" || sz.Fleet.Status.Members != 3 || len(sz.Fleet.Status.Peers) != 2 {
		t.Errorf("statusz fleet = %+v", sz.Fleet.Status)
	}
	if !sz.Readiness.Ready {
		t.Error("statusz readiness.ready = false on an idle server")
	}
}
