package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"rlcint/internal/diag"
)

// statusClientClosed is the non-standard "client closed request" status
// (nginx's 499) used for solves abandoned because the client disconnected.
// The client never sees it; it exists for access logs and /metrics.
const statusClientClosed = 499

// apiError is the JSON error body every non-2xx response carries.
type apiError struct {
	Status  int             `json:"status"`
	Kind    string          `json:"kind"`
	Message string          `json:"message"`
	Report  []reportAttempt `json:"report,omitempty"`

	// RetryAfter, when positive, emits a Retry-After header (whole seconds,
	// rounded up) telling clients — and fleet peers, whose backoff honors it
	// — when this 503 is worth retrying. Unexported from the JSON body.
	RetryAfter time.Duration `json:"-"`
}

// reportAttempt is one serialized recovery-ladder rung of a diag.Report,
// attached to 422 bodies so clients see what the solver tried.
type reportAttempt struct {
	Ladder  string `json:"ladder"`
	Rung    string `json:"rung"`
	Outcome string `json:"outcome"`
	Detail  string `json:"detail,omitempty"`
	Error   string `json:"error,omitempty"`
}

// badRequest marks a decode/validation failure of the HTTP layer itself
// (malformed JSON, missing fields, absurd grids) — always a 400.
type badRequest struct{ msg string }

func (e *badRequest) Error() string { return e.msg }

func badRequestf(format string, args ...any) *badRequest {
	return &badRequest{msg: "serve: " + fmt.Sprintf(format, args...)}
}

// solveError carries the recovery-ladder report alongside a solver failure
// through the singleflight layer, so coalesced followers of a failed solve
// render the same 422 body as the leader.
type solveError struct {
	err    error
	report *diag.Report
}

func (e *solveError) Error() string { return e.err.Error() }
func (e *solveError) Unwrap() error { return e.err }

// mapError translates a failure into its documented HTTP status:
//
//	400 bad-request / domain    malformed request or ErrDomain input
//	422 non-convergence / singular-jacobian / timestep-collapse
//	                            the solver ran and typed-failed; the body
//	                            carries the serialized DiagReport
//	499 cancelled               client disconnected mid-solve
//	503 queue-full              admission control rejected the request
//	503 breaker-open            the region's circuit breaker short-circuited
//	                            the solve and degradation was opted out
//	504 deadline / budget       per-request deadline or compute budget hit
//	500 panic / internal        contained panic or unclassified failure
func mapError(err error) apiError {
	var rep *diag.Report
	var se *solveError
	if errors.As(err, &se) {
		rep = se.report
	}
	kindOf := func(status int, kind string) apiError {
		ae := apiError{Status: status, Kind: kind, Message: err.Error()}
		if status == http.StatusUnprocessableEntity {
			ae.Report = reportOf(rep)
		}
		return ae
	}
	var br *badRequest
	switch {
	case errors.As(err, &br):
		return kindOf(http.StatusBadRequest, "bad-request")
	case errors.Is(err, errQueueFull):
		return kindOf(http.StatusServiceUnavailable, "queue-full")
	case errors.Is(err, errBreakerOpen):
		return kindOf(http.StatusServiceUnavailable, "breaker-open")
	case errors.Is(err, diag.ErrDomain):
		return kindOf(http.StatusBadRequest, "domain")
	case errors.Is(err, diag.ErrNonConvergence):
		return kindOf(http.StatusUnprocessableEntity, "non-convergence")
	case errors.Is(err, diag.ErrSingularJacobian):
		return kindOf(http.StatusUnprocessableEntity, "singular-jacobian")
	case errors.Is(err, diag.ErrTimestepCollapse):
		return kindOf(http.StatusUnprocessableEntity, "timestep-collapse")
	case errors.Is(err, diag.ErrDeadline), errors.Is(err, context.DeadlineExceeded):
		return kindOf(http.StatusGatewayTimeout, "deadline")
	case errors.Is(err, diag.ErrBudget):
		return kindOf(http.StatusGatewayTimeout, "budget")
	case errors.Is(err, diag.ErrCancelled), errors.Is(err, context.Canceled):
		return kindOf(statusClientClosed, "cancelled")
	case errors.Is(err, diag.ErrPanic):
		return kindOf(http.StatusInternalServerError, "panic")
	default:
		return kindOf(http.StatusInternalServerError, "internal")
	}
}

// mapErrorWithRetry maps err like mapError and, for the load-shedding 503s,
// attaches a Retry-After hint derived from live server state: queue-full
// scales with how oversubscribed the solve slots are, breaker-open reports
// the region's remaining cooldown.
func (s *Server) mapErrorWithRetry(err error, region string) apiError {
	ae := mapError(err)
	switch ae.Kind {
	case "queue-full":
		ae.RetryAfter = s.queueRetryAfter()
	case "breaker-open":
		if d := s.breakers.retryAfter(region); d > 0 {
			ae.RetryAfter = d
		} else {
			ae.RetryAfter = time.Second
		}
	}
	return ae
}

// queueRetryAfter estimates when admission control will next have room: one
// second per full queue-depth's worth of waiters per slot, clamped to
// [1s, 30s].
func (s *Server) queueRetryAfter() time.Duration {
	capacity := s.limiter.capacity()
	if capacity <= 0 {
		capacity = 1
	}
	d := time.Duration(1+int(s.limiter.depth())/capacity) * time.Second
	if d > 30*time.Second {
		d = 30 * time.Second
	}
	return d
}

func reportOf(rep *diag.Report) []reportAttempt {
	if rep == nil || len(rep.Attempts) == 0 {
		return nil
	}
	out := make([]reportAttempt, 0, len(rep.Attempts))
	for _, a := range rep.Attempts {
		ra := reportAttempt{
			Ladder:  a.Ladder,
			Rung:    a.Rung,
			Outcome: string(a.Outcome),
			Detail:  a.Detail,
		}
		if a.Err != nil {
			ra.Error = a.Err.Error()
		}
		out = append(out, ra)
	}
	return out
}

// writeError renders the mapped failure as the standard JSON error envelope.
func writeError(w http.ResponseWriter, ae apiError) {
	w.Header().Set("Content-Type", "application/json")
	if ae.RetryAfter > 0 {
		secs := int((ae.RetryAfter + time.Second - 1) / time.Second)
		w.Header().Set("Retry-After", strconv.Itoa(secs))
	}
	w.WriteHeader(ae.Status)
	_ = json.NewEncoder(w).Encode(struct {
		Error apiError `json:"error"`
	}{ae})
}
