package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"rlcint/internal/diag"
	"rlcint/internal/testutil"
)

// chaosStatuses are the only statuses any request may see during chaos: the
// documented taxonomy minus 400 (every chaos request is well-formed) and 500
// (nothing should panic).
var chaosStatuses = map[int]bool{
	200: true, 422: true, 499: true, 503: true, 504: true,
}

// TestChaosMixedFaults is the in-process chaos harness: concurrent traffic
// across every solver endpoint while a fault injector fails every third
// solver evaluation, breakers trip and recover on a short cooldown, some
// clients abandon mid-flight, and the snapshot loop persists throughout.
//
// Invariants, checked per response and at the end:
//   - only documented statuses, never a 500;
//   - a degraded body and the X-Degraded header appear together or not at
//     all, and a degraded answer always carries an estimate;
//   - a 200 sweep stream always ends with a terminal "done"/"error" record
//     whose points field equals the streamed point count;
//   - /statusz stays parseable and every breaker region reports a known
//     state;
//   - Close drains without leaking goroutines (testutil.CheckGoroutines).
func TestChaosMixedFaults(t *testing.T) {
	testutil.CheckGoroutines(t)
	path := filepath.Join(t.TempDir(), "cache.snap")
	s, ts := testServer(t, Config{
		Injector:         diag.FaultEvery("core.eval", 3, diag.New(diag.ErrNonConvergence, "chaos")),
		BreakerThreshold: 4,
		BreakerCooldown:  5 * time.Millisecond,
		SnapshotPath:     path,
		SnapshotInterval: 10 * time.Millisecond,
		DefaultTimeout:   5 * time.Second,
	})

	techs := []string{"100nm", "250nm", "100nm-eps250"}
	var wg sync.WaitGroup
	const workers, reqs = 8, 25
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < reqs; i++ {
				// Deterministic variety: spread over endpoints, techs,
				// inductances, and the no_degraded knob.
				n := w*reqs + i
				tech := techs[n%len(techs)]
				l := fmt.Sprintf("%de-7", 1+n%40)
				nd := ""
				if n%7 == 0 {
					nd = `,"no_degraded":true`
				}
				switch n % 5 {
				case 0:
					chaosUnary(t, ts.URL+"/v1/optimize",
						`{"tech":"`+tech+`","l":`+l+`,"f":0.5`+nd+`}`)
				case 1:
					chaosUnary(t, ts.URL+"/v1/plan",
						`{"tech":"`+tech+`","l":`+l+`,"f":0.5,"length":0.02`+nd+`}`)
				case 2:
					chaosUnary(t, ts.URL+"/v1/delay",
						`{"tech":"`+tech+`","l":`+l+`,"h":0.01,"k":300,"f":0.5`+nd+`}`)
				case 3:
					chaosSweep(t, ts.URL,
						`{"tech":"`+tech+`","ls":[1e-7,5e-7,`+l+`],"f":0.5}`)
				case 4:
					// An impatient client: cancel mid-flight. Any outcome
					// short of a panic is acceptable; the server must simply
					// survive.
					ctx, cancel := context.WithTimeout(context.Background(), time.Duration(1+n%3)*time.Millisecond)
					req, _ := http.NewRequestWithContext(ctx, "POST", ts.URL+"/v1/optimize",
						strings.NewReader(`{"tech":"`+tech+`","l":`+l+`,"f":0.5}`))
					req.Header.Set("Content-Type", "application/json")
					resp, err := http.DefaultClient.Do(req)
					if err == nil {
						io.Copy(io.Discard, resp.Body)
						resp.Body.Close()
					}
					cancel()
				}
			}
		}(w)
	}
	wg.Wait()

	// The operational surface must have survived the storm intact.
	var sz struct {
		Breakers struct {
			Regions []breakerStatus `json:"regions"`
		} `json:"breakers"`
		Snapshot map[string]any `json:"snapshot"`
	}
	getJSON(t, ts.URL+"/statusz", &sz)
	for _, st := range sz.Breakers.Regions {
		switch st.State {
		case "closed", "open", "half-open":
		default:
			t.Errorf("region %s in undocumented state %q", st.Region, st.State)
		}
	}
	m := metricsSnapshot(t, ts.URL)
	if statuses, ok := m["statuses"].(map[string]any); ok {
		if v, bad := statuses["500"]; bad {
			t.Errorf("chaos produced %v internal errors", v)
		}
	}

	// Drain; the final snapshot must be loadable — chaos must never persist
	// a torn image.
	s.Close()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("drain snapshot: %v", err)
	}
	if _, err := decodeSnapshot(data); err != nil {
		t.Fatalf("drain snapshot corrupt after chaos: %v", err)
	}
}

// chaosUnary checks the unary-response invariants for one request.
func chaosUnary(t *testing.T, url, body string) {
	t.Helper()
	resp, b := postJSON(t, url, body)
	if !chaosStatuses[resp.StatusCode] {
		t.Errorf("%s: undocumented status %d: %s", url, resp.StatusCode, b)
		return
	}
	degradedHdr := resp.Header.Get("X-Degraded") != ""
	var d struct {
		Degraded bool            `json:"degraded"`
		Reason   string          `json:"reason"`
		Estimate json.RawMessage `json:"estimate"`
	}
	_ = json.Unmarshal(b, &d)
	if degradedHdr != d.Degraded {
		t.Errorf("%s: X-Degraded=%v but body degraded=%v: %s", url, degradedHdr, d.Degraded, b)
	}
	if d.Degraded {
		if resp.StatusCode != 200 {
			t.Errorf("%s: degraded answer with status %d", url, resp.StatusCode)
		}
		if len(d.Estimate) == 0 || string(d.Estimate) == "null" {
			t.Errorf("%s: degraded answer without an estimate: %s", url, b)
		}
		if d.Reason != resp.Header.Get("X-Degraded") {
			t.Errorf("%s: reason %q != header %q", url, d.Reason, resp.Header.Get("X-Degraded"))
		}
	}
	if strings.Contains(body, `"no_degraded":true`) && d.Degraded {
		t.Errorf("%s: opted-out request got a degraded answer", url)
	}
}

// chaosSweep checks that a 200 NDJSON stream terminates with a status record
// accounting for every streamed point.
func chaosSweep(t *testing.T, base, body string) {
	t.Helper()
	resp, err := http.Post(base+"/v1/sweep", "application/json", strings.NewReader(body))
	if err != nil {
		t.Errorf("sweep: %v", err)
		return
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Errorf("sweep read: %v", err)
		return
	}
	if !chaosStatuses[resp.StatusCode] {
		t.Errorf("sweep: undocumented status %d: %s", resp.StatusCode, raw)
		return
	}
	if resp.StatusCode != 200 {
		return // plain error envelope before any stream bytes
	}
	sc := bufio.NewScanner(bytes.NewReader(raw))
	points, last := 0, ""
	var lastRec struct {
		Type   string `json:"type"`
		Points int    `json:"points"`
	}
	for sc.Scan() {
		last = sc.Text()
		if err := json.Unmarshal([]byte(last), &lastRec); err != nil {
			t.Errorf("sweep: non-JSON record %q", last)
			return
		}
		if lastRec.Type == "point" {
			points++
		}
	}
	if lastRec.Type != "done" && lastRec.Type != "error" {
		t.Errorf("sweep stream ended with %q, want a terminal done/error record", last)
		return
	}
	if lastRec.Points != points {
		t.Errorf("terminal record points=%d, stream carried %d", lastRec.Points, points)
	}
}
