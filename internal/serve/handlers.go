package serve

import (
	"context"
	"encoding/json"
	"net/http"
	"time"

	"rlcint/internal/core"
	"rlcint/internal/diag"
	"rlcint/internal/pade"
	"rlcint/internal/relia"
	"rlcint/internal/repeater"
	"rlcint/internal/runctl"
	"rlcint/internal/tech"
	"rlcint/internal/tline"
)

// sweepChunk is the number of grid points streamed (and cached, and
// coalesced) as one NDJSON unit. Fixed server-wide so chunk cache keys are
// stable; in warm mode chunk boundaries act as extra tile boundaries.
const sweepChunk = 32

// optimumResp serializes a core.Optimum.
type optimumResp struct {
	H          float64 `json:"h"`        // optimal segment length, m
	K          float64 `json:"k"`        // optimal repeater size
	Tau        float64 `json:"tau"`      // segment delay at the optimum, s
	PerUnit    float64 `json:"per_unit"` // tau/h, s/m
	B1         float64 `json:"b1"`       // two-pole coefficients at the optimum
	B2         float64 `json:"b2"`
	Method     string  `json:"method"`
	Iterations int     `json:"iterations"`
}

func optimumOf(o core.Optimum) optimumResp {
	return optimumResp{
		H: o.H, K: o.K, Tau: o.Tau, PerUnit: o.PerUnit,
		B1: o.Model.B1, B2: o.Model.B2,
		Method: string(o.Method), Iterations: o.Iterations,
	}
}

func problemOf(node tech.Node, l, f float64) core.Problem {
	return core.Problem{
		Device: repeater.FromTech(node),
		Line:   tline.Line{R: node.R, L: l, C: node.C},
		F:      f,
	}
}

func stageOf(node tech.Node, l, h, k float64) tline.Stage {
	return repeater.FromTech(node).Stage(tline.Line{R: node.R, L: l, C: node.C}, h, k)
}

// cacheGet/cachePut respect the cache-disabled configuration (CacheEntries
// < 0) so benchmarks and tests can exercise the cold path.
func (s *Server) cacheGet(key string) (*cached, bool) {
	if s.cfg.CacheEntries < 0 {
		return nil, false
	}
	return s.cache.get(key)
}

func (s *Server) cachePut(e *cached) {
	if s.cfg.CacheEntries >= 0 {
		s.cache.put(e)
	}
}

func writeCachedBody(w http.ResponseWriter, e *cached, src string) {
	w.Header().Set("Content-Type", e.ctype)
	w.Header().Set("X-Cache", src)
	_, _ = w.Write(e.body)
}

// serveCached is the plain unary-endpoint pipeline — cache lookup →
// singleflight coalescing → admission control → compute → marshal → cache
// fill — for endpoints with no breaker region and no degraded mode. It is
// serveResilient with the resilience features switched off. These endpoints
// are closed-form (microseconds), so they are never fleet-forwarded: a hop
// would cost more than the compute.
func (s *Server) serveCached(w http.ResponseWriter, r *http.Request, key string,
	timeout time.Duration, compute func(ctx context.Context) (any, error)) {
	s.serveResilient(w, r, resilient{key: key, timeout: timeout, compute: compute})
}

// decodeOrFail decodes + validates; on failure it writes the 400 and
// reports false.
func (s *Server) decodeOrFail(w http.ResponseWriter, r *http.Request, q any, validate func() error) bool {
	if err := decodeJSON(w, r, q); err != nil {
		writeError(w, mapError(err))
		return false
	}
	if validate != nil {
		if err := validate(); err != nil {
			writeError(w, mapError(err))
			return false
		}
	}
	return true
}

func (s *Server) handleOptimize(w http.ResponseWriter, r *http.Request) {
	var q optimizeReq
	if !s.decodeOrFail(w, r, &q, q.validate) {
		return
	}
	node, err := techOf(q.Tech)
	if err != nil {
		writeError(w, mapError(err))
		return
	}
	s.serveResilient(w, r, resilient{
		key:        q.key(),
		region:     regionOf("optimize", q.Tech, q.L),
		timeout:    s.timeoutFor(q.TimeoutMS),
		noDegraded: q.NoDegraded,
		fwdPath:    "/v1/optimize",
		fwdReq:     &q,
		compute: func(ctx context.Context) (any, error) {
			rep := &diag.Report{}
			p := problemOf(node, q.L, q.F)
			p.Report = rep
			p.Injector = s.cfg.Injector
			opt, err := core.OptimizeCtx(ctx, p)
			s.metrics.recordLadder(rep)
			if err != nil {
				return nil, &solveError{err: err, report: rep}
			}
			return optimumOf(opt), nil
		},
		estimate: func() (any, error) {
			est, err := core.EstimateOptimum(problemOf(node, q.L, q.F))
			if err != nil {
				return nil, err
			}
			return optimumOf(est), nil
		},
	})
}

func (s *Server) handleDelay(w http.ResponseWriter, r *http.Request) {
	var q delayReq
	if !s.decodeOrFail(w, r, &q, q.validate) {
		return
	}
	node, err := techOf(q.Tech)
	if err != nil {
		writeError(w, mapError(err))
		return
	}
	s.serveResilient(w, r, resilient{
		key:        q.key(),
		region:     regionOf("delay", q.Tech, q.L),
		timeout:    s.timeoutFor(q.TimeoutMS),
		noDegraded: q.NoDegraded,
		fwdPath:    "/v1/delay",
		fwdReq:     &q,
		compute: func(ctx context.Context) (any, error) {
			m, err := pade.FromStage(stageOf(node, q.L, q.H, q.K))
			if err != nil {
				return nil, err
			}
			d, err := m.DelayWith(runctl.New(ctx, runctl.Limits{}), threshold(q.F))
			if err != nil {
				return nil, err
			}
			return delayResp{Tau: d.Tau, Iterations: d.Iterations}, nil
		},
		estimate: func() (any, error) {
			tau, err := core.EstimateDelay(stageOf(node, q.L, q.H, q.K), q.F)
			if err != nil {
				return nil, err
			}
			return delayResp{Tau: tau}, nil
		},
	})
}

// delayResp serializes a /v1/delay answer (Iterations is 0 for closed-form
// estimates — nothing iterated).
type delayResp struct {
	Tau        float64 `json:"tau"`
	Iterations int     `json:"iterations"`
}

func (s *Server) handlePlan(w http.ResponseWriter, r *http.Request) {
	var q planReq
	if !s.decodeOrFail(w, r, &q, q.validate) {
		return
	}
	node, err := techOf(q.Tech)
	if err != nil {
		writeError(w, mapError(err))
		return
	}
	s.serveResilient(w, r, resilient{
		key:        q.key(),
		region:     regionOf("plan", q.Tech, q.L),
		timeout:    s.timeoutFor(q.TimeoutMS),
		noDegraded: q.NoDegraded,
		fwdPath:    "/v1/plan",
		fwdReq:     &q,
		compute: func(ctx context.Context) (any, error) {
			rep := &diag.Report{}
			p := problemOf(node, q.L, q.F)
			p.Report = rep
			p.Injector = s.cfg.Injector
			plan, err := core.PlanLineCtx(ctx, p, q.Length)
			s.metrics.recordLadder(rep)
			if err != nil {
				return nil, &solveError{err: err, report: rep}
			}
			return planOf(plan), nil
		},
		estimate: func() (any, error) {
			plan, err := core.EstimatePlan(problemOf(node, q.L, q.F), q.Length)
			if err != nil {
				return nil, err
			}
			return planOf(plan), nil
		},
	})
}

// planResp serializes a core.LinePlan.
type planResp struct {
	Length     float64     `json:"length"`
	Stages     int         `json:"stages"`
	H          float64     `json:"h"`
	K          float64     `json:"k"`
	StageTau   float64     `json:"stage_tau"`
	Total      float64     `json:"total"`
	Continuous optimumResp `json:"continuous"`
}

func planOf(plan core.LinePlan) planResp {
	return planResp{
		Length: plan.Length, Stages: plan.Stages, H: plan.H, K: plan.K,
		StageTau: plan.StageTau, Total: plan.Total,
		Continuous: optimumOf(plan.Continuous),
	}
}

func (s *Server) handleOptimizeRC(w http.ResponseWriter, r *http.Request) {
	var q rcReq
	if !s.decodeOrFail(w, r, &q, nil) {
		return
	}
	node, err := techOf(q.Tech)
	if err != nil {
		writeError(w, mapError(err))
		return
	}
	s.serveCached(w, r, q.key(), s.cfg.DefaultTimeout, func(ctx context.Context) (any, error) {
		rc, err := core.OptimizeRC(problemOf(node, 0, 0.5))
		if err != nil {
			return nil, err
		}
		return rcResp{H: rc.H, K: rc.K, Tau: rc.Tau}, nil
	})
}

// The remaining response shapes are named (rather than anonymous literals)
// so snapshotSchema can fingerprint every type a cached body may hold.
type rcResp struct {
	H   float64 `json:"h"`
	K   float64 `json:"k"`
	Tau float64 `json:"tau"`
}

type lcritResp struct {
	LCrit float64 `json:"lcrit"` // H/m
}

type oxideResp struct {
	VGateMax  float64 `json:"v_gate_max"`
	Field     float64 `json:"field"`
	FieldVDD  float64 `json:"field_vdd"`
	Margin    float64 `json:"margin"`
	OverLimit bool    `json:"over_limit"`
	Critical  bool    `json:"critical"`
}

type wireResp struct {
	PeakJ      float64 `json:"peak_j"`
	RMSJ       float64 `json:"rms_j"`
	PeakMargin float64 `json:"peak_margin"`
	RMSMargin  float64 `json:"rms_margin"`
	PeakOver   bool    `json:"peak_over"`
	RMSOver    bool    `json:"rms_over"`
}

func (s *Server) handleLCrit(w http.ResponseWriter, r *http.Request) {
	var q lcritReq
	if !s.decodeOrFail(w, r, &q, q.validate) {
		return
	}
	node, err := techOf(q.Tech)
	if err != nil {
		writeError(w, mapError(err))
		return
	}
	s.serveCached(w, r, q.key(), s.cfg.DefaultTimeout, func(ctx context.Context) (any, error) {
		return lcritResp{LCrit: pade.LCrit(stageOf(node, q.L, q.H, q.K))}, nil
	})
}

func (s *Server) handleCheckOxide(w http.ResponseWriter, r *http.Request) {
	var q oxideReq
	if !s.decodeOrFail(w, r, &q, q.validate) {
		return
	}
	node, err := techOf(q.Tech)
	if err != nil {
		writeError(w, mapError(err))
		return
	}
	s.serveCached(w, r, q.key(), s.cfg.DefaultTimeout, func(ctx context.Context) (any, error) {
		rep, err := relia.CheckOxide(node, q.OvershootV)
		if err != nil {
			return nil, err
		}
		return oxideResp{
			VGateMax: rep.VGateMax, Field: rep.Field, FieldVDD: rep.FieldVDD,
			Margin: rep.Margin, OverLimit: rep.OverLimit, Critical: rep.Critical,
		}, nil
	})
}

func (s *Server) handleCheckWire(w http.ResponseWriter, r *http.Request) {
	var q wireReq
	if !s.decodeOrFail(w, r, &q, q.validate) {
		return
	}
	s.serveCached(w, r, q.key(), s.cfg.DefaultTimeout, func(ctx context.Context) (any, error) {
		rep, err := relia.CheckWire(q.PeakJ, q.RMSJ)
		if err != nil {
			return nil, err
		}
		return wireResp{
			PeakJ: rep.PeakJ, RMSJ: rep.RMSJ,
			PeakMargin: rep.PeakMargin, RMSMargin: rep.RMSMargin,
			PeakOver: rep.PeakOver, RMSOver: rep.RMSOver,
		}, nil
	})
}

// sweepPointLine is one NDJSON record of a streamed sweep.
type sweepPointLine struct {
	Type       string  `json:"type"` // "point"
	L          float64 `json:"l"`
	H          float64 `json:"h"`
	K          float64 `json:"k"`
	Tau        float64 `json:"tau"`
	PerUnit    float64 `json:"per_unit"`
	LCrit      float64 `json:"lcrit"`
	HRatio     float64 `json:"h_ratio"`
	KRatio     float64 `json:"k_ratio"`
	DelayRatio float64 `json:"delay_ratio"`
	Penalty    float64 `json:"penalty"`
	Method     string  `json:"method"`
}

// handleSweep streams the Section 3 study as NDJSON: one "point" record per
// grid point, a final "done" record, or — after the longest error-free
// prefix — a single "error" record mirroring the library's partial-result
// contract. The grid is split into fixed chunks; each chunk runs on the
// batched engine and is independently cached and coalesced, so concurrent
// identical sweeps share work chunk by chunk and both stream as chunks
// complete. Sweeps always run locally, even in fleet mode: a sweep's chunks
// would shard across many owners, and relaying a partially failed stream
// through another instance would blur the terminal-record contract.
func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	var q sweepReq
	if !s.decodeOrFail(w, r, &q, func() error { return q.validate(s.cfg.MaxSweepPoints) }) {
		return
	}
	node, err := techOf(q.Tech)
	if err != nil {
		writeError(w, mapError(err))
		return
	}
	workers := q.Workers
	if workers <= 0 || workers > s.cfg.MaxWorkers {
		workers = s.cfg.MaxWorkers
	}
	if q.Warm && q.TileSize == 0 {
		q.TileSize = 8 // the engine's warm default, pinned for the cache key
	}
	opts := core.SweepOptions{Workers: workers, TileSize: q.TileSize, Warm: q.Warm, Injector: s.cfg.Injector}
	deadline := time.Now().Add(s.timeoutFor(q.TimeoutMS))
	reqCtx, cancel := context.WithDeadline(r.Context(), deadline)
	defer cancel()
	base := q.keyBase()

	flusher, _ := w.(http.Flusher)
	wrote, points := false, 0
	for lo := 0; lo < len(q.Ls); lo += sweepChunk {
		hi := min(lo+sweepChunk, len(q.Ls))
		ls := q.Ls[lo:hi]
		key := chunkKey(base, ls)
		e, ok := s.cacheGet(key)
		src := "hit"
		if !ok {
			var err error
			var shared bool
			e, err, shared = s.flights.do(reqCtx, key, time.Until(deadline), func(ctx context.Context) (*cached, error) {
				if err := s.limiter.acquire(ctx); err != nil {
					return nil, err
				}
				defer s.limiter.release()
				pts, err := core.SweepBatchCtx(ctx, opts, node, ls, q.F)
				if err != nil {
					return nil, err
				}
				var body []byte
				for _, pt := range pts {
					line, err := json.Marshal(sweepPointLine{
						Type: "point", L: pt.L,
						H: pt.Opt.H, K: pt.Opt.K, Tau: pt.Opt.Tau, PerUnit: pt.Opt.PerUnit,
						LCrit: pt.LCrit, HRatio: pt.HRatio, KRatio: pt.KRatio,
						DelayRatio: pt.DelayRatio, Penalty: pt.Penalty,
						Method: string(pt.Opt.Method),
					})
					if err != nil {
						return nil, err
					}
					body = append(body, line...)
					body = append(body, '\n')
				}
				e := &cached{key: key, ctype: "application/x-ndjson", body: body}
				s.cachePut(e)
				return e, nil
			})
			src = "miss"
			if shared {
				src = "coalesced"
			}
			if err != nil {
				s.metrics.xcache.Add(src, 1)
				ae := s.mapErrorWithRetry(err, "")
				if !wrote {
					writeError(w, ae)
				} else {
					// The terminal "error" record carries the error-free
					// prefix length, so a consumer can tell how much of the
					// stream is trustworthy without counting records.
					line, _ := json.Marshal(struct {
						Type    string `json:"type"`
						Status  int    `json:"status"`
						Kind    string `json:"kind"`
						Message string `json:"message"`
						Points  int    `json:"points"`
					}{"error", ae.Status, ae.Kind, ae.Message, points})
					_, _ = w.Write(append(line, '\n'))
					if flusher != nil {
						flusher.Flush()
					}
				}
				return
			}
		}
		s.metrics.xcache.Add(src, 1)
		if !wrote {
			w.Header().Set("Content-Type", "application/x-ndjson")
			w.Header().Set("X-Cache", src)
			wrote = true
		}
		_, _ = w.Write(e.body)
		points += hi - lo
		if flusher != nil {
			flusher.Flush()
		}
	}
	line, _ := json.Marshal(struct {
		Type   string `json:"type"`
		Points int    `json:"points"`
		Tech   string `json:"tech"`
	}{"done", points, node.Name})
	_, _ = w.Write(append(line, '\n'))
}
