package serve

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"rlcint/internal/testutil"
)

func entry(key string, n int) *cached {
	return &cached{key: key, ctype: "application/json", body: bytes.Repeat([]byte("x"), n)}
}

func TestLRUCacheEntryBound(t *testing.T) {
	c := newLRUCache(3, 0)
	for i := 0; i < 5; i++ {
		c.put(entry(fmt.Sprintf("k%d", i), 10))
	}
	_, _, evictions, entries, _ := c.stats()
	if entries != 3 {
		t.Errorf("entries = %d, want 3", entries)
	}
	if evictions != 2 {
		t.Errorf("evictions = %d, want 2", evictions)
	}
	// Oldest two evicted, newest three present.
	for i := 0; i < 2; i++ {
		if _, ok := c.get(fmt.Sprintf("k%d", i)); ok {
			t.Errorf("k%d should have been evicted", i)
		}
	}
	for i := 2; i < 5; i++ {
		if _, ok := c.get(fmt.Sprintf("k%d", i)); !ok {
			t.Errorf("k%d should be cached", i)
		}
	}
}

func TestLRUCacheByteBound(t *testing.T) {
	// Each entry costs len(key)+len(body)+64 = 2+134+64 = 200 bytes.
	c := newLRUCache(0, 600)
	for i := 0; i < 5; i++ {
		c.put(entry(fmt.Sprintf("k%d", i), 134))
	}
	_, _, _, entries, bytes := c.stats()
	if entries != 3 {
		t.Errorf("entries = %d, want 3 under the 600-byte bound", entries)
	}
	if bytes > 600 {
		t.Errorf("bytes = %d, want <= 600", bytes)
	}
}

func TestLRUCacheRecencyAndRefresh(t *testing.T) {
	c := newLRUCache(2, 0)
	c.put(entry("a", 1))
	c.put(entry("b", 1))
	if _, ok := c.get("a"); !ok { // bump a
		t.Fatal("a missing")
	}
	c.put(entry("c", 1)) // evicts b, the cold one
	if _, ok := c.get("b"); ok {
		t.Error("b should have been evicted")
	}
	if _, ok := c.get("a"); !ok {
		t.Error("a should have survived")
	}
	// Refreshing an existing key must not duplicate it.
	c.put(entry("a", 500))
	if _, _, _, entries, _ := c.stats(); entries != 2 {
		t.Errorf("entries after refresh = %d, want 2", entries)
	}
}

func TestLRUCacheOversizedEntryNotAdmitted(t *testing.T) {
	c := newLRUCache(0, 100)
	c.put(entry("big", 1000))
	if _, _, _, entries, _ := c.stats(); entries != 0 {
		t.Error("entry larger than the byte bound must not be admitted")
	}
}

func TestFlightGroupCoalesces(t *testing.T) {
	testutil.CheckGoroutines(t)
	g := newFlightGroup(context.Background())
	var computes atomic.Int64
	release := make(chan struct{})
	const n = 16
	var wg sync.WaitGroup
	results := make([]*cached, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, err, _ := g.do(context.Background(), "k", 0, func(ctx context.Context) (*cached, error) {
				computes.Add(1)
				<-release
				return entry("k", 8), nil
			})
			if err != nil {
				t.Errorf("do: %v", err)
			}
			results[i] = v
		}(i)
	}
	// Let every caller join before releasing the computation.
	for {
		g.mu.Lock()
		f := g.m["k"]
		w := 0
		if f != nil {
			w = f.waiters
		}
		g.mu.Unlock()
		if w == n {
			break
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()
	if got := computes.Load(); got != 1 {
		t.Errorf("computed %d times, want 1", got)
	}
	for i := 1; i < n; i++ {
		if results[i] != results[0] {
			t.Error("coalesced callers must share one result")
		}
	}
	g.wait()
}

func TestFlightGroupLastWaiterCancels(t *testing.T) {
	testutil.CheckGoroutines(t)
	g := newFlightGroup(context.Background())
	started := make(chan struct{})
	stopped := make(chan struct{})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		_, err, _ := g.do(ctx, "k", 0, func(cctx context.Context) (*cached, error) {
			close(started)
			<-cctx.Done() // the solve observes cancellation
			close(stopped)
			return nil, cctx.Err()
		})
		if !errors.Is(err, context.Canceled) {
			t.Errorf("do after cancel = %v, want context.Canceled", err)
		}
	}()
	<-started
	cancel()
	select {
	case <-stopped:
	case <-time.After(2 * time.Second):
		t.Fatal("computation not cancelled after last waiter left")
	}
	<-done
	g.wait()
}

func TestFlightGroupPanicContained(t *testing.T) {
	g := newFlightGroup(context.Background())
	_, err, _ := g.do(context.Background(), "k", 0, func(ctx context.Context) (*cached, error) {
		panic("boom")
	})
	if err == nil {
		t.Fatal("want contained panic error")
	}
	g.wait()
}

func TestLimiterQueueBound(t *testing.T) {
	l := newLimiter(1, 1)
	if err := l.acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	// One waiter fits in the queue...
	waiterErr := make(chan error, 1)
	go func() { waiterErr <- l.acquire(context.Background()) }()
	for l.depth() != 1 {
		time.Sleep(time.Millisecond)
	}
	// ...the next one is rejected immediately.
	if err := l.acquire(context.Background()); !errors.Is(err, errQueueFull) {
		t.Errorf("acquire with full queue = %v, want errQueueFull", err)
	}
	if l.rejects() != 1 {
		t.Errorf("rejects = %d, want 1", l.rejects())
	}
	l.release()
	if err := <-waiterErr; err != nil {
		t.Errorf("queued waiter: %v", err)
	}
	l.release()
}

func TestLimiterWaiterHonoursContext(t *testing.T) {
	l := newLimiter(1, 4)
	if err := l.acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	go func() { errCh <- l.acquire(ctx) }()
	for l.depth() != 1 {
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-errCh; !errors.Is(err, context.Canceled) {
		t.Errorf("queued acquire after cancel = %v, want context.Canceled", err)
	}
	if l.depth() != 0 {
		t.Errorf("queue depth = %d after waiter left, want 0", l.depth())
	}
	l.release()
}

func TestLRUCacheExportColdFirstAndReplayable(t *testing.T) {
	c := newLRUCache(0, 0)
	c.put(entry("a", 1))
	c.put(entry("b", 1))
	c.put(entry("c", 1))
	if _, ok := c.get("a"); !ok { // bump a to hottest
		t.Fatal("a missing")
	}
	exp := c.export()
	keys := make([]string, len(exp))
	for i, e := range exp {
		keys[i] = e.key
	}
	if len(keys) != 3 || keys[0] != "b" || keys[1] != "c" || keys[2] != "a" {
		t.Fatalf("export order = %v, want cold-first [b c a]", keys)
	}
	// Replaying through put reproduces the recency order: a bounded replica
	// evicts the cold end first.
	r := newLRUCache(2, 0)
	for _, e := range exp {
		r.put(e)
	}
	if _, ok := r.get("b"); ok {
		t.Error("replayed replica kept the coldest entry over the hotter ones")
	}
	for _, k := range []string{"c", "a"} {
		if _, ok := r.get(k); !ok {
			t.Errorf("replayed replica lost hot entry %q", k)
		}
	}
}

// A snapshot racing concurrent puts — including oversize puts that the cache
// must reject — never exports a rejected entry or a torn view. Run under
// -race this also proves export/put/get need no external synchronization.
func TestLRUCacheOversizePutRacingSnapshot(t *testing.T) {
	c := newLRUCache(0, 300)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { // writer: alternates admissible and oversize entries
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			c.put(entry(fmt.Sprintf("ok%d", i%4), 10))
			c.put(entry("oversize", 1000))
		}
	}()
	var exports int
	go func() { // snapshotter
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			for _, e := range c.export() {
				if e.key == "oversize" {
					t.Error("export observed an entry the cache must have rejected")
				}
			}
			if _, err := encodeSnapshot(c.export()); err != nil {
				t.Errorf("encode during writes: %v", err)
			}
			exports++
		}
	}()
	time.Sleep(50 * time.Millisecond)
	close(stop)
	wg.Wait()
	if exports == 0 {
		t.Fatal("snapshotter never ran")
	}
}
