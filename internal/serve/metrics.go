package serve

import (
	"encoding/json"
	"expvar"
	"net/http"
	"strconv"
	"sync"
	"time"

	"rlcint/internal/diag"
	"rlcint/internal/sparse"
	"rlcint/internal/spice"
)

// latencyBounds are the histogram bucket upper bounds. The last implicit
// bucket is +Inf.
var latencyBounds = []time.Duration{
	time.Millisecond,
	4 * time.Millisecond,
	16 * time.Millisecond,
	64 * time.Millisecond,
	250 * time.Millisecond,
	time.Second,
	4 * time.Second,
}

var latencyLabels = []string{
	"le_1ms", "le_4ms", "le_16ms", "le_64ms", "le_250ms", "le_1s", "le_4s", "inf",
}

// histogram is a fixed-bucket latency histogram. Safe for concurrent use.
type histogram struct {
	mu     sync.Mutex
	counts [8]int64 // len(latencyBounds)+1
	sum    time.Duration
	n      int64
}

func (h *histogram) observe(d time.Duration) {
	i := 0
	for i < len(latencyBounds) && d > latencyBounds[i] {
		i++
	}
	h.mu.Lock()
	h.counts[i]++
	h.sum += d
	h.n++
	h.mu.Unlock()
}

func (h *histogram) snapshot() map[string]any {
	h.mu.Lock()
	defer h.mu.Unlock()
	buckets := make(map[string]int64, len(latencyLabels))
	for i, l := range latencyLabels {
		buckets[l] = h.counts[i]
	}
	return map[string]any{
		"count":   h.n,
		"sum_ms":  float64(h.sum) / float64(time.Millisecond),
		"buckets": buckets,
	}
}

// metrics is the server's observability surface, built on unpublished
// expvar maps (unpublished so multiple servers — e.g. in tests — never
// collide in the process-global expvar namespace; cmd/rlcd additionally
// mounts the global /debug/vars page).
type metrics struct {
	start    time.Time
	requests *expvar.Map // per-endpoint request counts
	statuses *expvar.Map // per-HTTP-status response counts
	xcache   *expvar.Map // hit / miss / coalesced / bypass counts
	ladder   *expvar.Map // "<ladder>|<outcome>" solver recovery-rung counts
	degraded *expvar.Map // degraded answers by triggering failure kind
	breaker  *expvar.Map // breaker transitions: open / half-open / close / short-circuit

	snapshotOps *expvar.Map // snapshot lifecycle: save / save_error / load_ok / load_skipped
	fleetOps    *expvar.Map // forwarding outcomes: forwarded / fallback-local / hop-capped / hedge-answered
	sparseOps   *expvar.Map // sparse-engine outcomes: solve|<solver>, iterations, fallbacks

	mu      sync.Mutex
	latency map[string]*histogram // per endpoint
}

func newMetrics() *metrics {
	return &metrics{
		start:       time.Now(),
		requests:    new(expvar.Map).Init(),
		statuses:    new(expvar.Map).Init(),
		xcache:      new(expvar.Map).Init(),
		ladder:      new(expvar.Map).Init(),
		degraded:    new(expvar.Map).Init(),
		breaker:     new(expvar.Map).Init(),
		snapshotOps: new(expvar.Map).Init(),
		fleetOps:    new(expvar.Map).Init(),
		sparseOps:   new(expvar.Map).Init(),
		latency:     make(map[string]*histogram),
	}
}

func (m *metrics) observe(endpoint string, status int, d time.Duration) {
	if status == 0 {
		status = http.StatusOK
	}
	m.requests.Add(endpoint, 1)
	m.statuses.Add(strconv.Itoa(status), 1)
	m.mu.Lock()
	h := m.latency[endpoint]
	if h == nil {
		h = &histogram{}
		m.latency[endpoint] = h
	}
	m.mu.Unlock()
	h.observe(d)
}

// recordSparse folds one sparse-engine solve into the cumulative counters:
// which solver answered ("solve|cg", "solve|direct", ...), how many
// iterations the iterative path spent, and how often it fell back to the
// direct factorization.
func (m *metrics) recordSparse(st sparse.EngineStats) {
	m.sparseOps.Add("solve|"+st.Solver, 1)
	m.sparseOps.Add("iterations", int64(st.Iterations))
	if st.Fallbacks > 0 {
		m.sparseOps.Add("fallbacks", 1)
	}
}

// recordLadder folds one solve's recovery-ladder report into the cumulative
// rung counters ("opt-newton|ok", "opt-nm|failed", ...).
func (m *metrics) recordLadder(rep *diag.Report) {
	if rep == nil {
		return
	}
	for _, a := range rep.Attempts {
		m.ladder.Add(a.Ladder+"|"+string(a.Outcome), 1)
	}
}

func expvarMapToGo(m *expvar.Map) map[string]int64 {
	out := make(map[string]int64)
	m.Do(func(kv expvar.KeyValue) {
		if v, ok := kv.Value.(*expvar.Int); ok {
			out[kv.Key] = v.Value()
		}
	})
	return out
}

// handleMetrics renders the whole observability snapshot as one JSON object.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	hits, misses, evictions, entries, bytes := s.cache.stats()
	m := s.metrics
	m.mu.Lock()
	lat := make(map[string]any, len(m.latency))
	for ep, h := range m.latency {
		lat[ep] = h.snapshot()
	}
	m.mu.Unlock()
	snap := map[string]any{
		"uptime_s": time.Since(m.start).Seconds(),
		"requests": expvarMapToGo(m.requests),
		"statuses": expvarMapToGo(m.statuses),
		"cache": map[string]int64{
			"hits":      hits,
			"misses":    misses,
			"evictions": evictions,
			"entries":   entries,
			"bytes":     bytes,
		},
		"xcache": expvarMapToGo(m.xcache),
		"admission": map[string]int64{
			"inflight":    int64(s.limiter.inflight()),
			"capacity":    int64(s.limiter.capacity()),
			"queue_depth": s.limiter.depth(),
			"queue_full":  s.limiter.rejects(),
		},
		"latency":  lat,
		"ladder":   expvarMapToGo(m.ladder),
		"degraded": expvarMapToGo(m.degraded),
		"breaker":  expvarMapToGo(m.breaker),
		"snapshot": expvarMapToGo(m.snapshotOps),
		"sparse":   expvarMapToGo(m.sparseOps),
		// Reduced-order fast-path engagement for transient-backed work, so
		// operators can see whether traffic rides the reduction or falls
		// back to the full solver. Process-wide counters (the model cache is
		// process-wide too), not per-Server.
		"mor": spice.ReductionStats(),
	}
	if s.fleet != nil {
		fl := map[string]int64{"ready": 0}
		if s.Ready() {
			fl["ready"] = 1
		}
		for k, v := range expvarMapToGo(m.fleetOps) {
			fl[k] = v
		}
		for k, v := range s.fleet.Metrics() {
			fl[k] = v
		}
		snap["fleet"] = fl
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(snap)
}
