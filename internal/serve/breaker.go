package serve

import (
	"expvar"
	"math"
	"math/rand"
	"sort"
	"strconv"
	"sync"
	"time"
)

// breakerState is the classic three-state circuit-breaker machine.
type breakerState int

const (
	breakerClosed   breakerState = iota // full service
	breakerOpen                         // solves short-circuit to degraded mode
	breakerHalfOpen                     // one probe solve allowed through
)

func (st breakerState) String() string {
	switch st {
	case breakerClosed:
		return "closed"
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	}
	return "unknown"
}

// breaker is one region's state. Guarded by the owning set's mutex.
type breaker struct {
	state      breakerState
	fails      int  // consecutive eligible failures while closed
	probing    bool // a half-open probe is in flight
	probeGen   uint64    // token of the probe currently holding the slot
	probeStart time.Time // when that probe was granted, for the deadline backstop
	changed    time.Time
	cooldownAt time.Time // when the open state may half-open (jittered cooldown)
	opens      int64     // cumulative open transitions
	shorted    int64     // requests short-circuited while open / probing
	lastFail   string
}

// maxBreakerRegions bounds the region map. The quantization is coarse
// enough that real traffic stays far below this; if an adversarial key
// stream fills it, unseen regions run untracked (full service) rather than
// growing memory without bound.
const maxBreakerRegions = 4096

// breakerSet keys circuit breakers by a coarse quantization of the request
// region (endpoint × technology × half-decade of inductance). After
// threshold consecutive eligible solver failures a region's breaker opens:
// requests skip the expensive recovery ladder and go straight to degraded
// mode. After cooldown one probe request is allowed through; its success
// closes the breaker, its failure re-opens it, and an inconclusive probe
// (cancelled client) re-arms the half-open state for the next caller.
//
// A nil *breakerSet (breakers disabled) allows everything and records
// nothing.
type breakerSet struct {
	threshold int
	cooldown  time.Duration
	trans     *expvar.Map // open / half-open / close / short-circuit counters

	// Test hooks: nil → time.Now / rand.Float64. The fake clock and seeded
	// jitter let the thundering-herd regression test prove that regions
	// opened in lockstep do not half-open in lockstep.
	now  func() time.Time
	frac func() float64

	mu sync.Mutex
	m  map[string]*breaker
}

func newBreakerSet(threshold int, cooldown time.Duration, trans *expvar.Map) *breakerSet {
	if threshold <= 0 {
		return nil
	}
	return &breakerSet{
		threshold: threshold,
		cooldown:  cooldown,
		trans:     trans,
		m:         make(map[string]*breaker),
	}
}

func (b *breakerSet) nowt() time.Time {
	if b.now != nil {
		return b.now()
	}
	return time.Now()
}

// jitteredCooldown spreads the open→half-open delay over [1.0, 1.2]× the
// configured cooldown, per open transition. A fleet of instances (or one
// instance's regions) that all tripped at the same instant then probe
// staggered instead of re-hammering a struggling backend in lockstep.
func (b *breakerSet) jitteredCooldown() time.Duration {
	f := rand.Float64
	if b.frac != nil {
		f = b.frac
	}
	return time.Duration(float64(b.cooldown) * (1 + 0.2*f()))
}

// regionOf quantizes a request onto its breaker region. Inductance is
// bucketed by half-decades: pathological configurations cluster by order of
// magnitude, and the coarse key keeps the region map small while still
// isolating a bad neighbourhood from the rest of the space.
func regionOf(endpoint, tech string, l float64) string {
	var lb string
	switch {
	case l == 0:
		lb = "0"
	case l < 0 || math.IsNaN(l) || math.IsInf(l, 0):
		lb = "invalid" // rejected upstream; keep the key total anyway
	default:
		lb = strconv.FormatFloat(math.Floor(math.Log10(l)*2)/2, 'g', -1, 64)
	}
	return endpoint + "|" + tech + "|l^" + lb
}

// allow reports whether a request in region may attempt the full solve.
// While a region is open (cooling down) or a probe is already in flight,
// allow denies and the caller answers degraded. A non-zero probe token
// means this caller holds the region's half-open probe slot; the caller
// must guarantee the probe resolves — onResult runs for its computation,
// or probeAbort is called with the token — on every terminal outcome.
//
// The slot also carries a deadline backstop: if a probe has been out for a
// full cooldown without resolving (a guarantee bug, or a wedged solve),
// the next caller reclaims it instead of the region staying degraded
// forever.
func (b *breakerSet) allow(region string) (ok bool, probe uint64) {
	if b == nil {
		return true, 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	now := b.nowt()
	br := b.m[region]
	if br == nil {
		if len(b.m) >= maxBreakerRegions {
			return true, 0 // full: run untracked rather than grow without bound
		}
		b.m[region] = &breaker{changed: now}
		return true, 0
	}
	switch br.state {
	case breakerClosed:
		return true, 0
	case breakerOpen:
		if now.Before(br.cooldownAt) {
			br.shorted++
			b.trans.Add("short-circuit", 1)
			return false, 0
		}
		br.state = breakerHalfOpen
		br.changed = now
		b.trans.Add("half-open", 1)
		return true, br.grantProbe(now)
	default: // half-open
		if br.probing {
			if now.Sub(br.probeStart) < b.cooldown {
				br.shorted++
				b.trans.Add("short-circuit", 1)
				return false, 0
			}
			// The outstanding probe never resolved within a full cooldown:
			// reclaim the slot so the region cannot wedge in degraded mode.
			b.trans.Add("probe-reclaim", 1)
		}
		return true, br.grantProbe(now)
	}
}

// grantProbe hands the half-open probe slot to the caller under a fresh
// token. Caller holds the set's mutex.
func (br *breaker) grantProbe(now time.Time) uint64 {
	br.probing = true
	br.probeGen++
	br.probeStart = now
	return br.probeGen
}

// retryAfter estimates when a short-circuited region will next admit a
// request: the remaining (jittered) cooldown of an open breaker, or the
// probe backstop window while a half-open probe is out. Zero when the
// region is closed, untracked, or breakers are disabled.
func (b *breakerSet) retryAfter(region string) time.Duration {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	br := b.m[region]
	if br == nil {
		return 0
	}
	now := b.nowt()
	switch br.state {
	case breakerOpen:
		if d := br.cooldownAt.Sub(now); d > 0 {
			return d
		}
		return time.Second // cooldown elapsed: the next caller probes
	case breakerHalfOpen:
		if br.probing {
			if d := br.probeStart.Add(b.cooldown).Sub(now); d > 0 {
				return d
			}
		}
		return time.Second
	}
	return 0
}

// probeAbort releases a probe slot whose computation never reached
// onResult — the request coalesced onto a flight that had already recorded
// its result, so nothing else will resolve this probe. The token keeps a
// late abort from releasing a slot that has since been resolved and
// re-granted to another caller.
func (b *breakerSet) probeAbort(region string, probe uint64) {
	if b == nil || probe == 0 {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	br := b.m[region]
	if br != nil && br.state == breakerHalfOpen && br.probing && br.probeGen == probe {
		br.probing = false
	}
}

// onResult folds one completed solve into the region's state machine. ok
// marks a successful solve; eligible marks a failure kind that counts
// toward opening (solver non-convergence, timestep collapse, deadline — not
// client cancellations or admission rejects). Results are recorded once per
// computation (by the flight leader), so a coalesced burst counts as one
// attempt.
func (b *breakerSet) onResult(region string, ok, eligible bool, cause string) {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	br := b.m[region]
	if br == nil {
		return
	}
	now := b.nowt()
	switch br.state {
	case breakerClosed:
		if ok {
			br.fails = 0
		} else if eligible {
			br.fails++
			br.lastFail = cause
			if br.fails >= b.threshold {
				br.state = breakerOpen
				br.changed = now
				br.cooldownAt = now.Add(b.jitteredCooldown())
				br.opens++
				b.trans.Add("open", 1)
			}
		}
	case breakerHalfOpen:
		switch {
		case ok:
			br.state = breakerClosed
			br.fails = 0
			br.probing = false
			br.changed = now
			b.trans.Add("close", 1)
		case eligible:
			br.state = breakerOpen
			br.probing = false
			br.changed = now
			br.cooldownAt = now.Add(b.jitteredCooldown())
			br.opens++
			br.lastFail = cause
			b.trans.Add("open", 1)
		default:
			// Inconclusive probe (cancelled mid-flight): re-arm so the next
			// caller probes instead of wedging half-open forever.
			br.probing = false
		}
	case breakerOpen:
		// A flight that started before the breaker opened finished late;
		// the cooldown clock is already running, nothing to fold in.
	}
}

// breakerStatus is one region's externally visible state, for /statusz.
type breakerStatus struct {
	Region        string  `json:"region"`
	State         string  `json:"state"`
	Failures      int     `json:"failures"`
	Opens         int64   `json:"opens"`
	ShortCircuits int64   `json:"short_circuits"`
	SinceChangeS  float64 `json:"since_change_s"`
	LastFailure   string  `json:"last_failure,omitempty"`
}

// statuses snapshots every tracked region, sorted, tripped regions first.
func (b *breakerSet) statuses() []breakerStatus {
	if b == nil {
		return nil
	}
	b.mu.Lock()
	now := b.nowt()
	out := make([]breakerStatus, 0, len(b.m))
	for region, br := range b.m {
		out = append(out, breakerStatus{
			Region:        region,
			State:         br.state.String(),
			Failures:      br.fails,
			Opens:         br.opens,
			ShortCircuits: br.shorted,
			SinceChangeS:  now.Sub(br.changed).Seconds(),
			LastFailure:   br.lastFail,
		})
	}
	b.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if (out[i].State == "closed") != (out[j].State == "closed") {
			return out[i].State != "closed"
		}
		return out[i].Region < out[j].Region
	})
	return out
}
