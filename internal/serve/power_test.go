package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"testing"
)

const planPowerBody = `{"tech":"100nm","l":2e-6,"f":0.9,"length":0.03,"alpha":0.15,"freq":1e9,"points":9}`

func TestPlanPowerEndpoint(t *testing.T) {
	_, ts := testServer(t, Config{})
	resp, body := postJSON(t, ts.URL+"/v1/plan-power", planPowerBody)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var got planPowerResp
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if got.PowerSaved < 0.15 {
		t.Errorf("power_saved = %.4f, want ≥ 0.15 (the RIP operating point)", got.PowerSaved)
	}
	if got.DelayPenalty > 0.05+1e-12 {
		t.Errorf("delay_penalty = %.4f exceeds the default 5%% budget", got.DelayPenalty)
	}
	if len(got.Schemes) < 1 || got.Baseline.Stages < 1 {
		t.Errorf("degenerate plan: %+v", got)
	}
	if resp.Header.Get("X-Cache") != "miss" {
		t.Errorf("first request X-Cache = %q, want miss", resp.Header.Get("X-Cache"))
	}
	// Identical request: exact cache hit, byte-identical body.
	resp2, body2 := postJSON(t, ts.URL+"/v1/plan-power", planPowerBody)
	if resp2.Header.Get("X-Cache") != "hit" {
		t.Errorf("second request X-Cache = %q, want hit", resp2.Header.Get("X-Cache"))
	}
	if !bytes.Equal(body, body2) {
		t.Errorf("cached body differs from computed body")
	}
}

// TestPlanPowerDomain400: power-workload domain violations map to the same
// 400 envelope as every other domain error — before any solver runs.
func TestPlanPowerDomain400(t *testing.T) {
	_, ts := testServer(t, Config{})
	bad := []string{
		`{"tech":"100nm","l":2e-6,"length":0.03,"alpha":0,"freq":1e9}`,
		`{"tech":"100nm","l":2e-6,"length":0.03,"alpha":1.5,"freq":1e9}`,
		`{"tech":"100nm","l":2e-6,"length":0.03,"alpha":0.15,"freq":0}`,
		`{"tech":"100nm","l":2e-6,"length":0.03,"alpha":0.15,"freq":-1e9}`,
		`{"tech":"100nm","l":2e-6,"length":0.03,"alpha":0.15,"freq":1e9,"points":1}`,
	}
	for _, body := range bad {
		resp, b := postJSON(t, ts.URL+"/v1/plan-power", body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("body %s → status %d, want 400 (%s)", body, resp.StatusCode, b)
			continue
		}
		var env struct {
			Error apiError `json:"error"`
		}
		if err := json.Unmarshal(b, &env); err != nil {
			t.Errorf("body %s → non-envelope error %q", body, b)
		} else if env.Error.Kind != "domain" && env.Error.Kind != "bad-request" {
			t.Errorf("body %s → kind %q, want domain/bad-request", body, env.Error.Kind)
		}
	}
}

func TestParetoEndpointStreams(t *testing.T) {
	_, ts := testServer(t, Config{})
	const body = `{"tech":"100nm","l":2e-6,"f":0.9,"alpha":0.15,"freq":1e9,"points":5}`
	resp, b := postJSON(t, ts.URL+"/v1/pareto", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, b)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("Content-Type = %q", ct)
	}
	points, done := 0, 0
	var prev paretoPointLine
	sc := bufio.NewScanner(bytes.NewReader(b))
	for sc.Scan() {
		var rec struct {
			Type   string `json:"type"`
			Points int    `json:"points"`
		}
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		switch rec.Type {
		case "point":
			var pt paretoPointLine
			if err := json.Unmarshal(sc.Bytes(), &pt); err != nil {
				t.Fatal(err)
			}
			if points > 0 && (pt.Delay < prev.Delay*(1-1e-9) || pt.Power > prev.Power*(1+1e-9)) {
				t.Errorf("front not monotone at point %d", points)
			}
			prev = pt
			points++
		case "done":
			done++
			if rec.Points != points {
				t.Errorf("done record counts %d points, stream had %d", rec.Points, points)
			}
		default:
			t.Errorf("unexpected record type %q", rec.Type)
		}
	}
	if points != 5 || done != 1 {
		t.Errorf("stream had %d points and %d done records, want 5 and 1", points, done)
	}
	// Second request is a whole-trace cache hit.
	resp2, _ := postJSON(t, ts.URL+"/v1/pareto", body)
	if resp2.Header.Get("X-Cache") != "hit" {
		t.Errorf("second trace X-Cache = %q, want hit", resp2.Header.Get("X-Cache"))
	}
}
