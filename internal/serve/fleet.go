package serve

import (
	"encoding/json"
	"net/http"

	"rlcint/internal/fleet"
)

// peerRegion keys a fleet peer into the server's breaker set. Peer regions
// live in the same map as solver regions but can never collide with them:
// solver regions are "endpoint|tech|l^bucket" and endpoints never contain
// a '|'-free "peer" prefix with an address.
func peerRegion(addr string) string { return "peer|" + addr }

// peerGate adapts the server's circuit-breaker set to the fleet's PeerGate:
// forwarding outcomes feed the same three-state machinery that guards solver
// regions, so a peer that keeps failing is skipped from candidate sets until
// its cooldown probe succeeds.
type peerGate struct{ s *Server }

func (g *peerGate) Allow(addr string) bool {
	// The probe token is deliberately discarded: onResult resolves half-open
	// probing state for peer regions regardless of token, and every Allow here
	// is immediately followed by an attempt whose outcome is recorded.
	ok, _ := g.s.breakers.allow(peerRegion(addr))
	return ok
}

func (g *peerGate) Result(addr string, ok bool, cause string) {
	// Cancelled attempts (hedge losers, callers giving up) resolve the probe
	// slot but never count toward opening.
	eligible := !ok && cause != "cancelled"
	g.s.breakers.onResult(peerRegion(addr), ok, eligible, cause)
}

// tryForward routes a cache-missed unary request to the ring owner of its
// key. It reports true when it fully answered the request with a relayed
// peer response. Every failure mode — not in fleet mode, this instance owns
// the key, hop cap reached, no healthy candidates, forward budget exhausted
// — returns false and the caller computes locally: topology can cost a
// forward, never an answer.
func (s *Server) tryForward(w http.ResponseWriter, r *http.Request, spec *resilient) bool {
	if s.fleet == nil || spec.fwdPath == "" {
		return false
	}
	hops := fleet.HopsFrom(r.Header)
	if hops >= s.fleet.MaxHops() {
		// A forwarding loop (transient ring disagreement during a topology
		// change) is contained here: the hop-capped instance answers locally.
		s.metrics.fleetOps.Add("hop-capped", 1)
		return false
	}
	cands := s.fleet.Route(spec.key)
	if len(cands) == 0 {
		return false // we own the key, or every candidate is down
	}
	body, err := json.Marshal(spec.fwdReq)
	if err != nil {
		return false
	}
	pr, err := s.fleet.Forward(r.Context(), cands, spec.fwdPath, body, hops+1)
	if err != nil {
		s.metrics.fleetOps.Add("fallback-local", 1)
		s.cfg.Logger.Printf("fleet: forward %s failed, computing locally: %v", spec.fwdPath, err)
		return false
	}
	s.metrics.fleetOps.Add("forwarded", 1)
	if pr.Hedged {
		s.metrics.fleetOps.Add("hedge-answered", 1)
	}
	if pr.ContentType != "" {
		w.Header().Set("Content-Type", pr.ContentType)
	}
	w.Header().Set("X-Cache", "forwarded")
	w.Header().Set("X-Fleet-Peer", pr.Peer)
	if pr.Degraded != "" {
		w.Header().Set("X-Degraded", pr.Degraded)
	}
	w.WriteHeader(pr.Status)
	_, _ = w.Write(pr.Body)
	return true
}

// Fleet exposes the server's fleet (nil when not in fleet mode) for tests
// and for rlcd's SIGHUP peers-file reload.
func (s *Server) Fleet() *fleet.Fleet { return s.fleet }
