package serve

import (
	"context"
	"encoding/json"
	"net/http"
	"strconv"
	"time"

	"rlcint/internal/core"
	"rlcint/internal/diag"
	"rlcint/internal/power"
)

// This file serves the power-aware optimization subsystem: /v1/plan-power
// (unary, cached/coalesced/breaker-protected, with a degraded-mode estimate)
// and /v1/pareto (the delay/power front trace, streamed as NDJSON).

// planPowerReq drives /v1/plan-power: a power-minimal mixed-scheme repeater
// plan for a net of Length meters under a bounded delay penalty. Alpha and
// Freq are the workload (switching activity and clock frequency); their
// domain is enforced by the power model and maps to 400 like every other
// domain error.
type planPowerReq struct {
	Tech       string  `json:"tech"`
	L          float64 `json:"l"` // line inductance, H/m
	F          float64 `json:"f"`
	Length     float64 `json:"length"`      // total net length, m
	Alpha      float64 `json:"alpha"`       // switching activity ∈ (0,1]
	Freq       float64 `json:"freq"`        // clock frequency, Hz
	MaxPenalty float64 `json:"max_penalty"` // delay penalty budget; 0 → 0.05
	Points     int     `json:"points,omitempty"`
	MaxWeight  float64 `json:"max_weight,omitempty"`
	TimeoutMS  int64   `json:"timeout_ms,omitempty"`
	NoDegraded bool    `json:"no_degraded,omitempty"` // see optimizeReq.NoDegraded
}

func (q *planPowerReq) validate() error {
	if err := reqFinite("l", q.L, "f", q.F, "length", q.Length,
		"max_penalty", q.MaxPenalty, "max_weight", q.MaxWeight); err != nil {
		return err
	}
	if q.Points < 0 || (q.Points > 0 && q.Points < 2) || q.Points > 512 {
		return badRequestf("points=%d outside [2, 512]", q.Points)
	}
	// The workload domain (α ∈ (0,1], f > 0, finite) is the power model's
	// contract; checking it here turns the diag domain error into the same
	// 400 before any cache or breaker state is touched.
	return power.Params{Alpha: q.Alpha, Freq: q.Freq}.Validate()
}

func (q *planPowerReq) key() string {
	return "plan-power|" + q.Tech + "|" + canonF(q.L) + "|" + canonF(threshold(q.F)) +
		"|" + canonF(q.Length) + "|" + canonF(q.Alpha) + "|" + canonF(q.Freq) +
		"|" + canonF(q.MaxPenalty) + "|" + strconv.Itoa(q.Points) + "|" + canonF(q.MaxWeight)
}

// paretoReq drives /v1/pareto: the delay/power Pareto front of one
// (technology, inductance, workload) problem, streamed as NDJSON points.
type paretoReq struct {
	Tech      string  `json:"tech"`
	L         float64 `json:"l"`
	F         float64 `json:"f"`
	Alpha     float64 `json:"alpha"`
	Freq      float64 `json:"freq"`
	Points    int     `json:"points,omitempty"`
	MaxWeight float64 `json:"max_weight,omitempty"`
	TimeoutMS int64   `json:"timeout_ms,omitempty"`
}

func (q *paretoReq) validate() error {
	if err := reqFinite("l", q.L, "f", q.F, "max_weight", q.MaxWeight); err != nil {
		return err
	}
	if q.Points < 0 || (q.Points > 0 && q.Points < 2) || q.Points > 512 {
		return badRequestf("points=%d outside [2, 512]", q.Points)
	}
	return power.Params{Alpha: q.Alpha, Freq: q.Freq}.Validate()
}

func (q *paretoReq) key() string {
	return "pareto|" + q.Tech + "|" + canonF(q.L) + "|" + canonF(threshold(q.F)) +
		"|" + canonF(q.Alpha) + "|" + canonF(q.Freq) +
		"|" + strconv.Itoa(q.Points) + "|" + canonF(q.MaxWeight)
}

// powerBreakdownResp serializes a power.Breakdown (watts).
type powerBreakdownResp struct {
	Dynamic      float64 `json:"dynamic"`
	ShortCircuit float64 `json:"short_circuit"`
	Leakage      float64 `json:"leakage"`
	Total        float64 `json:"total"`
}

func breakdownOf(b power.Breakdown) powerBreakdownResp {
	return powerBreakdownResp{
		Dynamic: b.Dynamic, ShortCircuit: b.ShortCircuit,
		Leakage: b.Leakage, Total: b.Total(),
	}
}

// powerSchemeResp serializes one scheme run of a mixed plan.
type powerSchemeResp struct {
	Stages   int                `json:"stages"`
	H        float64            `json:"h"`
	K        float64            `json:"k"`
	StageTau float64            `json:"stage_tau"`
	Stage    powerBreakdownResp `json:"stage_power"`
}

// planPowerResp serializes a power.Plan (the front trace is served by
// /v1/pareto, not duplicated here).
type planPowerResp struct {
	Length        float64           `json:"length"`
	Schemes       []powerSchemeResp `json:"schemes"`
	Delay         float64           `json:"delay"`
	Power         float64           `json:"power"`
	Baseline      planResp          `json:"baseline"`
	BaselinePower float64           `json:"baseline_power"`
	PowerSaved    float64           `json:"power_saved"`
	DelayPenalty  float64           `json:"delay_penalty"`
}

func planPowerOf(p power.Plan) planPowerResp {
	resp := planPowerResp{
		Length: p.Length, Delay: p.Delay, Power: p.Power,
		Baseline: planOf(p.Baseline), BaselinePower: p.BaselinePower,
		PowerSaved: p.PowerSaved, DelayPenalty: p.DelayPenalty,
	}
	for _, sc := range p.Schemes {
		resp.Schemes = append(resp.Schemes, powerSchemeResp{
			Stages: sc.Stages, H: sc.H, K: sc.K, StageTau: sc.StageTau,
			Stage: breakdownOf(sc.Stage),
		})
	}
	return resp
}

func (s *Server) handlePlanPower(w http.ResponseWriter, r *http.Request) {
	var q planPowerReq
	if !s.decodeOrFail(w, r, &q, q.validate) {
		return
	}
	node, err := techOf(q.Tech)
	if err != nil {
		writeError(w, mapError(err))
		return
	}
	m, err := power.New(node, q.L, power.Params{Alpha: q.Alpha, Freq: q.Freq})
	if err != nil {
		writeError(w, mapError(err))
		return
	}
	opts := power.PlanOptions{
		MaxPenalty: q.MaxPenalty,
		Front:      power.FrontOptions{Points: q.Points, MaxWeight: q.MaxWeight, Workers: s.cfg.MaxWorkers},
	}
	s.serveResilient(w, r, resilient{
		key:        q.key(),
		region:     regionOf("plan-power", q.Tech, q.L),
		timeout:    s.timeoutFor(q.TimeoutMS),
		noDegraded: q.NoDegraded,
		fwdPath:    "/v1/plan-power",
		fwdReq:     &q,
		compute: func(ctx context.Context) (any, error) {
			rep := &diag.Report{}
			plan, err := power.PlanPower(ctx, m, threshold(q.F), q.Length, opts)
			s.metrics.recordLadder(rep)
			if err != nil {
				return nil, &solveError{err: err, report: rep}
			}
			return planPowerOf(plan), nil
		},
		estimate: func() (any, error) {
			// Degraded answer: the closed-form delay-optimal plan with its
			// power attached — a valid (zero-saving) member of the search
			// space, never a fabricated tradeoff.
			base, err := core.EstimatePlan(problemOf(node, q.L, threshold(q.F)), q.Length)
			if err != nil {
				return nil, err
			}
			br, err := m.Stage(base.H, base.K)
			if err != nil {
				return nil, err
			}
			basePower := float64(base.Stages) * br.Total()
			return planPowerResp{
				Length: q.Length,
				Schemes: []powerSchemeResp{{
					Stages: base.Stages, H: base.H, K: base.K,
					StageTau: base.StageTau, Stage: breakdownOf(br),
				}},
				Delay: base.Total, Power: basePower,
				Baseline: planOf(base), BaselinePower: basePower,
			}, nil
		},
	})
}

// paretoPointLine is one NDJSON record of a streamed front trace.
type paretoPointLine struct {
	Type       string             `json:"type"` // "point"
	Weight     float64            `json:"weight"`
	H          float64            `json:"h"`
	K          float64            `json:"k"`
	Tau        float64            `json:"tau"`
	Delay      float64            `json:"delay"` // per-unit delay, s/m
	Power      float64            `json:"power"` // per-unit power, W/m
	DelayRatio float64            `json:"delay_ratio"`
	PowerRatio float64            `json:"power_ratio"`
	Stage      powerBreakdownResp `json:"stage_power"`
}

// handlePareto streams the delay/power Pareto front as NDJSON: one "point"
// record per front point and a terminal "done" record. The whole trace is
// one cached and coalesced computation — unlike a sweep, the warm-start
// continuation makes the trace a single unit of work, so it is not chunked.
func (s *Server) handlePareto(w http.ResponseWriter, r *http.Request) {
	var q paretoReq
	if !s.decodeOrFail(w, r, &q, q.validate) {
		return
	}
	node, err := techOf(q.Tech)
	if err != nil {
		writeError(w, mapError(err))
		return
	}
	m, err := power.New(node, q.L, power.Params{Alpha: q.Alpha, Freq: q.Freq})
	if err != nil {
		writeError(w, mapError(err))
		return
	}
	opts := power.FrontOptions{Points: q.Points, MaxWeight: q.MaxWeight, Workers: s.cfg.MaxWorkers}
	deadline := time.Now().Add(s.timeoutFor(q.TimeoutMS))
	reqCtx, cancel := context.WithDeadline(r.Context(), deadline)
	defer cancel()

	key := q.key()
	e, ok := s.cacheGet(key)
	src := "hit"
	if !ok {
		var shared bool
		e, err, shared = s.flights.do(reqCtx, key, time.Until(deadline), func(ctx context.Context) (*cached, error) {
			if err := s.limiter.acquire(ctx); err != nil {
				return nil, err
			}
			defer s.limiter.release()
			front, err := power.ParetoFront(ctx, m, threshold(q.F), opts)
			if err != nil {
				return nil, err
			}
			var body []byte
			for _, fp := range front {
				line, err := json.Marshal(paretoPointLine{
					Type: "point", Weight: fp.Weight,
					H: fp.H, K: fp.K, Tau: fp.Tau,
					Delay: fp.Delay, Power: fp.Power,
					DelayRatio: fp.DelayRatio, PowerRatio: fp.PowerRatio,
					Stage: breakdownOf(fp.Stage),
				})
				if err != nil {
					return nil, err
				}
				body = append(body, line...)
				body = append(body, '\n')
			}
			e := &cached{key: key, ctype: "application/x-ndjson", body: body}
			s.cachePut(e)
			return e, nil
		})
		src = "miss"
		if shared {
			src = "coalesced"
		}
		if err != nil {
			s.metrics.xcache.Add(src, 1)
			writeError(w, s.mapErrorWithRetry(err, ""))
			return
		}
	}
	s.metrics.xcache.Add(src, 1)
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("X-Cache", src)
	_, _ = w.Write(e.body)
	points := 0
	for _, b := range e.body {
		if b == '\n' {
			points++
		}
	}
	line, _ := json.Marshal(struct {
		Type   string `json:"type"`
		Points int    `json:"points"`
		Tech   string `json:"tech"`
	}{"done", points, node.Name})
	_, _ = w.Write(append(line, '\n'))
}
