package serve

import (
	"encoding/json"
	"errors"
	"io"
	"math"
	"net/http"
	"strconv"
	"strings"

	"rlcint/internal/tech"
)

// maxBodyBytes bounds every request body; grids large enough to exceed it
// are out of scope for a single request anyway.
const maxBodyBytes = 1 << 20

// decodeJSON decodes the request body into v strictly: unknown fields,
// trailing garbage, oversized bodies, and non-JSON all fail with a typed
// *badRequest (→ 400). JSON cannot carry NaN/±Inf literals, and Go's decoder
// rejects out-of-range numbers, so decoded floats are always finite — the
// facade's ErrDomain validation backstops anything that slips through.
func decodeJSON(w http.ResponseWriter, r *http.Request, v any) error {
	r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			return badRequestf("request body exceeds %d bytes", mbe.Limit)
		}
		return badRequestf("invalid request JSON: %v", err)
	}
	if err := dec.Decode(&struct{}{}); err != io.EOF {
		return badRequestf("trailing data after JSON body")
	}
	return nil
}

// canonF renders a float for canonical cache keys: the exact bit pattern, so
// two requests share a key iff their inputs are identical.
func canonF(v float64) string {
	return strconv.FormatUint(math.Float64bits(v), 16)
}

// reqFinite rejects non-finite request floats with a 400 before they reach a
// solver (defense in depth; strict JSON decoding should make this moot).
func reqFinite(pairs ...any) error {
	for i := 0; i+1 < len(pairs); i += 2 {
		v := pairs[i+1].(float64)
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return badRequestf("%s=%g is not finite", pairs[i], v)
		}
	}
	return nil
}

// techOf resolves the technology node named in a request.
func techOf(name string) (tech.Node, error) {
	if name == "" {
		return tech.Node{}, badRequestf("missing technology (want one of: 250nm, 100nm, 100nm-eps250)")
	}
	t, err := tech.ByName(name)
	if err != nil {
		return tech.Node{}, badRequestf("%v", err)
	}
	return t, nil
}

// threshold normalizes the delay-threshold field: 0 means the paper's 50%.
func threshold(f float64) float64 {
	if f == 0 {
		return 0.5
	}
	return f
}

// optimizeReq drives /v1/optimize: the paper's core methodology at one
// (technology, inductance, threshold) point. All units SI.
type optimizeReq struct {
	Tech      string  `json:"tech"`
	L         float64 `json:"l"` // line inductance, H/m
	F         float64 `json:"f"` // delay threshold fraction; 0 → 0.5
	TimeoutMS int64   `json:"timeout_ms,omitempty"`
	// NoDegraded opts this request out of degraded-mode answers: a solver
	// failure surfaces as its mapped error instead of a closed-form
	// estimate. Not part of the cache key — it changes failure handling,
	// never the result.
	NoDegraded bool `json:"no_degraded,omitempty"`
}

func (q *optimizeReq) validate() error { return reqFinite("l", q.L, "f", q.F) }

func (q *optimizeReq) key() string {
	return "optimize|" + q.Tech + "|" + canonF(q.L) + "|" + canonF(threshold(q.F))
}

// delayReq drives /v1/delay: the f×100% delay of one explicit stage.
type delayReq struct {
	Tech       string  `json:"tech"`
	L          float64 `json:"l"` // line inductance, H/m
	H          float64 `json:"h"` // segment length, m
	K          float64 `json:"k"` // repeater size
	F          float64 `json:"f"`
	TimeoutMS  int64   `json:"timeout_ms,omitempty"`
	NoDegraded bool    `json:"no_degraded,omitempty"` // see optimizeReq.NoDegraded
}

func (q *delayReq) validate() error {
	return reqFinite("l", q.L, "h", q.H, "k", q.K, "f", q.F)
}

func (q *delayReq) key() string {
	return "delay|" + q.Tech + "|" + canonF(q.L) + "|" + canonF(q.H) + "|" +
		canonF(q.K) + "|" + canonF(threshold(q.F))
}

// planReq drives /v1/plan: a realizable integer-stage repeater plan for a
// net of total length Length meters.
type planReq struct {
	Tech       string  `json:"tech"`
	L          float64 `json:"l"`
	F          float64 `json:"f"`
	Length     float64 `json:"length"` // total net length, m
	TimeoutMS  int64   `json:"timeout_ms,omitempty"`
	NoDegraded bool    `json:"no_degraded,omitempty"` // see optimizeReq.NoDegraded
}

func (q *planReq) validate() error {
	return reqFinite("l", q.L, "f", q.F, "length", q.Length)
}

func (q *planReq) key() string {
	return "plan|" + q.Tech + "|" + canonF(q.L) + "|" + canonF(threshold(q.F)) + "|" + canonF(q.Length)
}

// rcReq drives /v1/optimize-rc: the closed-form Elmore/RC optimum.
type rcReq struct {
	Tech string `json:"tech"`
}

func (q *rcReq) key() string { return "optimize-rc|" + q.Tech }

// lcritReq drives /v1/lcrit: the paper's Eq. (4) critical inductance of one
// explicit stage (the stage's own l is ignored by the formula).
type lcritReq struct {
	Tech string  `json:"tech"`
	L    float64 `json:"l"`
	H    float64 `json:"h"`
	K    float64 `json:"k"`
}

func (q *lcritReq) validate() error {
	if err := reqFinite("l", q.L, "h", q.H, "k", q.K); err != nil {
		return err
	}
	// Eq. (4) divides by the stage's loading (c·h²/2 + cl·h) and sizes the
	// driver as R0/k: a non-positive geometry yields NaN/Inf, which has no
	// JSON encoding — reject it as the caller's error instead.
	if q.H <= 0 {
		return badRequestf("h=%g must be positive", q.H)
	}
	if q.K <= 0 {
		return badRequestf("k=%g must be positive", q.K)
	}
	return nil
}

func (q *lcritReq) key() string {
	return "lcrit|" + q.Tech + "|" + canonF(q.L) + "|" + canonF(q.H) + "|" + canonF(q.K)
}

// sweepReq drives /v1/sweep: the Section 3 study over an inductance grid,
// streamed as NDJSON. Workers is an execution hint (capped server-side,
// never part of the result), while Warm and TileSize are part of the result
// contract and therefore of the cache key.
type sweepReq struct {
	Tech      string    `json:"tech"`
	Ls        []float64 `json:"ls"` // inductance grid, H/m
	F         float64   `json:"f"`
	Warm      bool      `json:"warm,omitempty"`
	Workers   int       `json:"workers,omitempty"`
	TileSize  int       `json:"tile_size,omitempty"`
	TimeoutMS int64     `json:"timeout_ms,omitempty"`
}

func (q *sweepReq) validate(maxPoints int) error {
	if len(q.Ls) == 0 {
		return badRequestf("empty inductance grid")
	}
	if len(q.Ls) > maxPoints {
		return badRequestf("grid of %d points exceeds the per-request limit of %d", len(q.Ls), maxPoints)
	}
	for i, l := range q.Ls {
		if math.IsNaN(l) || math.IsInf(l, 0) {
			return badRequestf("ls[%d]=%g is not finite", i, l)
		}
	}
	if q.Workers < 0 || q.TileSize < 0 {
		return badRequestf("workers and tile_size must be non-negative")
	}
	return reqFinite("f", q.F)
}

// keyBase canonicalizes everything that decides sweep results except the
// grid itself; chunkKey appends the chunk's slice of the grid.
func (q *sweepReq) keyBase() string {
	var b strings.Builder
	b.WriteString("sweep|")
	b.WriteString(q.Tech)
	b.WriteString("|")
	b.WriteString(canonF(threshold(q.F)))
	if q.Warm {
		b.WriteString("|warm|tile=")
		b.WriteString(strconv.Itoa(q.TileSize))
	}
	return b.String()
}

// chunkKey is the canonical key of one streamed chunk: the base plus the
// chunk's exact grid values (position-independent, so identical chunks of
// different requests share work).
func chunkKey(base string, ls []float64) string {
	var b strings.Builder
	b.Grow(len(base) + 17*len(ls) + 8)
	b.WriteString(base)
	b.WriteString("|")
	for _, l := range ls {
		b.WriteString(canonF(l))
		b.WriteString(",")
	}
	return b.String()
}

// oxideReq drives /v1/check/oxide.
type oxideReq struct {
	Tech       string  `json:"tech"`
	OvershootV float64 `json:"overshoot_v"` // measured overshoot above VDD, V
}

func (q *oxideReq) validate() error {
	if err := reqFinite("overshoot_v", q.OvershootV); err != nil {
		return err
	}
	if q.OvershootV < 0 {
		return badRequestf("overshoot_v must be non-negative, got %g", q.OvershootV)
	}
	return nil
}

func (q *oxideReq) key() string { return "check-oxide|" + q.Tech + "|" + canonF(q.OvershootV) }

// wireReq drives /v1/check/wire.
type wireReq struct {
	PeakJ float64 `json:"peak_j"` // peak current density, A/m²
	RMSJ  float64 `json:"rms_j"`  // rms current density, A/m²
}

func (q *wireReq) validate() error {
	if err := reqFinite("peak_j", q.PeakJ, "rms_j", q.RMSJ); err != nil {
		return err
	}
	if q.PeakJ < 0 || q.RMSJ < 0 || (q.PeakJ > 0 && q.RMSJ > q.PeakJ) {
		return badRequestf("implausible densities peak_j=%g rms_j=%g", q.PeakJ, q.RMSJ)
	}
	return nil
}

func (q *wireReq) key() string { return "check-wire|" + canonF(q.PeakJ) + "|" + canonF(q.RMSJ) }
