package serve

import (
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func benchServer(b *testing.B, cfg Config) http.Handler {
	b.Helper()
	cfg.Logger = log.New(io.Discard, "", 0)
	s := New(cfg)
	b.Cleanup(s.Close)
	return s.Handler()
}

func benchPost(b *testing.B, h http.Handler, path, body string) int {
	req := httptest.NewRequest("POST", path, strings.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec.Code
}

// BenchmarkServeOptimizeCached measures the full HTTP round trip when the
// result cache answers: decode, canonical key, LRU hit, write.
func BenchmarkServeOptimizeCached(b *testing.B) {
	h := benchServer(b, Config{})
	body := `{"tech":"100nm","l":2e-6,"f":0.5}`
	if code := benchPost(b, h, "/v1/optimize", body); code != 200 {
		b.Fatalf("warmup status %d", code)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if code := benchPost(b, h, "/v1/optimize", body); code != 200 {
			b.Fatalf("status %d", code)
		}
	}
}

// BenchmarkServeOptimizeCold measures the uncached serve path — every
// request is a distinct problem, so each one runs the full optimizer ladder
// behind admission control and singleflight.
func BenchmarkServeOptimizeCold(b *testing.B) {
	h := benchServer(b, Config{CacheEntries: -1})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		body := fmt.Sprintf(`{"tech":"100nm","l":%g,"f":0.5}`, 1e-6+float64(i)*1e-11)
		if code := benchPost(b, h, "/v1/optimize", body); code != 200 {
			b.Fatalf("status %d", code)
		}
	}
}

// BenchmarkServeSweepCached measures a 32-point NDJSON sweep answered
// entirely from the chunk cache.
func BenchmarkServeSweepCached(b *testing.B) {
	h := benchServer(b, Config{})
	var ls []string
	for i := 0; i < 32; i++ {
		ls = append(ls, fmt.Sprintf("%g", float64(i)*1e-7))
	}
	body := `{"tech":"100nm","ls":[` + strings.Join(ls, ",") + `],"f":0.5}`
	if code := benchPost(b, h, "/v1/sweep", body); code != 200 {
		b.Fatalf("warmup status %d", code)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if code := benchPost(b, h, "/v1/sweep", body); code != 200 {
			b.Fatalf("status %d", code)
		}
	}
}
