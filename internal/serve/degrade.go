package serve

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"time"

	"rlcint/internal/diag"
)

// errBreakerOpen short-circuits a request whose region's circuit breaker is
// open (or whose half-open probe slot is taken): the expensive ladder is
// skipped entirely. With degradation enabled the client still gets an
// estimate; with it disabled this maps to 503 breaker-open.
var errBreakerOpen = errors.New("serve: circuit breaker open for this request region")

// degradable reports whether a solve failure may be answered with the
// closed-form estimate: the solver ran and typed-failed, or ran out of
// time/budget, or panicked — the cases where a bounded-accuracy answer
// beats no answer. Bad input (domain), client disconnects, and admission
// rejects are never degraded: the first is the caller's bug, the second has
// no reader, and the third must shed load, not add work.
func degradable(err error) bool {
	switch {
	case errors.Is(err, errBreakerOpen),
		errors.Is(err, diag.ErrNonConvergence),
		errors.Is(err, diag.ErrSingularJacobian),
		errors.Is(err, diag.ErrTimestepCollapse),
		errors.Is(err, diag.ErrDeadline),
		errors.Is(err, context.DeadlineExceeded),
		errors.Is(err, diag.ErrBudget),
		errors.Is(err, diag.ErrPanic):
		return true
	}
	return false
}

// breakerEligible marks the failure kinds that count toward opening a
// region's breaker — exactly the degradable solver failures, minus the
// breaker's own short-circuit sentinel.
func breakerEligible(err error) bool {
	return err != nil && !errors.Is(err, errBreakerOpen) && degradable(err)
}

// degradedResp is the envelope of a degraded-mode answer: an explicit flag
// no client can miss, the failure kind that triggered the fallback, the
// closed-form estimate, and — when a solve actually ran — the serialized
// recovery-ladder report showing what was tried.
type degradedResp struct {
	Degraded bool            `json:"degraded"` // always true
	Reason   string          `json:"reason"`
	Estimate any             `json:"estimate"`
	Report   []reportAttempt `json:"report,omitempty"`
}

// resilient describes one unary solver endpoint's pipeline inputs: the
// cache key, the breaker region ("" → no breaker), the compute closure, and
// the closed-form estimate used for degraded answers (nil → endpoint has no
// degraded mode and fails like before).
type resilient struct {
	key        string
	region     string
	timeout    time.Duration
	noDegraded bool // request opted out via no_degraded
	compute    func(ctx context.Context) (any, error)
	estimate   func() (any, error)

	// fwdPath/fwdReq describe the request for fleet forwarding: the endpoint
	// path and the decoded (canonicalized) request to re-marshal for the
	// owner shard. Empty fwdPath → never forwarded (sweeps stream locally).
	fwdPath string
	fwdReq  any
}

// serveResilient is the resilient unary pipeline: cache lookup → breaker
// gate → singleflight coalescing → admission control → compute → marshal →
// cache fill, with failures degraded to the closed-form estimate whenever
// one exists and the client did not opt out. Breaker results are recorded
// once per computation, inside the flight, so coalesced bursts count as one
// attempt — and exactly once per closure run, so a half-open probe always
// resolves: admission rejects record an ineligible failure, a panic
// unwinding out of compute records via the deferred catch-all, and a probe
// that coalesced onto an already-recorded flight (its closure never ran)
// is released with probeAbort.
func (s *Server) serveResilient(w http.ResponseWriter, r *http.Request, spec resilient) {
	if e, ok := s.cacheGet(spec.key); ok {
		s.metrics.xcache.Add("hit", 1)
		writeCachedBody(w, e, "hit")
		return
	}
	// A local miss in fleet mode first tries the key's ring owner, whose
	// cache is warm for this key no matter which instance the client hit.
	// Any forwarding failure falls through to the local pipeline below.
	if s.tryForward(w, r, &spec) {
		return
	}
	var probe uint64
	if spec.region != "" {
		ok, p := s.breakers.allow(spec.region)
		if !ok {
			s.degradeOrError(w, errBreakerOpen, nil, spec)
			return
		}
		probe = p
	}
	e, err, shared := s.flights.do(r.Context(), spec.key, spec.timeout, func(ctx context.Context) (*cached, error) {
		recorded := spec.region == ""
		record := func(ok, eligible bool, cause string) {
			recorded = true
			s.breakers.onResult(spec.region, ok, eligible, cause)
		}
		// The only path that can skip the explicit record calls below is a
		// panic out of spec.compute (contained one layer up, in the flight);
		// fold it in here so it still counts and a probe never wedges.
		defer func() {
			if !recorded {
				record(false, true, "panic")
			}
		}()
		if err := s.limiter.acquire(ctx); err != nil {
			if !recorded {
				record(false, false, mapError(err).Kind)
			}
			return nil, err
		}
		defer s.limiter.release()
		v, err := spec.compute(ctx)
		var body []byte
		if err == nil {
			body, err = json.Marshal(v)
		}
		if !recorded {
			cause := ""
			if err != nil {
				cause = mapError(err).Kind
			}
			record(err == nil, breakerEligible(err), cause)
		}
		if err != nil {
			return nil, err
		}
		e := &cached{key: spec.key, ctype: "application/json", body: append(body, '\n')}
		s.cachePut(e)
		return e, nil
	})
	if probe != 0 && shared {
		// This request held the probe slot but joined an existing flight, so
		// its own closure never ran. The leader's record belongs to its own
		// computation (and may predate the probe grant); release the slot so
		// the next caller can probe instead of the region wedging degraded.
		s.breakers.probeAbort(spec.region, probe)
	}
	src := "miss"
	if shared {
		src = "coalesced"
	}
	s.metrics.xcache.Add(src, 1)
	if err != nil {
		var se *solveError
		var rep *diag.Report
		if errors.As(err, &se) {
			rep = se.report
		}
		s.degradeOrError(w, err, rep, spec)
		return
	}
	writeCachedBody(w, e, src)
}

// degradeOrError answers a failed (or short-circuited) solve: with the
// closed-form estimate when degradation applies, else with the mapped
// error. Degraded answers are 200s flagged in both the body
// ("degraded": true) and an X-Degraded header carrying the failure kind;
// they are never cached, so a later healthy solve can still fill the cache
// with the exact answer.
func (s *Server) degradeOrError(w http.ResponseWriter, cause error, rep *diag.Report, spec resilient) {
	ae := s.mapErrorWithRetry(cause, spec.region)
	if spec.estimate != nil && !spec.noDegraded && !s.cfg.DisableDegraded && degradable(cause) {
		if est, eerr := spec.estimate(); eerr == nil {
			s.metrics.degraded.Add(ae.Kind, 1)
			w.Header().Set("Content-Type", "application/json")
			w.Header().Set("X-Degraded", ae.Kind)
			_ = json.NewEncoder(w).Encode(degradedResp{
				Degraded: true,
				Reason:   ae.Kind,
				Estimate: est,
				Report:   reportOf(rep),
			})
			return
		}
		// The estimate itself failed (ill-posed problem): fall through to
		// the original error, which carries the real diagnosis.
	}
	writeError(w, ae)
}
