package ringosc

import (
	"math"
	"testing"

	"rlcint/internal/tech"
)

func TestConfigDefaults(t *testing.T) {
	cfg, err := Config{Node: tech.Node100(), LineL: 2e-6}.withDefaults()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(cfg.H-11.1e-3)/11.1e-3 > 0.02 {
		t.Errorf("default H = %v, want h_optRC ≈ 11.1mm", cfg.H)
	}
	if math.Abs(cfg.K-528)/528 > 0.02 {
		t.Errorf("default K = %v, want k_optRC ≈ 528", cfg.K)
	}
	if cfg.Stages != 5 || cfg.Sections != 16 || cfg.Gain != 20 {
		t.Errorf("defaults wrong: %+v", cfg)
	}
	if cfg.TStop <= 0 || cfg.DT <= 0 || cfg.DT >= cfg.TStop {
		t.Errorf("window wrong: %+v", cfg)
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := (Config{Node: tech.Node100(), LineL: -1}).withDefaults(); err == nil {
		t.Error("negative inductance must fail")
	}
	if _, err := (Config{Node: tech.Node100(), Stages: 4}).withDefaults(); err == nil {
		t.Error("even stage count must fail")
	}
	bad := tech.Node100()
	bad.VDD = 0
	if _, err := (Config{Node: bad}).withDefaults(); err == nil {
		t.Error("invalid node must fail")
	}
}

func TestRingOscillatesAtModerateInductance(t *testing.T) {
	// Figure 9 regime: l = 1.8 nH/mm oscillates cleanly with visible
	// overshoot and undershoot at the inverter input but no collapse.
	if testing.Short() {
		t.Skip("transient simulation")
	}
	w, met, err := RunRing(Config{Node: tech.Node100(), LineL: 1.8e-6})
	if err != nil {
		t.Fatal(err)
	}
	if met.Period <= 0 {
		t.Fatalf("period %v", met.Period)
	}
	if met.Overshoot < 0.1 || met.Undershoot < 0.1 {
		t.Errorf("expected visible over/undershoot, got %v / %v", met.Overshoot, met.Undershoot)
	}
	// The input waveform rings beyond the rails, the output stays cleaner
	// (paper: "the inverter output is relatively clean").
	vddN := tech.Node100().VDD
	outMax, outMin := math.Inf(-1), math.Inf(1)
	for i, tt := range w.T {
		if tt < 0.3*w.T[len(w.T)-1] {
			continue
		}
		if w.VOut[i] > outMax {
			outMax = w.VOut[i]
		}
		if w.VOut[i] < outMin {
			outMin = w.VOut[i]
		}
	}
	outOver := math.Max(0, outMax-vddN) + math.Max(0, -outMin)
	inOver := met.Overshoot + met.Undershoot
	if outOver >= inOver {
		t.Errorf("output excursions (%v) should be smaller than input's (%v)", outOver, inOver)
	}
}

func TestRingPeriodCollapseAt100nm(t *testing.T) {
	// Figure 11: the 100 nm ring's period collapses (false switching) once
	// l crosses ≈2–3 nH/mm; our calibrated inverter places the onset near
	// 2.7 nH/mm.
	if testing.Short() {
		t.Skip("transient simulation")
	}
	pts, err := SweepPeriod(Config{Node: tech.Node100()}, []float64{1.8e-6, 3.0e-6})
	if err != nil {
		t.Fatal(err)
	}
	if pts[0].Collapsed {
		t.Error("no collapse expected at 1.8 nH/mm")
	}
	if !pts[1].Collapsed {
		t.Errorf("collapse expected at 3.0 nH/mm (period %v vs %v)",
			pts[1].Metrics.Period, pts[0].Metrics.Period)
	}
	// In the collapsed regime the undershoot is dramatically larger.
	if pts[1].Metrics.Undershoot < 2*pts[0].Metrics.Undershoot {
		t.Errorf("collapsed undershoot %v not ≫ %v",
			pts[1].Metrics.Undershoot, pts[0].Metrics.Undershoot)
	}
}

func TestRingNoCollapseAt250nm(t *testing.T) {
	// The paper: the 250 nm node shows no false switching for l < 5 nH/mm.
	if testing.Short() {
		t.Skip("transient simulation")
	}
	pts, err := SweepPeriod(Config{Node: tech.Node250()}, []float64{1e-6, 4.9e-6})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pts {
		if p.Collapsed {
			t.Errorf("unexpected collapse at l=%v nH/mm in 250 nm", p.L*1e6)
		}
	}
	// Period grows monotonically with l below the collapse.
	if pts[1].Metrics.Period <= pts[0].Metrics.Period {
		t.Errorf("period should grow with l: %v vs %v",
			pts[1].Metrics.Period, pts[0].Metrics.Period)
	}
}

func TestCurrentDensityWeaklyDependentOnL(t *testing.T) {
	// Figure 12: peak and rms wire current densities change little with l
	// (below the false-switching onset).
	if testing.Short() {
		t.Skip("transient simulation")
	}
	var ref Metrics
	for i, l := range []float64{0.6e-6, 2.2e-6} {
		_, met, err := RunRing(Config{Node: tech.Node100(), LineL: l})
		if err != nil {
			t.Fatal(err)
		}
		if met.PeakJ <= 0 || met.RMSJ <= 0 || met.RMSJ > met.PeakJ {
			t.Fatalf("l=%v: implausible densities %+v", l, met)
		}
		if i == 0 {
			ref = met
			continue
		}
		if r := met.PeakJ / ref.PeakJ; r < 0.4 || r > 2.5 {
			t.Errorf("peak density ratio %v across l: not 'appreciably constant'", r)
		}
		if r := met.RMSJ / ref.RMSJ; r < 0.4 || r > 2.5 {
			t.Errorf("rms density ratio %v across l", r)
		}
	}
}

func TestSectionCountConvergence(t *testing.T) {
	// Doubling the ladder resolution must not change the measured period
	// by more than a few percent.
	if testing.Short() {
		t.Skip("transient simulation")
	}
	_, m16, err := RunRing(Config{Node: tech.Node100(), LineL: 1.8e-6, Sections: 16})
	if err != nil {
		t.Fatal(err)
	}
	_, m32, err := RunRing(Config{Node: tech.Node100(), LineL: 1.8e-6, Sections: 32})
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(m32.Period-m16.Period) / m32.Period; rel > 0.05 {
		t.Errorf("period not converged in sections: %v vs %v (rel %v)",
			m16.Period, m32.Period, rel)
	}
}

func TestBufferedLineShowsSamePhenomenon(t *testing.T) {
	// The paper: the false-switching behaviour "is not an artifact of the
	// ring oscillator configuration" — the square-wave-driven chain shows
	// clean periodic output at low l and violent ringing at high l.
	if testing.Short() {
		t.Skip("transient simulation")
	}
	_, low, err := RunBufferedLine(Config{Node: tech.Node100(), LineL: 0.8e-6})
	if err != nil {
		t.Fatal(err)
	}
	_, high, err := RunBufferedLine(Config{Node: tech.Node100(), LineL: 3.2e-6})
	if err != nil {
		t.Fatal(err)
	}
	if low.Period <= 0 || high.Period <= 0 {
		t.Fatal("periods not measured")
	}
	if high.Undershoot < 1.5*low.Undershoot {
		t.Errorf("high-l undershoot %v not ≫ low-l %v", high.Undershoot, low.Undershoot)
	}
}

func TestRCOnlyLineRuns(t *testing.T) {
	// LineL = 0 builds an RC ladder (no inductors, no current probe).
	if testing.Short() {
		t.Skip("transient simulation")
	}
	w, met, err := RunRing(Config{Node: tech.Node100(), LineL: 0})
	if err != nil {
		t.Fatal(err)
	}
	if w.ILine != nil {
		t.Error("RC line should have no current probe")
	}
	if met.Period <= 0 {
		t.Error("RC ring must still oscillate")
	}
	if met.Overshoot > 0.02 {
		t.Errorf("RC ring cannot overshoot, got %v", met.Overshoot)
	}
}
