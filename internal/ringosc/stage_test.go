package ringosc

import (
	"fmt"
	"math"
	"testing"

	"rlcint/internal/awe"
	"rlcint/internal/pade"
	"rlcint/internal/repeater"
	"rlcint/internal/spice"
	"rlcint/internal/tech"
	"rlcint/internal/tline"
	"rlcint/internal/waveform"
)

// simulateStageDelay builds the paper's driver-line-load stage as a ladder
// circuit with an ideal step source behind RS, runs a transient, and
// measures the 50% delay of the output.
func simulateStageDelay(t *testing.T, st tline.Stage, sections int) float64 {
	t.Helper()
	ckt := spice.New()
	in, drv := ckt.Node("in"), ckt.Node("drv")
	if _, err := ckt.AddV(in, spice.Ground, spice.DC(1)); err != nil {
		t.Fatal(err)
	}
	if err := ckt.AddR(in, drv, st.RS); err != nil {
		t.Fatal(err)
	}
	if err := ckt.AddC(drv, spice.Ground, st.CP); err != nil {
		t.Fatal(err)
	}
	prev := drv
	var out spice.NodeID
	for i, sg := range st.Line.Ladder(st.H, sections) {
		mid := ckt.Node(fmt.Sprintf("m%d", i))
		next := ckt.Node(fmt.Sprintf("n%d", i))
		if err := ckt.AddR(prev, mid, sg.R); err != nil {
			t.Fatal(err)
		}
		if _, err := ckt.AddL(mid, next, sg.L); err != nil {
			t.Fatal(err)
		}
		if err := ckt.AddC(next, spice.Ground, sg.C); err != nil {
			t.Fatal(err)
		}
		prev = next
		out = next
	}
	if err := ckt.AddC(out, spice.Ground, st.CL); err != nil {
		t.Fatal(err)
	}
	// Window: several Elmore times.
	tstop := 8 * st.ElmoreSegment()
	res, err := ckt.Transient(spice.TranOpts{
		TStop: tstop, DT: tstop / 6000, UseICs: true,
	}, spice.NodeProbe{Name: "out", ID: out})
	if err != nil {
		t.Fatal(err)
	}
	v, _ := res.Signal("out")
	tau, err := waveform.FirstCrossing(res.T, v, 0.5, 0, waveform.Rising)
	if err != nil {
		t.Fatal(err)
	}
	return tau
}

func TestEndToEndStageDelayThreeWay(t *testing.T) {
	// The repository's central cross-validation: for the paper's stages,
	// the transient-simulated distributed delay, the higher-order AWE
	// delay, and the two-pole delay must line up:
	//   - AWE vs simulation: a few percent (both near-exact),
	//   - two-pole vs simulation: within ~20% with a known negative bias
	//     at high inductance (wave dead time).
	if testing.Short() {
		t.Skip("transient simulation")
	}
	n := tech.Node100()
	d := repeater.FromTech(n)
	for _, lNH := range []float64{0.5, 2, 4} {
		st := d.Stage(tline.Line{R: n.R, L: lNH * tech.NHPerMM, C: n.C}, 11.1*tech.MM, 528)
		sim := simulateStageDelay(t, st, 60)

		m, err := pade.FromStage(st)
		if err != nil {
			t.Fatal(err)
		}
		two, err := m.Delay(0.5)
		if err != nil {
			t.Fatal(err)
		}
		var ref float64 = math.NaN()
		for q := 6; q >= 3; q-- {
			fit, err := awe.FromStage(st, q)
			if err != nil || !fit.Stable() {
				continue
			}
			if ref, err = fit.Delay(0.5); err == nil {
				break
			}
		}
		if math.IsNaN(ref) {
			t.Fatalf("l=%v: no stable AWE reference", lNH)
		}
		if rel := math.Abs(ref-sim) / sim; rel > 0.05 {
			t.Errorf("l=%v: AWE %v vs simulated %v (rel %v)", lNH, ref, sim, rel)
		}
		if rel := math.Abs(two.Tau-sim) / sim; rel > 0.20 {
			t.Errorf("l=%v: two-pole %v vs simulated %v (rel %v)", lNH, two.Tau, sim, rel)
		}
		if lNH >= 2 && two.Tau >= sim {
			t.Errorf("l=%v: two-pole should underestimate the distributed delay (%v vs %v)",
				lNH, two.Tau, sim)
		}
	}
}

func TestSimulatedDelayRespectsTimeOfFlight(t *testing.T) {
	// Physics guard: the simulated 50% delay can never beat the lossless
	// time of flight (a bound the two-pole model is free to violate).
	if testing.Short() {
		t.Skip("transient simulation")
	}
	n := tech.Node100()
	d := repeater.FromTech(n)
	st := d.Stage(tline.Line{R: n.R, L: 4 * tech.NHPerMM, C: n.C}, 11.1*tech.MM, 528)
	sim := simulateStageDelay(t, st, 60)
	if tof := st.Line.TimeOfFlight(st.H); sim < tof {
		t.Errorf("simulated delay %v below time of flight %v", sim, tof)
	}
}
