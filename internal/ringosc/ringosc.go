// Package ringosc builds and measures the paper's Section 3.3 experiments:
// a five-stage ring oscillator whose stages are RC-optimally sized repeaters
// driving distributed RLC interconnect segments (Figures 9–11), and the
// square-wave-driven five-stage buffered line the paper uses to show the
// false-switching phenomenon is not a ring artifact. The circuits are
// simulated with internal/spice on a section-discretized line and measured
// with internal/waveform.
package ringosc

import (
	"fmt"
	"math"

	"rlcint/internal/pade"
	"rlcint/internal/repeater"
	"rlcint/internal/spice"
	"rlcint/internal/tech"
	"rlcint/internal/tline"
	"rlcint/internal/waveform"
)

// Config describes one experiment instance.
type Config struct {
	Node tech.Node
	// LineL is the line inductance per unit length, H/m. Zero builds an RC
	// line (no inductors).
	LineL float64
	// H and K are the segment length and repeater size; zero selects the
	// node's RC optimum (the paper's choice).
	H, K float64
	// Stages is the number of inverter+line stages; zero selects the
	// paper's 5.
	Stages int
	// Sections per line segment in the ladder discretization; zero selects
	// 16, which resolves the ringing of every swept configuration (see the
	// convergence test).
	Sections int
	// Gain is the inverter macro-model's switching sharpness; zero selects
	// the package default (20).
	Gain float64
	// NoReduction forces the full transient solver, disabling the Krylov
	// reduced-order fast path (differential testing and benchmarking).
	NoReduction bool
	// Cycles and PointsPerCycle tune the automatic window: the run covers
	// Cycles estimated oscillation periods at PointsPerCycle fixed steps per
	// period (defaults 10 and 2500). Benchmarks dial these down for a
	// shorter, coarser — but still physically conclusive — transient.
	Cycles, PointsPerCycle int
	// TStop and DT override the automatically chosen window/resolution.
	TStop, DT float64
}

func (c Config) withDefaults() (Config, error) {
	if err := c.Node.Validate(); err != nil {
		return c, err
	}
	if c.LineL < 0 {
		return c, fmt.Errorf("ringosc: negative line inductance %g", c.LineL)
	}
	if c.H == 0 || c.K == 0 {
		rc, err := repeater.RCOptimal(repeater.FromTech(c.Node), tline.Line{R: c.Node.R, C: c.Node.C})
		if err != nil {
			return c, err
		}
		if c.H == 0 {
			c.H = rc.H
		}
		if c.K == 0 {
			c.K = rc.K
		}
	}
	if c.Stages == 0 {
		c.Stages = 5
	}
	if c.Stages%2 == 0 {
		return c, fmt.Errorf("ringosc: ring needs an odd stage count, got %d", c.Stages)
	}
	if c.Sections == 0 {
		c.Sections = 16
	}
	if c.Gain == 0 {
		c.Gain = 20
	}
	if c.Cycles == 0 {
		c.Cycles = 10
	}
	if c.PointsPerCycle == 0 {
		c.PointsPerCycle = 2500
	}
	if c.Cycles < 0 || c.PointsPerCycle < 0 {
		return c, fmt.Errorf("ringosc: negative window tuning (%d cycles, %d points/cycle)", c.Cycles, c.PointsPerCycle)
	}
	if c.TStop == 0 || c.DT == 0 {
		// Window from the two-pole stage delay: ≈2·Stages·τ per period.
		st := repeater.FromTech(c.Node).Stage(tline.Line{R: c.Node.R, L: c.LineL, C: c.Node.C}, c.H, c.K)
		m, err := pade.FromStage(st)
		if err != nil {
			return c, err
		}
		d, err := m.Delay(0.5)
		if err != nil {
			return c, err
		}
		period := 2 * float64(c.Stages) * d.Tau
		if c.TStop == 0 {
			c.TStop = float64(c.Cycles) * period
		}
		if c.DT == 0 {
			c.DT = period / float64(c.PointsPerCycle)
		}
	}
	return c, nil
}

// line returns the per-unit-length parameters of the configured wire.
func (c Config) line() tline.Line {
	return tline.Line{R: c.Node.R, L: c.LineL, C: c.Node.C}
}

func (c Config) inverterParams() spice.InverterParams {
	d := repeater.FromTech(c.Node)
	rs, cp, cl := d.Scaled(c.K)
	return spice.InverterParams{
		VDD:  c.Node.VDD,
		ROut: rs,
		CIn:  cl,
		COut: cp,
		Gain: c.Gain,
	}
}

// addLine builds the discretized line from node `from` to node `to`,
// returning the handle of the first inductor (nil for an RC line) for
// current probing. Names are prefixed to stay unique per instance.
func addLine(ckt *spice.Circuit, prefix string, ln tline.Line, h float64, sections int, from, to spice.NodeID) (*spice.Inductor, error) {
	segs := ln.Ladder(h, sections)
	var firstL *spice.Inductor
	prev := from
	for i, s := range segs {
		var next spice.NodeID
		if i == len(segs)-1 {
			next = to
		} else {
			next = ckt.Node(fmt.Sprintf("%s_n%d", prefix, i))
		}
		if s.L > 0 {
			mid := ckt.Node(fmt.Sprintf("%s_m%d", prefix, i))
			if err := ckt.AddR(prev, mid, s.R); err != nil {
				return nil, err
			}
			l, err := ckt.AddL(mid, next, s.L)
			if err != nil {
				return nil, err
			}
			if firstL == nil {
				firstL = l
			}
		} else {
			if err := ckt.AddR(prev, next, s.R); err != nil {
				return nil, err
			}
		}
		if err := ckt.AddC(next, spice.Ground, s.C); err != nil {
			return nil, err
		}
		prev = next
	}
	return firstL, nil
}

// Waves carries the monitored raw waveforms (the paper's Figures 9 and 10:
// input and output of one inverter, plus the line current used for
// Figure 12).
type Waves struct {
	T         []float64
	VIn, VOut []float64
	ILine     []float64 // nil for RC lines
}

// Metrics are the scalar measurements extracted from a run.
type Metrics struct {
	Period     float64 // oscillation period at the monitored node, s
	Overshoot  float64 // V above VDD at the monitored inverter input
	Undershoot float64 // V below ground at the monitored inverter input
	PeakI      float64 // peak line current, A
	RMSI       float64 // rms line current, A
	PeakJ      float64 // peak current density, A/m²
	RMSJ       float64 // rms current density, A/m²
}

// RunRing simulates the ring oscillator and measures it. The monitored
// inverter is the middle stage.
func RunRing(cfg Config) (Waves, Metrics, error) {
	return runRing(cfg, nil)
}

// runRing is RunRing with an optional reusable waveform buffer: sweeps that
// keep only the scalar metrics per point (SweepPeriod) pass one buffer to
// every run so the transient storage is allocated once. The returned Waves
// alias the buffer and are invalid after the next reusing run.
func runRing(cfg Config, buf *spice.Result) (Waves, Metrics, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return Waves{}, Metrics{}, err
	}
	ckt := spice.New()
	s := cfg.Stages
	in := make([]spice.NodeID, s)  // inverter inputs
	out := make([]spice.NodeID, s) // inverter outputs
	for i := 0; i < s; i++ {
		in[i] = ckt.Node(fmt.Sprintf("in%d", i))
		out[i] = ckt.Node(fmt.Sprintf("out%d", i))
	}
	var monitorL *spice.Inductor
	mon := s / 2
	for i := 0; i < s; i++ {
		if _, err := ckt.AddInverter(in[i], out[i], cfg.inverterParams()); err != nil {
			return Waves{}, Metrics{}, err
		}
		l, err := addLine(ckt, fmt.Sprintf("l%d", i), cfg.line(), cfg.H, cfg.Sections, out[i], in[(i+1)%s])
		if err != nil {
			return Waves{}, Metrics{}, err
		}
		if i == mon {
			monitorL = l
		}
	}
	// Kick-start: alternating rail pattern on inverter outputs and their
	// lines (the ring's DC point is metastable).
	for i := 0; i < s; i++ {
		v := 0.0
		if i%2 == 0 {
			v = cfg.Node.VDD
		}
		ckt.SetIC(out[i], v)
		ckt.SetIC(in[(i+1)%s], v)
		for j := 0; j < cfg.Sections-1; j++ {
			ckt.SetIC(ckt.Node(fmt.Sprintf("l%d_n%d", i, j)), v)
		}
		if cfg.LineL > 0 {
			for j := 0; j < cfg.Sections; j++ {
				ckt.SetIC(ckt.Node(fmt.Sprintf("l%d_m%d", i, j)), v)
			}
		}
	}
	probes := []spice.Probe{
		spice.NodeProbe{Name: "vin", ID: in[mon]},
		spice.NodeProbe{Name: "vout", ID: out[mon]},
	}
	if monitorL != nil {
		probes = append(probes, spice.BranchProbe{Name: "iline", L: monitorL})
	}
	res, err := ckt.Transient(spice.TranOpts{TStop: cfg.TStop, DT: cfg.DT, UseICs: true, NoReduction: cfg.NoReduction, ResultBuf: buf}, probes...)
	if err != nil {
		return Waves{}, Metrics{}, fmt.Errorf("ringosc: transient: %w", err)
	}
	return measure(cfg, res, monitorL != nil)
}

// RunBufferedLine simulates the paper's alternative rig: a chain of Stages
// repeaters and line segments driven by a square wave, terminated by an
// identical repeater. The monitored inverter is the last one in the chain.
func RunBufferedLine(cfg Config) (Waves, Metrics, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return Waves{}, Metrics{}, err
	}
	// Drive period: comfortably longer than the chain delay.
	st := repeater.FromTech(cfg.Node).Stage(cfg.line(), cfg.H, cfg.K)
	m, err := pade.FromStage(st)
	if err != nil {
		return Waves{}, Metrics{}, err
	}
	d, err := m.Delay(0.5)
	if err != nil {
		return Waves{}, Metrics{}, err
	}
	drivePeriod := 6 * float64(cfg.Stages) * d.Tau
	cfg.TStop = 4 * drivePeriod

	ckt := spice.New()
	s := cfg.Stages
	var monitorL *spice.Inductor
	src := ckt.Node("src")
	if _, err := ckt.AddV(src, spice.Ground, spice.Pulse{
		V0: 0, V1: cfg.Node.VDD,
		Rise: drivePeriod / 100, Fall: drivePeriod / 100,
		Width: drivePeriod/2 - drivePeriod/100, Period: drivePeriod,
	}); err != nil {
		return Waves{}, Metrics{}, err
	}
	prev := src
	for i := 0; i < s; i++ {
		outN := ckt.Node(fmt.Sprintf("out%d", i))
		if _, err := ckt.AddInverter(prev, outN, cfg.inverterParams()); err != nil {
			return Waves{}, Metrics{}, err
		}
		next := ckt.Node(fmt.Sprintf("in%d", i+1))
		l, err := addLine(ckt, fmt.Sprintf("l%d", i), cfg.line(), cfg.H, cfg.Sections, outN, next)
		if err != nil {
			return Waves{}, Metrics{}, err
		}
		if i == s-1 {
			monitorL = l
		}
		prev = next
	}
	// Terminating identical repeater.
	lastOut := ckt.Node("term_out")
	if _, err := ckt.AddInverter(prev, lastOut, cfg.inverterParams()); err != nil {
		return Waves{}, Metrics{}, err
	}
	probes := []spice.Probe{
		spice.NodeProbe{Name: "vin", ID: prev},
		spice.NodeProbe{Name: "vout", ID: lastOut},
	}
	if monitorL != nil {
		probes = append(probes, spice.BranchProbe{Name: "iline", L: monitorL})
	}
	res, err := ckt.Transient(spice.TranOpts{TStop: cfg.TStop, DT: cfg.DT, UseICs: true, NoReduction: cfg.NoReduction}, probes...)
	if err != nil {
		return Waves{}, Metrics{}, fmt.Errorf("ringosc: buffered line transient: %w", err)
	}
	return measure(cfg, res, monitorL != nil)
}

// measure extracts Waves and Metrics from a transient result, ignoring the
// first 30% of the window as start-up.
func measure(cfg Config, res *spice.Result, hasI bool) (Waves, Metrics, error) {
	w := Waves{T: res.T}
	var err error
	if w.VIn, err = res.Signal("vin"); err != nil {
		return w, Metrics{}, err
	}
	if w.VOut, err = res.Signal("vout"); err != nil {
		return w, Metrics{}, err
	}
	if hasI {
		if w.ILine, err = res.Signal("iline"); err != nil {
			return w, Metrics{}, err
		}
	}
	tMin := 0.3 * cfg.TStop
	var met Metrics
	met.Period, err = waveform.Period(w.T, w.VIn, cfg.Node.VDD/2, tMin)
	if err != nil {
		return w, met, fmt.Errorf("ringosc: period measurement: %w", err)
	}
	met.Overshoot, met.Undershoot = waveform.OverUnder(w.T, w.VIn, cfg.Node.VDD, tMin)
	if hasI {
		met.PeakI, met.RMSI = waveform.PeakRMS(w.T, w.ILine, tMin)
		area := cfg.Node.CrossSectionArea()
		met.PeakJ, met.RMSJ = met.PeakI/area, met.RMSI/area
	}
	return w, met, nil
}

// PeriodPoint is one point of the Figure 11 sweep.
type PeriodPoint struct {
	L       float64 // H/m
	Metrics Metrics
	// Collapsed marks the false-switching regime. Below the onset the
	// period grows monotonically with l (inductance slows the wave); a
	// drop below 80% of the largest period seen so far is the collapse
	// signature of the paper's Figure 11.
	Collapsed bool
}

// SweepPeriod runs the ring oscillator across line inductances (H/m) and
// marks period collapse — the paper's Figure 11. The inductances should be
// sorted ascending for the collapse detection to be meaningful.
func SweepPeriod(cfg Config, ls []float64) ([]PeriodPoint, error) {
	if len(ls) == 0 {
		return nil, fmt.Errorf("ringosc: empty sweep")
	}
	out := make([]PeriodPoint, 0, len(ls))
	high := math.Inf(-1)
	var buf spice.Result // one waveform buffer shared by every sweep point
	for _, l := range ls {
		c := cfg
		c.LineL = l
		_, met, err := runRing(c, &buf)
		if err != nil {
			return nil, fmt.Errorf("ringosc: sweep l=%g: %w", l, err)
		}
		collapsed := met.Period < 0.8*high
		if met.Period > high {
			high = met.Period
		}
		out = append(out, PeriodPoint{L: l, Metrics: met, Collapsed: collapsed})
	}
	return out, nil
}
