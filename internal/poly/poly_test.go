package poly

import (
	"math"
	"math/cmplx"
	"sort"
	"testing"
	"testing/quick"
)

func TestEvalHorner(t *testing.T) {
	p := New(1, -3, 2) // 1 - 3x + 2x^2
	if got := p.Eval(2); got != 3 {
		t.Errorf("p(2) = %v, want 3", got)
	}
	if got := p.EvalC(complex(0, 1)); cmplx.Abs(got-complex(-1, -3)) > 1e-15 {
		// 1 - 3i + 2(i^2) = -1 - 3i
		t.Errorf("p(i) = %v, want -1-3i", got)
	}
}

func TestArithmetic(t *testing.T) {
	p := New(1, 2)    // 1 + 2x
	q := New(3, 0, 1) // 3 + x^2
	sum := p.Add(q)
	if sum.Eval(2) != p.Eval(2)+q.Eval(2) {
		t.Error("Add mismatch")
	}
	prod := p.Mul(q)
	if prod.Eval(1.5) != p.Eval(1.5)*q.Eval(1.5) {
		t.Error("Mul mismatch")
	}
	if got := p.Scale(2).Eval(3); got != 2*p.Eval(3) {
		t.Errorf("Scale: %v", got)
	}
}

func TestMulTrunc(t *testing.T) {
	p := New(1, 1, 1, 1)
	q := New(1, 2, 3)
	full := p.Mul(q)
	tr := p.MulTrunc(q, 3)
	for i := 0; i < 3; i++ {
		if tr.C[i] != full.C[i] {
			t.Errorf("coeff %d: %v != %v", i, tr.C[i], full.C[i])
		}
	}
	if len(tr.C) != 3 {
		t.Errorf("len = %d, want 3", len(tr.C))
	}
}

func TestDeriv(t *testing.T) {
	p := New(5, 3, 0, 2) // 5 + 3x + 2x^3
	d := p.Deriv()       // 3 + 6x^2
	if d.Eval(2) != 27 {
		t.Errorf("p'(2) = %v, want 27", d.Eval(2))
	}
	c := New(7).Deriv()
	if c.Degree() > 0 || c.Eval(1) != 0 {
		t.Error("derivative of constant should be 0")
	}
}

func TestSeriesInverse(t *testing.T) {
	p := New(1, 1) // 1+x; inverse series 1 - x + x^2 - ...
	inv, err := p.SeriesInverse(5)
	if err != nil {
		t.Fatalf("SeriesInverse: %v", err)
	}
	want := []float64{1, -1, 1, -1, 1}
	for i := range want {
		if math.Abs(inv.C[i]-want[i]) > 1e-14 {
			t.Errorf("inv[%d] = %v, want %v", i, inv.C[i], want[i])
		}
	}
	// p * inv = 1 + O(x^5)
	prod := p.MulTrunc(inv, 5)
	if math.Abs(prod.C[0]-1) > 1e-14 {
		t.Error("constant term of product != 1")
	}
	for i := 1; i < 5; i++ {
		if math.Abs(prod.C[i]) > 1e-14 {
			t.Errorf("product coeff %d = %v, want 0", i, prod.C[i])
		}
	}
	if _, err := New(0, 1).SeriesInverse(3); err == nil {
		t.Error("expected error for zero constant term")
	}
}

func TestRootsQuadraticRealAndComplex(t *testing.T) {
	r1, r2 := RootsQuadratic(6, -5, 1) // (x-2)(x-3)
	got := []float64{real(r1), real(r2)}
	sort.Float64s(got)
	if math.Abs(got[0]-2) > 1e-12 || math.Abs(got[1]-3) > 1e-12 {
		t.Errorf("roots %v, want 2 and 3", got)
	}
	r1, r2 = RootsQuadratic(5, 2, 1) // x^2+2x+5 => -1±2i
	if math.Abs(real(r1)+1) > 1e-12 || math.Abs(imag(r1)-2) > 1e-12 {
		t.Errorf("complex root %v, want -1+2i", r1)
	}
	if r2 != cmplx.Conj(r1) {
		t.Errorf("roots not conjugate: %v %v", r1, r2)
	}
}

func TestRootsQuadraticCancellation(t *testing.T) {
	// b^2 >> 4ac: the naive formula loses the small root; citardauq keeps it.
	r1, r2 := RootsQuadratic(1, 1e8, 1)
	small := math.Min(cmplx.Abs(r1), cmplx.Abs(r2))
	if math.Abs(small-1e-8) > 1e-14 {
		t.Errorf("small root magnitude = %v, want 1e-8", small)
	}
}

func TestRootsHighDegree(t *testing.T) {
	// (x-1)(x-2)(x-3)(x-4)(x-5) expanded.
	p := New(-120, 274, -225, 85, -15, 1)
	roots, err := p.Roots()
	if err != nil {
		t.Fatalf("Roots: %v", err)
	}
	got := make([]float64, len(roots))
	for i, r := range roots {
		if math.Abs(imag(r)) > 1e-6 {
			t.Errorf("unexpected imaginary part: %v", r)
		}
		got[i] = real(r)
	}
	sort.Float64s(got)
	for i, want := range []float64{1, 2, 3, 4, 5} {
		if math.Abs(got[i]-want) > 1e-7 {
			t.Errorf("root %d = %v, want %v", i, got[i], want)
		}
	}
}

func TestRootsComplexPairs(t *testing.T) {
	// (x^2+1)(x^2+4) = 4 + 5x^2 + x^4, roots ±i, ±2i.
	p := New(4, 0, 5, 0, 1)
	roots, err := p.Roots()
	if err != nil {
		t.Fatalf("Roots: %v", err)
	}
	mags := make([]float64, len(roots))
	for i, r := range roots {
		if math.Abs(real(r)) > 1e-8 {
			t.Errorf("root %v should be purely imaginary", r)
		}
		mags[i] = cmplx.Abs(r)
	}
	sort.Float64s(mags)
	want := []float64{1, 1, 2, 2}
	for i := range want {
		if math.Abs(mags[i]-want[i]) > 1e-8 {
			t.Errorf("magnitude %d = %v, want %v", i, mags[i], want[i])
		}
	}
}

func TestRootsDegenerate(t *testing.T) {
	if r, err := New(5).Roots(); err != nil || len(r) != 0 {
		t.Errorf("constant roots: %v, %v", r, err)
	}
	r, err := New(6, 2).Roots() // 6+2x => root -3
	if err != nil || len(r) != 1 || math.Abs(real(r[0])+3) > 1e-14 {
		t.Errorf("linear root: %v, %v", r, err)
	}
}

func TestRootsPropertyResidual(t *testing.T) {
	// Property: every reported root has a tiny relative residual.
	prop := func(c0, c1, c2, c3 float64) bool {
		clampc := func(x float64) float64 {
			x = math.Mod(x, 100)
			if math.IsNaN(x) {
				return 1
			}
			return x
		}
		p := New(clampc(c0), clampc(c1), clampc(c2), clampc(c3), 1)
		roots, err := p.Roots()
		if err != nil {
			return false
		}
		scale := 0.0
		for _, c := range p.C {
			scale += math.Abs(c)
		}
		for _, r := range roots {
			m := cmplx.Abs(r)
			bound := 1e-6 * scale * math.Pow(math.Max(m, 1), 4)
			if cmplx.Abs(p.EvalC(r)) > bound {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestTrimDegreeString(t *testing.T) {
	p := Poly{C: []float64{1, 2, 0, 0}}
	if p.Degree() != 1 {
		t.Errorf("degree = %d, want 1", p.Degree())
	}
	if tr := p.Trim(); len(tr.C) != 2 {
		t.Errorf("trim len = %d, want 2", len(tr.C))
	}
	if (Poly{}).Degree() != -1 {
		t.Error("zero polynomial degree should be -1")
	}
	if s := New(0).String(); s != "0" {
		t.Errorf("String() of zero = %q", s)
	}
	if s := New(1, -2, 3).String(); s == "" {
		t.Error("String() empty")
	}
}
