package poly

import (
	"fmt"
	"math"
	"math/cmplx"
	"strings"
)

// Poly is a real polynomial stored as ascending coefficients:
// p(x) = C[0] + C[1] x + C[2] x^2 + ...
type Poly struct {
	C []float64
}

// New returns the polynomial with the given ascending coefficients.
func New(coeffs ...float64) Poly {
	return Poly{C: append([]float64(nil), coeffs...)}
}

// Degree returns the degree after trimming trailing zero coefficients;
// the zero polynomial has degree -1.
func (p Poly) Degree() int {
	for i := len(p.C) - 1; i >= 0; i-- {
		if p.C[i] != 0 {
			return i
		}
	}
	return -1
}

// Trim returns p with trailing zero coefficients removed.
func (p Poly) Trim() Poly {
	d := p.Degree()
	return Poly{C: append([]float64(nil), p.C[:d+1]...)}
}

// Eval evaluates p at x with Horner's rule.
func (p Poly) Eval(x float64) float64 {
	s := 0.0
	for i := len(p.C) - 1; i >= 0; i-- {
		s = s*x + p.C[i]
	}
	return s
}

// EvalC evaluates p at a complex point.
func (p Poly) EvalC(x complex128) complex128 {
	s := complex(0, 0)
	for i := len(p.C) - 1; i >= 0; i-- {
		s = s*x + complex(p.C[i], 0)
	}
	return s
}

// Add returns p + q.
func (p Poly) Add(q Poly) Poly {
	n := len(p.C)
	if len(q.C) > n {
		n = len(q.C)
	}
	out := make([]float64, n)
	for i := range out {
		if i < len(p.C) {
			out[i] += p.C[i]
		}
		if i < len(q.C) {
			out[i] += q.C[i]
		}
	}
	return Poly{C: out}
}

// Scale returns a*p.
func (p Poly) Scale(a float64) Poly {
	out := make([]float64, len(p.C))
	for i, c := range p.C {
		out[i] = a * c
	}
	return Poly{C: out}
}

// Mul returns the product p*q.
func (p Poly) Mul(q Poly) Poly {
	if len(p.C) == 0 || len(q.C) == 0 {
		return Poly{}
	}
	out := make([]float64, len(p.C)+len(q.C)-1)
	for i, a := range p.C {
		if a == 0 {
			continue
		}
		for j, b := range q.C {
			out[i+j] += a * b
		}
	}
	return Poly{C: out}
}

// MulTrunc returns p*q truncated to terms of degree < n. Moment expansions
// use this to avoid carrying orders that are later discarded.
func (p Poly) MulTrunc(q Poly, n int) Poly {
	out := make([]float64, n)
	for i, a := range p.C {
		if a == 0 || i >= n {
			continue
		}
		for j, b := range q.C {
			if i+j >= n {
				break
			}
			out[i+j] += a * b
		}
	}
	return Poly{C: out}
}

// Deriv returns dp/dx.
func (p Poly) Deriv() Poly {
	if len(p.C) <= 1 {
		return Poly{C: []float64{0}}
	}
	out := make([]float64, len(p.C)-1)
	for i := 1; i < len(p.C); i++ {
		out[i-1] = float64(i) * p.C[i]
	}
	return Poly{C: out}
}

// String renders the polynomial for diagnostics.
func (p Poly) String() string {
	if p.Degree() < 0 {
		return "0"
	}
	var b strings.Builder
	first := true
	for i, c := range p.C {
		if c == 0 {
			continue
		}
		if !first {
			b.WriteString(" + ")
		}
		first = false
		switch i {
		case 0:
			fmt.Fprintf(&b, "%g", c)
		case 1:
			fmt.Fprintf(&b, "%g*x", c)
		default:
			fmt.Fprintf(&b, "%g*x^%d", c, i)
		}
	}
	return b.String()
}

// SeriesInverse returns the power-series inverse of p to n terms, i.e. q
// with p*q = 1 + O(x^n). p.C[0] must be nonzero.
func (p Poly) SeriesInverse(n int) (Poly, error) {
	if len(p.C) == 0 || p.C[0] == 0 {
		return Poly{}, fmt.Errorf("poly: SeriesInverse requires nonzero constant term")
	}
	q := make([]float64, n)
	q[0] = 1 / p.C[0]
	for k := 1; k < n; k++ {
		s := 0.0
		for j := 1; j <= k && j < len(p.C); j++ {
			s += p.C[j] * q[k-j]
		}
		q[k] = -s / p.C[0]
	}
	return Poly{C: q}, nil
}

// RootsQuadratic returns the two roots of c0 + c1 x + c2 x^2 using the
// numerically stable citardauq/quadratic split. c2 must be nonzero.
func RootsQuadratic(c0, c1, c2 float64) (complex128, complex128) {
	disc := c1*c1 - 4*c2*c0
	if disc >= 0 {
		sq := math.Sqrt(disc)
		var q float64
		if c1 >= 0 {
			q = -0.5 * (c1 + sq)
		} else {
			q = -0.5 * (c1 - sq)
		}
		r1 := complex(q/c2, 0)
		var r2 complex128
		if q != 0 {
			r2 = complex(c0/q, 0)
		} else {
			r2 = complex(0, 0)
		}
		return r1, r2
	}
	sq := math.Sqrt(-disc)
	re := -c1 / (2 * c2)
	im := sq / (2 * c2)
	return complex(re, im), complex(re, -im)
}

// Roots returns all complex roots of p (with multiplicity) using closed
// forms for degree <= 2 and the Aberth–Ehrlich iteration otherwise.
func (p Poly) Roots() ([]complex128, error) {
	q := p.Trim()
	d := q.Degree()
	switch {
	case d <= 0:
		return nil, nil
	case d == 1:
		return []complex128{complex(-q.C[0]/q.C[1], 0)}, nil
	case d == 2:
		r1, r2 := RootsQuadratic(q.C[0], q.C[1], q.C[2])
		return []complex128{r1, r2}, nil
	}
	return aberth(q)
}

// aberth runs the Aberth–Ehrlich simultaneous root iteration.
func aberth(p Poly) ([]complex128, error) {
	d := p.Degree()
	dp := p.Deriv()
	// Initial guesses: scaled circle with irrational angular offset to break
	// symmetry (classic choice).
	radius := rootRadius(p)
	z := make([]complex128, d)
	for i := range z {
		ang := 2*math.Pi*float64(i)/float64(d) + 0.4
		z[i] = cmplx.Rect(radius, ang)
	}
	const maxIter = 200
	for iter := 0; iter < maxIter; iter++ {
		maxStep := 0.0
		for i := range z {
			pz := p.EvalC(z[i])
			dpz := dp.EvalC(z[i])
			if dpz == 0 {
				z[i] += complex(1e-8*radius, 1e-8*radius)
				maxStep = math.Inf(1)
				continue
			}
			newton := pz / dpz
			sum := complex(0, 0)
			for j := range z {
				if j != i {
					diff := z[i] - z[j]
					if diff == 0 {
						diff = complex(1e-20, 0)
					}
					sum += 1 / diff
				}
			}
			w := newton / (1 - newton*sum)
			z[i] -= w
			if s := cmplx.Abs(w); s > maxStep {
				maxStep = s
			}
		}
		if maxStep < 1e-14*radius {
			return polish(p, dp, z), nil
		}
	}
	// Accept if residuals are small even without step convergence.
	z = polish(p, dp, z)
	scale := cmplx.Abs(p.EvalC(complex(radius, 0))) + math.Abs(p.C[d])
	for _, zi := range z {
		if cmplx.Abs(p.EvalC(zi)) > 1e-6*scale {
			return z, fmt.Errorf("poly: Aberth did not converge for degree-%d polynomial", d)
		}
	}
	return z, nil
}

// polish applies a few Newton steps to each root estimate.
func polish(p, dp Poly, z []complex128) []complex128 {
	for i := range z {
		for k := 0; k < 3; k++ {
			dpz := dp.EvalC(z[i])
			if dpz == 0 {
				break
			}
			z[i] -= p.EvalC(z[i]) / dpz
		}
	}
	return z
}

// rootRadius returns the Cauchy bound on root magnitudes, used to size the
// initial Aberth circle.
func rootRadius(p Poly) float64 {
	d := p.Degree()
	lead := math.Abs(p.C[d])
	m := 0.0
	for i := 0; i < d; i++ {
		if v := math.Abs(p.C[i]) / lead; v > m {
			m = v
		}
	}
	return 1 + m
}
