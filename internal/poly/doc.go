// Package poly implements real- and complex-coefficient polynomial
// arithmetic and root finding. The moment-matching (AWE) machinery builds
// denominator polynomials in the complex frequency s whose roots are the
// approximating poles; those roots are found here with closed forms for
// degree <= 3 and the Aberth–Ehrlich simultaneous iteration above that.
package poly
