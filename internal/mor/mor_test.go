package mor

import (
	"errors"
	"math"
	"testing"

	"rlcint/internal/diag"
	"rlcint/internal/sparse"
)

// ladder builds the mor-form System for a driven RLC ladder:
// vsrc —[branch]— node0 —R—L— node1 —R—L— … —R—L— node S, C to ground at
// every node, ports = {source branch row, far node}. Branch rows are stored
// in the flipped (PRIMA-passive) orientation the spice extractor produces.
type ladder struct {
	sys    *System
	nNodes int
	wave   func(t float64) float64
}

func buildLadder(sections int, r, l, c, rdrive float64, wave func(float64) float64, x0far float64) *ladder {
	nNodes := sections + 1
	nBranch := sections + 1 // one per inductor + the source branch
	n := nNodes + nBranch
	srcRow := nNodes // branch row of the voltage source
	trip := sparse.NewTriplet(n)

	node := func(i int) int { return i }
	// Source branch (flipped): row: −v0 (+w(t) via u); KCL at node0: +i_src.
	trip.Add(node(0), srcRow, 1)
	trip.Add(srcRow, node(0), -1)
	if rdrive > 0 {
		// series drive resistor folded into the source branch row would
		// change its nature; instead put it as the first ladder R below.
		_ = rdrive
	}
	for s := 0; s < sections; s++ {
		a, b := node(s), node(s+1)
		br := nNodes + 1 + s
		g := 1 / r
		if s == 0 && rdrive > 0 {
			g = 1 / (r + rdrive)
		}
		// R between a and mid — model R and L in series as R into the
		// inductor branch: V_a − V_b = R·i + L·di/dt. Stamp as a single
		// branch with series resistance: flipped branch row
		// −(v_a − v_b) + R·i + L·di/dt = 0.
		_ = g
		trip.Add(a, br, 1)
		trip.Add(b, br, -1)
		rr := r
		if s == 0 {
			rr += rdrive
		}
		trip.Add(br, a, -1)
		trip.Add(br, b, 1)
		trip.Add(br, br, rr) // flipped: +R·i
		// grounded caps
		trip.Add(b, b, 0) // pattern slot for C
	}
	trip.Add(node(0), node(0), 0) // cap pattern at node0
	pat := trip.Compile()
	nnz := pat.NNZ()
	g := make([]float64, nnz)
	cv := make([]float64, nnz)

	set := func(vals []float64, i, j int, v float64) {
		for p := pat.P[j]; p < pat.P[j+1]; p++ {
			if pat.I[p] == i {
				vals[p] += v
				return
			}
		}
		panic("missing pattern slot")
	}
	set(g, node(0), srcRow, 1)
	set(g, srcRow, node(0), -1)
	for s := 0; s < sections; s++ {
		a, b := node(s), node(s+1)
		br := nNodes + 1 + s
		set(g, a, br, 1)
		set(g, b, br, -1)
		set(g, br, a, -1)
		set(g, br, b, 1)
		rr := r
		if s == 0 {
			rr += rdrive
		}
		set(g, br, br, rr)
		set(cv, br, br, l)
		set(cv, b, b, c)
	}
	set(cv, node(0), node(0), c)

	x0 := make([]float64, n)
	x0[node(sections)] = x0far

	ld := &ladder{nNodes: nNodes, wave: wave}
	ld.sys = &System{
		N:       n,
		Pattern: pat,
		G:       g,
		C:       cv,
		Ports:   []int{srcRow, node(sections)},
		X0:      x0,
		U: func(t float64, up []float64) {
			up[0] = -wave(t) // flipped source branch row
		},
	}
	return ld
}

// elementReference steps the ladder with per-element companion models the
// way internal/spice does (cap iPrev, inductor flux history), giving an
// independent check that the mor package's standard BE/TR recursion
// reproduces the element-level discretization (they are algebraically the
// same scheme). Returns the far-node waveform (w+1 samples).
func (ld *ladder) elementReference(dt float64, steps, beSteps int, tr bool, r, l, c, rdrive float64, sections int) []float64 {
	n := ld.sys.N
	nNodes := ld.nNodes
	srcRow := nNodes
	x := append([]float64(nil), ld.sys.X0...)
	capPrev := make([]float64, nNodes) // iPrev per grounded cap (node index)
	out := make([]float64, steps+1)
	out[0] = x[sections]
	lu := sparse.Workspace(n)
	trip := sparse.NewTriplet(n)
	rhs := make([]float64, n)
	xn := make([]float64, n)
	for s := 1; s <= steps; s++ {
		useTR := tr && s > beSteps
		t := float64(s) * dt
		trip2 := trip
		trip2.Reset()
		for i := range rhs {
			rhs[i] = 0
		}
		// Source: v0 = w(t) (unflipped orientation — independent of mor's).
		trip2.Add(0, srcRow, 1)
		trip2.Add(srcRow, 0, 1)
		rhs[srcRow] = ld.wave(t)
		for sec := 0; sec < sections; sec++ {
			a, b := sec, sec+1
			br := nNodes + 1 + sec
			rr := r
			if sec == 0 {
				rr += rdrive
			}
			// Branch: v_a − v_b − R·i − L·di/dt = 0.
			trip2.Add(a, br, 1)
			trip2.Add(b, br, -1)
			trip2.Add(br, a, 1)
			trip2.Add(br, b, -1)
			var gl float64
			if useTR {
				gl = 2 * l / dt
				// v_a−v_b−R·i_{n+1} companioned: v+vPrev−R(i+iPrev)… spice
				// inductor: trap row v + vPrev − (2l/dt)(i − iPrev) = 0 with
				// the resistor R as a separate series element. Here R rides
				// the branch, so: (v_a−v_b)_{n+1} + (v_a−v_b)_n − R·i_{n+1}
				// − R·i_n − (2l/dt)(i_{n+1} − i_n) = 0.
				trip2.Add(br, br, -rr-gl)
				rhs[br] = -(x[a] - x[b]) + rr*x[br] - gl*x[br]
			} else {
				gl = l / dt
				trip2.Add(br, br, -rr-gl)
				rhs[br] = -gl * x[br]
			}
			// Grounded cap at b (and at node0 once).
			gc := c / dt
			if useTR {
				gc = 2 * c / dt
			}
			trip2.Add(b, b, gc)
			rhs[b] += gc * x[b]
			if useTR {
				rhs[b] += capPrev[b]
			}
		}
		gc := c / dt
		if useTR {
			gc = 2 * c / dt
		}
		trip2.Add(0, 0, gc)
		rhs[0] += gc * x[0]
		if useTR {
			rhs[0] += capPrev[0]
		}
		a := trip2.Compile()
		if err := lu.Factorize(a, 1); err != nil {
			panic(err)
		}
		lu.SolveInto(xn, rhs)
		// accept: cap currents
		for nd := 0; nd < nNodes; nd++ {
			if useTR {
				capPrev[nd] = (2*c/dt)*(xn[nd]-x[nd]) - capPrev[nd]
			} else {
				capPrev[nd] = (c / dt) * (xn[nd] - x[nd])
			}
		}
		copy(x, xn)
		out[s] = x[sections]
	}
	return out
}

func pulse(t float64) float64 {
	const delay, rise, width = 2e-12, 10e-12, 400e-12
	switch {
	case t < delay:
		return 0
	case t < delay+rise:
		return (t - delay) / rise
	case t < delay+width:
		return 1
	default:
		return 0
	}
}

func TestReducedMatchesElementReference(t *testing.T) {
	// A moderately damped delay line: wave-like enough to need a high-order
	// basis (underdamped ladders converge slowly in the Krylov order), damped
	// enough that the gate accepts below full dimension.
	const (
		sections = 24
		r        = 30.0
		l        = 2e-10
		c        = 3e-14
		rdrive   = 50.0
	)
	for _, tc := range []struct {
		name    string
		tr      bool
		beSteps int
	}{
		{"be", false, 0},
		{"tr", true, 2},
	} {
		t.Run(tc.name, func(t *testing.T) {
			ld := buildLadder(sections, r, l, c, rdrive, pulse, 0)
			dt := 2e-13
			steps := 2000
			opts := Options{
				DT: dt, NSteps: steps, TR: tc.tr, BESteps: tc.beSteps,
				Tol: 1e-4, GateWindow: 1000, MaxOrder: 40,
			}
			m, err := Reduce(ld.sys, opts)
			if err != nil {
				t.Fatalf("Reduce: %v", err)
			}
			if m.GateErr > 1e-4 {
				t.Fatalf("gate error %g above tolerance", m.GateErr)
			}
			t.Logf("order=%d stride=%d gateErr=%.3g momErr=%.3g", m.Order, m.Stride, m.GateErr, m.MomentErr)

			ref := ld.elementReference(dt, steps, tc.beSteps, tc.tr, r, l, c, rdrive, sections)

			// Production reduced run at the gate-validated stride.
			run := m.NewRun()
			k := m.Stride
			ni := steps / k
			ts := make([]float64, ni+1)
			far := make([]float64, ni+1)
			far[0] = run.PortValues()[1]
			up := make([]float64, 2)
			dtInt := float64(k) * dt
			stBE, err := m.PrepStepper(dtInt, false)
			if err != nil {
				t.Fatal(err)
			}
			var stTR *Stepper
			if tc.tr {
				if stTR, err = m.PrepStepper(dtInt, true); err != nil {
					t.Fatal(err)
				}
			}
			upPrev := make([]float64, 2)
			for j := 1; j <= ni; j++ {
				tt := float64(j*k) * dt
				st := stBE
				if m.StepIsTR(j) {
					st = stTR
				}
				up[0], up[1] = -pulse(tt), 0
				upPrev[0], upPrev[1] = -pulse(float64((j-1)*k)*dt), 0
				if _, err := run.Advance(st, tt, up, upPrev, nil, NewtonOpts{}); err != nil {
					t.Fatalf("Advance step %d: %v", j, err)
				}
				ts[j] = tt
				far[j] = run.PortValues()[1]
			}
			wOut := ni * k
			out := make([]float64, wOut+1)
			if k == 1 {
				copy(out, far)
			} else {
				ResampleHermite(ts, far, dt, out)
			}
			var se, sr float64
			for s := 0; s <= wOut; s++ {
				d := ref[s] - out[s]
				se += d * d
				sr += ref[s] * ref[s]
			}
			rel := math.Sqrt(se) / math.Max(math.Sqrt(sr), 1e-30)
			t.Logf("reduced-vs-element relative L2 error: %.3g", rel)
			if rel > 5e-4 {
				t.Fatalf("reduced waveform deviates from element-companion reference: rel=%.3g", rel)
			}
		})
	}
}

func TestExactAtFullOrder(t *testing.T) {
	// At order = component dimension the projection is the identity up to
	// an orthogonal change of basis: gate error should be ~machine epsilon
	// at stride 1.
	ld := buildLadder(6, 20, 1e-10, 2e-14, 25, pulse, 0)
	opts := Options{
		DT: 5e-13, NSteps: 400, TR: true, BESteps: 2,
		Tol: 1e-4, GateWindow: 300,
		// MaxDimFrac > 1: at full order the reduced dimension equals N,
		// which the production no-headroom guard would veto.
		Order: 64, MaxOrder: 64, ForceStride1: true, MaxDimFrac: 2,
	}
	m, err := Reduce(ld.sys, opts)
	if err != nil {
		t.Fatalf("Reduce: %v", err)
	}
	if m.Stride != 1 {
		t.Fatalf("ForceStride1 ignored: stride=%d", m.Stride)
	}
	if m.GateErr > 1e-9 {
		t.Fatalf("full-order projection should be near-exact, gate err %g", m.GateErr)
	}
}

func TestGateRejectTightTolerance(t *testing.T) {
	ld := buildLadder(30, 10, 2e-10, 3e-14, 50, pulse, 0)
	rep := &diag.Report{}
	opts := Options{
		DT: 2e-13, NSteps: 2000, TR: true, BESteps: 2,
		Tol:   1e-300, // unattainable
		Order: 4, MaxOrder: 6, GateWindow: 400,
		Report: rep,
	}
	if _, err := Reduce(ld.sys, opts); err == nil {
		t.Fatal("expected gate rejection at unattainable tolerance")
	} else if !errors.Is(err, diag.ErrNonConvergence) {
		t.Fatalf("expected ErrNonConvergence, got %v", err)
	}
	found := false
	for _, a := range rep.Attempts {
		if a.Ladder == "mor-gate" && a.Outcome == diag.OutcomeFailed {
			found = true
		}
	}
	if !found {
		t.Fatal("gate rejection not recorded in diag report")
	}
}

func TestArnoldiFaultInjection(t *testing.T) {
	ld := buildLadder(16, 10, 2e-10, 3e-14, 50, pulse, 0)
	opts := Options{
		DT: 2e-13, NSteps: 500, TR: true, BESteps: 2,
		GateWindow: 200,
		Injector:   diag.FaultAt("mor.arnoldi", 0, errors.New("injected")),
	}
	if _, err := Reduce(ld.sys, opts); err == nil {
		t.Fatal("expected injected Arnoldi failure")
	}
	opts.Injector = diag.FaultAt("mor.gate", 0, errors.New("injected"))
	if _, err := Reduce(ld.sys, opts); err == nil {
		t.Fatal("expected injected gate failure")
	}
}

func TestResampleHermite(t *testing.T) {
	// Exactly reproduces cubics at sample points and interpolates a smooth
	// sine to high accuracy at 4× refinement.
	k := 4
	ni := 32
	dt := 0.1
	ts := make([]float64, ni+1)
	ys := make([]float64, ni+1)
	for j := range ts {
		ts[j] = float64(j*k) * dt
		ys[j] = math.Sin(0.3 * ts[j])
	}
	out := make([]float64, ni*k+1)
	ResampleHermite(ts, ys, dt, out)
	for j := range out {
		want := math.Sin(0.3 * float64(j) * dt)
		if math.Abs(out[j]-want) > 2e-4 {
			t.Fatalf("resample error %g at j=%d", math.Abs(out[j]-want), j)
		}
	}
	// Sample points are reproduced exactly.
	for j := 0; j <= ni; j++ {
		if out[j*k] != ys[j] {
			t.Fatalf("sample point %d not exact: %g vs %g", j, out[j*k], ys[j])
		}
	}
}

func TestRunStateRoundTrip(t *testing.T) {
	ld := buildLadder(12, 15, 2e-10, 3e-14, 50, pulse, 0.5)
	// Accuracy is irrelevant here — the test only needs an accepted model.
	opts := Options{DT: 2e-13, NSteps: 600, TR: true, BESteps: 2, GateWindow: 300, Tol: 1e-2}
	m, err := Reduce(ld.sys, opts)
	if err != nil {
		t.Fatalf("Reduce: %v", err)
	}
	run := m.NewRun()
	st, err := m.PrepStepper(2e-13, false)
	if err != nil {
		t.Fatal(err)
	}
	up := make([]float64, 2)
	upPrev := make([]float64, 2)
	for j := 1; j <= 5; j++ {
		tt := float64(j) * 2e-13
		up[0] = -pulse(tt)
		if _, err := run.Advance(st, tt, up, nil, nil, NewtonOpts{}); err != nil {
			t.Fatal(err)
		}
	}
	snap := run.CaptureState()
	// Advance both a restored copy and the original in lockstep: bit-exact.
	run2 := m.NewRun()
	if err := run2.RestoreState(snap); err != nil {
		t.Fatal(err)
	}
	stTR, err := m.PrepStepper(2e-13, true)
	if err != nil {
		t.Fatal(err)
	}
	for j := 6; j <= 20; j++ {
		tt := float64(j) * 2e-13
		up[0] = -pulse(tt)
		upPrev[0] = -pulse(float64(j-1) * 2e-13)
		if _, err := run.Advance(stTR, tt, up, upPrev, nil, NewtonOpts{}); err != nil {
			t.Fatal(err)
		}
		if _, err := run2.Advance(stTR, tt, up, upPrev, nil, NewtonOpts{}); err != nil {
			t.Fatal(err)
		}
	}
	for i := range run.v {
		if run.v[i] != run2.v[i] {
			t.Fatalf("restored run diverged at port %d: %g vs %g", i, run.v[i], run2.v[i])
		}
	}
	x := make([]float64, ld.sys.N)
	run.ExpandInto(x)
	if x[ld.sys.Ports[1]] != run.v[1] {
		t.Fatal("ExpandInto does not reproduce port values")
	}
}
