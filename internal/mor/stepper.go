package mor

import (
	"math"
	"sync"

	"rlcint/internal/diag"
	"rlcint/internal/lina"
)

// PortEval evaluates the nonlinear port devices at a candidate port vector v:
// it ADDS the residual contribution into res (length p) and the Jacobian into
// jac (p×p row-major), both indexed in the model's port order. Implementations
// must not retain the slices.
type PortEval interface {
	Eval(v, res, jac []float64)
}

// NewtonOpts mirror the spice Newton controls for the reduced port solve.
type NewtonOpts struct {
	MaxNewton           int
	ITol, RelTol, VNTol float64
	MaxStep             float64
}

func (n NewtonOpts) withDefaults() NewtonOpts {
	if n.MaxNewton <= 0 {
		n.MaxNewton = 50
	}
	if n.ITol <= 0 {
		n.ITol = 1e-9
	}
	if n.RelTol <= 0 {
		n.RelTol = 1e-6
	}
	if n.VNTol <= 0 {
		n.VNTol = 1e-9
	}
	if n.MaxStep <= 0 {
		n.MaxStep = 5
	}
	return n
}

type stepperKey struct {
	dtBits   uint64
	tr, gate bool
}

type steppersCache struct {
	mu sync.Mutex
	m  map[stepperKey]*Stepper
}

type compStepper struct {
	lu  lina.LUWS
	x   []float64 // m×pc: Azz⁻¹·Azp
	apz []float64 // pc×m

	// Precomputed step-recursion operators (see Advance). With
	// R = α·Ĉzz − [tr]Ĝzz and Rp = α·Ĉzp − [tr]Ĝzp:
	wa []float64 // m×m:  Âzz⁻¹·R, so w = WA·z + WB·v directly
	wb []float64 // m×pc: Âzz⁻¹·Rp
	qz []float64 // pc×m: (α·Ĉpz − [tr]Ĝpz) − Âpz·WA, the z-coefficient of ρ
}

// Stepper holds the dense factorizations for one (dt, method) configuration
// of a Model: per-component LU of Âzz = Ĝzz + α·Ĉzz, the port-coupling
// solves X = Âzz⁻¹·Âzp, and the factored Schur complement
// S = App − Σ Âpz·X. Construction also folds the step recursion into dense
// operators (WA/WB/QZ per component, QP on the ports) so Advance needs no
// triangular solves and touches each history matrix once per step.
// Immutable after construction; safe to share.
type Stepper struct {
	alpha    float64
	dt       float64
	tr, gate bool
	comps    []compStepper
	s        []float64 // p×p Schur complement (unfactored copy, Newton base)
	slu      lina.LUWS
	qp       []float64 // p×p: (α·Ĉpp − [tr]App) − Σ Âpz·WB, the v-coefficient of ρ
}

// PrepStepper returns (building and caching on first use) the stepper for
// one time step of size dt, trapezoidal when tr is true.
func (m *Model) PrepStepper(dt float64, tr bool) (*Stepper, error) {
	return m.prep(dt, tr, false)
}

// StepIsTR reports whether 1-based internal step i of a run uses the
// trapezoidal rule (false: backward Euler — either the whole run is BE or
// i is within the BE startup window). The accuracy gate and the production
// reduced runner share this schedule.
func (m *Model) StepIsTR(i int) bool {
	return m.tr && i > m.beSteps
}

func (m *Model) prep(dt float64, tr, gate bool) (*Stepper, error) {
	key := stepperKey{math.Float64bits(dt), tr, gate}
	sc := &m.steppers
	sc.mu.Lock()
	if st, ok := sc.m[key]; ok {
		sc.mu.Unlock()
		return st, nil
	}
	sc.mu.Unlock()
	st, err := m.buildStepper(dt, tr, gate)
	if err != nil {
		return nil, err
	}
	sc.mu.Lock()
	if sc.m == nil {
		sc.m = make(map[stepperKey]*Stepper)
	}
	if len(sc.m) >= 32 { // adaptive runs can visit many dt values
		sc.m = make(map[stepperKey]*Stepper)
	}
	sc.m[key] = st
	sc.mu.Unlock()
	return st, nil
}

func (m *Model) buildStepper(dt float64, tr, gate bool) (*Stepper, error) {
	if dt <= 0 {
		return nil, diag.Domainf("mor.stepper", "non-positive dt %g", dt)
	}
	// dt = +Inf is the α=0 sentinel: A = G, used for moment recursions.
	alpha := 1 / dt
	if tr {
		alpha = 2 / dt
	}
	p := len(m.Ports)
	st := &Stepper{alpha: alpha, dt: dt, tr: tr, gate: gate}
	app := m.gpp
	if gate {
		app = m.gppGate
	}
	s := make([]float64, p*p)
	for i := range s {
		s[i] = app[i] + alpha*m.cpp[i]
	}
	st.comps = make([]compStepper, len(m.comps))
	var azz, col, sol []float64
	for ci, c := range m.comps {
		md, pc := c.m, len(c.ports)
		cs := &st.comps[ci]
		azz = growF(azz, md*md)
		for i := 0; i < md*md; i++ {
			azz[i] = c.gzz[i] + alpha*c.czz[i]
		}
		if err := cs.lu.FactorInto(azz[:md*md], md); err != nil {
			return nil, wrapErr(diag.ErrSingularJacobian, "mor.stepper", err)
		}
		cs.x = make([]float64, md*pc)
		cs.apz = make([]float64, pc*md)
		for i := range cs.apz {
			cs.apz[i] = c.gpz[i] + alpha*c.cpz[i]
		}
		col = growF(col, md)
		sol = growF(sol, md)
		for j := 0; j < pc; j++ {
			for i := 0; i < md; i++ {
				col[i] = c.gzp[i*pc+j] + alpha*c.czp[i*pc+j]
			}
			cs.lu.SolveInto(sol[:md], col[:md])
			for i := 0; i < md; i++ {
				cs.x[i*pc+j] = sol[i]
			}
		}
		// S −= Âpz·X, scattered through the component's port map.
		for pi := 0; pi < pc; pi++ {
			gi := c.ports[pi]
			for pj := 0; pj < pc; pj++ {
				acc := 0.0
				for k := 0; k < md; k++ {
					acc += cs.apz[pi*md+k] * cs.x[k*pc+pj]
				}
				s[gi*p+c.ports[pj]] -= acc
			}
		}
	}
	st.s = s
	if err := st.slu.FactorInto(s, p); err != nil {
		return nil, wrapErr(diag.ErrSingularJacobian, "mor.stepper", err)
	}

	// Fold the step recursion into dense operators. With the history matrix
	// R = α·Ĉ − [tr]Ĝ partitioned like A, precompute WA = Âzz⁻¹·Rzz,
	// WB = Âzz⁻¹·Rzp, QZ = Rpz − Âpz·WA and QP = Rpp − Σ Âpz·WB so that a
	// step needs only w = WA·z + WB·v and ρ = QP·v + Σ QZ·z + (sources, f).
	tf := 0.0
	if tr {
		tf = 1
	}
	qp := make([]float64, p*p)
	for i := range qp {
		qp[i] = alpha*m.cpp[i] - tf*app[i]
	}
	for ci, c := range m.comps {
		md, pc := c.m, len(c.ports)
		cs := &st.comps[ci]
		cs.wa = make([]float64, md*md)
		cs.wb = make([]float64, md*pc)
		cs.qz = make([]float64, pc*md)
		col = growF(col, md)
		sol = growF(sol, md)
		for j := 0; j < md; j++ {
			for i := 0; i < md; i++ {
				col[i] = alpha*c.czz[i*md+j] - tf*c.gzz[i*md+j]
			}
			cs.lu.SolveInto(sol[:md], col[:md])
			for i := 0; i < md; i++ {
				cs.wa[i*md+j] = sol[i]
			}
		}
		for j := 0; j < pc; j++ {
			for i := 0; i < md; i++ {
				col[i] = alpha*c.czp[i*pc+j] - tf*c.gzp[i*pc+j]
			}
			cs.lu.SolveInto(sol[:md], col[:md])
			for i := 0; i < md; i++ {
				cs.wb[i*pc+j] = sol[i]
			}
		}
		for pi := 0; pi < pc; pi++ {
			gi := c.ports[pi]
			for j := 0; j < md; j++ {
				acc := alpha*c.cpz[pi*md+j] - tf*c.gpz[pi*md+j]
				for k := 0; k < md; k++ {
					acc -= cs.apz[pi*md+k] * cs.wa[k*md+j]
				}
				cs.qz[pi*md+j] = acc
			}
			for pj := 0; pj < pc; pj++ {
				acc := 0.0
				for k := 0; k < md; k++ {
					acc += cs.apz[pi*md+k] * cs.wb[k*pc+pj]
				}
				qp[gi*p+c.ports[pj]] -= acc
			}
		}
	}
	st.qp = qp
	return st, nil
}

func growF(b []float64, n int) []float64 {
	if cap(b) < n {
		return make([]float64, n)
	}
	return b[:n]
}

// Run is the mutable per-transient state of a reduced model: port values and
// per-component reduced coordinates. The integration scheme is stateless
// beyond x itself — the trapezoidal history term is recovered from the
// previous step's converged residual (see Advance) — so a Run is fully
// described by (T, v, z). Not safe for concurrent use; multiple Runs may
// share one Model.
type Run struct {
	model *Model
	T     float64

	v []float64
	z [][]float64

	// scratch
	rhat, w             [][]float64
	rho                 []float64
	vNew, dv, phi, vOld []float64
	fprev, fnl          []float64
	jac, jtmp           []float64
	nlu                 lina.LUWS

	// fprevFor is the time whose converged nonlinear residual f(x) is cached
	// in fprev (NaN: none). A trapezoidal step at r.T == fprevFor reuses the
	// cache instead of re-evaluating the port devices.
	fprevFor float64
}

// NewRun returns a fresh run positioned at t=0 in the model's initial state.
func (m *Model) NewRun() *Run {
	p := len(m.Ports)
	r := &Run{
		model:    m,
		v:        append([]float64(nil), m.x0p...),
		rho:      make([]float64, p),
		vNew:     make([]float64, p),
		dv:       make([]float64, p),
		phi:      make([]float64, p),
		vOld:     make([]float64, p),
		fprev:    make([]float64, p),
		fnl:      make([]float64, p),
		jac:      make([]float64, p*p),
		jtmp:     make([]float64, p*p),
		fprevFor: math.NaN(),
	}
	for ci, c := range m.comps {
		r.z = append(r.z, append([]float64(nil), m.z0[ci]...))
		r.rhat = append(r.rhat, make([]float64, c.m))
		r.w = append(r.w, make([]float64, c.m))
	}
	return r
}

// PortValues returns the current port-row values (live slice; read-only,
// valid until the next Advance).
func (r *Run) PortValues() []float64 { return r.v }

// ComponentDims returns the reduced dimension of each connected component,
// in component order — diagnostic detail for reports and logs.
func (m *Model) ComponentDims() []int {
	dims := make([]int, len(m.comps))
	for i, c := range m.comps {
		dims[i] = c.m
	}
	return dims
}

// ExpandInto reconstructs the full-space state x = [v; V·z] (length N).
func (r *Run) ExpandInto(x []float64) {
	m := r.model
	for i := range x {
		x[i] = 0
	}
	for pi, row := range m.Ports {
		x[row] = r.v[pi]
	}
	for ci, c := range m.comps {
		z := r.z[ci]
		for col := 0; col < c.m; col++ {
			vc := c.v[col*c.dim : (col+1)*c.dim]
			zc := z[col]
			if zc == 0 {
				continue
			}
			for i, row := range c.rows {
				x[row] += vc[i] * zc
			}
		}
	}
}

// RunState is a serializable snapshot of a Run (checkpoint support). The
// scheme is stateless beyond x, so (T, V, Z) restores bit-exact continuation.
type RunState struct {
	T float64
	V []float64
	Z [][]float64
}

// CaptureState deep-copies the run state.
func (r *Run) CaptureState() RunState {
	s := RunState{
		T: r.T,
		V: append([]float64(nil), r.v...),
	}
	for ci := range r.z {
		s.Z = append(s.Z, append([]float64(nil), r.z[ci]...))
	}
	return s
}

// RestoreState loads a snapshot captured from a run of the same model.
func (r *Run) RestoreState(s RunState) error {
	if len(s.V) != len(r.v) || len(s.Z) != len(r.z) {
		return diag.Domainf("mor.RestoreState", "snapshot shape does not match the model")
	}
	for ci := range r.z {
		if len(s.Z[ci]) != len(r.z[ci]) {
			return diag.Domainf("mor.RestoreState", "snapshot component %d shape mismatch", ci)
		}
	}
	r.T = s.T
	copy(r.v, s.V)
	for ci := range r.z {
		copy(r.z[ci], s.Z[ci])
	}
	r.fprevFor = math.NaN() // snapshot carries no residual cache
	return nil
}

// Advance takes one reduced time step to tNew using the prepared stepper.
// u is the port-local source vector at tNew and uPrev the same vector at the
// run's current time (nil: none; uPrev is only read on trapezoidal steps);
// pe the nonlinear port devices (nil: pure linear solve). It returns the
// Newton iteration count. On error the run state is unchanged.
//
// Integration is plain backward Euler or trapezoidal on the reduced system
// Ĝ·x + f(x) + Ĉ·ẋ = u. The trapezoidal right-hand side
// (αĈ − Ĝ)·x_n − f(x_n) + u_n + u_{n+1} recovers the storage-element history
// from the previous step's converged residual — algebraically identical to
// the full solver's per-element companion recursion, and unconditionally
// stable on the congruence-projected (passive) system — provided the run
// opened with at least one BE step (Reduce enforces this for validated
// models).
func (r *Run) Advance(st *Stepper, tNew float64, u, uPrev []float64, pe PortEval, no NewtonOpts) (int, error) {
	m := r.model
	p := len(m.Ports)

	// Internal history wᵢ = Âzzᵢ⁻¹·r̂ᵢ via the precomputed recursion
	// operators: w = WA·z + WB·v (see buildStepper).
	for ci, c := range m.comps {
		md, pc := c.m, len(c.ports)
		w, z := r.w[ci], r.z[ci]
		cs := &st.comps[ci]
		for i := 0; i < md; i++ {
			s := 0.0
			rowA := cs.wa[i*md : (i+1)*md]
			for k, zk := range z {
				s += rowA[k] * zk
			}
			rowB := cs.wb[i*pc : (i+1)*pc]
			for j, gp := range c.ports {
				s += rowB[j] * r.v[gp]
			}
			w[i] = s
		}
	}

	// Schur-reduced port right-hand side, history folded in at build time:
	// ρ = QP·v + Σ QZᵢ·zᵢ + u' [TR: + u_n − f(x_n)].
	denseMV(st.qp, p, r.v, r.rho)
	for ci, c := range m.comps {
		z := r.z[ci]
		md := c.m
		cs := &st.comps[ci]
		for pi, gp := range c.ports {
			s := 0.0
			row := cs.qz[pi*md : (pi+1)*md]
			for k, zk := range z {
				s += row[k] * zk
			}
			r.rho[gp] += s
		}
	}
	if st.tr && pe != nil && r.fprevFor != r.T {
		pe.Eval(r.v, zero(r.fprev), zero(r.jtmp))
	}
	for i := 0; i < p; i++ {
		s := r.rho[i]
		if st.tr {
			if pe != nil {
				s -= r.fprev[i]
			}
			if uPrev != nil {
				s += uPrev[i]
			}
		}
		if u != nil {
			s += u[i]
		}
		r.rho[i] = s
	}

	// Port solve: direct for linear circuits, Newton otherwise.
	iters := 0
	if pe == nil {
		st.slu.SolveInto(r.vNew, r.rho)
	} else {
		var err error
		iters, err = r.newtonPorts(st, pe, no)
		if err != nil {
			return iters, err
		}
		// newtonPorts left f(v_converged) in fnl; it is the next step's
		// trapezoidal history residual.
		copy(r.fprev, r.fnl)
		r.fprevFor = tNew
	}

	// Back-substitute internals: z′ᵢ = wᵢ − Xᵢ·v′ (into rhat scratch).
	for ci, c := range m.comps {
		cs := &st.comps[ci]
		md, pc := c.m, len(c.ports)
		zn, w := r.rhat[ci], r.w[ci]
		for i := 0; i < md; i++ {
			s := w[i]
			row := cs.x[i*pc : (i+1)*pc]
			for j, gp := range c.ports {
				s -= row[j] * r.vNew[gp]
			}
			zn[i] = s
		}
	}

	// Commit.
	copy(r.v, r.vNew)
	for ci := range m.comps {
		copy(r.z[ci], r.rhat[ci])
	}
	r.T = tNew
	return iters, nil
}

// newtonPorts solves φ(v) = S·v + i_nl(v) − ρ = 0 on the p-dimensional port
// system, mirroring the full solver's convergence criteria (residual below
// ITol and update below VNTol + RelTol·|v|).
func (r *Run) newtonPorts(st *Stepper, pe PortEval, no NewtonOpts) (int, error) {
	no = no.withDefaults()
	p := len(r.model.Ports)
	copy(r.vNew, r.v) // warm start from the previous step
	lastDx := math.Inf(1)
	for it := 1; it <= no.MaxNewton; it++ {
		r.evalPhi(st, pe)
		norm := infNorm(r.phi)
		if math.IsNaN(norm) || math.IsInf(norm, 0) {
			// Retreat halfway toward the last accepted iterate.
			retreated := false
			for h := 0; h < 8 && !retreated; h++ {
				for i := 0; i < p; i++ {
					r.vNew[i] = 0.5 * (r.vNew[i] + r.vOld[i])
				}
				r.evalPhi(st, pe)
				norm = infNorm(r.phi)
				retreated = !math.IsNaN(norm) && !math.IsInf(norm, 0)
			}
			if !retreated {
				return it, diag.New(diag.ErrNonConvergence, "mor.newton")
			}
		}
		vn := infNorm(r.vNew)
		if norm < no.ITol && lastDx < no.VNTol+no.RelTol*vn {
			return it, nil
		}
		if err := r.nlu.FactorInto(r.jac, p); err != nil {
			return it, wrapErr(diag.ErrSingularJacobian, "mor.newton", err)
		}
		r.nlu.SolveInto(r.dv, r.phi)
		copy(r.vOld, r.vNew)
		lastDx = 0
		for i := 0; i < p; i++ {
			d := -r.dv[i]
			if d > no.MaxStep {
				d = no.MaxStep
			} else if d < -no.MaxStep {
				d = -no.MaxStep
			}
			r.vNew[i] += d
			if a := math.Abs(d); a > lastDx {
				lastDx = a
			}
		}
	}
	return no.MaxNewton, diag.New(diag.ErrNonConvergence, "mor.newton")
}

// evalPhi computes φ(vNew) = S·vNew + f(vNew) − ρ into phi, the Jacobian
// S + ∂f/∂v into jac, and leaves f(vNew) alone in fnl (the trapezoidal
// history cache candidate).
func (r *Run) evalPhi(st *Stepper, pe PortEval) {
	p := len(r.model.Ports)
	denseMV(st.s, p, r.vNew, r.phi)
	copy(r.jac, st.s)
	pe.Eval(r.vNew, zero(r.fnl), r.jac)
	for i := 0; i < p; i++ {
		r.phi[i] += r.fnl[i] - r.rho[i]
	}
}

// solveCoupled solves the α-form system [S-structure] for arbitrary
// right-hand sides (rhsP on ports, rhsZ per component): the moment
// recursion of the accuracy gate. Outputs overwrite outV/outZ.
func (st *Stepper) solveCoupled(m *Model, rhsP []float64, rhsZ [][]float64, outV []float64, outZ, wtmp [][]float64) {
	p := len(m.Ports)
	for ci := range m.comps {
		st.comps[ci].lu.SolveInto(wtmp[ci], rhsZ[ci])
	}
	copy(outV, rhsP)
	for ci, c := range m.comps {
		md := c.m
		cs := &st.comps[ci]
		w := wtmp[ci]
		for pi, gp := range c.ports {
			s := 0.0
			row := cs.apz[pi*md : (pi+1)*md]
			for k, wk := range w {
				s += row[k] * wk
			}
			outV[gp] -= s
		}
	}
	v := make([]float64, p)
	st.slu.SolveInto(v, outV)
	copy(outV, v)
	for ci, c := range m.comps {
		cs := &st.comps[ci]
		md, pc := c.m, len(c.ports)
		w, zo := wtmp[ci], outZ[ci]
		for i := 0; i < md; i++ {
			s := w[i]
			row := cs.x[i*pc : (i+1)*pc]
			for j, gp := range c.ports {
				s -= row[j] * outV[gp]
			}
			zo[i] = s
		}
	}
}

// denseMV computes y = A·x for a dense row-major n×n matrix.
func denseMV(a []float64, n int, x, y []float64) {
	for i := 0; i < n; i++ {
		row := a[i*n : (i+1)*n]
		s := 0.0
		for j, xj := range x {
			s += row[j] * xj
		}
		y[i] = s
	}
}

func infNorm(v []float64) float64 {
	m := 0.0
	for _, x := range v {
		if a := math.Abs(x); a > m {
			m = a
		}
	}
	return m
}
