// Package mor builds Krylov reduced-order models of the linear partition of
// an MNA system — the PRIMA-style projection framework behind the transient
// fast path for long RLC interconnect ladders (the paper's Fig9–12 class of
// workloads, where time-stepping a few-hundred-unknown ladder for tens of
// thousands of steps dominates everything else).
//
// The caller (internal/spice) partitions the circuit's rows into a small
// retained "port" set — rows stamped or read by nonlinear devices, rows
// carrying independent-source terms, and probe rows — and the internal
// remainder, and hands over the linear-partition matrices G and C (residual
// form res = G·x + C·ẋ − u). This package then:
//
//   - splits the internal rows into connected components (a ring oscillator's
//     five identical ladders reduce independently, keeping the reduced system
//     block-diagonal),
//   - builds a per-component orthonormal basis V for the block-Krylov space
//     K(G_zz⁻¹·C_zz, G_zz⁻¹·B) via sparse LU solves and modified Gram–Schmidt,
//     with the initial state appended as an extra start column so z₀ = Vᵀx₀
//     is exact,
//   - forms the congruence-projected reduced blocks (VᵀGV, VᵀCV, and the
//     port couplings), the passivity-friendly PRIMA construction,
//   - validates the reduction with a differential accuracy gate: a full-space
//     linear reference transient at the output timestep versus the reduced
//     stepper at a candidate internal stride, compared as relative RMS
//     waveform error at the retained rows, escalating the Krylov order and
//     backing the stride off until the error meets the tolerance — or
//     rejecting the reduction outright so the caller falls back to the full
//     solver.
//
// A validated Model is immutable and safe for concurrent use; per-run
// mutable state lives in Run (stepper.go).
package mor

import (
	"fmt"
	"math"

	"rlcint/internal/diag"
	"rlcint/internal/sparse"
)

// System is the linear partition of an MNA system in residual form
// res(x, t) = G·x + C·ẋ − u(t), with u supported only on port rows.
type System struct {
	N       int
	Pattern *sparse.CSC // shared sparsity pattern; Pattern.X is ignored
	G, C    []float64   // linear-partition values on Pattern (len nnz)
	// GGate optionally adds the port-row linearization of the nonlinear
	// devices at X0 to G (same pattern). The accuracy gate steps this
	// closed system; nil means G (fully linear circuit).
	GGate []float64
	// Ports are the retained global rows, in port-index order. Sources,
	// probes, and nonlinear device terminals must all be port rows.
	Ports []int
	// X0 is the initial state (length N).
	X0 []float64
	// U fills the port-local source vector u_p at time t (nil: no sources).
	U func(t float64, up []float64)
	// U0 is a constant port-local source term for the gate's linearized
	// system: i_nl(x0) − J_nl(x0)·v0, the affine offset of the nonlinear
	// devices' linearization (nil: zero).
	U0 []float64
}

// Options configure Reduce.
type Options struct {
	// Order is the initial per-component Krylov order; MaxOrder caps the
	// accuracy-gate escalation (defaults 8 and 48, clamped to the component
	// dimension — at full dimension the projection is exact).
	Order, MaxOrder int
	// Tol is the gate's relative RMS waveform-error tolerance (default 1e-4).
	Tol float64
	// MaxStride bounds the internal-step stride the gate may select
	// (default 16). ForceStride1 pins the stride to 1 (checkpointed runs,
	// which must land internal steps on every output grid point).
	MaxStride    int
	ForceStride1 bool
	// DT and NSteps describe the target run's output grid; TR selects
	// trapezoidal integration with BESteps backward-Euler startup steps.
	DT      float64
	NSteps  int
	TR      bool
	BESteps int
	// GateWindow is the reference-simulation length in output steps
	// (default min(NSteps, 1200), rounded to a stride multiple).
	GateWindow int
	// Shift is the Krylov expansion frequency s₀: the basis spans
	// K((G+s₀C)⁻¹C, (G+s₀C)⁻¹B). Zero selects the mild default
	// 1/(256·DT) — accuracy-neutral versus classical s₀ = 0 moment
	// matching on damped lines, but it keeps the expansion matrix
	// factorizable when an internal block is purely reactive
	// (singular G_zz).
	Shift float64
	// MaxPortDim rejects reductions whose total reduced dimension
	// (ports + Σ orders) exceeds this fraction of N (default 0.85) —
	// a reduction that barely shrinks the system is all risk, no win.
	MaxDimFrac float64
	// Injector injects build faults for testing ("mor.arnoldi",
	// "mor.gate"); Report collects gate attempts. Both may be nil.
	Injector *diag.Injector
	Report   *diag.Report
}

// wrapErr builds a typed diag error of the given kind wrapping cause.
func wrapErr(kind error, op string, cause error) *diag.Error {
	e := diag.New(kind, op)
	e.Err = cause
	return e
}

func (o Options) withDefaults() Options {
	if o.Order <= 0 {
		o.Order = 8
	}
	if o.MaxOrder <= 0 {
		o.MaxOrder = 48
	}
	if o.Tol <= 0 {
		o.Tol = 1e-4
	}
	if o.MaxStride <= 0 {
		o.MaxStride = 16
	}
	if o.ForceStride1 {
		o.MaxStride = 1
	}
	if o.GateWindow <= 0 {
		o.GateWindow = 1200
	}
	if o.GateWindow > o.NSteps {
		o.GateWindow = o.NSteps
	}
	if o.MaxDimFrac <= 0 {
		o.MaxDimFrac = 0.85
	}
	if o.Shift <= 0 && o.DT > 0 {
		// Mild shift: accuracy-neutral versus classical s₀ = 0 on damped
		// lines, but keeps the expansion matrix G + s₀C factorizable when
		// an internal block is purely reactive (singular G_zz).
		o.Shift = 1 / (256 * o.DT)
	}
	return o
}

// component is one connected block of internal rows with its Krylov basis
// and congruence-projected reduced matrices.
type component struct {
	rows  []int     // global row indices
	ports []int     // port indices (into System.Ports) this component couples to
	dim   int       // len(rows)
	m     int       // reduced order
	v     []float64 // basis, column-major dim×m: v[c*dim+i]

	// Reduced blocks, dense row-major. Suffixes: zz m×m, zp m×pc, pz pc×m.
	gzz, czz []float64
	gzp, czp []float64
	gpz, cpz []float64
}

// Model is a validated reduced-order model: immutable after Reduce, safe to
// share across concurrent runs. Per-timestep factorizations are prepared
// lazily and cached under mu (stepper.go).
type Model struct {
	N     int
	Ports []int
	comps []*component

	gpp, cpp []float64 // p×p dense port blocks (linear partition)
	gppGate  []float64 // port block with the nonlinear linearization folded in

	x0p []float64   // initial port values
	z0  [][]float64 // initial reduced state per component

	// Stride is the gate-validated internal-step stride (internal dt =
	// Stride·DT); GateErr the measured relative RMS error at that stride;
	// Order the total reduced internal dimension Σ mᵢ.
	Stride  int
	GateErr float64
	Order   int
	// MomentErr is the worst normalized transfer-moment mismatch observed
	// by the gate (informative; the accept decision is on GateErr).
	MomentErr float64

	tr      bool
	beSteps int
	dt      float64

	steppers steppersCache
}

// TotalOrder returns the reduced internal dimension Σ mᵢ.
func (m *Model) TotalOrder() int { return m.Order }

// NumPorts returns the retained port count.
func (m *Model) NumPorts() int { return len(m.Ports) }

// Reduce builds and gate-validates a reduced-order model of sys for the run
// shape described by opts. A nil model with a non-nil error means the
// reduction was rejected (gate failure, singular internal block, injected
// fault, unfavourable dimensions) and the caller must use the full solver.
func Reduce(sys *System, opts Options) (*Model, error) {
	opts = opts.withDefaults()
	if err := validateSystem(sys); err != nil {
		return nil, err
	}
	if opts.TR && opts.BESteps < 1 {
		// The reduced trapezoidal recursion derives its history term from
		// the previous step's converged residual, which requires the run to
		// open with at least one backward-Euler step (the full solver seeds
		// its per-element companion histories the same way).
		return nil, diag.Domainf("mor.Reduce", "trapezoidal runs need >= 1 BE startup step, have %d", opts.BESteps)
	}
	if opts.Injector != nil {
		if err := opts.Injector.At(diag.Site{Op: "mor.build"}); err != nil {
			return nil, wrapErr(diag.ErrNonConvergence, "mor.Reduce", err)
		}
	}
	comps, err := partition(sys)
	if err != nil {
		return nil, err
	}
	intDim := 0
	for _, c := range comps {
		intDim += c.dim
	}
	if intDim < 8 {
		return nil, diag.Domainf("mor.Reduce", "internal dimension %d too small to be worth reducing", intDim)
	}

	// Reference waveforms are order-independent: compute once, reuse across
	// every (order, stride) gate attempt.
	ref, err := newGateRef(sys, opts)
	if err != nil {
		return nil, err
	}

	order := opts.Order
	for {
		m, berr := build(sys, comps, order, opts)
		if berr != nil {
			return nil, berr
		}
		if m.Order+len(m.Ports) <= int(opts.MaxDimFrac*float64(sys.N)) {
			stride := maxUsableStride(opts)
			for ; stride >= 1; stride /= 2 {
				gerr, moErr, gateErr := ref.compare(m, stride)
				if gateErr != nil {
					return nil, gateErr
				}
				opts.Report.Record("mor-gate", fmt.Sprintf("order=%d stride=%d", m.Order, stride),
					diag.OutcomeOK, fmt.Sprintf("relerr=%.3g", gerr), nil)
				if gerr <= opts.Tol {
					m.Stride = stride
					m.GateErr = gerr
					m.MomentErr = moErr
					return m, nil
				}
			}
		} else {
			opts.Report.Record("mor-gate", fmt.Sprintf("order=%d", m.Order), diag.OutcomeSkipped,
				fmt.Sprintf("reduced dim %d+%d leaves no headroom against N=%d", m.Order, len(m.Ports), sys.N), nil)
		}
		saturated := true
		for _, c := range comps {
			if c.m < c.dim {
				saturated = false
				break
			}
		}
		if order >= opts.MaxOrder || saturated {
			de := diag.New(diag.ErrNonConvergence, "mor.Reduce")
			de.Detail = fmt.Sprintf("accuracy gate rejected the reduction at order %d (tol %g)", order, opts.Tol)
			opts.Report.Record("mor-gate", "reject", diag.OutcomeFailed, de.Detail, de)
			return nil, de
		}
		order = order*3/2 + 1
		if order > opts.MaxOrder {
			order = opts.MaxOrder
		}
	}
}

func validateSystem(sys *System) error {
	if sys == nil || sys.Pattern == nil {
		return diag.Domainf("mor.Reduce", "nil system")
	}
	n := sys.N
	if n <= 0 || sys.Pattern.N != n || len(sys.X0) != n {
		return diag.Domainf("mor.Reduce", "inconsistent system dimensions")
	}
	nnz := sys.Pattern.NNZ()
	if len(sys.G) != nnz || len(sys.C) != nnz || (sys.GGate != nil && len(sys.GGate) != nnz) {
		return diag.Domainf("mor.Reduce", "value arrays do not match the pattern")
	}
	if len(sys.Ports) == 0 || len(sys.Ports) >= n {
		return diag.Domainf("mor.Reduce", "need 1..N-1 ports, have %d of %d", len(sys.Ports), n)
	}
	seen := make(map[int]bool, len(sys.Ports))
	for _, r := range sys.Ports {
		if r < 0 || r >= n || seen[r] {
			return diag.Domainf("mor.Reduce", "bad port row %d", r)
		}
		seen[r] = true
	}
	for _, x := range sys.X0 {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return diag.Domainf("mor.Reduce", "non-finite initial state")
		}
	}
	return nil
}

// partition labels the internal rows by connected component of the
// pattern's internal×internal adjacency and records which ports each
// component couples to.
func partition(sys *System) ([]*component, error) {
	n := sys.N
	isPort := make([]bool, n)
	for _, r := range sys.Ports {
		isPort[r] = true
	}
	label := make([]int, n)
	for i := range label {
		label[i] = -1
	}
	pat := sys.Pattern
	var comps []*component
	stack := make([]int, 0, n)
	for s := 0; s < n; s++ {
		if isPort[s] || label[s] >= 0 {
			continue
		}
		id := len(comps)
		c := &component{}
		stack = append(stack[:0], s)
		label[s] = id
		for len(stack) > 0 {
			r := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			c.rows = append(c.rows, r)
			// Neighbours: entries in column r (rows) and row r (columns).
			// The pattern is structurally symmetric for MNA stamps, but walk
			// the column direction both ways to be safe: scan column r for
			// row-neighbours, and scan all columns for row r via the
			// transpose-free fallback below being O(nnz) once per component
			// would be wasteful — MNA stamp patterns are symmetric (every
			// coupling stamps both (i,j) and (j,i)), so column adjacency
			// suffices.
			for p := pat.P[r]; p < pat.P[r+1]; p++ {
				nb := pat.I[p]
				if !isPort[nb] && label[nb] < 0 {
					label[nb] = id
					stack = append(stack, nb)
				}
			}
		}
		c.dim = len(c.rows)
		comps = append(comps, c)
	}
	// Port coupling per component: any entry linking a component row with a
	// port row (either direction).
	portIdx := make([]int, n)
	for i := range portIdx {
		portIdx[i] = -1
	}
	for pi, r := range sys.Ports {
		portIdx[r] = pi
	}
	touch := make(map[int]map[int]bool)
	for j := 0; j < n; j++ {
		for p := pat.P[j]; p < pat.P[j+1]; p++ {
			i := pat.I[p]
			var cid, pid int
			switch {
			case label[i] >= 0 && portIdx[j] >= 0:
				cid, pid = label[i], portIdx[j]
			case label[j] >= 0 && portIdx[i] >= 0:
				cid, pid = label[j], portIdx[i]
			default:
				continue
			}
			if touch[cid] == nil {
				touch[cid] = make(map[int]bool)
			}
			touch[cid][pid] = true
		}
	}
	for cid, c := range comps {
		for pid := range touch[cid] {
			c.ports = append(c.ports, pid)
		}
		sortInts(c.ports)
		sortInts(c.rows)
	}
	return comps, nil
}

func sortInts(v []int) {
	for i := 1; i < len(v); i++ {
		for j := i; j > 0 && v[j] < v[j-1]; j-- {
			v[j], v[j-1] = v[j-1], v[j]
		}
	}
}

// build constructs bases and reduced blocks at the given per-component
// order target. It never mutates sys.
func build(sys *System, comps []*component, order int, opts Options) (*Model, error) {
	n := sys.N
	p := len(sys.Ports)
	m := &Model{
		N:       n,
		Ports:   append([]int(nil), sys.Ports...),
		comps:   comps,
		tr:      opts.TR,
		beSteps: opts.BESteps,
		dt:      opts.DT,
	}
	// Dense port blocks.
	m.gpp = extractDense(sys.Pattern, sys.G, sys.Ports, sys.Ports)
	m.cpp = extractDense(sys.Pattern, sys.C, sys.Ports, sys.Ports)
	if sys.GGate != nil {
		m.gppGate = extractDense(sys.Pattern, sys.GGate, sys.Ports, sys.Ports)
	} else {
		m.gppGate = m.gpp
	}
	m.x0p = make([]float64, p)
	for pi, r := range sys.Ports {
		m.x0p[pi] = sys.X0[r]
	}
	m.z0 = make([][]float64, len(comps))
	for ci, c := range comps {
		if err := c.buildBasis(sys, order, opts); err != nil {
			return nil, err
		}
		c.project(sys)
		// z0 = Vᵀ x0 restricted to the component (x0 is in span(V) by
		// construction — it seeds the start block).
		z := make([]float64, c.m)
		for col := 0; col < c.m; col++ {
			s := 0.0
			vc := c.v[col*c.dim : (col+1)*c.dim]
			for i, r := range c.rows {
				s += vc[i] * sys.X0[r]
			}
			z[col] = s
		}
		m.z0[ci] = z
		m.Order += c.m
	}
	return m, nil
}

// extractDense gathers the (rows × cols) block of the pattern into a dense
// row-major matrix.
func extractDense(pat *sparse.CSC, vals []float64, rows, cols []int) []float64 {
	rowIdx := make(map[int]int, len(rows))
	for i, r := range rows {
		rowIdx[r] = i
	}
	out := make([]float64, len(rows)*len(cols))
	for cj, j := range cols {
		for p := pat.P[j]; p < pat.P[j+1]; p++ {
			if ri, ok := rowIdx[pat.I[p]]; ok {
				out[ri*len(cols)+cj] += vals[p]
			}
		}
	}
	return out
}

// buildBasis builds the component's orthonormal Krylov basis: start block
// G_zz⁻¹·[G_zp | C_zp] plus the raw initial state, then Krylov levels
// w ← G_zz⁻¹·(C_zz·w), modified Gram–Schmidt throughout.
func (c *component) buildBasis(sys *System, order int, opts Options) error {
	if opts.Injector != nil {
		if err := opts.Injector.At(diag.Site{Op: "mor.arnoldi", Step: c.dim}); err != nil {
			return wrapErr(diag.ErrNonConvergence, "mor.arnoldi", err)
		}
	}
	dim := c.dim
	if order > dim {
		order = dim
	}
	keep := make([]int, sys.N)
	for i := range keep {
		keep[i] = -1
	}
	for i, r := range c.rows {
		keep[r] = i
	}
	// Expansion matrix A₀ = G_zz + s₀·C_zz: the shifted (frequency-domain)
	// operating point. With s₀ near the stepping rate the Krylov space is
	// the one the reduced time-stepper actually iterates in.
	s0 := opts.Shift
	avals := make([]float64, len(sys.G))
	for i := range avals {
		avals[i] = sys.G[i] + s0*sys.C[i]
	}
	azz := sys.Pattern.ExtractWith(avals, keep, dim)
	czz := sys.Pattern.ExtractWith(sys.C, keep, dim)
	lu := sparse.Workspace(dim)
	if err := lu.Factorize(azz, 1); err != nil {
		return wrapErr(diag.ErrSingularJacobian, "mor.arnoldi",
			fmt.Errorf("singular internal conductance block (dim %d): %w", dim, err))
	}

	// Start columns: port couplings through G and C, then the initial state.
	var starts [][]float64
	for _, pi := range c.ports {
		col := sys.Ports[pi]
		bg := gatherColumn(sys.Pattern, sys.G, col, keep, dim)
		bc := gatherColumn(sys.Pattern, sys.C, col, keep, dim)
		if bg != nil {
			w := make([]float64, dim)
			lu.SolveInto(w, bg)
			starts = append(starts, w)
		}
		if bc != nil {
			w := make([]float64, dim)
			lu.SolveInto(w, bc)
			starts = append(starts, w)
		}
	}
	x0 := make([]float64, dim)
	nz := false
	for i, r := range c.rows {
		x0[i] = sys.X0[r]
		nz = nz || x0[i] != 0
	}
	if nz {
		starts = append(starts, x0)
	}
	if len(starts) == 0 {
		// A component with no port coupling and zero initial state never
		// moves; represent it with a single unit vector so the bookkeeping
		// stays uniform.
		e := make([]float64, dim)
		e[0] = 1
		starts = append(starts, e)
	}

	c.v = c.v[:0]
	c.m = 0
	level := make([][]float64, 0, len(starts))
	for _, w := range starts {
		if c.mgsAppend(w) && c.m < order {
			level = append(level, c.lastCol())
		}
	}
	tmp := make([]float64, dim)
	for c.m < order && len(level) > 0 {
		next := level[:0:0]
		for _, vcol := range level {
			if c.m >= order {
				break
			}
			for i := range tmp {
				tmp[i] = 0
			}
			czz.GaxpyWith(czz.X, vcol, tmp)
			w := make([]float64, dim)
			lu.SolveInto(w, tmp)
			if c.mgsAppend(w) {
				next = append(next, c.lastCol())
			}
		}
		if len(next) == 0 {
			break // Krylov space saturated below the requested order
		}
		level = next
	}
	return nil
}

// gatherColumn returns the internal-row entries of the pattern's global
// column col as a dense component-local vector, or nil when empty.
func gatherColumn(pat *sparse.CSC, vals []float64, col int, keep []int, dim int) []float64 {
	var out []float64
	for p := pat.P[col]; p < pat.P[col+1]; p++ {
		if i := keep[pat.I[p]]; i >= 0 && vals[p] != 0 {
			if out == nil {
				out = make([]float64, dim)
			}
			out[i] += vals[p]
		}
	}
	return out
}

// mgsAppend orthogonalizes w against the basis (modified Gram–Schmidt, one
// re-orthogonalization pass) and appends it when independent; it reports
// whether a column was added. w is consumed.
func (c *component) mgsAppend(w []float64) bool {
	dim := c.dim
	norm0 := vecNorm(w)
	if norm0 == 0 {
		return false
	}
	for pass := 0; pass < 2; pass++ {
		for col := 0; col < c.m; col++ {
			vc := c.v[col*dim : (col+1)*dim]
			d := 0.0
			for i, x := range vc {
				d += x * w[i]
			}
			for i, x := range vc {
				w[i] -= d * x
			}
		}
	}
	norm := vecNorm(w)
	if norm <= 1e-10*norm0 {
		return false
	}
	inv := 1 / norm
	for i := range w {
		w[i] *= inv
	}
	c.v = append(c.v, w...)
	c.m++
	return true
}

func (c *component) lastCol() []float64 {
	return c.v[(c.m-1)*c.dim : c.m*c.dim]
}

func vecNorm(v []float64) float64 {
	s := 0.0
	for _, x := range v {
		s += x * x
	}
	return math.Sqrt(s)
}

// project forms the congruence-reduced blocks VᵀMV and the port couplings.
func (c *component) project(sys *System) {
	dim, m, pc := c.dim, c.m, len(c.ports)
	keep := make([]int, sys.N)
	for i := range keep {
		keep[i] = -1
	}
	for i, r := range c.rows {
		keep[r] = i
	}
	gzz := sys.Pattern.ExtractWith(sys.G, keep, dim)
	czz := sys.Pattern.ExtractWith(sys.C, keep, dim)

	c.gzz = make([]float64, m*m)
	c.czz = make([]float64, m*m)
	c.gzp = make([]float64, m*pc)
	c.czp = make([]float64, m*pc)
	c.gpz = make([]float64, pc*m)
	c.cpz = make([]float64, pc*m)

	y := make([]float64, dim)
	// zz blocks: columns are M·v_j projected through Vᵀ.
	projectCols := func(mat *sparse.CSC, vals []float64, out []float64) {
		for j := 0; j < m; j++ {
			vj := c.v[j*dim : (j+1)*dim]
			for i := range y {
				y[i] = 0
			}
			mat.GaxpyWith(vals, vj, y)
			for col := 0; col < m; col++ {
				vc := c.v[col*dim : (col+1)*dim]
				s := 0.0
				for i, x := range vc {
					s += x * y[i]
				}
				out[col*m+j] = s
			}
		}
	}
	projectCols(gzz, gzz.X, c.gzz)
	projectCols(czz, czz.X, c.czz)

	// zp blocks: global port columns restricted to internal rows.
	for pj, pi := range c.ports {
		col := sys.Ports[pi]
		for _, blk := range []struct {
			vals []float64
			out  []float64
		}{
			{sys.G, c.gzp},
			{sys.C, c.czp},
		} {
			b := gatherColumn(sys.Pattern, blk.vals, col, keep, dim)
			if b == nil {
				continue
			}
			for row := 0; row < m; row++ {
				vc := c.v[row*dim : (row+1)*dim]
				s := 0.0
				for i, x := range vc {
					s += x * b[i]
				}
				blk.out[row*pc+pj] = s
			}
		}
	}

	// pz blocks: port-row entries of internal columns, times the basis.
	portIdx := make(map[int]int, pc)
	for pj, pi := range c.ports {
		portIdx[sys.Ports[pi]] = pj
	}
	pat := sys.Pattern
	for j := 0; j < sys.N; j++ {
		cj := keep[j]
		if cj < 0 {
			continue
		}
		for p := pat.P[j]; p < pat.P[j+1]; p++ {
			pj, ok := portIdx[pat.I[p]]
			if !ok {
				continue
			}
			gv, cv := sys.G[p], sys.C[p]
			if gv == 0 && cv == 0 {
				continue
			}
			for col := 0; col < m; col++ {
				x := c.v[col*dim+cj]
				if x == 0 {
					continue
				}
				c.gpz[pj*m+col] += gv * x
				c.cpz[pj*m+col] += cv * x
			}
		}
	}
}
