package mor

import (
	"math"

	"rlcint/internal/awe"
	"rlcint/internal/diag"
	"rlcint/internal/sparse"
)

// momK is the number of transfer moments cross-checked by the gate.
const momK = 6

// gateRef holds the full-space linearized reference transient (and its
// initial-condition transfer moments), computed once per Reduce call and
// reused across every (order, stride) gate attempt.
type gateRef struct {
	sys  *System
	opts Options
	w    int         // reference window in output steps
	ref  [][]float64 // per port: w+1 samples on the output DT grid
	mom  [][]float64 // per port: momK IC-response moments (nil: x0 = 0)
}

// newGateRef steps the linearized full system (GGate when present) for the
// gate window at the output timestep, using the same BE/TR schedule — plain
// backward Euler and trapezoidal rule, which the production solver's
// per-element companion models realize algebraically (see Run.Advance).
func newGateRef(sys *System, opts Options) (*gateRef, error) {
	if opts.Injector != nil {
		if err := opts.Injector.At(diag.Site{Op: "mor.gate"}); err != nil {
			return nil, wrapErr(diag.ErrNonConvergence, "mor.gate", err)
		}
	}
	n := sys.N
	p := len(sys.Ports)
	gvals := sys.GGate
	if gvals == nil {
		gvals = sys.G
	}
	pat := sys.Pattern
	dt := opts.DT
	if dt <= 0 || opts.GateWindow < 2 {
		return nil, diag.Domainf("mor.gate", "bad gate window (dt=%g, w=%d)", dt, opts.GateWindow)
	}
	g := &gateRef{sys: sys, opts: opts, w: opts.GateWindow}

	avals := make([]float64, len(gvals))
	amat := &sparse.CSC{N: n, P: pat.P, I: pat.I, X: avals}
	lu := sparse.Workspace(n)
	factor := func(alpha float64) error {
		for i := range avals {
			avals[i] = gvals[i] + alpha*sys.C[i]
		}
		if err := lu.Factorize(amat, 1); err != nil {
			return wrapErr(diag.ErrSingularJacobian, "mor.gate", err)
		}
		return nil
	}

	x := append([]float64(nil), sys.X0...)
	xNew := make([]float64, n)
	cx := make([]float64, n)
	rr := make([]float64, n)
	up := make([]float64, p)
	upPrev := make([]float64, p)
	fillU := func(t float64, dst []float64) {
		for i := range dst {
			dst[i] = 0
		}
		if sys.U != nil {
			sys.U(t, dst)
		}
		if sys.U0 != nil {
			for i := range dst {
				dst[i] += sys.U0[i]
			}
		}
	}
	g.ref = make([][]float64, p)
	for pi := range g.ref {
		g.ref[pi] = make([]float64, g.w+1)
		g.ref[pi][0] = x[sys.Ports[pi]]
	}

	curTR := false
	if err := factor(1 / dt); err != nil {
		return nil, err
	}
	alpha := 1 / dt
	fillU(0, upPrev)
	for s := 1; s <= g.w; s++ {
		tr := opts.TR && s > opts.BESteps
		if tr != curTR {
			curTR = tr
			alpha = 1 / dt
			if tr {
				alpha = 2 / dt
			}
			if err := factor(alpha); err != nil {
				return nil, err
			}
		}
		fillU(float64(s)*dt, up)
		// BE: r = α[C·x] + u'. TR: r = α[C·x] − [G·x] + u_n + u'.
		pat.GaxpyWith(sys.C, x, zero(cx))
		for i := 0; i < n; i++ {
			rr[i] = alpha * cx[i]
		}
		if tr {
			gx := xNew // scratch before it holds the solution
			pat.GaxpyWith(gvals, x, zero(gx))
			for i := 0; i < n; i++ {
				rr[i] -= gx[i]
			}
		}
		for pi, row := range sys.Ports {
			rr[row] += up[pi]
			if tr {
				rr[row] += upPrev[pi]
			}
		}
		lu.SolveInto(xNew, rr)
		x, xNew = xNew, x
		up, upPrev = upPrev, up
		for pi, row := range sys.Ports {
			g.ref[pi][s] = x[row]
		}
	}

	// IC-response transfer moments: y₀ = x₀, y_{k+1} = −G⁻¹·C·y_k, recorded
	// at the ports. Skipped for zero initial state.
	nz := false
	for _, v := range sys.X0 {
		if v != 0 {
			nz = true
			break
		}
	}
	if nz {
		if err := factor(0); err == nil {
			y := append([]float64(nil), sys.X0...)
			g.mom = make([][]float64, p)
			for pi := range g.mom {
				g.mom[pi] = make([]float64, momK)
			}
			for k := 0; k < momK; k++ {
				pat.GaxpyWith(sys.C, y, zero(rr))
				lu.SolveInto(xNew, rr)
				for i := range y {
					y[i] = -xNew[i]
				}
				for pi, row := range sys.Ports {
					g.mom[pi][k] = y[row]
				}
			}
		}
	}
	return g, nil
}

func zero(v []float64) []float64 {
	for i := range v {
		v[i] = 0
	}
	return v
}

// maxUsableStride clamps the candidate stride so the gate window and the
// production run both retain enough internal steps to be meaningful.
func maxUsableStride(opts Options) int {
	s := opts.MaxStride
	if s < 1 {
		s = 1
	}
	for s > 1 && (opts.GateWindow/s < 8 || opts.NSteps/s < 4) {
		s /= 2
	}
	return s
}

// compare runs the reduced model (linearized gate variant) at the candidate
// stride and returns the worst per-port relative RMS waveform error against
// the reference, plus the normalized moment mismatch (informative).
func (g *gateRef) compare(m *Model, stride int) (gerr, momErr float64, err error) {
	opts := g.opts
	p := len(m.Ports)
	ni := g.w / stride
	if ni < 2 {
		return math.Inf(1), 0, nil
	}
	wOut := ni * stride
	dtInt := float64(stride) * opts.DT

	stBE, berr := m.prep(dtInt, false, true)
	if berr != nil {
		return 0, 0, berr
	}
	var stTR *Stepper
	if m.tr {
		if stTR, berr = m.prep(dtInt, true, true); berr != nil {
			return 0, 0, berr
		}
	}

	run := m.NewRun()
	up := make([]float64, p)
	upPrev := make([]float64, p)
	fillU := func(t float64, dst []float64) {
		for i := range dst {
			dst[i] = 0
		}
		if g.sys.U != nil {
			g.sys.U(t, dst)
		}
		if g.sys.U0 != nil {
			for i := range dst {
				dst[i] += g.sys.U0[i]
			}
		}
	}
	fillU(0, upPrev)
	ts := make([]float64, ni+1)
	vals := make([][]float64, p)
	for pi := range vals {
		vals[pi] = make([]float64, ni+1)
		vals[pi][0] = run.v[pi]
	}
	for j := 1; j <= ni; j++ {
		t := float64(j*stride) * opts.DT
		st := stBE
		if m.StepIsTR(j) {
			st = stTR
		}
		fillU(t, up)
		if _, aerr := run.Advance(st, t, up, upPrev, nil, NewtonOpts{}); aerr != nil {
			return math.Inf(1), 0, nil
		}
		up, upPrev = upPrev, up
		ts[j] = t
		for pi := range vals {
			vals[pi][j] = run.v[pi]
		}
	}

	// Resample to the output grid and accumulate the error.
	out := make([]float64, wOut+1)
	maxScale := 0.0
	rms := make([]float64, p)
	scale := make([]float64, p)
	for pi := 0; pi < p; pi++ {
		if stride == 1 {
			copy(out, vals[pi])
		} else {
			ResampleHermite(ts, vals[pi], opts.DT, out)
		}
		se, sr := 0.0, 0.0
		ref := g.ref[pi]
		for s := 0; s <= wOut; s++ {
			d := ref[s] - out[s]
			se += d * d
			sr += ref[s] * ref[s]
		}
		rms[pi] = math.Sqrt(se / float64(wOut+1))
		scale[pi] = math.Sqrt(sr / float64(wOut+1))
		if scale[pi] > maxScale {
			maxScale = scale[pi]
		}
	}
	for pi := 0; pi < p; pi++ {
		den := scale[pi]
		if floor := 1e-6 * maxScale; den < floor {
			den = floor
		}
		if den == 0 {
			den = 1 // all-zero reference: treat the error as absolute
		}
		if e := rms[pi] / den; e > gerr || math.IsNaN(e) {
			gerr = e
			if math.IsNaN(e) {
				gerr = math.Inf(1)
				break
			}
		}
	}

	momErr = g.momentError(m)
	return gerr, momErr, nil
}

// momentError compares the reduced model's IC-response moments against the
// full-space reference in awe-normalized form (time rescaled per port by
// its own characteristic constant so float64 can resolve the series).
func (g *gateRef) momentError(m *Model) float64 {
	if g.mom == nil {
		return 0
	}
	stM, err := m.prep(math.Inf(1), false, true) // α = 0 sentinel: A = G
	if err != nil {
		return 0
	}
	p := len(m.Ports)
	yv := append([]float64(nil), m.x0p...)
	rhsP := make([]float64, p)
	var yz, rhsZ, wtmp [][]float64
	for ci := range m.comps {
		yz = append(yz, append([]float64(nil), m.z0[ci]...))
		rhsZ = append(rhsZ, make([]float64, m.comps[ci].m))
		wtmp = append(wtmp, make([]float64, m.comps[ci].m))
	}
	red := make([][]float64, p)
	for pi := range red {
		red[pi] = make([]float64, momK)
	}
	for k := 0; k < momK; k++ {
		// rhs = C_red · y
		denseMV(m.cpp, p, yv, rhsP)
		for ci, c := range m.comps {
			md, pc := c.m, len(c.ports)
			z := yz[ci]
			for pi, gp := range c.ports {
				s := 0.0
				row := c.cpz[pi*md : (pi+1)*md]
				for kk, zk := range z {
					s += row[kk] * zk
				}
				rhsP[gp] += s
			}
			rz := rhsZ[ci]
			for i := 0; i < md; i++ {
				s := 0.0
				row := c.czz[i*md : (i+1)*md]
				for kk, zk := range z {
					s += row[kk] * zk
				}
				for j := 0; j < pc; j++ {
					s += c.czp[i*pc+j] * yv[c.ports[j]]
				}
				rz[i] = s
			}
		}
		stM.solveCoupled(m, rhsP, rhsZ, yv, yz, wtmp)
		for i := range yv {
			yv[i] = -yv[i]
		}
		for ci := range yz {
			for i := range yz[ci] {
				yz[ci][i] = -yz[ci][i]
			}
		}
		for pi := range red {
			red[pi][k] = yv[pi]
		}
	}
	worst := 0.0
	for pi := 0; pi < p; pi++ {
		fs, T := awe.NormalizeMoments(g.mom[pi])
		den := 0.0
		for _, v := range fs {
			if a := math.Abs(v); a > den {
				den = a
			}
		}
		if den == 0 {
			continue
		}
		tj := 1.0
		for k := 0; k < momK; k++ {
			d := math.Abs(fs[k] - red[pi][k]/tj)
			if e := d / den; e > worst {
				worst = e
			}
			tj *= T
		}
	}
	return worst
}

// ResampleHermite interpolates samples ys at monotone times ts onto the
// uniform grid t_j = j·dt (j = 0..len(out)-1) with cubic Hermite segments
// using three-point finite-difference tangents (Catmull–Rom on uniform
// interiors, one-sided quadratic tangents at the ends). Output points at or
// beyond the last sample clamp to it.
func ResampleHermite(ts, ys []float64, dt float64, out []float64) {
	n := len(ts)
	if n == 0 {
		return
	}
	if n == 1 {
		for j := range out {
			out[j] = ys[0]
		}
		return
	}
	seg := 0
	for j := range out {
		tq := float64(j) * dt
		for seg < n-2 && ts[seg+1] < tq {
			seg++
		}
		t0, t1 := ts[seg], ts[seg+1]
		h := t1 - t0
		if h <= 0 {
			out[j] = ys[seg]
			continue
		}
		u := (tq - t0) / h
		if u <= 0 {
			out[j] = ys[seg]
			continue
		}
		if u >= 1 {
			out[j] = ys[seg+1]
			continue
		}
		s1 := (ys[seg+1] - ys[seg]) / h
		var d0, d1 float64
		if seg == 0 {
			if n > 2 {
				h2 := ts[2] - ts[1]
				s2 := (ys[2] - ys[1]) / h2
				d0 = ((2*h+h2)*s1 - h*s2) / (h + h2)
			} else {
				d0 = s1
			}
		} else {
			hp := ts[seg] - ts[seg-1]
			sp := (ys[seg] - ys[seg-1]) / hp
			d0 = (h*sp + hp*s1) / (hp + h)
		}
		if seg+2 < n {
			hn := ts[seg+2] - ts[seg+1]
			sn := (ys[seg+2] - ys[seg+1]) / hn
			d1 = (hn*s1 + h*sn) / (h + hn)
		} else if seg > 0 {
			hp := ts[seg] - ts[seg-1]
			sp := (ys[seg] - ys[seg-1]) / hp
			d1 = ((2*h+hp)*s1 - h*sp) / (h + hp)
		} else {
			d1 = s1
		}
		u2 := u * u
		u3 := u2 * u
		out[j] = (2*u3-3*u2+1)*ys[seg] +
			(u3-2*u2+u)*h*d0 +
			(-2*u3+3*u2)*ys[seg+1] +
			(u3-u2)*h*d1
	}
}
